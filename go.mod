module cgra

go 1.22
