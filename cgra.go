// Package cgra is the public facade of the CGRA tool set reproducing
// Ruschke et al., "Scheduler for Inhomogeneous and Irregular CGRAs with
// Support for Complex Control Flow" (IPDPSW 2016).
//
// The implementation lives in internal packages; this package re-exports
// the surface a downstream user needs:
//
//   - describe or pick a composition (Composition, ParseComposition,
//     HomogeneousMesh, IrregularComposition, EvaluatedCompositions),
//   - write a kernel (ParseKernel for the text language, or the builder API
//     in internal/ir re-exported through Kernel),
//   - compile it (Compile, Options, Defaults) and inspect the mapping
//     (Compiled: contexts, RF usage, schedule statistics),
//   - execute on the cycle-accurate simulator (Compiled.Run) with host heap
//     memory (NewHost), and
//   - cross-check against the reference interpreter
//     (CheckAgainstInterpreter).
//
// See examples/quickstart for an end-to-end walkthrough and DESIGN.md for
// the system inventory.
package cgra

import (
	"cgra/internal/arch"
	"cgra/internal/ir"
	"cgra/internal/irtext"
	"cgra/internal/pipeline"
	"cgra/internal/sim"
	"cgra/internal/synth"
	"cgra/internal/vgen"
)

// Composition is a CGRA instance: PEs, operation sets, interconnect and
// memory sizing.
type Composition = arch.Composition

// PE is one processing element of a composition.
type PE = arch.PE

// Kernel is a compilable unit in the tool-flow IR.
type Kernel = ir.Kernel

// Host is the host processor's heap, reached via DMA.
type Host = ir.Host

// Options tunes the synthesis flow.
type Options = pipeline.Options

// Compiled bundles the artifacts of one synthesis run.
type Compiled = pipeline.Compiled

// Result reports one simulated CGRA invocation.
type Result = sim.Result

// SynthReport is an estimated FPGA synthesis result.
type SynthReport = synth.Report

// VerilogFile is one generated Verilog source file.
type VerilogFile = vgen.File

// ParseKernel compiles kernel source text (see examples and internal/irtext
// for the grammar).
func ParseKernel(src string) (*Kernel, error) { return irtext.Parse(src) }

// Program is a set of kernels that may call each other.
type Program = ir.Program

// ParseProgram parses one or more kernels (the first is the entry); calls
// between them are resolved and validated.
func ParseProgram(src string) (*Program, error) { return irtext.ParseProgram(src) }

// CompileProgram inlines every kernel call of the entry kernel (the paper's
// optional "method inlining" step) and compiles the result.
func CompileProgram(p *Program, comp *Composition, o Options) (*Compiled, error) {
	return pipeline.CompileProgram(p, comp, o)
}

// ParseComposition parses a JSON composition description (the paper's
// Fig. 8/9 format).
func ParseComposition(data []byte) (*Composition, error) {
	return arch.ParseComposition(data, nil)
}

// MarshalComposition renders a composition back to its JSON description.
func MarshalComposition(c *Composition) ([]byte, error) {
	return arch.MarshalComposition(c)
}

// HomogeneousMesh builds one of the paper's evaluated meshes (4, 6, 8, 9,
// 12 or 16 PEs) with the given multiplier latency (2 = block multiplier).
func HomogeneousMesh(numPEs, mulDuration int) (*Composition, error) {
	return arch.HomogeneousMesh(numPEs, mulDuration)
}

// IrregularComposition builds one of the paper's irregular 8-PE
// compositions "A".."F".
func IrregularComposition(name string, mulDuration int) (*Composition, error) {
	return arch.IrregularComposition(name, mulDuration)
}

// EvaluatedCompositions returns all twelve compositions of the paper's
// evaluation.
func EvaluatedCompositions(mulDuration int) ([]*Composition, error) {
	return arch.EvaluatedCompositions(mulDuration)
}

// NewHost creates an empty host heap.
func NewHost() *Host { return ir.NewHost() }

// Defaults returns the paper's flow configuration (inner loops unrolled
// with factor 2, CSE and constant folding on).
func Defaults() Options { return pipeline.Defaults() }

// Compile maps a kernel onto a composition: CDFG construction, list
// scheduling with routing-aware copies and predication, left-edge RF and
// C-Box allocation, and context generation.
func Compile(k *Kernel, comp *Composition, o Options) (*Compiled, error) {
	return pipeline.Compile(k, comp, o)
}

// CheckAgainstInterpreter runs a compiled kernel on the simulator and the
// original kernel on the reference interpreter, comparing live-outs and
// heap contents.
func CheckAgainstInterpreter(original *Kernel, c *Compiled, args map[string]int32, host *Host) (*pipeline.CheckResult, error) {
	return pipeline.CheckAgainstInterpreter(original, c, args, host)
}

// EstimateSynthesis models Vivado synthesis of the composition on the
// paper's Virtex-7 target (see internal/synth for the calibration).
func EstimateSynthesis(c *Composition) *SynthReport { return synth.Estimate(c) }

// GenerateVerilog emits the composition's Verilog description (the paper's
// Fig. 7 generator).
func GenerateVerilog(c *Composition) ([]VerilogFile, error) {
	return vgen.Generate(c, vgen.Options{})
}
