package ctxgen

import (
	"testing"

	"cgra/internal/arch"
	"cgra/internal/cdfg"
	"cgra/internal/ir"
	"cgra/internal/irtext"
	"cgra/internal/sched"
)

func generate(t *testing.T, src string, comp *arch.Composition) *Program {
	t.Helper()
	k := mustParse(t, src)
	g, err := cdfg.Build(k, cdfg.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Run(g, comp, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mesh(t *testing.T, n int) *arch.Composition {
	t.Helper()
	c, err := arch.HomogeneousMesh(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const loopSrc = `
kernel k(array a, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) {
		v = a[i];
		if (v > 0) { s = s + v; }
		i = i + 1;
	}
}`

func TestGenerateShape(t *testing.T) {
	p := generate(t, loopSrc, mesh(t, 4))
	if p.NumCtx != p.Sched.Length {
		t.Errorf("NumCtx %d != schedule length %d", p.NumCtx, p.Sched.Length)
	}
	if len(p.PE) != 4 {
		t.Fatalf("PE streams = %d", len(p.PE))
	}
	for pe, stream := range p.PE {
		if len(stream) != p.NumCtx {
			t.Errorf("PE %d stream length %d != %d", pe, len(stream), p.NumCtx)
		}
	}
	if len(p.CBox) != p.NumCtx || len(p.CCU) != p.NumCtx {
		t.Error("CBox/CCU stream lengths wrong")
	}
}

func TestGenerateOpsMatchSchedule(t *testing.T) {
	p := generate(t, loopSrc, mesh(t, 4))
	count := 0
	for pe := range p.PE {
		for _, ctx := range p.PE[pe] {
			if ctx.Op != arch.NOP {
				count++
			}
		}
	}
	if count != len(p.Sched.Ops) {
		t.Errorf("context ops %d != scheduled ops %d", count, len(p.Sched.Ops))
	}
}

func TestGenerateRoutingOutputs(t *testing.T) {
	p := generate(t, loopSrc, mesh(t, 4))
	// Every SrcRoute read must have the source PE presenting the value.
	for _, op := range p.Sched.Ops {
		for _, src := range []sched.Src{op.A, op.B} {
			if src.Kind != sched.SrcRoute {
				continue
			}
			srcCtx := p.PE[src.FromPE][op.Cycle]
			if !srcCtx.OutlEnable {
				t.Errorf("op at c%d: source PE %d outl not enabled", op.Cycle, src.FromPE)
			}
			if srcCtx.OutlAddr != src.Val.Addr {
				t.Errorf("op at c%d: outl addr %d != value addr %d", op.Cycle, srcCtx.OutlAddr, src.Val.Addr)
			}
			// The route input index must point back at the source.
			ctx := p.PE[op.PE][op.Cycle]
			var input int
			if op.A == src {
				input = ctx.AInput
			} else {
				input = ctx.BInput
			}
			if got := p.Sched.Comp.PEs[op.PE].Inputs[input]; got != src.FromPE {
				t.Errorf("route input %d resolves to PE %d, want %d", input, got, src.FromPE)
			}
		}
	}
}

func TestGenerateCCUModes(t *testing.T) {
	p := generate(t, loopSrc, mesh(t, 4))
	jumps, condJumps := 0, 0
	for _, c := range p.CCU {
		switch c.Mode {
		case CCUJump:
			jumps++
		case CCUCondJump:
			condJumps++
		}
	}
	if jumps < 2 { // loop back jump + halt
		t.Errorf("unconditional jumps = %d, want >= 2", jumps)
	}
	if condJumps < 1 { // loop exit
		t.Errorf("conditional jumps = %d, want >= 1", condJumps)
	}
	// Every conditional jump must enable the branch-selection read.
	for cycle, c := range p.CCU {
		if c.Mode == CCUCondJump && !p.CBox[cycle].OutCtrlEnable {
			t.Errorf("cond jump at %d without outctrl", cycle)
		}
	}
}

func TestGeneratePredication(t *testing.T) {
	p := generate(t, loopSrc, mesh(t, 4))
	found := false
	for pe := range p.PE {
		for cycle, ctx := range p.PE[pe] {
			if ctx.Predicated {
				found = true
				if !p.CBox[cycle].OutPEEnable {
					t.Errorf("predicated op at c%d without outPE read", cycle)
				}
			}
		}
	}
	if !found {
		t.Error("no predicated contexts despite the conditional store")
	}
}

func TestGenerateFormatsReasonable(t *testing.T) {
	p := generate(t, loopSrc, mesh(t, 4))
	for i, f := range p.Formats {
		w := f.Width()
		if w <= 0 || w > 128 {
			t.Errorf("PE %d: context width %d implausible", i, w)
		}
		// Minimized address bits must cover the allocated registers.
		need := p.Alloc.RFUsage[i]
		if need > 0 && (1<<f.AAddrBits) < need {
			t.Errorf("PE %d: %d addr bits cannot address %d registers", i, f.AAddrBits, need)
		}
	}
	if p.TotalContextBits() <= 0 {
		t.Error("no context bits")
	}
	if p.CBoxWidth <= 0 || p.CCUWidth <= 0 {
		t.Error("C-Box/CCU widths missing")
	}
}

func TestGenerateBitMaskMinimization(t *testing.T) {
	// A kernel using few registers must yield narrower contexts than the
	// structural maximum (RF 128 -> 7 address bits).
	p := generate(t, `kernel k(in x, inout r) { r = x + 1; }`, mesh(t, 4))
	for i, f := range p.Formats {
		if f.AAddrBits >= 7 {
			t.Errorf("PE %d: address field not minimized (%d bits)", i, f.AAddrBits)
		}
	}
}

func TestGenerateRejectsOverlongSchedule(t *testing.T) {
	comp := mesh(t, 4)
	comp.ContextSize = 4 // absurdly small
	k := mustParse(t, loopSrc)
	g, err := cdfg.Build(k, cdfg.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Run(g, comp, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(s); err == nil {
		t.Error("schedule longer than the context memory accepted")
	}
}

func TestGenerateHaltIsSelfJump(t *testing.T) {
	p := generate(t, `kernel k(in x, inout r) { r = x; }`, mesh(t, 4))
	last := p.CCU[p.NumCtx-1]
	if last.Mode != CCUJump || last.Target != p.NumCtx-1 {
		t.Errorf("last context is not a self-jump halt: %+v", last)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	p := generate(t, loopSrc, mesh(t, 4))
	for pe := 0; pe < 4; pe++ {
		bs, err := p.PackPE(pe)
		if err != nil {
			t.Fatalf("pack PE %d: %v", pe, err)
		}
		if len(bs.Words) != p.NumCtx {
			t.Fatalf("PE %d: %d words, want %d", pe, len(bs.Words), p.NumCtx)
		}
		back, err := p.UnpackPE(pe, bs)
		if err != nil {
			t.Fatalf("unpack PE %d: %v", pe, err)
		}
		for cyc := range back {
			want := p.PE[pe][cyc]
			got := back[cyc]
			// Fields of disabled paths may decode to zero values;
			// compare the meaningful ones.
			if got.Op != want.Op || got.AMode != want.AMode || got.BMode != want.BMode ||
				got.WriteEnable != want.WriteEnable || got.Predicated != want.Predicated ||
				got.OutlEnable != want.OutlEnable || got.Imm != want.Imm {
				t.Errorf("PE %d ctx %d: %+v != %+v", pe, cyc, got, want)
			}
			if got.WriteEnable && got.WriteAddr != want.WriteAddr {
				t.Errorf("PE %d ctx %d: write addr %d != %d", pe, cyc, got.WriteAddr, want.WriteAddr)
			}
			if got.AMode == SrcReg && got.AAddr != want.AAddr {
				t.Errorf("PE %d ctx %d: A addr differs", pe, cyc)
			}
			if got.OutlEnable && got.OutlAddr != want.OutlAddr {
				t.Errorf("PE %d ctx %d: outl addr differs", pe, cyc)
			}
		}
		if bs.TotalBits() != bs.Width*p.NumCtx {
			t.Error("TotalBits wrong")
		}
	}
}

func TestBitstreamDump(t *testing.T) {
	p := generate(t, `kernel k(in x, inout r) { r = x + 1; }`, mesh(t, 4))
	bs, err := p.PackPE(0)
	if err != nil {
		t.Fatal(err)
	}
	dump := bs.Dump(3)
	lines := 0
	for _, ch := range dump {
		if ch == '\n' {
			lines++
		}
	}
	if lines < 3 {
		t.Errorf("dump too short:\n%s", dump)
	}
	for _, ch := range dump {
		if ch != '0' && ch != '1' && ch != '\n' && ch != '.' && ch != ' ' &&
			(ch < '0' || ch > '9') && ch != '(' && ch != ')' && ch != 'm' && ch != 'o' && ch != 'r' && ch != 'e' {
			t.Errorf("unexpected character %q in dump", ch)
			break
		}
	}
}

func mustParse(t testing.TB, src string) *ir.Kernel {
	t.Helper()
	k, err := irtext.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return k
}
