package ctxgen

// Binary serialization of context-memory images. This is the on-disk
// artifact format of the compiled-kernel cache: a Bitstream written today
// must decode bit-identically forever, so the layout is fixed, versioned
// and pinned by a golden-file test (bitstream_test.go). Bump
// BitstreamVersion — an explicit, reviewable diff — whenever the layout
// changes.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "CGBS"
//	4       2     format version (currently 1)
//	6       2     reserved (zero)
//	8       4     word width in bits
//	12      4     number of words (contexts)
//	16      ...   words × ceil(width/64) uint64 chunks, LSB-first
//
// Bitstream also implements encoding/gob's GobEncoder/GobDecoder via this
// codec, so any gob-encoded structure embedding bitstreams (the artifact
// cache's value type) inherits the pinned format for its image payload.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// BitstreamVersion is the serialization format version written by Encode.
const BitstreamVersion = 1

var bitstreamMagic = [4]byte{'C', 'G', 'B', 'S'}

// chunksPerWord is the number of 64-bit chunks backing one context word.
func (b *Bitstream) chunksPerWord() int { return (b.Width + 63) / 64 }

// Encode writes the bitstream in the fixed binary format.
func (b *Bitstream) Encode(w io.Writer) error {
	if b.Width <= 0 {
		return fmt.Errorf("ctxgen: cannot encode bitstream with width %d", b.Width)
	}
	var hdr [16]byte
	copy(hdr[0:4], bitstreamMagic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], BitstreamVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(b.Width))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(b.Words)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	chunks := b.chunksPerWord()
	buf := make([]byte, 8)
	for i, word := range b.Words {
		if len(word) != chunks {
			return fmt.Errorf("ctxgen: word %d has %d chunks, width %d needs %d",
				i, len(word), b.Width, chunks)
		}
		for _, c := range word {
			binary.LittleEndian.PutUint64(buf, c)
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sanity bounds for decoding: far beyond any real composition, tight
// enough that corrupt headers cannot drive huge allocations.
const (
	maxBitstreamWidth = 1 << 20
	maxBitstreamWords = 1 << 24
)

// DecodeBitstream reads one bitstream previously written by Encode. Corrupt
// or truncated input yields an error, never a partially valid stream.
func DecodeBitstream(r io.Reader) (*Bitstream, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("ctxgen: bitstream header: %w", err)
	}
	if !bytes.Equal(hdr[0:4], bitstreamMagic[:]) {
		return nil, fmt.Errorf("ctxgen: bad bitstream magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != BitstreamVersion {
		return nil, fmt.Errorf("ctxgen: bitstream format version %d, want %d", v, BitstreamVersion)
	}
	width := int(binary.LittleEndian.Uint32(hdr[8:12]))
	words := int(binary.LittleEndian.Uint32(hdr[12:16]))
	if width <= 0 || width > maxBitstreamWidth {
		return nil, fmt.Errorf("ctxgen: implausible bitstream width %d", width)
	}
	if words < 0 || words > maxBitstreamWords {
		return nil, fmt.Errorf("ctxgen: implausible bitstream word count %d", words)
	}
	b := &Bitstream{Width: width, Words: make([][]uint64, words)}
	chunks := b.chunksPerWord()
	buf := make([]byte, 8*chunks)
	for i := range b.Words {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("ctxgen: bitstream word %d: %w", i, err)
		}
		word := make([]uint64, chunks)
		for c := range word {
			word[c] = binary.LittleEndian.Uint64(buf[8*c:])
		}
		b.Words[i] = word
	}
	return b, nil
}

// Equal reports whether two bitstreams are bit-identical.
func (b *Bitstream) Equal(o *Bitstream) bool {
	if b.Width != o.Width || len(b.Words) != len(o.Words) {
		return false
	}
	for i := range b.Words {
		if len(b.Words[i]) != len(o.Words[i]) {
			return false
		}
		for c := range b.Words[i] {
			if b.Words[i][c] != o.Words[i][c] {
				return false
			}
		}
	}
	return true
}

// GobEncode implements gob.GobEncoder using the pinned binary format.
func (b *Bitstream) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (b *Bitstream) GobDecode(data []byte) error {
	d, err := DecodeBitstream(bytes.NewReader(data))
	if err != nil {
		return err
	}
	*b = *d
	return nil
}
