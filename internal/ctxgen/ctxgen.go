// Package ctxgen turns a schedule into context streams: one context memory
// per PE, one for the C-Box and the CCU jump table (paper §V-I, Fig. 10).
// It also computes the bit-mask that minimizes each context word's width
// (§IV-B: control-signal widths vary with neighbour count and RF size, so a
// bit-mask is created for each context).
package ctxgen

import (
	"fmt"
	"math/bits"

	"cgra/internal/alloc"
	"cgra/internal/arch"
	"cgra/internal/obs"
	"cgra/internal/sched"
)

// SrcMode encodes an operand multiplexer setting.
type SrcMode int

// Operand multiplexer settings.
const (
	SrcNone  SrcMode = iota
	SrcReg           // own register file
	SrcRoute         // a neighbour's routing output
)

// PECtx is one decoded context word of one PE. A multi-cycle operation
// occupies only its issue context; the PE holds it until completion.
type PECtx struct {
	Op arch.OpCode
	// Operand A/B multiplexers. For SrcReg, Addr is the RF read address;
	// for SrcRoute, Input indexes the PE's Inputs list.
	AMode, BMode   SrcMode
	AAddr, BAddr   int
	AInput, BInput int
	// WriteAddr receives the result at the end of the op's final cycle.
	WriteEnable bool
	WriteAddr   int
	// Predicated gates the commit (RF write / DMA access) with the
	// C-Box predication output of the issue cycle.
	Predicated bool
	// Imm is the CONST immediate.
	Imm int32
	// Array selects the DMA target array.
	Array int
	// Outl drives the routing output with an RF read this cycle.
	OutlEnable bool
	OutlAddr   int
}

// CBoxCtx is one decoded C-Box context word.
type CBoxCtx struct {
	// Consume combines the incoming status with a stored condition.
	Consume  bool
	StatusPE int
	// Recombine combines two stored conditions instead.
	Recombine  bool
	Logic      sched.CBLogic
	AAddr      int
	AInv       bool
	BAddr      int
	BInv       bool
	WriteAddr  int
	HasA, HasB bool
	// OutPE drives the predication signal from a stored slot.
	OutPEEnable bool
	OutPEAddr   int
	// OutCtrl drives the branch-selection signal from a stored slot.
	OutCtrlEnable bool
	OutCtrlAddr   int
	OutCtrlInv    bool
}

// CCUCtx is one decoded context-control word.
type CCUCtx struct {
	// Mode: 0 increment, 1 unconditional jump, 2 conditional jump (taken
	// when the branch-selection signal is true).
	Mode   int
	Target int
}

// CCU modes.
const (
	CCUInc = iota
	CCUJump
	CCUCondJump
)

// PEFormat describes the bit layout of one PE's context word after
// bit-mask minimization.
type PEFormat struct {
	OpBits     int
	AModeBits  int
	AAddrBits  int
	AInputBits int
	BModeBits  int
	BAddrBits  int
	BInputBits int
	WriteBits  int // enable + address
	PredBits   int
	ImmBits    int
	ArrayBits  int
	OutlBits   int // enable + address
}

// Width returns the total context word width in bits.
func (f PEFormat) Width() int {
	return f.OpBits + f.AModeBits + f.AAddrBits + f.AInputBits +
		f.BModeBits + f.BAddrBits + f.BInputBits +
		f.WriteBits + f.PredBits + f.ImmBits + f.ArrayBits + f.OutlBits
}

// Program is the complete configuration of a composition for one kernel:
// what the paper's context generator emits and the hardware executes.
type Program struct {
	Sched *sched.Schedule
	Alloc *alloc.Result
	// NumCtx is the number of contexts (Table I's "used contexts").
	NumCtx int
	// PE[pe][cycle] is the decoded context stream.
	PE [][]PECtx
	// CBox[cycle] is the C-Box context stream.
	CBox []CBoxCtx
	// CCU[cycle] is the jump table.
	CCU []CCUCtx
	// Formats gives each PE's minimized context layout; CBoxWidth and
	// CCUWidth the corresponding control-word widths.
	Formats   []PEFormat
	CBoxWidth int
	CCUWidth  int
}

// TotalContextBits returns the total context storage this program needs.
func (p *Program) TotalContextBits() int {
	bits := 0
	for _, f := range p.Formats {
		bits += f.Width() * p.NumCtx
	}
	bits += (p.CBoxWidth + p.CCUWidth) * p.NumCtx
	return bits
}

// Generate allocates the schedule (left-edge RF and condition-memory
// assignment) and emits the context streams.
func Generate(s *sched.Schedule) (*Program, error) {
	return GenerateSpan(s, nil)
}

// GenerateSpan is Generate with phase instrumentation: the RF/C-Box
// allocation and the context encoding are recorded as children of span
// (nil span = no instrumentation).
func GenerateSpan(s *sched.Schedule, span *obs.Span) (*Program, error) {
	as := span.StartChild("alloc")
	res, err := alloc.Allocate(s)
	as.Finish()
	if err != nil {
		return nil, fmt.Errorf("ctxgen: %v", err)
	}
	as.Set("max_rf", int64(res.MaxRF()))
	as.Set("cbox_slots", int64(res.CBoxUsage))
	es := span.StartChild("encode")
	defer es.Finish()
	n := s.Length
	if n > s.Comp.ContextSize {
		return nil, fmt.Errorf("ctxgen: schedule needs %d contexts, memory holds %d",
			n, s.Comp.ContextSize)
	}
	p := &Program{
		Sched:  s,
		Alloc:  res,
		NumCtx: n,
		PE:     make([][]PECtx, s.Comp.NumPEs()),
		CBox:   make([]CBoxCtx, n),
		CCU:    make([]CCUCtx, n),
	}
	for pe := range p.PE {
		p.PE[pe] = make([]PECtx, n)
	}
	for _, op := range s.Ops {
		ctx := &p.PE[op.PE][op.Cycle]
		if ctx.Op != arch.NOP {
			return nil, fmt.Errorf("ctxgen: PE %d cycle %d double-booked", op.PE, op.Cycle)
		}
		ctx.Op = op.Code
		ctx.Imm = op.Imm
		ctx.Array = op.Array
		if err := p.encodeSrc(op, op.A, &ctx.AMode, &ctx.AAddr, &ctx.AInput); err != nil {
			return nil, err
		}
		if err := p.encodeSrc(op, op.B, &ctx.BMode, &ctx.BAddr, &ctx.BInput); err != nil {
			return nil, err
		}
		if op.Dest != nil {
			ctx.WriteEnable = true
			ctx.WriteAddr = op.Dest.Addr
		}
		if op.PredSlot != nil {
			ctx.Predicated = true
		}
	}
	// Routing outputs: every routed read makes the source PE present the
	// value on outl in that cycle.
	for _, op := range s.Ops {
		for _, src := range []sched.Src{op.A, op.B} {
			if src.Kind != sched.SrcRoute {
				continue
			}
			ctx := &p.PE[src.FromPE][op.Cycle]
			if ctx.OutlEnable && ctx.OutlAddr != src.Val.Addr {
				return nil, fmt.Errorf("ctxgen: outl conflict on PE %d cycle %d", src.FromPE, op.Cycle)
			}
			ctx.OutlEnable = true
			ctx.OutlAddr = src.Val.Addr
		}
	}
	// C-Box contexts.
	for _, cb := range s.CBox {
		ctx := &p.CBox[cb.Cycle]
		if ctx.Consume || ctx.Recombine {
			return nil, fmt.Errorf("ctxgen: C-Box cycle %d double-booked", cb.Cycle)
		}
		ctx.Logic = cb.Logic
		ctx.WriteAddr = cb.Write.Phys
		if cb.Kind == sched.CBConsume {
			ctx.Consume = true
			ctx.StatusPE = cb.StatusPE
		} else {
			ctx.Recombine = true
		}
		if cb.A != nil {
			ctx.HasA = true
			ctx.AAddr = cb.A.Phys
			ctx.AInv = cb.InvA
		}
		if cb.B != nil {
			ctx.HasB = true
			ctx.BAddr = cb.B.Phys
			ctx.BInv = cb.InvB
		}
	}
	// Predication reads: all predicated commits of one cycle share a slot.
	for _, op := range s.Ops {
		if op.PredSlot == nil {
			continue
		}
		ctx := &p.CBox[op.Cycle]
		if ctx.OutPEEnable && ctx.OutPEAddr != op.PredSlot.Phys {
			return nil, fmt.Errorf("ctxgen: two predication slots at cycle %d", op.Cycle)
		}
		ctx.OutPEEnable = true
		ctx.OutPEAddr = op.PredSlot.Phys
	}
	// CCU contexts and branch-selection reads.
	for cycle, j := range s.CCU {
		c := &p.CCU[cycle]
		c.Target = j.Target
		if j.Uncond {
			c.Mode = CCUJump
			continue
		}
		c.Mode = CCUCondJump
		ctx := &p.CBox[cycle]
		if ctx.OutCtrlEnable {
			return nil, fmt.Errorf("ctxgen: two branch selections at cycle %d", cycle)
		}
		ctx.OutCtrlEnable = true
		ctx.OutCtrlAddr = j.Slot.Phys
		ctx.OutCtrlInv = j.Invert
	}
	p.computeFormats(res)
	es.Set("contexts", int64(n))
	es.Set("context_bits", int64(p.TotalContextBits()))
	return p, nil
}

func (p *Program) encodeSrc(op *sched.Op, src sched.Src, mode *SrcMode, addr, input *int) error {
	switch src.Kind {
	case sched.SrcNone:
		*mode = SrcNone
	case sched.SrcReg:
		*mode = SrcReg
		*addr = src.Val.Addr
	case sched.SrcRoute:
		*mode = SrcRoute
		idx := -1
		for i, in := range p.Sched.Comp.PEs[op.PE].Inputs {
			if in == src.FromPE {
				idx = i
			}
		}
		if idx < 0 {
			return fmt.Errorf("ctxgen: op %v routes from non-input PE %d", op, src.FromPE)
		}
		*input = idx
		*addr = src.Val.Addr
	}
	return nil
}

// computeFormats derives the minimized per-PE context layouts: address
// fields sized by actual RF usage, input selectors by neighbour count,
// immediate and DMA fields only where the PE uses them (§IV-B bit-masks).
func (p *Program) computeFormats(res *alloc.Result) {
	comp := p.Sched.Comp
	p.Formats = make([]PEFormat, comp.NumPEs())
	for i, pe := range comp.PEs {
		f := &p.Formats[i]
		f.OpBits = bitsFor(len(pe.Ops) + 1)
		addrBits := bitsFor(res.RFUsage[i])
		inputBits := bitsFor(len(pe.Inputs))
		f.AModeBits, f.BModeBits = 2, 2
		f.AAddrBits, f.BAddrBits = addrBits, addrBits
		f.AInputBits, f.BInputBits = inputBits, inputBits
		f.WriteBits = 1 + addrBits
		f.PredBits = 1
		if pe.Supports(arch.CONST) {
			f.ImmBits = 32
		}
		if pe.HasDMA {
			f.ArrayBits = bitsFor(len(p.Sched.Graph.Arrays))
		}
		f.OutlBits = 1 + addrBits
	}
	slotBits := bitsFor(res.CBoxUsage)
	// status source select + logic + A/B addr + inverts + write.
	p.CBoxWidth = bitsFor(comp.NumPEs()) + 2 + 2 + (slotBits+1)*2 + 1 + slotBits +
		(1 + slotBits) + (1 + slotBits + 1)
	p.CCUWidth = 2 + bitsFor(p.NumCtx)
	_ = res
}

// bitsFor returns ceil(log2(n)) with a minimum of 1.
func bitsFor(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}
