package ctxgen

import (
	"fmt"
	"sort"
	"strings"

	"cgra/internal/arch"
)

// This file packs decoded contexts into binary context words using the
// minimized per-PE formats — the bit streams the paper's context generator
// writes into the context memories (Fig. 10 shows them as raw bits).
// Packing and unpacking round-trip, which the tests use to prove the
// minimized widths are sufficient.

// Bitstream is one context memory's image: one word per context, each
// Width bits wide, stored in little chunks of 64 bits.
type Bitstream struct {
	Width int
	Words [][]uint64
}

// packer assembles one word LSB-first.
type packer struct {
	bits  []uint64
	width int
}

func (p *packer) put(value uint64, width int) {
	if width == 0 {
		return
	}
	for i := 0; i < width; i++ {
		bitIdx := p.width + i
		for len(p.bits) <= bitIdx/64 {
			p.bits = append(p.bits, 0)
		}
		if value&(1<<uint(i)) != 0 {
			p.bits[bitIdx/64] |= 1 << uint(bitIdx%64)
		}
	}
	p.width += width
}

func (p *packer) putBool(b bool) {
	v := uint64(0)
	if b {
		v = 1
	}
	p.put(v, 1)
}

// unpacker reads a word back LSB-first.
type unpacker struct {
	bits []uint64
	pos  int
}

func (u *unpacker) get(width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		idx := u.pos + i
		if idx/64 < len(u.bits) && u.bits[idx/64]&(1<<uint(idx%64)) != 0 {
			v |= 1 << uint(i)
		}
	}
	u.pos += width
	return v
}

func (u *unpacker) getBool() bool { return u.get(1) != 0 }

// opTable returns the PE's operation encoding table: index 0 is NOP, the
// implemented operations follow in opcode order. This matches the case
// indices of the generated ALU Verilog (vgen) and keeps the op field within
// the minimized width even for PEs with sparse operation sets.
func (p *Program) opTable(pe int) []arch.OpCode {
	ops := make([]arch.OpCode, 0, len(p.Sched.Comp.PEs[pe].Ops)+1)
	ops = append(ops, arch.NOP)
	for op := range p.Sched.Comp.PEs[pe].Ops {
		if op != arch.NOP {
			ops = append(ops, op)
		}
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	return ops
}

func opIndex(table []arch.OpCode, op arch.OpCode) (uint64, error) {
	for i, o := range table {
		if o == op {
			return uint64(i), nil
		}
	}
	return 0, fmt.Errorf("ctxgen: op %v not in PE's table", op)
}

// PackPE encodes one PE's context stream with its minimized format.
func (p *Program) PackPE(pe int) (*Bitstream, error) {
	f := p.Formats[pe]
	table := p.opTable(pe)
	bs := &Bitstream{Width: f.Width()}
	for cycle := 0; cycle < p.NumCtx; cycle++ {
		ctx := p.PE[pe][cycle]
		pk := &packer{}
		opIdx, err := opIndex(table, ctx.Op)
		if err != nil {
			return nil, err
		}
		pk.put(opIdx, f.OpBits)
		pk.put(uint64(ctx.AMode), f.AModeBits)
		pk.put(uint64(ctx.AAddr), f.AAddrBits)
		pk.put(uint64(ctx.AInput), f.AInputBits)
		pk.put(uint64(ctx.BMode), f.BModeBits)
		pk.put(uint64(ctx.BAddr), f.BAddrBits)
		pk.put(uint64(ctx.BInput), f.BInputBits)
		pk.putBool(ctx.WriteEnable)
		pk.put(uint64(ctx.WriteAddr), f.WriteBits-1)
		pk.putBool(ctx.Predicated)
		pk.put(uint64(uint32(ctx.Imm)), f.ImmBits)
		pk.put(uint64(ctx.Array), f.ArrayBits)
		pk.putBool(ctx.OutlEnable)
		pk.put(uint64(ctx.OutlAddr), f.OutlBits-1)
		if pk.width != bs.Width {
			return nil, fmt.Errorf("ctxgen: PE %d cycle %d packed %d bits, format says %d",
				pe, cycle, pk.width, bs.Width)
		}
		bs.Words = append(bs.Words, pk.bits)
	}
	return bs, nil
}

// UnpackPE decodes a packed stream back into contexts (for verification).
func (p *Program) UnpackPE(pe int, bs *Bitstream) ([]PECtx, error) {
	f := p.Formats[pe]
	if bs.Width != f.Width() {
		return nil, fmt.Errorf("ctxgen: width mismatch %d vs %d", bs.Width, f.Width())
	}
	table := p.opTable(pe)
	out := make([]PECtx, len(bs.Words))
	for i, w := range bs.Words {
		u := &unpacker{bits: w}
		var c PECtx
		idx := u.get(f.OpBits)
		if int(idx) >= len(table) {
			return nil, fmt.Errorf("ctxgen: op index %d outside PE's table", idx)
		}
		c.Op = table[idx]
		c.AMode = SrcMode(u.get(f.AModeBits))
		c.AAddr = int(u.get(f.AAddrBits))
		c.AInput = int(u.get(f.AInputBits))
		c.BMode = SrcMode(u.get(f.BModeBits))
		c.BAddr = int(u.get(f.BAddrBits))
		c.BInput = int(u.get(f.BInputBits))
		c.WriteEnable = u.getBool()
		c.WriteAddr = int(u.get(f.WriteBits - 1))
		c.Predicated = u.getBool()
		c.Imm = int32(uint32(u.get(f.ImmBits)))
		c.Array = int(u.get(f.ArrayBits))
		c.OutlEnable = u.getBool()
		c.OutlAddr = int(u.get(f.OutlBits - 1))
		out[i] = c
	}
	return out, nil
}

// BitstreamDump renders a bitstream like the paper's Fig. 10 context dump:
// one binary word per line, MSB first.
func (b *Bitstream) Dump(maxWords int) string {
	var sb strings.Builder
	n := len(b.Words)
	if maxWords > 0 && n > maxWords {
		n = maxWords
	}
	for i := 0; i < n; i++ {
		for bit := b.Width - 1; bit >= 0; bit-- {
			if b.Words[i][bit/64]&(1<<uint(bit%64)) != 0 {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		sb.WriteByte('\n')
	}
	if n < len(b.Words) {
		fmt.Fprintf(&sb, "... (%d more)\n", len(b.Words)-n)
	}
	return sb.String()
}

// TotalBits returns the stream's total storage requirement.
func (b *Bitstream) TotalBits() int { return b.Width * len(b.Words) }
