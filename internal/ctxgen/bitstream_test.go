package ctxgen

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cgra/internal/arch"
	"cgra/internal/cdfg"
	"cgra/internal/opt"
	"cgra/internal/sched"
	"cgra/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenStream is a fixed, hand-constructed bitstream: 3 words of 70 bits
// (two 64-bit chunks per word) with a recognizable pattern. Changing the
// binary layout changes its encoding — and the golden file diff makes the
// format bump explicit.
func goldenStream() *Bitstream {
	return &Bitstream{
		Width: 70,
		Words: [][]uint64{
			{0xDEADBEEF01234567, 0x2A},
			{0x0000000000000000, 0x00},
			{0xFFFFFFFFFFFFFFFF, 0x3F},
		},
	}
}

func TestBitstreamGoldenFile(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenStream().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "bitstream.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("encoding diverged from the pinned on-disk format:\n got %x\nwant %x\n"+
			"(an intentional format change must bump BitstreamVersion and regenerate with -update)",
			buf.Bytes(), want)
	}
	dec, err := DecodeBitstream(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("decode golden: %v", err)
	}
	if !dec.Equal(goldenStream()) {
		t.Fatal("golden file decoded to different contents")
	}
}

// TestBitstreamRoundTripCompiled packs a real compiled workload, encodes
// and decodes every PE's image, and verifies both bit-identity and that the
// decoded streams unpack into the original contexts.
func TestBitstreamRoundTripCompiled(t *testing.T) {
	w, err := workload.ByName("gcd")
	if err != nil {
		t.Fatal(err)
	}
	comp, err := arch.ByName("9 PEs")
	if err != nil {
		t.Fatal(err)
	}
	k, err := opt.Apply(w.Kernel, opt.Options{UnrollFactor: 2, CSE: true, ConstFold: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cdfg.Build(k, cdfg.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Run(g, comp, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	for pe := 0; pe < comp.NumPEs(); pe++ {
		bs, err := prog.PackPE(pe)
		if err != nil {
			t.Fatalf("pack PE %d: %v", pe, err)
		}
		var buf bytes.Buffer
		if err := bs.Encode(&buf); err != nil {
			t.Fatalf("encode PE %d: %v", pe, err)
		}
		dec, err := DecodeBitstream(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode PE %d: %v", pe, err)
		}
		if !dec.Equal(bs) {
			t.Fatalf("PE %d round trip not bit-identical", pe)
		}
		ctxs, err := prog.UnpackPE(pe, dec)
		if err != nil {
			t.Fatalf("unpack PE %d: %v", pe, err)
		}
		for c, got := range ctxs {
			if got != prog.PE[pe][c] {
				t.Fatalf("PE %d ctx %d: decoded %+v != original %+v", pe, c, got, prog.PE[pe][c])
			}
		}
	}
}

func TestBitstreamDecodeRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenStream().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	cases := map[string][]byte{
		"empty":         {},
		"short header":  full[:10],
		"truncated":     full[:len(full)-5],
		"bad magic":     append([]byte("XXXX"), full[4:]...),
		"wrong version": append(append([]byte{}, full[:4]...), append([]byte{0xFF, 0x7F}, full[6:]...)...),
	}
	// Implausible width: patch width field to 2^30.
	wide := append([]byte{}, full...)
	wide[8], wide[9], wide[10], wide[11] = 0, 0, 0, 0x40
	cases["implausible width"] = wide

	for name, data := range cases {
		if _, err := DecodeBitstream(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}
