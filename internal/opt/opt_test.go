package opt

import (
	"testing"
	"testing/quick"

	"cgra/internal/ir"
	"cgra/internal/irtext"
)

// run interprets a kernel and returns live-outs plus the final heap.
func run(t *testing.T, k *ir.Kernel, args map[string]int32, arrays map[string][]int32) (map[string]int32, *ir.Host) {
	t.Helper()
	host := ir.NewHost()
	for name, a := range arrays {
		host.Arrays[name] = append([]int32(nil), a...)
	}
	in := &ir.Interp{}
	out, err := in.Run(k, args, host)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out, host
}

// assertEquivalent checks that a transform preserved semantics on the given
// inputs.
func assertEquivalent(t *testing.T, orig, xform *ir.Kernel, args map[string]int32, arrays map[string][]int32) {
	t.Helper()
	o1, h1 := run(t, orig, args, arrays)
	o2, h2 := run(t, xform, args, arrays)
	for name, v := range o1 {
		if o2[name] != v {
			t.Errorf("live-out %s: original %d, transformed %d", name, v, o2[name])
		}
	}
	if !h1.Equal(h2) {
		t.Error("heaps differ after transform")
	}
}

func TestFoldConstantsBasic(t *testing.T) {
	k := mustParse(t, `kernel k(inout r) { r = 2 + 3 * 4 - (1 << 2); }`)
	folded := FoldConstants(k)
	a, ok := folded.Body[0].(*ir.Assign)
	if !ok {
		t.Fatal("not an assign")
	}
	c, ok := a.Value.(*ir.Const)
	if !ok {
		t.Fatalf("RHS not folded: %s", a.Value)
	}
	if c.Value != 10 {
		t.Errorf("folded to %d, want 10", c.Value)
	}
}

func TestFoldIdentities(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`kernel k(in x, inout r) { r = x + 0; }`, "x"},
		{`kernel k(in x, inout r) { r = x * 1; }`, "x"},
		{`kernel k(in x, inout r) { r = x * 0; }`, "0"},
		{`kernel k(in x, inout r) { r = x & 0; }`, "0"},
		{`kernel k(in x, inout r) { r = 0 + x; }`, "x"},
		{`kernel k(in x, inout r) { r = x >> 0; }`, "x"},
	}
	for _, c := range cases {
		k := FoldConstants(mustParse(t, c.src))
		a := k.Body[0].(*ir.Assign)
		if got := a.Value.String(); got != c.want {
			t.Errorf("%s: folded to %s, want %s", c.src, got, c.want)
		}
	}
}

func TestFoldPreservesSemantics(t *testing.T) {
	src := `
kernel k(in x, in y, inout r) {
	r = (x + 0) * (3 * 4) + (y & 0) + (1 << 3) + x * 1;
}`
	k := mustParse(t, src)
	f := FoldConstants(k)
	prop := func(x, y int32) bool {
		o1, _ := run(t, k, map[string]int32{"x": x, "y": y, "r": 0}, nil)
		o2, _ := run(t, f, map[string]int32{"x": x, "y": y, "r": 0}, nil)
		return o1["r"] == o2["r"]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFoldLogicalShortCircuitKept(t *testing.T) {
	// Constant folding must not change logical semantics.
	k := mustParse(t, `kernel k(inout r) { r = 1 && 0; d = 1 || 0; r = r + d; }`)
	f := FoldConstants(k)
	o, _ := run(t, f, map[string]int32{"r": 0}, nil)
	if o["r"] != 1 {
		t.Errorf("r = %d, want 1", o["r"])
	}
}

func TestUnrollPreservesTripCounts(t *testing.T) {
	src := `
kernel sum(in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) { s = s + i; i = i + 1; }
}`
	k := mustParse(t, src)
	for _, factor := range []int{2, 3, 4} {
		u := Unroll(k, factor)
		for n := int32(0); n <= 11; n++ {
			o1, _ := run(t, k, map[string]int32{"n": n, "s": 0}, nil)
			o2, _ := run(t, u, map[string]int32{"n": n, "s": 0}, nil)
			if o1["s"] != o2["s"] {
				t.Errorf("factor %d, n=%d: %d != %d", factor, n, o2["s"], o1["s"])
			}
		}
	}
}

func TestUnrollOnlyInnermost(t *testing.T) {
	src := `
kernel k(in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) {
		j = 0;
		while (j < n) { s = s + 1; j = j + 1; }
		i = i + 1;
	}
}`
	k := mustParse(t, src)
	u := Unroll(k, 2)
	// The outer while must NOT contain a guarded copy of itself: its body
	// should hold exactly the inner loop handling plus i update.
	outer := findWhile(u.Body)
	if outer == nil {
		t.Fatal("no outer loop")
	}
	inner := findWhile(outer.Body)
	if inner == nil {
		t.Fatal("no inner loop after unrolling")
	}
	// The inner loop body must contain a guarded duplicate (an If).
	hasIf := false
	for _, s := range inner.Body {
		if _, ok := s.(*ir.If); ok {
			hasIf = true
		}
	}
	if !hasIf {
		t.Error("inner loop not unrolled")
	}
	// Equivalence.
	assertEquivalent(t, k, u, map[string]int32{"n": 5, "s": 0}, nil)
}

func findWhile(stmts []ir.Stmt) *ir.While {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.While:
			return s
		case *ir.If:
			if w := findWhile(s.Then); w != nil {
				return w
			}
			if w := findWhile(s.Else); w != nil {
				return w
			}
		}
	}
	return nil
}

func TestUnrollWithSideExitCondition(t *testing.T) {
	// Data-dependent loop: unrolling must re-check the condition between
	// copies.
	src := `
kernel collatz(inout x, inout steps) {
	steps = 0;
	while (x != 1) {
		if ((x & 1) == 0) { x = x >> 1; } else { x = 3 * x + 1; }
		steps = steps + 1;
	}
}`
	k := mustParse(t, src)
	u := Unroll(k, 2)
	for _, x := range []int32{1, 2, 3, 7, 27} {
		o1, _ := run(t, k, map[string]int32{"x": x, "steps": 0}, nil)
		o2, _ := run(t, u, map[string]int32{"x": x, "steps": 0}, nil)
		if o1["steps"] != o2["steps"] || o1["x"] != o2["x"] {
			t.Errorf("x=%d: (%d,%d) != (%d,%d)", x, o2["x"], o2["steps"], o1["x"], o1["steps"])
		}
	}
}

func TestCSEReplacesRecomputation(t *testing.T) {
	src := `
kernel k(in a, in b, inout r) {
	x = a * b;
	y = a * b;
	r = x + y;
}`
	k := mustParse(t, src)
	c := CSE(k)
	// The second assignment must become y = x.
	a2 := c.Body[1].(*ir.Assign)
	if v, ok := a2.Value.(*ir.VarRef); !ok || v.Name != "x" {
		t.Errorf("second assign not CSE'd: %s", a2.Value)
	}
	assertEquivalent(t, k, c, map[string]int32{"a": 6, "b": 7, "r": 0}, nil)
}

func TestCSEInvalidatesOnWrite(t *testing.T) {
	src := `
kernel k(in a, inout b, inout r) {
	x = a + b;
	b = b + 1;
	y = a + b;
	r = x + y;
}`
	k := mustParse(t, src)
	c := CSE(k)
	// y must stay a recomputation: b changed in between.
	a3 := c.Body[2].(*ir.Assign)
	if _, ok := a3.Value.(*ir.VarRef); ok {
		t.Error("CSE reused a value across an invalidating write")
	}
	assertEquivalent(t, k, c, map[string]int32{"a": 3, "b": 4, "r": 0}, nil)
}

func TestCSESkipsLoads(t *testing.T) {
	// Loads are never reused: a store may intervene.
	src := `
kernel k(array m, inout r) {
	x = m[0];
	m[0] = x + 1;
	y = m[0];
	r = x + y;
}`
	k := mustParse(t, src)
	c := CSE(k)
	assertEquivalent(t, k, c, map[string]int32{"r": 0}, map[string][]int32{"m": {5}})
}

func TestCSEIfIsolation(t *testing.T) {
	src := `
kernel k(in a, in c, inout r) {
	x = a * a;
	if (c > 0) { x = 1; }
	y = a * a;
	r = x + y;
}`
	k := mustParse(t, src)
	c := CSE(k)
	for _, cv := range []int32{0, 1} {
		assertEquivalent(t, k, c, map[string]int32{"a": 5, "c": cv, "r": 0}, nil)
	}
	// y must NOT be replaced by x (x may have changed in the if).
	a3 := c.Body[2].(*ir.Assign)
	if v, ok := a3.Value.(*ir.VarRef); ok && v.Name == "x" {
		t.Error("CSE reused a value overwritten in a conditional")
	}
}

func TestCSELoopIsolation(t *testing.T) {
	src := `
kernel k(in a, in n, inout r) {
	x = a * a;
	i = 0;
	while (i < n) { x = x + 1; i = i + 1; }
	y = a * a;
	r = x + y;
}`
	k := mustParse(t, src)
	c := CSE(k)
	assertEquivalent(t, k, c, map[string]int32{"a": 3, "n": 4, "r": 0}, nil)
}

func TestApplyValidates(t *testing.T) {
	k := mustParse(t, `kernel k(in a, inout r) { r = a * 2 + a * 2; }`)
	out, err := Apply(k, Options{UnrollFactor: 2, CSE: true, ConstFold: true})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	assertEquivalent(t, k, out, map[string]int32{"a": 9, "r": 0}, nil)
}

func TestApplyPropertyRandomInputs(t *testing.T) {
	src := `
kernel mix(array a, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) {
		v = a[i & 7];
		w = a[i & 7];
		if (v > 0) { s = s + v * 2 + w; } else { s = s - v; }
		i = i + 1;
	}
}`
	k := mustParse(t, src)
	out, err := Apply(k, Options{UnrollFactor: 3, CSE: true, ConstFold: true})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed uint8, n uint8) bool {
		arr := make([]int32, 8)
		for i := range arr {
			arr[i] = int32(seed)*int32(i+1) - 300
		}
		args := map[string]int32{"n": int32(n % 32), "s": 0}
		o1, _ := run(t, k, args, map[string][]int32{"a": arr})
		o2, _ := run(t, out, args, map[string][]int32{"a": arr})
		return o1["s"] == o2["s"]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func mustParse(t testing.TB, src string) *ir.Kernel {
	t.Helper()
	k, err := irtext.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return k
}
