// Package opt implements the optional IR-level optimizations of the paper's
// synthesis flow (Fig. 1): partial loop unrolling and common subexpression
// elimination, plus constant folding. All passes are semantics-preserving
// source-to-source transforms on the kernel IR.
package opt

import (
	"fmt"

	"cgra/internal/ir"
	"cgra/internal/obs"
)

// Options selects the passes to run.
type Options struct {
	// UnrollFactor partially unrolls innermost loops: a factor k rewrites
	// while(c){B} into while(c){B; if(c){B; if(c){...}}} with k copies of
	// the body. The guarded copies predicate into the same block, raising
	// ILP exactly like the paper's "maximum unroll factor of 2 for inner
	// loops" (§VI-B). 0 and 1 mean no unrolling.
	UnrollFactor int
	// CSE enables statement-level value numbering: a right-hand side
	// equal to one already held in a live variable is replaced by that
	// variable.
	CSE bool
	// ConstFold folds constant subexpressions.
	ConstFold bool
}

// Phase is one optimization pass of the flow.
type Phase struct {
	Name string
	Run  func(*ir.Kernel) *ir.Kernel
}

// Phases lists the passes Apply runs for the given options, in order.
func Phases(o Options) []Phase {
	var out []Phase
	if o.ConstFold {
		out = append(out, Phase{"constfold", FoldConstants})
	}
	if o.UnrollFactor > 1 {
		out = append(out, Phase{"unroll", func(k *ir.Kernel) *ir.Kernel {
			return Unroll(k, o.UnrollFactor)
		}})
	}
	if o.CSE {
		out = append(out, Phase{"cse", CSE})
	}
	return out
}

// Apply runs the selected passes and returns a new kernel.
func Apply(k *ir.Kernel, o Options) (*ir.Kernel, error) {
	return ApplySpan(k, o, nil)
}

// ApplySpan runs the selected passes, recording each pass as a child of
// span (nil span = no instrumentation).
func ApplySpan(k *ir.Kernel, o Options, span *obs.Span) (*ir.Kernel, error) {
	out := k
	for _, p := range Phases(o) {
		sp := span.StartChild(p.Name)
		out = p.Run(out)
		sp.Set("stmts", int64(countStmts(out.Body)))
		sp.Finish()
	}
	if err := ir.Validate(out); err != nil {
		return nil, fmt.Errorf("opt: transformed kernel invalid: %v", err)
	}
	return out, nil
}

// countStmts counts statements recursively (a phase-output size metric).
func countStmts(stmts []ir.Stmt) int {
	n := 0
	for _, s := range stmts {
		n++
		switch s := s.(type) {
		case *ir.If:
			n += countStmts(s.Then) + countStmts(s.Else)
		case *ir.While:
			n += countStmts(s.Body)
		case *ir.For:
			n += countStmts(s.Body)
		}
	}
	return n
}

// --- constant folding ---

// FoldConstants folds constant subexpressions throughout the kernel.
func FoldConstants(k *ir.Kernel) *ir.Kernel {
	return &ir.Kernel{Name: k.Name, Params: k.Params, Body: foldStmts(k.Body)}
}

func foldStmts(stmts []ir.Stmt) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(stmts))
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.Assign:
			out = append(out, &ir.Assign{Name: s.Name, Value: foldExpr(s.Value)})
		case *ir.Store:
			out = append(out, &ir.Store{Array: s.Array, Index: foldExpr(s.Index), Value: foldExpr(s.Value)})
		case *ir.If:
			out = append(out, &ir.If{Cond: foldExpr(s.Cond), Then: foldStmts(s.Then), Else: foldStmts(s.Else)})
		case *ir.While:
			out = append(out, &ir.While{Cond: foldExpr(s.Cond), Body: foldStmts(s.Body)})
		case *ir.For:
			f := &ir.For{Cond: foldExpr(s.Cond), Body: foldStmts(s.Body)}
			if s.Init != nil {
				f.Init = &ir.Assign{Name: s.Init.Name, Value: foldExpr(s.Init.Value)}
			}
			if s.Post != nil {
				f.Post = &ir.Assign{Name: s.Post.Name, Value: foldExpr(s.Post.Value)}
			}
			out = append(out, f)
		default:
			out = append(out, s)
		}
	}
	return out
}

func foldExpr(e ir.Expr) ir.Expr {
	switch e := e.(type) {
	case *ir.Bin:
		x, y := foldExpr(e.X), foldExpr(e.Y)
		cx, okx := x.(*ir.Const)
		cy, oky := y.(*ir.Const)
		if okx && oky && !e.Op.IsLogical() {
			if v, err := ir.EvalBin(e.Op, cx.Value, cy.Value, nil); err == nil {
				return &ir.Const{Value: v}
			}
		}
		if okx && oky && e.Op.IsLogical() {
			bx, by := cx.Value != 0, cy.Value != 0
			var r bool
			if e.Op == ir.OpLAnd {
				r = bx && by
			} else {
				r = bx || by
			}
			if r {
				return &ir.Const{Value: 1}
			}
			return &ir.Const{Value: 0}
		}
		// Identity simplifications.
		if oky && !okx {
			switch {
			case e.Op == ir.OpAdd && cy.Value == 0,
				e.Op == ir.OpSub && cy.Value == 0,
				e.Op == ir.OpMul && cy.Value == 1,
				e.Op == ir.OpShl && cy.Value == 0,
				e.Op == ir.OpShr && cy.Value == 0,
				e.Op == ir.OpShrU && cy.Value == 0,
				e.Op == ir.OpOr && cy.Value == 0,
				e.Op == ir.OpXor && cy.Value == 0:
				return x
			case e.Op == ir.OpMul && cy.Value == 0,
				e.Op == ir.OpAnd && cy.Value == 0:
				return &ir.Const{Value: 0}
			}
		}
		if okx && !oky {
			switch {
			case e.Op == ir.OpAdd && cx.Value == 0,
				e.Op == ir.OpMul && cx.Value == 1,
				e.Op == ir.OpOr && cx.Value == 0,
				e.Op == ir.OpXor && cx.Value == 0:
				return y
			case e.Op == ir.OpMul && cx.Value == 0,
				e.Op == ir.OpAnd && cx.Value == 0:
				return &ir.Const{Value: 0}
			}
		}
		return &ir.Bin{Op: e.Op, X: x, Y: y}
	case *ir.Un:
		x := foldExpr(e.X)
		if c, ok := x.(*ir.Const); ok {
			switch e.Op {
			case ir.OpNeg:
				return &ir.Const{Value: -c.Value}
			case ir.OpNot:
				return &ir.Const{Value: ^c.Value}
			case ir.OpLNot:
				if c.Value == 0 {
					return &ir.Const{Value: 1}
				}
				return &ir.Const{Value: 0}
			}
		}
		return &ir.Un{Op: e.Op, X: x}
	case *ir.Load:
		return &ir.Load{Array: e.Array, Index: foldExpr(e.Index)}
	default:
		return e
	}
}

// --- partial loop unrolling ---

// Unroll partially unrolls innermost loops by the given factor: the body is
// followed by factor-1 copies, each guarded by the (re-evaluated) loop
// condition. The transform is valid for arbitrary while loops:
// while(c){B} == while(c){B; if(c){B}}. The guarded copies are loop-free,
// so the CDFG builder predicates them into the same block, enlarging the
// window for the list scheduler.
func Unroll(k *ir.Kernel, factor int) *ir.Kernel {
	lowered := k.LowerFor()
	return &ir.Kernel{Name: k.Name, Params: k.Params, Body: unrollStmts(lowered.Body, factor)}
}

func unrollStmts(stmts []ir.Stmt, factor int) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(stmts))
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.If:
			out = append(out, &ir.If{Cond: s.Cond, Then: unrollStmts(s.Then, factor), Else: unrollStmts(s.Else, factor)})
		case *ir.While:
			if isInnermost(s.Body) {
				out = append(out, &ir.While{Cond: s.Cond, Body: buildUnrolled(s.Body, s.Cond, factor)})
			} else {
				out = append(out, &ir.While{Cond: s.Cond, Body: unrollStmts(s.Body, factor)})
			}
		default:
			out = append(out, s)
		}
	}
	return out
}

// buildUnrolled produces B; if(c){B; if(c){ ... }} with `factor` copies.
func buildUnrolled(body []ir.Stmt, cond ir.Expr, factor int) []ir.Stmt {
	result := append([]ir.Stmt(nil), body...)
	tail := []ir.Stmt(nil)
	for i := factor - 1; i >= 1; i-- {
		inner := append(append([]ir.Stmt(nil), body...), tail...)
		tail = []ir.Stmt{&ir.If{Cond: cond, Then: inner}}
	}
	return append(result, tail...)
}

func isInnermost(stmts []ir.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.While, *ir.For:
			return false
		case *ir.If:
			if !isInnermost(s.Then) || !isInnermost(s.Else) {
				return false
			}
		}
	}
	return true
}

// --- common subexpression elimination ---

// CSE performs statement-level value numbering: when an assignment's
// right-hand side is structurally identical to one previously computed into
// a still-valid variable, the recomputation is replaced by a variable read
// (the paper's optional "Common Subexpression elim." step, Fig. 1).
// Expressions containing array loads are never reused (stores may have
// intervened), and control-flow boundaries clear the table conservatively.
func CSE(k *ir.Kernel) *ir.Kernel {
	c := &cseState{avail: map[string]string{}}
	return &ir.Kernel{Name: k.Name, Params: k.Params, Body: c.stmts(k.Body)}
}

type cseState struct {
	avail map[string]string // canonical expr -> variable holding it
}

func (c *cseState) stmts(stmts []ir.Stmt) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(stmts))
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.Assign:
			val := s.Value
			key, pure := exprKey(val)
			if pure {
				if holder, ok := c.avail[key]; ok && holder != s.Name {
					val = &ir.VarRef{Name: holder}
				}
			}
			c.invalidate(s.Name)
			out = append(out, &ir.Assign{Name: s.Name, Value: val})
			if pure && !mentions(val, s.Name) {
				c.avail[key] = s.Name
			}
		case *ir.Store:
			out = append(out, s)
		case *ir.If:
			// Arms see a copy of the table; afterwards drop entries
			// whose holder or operands may have changed.
			saved := c.snapshot()
			thenC := &cseState{avail: c.snapshot()}
			thenOut := thenC.stmts(s.Then)
			elseC := &cseState{avail: c.snapshot()}
			elseOut := elseC.stmts(s.Else)
			c.avail = saved
			for _, name := range assignedIn(s.Then) {
				c.invalidate(name)
			}
			for _, name := range assignedIn(s.Else) {
				c.invalidate(name)
			}
			out = append(out, &ir.If{Cond: s.Cond, Then: thenOut, Else: elseOut})
		case *ir.While:
			// The loop body may invalidate values before the
			// condition re-evaluates: clear around it.
			bodyC := &cseState{avail: map[string]string{}}
			bodyOut := bodyC.stmts(s.Body)
			for _, name := range assignedIn(s.Body) {
				c.invalidate(name)
			}
			out = append(out, &ir.While{Cond: s.Cond, Body: bodyOut})
		case *ir.For:
			bodyC := &cseState{avail: map[string]string{}}
			bodyOut := bodyC.stmts(s.Body)
			for _, name := range assignedIn(s.Body) {
				c.invalidate(name)
			}
			if s.Init != nil {
				c.invalidate(s.Init.Name)
			}
			if s.Post != nil {
				c.invalidate(s.Post.Name)
			}
			out = append(out, &ir.For{Init: s.Init, Cond: s.Cond, Post: s.Post, Body: bodyOut})
		default:
			out = append(out, s)
		}
	}
	return out
}

func (c *cseState) snapshot() map[string]string {
	m := make(map[string]string, len(c.avail))
	for k, v := range c.avail {
		m[k] = v
	}
	return m
}

// invalidate drops entries computed from or held in the named variable.
func (c *cseState) invalidate(name string) {
	for key, holder := range c.avail {
		if holder == name || keyMentions(key, name) {
			delete(c.avail, key)
		}
	}
}

// exprKey returns a canonical string for a pure expression (no loads) and
// whether the expression is pure.
func exprKey(e ir.Expr) (string, bool) {
	switch e := e.(type) {
	case *ir.Const:
		return fmt.Sprintf("#%d", e.Value), true
	case *ir.VarRef:
		return "%" + e.Name + "%", true
	case *ir.Bin:
		kx, okx := exprKey(e.X)
		ky, oky := exprKey(e.Y)
		if !okx || !oky || e.Op.IsLogical() {
			return "", false
		}
		return fmt.Sprintf("(%s %v %s)", kx, e.Op, ky), true
	case *ir.Un:
		kx, okx := exprKey(e.X)
		if !okx {
			return "", false
		}
		return fmt.Sprintf("(%v %s)", e.Op, kx), true
	default:
		return "", false
	}
}

func keyMentions(key, name string) bool {
	needle := "%" + name + "%"
	for i := 0; i+len(needle) <= len(key); i++ {
		if key[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

func mentions(e ir.Expr, name string) bool {
	switch e := e.(type) {
	case *ir.VarRef:
		return e.Name == name
	case *ir.Bin:
		return mentions(e.X, name) || mentions(e.Y, name)
	case *ir.Un:
		return mentions(e.X, name)
	case *ir.Load:
		return mentions(e.Index, name)
	default:
		return false
	}
}

func assignedIn(stmts []ir.Stmt) []string {
	var out []string
	var walk func([]ir.Stmt)
	walk = func(ss []ir.Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *ir.Assign:
				out = append(out, s.Name)
			case *ir.If:
				walk(s.Then)
				walk(s.Else)
			case *ir.While:
				walk(s.Body)
			case *ir.For:
				if s.Init != nil {
					out = append(out, s.Init.Name)
				}
				if s.Post != nil {
					out = append(out, s.Post.Name)
				}
				walk(s.Body)
			}
		}
	}
	walk(stmts)
	return out
}
