package opt

import (
	"strings"
	"testing"

	"cgra/internal/ir"
	"cgra/internal/irtext"
)

const progSrc = `
kernel main(array data, in n, inout total) {
	total = 0;
	i = 0;
	while (i < n) {
		v = data[i];
		clamp(v, 0, 100);
		total = total + v;
		i = i + 1;
	}
	scale(data, n, 2);
}

kernel clamp(inout x, in lo, in hi) {
	if (x < lo) { x = lo; }
	if (x > hi) { x = hi; }
}

kernel scale(array a, in n, in f) {
	i = 0;
	while (i < n) {
		a[i] = a[i] * f;
		i = i + 1;
	}
}`

func mustProgram(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := irtext.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runKernel(t *testing.T, k *ir.Kernel, lib map[string]*ir.Kernel,
	args map[string]int32, arrays map[string][]int32) (map[string]int32, *ir.Host) {
	t.Helper()
	host := ir.NewHost()
	for name, a := range arrays {
		host.Arrays[name] = append([]int32(nil), a...)
	}
	in := &ir.Interp{Library: lib}
	out, err := in.Run(k, args, host)
	if err != nil {
		t.Fatalf("run %s: %v", k.Name, err)
	}
	return out, host
}

func TestInlineMatchesCallSemantics(t *testing.T) {
	prog := mustProgram(t, progSrc)
	flat, err := Inline(prog)
	if err != nil {
		t.Fatalf("inline: %v", err)
	}
	// The flattened kernel must contain no calls.
	for _, name := range []string{"clamp", "scale"} {
		if strings.Contains(irtext.Print(flat), name+"(") {
			t.Errorf("call to %s survived inlining:\n%s", name, irtext.Print(flat))
		}
	}
	data := []int32{-5, 50, 200, 7}
	args := map[string]int32{"n": 4, "total": 0}
	wantOut, wantHost := runKernel(t, prog.EntryKernel(), prog.Kernels, args,
		map[string][]int32{"data": data})
	gotOut, gotHost := runKernel(t, flat, nil, args,
		map[string][]int32{"data": data})
	if wantOut["total"] != gotOut["total"] {
		t.Errorf("total: called %d, inlined %d", wantOut["total"], gotOut["total"])
	}
	if !wantHost.Equal(gotHost) {
		t.Errorf("heaps differ: %v vs %v", wantHost.Arrays["data"], gotHost.Arrays["data"])
	}
	// Expected semantics: clamp(-5,50,200->100,7) summed = 0+50+100+7; then doubled.
	if gotOut["total"] != 157 {
		t.Errorf("total = %d, want 157", gotOut["total"])
	}
	want := []int32{-10, 100, 400, 14}
	for i, w := range want {
		if gotHost.Arrays["data"][i] != w {
			t.Errorf("data[%d] = %d, want %d", i, gotHost.Arrays["data"][i], w)
		}
	}
}

func TestInlineNestedCalls(t *testing.T) {
	prog := mustProgram(t, `
kernel main(inout r) {
	outer(r);
}
kernel outer(inout x) {
	inner(x);
	x = x + 1;
}
kernel inner(inout y) {
	y = y * 2;
}`)
	flat, err := Inline(prog)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := runKernel(t, flat, nil, map[string]int32{"r": 10}, nil)
	if out["r"] != 21 {
		t.Errorf("r = %d, want 21", out["r"])
	}
}

func TestInlineNameHygiene(t *testing.T) {
	// Caller and callee both use "i" and "v": no capture allowed.
	prog := mustProgram(t, `
kernel main(array a, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) {
		v = a[i];
		addtwice(v, s);
		i = i + 1;
	}
}
kernel addtwice(in v, inout s) {
	i = 0;
	while (i < 2) {
		s = s + v;
		i = i + 1;
	}
}`)
	flat, err := Inline(prog)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := runKernel(t, flat, nil, map[string]int32{"n": 3, "s": 0},
		map[string][]int32{"a": {1, 2, 3}})
	if out["s"] != 12 {
		t.Errorf("s = %d, want 12 (each element added twice)", out["s"])
	}
}

func TestRecursionRejected(t *testing.T) {
	_, err := irtext.ParseProgram(`
kernel main(inout r) { main(r); }`)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("recursion not rejected: %v", err)
	}
	_, err = irtext.ParseProgram(`
kernel a(inout r) { b(r); }
kernel b(inout r) { a(r); }`)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("mutual recursion not rejected: %v", err)
	}
}

func TestCallValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown-callee", `kernel main(inout r) { nope(r); }`},
		{"arg-count", `kernel main(inout r) { f(r, 1); } kernel f(inout x) { x = 1; }`},
		{"inout-needs-var", `kernel main(inout r) { f(1 + 2); } kernel f(inout x) { x = 1; }`},
		{"array-needs-array", `kernel main(inout r) { f(r); } kernel f(array a) { a[0] = 1; }`},
		{"scalar-gets-array", `kernel main(array m) { f(m); } kernel f(inout x) { x = 1; }`},
	}
	for _, c := range cases {
		if _, err := irtext.ParseProgram(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSingleKernelRejectsCalls(t *testing.T) {
	// Parse (single-kernel) must reject a kernel containing calls because
	// they cannot be resolved.
	_, err := irtext.Parse(`kernel main(inout r) { f(r); }`)
	if err == nil {
		t.Error("single-kernel parse accepted an unresolvable call")
	}
}
