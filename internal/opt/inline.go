package opt

import (
	"fmt"

	"cgra/internal/ir"
)

// Inline replaces every kernel call in the program's entry kernel with the
// callee's body — the "method inlining" step of the paper's synthesis flow
// (Fig. 1). Callee locals and scalar parameters are renamed to fresh
// temporaries; array parameters are substituted by the caller's arrays.
// Calls nest (a callee may call further kernels); recursion is rejected by
// ir.ValidateProgram beforehand and guarded here with a depth limit.
func Inline(p *ir.Program) (*ir.Kernel, error) {
	if err := ir.ValidateProgram(p); err != nil {
		return nil, fmt.Errorf("opt: %v", err)
	}
	entry := p.EntryKernel()
	inl := &inliner{program: p}
	body, err := inl.stmts(entry, entry.Body, 0)
	if err != nil {
		return nil, err
	}
	out := &ir.Kernel{Name: entry.Name, Params: entry.Params, Body: body}
	if err := ir.Validate(out); err != nil {
		return nil, fmt.Errorf("opt: inlined kernel invalid: %v", err)
	}
	return out, nil
}

const maxInlineDepth = 16

type inliner struct {
	program *ir.Program
	temp    int
}

func (in *inliner) fresh(callee, name string) string {
	in.temp++
	return fmt.Sprintf("$%s%d_%s", callee, in.temp, name)
}

func (in *inliner) stmts(caller *ir.Kernel, stmts []ir.Stmt, depth int) ([]ir.Stmt, error) {
	var out []ir.Stmt
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.Call:
			inlined, err := in.expand(caller, s, depth)
			if err != nil {
				return nil, err
			}
			out = append(out, inlined...)
		case *ir.If:
			then, err := in.stmts(caller, s.Then, depth)
			if err != nil {
				return nil, err
			}
			els, err := in.stmts(caller, s.Else, depth)
			if err != nil {
				return nil, err
			}
			out = append(out, &ir.If{Cond: s.Cond, Then: then, Else: els})
		case *ir.While:
			body, err := in.stmts(caller, s.Body, depth)
			if err != nil {
				return nil, err
			}
			out = append(out, &ir.While{Cond: s.Cond, Body: body})
		case *ir.For:
			body, err := in.stmts(caller, s.Body, depth)
			if err != nil {
				return nil, err
			}
			out = append(out, &ir.For{Init: s.Init, Cond: s.Cond, Post: s.Post, Body: body})
		default:
			out = append(out, s)
		}
	}
	return out, nil
}

// expand inlines one call site.
func (in *inliner) expand(caller *ir.Kernel, c *ir.Call, depth int) ([]ir.Stmt, error) {
	if depth >= maxInlineDepth {
		return nil, fmt.Errorf("opt: inline depth %d exceeded at call to %q", depth, c.Callee)
	}
	callee := in.program.Kernels[c.Callee]
	if callee == nil {
		return nil, fmt.Errorf("opt: call to unknown kernel %q", c.Callee)
	}
	if len(c.Args) != len(callee.Params) {
		return nil, fmt.Errorf("opt: call to %q: argument count mismatch", c.Callee)
	}
	scalarMap := map[string]string{} // callee scalar -> caller fresh name
	arrayMap := map[string]string{}  // callee array -> caller array
	var pre, post []ir.Stmt
	for i, p := range callee.Params {
		arg := c.Args[i]
		switch p.Kind {
		case ir.ScalarIn:
			name := in.fresh(callee.Name, p.Name)
			scalarMap[p.Name] = name
			pre = append(pre, ir.Set(name, arg))
		case ir.ScalarInOut:
			v, ok := arg.(*ir.VarRef)
			if !ok {
				return nil, fmt.Errorf("opt: call to %q: inout parameter %q needs a variable", c.Callee, p.Name)
			}
			name := in.fresh(callee.Name, p.Name)
			scalarMap[p.Name] = name
			pre = append(pre, ir.Set(name, ir.V(v.Name)))
			post = append(post, ir.Set(v.Name, ir.V(name)))
		case ir.ArrayRef:
			v, ok := arg.(*ir.VarRef)
			if !ok {
				return nil, fmt.Errorf("opt: call to %q: array parameter %q needs an array name", c.Callee, p.Name)
			}
			arrayMap[p.Name] = v.Name
		}
	}
	// Rename every local the callee assigns (beyond its parameters).
	for _, name := range assignedIn(callee.Body) {
		if _, done := scalarMap[name]; !done {
			scalarMap[name] = in.fresh(callee.Name, name)
		}
	}
	body, err := renameStmts(callee.Body, scalarMap, arrayMap)
	if err != nil {
		return nil, err
	}
	// Inline nested calls within the renamed body.
	body, err = in.stmts(caller, body, depth+1)
	if err != nil {
		return nil, err
	}
	out := append(pre, body...)
	return append(out, post...), nil
}

func renameStmts(stmts []ir.Stmt, scalars, arrays map[string]string) ([]ir.Stmt, error) {
	out := make([]ir.Stmt, 0, len(stmts))
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.Assign:
			out = append(out, &ir.Assign{
				Name:  renameVar(s.Name, scalars),
				Value: renameExpr(s.Value, scalars, arrays),
			})
		case *ir.Store:
			arr, ok := arrays[s.Array]
			if !ok {
				return nil, fmt.Errorf("opt: store to unmapped array %q", s.Array)
			}
			out = append(out, &ir.Store{
				Array: arr,
				Index: renameExpr(s.Index, scalars, arrays),
				Value: renameExpr(s.Value, scalars, arrays),
			})
		case *ir.If:
			then, err := renameStmts(s.Then, scalars, arrays)
			if err != nil {
				return nil, err
			}
			els, err := renameStmts(s.Else, scalars, arrays)
			if err != nil {
				return nil, err
			}
			out = append(out, &ir.If{
				Cond: renameExpr(s.Cond, scalars, arrays),
				Then: then, Else: els,
			})
		case *ir.While:
			body, err := renameStmts(s.Body, scalars, arrays)
			if err != nil {
				return nil, err
			}
			out = append(out, &ir.While{Cond: renameExpr(s.Cond, scalars, arrays), Body: body})
		case *ir.For:
			body, err := renameStmts(s.Body, scalars, arrays)
			if err != nil {
				return nil, err
			}
			f := &ir.For{Cond: renameExpr(s.Cond, scalars, arrays), Body: body}
			if s.Init != nil {
				f.Init = &ir.Assign{Name: renameVar(s.Init.Name, scalars), Value: renameExpr(s.Init.Value, scalars, arrays)}
			}
			if s.Post != nil {
				f.Post = &ir.Assign{Name: renameVar(s.Post.Name, scalars), Value: renameExpr(s.Post.Value, scalars, arrays)}
			}
			out = append(out, f)
		case *ir.Call:
			// Rename the arguments; expansion happens in a later pass.
			args := make([]ir.Expr, len(s.Args))
			for i, a := range s.Args {
				// Array arguments rename through the array map.
				if v, ok := a.(*ir.VarRef); ok {
					if mapped, isArr := arrays[v.Name]; isArr {
						args[i] = ir.V(mapped)
						continue
					}
				}
				args[i] = renameExpr(a, scalars, arrays)
			}
			out = append(out, &ir.Call{Callee: s.Callee, Args: args})
		default:
			return nil, fmt.Errorf("opt: cannot rename statement %T", s)
		}
	}
	return out, nil
}

func renameVar(name string, scalars map[string]string) string {
	if n, ok := scalars[name]; ok {
		return n
	}
	return name
}

func renameExpr(e ir.Expr, scalars, arrays map[string]string) ir.Expr {
	switch e := e.(type) {
	case *ir.Const:
		return e
	case *ir.VarRef:
		return ir.V(renameVar(e.Name, scalars))
	case *ir.Load:
		arr := e.Array
		if mapped, ok := arrays[arr]; ok {
			arr = mapped
		}
		return &ir.Load{Array: arr, Index: renameExpr(e.Index, scalars, arrays)}
	case *ir.Bin:
		return &ir.Bin{Op: e.Op, X: renameExpr(e.X, scalars, arrays), Y: renameExpr(e.Y, scalars, arrays)}
	case *ir.Un:
		return &ir.Un{Op: e.Op, X: renameExpr(e.X, scalars, arrays)}
	default:
		return e
	}
}
