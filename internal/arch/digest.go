package arch

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
)

// Digest returns a stable structural hash of the composition: the
// hex-encoded SHA-256 of a canonical serialization of everything that
// affects compilation and execution — PE count and order, register-file
// sizes, DMA flags, the interconnect (input order matters: it selects mux
// indices), per-op durations and energies, and the context / condition
// memory sizing. Display names (Composition.Name, PE.Name) are excluded, so
// renaming a composition does not invalidate cached artifacts.
//
// Per-PE operation sets are serialized in sorted opcode order, making the
// digest independent of Go's randomized map iteration. Two structurally
// equal compositions hash identically across runs and processes, which is
// what the compiled-artifact cache keys on.
func (c *Composition) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "comp ctx=%d cbox=%d pes=%d\n", c.ContextSize, c.CBoxSlots, len(c.PEs))
	for _, pe := range c.PEs {
		fmt.Fprintf(h, "pe %d rf=%d dma=%t in=%v\n", pe.Index, pe.RegfileSize, pe.HasDMA, pe.Inputs)
		ops := make([]OpCode, 0, len(pe.Ops))
		for op := range pe.Ops {
			ops = append(ops, op)
		}
		sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
		for _, op := range ops {
			info := pe.Ops[op]
			fmt.Fprintf(h, "op %d dur=%d energy=%g\n", int(op), info.Duration, info.Energy)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
