package arch

import "testing"

func TestDegradeMasksPE(t *testing.T) {
	c, err := HomogeneousMesh(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Degrade(c, map[int]bool{3: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Comp.NumPEs(); got != 8 {
		t.Fatalf("degraded composition has %d PEs, want 8", got)
	}
	if err := d.Comp.Validate(); err != nil {
		t.Fatalf("degraded composition invalid: %v", err)
	}
	if d.LogOf[3] != -1 {
		t.Errorf("dead PE still mapped: LogOf[3] = %d", d.LogOf[3])
	}
	for logical, physical := range d.PhysOf {
		if physical == 3 {
			t.Fatal("dead PE survives in PhysOf")
		}
		if d.LogOf[physical] != logical {
			t.Errorf("mapping mismatch: PhysOf[%d]=%d but LogOf[%d]=%d",
				logical, physical, physical, d.LogOf[physical])
		}
	}
	// No surviving PE may list the dead PE (or itself after renumbering).
	for _, pe := range d.Comp.PEs {
		for _, src := range pe.Inputs {
			if src < 0 || src >= d.Comp.NumPEs() {
				t.Errorf("PE %d input %d out of degraded range", pe.Index, src)
			}
		}
	}
}

func TestDegradeCutsLink(t *testing.T) {
	c, err := HomogeneousMesh(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Physical link 0→1 (PE 1 reads PE 0).
	if !c.PEs[1].CanReadFrom(0) {
		t.Fatal("test premise: mesh PE 1 reads PE 0")
	}
	d, err := Degrade(c, nil, map[[2]int]bool{{0, 1}: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Comp.PEs[1].CanReadFrom(0) {
		t.Error("cut link survived degradation")
	}
	// The reverse direction is a separate physical link and must survive.
	if !d.Comp.PEs[0].CanReadFrom(1) {
		t.Error("reverse link was cut too")
	}
}

func TestDegradeRejectsUnusableArray(t *testing.T) {
	c, err := HomogeneousMesh(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Mesh 4 has DMA on PEs 0 and 3; killing both leaves no heap access.
	if _, err := Degrade(c, map[int]bool{0: true, 3: true}, nil); err == nil {
		t.Error("array without DMA PEs accepted")
	}
	all := map[int]bool{0: true, 1: true, 2: true, 3: true}
	if _, err := Degrade(c, all, nil); err == nil {
		t.Error("empty array accepted")
	}
	if _, err := Degrade(c, map[int]bool{9: true}, nil); err == nil {
		t.Error("out-of-range dead PE accepted")
	}
}
