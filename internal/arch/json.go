package arch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// This file implements the JSON composition description of the paper
// (Fig. 8 and Fig. 9). A composition document looks like:
//
//	{
//	  "name": "CGRA1",
//	  "Number_of_PEs": 4,
//	  "PEs": { "0": "PE_mem", "1": { ...inline PE... }, ... },
//	  "Interconnect": { "0": [1, 2], "1": [0, 3], ... },
//	  "Context_memory_length": 256,
//	  "CBox_slots": 32
//	}
//
// A PE entry is either an inline PE description or a string naming an entry
// in a PE library (the paper uses file paths; we resolve names against a
// caller-provided library so parsing needs no file system). A PE description
// mixes fixed keys with one key per operation:
//
//	{
//	  "name": "PE_EXAMPLE",
//	  "Regfile_size": 32,
//	  "DMA": true,
//	  "IADD": {"energy": 1.0, "duration": 1},
//	  "IMUL": {"energy": 1.7, "duration": 2}
//	}

// PEDoc is the JSON form of a PE description.
type peDoc struct {
	Name        string
	RegfileSize int
	DMA         bool
	Ops         map[OpCode]OpInfo
}

type opDoc struct {
	Energy   float64 `json:"energy"`
	Duration int     `json:"duration"`
}

func parsePEDoc(raw json.RawMessage) (*peDoc, error) {
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		return nil, fmt.Errorf("PE description: %v", err)
	}
	doc := &peDoc{Ops: map[OpCode]OpInfo{}}
	for key, val := range fields {
		switch key {
		case "name":
			if err := json.Unmarshal(val, &doc.Name); err != nil {
				return nil, fmt.Errorf("PE name: %v", err)
			}
		case "Regfile_size":
			if err := json.Unmarshal(val, &doc.RegfileSize); err != nil {
				return nil, fmt.Errorf("PE Regfile_size: %v", err)
			}
		case "DMA":
			if err := json.Unmarshal(val, &doc.DMA); err != nil {
				return nil, fmt.Errorf("PE DMA flag: %v", err)
			}
		default:
			op, ok := OpByName(key)
			if !ok {
				return nil, fmt.Errorf("PE description: unknown key or operation %q", key)
			}
			var od opDoc
			if err := json.Unmarshal(val, &od); err != nil {
				return nil, fmt.Errorf("PE op %s: %v", key, err)
			}
			doc.Ops[op] = OpInfo{Energy: od.Energy, Duration: od.Duration}
		}
	}
	if doc.RegfileSize <= 0 {
		return nil, fmt.Errorf("PE %q: missing or non-positive Regfile_size", doc.Name)
	}
	return doc, nil
}

type compDoc struct {
	Name                string                     `json:"name"`
	NumberOfPEs         int                        `json:"Number_of_PEs"`
	PEs                 map[string]json.RawMessage `json:"PEs"`
	Interconnect        map[string][]int           `json:"Interconnect"`
	ContextMemoryLength int                        `json:"Context_memory_length"`
	CBoxSlots           int                        `json:"CBox_slots"`
}

// checkDuplicateKeys walks a document and rejects any object holding the
// same key twice. encoding/json silently keeps the last duplicate, which
// would let a malformed document replace a PE or interconnect entry without
// any diagnostic.
func checkDuplicateKeys(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	return walkDupKeys(dec, "document")
}

func walkDupKeys(dec *json.Decoder, path string) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	d, ok := tok.(json.Delim)
	if !ok {
		return nil
	}
	switch d {
	case '{':
		seen := map[string]bool{}
		for dec.More() {
			keyTok, err := dec.Token()
			if err != nil {
				return err
			}
			key, _ := keyTok.(string)
			if seen[key] {
				return fmt.Errorf("duplicate key %q in %s", key, path)
			}
			seen[key] = true
			if err := walkDupKeys(dec, path+"."+key); err != nil {
				return err
			}
		}
		_, err = dec.Token() // closing '}'
		return err
	case '[':
		for dec.More() {
			if err := walkDupKeys(dec, path+"[]"); err != nil {
				return err
			}
		}
		_, err = dec.Token() // closing ']'
		return err
	}
	return nil
}

// ParseComposition parses a JSON composition document. String-valued PE
// entries are resolved against library (name → PE description JSON);
// library may be nil when all PEs are inline.
func ParseComposition(data []byte, library map[string]json.RawMessage) (*Composition, error) {
	if err := checkDuplicateKeys(data); err != nil {
		return nil, fmt.Errorf("composition: %v", err)
	}
	var doc compDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("composition: %v", err)
	}
	if doc.NumberOfPEs <= 0 {
		return nil, fmt.Errorf("composition %q: Number_of_PEs must be positive", doc.Name)
	}
	if len(doc.PEs) != doc.NumberOfPEs {
		return nil, fmt.Errorf("composition %q: Number_of_PEs is %d but %d PE entries given",
			doc.Name, doc.NumberOfPEs, len(doc.PEs))
	}
	if doc.ContextMemoryLength <= 0 {
		return nil, fmt.Errorf("composition %q: Context_memory_length must be positive (got %d)",
			doc.Name, doc.ContextMemoryLength)
	}
	if doc.CBoxSlots <= 0 {
		return nil, fmt.Errorf("composition %q: CBox_slots must be positive (got %d)",
			doc.Name, doc.CBoxSlots)
	}
	c := &Composition{
		Name:        doc.Name,
		ContextSize: doc.ContextMemoryLength,
		CBoxSlots:   doc.CBoxSlots,
		PEs:         make([]*PE, doc.NumberOfPEs),
	}
	for key, raw := range doc.PEs {
		idx, err := strconv.Atoi(key)
		if err != nil || idx < 0 || idx >= doc.NumberOfPEs {
			return nil, fmt.Errorf("composition %q: bad PE index %q", doc.Name, key)
		}
		// A string entry names a library PE; otherwise it is inline.
		var name string
		if err := json.Unmarshal(raw, &name); err == nil {
			lib, ok := library[name]
			if !ok {
				return nil, fmt.Errorf("composition %q: PE %d references unknown library entry %q",
					doc.Name, idx, name)
			}
			raw = lib
		}
		pd, err := parsePEDoc(raw)
		if err != nil {
			return nil, fmt.Errorf("composition %q: PE %d: %v", doc.Name, idx, err)
		}
		pe := &PE{
			Name:        pd.Name,
			Index:       idx,
			RegfileSize: pd.RegfileSize,
			HasDMA:      pd.DMA,
			Ops:         pd.Ops,
		}
		c.PEs[idx] = pe
	}
	for key, srcs := range doc.Interconnect {
		idx, err := strconv.Atoi(key)
		if err != nil || idx < 0 || idx >= doc.NumberOfPEs {
			return nil, fmt.Errorf("composition %q: interconnect references bad PE %q", doc.Name, key)
		}
		for _, src := range srcs {
			if src < 0 || src >= doc.NumberOfPEs {
				return nil, fmt.Errorf("composition %q: interconnect edge %d <- %d references unknown PE %d",
					doc.Name, idx, src, src)
			}
		}
		c.PEs[idx].Inputs = append([]int(nil), srcs...)
		sort.Ints(c.PEs[idx].Inputs)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MarshalComposition renders a composition back to its JSON document with
// all PEs inline. ParseComposition(MarshalComposition(c)) reproduces c.
func MarshalComposition(c *Composition) ([]byte, error) {
	doc := compDoc{
		Name:                c.Name,
		NumberOfPEs:         len(c.PEs),
		PEs:                 map[string]json.RawMessage{},
		Interconnect:        map[string][]int{},
		ContextMemoryLength: c.ContextSize,
		CBoxSlots:           c.CBoxSlots,
	}
	for _, pe := range c.PEs {
		fields := map[string]interface{}{
			"name":         pe.Name,
			"Regfile_size": pe.RegfileSize,
		}
		if pe.HasDMA {
			fields["DMA"] = true
		}
		for op, info := range pe.Ops {
			fields[op.String()] = opDoc{Energy: info.Energy, Duration: info.Duration}
		}
		raw, err := json.Marshal(fields)
		if err != nil {
			return nil, err
		}
		doc.PEs[strconv.Itoa(pe.Index)] = raw
		doc.Interconnect[strconv.Itoa(pe.Index)] = append([]int(nil), pe.Inputs...)
	}
	return json.MarshalIndent(doc, "", "  ")
}
