package arch

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestOpByNameRoundTrip(t *testing.T) {
	for _, op := range AllOpCodes() {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := OpByName("IDIV"); ok {
		t.Error("IDIV should not exist (paper excludes division)")
	}
}

func TestOpClassification(t *testing.T) {
	for _, op := range []OpCode{IFLT, IFLE, IFGT, IFGE, IFEQ, IFNE} {
		if !op.IsCompare() {
			t.Errorf("%v should be a compare", op)
		}
	}
	for _, op := range []OpCode{IADD, MOVE, LOAD, NOP} {
		if op.IsCompare() {
			t.Errorf("%v should not be a compare", op)
		}
	}
	if !LOAD.IsDMA() || !STORE.IsDMA() || IADD.IsDMA() {
		t.Error("DMA classification wrong")
	}
	if NOP.IsALU() || !MOVE.IsALU() {
		t.Error("ALU classification wrong")
	}
}

func TestOpArity(t *testing.T) {
	cases := map[OpCode]int{
		NOP: 0, CONST: 0, MOVE: 1, INEG: 1, INOT: 1, LOAD: 1,
		STORE: 2, IADD: 2, IFEQ: 2, ISHL: 2,
	}
	for op, want := range cases {
		if got := op.Arity(); got != want {
			t.Errorf("%v.Arity() = %d, want %d", op, got, want)
		}
	}
}

func TestMeshStructure(t *testing.T) {
	c, err := Mesh(MeshOptions{Rows: 3, Cols: 3})
	if err != nil {
		t.Fatalf("mesh: %v", err)
	}
	if c.NumPEs() != 9 {
		t.Fatalf("NumPEs = %d", c.NumPEs())
	}
	// Centre PE 4 sees all four neighbours.
	want := []int{1, 3, 5, 7}
	got := c.PEs[4].Inputs
	if len(got) != len(want) {
		t.Fatalf("centre inputs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("centre inputs = %v, want %v", got, want)
		}
	}
	// Corner PE 0 sees two.
	if len(c.PEs[0].Inputs) != 2 {
		t.Errorf("corner inputs = %v", c.PEs[0].Inputs)
	}
	// Mesh interconnect is symmetric.
	for _, pe := range c.PEs {
		for _, src := range pe.Inputs {
			if !c.PEs[src].CanReadFrom(pe.Index) {
				t.Errorf("mesh asymmetry: %d reads %d but not vice versa", pe.Index, src)
			}
		}
	}
}

func TestEvaluatedCompositions(t *testing.T) {
	all, err := EvaluatedCompositions(2)
	if err != nil {
		t.Fatalf("EvaluatedCompositions: %v", err)
	}
	if len(all) != 12 {
		t.Fatalf("got %d compositions, want 12", len(all))
	}
	wantPEs := []int{4, 6, 8, 9, 12, 16, 8, 8, 8, 8, 8, 8}
	for i, c := range all {
		if c.NumPEs() != wantPEs[i] {
			t.Errorf("%s: %d PEs, want %d", c.Name, c.NumPEs(), wantPEs[i])
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if n := len(c.DMAPEs()); n == 0 || n > MaxDMAPEs {
			t.Errorf("%s: %d DMA PEs", c.Name, n)
		}
	}
}

func TestIrregularF(t *testing.T) {
	f, err := IrregularComposition("F", 2)
	if err != nil {
		t.Fatalf("F: %v", err)
	}
	mulPEs := f.SupportingPEs(IMUL)
	if len(mulPEs) != 2 {
		t.Fatalf("F has %d multiplier PEs, want 2 (paper: DSP util -75%%)", len(mulPEs))
	}
	d, err := IrregularComposition("D", 2)
	if err != nil {
		t.Fatalf("D: %v", err)
	}
	// F shares D's interconnect.
	for i := range f.PEs {
		if len(f.PEs[i].Inputs) != len(d.PEs[i].Inputs) {
			t.Errorf("PE %d: F inputs %v != D inputs %v", i, f.PEs[i].Inputs, d.PEs[i].Inputs)
		}
	}
	// B must have strictly less interconnect than D.
	b, err := IrregularComposition("B", 2)
	if err != nil {
		t.Fatalf("B: %v", err)
	}
	edges := func(c *Composition) int {
		n := 0
		for _, pe := range c.PEs {
			n += len(pe.Inputs)
		}
		return n
	}
	if edges(b) >= edges(d) {
		t.Errorf("B edges (%d) should be < D edges (%d)", edges(b), edges(d))
	}
}

func TestSetMulDuration(t *testing.T) {
	c, err := HomogeneousMesh(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.PEs[0].Duration(IMUL); d != 2 {
		t.Fatalf("block multiplier duration = %d, want 2", d)
	}
	clone := c.Clone()
	clone.SetMulDuration(1)
	if d := clone.PEs[0].Duration(IMUL); d != 1 {
		t.Errorf("single-cycle duration = %d", d)
	}
	if d := c.PEs[0].Duration(IMUL); d != 2 {
		t.Errorf("Clone does not isolate op maps: original duration changed to %d", d)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Composition {
		c, err := HomogeneousMesh(4, 2)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c := base()
	c.PEs[1].Inputs = []int{99}
	if err := c.Validate(); err == nil {
		t.Error("out-of-range input accepted")
	}
	c = base()
	c.PEs[1].Inputs = []int{1}
	if err := c.Validate(); err == nil {
		t.Error("self-loop accepted")
	}
	c = base()
	c.PEs[1].Inputs = []int{0, 0}
	if err := c.Validate(); err == nil {
		t.Error("duplicate input accepted")
	}
	c8, err := HomogeneousMesh(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, pe := range c8.PEs {
		pe.HasDMA = true
		pe.Ops[LOAD] = OpInfo{Energy: 1, Duration: 2}
		pe.Ops[STORE] = OpInfo{Energy: 1, Duration: 2}
	}
	if err := c8.Validate(); err == nil {
		t.Error("5+ DMA PEs accepted (limit is 4)")
	}
	c = base()
	for _, pe := range c.PEs {
		pe.HasDMA = false
		delete(pe.Ops, LOAD)
		delete(pe.Ops, STORE)
	}
	if err := c.Validate(); err == nil {
		t.Error("composition without DMA accepted")
	}
	c = base()
	c.PEs[0].HasDMA = false // but still supports LOAD
	if err := c.Validate(); err == nil {
		t.Error("inconsistent DMA flag accepted")
	}
	c = base()
	c.ContextSize = 0
	if err := c.Validate(); err == nil {
		t.Error("zero context size accepted")
	}
	c = base()
	c.PEs[2].Ops[IADD] = OpInfo{Energy: 1, Duration: 0}
	if err := c.Validate(); err == nil {
		t.Error("zero-duration op accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	all, err := EvaluatedCompositions(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range all {
		data, err := MarshalComposition(c)
		if err != nil {
			t.Fatalf("%s: marshal: %v", c.Name, err)
		}
		back, err := ParseComposition(data, nil)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.Name, err)
		}
		if back.Name != c.Name || back.NumPEs() != c.NumPEs() ||
			back.ContextSize != c.ContextSize || back.CBoxSlots != c.CBoxSlots {
			t.Errorf("%s: round trip changed header", c.Name)
		}
		for i := range c.PEs {
			a, b := c.PEs[i], back.PEs[i]
			if a.RegfileSize != b.RegfileSize || a.HasDMA != b.HasDMA ||
				len(a.Inputs) != len(b.Inputs) || len(a.Ops) != len(b.Ops) {
				t.Errorf("%s: PE %d differs after round trip", c.Name, i)
			}
			for op, info := range a.Ops {
				if b.Ops[op] != info {
					t.Errorf("%s: PE %d op %v differs", c.Name, i, op)
				}
			}
		}
	}
}

func TestParseCompositionLibraryRefs(t *testing.T) {
	lib := map[string]json.RawMessage{
		"PE_no_mem": json.RawMessage(`{
			"name": "PE_no_mem", "Regfile_size": 32,
			"IADD": {"energy": 1.0, "duration": 1},
			"IFGE": {"energy": 1.1, "duration": 1}
		}`),
		"PE_mem": json.RawMessage(`{
			"name": "PE_mem", "Regfile_size": 32, "DMA": true,
			"IADD": {"energy": 1.0, "duration": 1},
			"LOAD": {"energy": 2.5, "duration": 2},
			"STORE": {"energy": 2.5, "duration": 2}
		}`),
	}
	doc := `{
		"name": "CGRA1",
		"Number_of_PEs": 2,
		"PEs": {"0": "PE_mem", "1": "PE_no_mem"},
		"Interconnect": {"0": [1], "1": [0]},
		"Context_memory_length": 256,
		"CBox_slots": 32
	}`
	c, err := ParseComposition([]byte(doc), lib)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !c.PEs[0].HasDMA || c.PEs[1].HasDMA {
		t.Error("DMA flags wrong")
	}
	if !c.PEs[1].Supports(IFGE) {
		t.Error("PE 1 should support IFGE")
	}
}

func TestParseCompositionErrors(t *testing.T) {
	cases := []string{
		`{`, // bad JSON
		`{"name":"x","Number_of_PEs":0,"PEs":{},"Context_memory_length":1,"CBox_slots":1}`,
		`{"name":"x","Number_of_PEs":2,"PEs":{"0":"missing"},"Context_memory_length":1,"CBox_slots":1}`,
		`{"name":"x","Number_of_PEs":1,"PEs":{"0":{"name":"p","Regfile_size":4,"BOGUS":{"energy":1,"duration":1}}},"Context_memory_length":1,"CBox_slots":1}`,
		`{"name":"x","Number_of_PEs":1,"PEs":{"7":{"name":"p","Regfile_size":4}},"Context_memory_length":1,"CBox_slots":1}`,
	}
	for i, doc := range cases {
		if _, err := ParseComposition([]byte(doc), nil); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestFanOutAndDegree(t *testing.T) {
	c, err := HomogeneousMesh(4, 2) // 2x2
	if err != nil {
		t.Fatal(err)
	}
	fo := c.FanOut(0)
	if len(fo) != 2 {
		t.Errorf("FanOut(0) = %v", fo)
	}
	if c.Degree(0) != 4 { // 2 in + 2 out
		t.Errorf("Degree(0) = %d", c.Degree(0))
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("9 PEs")
	if err != nil || c.NumPEs() != 9 {
		t.Errorf("ByName(9 PEs): %v", err)
	}
	c, err = ByName("8 PEs D")
	if err != nil || c.NumPEs() != 8 {
		t.Errorf("ByName(8 PEs D): %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown name")
	}
}

func TestOpSpectrumSorted(t *testing.T) {
	f := func(seed uint8) bool {
		c, err := HomogeneousMesh(8, 2)
		if err != nil {
			return false
		}
		// Remove a pseudo-random subset of ops from PE 1.
		for i, op := range c.OpSpectrum() {
			if (uint8(i)+seed)%3 == 0 && op != NOP {
				delete(c.PEs[1].Ops, op)
			}
		}
		spec := c.OpSpectrum()
		for i := 1; i < len(spec); i++ {
			if spec[i-1] >= spec[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSupportingPEs(t *testing.T) {
	f, err := IrregularComposition("F", 2)
	if err != nil {
		t.Fatal(err)
	}
	adders := f.SupportingPEs(IADD)
	if len(adders) != 8 {
		t.Errorf("all PEs should add, got %v", adders)
	}
	loaders := f.SupportingPEs(LOAD)
	if len(loaders) != len(f.DMAPEs()) {
		t.Errorf("LOAD support %v != DMA PEs %v", loaders, f.DMAPEs())
	}
}

func TestLoadCompositionFile(t *testing.T) {
	c, err := LoadCompositionFile("../../compositions/cgra4.json", "")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if c.Name != "CGRA4" || c.NumPEs() != 4 {
		t.Errorf("loaded %s with %d PEs", c.Name, c.NumPEs())
	}
	if got := c.DMAPEs(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("DMA PEs = %v", got)
	}
	if !c.PEs[1].Supports(IMUL) {
		t.Error("library PE missing IMUL")
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLoadPELibraryErrors(t *testing.T) {
	if _, err := LoadPELibrary("/nonexistent-dir"); err == nil {
		t.Error("missing directory accepted")
	}
}
