package arch

import (
	"fmt"
	"sort"
)

// Degraded couples a masked composition with the index mappings between its
// renumbered PEs and the physical PEs of the original array. The recovery
// layer schedules onto Comp while the fault injector keeps naming physical
// PEs; PhysOf translates between the two.
type Degraded struct {
	// Comp is the degraded composition (dead PEs removed, dead links cut,
	// remaining PEs renumbered densely).
	Comp *Composition
	// PhysOf[logical] is the physical index of logical PE `logical`.
	PhysOf []int
	// LogOf[physical] is the logical index of physical PE `physical`,
	// or -1 when the PE is masked out.
	LogOf []int
}

// Degrade masks failed hardware out of a composition: every PE in deadPEs
// disappears (with all its links), and every directed link in deadLinks is
// cut. The surviving PEs are renumbered densely so the scheduler, router
// and context generator see an ordinary (smaller, more irregular)
// composition; Floyd all-pairs routing is recomputed from scratch by the
// scheduler on the result.
//
// Degrade fails when the remaining array is no longer a usable CGRA (no
// PEs, no DMA access to the host heap, broken Validate invariants); the
// caller then falls back to host execution. Connectivity of the survivors
// is not checked here — the scheduler rejects disconnected compositions
// with its own error, which the recovery loop treats the same way.
func Degrade(c *Composition, deadPEs map[int]bool, deadLinks map[[2]int]bool) (*Degraded, error) {
	for pe := range deadPEs {
		if pe < 0 || pe >= len(c.PEs) {
			return nil, fmt.Errorf("arch: degrade %s: dead PE %d out of range", c.Name, pe)
		}
	}
	for l := range deadLinks {
		if l[0] < 0 || l[0] >= len(c.PEs) || l[1] < 0 || l[1] >= len(c.PEs) {
			return nil, fmt.Errorf("arch: degrade %s: dead link %d-%d out of range", c.Name, l[0], l[1])
		}
	}
	d := &Degraded{
		Comp: &Composition{
			Name:        c.Name + " (degraded)",
			ContextSize: c.ContextSize,
			CBoxSlots:   c.CBoxSlots,
		},
		LogOf: make([]int, len(c.PEs)),
	}
	for i := range d.LogOf {
		d.LogOf[i] = -1
	}
	for _, pe := range c.PEs {
		if deadPEs[pe.Index] {
			continue
		}
		d.LogOf[pe.Index] = len(d.PhysOf)
		d.PhysOf = append(d.PhysOf, pe.Index)
	}
	if len(d.PhysOf) == 0 {
		return nil, fmt.Errorf("arch: degrade %s: no PEs survive", c.Name)
	}
	for logical, physical := range d.PhysOf {
		old := c.PEs[physical]
		pe := &PE{
			Name:        old.Name,
			Index:       logical,
			RegfileSize: old.RegfileSize,
			HasDMA:      old.HasDMA,
			Ops:         make(map[OpCode]OpInfo, len(old.Ops)),
		}
		for op, info := range old.Ops {
			pe.Ops[op] = info
		}
		for _, src := range old.Inputs {
			if deadPEs[src] || deadLinks[[2]int{src, physical}] {
				continue
			}
			pe.Inputs = append(pe.Inputs, d.LogOf[src])
		}
		sort.Ints(pe.Inputs)
		d.Comp.PEs = append(d.Comp.PEs, pe)
	}
	if err := d.Comp.Validate(); err != nil {
		return nil, fmt.Errorf("arch: degrade: %v", err)
	}
	return d, nil
}
