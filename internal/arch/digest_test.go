package arch

import "testing"

// buildComp constructs a small inhomogeneous composition, inserting each
// PE's op set in the given order. The op map content is identical across
// orders, so the digest must be, too.
func buildComp(opOrder []OpCode) *Composition {
	c := &Composition{Name: "digest-test", ContextSize: 64, CBoxSlots: 8}
	for i := 0; i < 4; i++ {
		pe := &PE{
			Name:        "PE",
			Index:       i,
			RegfileSize: 16,
			Ops:         map[OpCode]OpInfo{},
			Inputs:      []int{(i + 1) % 4, (i + 3) % 4},
		}
		for _, op := range opOrder {
			pe.Ops[op] = OpInfo{Duration: 1 + int(op)%2, Energy: float64(op) * 0.25}
		}
		if i == 0 {
			pe.HasDMA = true
			pe.Ops[LOAD] = OpInfo{Duration: 2}
			pe.Ops[STORE] = OpInfo{Duration: 2}
		}
		c.PEs = append(c.PEs, pe)
	}
	return c
}

func TestCompositionDigestMapOrderIndependent(t *testing.T) {
	forward := []OpCode{IADD, ISUB, IMUL, IAND, IFLT, IFGE, MOVE, CONST}
	reverse := make([]OpCode, len(forward))
	for i, op := range forward {
		reverse[len(forward)-1-i] = op
	}
	rotated := append(append([]OpCode(nil), forward[3:]...), forward[:3]...)

	want := buildComp(forward).Digest()
	if len(want) != 64 {
		t.Fatalf("digest %q is not a sha256 hex string", want)
	}
	for name, order := range map[string][]OpCode{"reverse": reverse, "rotated": rotated} {
		if got := buildComp(order).Digest(); got != want {
			t.Errorf("insertion order %s changed the digest: %s != %s", name, got, want)
		}
	}
	// Go randomizes map iteration per run of the range loop; hammering the
	// digest repeatedly would catch any dependence on it.
	c := buildComp(forward)
	for i := 0; i < 100; i++ {
		if got := c.Digest(); got != want {
			t.Fatalf("digest unstable on iteration %d: %s != %s", i, got, want)
		}
	}
}

func TestCompositionDigestIgnoresNames(t *testing.T) {
	a := buildComp([]OpCode{IADD, IMUL})
	b := buildComp([]OpCode{IADD, IMUL})
	b.Name = "renamed"
	b.PEs[0].Name = "PE_mem_renamed"
	if a.Digest() != b.Digest() {
		t.Fatal("display names must not affect the structural digest")
	}
}

func TestCompositionDigestDiscriminates(t *testing.T) {
	base := buildComp([]OpCode{IADD, IMUL}).Digest()
	for what, mutate := range map[string]func(*Composition){
		"rf size":       func(c *Composition) { c.PEs[1].RegfileSize = 8 },
		"context size":  func(c *Composition) { c.ContextSize = 128 },
		"cbox slots":    func(c *Composition) { c.CBoxSlots = 4 },
		"input order":   func(c *Composition) { in := c.PEs[2].Inputs; in[0], in[1] = in[1], in[0] },
		"op duration":   func(c *Composition) { c.PEs[3].Ops[IMUL] = OpInfo{Duration: 5, Energy: c.PEs[3].Ops[IMUL].Energy} },
		"op energy":     func(c *Composition) { c.PEs[3].Ops[IADD] = OpInfo{Duration: 1, Energy: 99} },
		"extra op":      func(c *Composition) { c.PEs[1].Ops[IXOR] = OpInfo{Duration: 1} },
		"dma flag":      func(c *Composition) { c.PEs[1].HasDMA = true },
		"fewer PEs":     func(c *Composition) { c.PEs = c.PEs[:3] },
		"library clone": func(c *Composition) { c.PEs[0].Ops[LOAD] = OpInfo{Duration: 3} },
	} {
		c := buildComp([]OpCode{IADD, IMUL})
		mutate(c)
		if c.Digest() == base {
			t.Errorf("mutation %q did not change the digest", what)
		}
	}
}

func TestLibraryCompositionDigestsDistinct(t *testing.T) {
	comps, err := HomogeneousMeshes(2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, c := range comps {
		d := c.Digest()
		if prev, dup := seen[d]; dup {
			t.Fatalf("compositions %q and %q share a digest", c.Name, prev)
		}
		seen[d] = c.Name
		// Clone must hash identically: Clone is how degraded and explored
		// variants start out.
		if c.Clone().Digest() != d {
			t.Fatalf("clone of %q hashes differently", c.Name)
		}
	}
}
