// Package arch models CGRA compositions: the set of processing elements
// (PEs), the operations each PE implements (with per-op energy and duration),
// the irregular interconnect, and the sizing of context memories and the
// C-Box condition memory. It corresponds to the paper's "CGRA model" that
// both the scheduler and the Verilog generator consume (Fig. 7 / Fig. 10).
package arch

import "fmt"

// OpCode enumerates the machine operations a PE can implement. The names
// follow the paper's JSON example (IADD, ISUB, IMUL, IFGE, IFLT, NOP, ...):
// integer arithmetic/logic, status-producing compares evaluated by the C-Box,
// register moves, immediate loads, and DMA memory accesses.
type OpCode int

// Machine operations.
const (
	NOP OpCode = iota
	// MOVE copies a value (own RF or routed from a neighbour) into the RF.
	// It implements the scheduler's copy insertion and unfused pWRITEs.
	MOVE
	// CONST writes an immediate from the context into the RF.
	CONST
	IADD
	ISUB
	IMUL
	IAND
	IOR
	IXOR
	ISHL
	ISHR  // arithmetic shift right
	IUSHR // logical shift right
	INEG
	INOT
	// Status-producing compares; the result bit is routed to the C-Box.
	IFLT
	IFLE
	IFGT
	IFGE
	IFEQ
	IFNE
	// DMA operations (only on PEs with a DMA interface).
	LOAD
	STORE

	numOpCodes int = iota
)

var opNames = [numOpCodes]string{
	NOP: "NOP", MOVE: "MOVE", CONST: "CONST",
	IADD: "IADD", ISUB: "ISUB", IMUL: "IMUL",
	IAND: "IAND", IOR: "IOR", IXOR: "IXOR",
	ISHL: "ISHL", ISHR: "ISHR", IUSHR: "IUSHR",
	INEG: "INEG", INOT: "INOT",
	IFLT: "IFLT", IFLE: "IFLE", IFGT: "IFGT",
	IFGE: "IFGE", IFEQ: "IFEQ", IFNE: "IFNE",
	LOAD: "LOAD", STORE: "STORE",
}

func (op OpCode) String() string {
	if op >= 0 && int(op) < numOpCodes {
		return opNames[op]
	}
	return fmt.Sprintf("OpCode(%d)", int(op))
}

// OpByName resolves the JSON spelling of an operation.
func OpByName(name string) (OpCode, bool) {
	for i, n := range opNames {
		if n == name {
			return OpCode(i), true
		}
	}
	return NOP, false
}

// AllOpCodes returns every defined opcode, in declaration order.
func AllOpCodes() []OpCode {
	ops := make([]OpCode, numOpCodes)
	for i := range ops {
		ops[i] = OpCode(i)
	}
	return ops
}

// IsCompare reports whether op produces a status bit for the C-Box.
func (op OpCode) IsCompare() bool { return op >= IFLT && op <= IFNE }

// IsDMA reports whether op accesses host memory via the DMA interface.
func (op OpCode) IsDMA() bool { return op == LOAD || op == STORE }

// IsALU reports whether op runs on the PE's ALU data path (everything except
// NOP; MOVE and CONST occupy the ALU issue slot for one cycle).
func (op OpCode) IsALU() bool { return op != NOP }

// Arity returns the number of register operands op consumes.
func (op OpCode) Arity() int {
	switch op {
	case NOP, CONST:
		return 0
	case MOVE, INEG, INOT:
		return 1
	case LOAD:
		return 1 // index (the array handle is a pseudo-constant in the context)
	case STORE:
		return 2 // index, value
	default:
		return 2
	}
}

// OpInfo carries the per-PE implementation parameters of one operation,
// matching the paper's PE description ("IADD": {"energy":1.0, "duration":1}).
type OpInfo struct {
	// Energy is the relative energy per execution (arbitrary units).
	Energy float64
	// Duration is the operation latency in cycles (>= 1). The paper
	// evaluates both a two-cycle block multiplier and a single-cycle
	// multiplier (Table II vs Table III).
	Duration int
}
