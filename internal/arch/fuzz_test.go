package arch

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseComposition feeds arbitrary documents through the composition
// parser. The parser must reject garbage with an error — never panic — and
// any accepted composition must satisfy its own Validate contract. Seeded
// from the real documents under compositions/.
func FuzzParseComposition(f *testing.F) {
	for _, name := range []string{"cgra4.json", "PE_mem.json", "PE_no_mem.json"} {
		data, err := os.ReadFile(filepath.Join("..", "..", "compositions", name))
		if err != nil {
			f.Fatalf("seed corpus: %v", err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","Number_of_PEs":1,"PEs":{"0":{"Regfile_size":1}},"Context_memory_length":1,"CBox_slots":1}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	lib, err := LoadPELibrary(filepath.Join("..", "..", "compositions"))
	if err != nil {
		f.Fatalf("seed library: %v", err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseComposition(data, lib)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Errorf("parser accepted a composition its own Validate rejects: %v", err)
		}
	})
}
