package arch

import (
	"fmt"
	"sort"
)

// MaxDMAPEs is the architectural limit on PEs with a DMA interface
// (paper §IV-A1: "up to four PEs can feature a DMA interface").
const MaxDMAPEs = 4

// PE describes one processing element of a composition.
type PE struct {
	// Name labels the PE kind (e.g. "PE_mem", "PE_no_mem").
	Name string
	// Index is the PE's position in the composition.
	Index int
	// RegfileSize is the number of RF entries.
	RegfileSize int
	// Ops maps each implemented operation to its parameters. PEs are
	// inhomogeneous: different PEs may implement different operation sets.
	Ops map[OpCode]OpInfo
	// HasDMA marks PEs with a direct-memory-access interface to the host
	// heap. Their RF has a third read port for the access index and a
	// third input multiplexer path for incoming memory data (§IV-A1).
	HasDMA bool
	// Inputs lists the PE indices whose routing output (outl) this PE can
	// read. The interconnect is arbitrary and possibly irregular.
	Inputs []int
}

// Supports reports whether the PE implements op. NOP is always available.
func (pe *PE) Supports(op OpCode) bool {
	if op == NOP {
		return true
	}
	_, ok := pe.Ops[op]
	return ok
}

// Duration returns the latency of op on this PE (1 if unknown, so callers
// can query NOP uniformly).
func (pe *PE) Duration(op OpCode) int {
	if info, ok := pe.Ops[op]; ok && info.Duration > 0 {
		return info.Duration
	}
	return 1
}

// Energy returns the energy cost of op on this PE.
func (pe *PE) Energy(op OpCode) float64 {
	if info, ok := pe.Ops[op]; ok {
		return info.Energy
	}
	return 0
}

// CanReadFrom reports whether this PE has a routing input from src.
func (pe *PE) CanReadFrom(src int) bool {
	for _, in := range pe.Inputs {
		if in == src {
			return true
		}
	}
	return false
}

// Composition is a full CGRA instance: its PEs, interconnect, and the sizing
// of the context memories and the C-Box condition memory. The paper calls
// the infrastructure plus the operation spectrum the "composition".
type Composition struct {
	Name string
	PEs  []*PE
	// ContextSize is the depth of each context memory (number of contexts).
	ContextSize int
	// CBoxSlots is the size of the C-Box condition memory; it limits the
	// number of parallel branch/loop conditions in flight (§IV footnote 2).
	CBoxSlots int
}

// NumPEs returns the number of processing elements.
func (c *Composition) NumPEs() int { return len(c.PEs) }

// DMAPEs returns the indices of PEs with a DMA interface, ascending.
func (c *Composition) DMAPEs() []int {
	var out []int
	for _, pe := range c.PEs {
		if pe.HasDMA {
			out = append(out, pe.Index)
		}
	}
	return out
}

// FanOut returns the indices of PEs that can read from PE src (the reverse
// of the Inputs relation), ascending.
func (c *Composition) FanOut(src int) []int {
	var out []int
	for _, pe := range c.PEs {
		if pe.CanReadFrom(src) {
			out = append(out, pe.Index)
		}
	}
	return out
}

// Degree returns the total connectivity of PE i (inputs + distinct readers).
// The scheduler uses it to break attraction ties: better-connected PEs make
// later routing easier (§V-G).
func (c *Composition) Degree(i int) int {
	return len(c.PEs[i].Inputs) + len(c.FanOut(i))
}

// SupportingPEs returns the indices of PEs implementing op, ascending.
func (c *Composition) SupportingPEs(op OpCode) []int {
	var out []int
	for _, pe := range c.PEs {
		if pe.Supports(op) {
			out = append(out, pe.Index)
		}
	}
	return out
}

// Validate checks architectural constraints: consistent indices, at most
// four DMA PEs, interconnect references in range, no self-loops, positive
// RF and memory sizes, and every op parameterized with a positive duration.
func (c *Composition) Validate() error {
	if len(c.PEs) == 0 {
		return fmt.Errorf("composition %s: no PEs", c.Name)
	}
	if c.ContextSize <= 0 {
		return fmt.Errorf("composition %s: non-positive context memory length", c.Name)
	}
	if c.CBoxSlots <= 0 {
		return fmt.Errorf("composition %s: non-positive C-Box condition memory size", c.Name)
	}
	dma := 0
	for i, pe := range c.PEs {
		if pe == nil {
			return fmt.Errorf("composition %s: PE %d is nil", c.Name, i)
		}
		if pe.Index != i {
			return fmt.Errorf("composition %s: PE at position %d has index %d", c.Name, i, pe.Index)
		}
		if pe.RegfileSize <= 0 {
			return fmt.Errorf("composition %s: PE %d has non-positive RF size", c.Name, i)
		}
		if pe.HasDMA {
			dma++
		}
		if pe.HasDMA != (pe.Supports(LOAD) || pe.Supports(STORE)) {
			return fmt.Errorf("composition %s: PE %d DMA flag inconsistent with LOAD/STORE support", c.Name, i)
		}
		seen := map[int]bool{}
		for _, src := range pe.Inputs {
			if src < 0 || src >= len(c.PEs) {
				return fmt.Errorf("composition %s: PE %d input %d out of range", c.Name, i, src)
			}
			if src == i {
				return fmt.Errorf("composition %s: PE %d has a self-loop input", c.Name, i)
			}
			if seen[src] {
				return fmt.Errorf("composition %s: PE %d lists input %d twice", c.Name, i, src)
			}
			seen[src] = true
		}
		for op, info := range pe.Ops {
			if info.Duration <= 0 {
				return fmt.Errorf("composition %s: PE %d op %v has non-positive duration", c.Name, i, op)
			}
		}
	}
	if dma > MaxDMAPEs {
		return fmt.Errorf("composition %s: %d DMA PEs exceed the architectural limit of %d", c.Name, dma, MaxDMAPEs)
	}
	if dma == 0 {
		return fmt.Errorf("composition %s: at least one PE needs DMA to reach the host heap", c.Name)
	}
	return nil
}

// OpSpectrum returns the union of operations over all PEs, sorted.
func (c *Composition) OpSpectrum() []OpCode {
	set := map[OpCode]bool{}
	for _, pe := range c.PEs {
		for op := range pe.Ops {
			set[op] = true
		}
	}
	out := make([]OpCode, 0, len(set))
	for op := range set {
		out = append(out, op)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxRegfileSize returns the largest RF among the PEs.
func (c *Composition) MaxRegfileSize() int {
	m := 0
	for _, pe := range c.PEs {
		if pe.RegfileSize > m {
			m = pe.RegfileSize
		}
	}
	return m
}

// Clone deep-copies the composition so callers can vary op parameters
// (e.g. multiplier latency) without mutating shared instances.
func (c *Composition) Clone() *Composition {
	n := &Composition{Name: c.Name, ContextSize: c.ContextSize, CBoxSlots: c.CBoxSlots}
	for _, pe := range c.PEs {
		cp := &PE{
			Name:        pe.Name,
			Index:       pe.Index,
			RegfileSize: pe.RegfileSize,
			HasDMA:      pe.HasDMA,
			Inputs:      append([]int(nil), pe.Inputs...),
			Ops:         make(map[OpCode]OpInfo, len(pe.Ops)),
		}
		for op, info := range pe.Ops {
			cp.Ops[op] = info
		}
		n.PEs = append(n.PEs, cp)
	}
	return n
}

// SetMulDuration sets the multiplier latency on every PE implementing IMUL:
// 2 models the paper's block multiplier, 1 the single-cycle multiplier
// variant of Table III.
func (c *Composition) SetMulDuration(d int) {
	for _, pe := range c.PEs {
		if info, ok := pe.Ops[IMUL]; ok {
			info.Duration = d
			pe.Ops[IMUL] = info
		}
	}
}
