package arch

import (
	"fmt"
	"sort"
)

// This file constructs the compositions evaluated in the paper: the six
// homogeneous mesh CGRAs of Fig. 13 (4, 6, 8, 9, 12 and 16 PEs) and the six
// irregular 8-PE compositions A–F of Fig. 14. The figures are drawings, not
// machine-readable netlists, so DMA placement and the exact irregular edge
// sets are documented approximations chosen to preserve each composition's
// described character (B: very little interconnect; D: well connected and
// fastest; F: same interconnect as D but only two PEs with multipliers).

// Default sizing used throughout the evaluation (paper §VI-B).
const (
	DefaultContextSize = 256
	DefaultRFSize      = 128
	DefaultCBoxSlots   = 32
	// DefaultDMALatency is the LOAD/STORE duration in cycles.
	DefaultDMALatency = 2
)

// StandardOps returns the homogeneous operation set of the evaluated
// compositions: 32-bit logic operations, addition, subtraction and
// multiplication (§VI-B), plus moves, immediates and the compare operations
// every control-flow-capable PE needs. mulDuration selects the block
// multiplier (2) or the single-cycle multiplier (1). withDMA adds the
// LOAD/STORE pair.
func StandardOps(mulDuration int, withDMA bool) map[OpCode]OpInfo {
	ops := map[OpCode]OpInfo{
		NOP:   {Energy: 0.7, Duration: 1},
		MOVE:  {Energy: 0.8, Duration: 1},
		CONST: {Energy: 0.8, Duration: 1},
		IADD:  {Energy: 1.0, Duration: 1},
		ISUB:  {Energy: 1.3, Duration: 1},
		IMUL:  {Energy: 1.7, Duration: mulDuration},
		IAND:  {Energy: 0.9, Duration: 1},
		IOR:   {Energy: 0.9, Duration: 1},
		IXOR:  {Energy: 0.9, Duration: 1},
		ISHL:  {Energy: 1.0, Duration: 1},
		ISHR:  {Energy: 1.0, Duration: 1},
		IUSHR: {Energy: 1.0, Duration: 1},
		INEG:  {Energy: 1.0, Duration: 1},
		INOT:  {Energy: 0.9, Duration: 1},
		IFLT:  {Energy: 1.1, Duration: 1},
		IFLE:  {Energy: 1.1, Duration: 1},
		IFGT:  {Energy: 1.1, Duration: 1},
		IFGE:  {Energy: 1.1, Duration: 1},
		IFEQ:  {Energy: 1.1, Duration: 1},
		IFNE:  {Energy: 1.1, Duration: 1},
	}
	if withDMA {
		ops[LOAD] = OpInfo{Energy: 2.5, Duration: DefaultDMALatency}
		ops[STORE] = OpInfo{Energy: 2.5, Duration: DefaultDMALatency}
	}
	return ops
}

// MeshOptions parameterizes Mesh.
type MeshOptions struct {
	Name        string
	Rows, Cols  int
	RFSize      int   // default DefaultRFSize
	MulDuration int   // default 2 (block multiplier)
	DMAPEs      []int // default: spread over the array
	ContextSize int   // default DefaultContextSize
	CBoxSlots   int   // default DefaultCBoxSlots
}

// Mesh builds a homogeneous mesh composition with bidirectional
// 4-neighbourhood interconnect, as in Fig. 13.
func Mesh(o MeshOptions) (*Composition, error) {
	if o.Rows <= 0 || o.Cols <= 0 {
		return nil, fmt.Errorf("mesh: rows and cols must be positive")
	}
	n := o.Rows * o.Cols
	if o.RFSize == 0 {
		o.RFSize = DefaultRFSize
	}
	if o.MulDuration == 0 {
		o.MulDuration = 2
	}
	if o.ContextSize == 0 {
		o.ContextSize = DefaultContextSize
	}
	if o.CBoxSlots == 0 {
		o.CBoxSlots = DefaultCBoxSlots
	}
	if o.DMAPEs == nil {
		o.DMAPEs = defaultDMAPlacement(n)
	}
	if o.Name == "" {
		o.Name = fmt.Sprintf("%d PEs", n)
	}
	dma := map[int]bool{}
	for _, i := range o.DMAPEs {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("mesh: DMA PE %d out of range", i)
		}
		dma[i] = true
	}
	c := &Composition{Name: o.Name, ContextSize: o.ContextSize, CBoxSlots: o.CBoxSlots}
	for r := 0; r < o.Rows; r++ {
		for col := 0; col < o.Cols; col++ {
			idx := r*o.Cols + col
			pe := &PE{
				Name:        peKindName(dma[idx]),
				Index:       idx,
				RegfileSize: o.RFSize,
				HasDMA:      dma[idx],
				Ops:         StandardOps(o.MulDuration, dma[idx]),
			}
			var in []int
			if r > 0 {
				in = append(in, idx-o.Cols)
			}
			if r < o.Rows-1 {
				in = append(in, idx+o.Cols)
			}
			if col > 0 {
				in = append(in, idx-1)
			}
			if col < o.Cols-1 {
				in = append(in, idx+1)
			}
			sort.Ints(in)
			pe.Inputs = in
			c.PEs = append(c.PEs, pe)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func peKindName(dma bool) string {
	if dma {
		return "PE_mem"
	}
	return "PE_no_mem"
}

// defaultDMAPlacement spreads the DMA-capable PEs over the array, matching
// the grey PEs of Fig. 13 in spirit (corners/edges, at most 4).
func defaultDMAPlacement(n int) []int {
	switch n {
	case 4:
		return []int{0, 3}
	case 6:
		return []int{0, 5}
	case 8:
		return []int{0, 7}
	case 9:
		return []int{0, 4, 8}
	case 12:
		return []int{0, 5, 6, 11}
	case 16:
		return []int{0, 5, 10, 15}
	default:
		if n == 1 {
			return []int{0}
		}
		return []int{0, n - 1}
	}
}

// meshShapes maps the evaluated PE counts to their Fig. 13 grid shapes.
var meshShapes = map[int][2]int{
	4: {2, 2}, 6: {2, 3}, 8: {2, 4}, 9: {3, 3}, 12: {3, 4}, 16: {4, 4},
}

// HomogeneousMesh builds one of the six Fig. 13 compositions by PE count.
func HomogeneousMesh(numPEs, mulDuration int) (*Composition, error) {
	shape, ok := meshShapes[numPEs]
	if !ok {
		return nil, fmt.Errorf("no evaluated mesh with %d PEs (have 4, 6, 8, 9, 12, 16)", numPEs)
	}
	return Mesh(MeshOptions{Rows: shape[0], Cols: shape[1], MulDuration: mulDuration})
}

// HomogeneousMeshes builds all six Fig. 13 compositions.
func HomogeneousMeshes(mulDuration int) ([]*Composition, error) {
	var out []*Composition
	for _, n := range []int{4, 6, 8, 9, 12, 16} {
		c, err := HomogeneousMesh(n, mulDuration)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// irregularEdges describes the undirected interconnect of the 8-PE
// compositions A–E of Fig. 14 (see the file comment about approximation).
// F shares D's interconnect.
var irregularEdges = map[string][][2]int{
	// A: a chain with one long feedback link — mid connectivity.
	"A": {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {0, 4}},
	// B: a bare ring, the least interconnect; the paper reports B slowest
	// "because little interconnect is available".
	"B": {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}},
	// C: 2x4 mesh plus two diagonals.
	"C": {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}, {0, 4}, {1, 5}, {2, 6}, {3, 7}, {0, 5}, {2, 7}},
	// D: the richest interconnect; the paper reports D fastest.
	"D": {
		{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7},
		{0, 4}, {1, 5}, {2, 6}, {3, 7},
		{0, 5}, {1, 6}, {2, 7}, {1, 4}, {2, 5}, {3, 6},
		{0, 2}, {5, 7},
	},
	// E: two hubs (1 and 6) each connected to every other PE on their side.
	"E": {{1, 0}, {1, 2}, {1, 3}, {1, 6}, {6, 4}, {6, 5}, {6, 7}, {0, 7}, {3, 4}},
}

// irregularDMA places the two DMA PEs of each Fig. 14 composition.
var irregularDMA = map[string][]int{
	"A": {0, 4}, "B": {0, 4}, "C": {0, 6}, "D": {0, 6}, "E": {1, 6}, "F": {0, 6},
}

// IrregularComposition builds one of the Fig. 14 compositions ("A".."F").
// All have the operational spectrum of the meshes, except F where only
// PEs 2 and 5 support multiplication (the paper's "only the black PEs
// support multiplication", cutting DSP utilization by 75 %).
func IrregularComposition(name string, mulDuration int) (*Composition, error) {
	edgeKey := name
	if name == "F" {
		edgeKey = "D"
	}
	edges, ok := irregularEdges[edgeKey]
	if !ok {
		return nil, fmt.Errorf("no irregular composition %q (have A..F)", name)
	}
	const n = 8
	dma := map[int]bool{}
	for _, i := range irregularDMA[name] {
		dma[i] = true
	}
	c := &Composition{
		Name:        "8 PEs " + name,
		ContextSize: DefaultContextSize,
		CBoxSlots:   DefaultCBoxSlots,
	}
	mulPEs := map[int]bool{}
	if name == "F" {
		mulPEs = map[int]bool{2: true, 5: true}
	}
	for i := 0; i < n; i++ {
		ops := StandardOps(mulDuration, dma[i])
		if name == "F" && !mulPEs[i] {
			delete(ops, IMUL)
		}
		c.PEs = append(c.PEs, &PE{
			Name:        peKindName(dma[i]),
			Index:       i,
			RegfileSize: DefaultRFSize,
			HasDMA:      dma[i],
			Ops:         ops,
		})
	}
	for _, e := range edges {
		a, b := e[0], e[1]
		c.PEs[a].Inputs = append(c.PEs[a].Inputs, b)
		c.PEs[b].Inputs = append(c.PEs[b].Inputs, a)
	}
	for _, pe := range c.PEs {
		sort.Ints(pe.Inputs)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// IrregularCompositions builds all six Fig. 14 compositions A–F.
func IrregularCompositions(mulDuration int) ([]*Composition, error) {
	var out []*Composition
	for _, name := range []string{"A", "B", "C", "D", "E", "F"} {
		c, err := IrregularComposition(name, mulDuration)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// EvaluatedCompositions returns all twelve compositions of the paper's
// evaluation (six meshes, six irregular), in table order.
func EvaluatedCompositions(mulDuration int) ([]*Composition, error) {
	meshes, err := HomogeneousMeshes(mulDuration)
	if err != nil {
		return nil, err
	}
	irr, err := IrregularCompositions(mulDuration)
	if err != nil {
		return nil, err
	}
	return append(meshes, irr...), nil
}

// ByName resolves an evaluated composition by its table label, e.g.
// "4 PEs", "9 PEs", "8 PEs D". The multiplier defaults to the block
// multiplier (duration 2).
func ByName(name string) (*Composition, error) {
	all, err := EvaluatedCompositions(2)
	if err != nil {
		return nil, err
	}
	for _, c := range all {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("unknown composition %q", name)
}
