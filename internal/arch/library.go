package arch

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// LoadPELibrary reads a directory of PE description files (*.json) into a
// library for ParseComposition. The paper's composition documents reference
// PE descriptions by path (Fig. 8: "cgras/CGRA/WHICHEVER_PES.json"); this
// loader registers each file under both its base name without extension and
// its declared "name" field, so documents may reference either.
func LoadPELibrary(dir string) (map[string]json.RawMessage, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("arch: PE library: %v", err)
	}
	lib := map[string]json.RawMessage{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("arch: PE library: %v", err)
		}
		// Skip files that are composition documents, not PE entries.
		var probe struct {
			NumberOfPEs int    `json:"Number_of_PEs"`
			Name        string `json:"name"`
		}
		if err := json.Unmarshal(data, &probe); err != nil {
			return nil, fmt.Errorf("arch: PE library %s: %v", e.Name(), err)
		}
		if probe.NumberOfPEs > 0 {
			continue
		}
		base := strings.TrimSuffix(e.Name(), ".json")
		lib[base] = json.RawMessage(data)
		if probe.Name != "" && probe.Name != base {
			lib[probe.Name] = json.RawMessage(data)
		}
	}
	if len(lib) == 0 {
		return nil, fmt.Errorf("arch: PE library %s: no PE descriptions found", dir)
	}
	return lib, nil
}

// LoadCompositionFile parses a composition document from disk, resolving
// string PE references against the library directory (default: the
// document's own directory).
func LoadCompositionFile(path, libDir string) (*Composition, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("arch: %v", err)
	}
	if libDir == "" {
		libDir = filepath.Dir(path)
	}
	lib, err := LoadPELibrary(libDir)
	if err != nil {
		// A document with only inline PEs needs no library.
		lib = nil
	}
	return ParseComposition(data, lib)
}
