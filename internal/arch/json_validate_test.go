package arch

import (
	"strings"
	"testing"
)

// inlinePE is a minimal valid inline PE description for the table tests.
const inlinePE = `{"name": "P", "Regfile_size": 8, "DMA": true,
	"IADD": {"energy": 1.0, "duration": 1},
	"IFLT": {"energy": 1.1, "duration": 1},
	"LOAD": {"energy": 2.5, "duration": 2},
	"STORE": {"energy": 2.5, "duration": 2}}`

func compDocJSON(mutate func(s string) string) string {
	doc := `{
  "name": "T",
  "Number_of_PEs": 2,
  "PEs": {"0": ` + inlinePE + `, "1": ` + inlinePE + `},
  "Interconnect": {"0": [1], "1": [0]},
  "Context_memory_length": 16,
  "CBox_slots": 4
}`
	if mutate != nil {
		return mutate(doc)
	}
	return doc
}

func TestParseCompositionRejections(t *testing.T) {
	cases := []struct {
		name    string
		doc     string
		wantErr string
	}{
		{
			name:    "duplicate PE entry",
			doc:     compDocJSON(func(s string) string { return strings.Replace(s, `"1": `+inlinePE, `"0": `+inlinePE, 1) }),
			wantErr: "duplicate key",
		},
		{
			name: "duplicate interconnect entry",
			doc: compDocJSON(func(s string) string {
				return strings.Replace(s, `"Interconnect": {"0": [1], "1": [0]}`, `"Interconnect": {"0": [1], "0": [0]}`, 1)
			}),
			wantErr: "duplicate key",
		},
		{
			name: "interconnect references unknown PE",
			doc: compDocJSON(func(s string) string {
				return strings.Replace(s, `"0": [1]`, `"0": [7]`, 1)
			}),
			wantErr: "unknown PE",
		},
		{
			name: "interconnect entry for unknown PE",
			doc: compDocJSON(func(s string) string {
				return strings.Replace(s, `"1": [0]`, `"9": [0]`, 1)
			}),
			wantErr: "bad PE",
		},
		{
			name: "non-positive context memory",
			doc: compDocJSON(func(s string) string {
				return strings.Replace(s, `"Context_memory_length": 16`, `"Context_memory_length": 0`, 1)
			}),
			wantErr: "Context_memory_length must be positive",
		},
		{
			name: "negative context memory",
			doc: compDocJSON(func(s string) string {
				return strings.Replace(s, `"Context_memory_length": 16`, `"Context_memory_length": -3`, 1)
			}),
			wantErr: "Context_memory_length must be positive",
		},
		{
			name: "non-positive condition memory",
			doc: compDocJSON(func(s string) string {
				return strings.Replace(s, `"CBox_slots": 4`, `"CBox_slots": 0`, 1)
			}),
			wantErr: "CBox_slots must be positive",
		},
		{
			name: "non-positive Regfile_size",
			doc: compDocJSON(func(s string) string {
				return strings.Replace(s, `"Regfile_size": 8`, `"Regfile_size": -1`, 1)
			}),
			wantErr: "Regfile_size",
		},
		{
			name: "PE count mismatch",
			doc: compDocJSON(func(s string) string {
				return strings.Replace(s, `"Number_of_PEs": 2`, `"Number_of_PEs": 3`, 1)
			}),
			wantErr: "Number_of_PEs",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseComposition([]byte(c.doc), nil)
			if err == nil {
				t.Fatalf("malformed document accepted:\n%s", c.doc)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
	// The unmutated document must stay valid, or the table proves nothing.
	if _, err := ParseComposition([]byte(compDocJSON(nil)), nil); err != nil {
		t.Fatalf("baseline document rejected: %v", err)
	}
}
