package sched

import (
	"fmt"
	"sort"
	"strings"
)

// Utilization summarizes how busy each resource is across the schedule.
type Utilization struct {
	// PEBusy[pe] is the fraction of contexts in which the PE executes
	// (multi-cycle occupancy included).
	PEBusy []float64
	// CBoxBusy is the fraction of contexts with a C-Box operation.
	CBoxBusy float64
	// JumpCycles is the number of contexts carrying a CCU jump.
	JumpCycles int
	// OpsPerCycle is the average number of PE operations issued per
	// context.
	OpsPerCycle float64
}

// Utilization computes the resource occupancy of the schedule.
func (s *Schedule) Utilization() Utilization {
	u := Utilization{PEBusy: make([]float64, s.Comp.NumPEs())}
	if s.Length == 0 {
		return u
	}
	busy := make([]int, s.Comp.NumPEs())
	for _, op := range s.Ops {
		busy[op.PE] += op.Dur
	}
	for pe, b := range busy {
		u.PEBusy[pe] = float64(b) / float64(s.Length)
	}
	u.CBoxBusy = float64(len(s.CBox)) / float64(s.Length)
	u.JumpCycles = len(s.CCU)
	u.OpsPerCycle = float64(len(s.Ops)) / float64(s.Length)
	return u
}

// Dump renders the full schedule as text: per-cycle rows with PE
// operations, C-Box activity and jumps. Intended for cgrac -dump and for
// debugging scheduler changes.
func (s *Schedule) Dump() string {
	var b strings.Builder
	byCycle := map[int][]*Op{}
	for _, op := range s.Ops {
		byCycle[op.Cycle] = append(byCycle[op.Cycle], op)
	}
	cboxByCycle := map[int]*CBoxOp{}
	for _, cb := range s.CBox {
		cboxByCycle[cb.Cycle] = cb
	}
	fmt.Fprintf(&b, "schedule: %d contexts on %s\n", s.Length, s.Comp.Name)
	for cyc := 0; cyc < s.Length; cyc++ {
		ops := byCycle[cyc]
		cb := cboxByCycle[cyc]
		jump := s.CCU[cyc]
		if len(ops) == 0 && cb == nil && jump == nil {
			continue
		}
		fmt.Fprintf(&b, "ctx %3d:\n", cyc)
		sort.Slice(ops, func(i, j int) bool { return ops[i].PE < ops[j].PE })
		for _, op := range ops {
			fmt.Fprintf(&b, "    %s\n", op)
		}
		if cb != nil {
			fmt.Fprintf(&b, "    %s\n", cb)
		}
		if jump != nil {
			fmt.Fprintf(&b, "    %s\n", jump)
		}
	}
	u := s.Utilization()
	fmt.Fprintf(&b, "utilization: cbox %.0f%%, %.2f ops/ctx, PEs [", u.CBoxBusy*100, u.OpsPerCycle)
	for i, v := range u.PEBusy {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.0f%%", v*100)
	}
	b.WriteString("]\n")
	return b.String()
}
