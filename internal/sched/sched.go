package sched

import (
	"context"
	"fmt"
	"sort"

	"cgra/internal/arch"
	"cgra/internal/cdfg"
	"cgra/internal/route"
)

// Run schedules graph g onto composition comp and returns the complete
// schedule (contexts are generated from it by package ctxgen).
func Run(g *cdfg.Graph, comp *arch.Composition, opts Options) (*Schedule, error) {
	return RunCtx(context.Background(), g, comp, opts)
}

// RunCtx is Run with cooperative cancellation: the scheduler checks the
// context once per time step of its candidate loop (and, under the modulo
// backend, once per II attempt and per backtrack budget slice) and aborts
// with the context's error (wrapped, so errors.Is works). A cancelled run
// returns no schedule — never a partial one.
//
// Options.Backend selects the strategy; see Backends() for valid names.
func RunCtx(ctx context.Context, g *cdfg.Graph, comp *arch.Composition, opts Options) (*Schedule, error) {
	b, err := BackendByName(opts.Backend)
	if err != nil {
		return nil, err
	}
	return b.Run(ctx, g, comp, opts)
}

// runCtx is the shared scheduling driver. With pipeline set, innermost
// eligible loops are software-pipelined by the modulo scheduler; everything
// else (and every fallback) uses the list layout.
func runCtx(ctx context.Context, g *cdfg.Graph, comp *arch.Composition, opts Options, pipeline bool) (*Schedule, error) {
	if err := comp.Validate(); err != nil {
		return nil, fmt.Errorf("sched: %v", err)
	}
	rt := route.New(comp)
	if !rt.FullyConnected() {
		return nil, fmt.Errorf("sched: composition %s is not fully connected; values could strand", comp.Name)
	}
	if opts.MaxCycles == 0 {
		opts.MaxCycles = 100000
	}
	s := &scheduler{
		ctx:      ctx,
		comp:     comp,
		g:        g,
		rt:       rt,
		opts:     opts,
		pipeline: pipeline,
		sch: &Schedule{
			Comp:  comp,
			Graph: g,
			CCU:   map[int]*CCUOp{},
			Homes: map[string]*Value{},
		},
		busy:       make([][]bool, comp.NumPEs()),
		outl:       make([]map[int]*Value, comp.NumPEs()),
		cboxBusy:   map[int]bool{},
		predRead:   map[int]*Slot{},
		copies:     map[string]map[int]*Value{},
		constCp:    map[int32]map[int]*Value{},
		nodeCp:     map[*cdfg.Node]map[int]*Value{},
		nodeVal:    map[*cdfg.Node]*Value{},
		nodeFinish: map[*cdfg.Node]int{},
		nodeIssue:  map[*cdfg.Node]int{},
		condOut:    map[*cdfg.CondExpr]*Slot{},
		condReady:  map[*cdfg.CondExpr]int{},
		condSeen:   map[*cdfg.CondExpr]bool{},
		cmpRole:    map[*cdfg.Node]*cmpRole{},
		predSlots:  map[*cdfg.Pred]*Slot{},
		predReady:  map[*cdfg.Pred]int{},
		predSeen:   map[*cdfg.Pred]bool{},
		attraction: map[*cdfg.Node]map[int]float64{},
		consumers:  map[*cdfg.Node][]*cdfg.Node{},
		fusedProd:  map[string]*cdfg.Node{},
	}
	for i := range s.outl {
		s.outl[i] = map[int]*Value{}
	}
	s.precomputeConsumers()
	place := opts.Span.StartChild("place")
	end, err := s.region(g.Root, 0)
	if err != nil {
		place.Finish()
		return nil, err
	}
	// Give every untouched live-in/live-out local a home so the
	// invocation protocol has a transfer target even for unused
	// parameters.
	for _, name := range g.LiveIns() {
		s.homeValue(name, 0)
	}
	for _, name := range g.LiveOuts() {
		s.homeValue(name, 0)
	}
	// Halt context: the CCNT jumps to the last entry and stays locked
	// (§IV-A3). Realized as a self-jump.
	for s.sch.CCU[end] != nil {
		end++
	}
	s.sch.CCU[end] = &CCUOp{Cycle: end, Uncond: true, Target: end}
	s.sch.Length = end + 1
	sort.SliceStable(s.sch.Ops, func(i, j int) bool {
		a, b := s.sch.Ops[i], s.sch.Ops[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		return a.PE < b.PE
	})
	sort.SliceStable(s.sch.CBox, func(i, j int) bool {
		return s.sch.CBox[i].Cycle < s.sch.CBox[j].Cycle
	})
	place.Finish()
	vs := opts.Span.StartChild("verify")
	err = Verify(s.sch)
	vs.Finish()
	if err != nil {
		return nil, fmt.Errorf("sched: internal verification failed: %v", err)
	}
	opts.Span.Set("nodes", int64(s.sch.Stats.Nodes))
	opts.Span.Set("copies", int64(s.sch.Stats.CopiesInserted))
	opts.Span.Set("consts", int64(s.sch.Stats.ConstsMaterialized))
	opts.Span.Set("cbox_ops", int64(s.sch.Stats.CBoxOps))
	opts.Span.Set("contexts", int64(s.sch.Length))
	if pipeline {
		opts.Span.Set("pipelined_loops", int64(s.sch.Stats.PipelinedLoops))
		opts.Span.Set("modulo_backtracks", int64(s.sch.Stats.ModuloBacktracks))
	}
	return s.sch, nil
}

// cmpRole describes how one compare node feeds the C-Box: it completes the
// condition sub-expression Expr by combining its status with the already
// stored result of Stored (nil for the first leaf of a chain).
type cmpRole struct {
	Expr   *cdfg.CondExpr
	Stored *cdfg.CondExpr
	Logic  CBLogic
}

// pendingComb is a floated C-Box operation that combines stored conditions:
// either joining two condition sub-trees or conjoining a predicate with its
// parent.
type pendingComb struct {
	// For cond-tree joins:
	x, y  *cdfg.CondExpr
	logic CBLogic
	out   *cdfg.CondExpr
	// For predicate slots:
	pred *cdfg.Pred
}

type scheduler struct {
	// ctx carries the caller's deadline; the block scheduler polls it once
	// per time step.
	ctx  context.Context
	comp *arch.Composition
	g    *cdfg.Graph
	rt   *route.Table
	opts Options
	sch  *Schedule
	// pipeline enables the modulo backend's loop pipelining in region().
	pipeline bool

	busy     [][]bool         // [pe][cycle]
	outl     []map[int]*Value // [pe][cycle] -> routed value
	cboxBusy map[int]bool
	predRead map[int]*Slot

	copies     map[string]map[int]*Value
	constCp    map[int32]map[int]*Value
	nodeCp     map[*cdfg.Node]map[int]*Value
	nodeVal    map[*cdfg.Node]*Value
	nodeFinish map[*cdfg.Node]int
	nodeIssue  map[*cdfg.Node]int

	condOut   map[*cdfg.CondExpr]*Slot
	condReady map[*cdfg.CondExpr]int // first cycle the slot is usable
	condSeen  map[*cdfg.CondExpr]bool
	cmpRole   map[*cdfg.Node]*cmpRole
	predSlots map[*cdfg.Pred]*Slot
	predReady map[*cdfg.Pred]int
	predSeen  map[*cdfg.Pred]bool
	pending   []*pendingComb

	attraction map[*cdfg.Node]map[int]float64
	consumers  map[*cdfg.Node][]*cdfg.Node
	// fusedProd tracks, per local, the producer node whose RF write was
	// fused with the local's home slot; a later pWRITE of that local must
	// wait until all of the producer's value consumers have issued.
	fusedProd map[string]*cdfg.Node

	// safeFloor is the earliest cycle scheduler-inserted operations may
	// occupy: the start of the current unconditional straight-line
	// stretch. Holes before it belong to contexts that re-execute in
	// loops or execute conditionally.
	safeFloor int
}

// precomputeConsumers records FromNode value consumers for the attraction
// criterion and for fusing legality.
func (s *scheduler) precomputeConsumers() {
	for _, n := range s.g.AllNodes() {
		for _, a := range n.Args {
			if a.Kind == cdfg.FromNode {
				s.consumers[a.Node] = append(s.consumers[a.Node], n)
			}
		}
	}
}

// region schedules region r starting at cycle start and returns the first
// cycle after it.
func (s *scheduler) region(r *cdfg.Region, start int) (int, error) {
	if r == nil {
		return start, nil
	}
	switch r.Kind {
	case cdfg.RBlock:
		return s.block(r.Block, start)
	case cdfg.RSeq:
		t := start
		var err error
		for _, c := range r.Children {
			t, err = s.region(c, t)
			if err != nil {
				return 0, err
			}
		}
		return t, nil
	case cdfg.RLoop:
		if s.pipeline {
			end, ok, err := s.tryPipeline(r, start)
			if err != nil {
				return 0, err
			}
			if ok {
				return end, nil
			}
		}
		return s.loop(r, start)
	case cdfg.RIf:
		return s.branchedIf(r, start)
	default:
		return 0, fmt.Errorf("unknown region kind %v", r.Kind)
	}
}

// loop lays the loop out as contiguous contexts:
//
//	hdrStart: header block (evaluates continue condition into a slot)
//	J:        conditional jump to exit when the condition is false
//	J+1..:    body
//	BJ:       unconditional jump back to hdrStart
//	BJ+1:     exit
func (s *scheduler) loop(r *cdfg.Region, start int) (int, error) {
	hdrStart := start
	s.safeFloor = hdrStart
	// Copies of locals written anywhere in the loop are stale across
	// iterations: drop them before scheduling the header.
	s.purgeWrittenCopies(r)

	hdrEnd, err := s.block(r.Header, hdrStart)
	if err != nil {
		return 0, err
	}
	if r.Header.Cond == nil {
		return 0, fmt.Errorf("loop region %d has no condition", r.ID)
	}
	contSlot := s.condOut[r.Header.Cond]
	contReady, ok := s.condReady[r.Header.Cond]
	if contSlot == nil || !ok {
		return 0, fmt.Errorf("loop region %d: condition slot not computed", r.ID)
	}
	j := maxInt(hdrEnd-1, contReady)
	j = maxInt(j, hdrStart)
	for s.sch.CCU[j] != nil {
		j++
	}
	exitJump := &CCUOp{Cycle: j, Slot: contSlot, Invert: true} // jump when NOT continue
	contSlot.Uses = append(contSlot.Uses, j)
	s.sch.CCU[j] = exitJump

	bodyStart := j + 1
	s.safeFloor = bodyStart
	bodyEnd, err := s.region(r.Body, bodyStart)
	if err != nil {
		return 0, err
	}
	bj := maxInt(bodyEnd-1, bodyStart)
	for s.sch.CCU[bj] != nil {
		bj++
	}
	s.sch.CCU[bj] = &CCUOp{Cycle: bj, Uncond: true, Target: hdrStart}
	exit := bj + 1
	exitJump.Target = exit

	s.sch.LoopRanges = append(s.sch.LoopRanges, [2]int{hdrStart, bj})
	// Copies created in the body may not have executed (zero iterations)
	// or may be stale; drop them. Header copies survive: the header runs
	// at least once and runs last.
	s.purgeCopiesFrom(bodyStart)
	s.safeFloor = exit
	return exit, nil
}

// branchedIf lays a conditional containing loops out with CCNT jumps:
//
//	condStart: condition block
//	J:         jump to elseStart (or end) when the condition is false
//	then...    (ends with a jump over the else arm when one exists)
//	else...
func (s *scheduler) branchedIf(r *cdfg.Region, start int) (int, error) {
	s.safeFloor = start
	condEnd, err := s.block(r.CondBlock, start)
	if err != nil {
		return 0, err
	}
	if r.CondBlock.Cond == nil {
		return 0, fmt.Errorf("if region %d has no condition", r.ID)
	}
	slot := s.condOut[r.CondBlock.Cond]
	ready, ok := s.condReady[r.CondBlock.Cond]
	if slot == nil || !ok {
		return 0, fmt.Errorf("if region %d: condition slot not computed", r.ID)
	}
	j := maxInt(condEnd-1, ready)
	j = maxInt(j, start)
	for s.sch.CCU[j] != nil {
		j++
	}
	condJump := &CCUOp{Cycle: j, Slot: slot, Invert: true}
	slot.Uses = append(slot.Uses, j)
	s.sch.CCU[j] = condJump

	thenStart := j + 1
	s.safeFloor = thenStart
	thenEnd, err := s.region(r.Then, thenStart)
	if err != nil {
		return 0, err
	}
	// Copies and constants materialized in the then arm only exist at run
	// time when the branch went that way: they must be invisible to the
	// else arm and to everything after the conditional.
	s.purgeCopiesFrom(thenStart)
	end := thenEnd
	if r.Else != nil {
		j2 := maxInt(thenEnd-1, thenStart)
		for s.sch.CCU[j2] != nil {
			j2++
		}
		skipElse := &CCUOp{Cycle: j2, Uncond: true}
		s.sch.CCU[j2] = skipElse
		elseStart := j2 + 1
		condJump.Target = elseStart
		s.safeFloor = elseStart
		elseEnd, err := s.region(r.Else, elseStart)
		if err != nil {
			return 0, err
		}
		end = maxInt(elseEnd, elseStart)
		skipElse.Target = end
		s.purgeCopiesFrom(elseStart)
	} else {
		condJump.Target = maxInt(thenEnd, thenStart)
		end = condJump.Target
	}
	s.sch.CondRanges = append(s.sch.CondRanges, [2]int{thenStart, end - 1})
	s.safeFloor = end
	return end, nil
}

// purgeWrittenCopies invalidates copies of every local that is written
// anywhere inside region r (loop-carried staleness).
func (s *scheduler) purgeWrittenCopies(r *cdfg.Region) {
	written := map[string]bool{}
	var scan func(q *cdfg.Region)
	scanBlock := func(b *cdfg.Block) {
		for _, n := range b.Nodes {
			if n.Kind == cdfg.KPWrite {
				written[n.Local] = true
			}
		}
	}
	scan = func(q *cdfg.Region) {
		if q == nil {
			return
		}
		switch q.Kind {
		case cdfg.RBlock:
			scanBlock(q.Block)
		case cdfg.RSeq:
			for _, c := range q.Children {
				scan(c)
			}
		case cdfg.RLoop:
			scanBlock(q.Header)
			scan(q.Body)
		case cdfg.RIf:
			scanBlock(q.CondBlock)
			scan(q.Then)
			scan(q.Else)
		}
	}
	scan(r)
	for name := range written {
		delete(s.copies, name)
		s.fusedProd[name] = nil
	}
}

// purgeCopiesFrom drops every copy (local, constant or node copy) defined at
// or after the given cycle.
func (s *scheduler) purgeCopiesFrom(cycle int) {
	for name, m := range s.copies {
		for pe, v := range m {
			if v.Def >= cycle {
				delete(m, pe)
			}
		}
		if len(m) == 0 {
			delete(s.copies, name)
		}
	}
	for c, m := range s.constCp {
		for pe, v := range m {
			if v.Def >= cycle {
				delete(m, pe)
			}
		}
		if len(m) == 0 {
			delete(s.constCp, c)
		}
	}
	for n, m := range s.nodeCp {
		for pe, v := range m {
			if v.Def >= cycle {
				delete(m, pe)
			}
		}
		if len(m) == 0 {
			delete(s.nodeCp, n)
		}
	}
}

// --- resource helpers ---

func (s *scheduler) ensureCycle(pe, cycle int) {
	for len(s.busy[pe]) <= cycle {
		s.busy[pe] = append(s.busy[pe], false)
	}
}

func (s *scheduler) peFree(pe, from, dur int) bool {
	for c := from; c < from+dur; c++ {
		s.ensureCycle(pe, c)
		if s.busy[pe][c] {
			return false
		}
	}
	return true
}

func (s *scheduler) markBusy(pe, from, dur int) {
	for c := from; c < from+dur; c++ {
		s.ensureCycle(pe, c)
		s.busy[pe][c] = true
	}
}

// earliestFree returns the first cycle >= from where pe is free for dur
// cycles.
func (s *scheduler) earliestFree(pe, from, dur int) int {
	c := from
	for !s.peFree(pe, c, dur) {
		c++
	}
	return c
}

// outlAvailable reports whether pe's routing output can carry v at cycle.
func (s *scheduler) outlAvailable(pe, cycle int, v *Value) bool {
	cur, used := s.outl[pe][cycle]
	return !used || cur == v
}

func (s *scheduler) reserveOutl(pe, cycle int, v *Value) {
	s.outl[pe][cycle] = v
}

func (s *scheduler) newValue(pe, def int) *Value {
	v := &Value{ID: len(s.sch.Values), PE: pe, Def: def, Addr: -1}
	s.sch.Values = append(s.sch.Values, v)
	return v
}

func (s *scheduler) newSlot() *Slot {
	sl := &Slot{ID: len(s.sch.Slots), Phys: -1}
	s.sch.Slots = append(s.sch.Slots, sl)
	return sl
}

// homeValue returns (creating on demand) the home slot of a local on the
// given preferred PE. Once assigned, the home never moves (§V-D: "a write
// must ultimately be done on its assigned PE").
func (s *scheduler) homeValue(name string, preferPE int) *Value {
	if v, ok := s.sch.Homes[name]; ok {
		return v
	}
	v := s.newValue(preferPE, -1)
	v.Local = name
	v.IsHome = true
	v.Pinned = true
	s.sch.Homes[name] = v
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
