package sched

import (
	"testing"

	"cgra/internal/arch"
	"cgra/internal/cdfg"
	"cgra/internal/ir"
	"cgra/internal/irtext"
)

func compile(t *testing.T, src string) *cdfg.Graph {
	t.Helper()
	k := mustParse(t, src)
	g, err := cdfg.Build(k, cdfg.BuildOptions{})
	if err != nil {
		t.Fatalf("cdfg: %v", err)
	}
	return g
}

func mesh4(t *testing.T) *arch.Composition {
	t.Helper()
	c, err := arch.HomogeneousMesh(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func schedule(t *testing.T, src string, comp *arch.Composition, opts Options) *Schedule {
	t.Helper()
	g := compile(t, src)
	s, err := Run(g, comp, opts)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	return s
}

func TestScheduleStraightLine(t *testing.T) {
	s := schedule(t, `kernel k(in x, in y, inout r) { r = x * y + 7; }`, mesh4(t), Options{})
	if s.Length == 0 {
		t.Fatal("empty schedule")
	}
	// The multiply, the add, and a fused or separate pwrite must appear.
	var haveMul, haveAdd bool
	for _, op := range s.Ops {
		switch op.Code {
		case arch.IMUL:
			haveMul = true
		case arch.IADD:
			haveAdd = true
		}
	}
	if !haveMul || !haveAdd {
		t.Errorf("missing ops: mul=%v add=%v", haveMul, haveAdd)
	}
	if _, ok := s.Homes["r"]; !ok {
		t.Error("no home for r")
	}
	// The final context must be a self-jump halt.
	halt := s.CCU[s.Length-1]
	if halt == nil || !halt.Uncond || halt.Target != s.Length-1 {
		t.Errorf("missing halt context: %+v", halt)
	}
}

func TestScheduleFusesPWrite(t *testing.T) {
	s := schedule(t, `kernel k(in x, inout r) { r = x + 1; }`, mesh4(t), Options{})
	if s.Stats.FusedPWrites != 1 {
		t.Errorf("fused pwrites = %d, want 1", s.Stats.FusedPWrites)
	}
	// The IADD's destination must be r's home slot.
	for _, op := range s.Ops {
		if op.Code == arch.IADD {
			if op.Dest == nil || !op.Dest.IsHome || op.Dest.Local != "r" {
				t.Errorf("IADD dest = %+v, want home of r", op.Dest)
			}
		}
	}
}

func TestScheduleNoFusingOption(t *testing.T) {
	s := schedule(t, `kernel k(in x, inout r) { r = x + 1; }`, mesh4(t), Options{NoFusing: true})
	if s.Stats.FusedPWrites != 0 {
		t.Errorf("fused pwrites = %d, want 0 with NoFusing", s.Stats.FusedPWrites)
	}
	if s.Stats.UnfusedPWrites == 0 {
		t.Error("expected an explicit pwrite MOVE")
	}
}

func TestSchedulePredicatedIf(t *testing.T) {
	s := schedule(t, `
kernel k(in x, inout r) {
	if (x < 0) { r = 0 - x; } else { r = x; }
}`, mesh4(t), Options{})
	// Predicated writes must carry predication slots.
	pred := 0
	for _, op := range s.Ops {
		if op.PredSlot != nil {
			pred++
		}
	}
	if pred < 2 {
		t.Errorf("predicated commits = %d, want >= 2 (then+else writes)", pred)
	}
	if len(s.CBox) == 0 {
		t.Error("no C-Box operations for the condition")
	}
}

func TestScheduleLoopLayout(t *testing.T) {
	s := schedule(t, `
kernel sum(array a, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) {
		s = s + a[i];
		i = i + 1;
	}
}`, mesh4(t), Options{})
	if len(s.LoopRanges) != 1 {
		t.Fatalf("loop ranges = %d, want 1", len(s.LoopRanges))
	}
	lr := s.LoopRanges[0]
	// There must be a conditional exit jump inside the loop range and an
	// unconditional back jump at its end.
	back := s.CCU[lr[1]]
	if back == nil || !back.Uncond || back.Target != lr[0] {
		t.Fatalf("back jump wrong: %+v (range %v)", back, lr)
	}
	var exit *CCUOp
	for c := lr[0]; c <= lr[1]; c++ {
		if j := s.CCU[c]; j != nil && !j.Uncond {
			exit = j
		}
	}
	if exit == nil {
		t.Fatal("no conditional exit jump in loop range")
	}
	if !exit.Invert {
		t.Error("exit jump should fire when the continue condition is false")
	}
	if exit.Target != lr[1]+1 {
		t.Errorf("exit target = %d, want %d", exit.Target, lr[1]+1)
	}
	// DMA load must be inside the loop.
	for _, op := range s.Ops {
		if op.Code == arch.LOAD {
			if op.Cycle < lr[0] || op.Cycle > lr[1] {
				t.Errorf("LOAD at cycle %d outside loop %v", op.Cycle, lr)
			}
			if !s.Comp.PEs[op.PE].HasDMA {
				t.Errorf("LOAD on non-DMA PE %d", op.PE)
			}
		}
	}
}

func TestScheduleNestedLoops(t *testing.T) {
	s := schedule(t, `
kernel k(in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) {
		j = 0;
		while (j < n) {
			s = s + 1;
			j = j + 1;
		}
		i = i + 1;
	}
}`, mesh4(t), Options{})
	if len(s.LoopRanges) != 2 {
		t.Fatalf("loop ranges = %d, want 2", len(s.LoopRanges))
	}
	// Inner loop recorded first; it must nest inside the outer range.
	inner, outer := s.LoopRanges[0], s.LoopRanges[1]
	if !(outer[0] < inner[0] && inner[1] < outer[1]) {
		t.Errorf("inner %v not nested in outer %v", inner, outer)
	}
}

func TestScheduleBranchedIf(t *testing.T) {
	s := schedule(t, `
kernel k(in n, in c, inout s) {
	s = 0;
	if (c > 0) {
		i = 0;
		while (i < n) { s = s + i; i = i + 1; }
	} else {
		s = 0 - 1;
	}
}`, mesh4(t), Options{})
	if len(s.CondRanges) != 1 {
		t.Fatalf("cond ranges = %d, want 1", len(s.CondRanges))
	}
	// Expect at least: conditional jump into arms, jump over else.
	conds, unconds := 0, 0
	for _, j := range s.CCU {
		if j.Uncond && j.Target != j.Cycle {
			unconds++
		}
		if !j.Uncond {
			conds++
		}
	}
	if conds < 2 { // if-branch + loop exit
		t.Errorf("conditional jumps = %d, want >= 2", conds)
	}
	if unconds < 2 { // loop back jump + skip-else
		t.Errorf("unconditional jumps = %d, want >= 2", unconds)
	}
}

func TestScheduleOnAllEvaluatedCompositions(t *testing.T) {
	src := `
kernel mix(array a, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) {
		v = a[i];
		if (v < 0) { v = 0 - v; }
		s = s + v * 3;
		i = i + 1;
	}
}`
	all, err := arch.EvaluatedCompositions(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range all {
		comp := comp
		t.Run(comp.Name, func(t *testing.T) {
			s := schedule(t, src, comp, Options{})
			if s.Length == 0 {
				t.Fatal("empty schedule")
			}
		})
	}
}

func TestScheduleInhomogeneousMultiplier(t *testing.T) {
	// On composition F only two PEs multiply: the IMULs must land there.
	f, err := arch.IrregularComposition("F", 2)
	if err != nil {
		t.Fatal(err)
	}
	s := schedule(t, `kernel k(in x, in y, inout r) { r = x * y + x * 2; }`, f, Options{})
	mulPEs := map[int]bool{}
	for _, pe := range f.SupportingPEs(arch.IMUL) {
		mulPEs[pe] = true
	}
	for _, op := range s.Ops {
		if op.Code == arch.IMUL && !mulPEs[op.PE] {
			t.Errorf("IMUL on PE %d which lacks a multiplier", op.PE)
		}
	}
}

func TestScheduleAttractionAblation(t *testing.T) {
	src := `
kernel k(array a, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) {
		s = s + a[i] * a[i];
		i = i + 1;
	}
}`
	comp := mesh4(t)
	with := schedule(t, src, comp, Options{})
	without := schedule(t, src, comp, Options{NoAttraction: true})
	if with.Length == 0 || without.Length == 0 {
		t.Fatal("empty schedule")
	}
	// Both are valid schedules; typically attraction reduces copies.
	t.Logf("attraction: len=%d copies=%d; without: len=%d copies=%d",
		with.Length, with.Stats.CopiesInserted, without.Length, without.Stats.CopiesInserted)
}

func TestScheduleConditionChainSerialized(t *testing.T) {
	// Three conjoined compares: the C-Box consumes one status per cycle,
	// so the three consume ops must sit in distinct cycles.
	s := schedule(t, `
kernel k(in a, in b, in c, inout r) {
	r = 0;
	if (a > 0 && b > 0 && c > 0) { r = 1; }
}`, mesh4(t), Options{})
	cycles := map[int]bool{}
	consumes := 0
	for _, cb := range s.CBox {
		if cb.Kind == CBConsume {
			consumes++
			if cycles[cb.Cycle] {
				t.Errorf("two C-Box consumes at cycle %d", cb.Cycle)
			}
			cycles[cb.Cycle] = true
		}
	}
	if consumes != 3 {
		t.Errorf("consumes = %d, want 3", consumes)
	}
}

func TestScheduleDisconnectedRejected(t *testing.T) {
	comp := mesh4(t)
	// Remove every input of PE 3: unreachable.
	comp.PEs[3].Inputs = nil
	for _, pe := range comp.PEs {
		var in []int
		for _, s := range pe.Inputs {
			if s != 3 {
				in = append(in, s)
			}
		}
		pe.Inputs = in
	}
	g := compile(t, `kernel k(in x, inout r) { r = x; }`)
	if _, err := Run(g, comp, Options{}); err == nil {
		t.Error("disconnected composition accepted")
	}
}

func TestScheduleDeterministic(t *testing.T) {
	src := `
kernel k(array a, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) {
		v = a[i];
		if (v > 10) { v = 10; } else { v = v + 1; }
		s = s + v;
		i = i + 1;
	}
}`
	comp := mesh4(t)
	s1 := schedule(t, src, comp, Options{})
	s2 := schedule(t, src, comp, Options{})
	if s1.Length != s2.Length || len(s1.Ops) != len(s2.Ops) {
		t.Fatalf("nondeterministic: %d/%d ops vs %d/%d",
			s1.Length, len(s1.Ops), s2.Length, len(s2.Ops))
	}
	for i := range s1.Ops {
		a, b := s1.Ops[i], s2.Ops[i]
		if a.PE != b.PE || a.Cycle != b.Cycle || a.Code != b.Code {
			t.Fatalf("op %d differs: %v vs %v", i, a, b)
		}
	}
}

func TestScheduleUsedContextsWithinMemory(t *testing.T) {
	s := schedule(t, `
kernel k(array a, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) { s = s + a[i]; i = i + 1; }
}`, mesh4(t), Options{})
	if s.Length > s.Comp.ContextSize {
		t.Errorf("schedule needs %d contexts, memory holds %d", s.Length, s.Comp.ContextSize)
	}
}

func mustParse(t testing.TB, src string) *ir.Kernel {
	t.Helper()
	k, err := irtext.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return k
}
