package sched

import (
	"strings"
	"testing"
)

func TestBackends(t *testing.T) {
	got := Backends()
	want := []string{BackendList, BackendModulo}
	if len(got) != len(want) {
		t.Fatalf("Backends() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Backends() = %v, want %v", got, want)
		}
	}
}

func TestBackendByName(t *testing.T) {
	for _, name := range []string{"", BackendList} {
		b, err := BackendByName(name)
		if err != nil || b.Name() != BackendList {
			t.Errorf("BackendByName(%q) = %v, %v; want list backend", name, b, err)
		}
	}
	b, err := BackendByName(BackendModulo)
	if err != nil || b.Name() != BackendModulo {
		t.Errorf("BackendByName(modulo) = %v, %v", b, err)
	}
	if _, err := BackendByName("simulated-annealing"); err == nil {
		t.Fatal("unknown backend accepted")
	} else if !strings.Contains(err.Error(), "valid: list, modulo") {
		t.Errorf("error %q does not spell out the valid backends", err)
	}
}

// TestRunRejectsUnknownBackend asserts the validation fires before any
// scheduling work, so cgrac/cgrasim flag parsing can surface it fast.
func TestRunRejectsUnknownBackend(t *testing.T) {
	g := compile(t, `kernel k(in x, inout r) { r = x + 1; }`)
	if _, err := Run(g, mesh4(t), Options{Backend: "bogus"}); err == nil {
		t.Fatal("Run accepted an unknown backend")
	} else if !strings.Contains(err.Error(), `unknown backend "bogus"`) {
		t.Errorf("unexpected error: %v", err)
	}
}
