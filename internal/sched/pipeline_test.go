package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"cgra/internal/arch"
)

func nine(t *testing.T) *arch.Composition {
	t.Helper()
	c, err := arch.ByName("9 PEs")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const dotSrc = `
kernel dot(array a, array b, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) {
		s = s + a[i] * b[i];
		i = i + 1;
	}
}`

// TestModuloPipelinesDot checks the modulo backend pipelines the dot-product
// loop, the result verifies, and the initiation interval undercuts the list
// layout's per-iteration context count.
func TestModuloPipelinesDot(t *testing.T) {
	comp := nine(t)
	g := compile(t, dotSrc)
	ms, err := Run(g, comp, Options{Backend: BackendModulo})
	if err != nil {
		t.Fatalf("modulo: %v", err)
	}
	if err := Verify(ms); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(ms.Pipelined) != 1 || ms.Stats.PipelinedLoops != 1 {
		t.Fatalf("pipelined = %+v, stats = %d, want exactly one", ms.Pipelined, ms.Stats.PipelinedLoops)
	}
	pl := ms.Pipelined[0]
	if pl.II < pl.MII || pl.MII < pl.ResMII || pl.MII < pl.RecMII {
		t.Errorf("inconsistent II report: %+v", pl)
	}
	if pl.Stages < 1 || pl.Ops == 0 {
		t.Errorf("degenerate pipeline: %+v", pl)
	}

	ls, err := Run(compile(t, dotSrc), comp, Options{})
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	lr := ls.LoopRanges[0]
	iter := lr[1] - lr[0] + 1 // contexts per list iteration (header + body + jump)
	if pl.II >= iter {
		t.Errorf("modulo II %d not below list per-iteration latency %d", pl.II, iter)
	}
}

// TestModuloFallsBackOnIneligibleLoop: a body with a store is not pipelined;
// the modulo backend must produce the list layout and log why.
func TestModuloFallsBackOnIneligibleLoop(t *testing.T) {
	src := `
kernel copy(array x, array y, in n) {
	i = 0;
	while (i < n) {
		y[i] = x[i];
		i = i + 1;
	}
}`
	log := NewExplainLog()
	s, err := Run(compile(t, src), nine(t), Options{Backend: BackendModulo, Explain: log})
	if err != nil {
		t.Fatalf("modulo: %v", err)
	}
	if len(s.Pipelined) != 0 {
		t.Fatalf("store loop pipelined: %+v", s.Pipelined)
	}
	if log.Counts()[RejectPipelineIneligible] == 0 {
		t.Error("no pipeline-ineligible entry in the explain log")
	}
}

// TestModuloExplainAttempts: every II attempt (failed and accepted) lands in
// the explain log, so an II search is replayable post-mortem.
func TestModuloExplainAttempts(t *testing.T) {
	log := NewExplainLog()
	s, err := Run(compile(t, dotSrc), nine(t), Options{Backend: BackendModulo, Explain: log})
	if err != nil {
		t.Fatalf("modulo: %v", err)
	}
	attempts := int64(s.Pipelined[0].Attempts)
	if got := log.Counts()[RejectIIAttempt]; got != attempts {
		t.Errorf("logged %d ii-attempt entries, schedule reports %d attempts", got, attempts)
	}
	var accepted bool
	for _, e := range log.Entries() {
		if e.Cause == RejectIIAttempt && strings.Contains(e.Node, fmt.Sprintf("II=%d", s.Pipelined[0].II)) && strings.HasSuffix(e.Node, ": ok") {
			accepted = true
		}
	}
	if !accepted {
		t.Error("accepted II attempt not logged")
	}
}

// TestModuloDeadline: cancellation reaches the modulo search. An expired
// deadline aborts immediately; a 50ms deadline on a wide loop returns —
// scheduled or cancelled — well before a runaway II search could.
func TestModuloDeadline(t *testing.T) {
	// A wide eligible body: 24 independent multiply-accumulate chains keep
	// the solver busy across many II attempts.
	var b strings.Builder
	b.WriteString("kernel wide(array x, in n")
	for c := 0; c < 24; c++ {
		fmt.Fprintf(&b, ", inout s%d", c)
	}
	b.WriteString(") {\n\ti = 0;\n\twhile (i < n) {\n")
	for c := 0; c < 24; c++ {
		fmt.Fprintf(&b, "\t\ts%d = s%d + x[i] * %d;\n", c, c, c+3)
	}
	b.WriteString("\t\ti = i + 1;\n\t}\n}")
	g := compile(t, b.String())
	comp := nine(t)

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	if _, err := RunCtx(expired, g, comp, Options{Backend: BackendModulo}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("expired deadline took %v to surface", el)
	}

	ctx, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	start = time.Now()
	_, err := RunCtx(ctx, g, comp, Options{Backend: BackendModulo})
	if el := time.Since(start); el > time.Second {
		t.Fatalf("50ms deadline: returned after %v (err=%v)", el, err)
	}
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("unexpected error: %v", err)
	}
}
