package sched

import (
	"context"
	"errors"
	"fmt"

	"cgra/internal/arch"
	"cgra/internal/cdfg"
	"cgra/internal/modsched"
)

// This file realizes modulo-scheduled (software-pipelined) loops. The modulo
// backend hands eligible innermost counted loops to internal/modsched and
// lays the solution out as contexts:
//
//	SETUP:    trip-count computation K = T-(S-1), guard jump to the
//	          sequential fallback when K < 1, pass-counter init, and
//	          dist-0 copies of loop-invariant operands and constants
//	P0..K0-1: prologue — the first S-1 iterations' leading stages
//	K0..K0+II-1: kernel — one context per slot, re-executed K times via a
//	          conditional back-jump driven by the pass counter
//	E0..:     epilogue — the last S-1 iterations' trailing stages, then an
//	          unconditional jump over the sequential fallback
//	SEQ:      the list-scheduled loop, taken when T < S (the pipeline
//	          needs at least S iterations to fill)
//
// Every pipeline value is pinned: one RF register per body operation holds
// the value across all overlapped iterations (the dependence windows of
// modsched.Edge keep each lifetime within one II, so no modulo variable
// expansion is needed). All instance ops carry Node == nil; the CDFG nodes
// are covered exactly once by the sequential fallback, keeping the verifier's
// coverage rule intact.

// pipeArg is one analyzed operand of a body operation.
type pipeArg struct {
	// producer ≥ 0 indexes the body op whose value is read, at iteration
	// distance dist. producer < 0 marks an invariant operand.
	producer int
	dist     int
	// Invariant operands: a constant, or a loop-invariant local.
	konst bool
	cval  int32
	local string
}

// pipeOp is one body operation after pWRITE merging.
type pipeOp struct {
	node  *cdfg.Node
	code  arch.OpCode
	args  []pipeArg
	local string // non-empty: the op commits this local's home slot
	dur   int
	cand  []int
	array int
	imm   int32
}

// pipePlan is an analyzed, pipeline-eligible loop.
type pipePlan struct {
	r    *cdfg.Region
	body *cdfg.Block
	ops  []pipeOp
	// ctr is the counter local; bound the invariant exit bound; inclusive
	// distinguishes IFLE (i <= b) from IFLT (i < b).
	ctr       string
	bound     cdfg.Operand
	inclusive bool
}

// tryPipeline attempts to software-pipeline loop r at cycle start. ok=false
// (with nil error) means the caller should fall back to the list layout;
// a non-nil error aborts scheduling (cancellation or an internal fault).
func (s *scheduler) tryPipeline(r *cdfg.Region, start int) (end int, ok bool, err error) {
	plan, reason := s.analyzePipeline(r)
	if plan == nil {
		if s.opts.Explain != nil {
			s.opts.Explain.Add(start, fmt.Sprintf("loop r%d: %s", r.ID, reason), RejectPipelineIneligible)
		}
		return 0, false, nil
	}
	prob, perr := s.buildProblem(plan)
	if perr != "" {
		if s.opts.Explain != nil {
			s.opts.Explain.Add(start, fmt.Sprintf("loop r%d: %s", r.ID, perr), RejectPipelineIneligible)
		}
		return 0, false, nil
	}
	sol, err := modsched.Solve(s.ctx, prob)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return 0, false, fmt.Errorf("sched: modulo scheduling cancelled: %w", err)
		}
		var nse *modsched.NoScheduleError
		if errors.As(err, &nse) {
			s.logAttempts(r, start, nse.Attempts)
			if s.opts.Explain != nil {
				s.opts.Explain.Add(start, fmt.Sprintf("loop r%d: %v", r.ID, err), RejectPipelineIneligible)
			}
			return 0, false, nil
		}
		// Problem-validation faults are scheduler bugs, not fallbacks.
		return 0, false, fmt.Errorf("sched: modulo scheduling loop r%d: %w", r.ID, err)
	}
	s.logAttempts(r, start, sol.Attempts)
	return s.realizePipeline(r, plan, sol, start)
}

// logAttempts records every II attempt in the explain log, successful or not,
// so an II search is replayable from the log.
func (s *scheduler) logAttempts(r *cdfg.Region, start int, attempts []modsched.Attempt) {
	if s.opts.Explain == nil {
		return
	}
	for _, a := range attempts {
		outcome := "ok"
		if a.Err != "" {
			outcome = a.Err
		}
		s.opts.Explain.Add(start,
			fmt.Sprintf("loop r%d II=%d placed=%d ejections=%d copies=%d: %s",
				r.ID, a.II, a.Placed, a.Ejections, a.Copies, outcome),
			RejectIIAttempt)
	}
}

// analyzePipeline checks loop r against the v1 eligibility rules and, when
// they hold, extracts the merged body operations. A nil plan carries the
// human-readable reject reason.
//
// Eligible loops are innermost counted loops: a single-compare header
// IFLT/IFLE(ctr, invariant-bound), a straight-line body (RBlock), exactly one
// unpredicated pWRITE per written local, a ctr advance of exactly +1, no
// predication, no body compares, and no DMA besides LOAD.
func (s *scheduler) analyzePipeline(r *cdfg.Region) (*pipePlan, string) {
	if r.Body == nil || r.Body.Kind != cdfg.RBlock || r.Body.Block == nil {
		return nil, "body is not a straight-line block"
	}
	body := r.Body.Block
	if len(body.Nodes) == 0 {
		return nil, "empty body"
	}
	if body.Cond != nil {
		return nil, "body computes a condition"
	}
	if r.Header == nil || r.Header.Cond == nil || r.Header.Cond.Op != cdfg.CondLeaf {
		return nil, "header condition is not a single compare"
	}
	cmp := r.Header.Cond.Cmp
	if len(r.Header.Nodes) != 1 || r.Header.Nodes[0] != cmp || cmp.Pred != nil {
		return nil, "header is not exactly the exit compare"
	}
	if cmp.Op != arch.IFLT && cmp.Op != arch.IFLE {
		return nil, fmt.Sprintf("exit compare %v is not IFLT/IFLE", cmp.Op)
	}
	if len(cmp.Args) != 2 || cmp.Args[0].Kind != cdfg.FromLocal {
		return nil, "exit compare does not read a counter local"
	}
	ctr := cmp.Args[0].Local
	bound := cmp.Args[1]
	if bound.Kind == cdfg.FromNode {
		return nil, "exit bound is a header computation"
	}

	inBody := map[*cdfg.Node]bool{}
	for _, n := range body.Nodes {
		inBody[n] = true
	}
	writes := map[string][]*cdfg.Node{}
	for _, n := range body.Nodes {
		if n.Pred != nil {
			return nil, "predicated operation in body"
		}
		switch n.Kind {
		case cdfg.KPWrite:
			writes[n.Local] = append(writes[n.Local], n)
		case cdfg.KOp:
			if n.Op == arch.STORE {
				return nil, "STORE in body"
			}
			if n.IsDMA() && n.Op != arch.LOAD {
				return nil, fmt.Sprintf("DMA op %v in body", n.Op)
			}
			if n.IsCompare() {
				return nil, "compare in body"
			}
		default:
			return nil, "unknown node kind in body"
		}
		for _, a := range n.Args {
			if a.Kind == cdfg.FromNode && !inBody[a.Node] {
				return nil, "body reads a value from outside the loop"
			}
			if a.Kind == cdfg.FromLocal && len(a.Version) > 1 {
				return nil, "multi-writer versioned read"
			}
		}
	}
	for local, ws := range writes {
		if len(ws) > 1 {
			return nil, fmt.Sprintf("local %q written more than once per iteration", local)
		}
	}
	if bound.Kind == cdfg.FromLocal && len(writes[bound.Local]) > 0 {
		return nil, "exit bound is written inside the loop"
	}
	ctrWs := writes[ctr]
	if len(ctrWs) != 1 {
		return nil, "counter is not written exactly once per iteration"
	}
	if !ctrStepIsOne(ctrWs[0], ctr) {
		return nil, "counter advance is not ctr = ctr + 1"
	}
	// Ordering prerequisites must coincide with data edges already implied
	// by the args (true for eligible bodies by construction: version reads
	// duplicate Prereqs, there are no stores, and single writes leave no
	// WAW arcs). Anything else would need a no-route ordering edge the
	// solver does not model.
	for _, n := range body.Nodes {
		for _, p := range n.Prereqs {
			if !inBody[p] {
				continue // satisfied before the loop starts
			}
			if !argImplies(n, p) {
				return nil, fmt.Sprintf("ordering prereq n%d→n%d has no data edge", p.ID, n.ID)
			}
		}
		if n.Kind != cdfg.KPWrite {
			for _, w := range n.WeakPrereqs {
				if inBody[w] {
					return nil, "write-after-read ordering on a non-pWRITE node"
				}
			}
		}
	}

	plan := &pipePlan{r: r, body: body, ctr: ctr, bound: bound, inclusive: cmp.Op == arch.IFLE}
	if reason := s.extractOps(plan, writes); reason != "" {
		return nil, reason
	}
	return plan, ""
}

// ctrStepIsOne reports whether pWRITE w advances ctr by exactly +1.
func ctrStepIsOne(w *cdfg.Node, ctr string) bool {
	n := w.AliasOf
	if n == nil || n.Op != arch.IADD || len(n.Args) != 2 {
		return false
	}
	a, b := n.Args[0], n.Args[1]
	isCtr := func(o cdfg.Operand) bool {
		return o.Kind == cdfg.FromLocal && o.Local == ctr && len(o.Version) == 0
	}
	isOne := func(o cdfg.Operand) bool { return o.Kind == cdfg.FromConst && o.Const == 1 }
	return (isCtr(a) && isOne(b)) || (isOne(a) && isCtr(b))
}

// argImplies reports whether node n already depends on p through an operand
// (directly or via a versioned local read).
func argImplies(n, p *cdfg.Node) bool {
	for _, a := range n.Args {
		if a.Kind == cdfg.FromNode && a.Node == p {
			return true
		}
		if a.Kind == cdfg.FromLocal {
			for _, w := range a.Version {
				if w == p {
					return true
				}
			}
		}
	}
	return false
}

// extractOps merges pWRITEs into their producers where the home PE allows it
// and builds the pipeOp list. A non-empty return is a reject reason.
func (s *scheduler) extractOps(plan *pipePlan, writes map[string][]*cdfg.Node) string {
	body := plan.body
	// Ensure every written local has a home before candidate sets are
	// pinned to it (the list scheduler would assign the same way on first
	// write: producer PE if known, else the best-connected PE).
	for local, ws := range writes {
		if _, ok := s.sch.Homes[local]; !ok {
			s.homeValue(local, s.pickHomePE(ws[0].Args[0]))
		}
	}
	// Merge decisions: one unpredicated pWRITE may ride its producer when
	// the home PE supports the producer's opcode.
	merged := map[*cdfg.Node]*cdfg.Node{} // producer -> pWRITE
	if !s.opts.NoFusing {
		for _, n := range body.Nodes {
			if n.Kind != cdfg.KPWrite || n.AliasOf == nil {
				continue
			}
			home := s.sch.Homes[n.Local]
			if _, taken := merged[n.AliasOf]; taken {
				continue
			}
			if s.comp.PEs[home.PE].Supports(n.AliasOf.Op) {
				merged[n.AliasOf] = n
			}
		}
	}

	nodeToOp := map[*cdfg.Node]int{}
	var raw [][]cdfg.Operand // per op, the CDFG operands to resolve
	for _, n := range body.Nodes {
		if n.Kind == cdfg.KPWrite {
			if pw := merged[n.AliasOf]; n.AliasOf != nil && pw == n {
				nodeToOp[n] = nodeToOp[n.AliasOf] // producer emitted earlier (topological order)
				continue
			}
			home := s.sch.Homes[n.Local]
			code := arch.MOVE
			var imm int32
			if n.Args[0].Kind == cdfg.FromConst {
				code = arch.CONST
				imm = n.Args[0].Const
			}
			if !s.comp.PEs[home.PE].Supports(code) {
				return fmt.Sprintf("home PE %d of %q lacks %v", home.PE, n.Local, code)
			}
			op := pipeOp{
				node: n, code: code, local: n.Local, imm: imm,
				dur: s.comp.PEs[home.PE].Duration(code), cand: []int{home.PE},
			}
			args := n.Args[:0:0]
			if code == arch.MOVE {
				args = n.Args[:1]
			}
			nodeToOp[n] = len(plan.ops)
			plan.ops = append(plan.ops, op)
			raw = append(raw, args)
			continue
		}
		op := pipeOp{node: n, code: n.Op, array: n.Array, imm: n.Const}
		if pw := merged[n]; pw != nil {
			home := s.sch.Homes[pw.Local]
			op.local = pw.Local
			op.cand = []int{home.PE}
			op.dur = s.comp.PEs[home.PE].Duration(n.Op)
		} else {
			cand, dur := s.minDurPEs(n.Op)
			if len(cand) == 0 {
				return fmt.Sprintf("no PE supports %v", n.Op)
			}
			op.cand, op.dur = cand, dur
		}
		nodeToOp[n] = len(plan.ops)
		plan.ops = append(plan.ops, op)
		raw = append(raw, n.Args)
	}

	// Resolve args to pipeArgs and dependence info.
	for i := range plan.ops {
		resolved := make([]pipeArg, 0, len(raw[i]))
		for _, a := range raw[i] {
			switch a.Kind {
			case cdfg.FromNode:
				resolved = append(resolved, pipeArg{producer: nodeToOp[a.Node]})
			case cdfg.FromConst:
				resolved = append(resolved, pipeArg{producer: -1, konst: true, cval: a.Const})
			case cdfg.FromLocal:
				if len(a.Version) == 1 {
					resolved = append(resolved, pipeArg{producer: nodeToOp[a.Version[0]]})
				} else if ws := writes[a.Local]; len(ws) == 1 {
					resolved = append(resolved, pipeArg{producer: nodeToOp[ws[0]], dist: 1})
				} else {
					resolved = append(resolved, pipeArg{producer: -1, local: a.Local})
				}
			}
		}
		plan.ops[i].args = resolved
	}
	return ""
}

// minDurPEs returns the PEs implementing op at its minimum duration (modulo
// ops need one uniform latency across their candidate set).
func (s *scheduler) minDurPEs(op arch.OpCode) ([]int, int) {
	all := s.comp.SupportingPEs(op)
	best := 0
	for i, pe := range all {
		d := s.comp.PEs[pe].Duration(op)
		if i == 0 || d < best {
			best = d
		}
	}
	var out []int
	for _, pe := range all {
		if s.comp.PEs[pe].Duration(op) == best {
			out = append(out, pe)
		}
	}
	return out, best
}

// buildProblem translates the plan into a modsched.Problem. A non-empty
// string is a reject reason.
func (s *scheduler) buildProblem(plan *pipePlan) (*modsched.Problem, string) {
	moveCand, moveDur := s.minDurPEs(arch.MOVE)
	if len(moveCand) == 0 {
		return nil, "no PE supports MOVE"
	}
	subCand, subDur := s.minDurPEs(arch.ISUB)
	// The pass counter is initialized by a MOVE on the same PE.
	subCand = filterSupports(s.comp, subCand, arch.MOVE)
	if len(subCand) == 0 {
		return nil, "no PE supports both ISUB and MOVE for loop control"
	}
	cmpCand, cmpDur := s.minDurPEs(arch.IFGT)
	if len(cmpCand) == 0 {
		return nil, "no PE supports IFGT for loop control"
	}
	p := &modsched.Problem{
		NumPEs:   s.comp.NumPEs(),
		Dist:     s.rt.Dist,
		MoveCand: moveCand, MoveDur: moveDur,
		SubCand: subCand, SubDur: subDur,
		CmpCand: cmpCand, CmpDur: cmpDur,
	}
	for i, m := range plan.ops {
		p.Ops = append(p.Ops, modsched.Op{
			ID: i, Name: m.node.String(), Dur: m.dur, Cand: m.cand, CopyOf: -1,
		})
		for _, a := range m.args {
			if a.producer >= 0 {
				p.Edges = append(p.Edges, modsched.Edge{From: a.producer, To: i, Dist: a.dist})
			}
		}
	}
	return p, ""
}

func filterSupports(comp *arch.Composition, pes []int, op arch.OpCode) []int {
	var out []int
	for _, pe := range pes {
		if comp.PEs[pe].Supports(op) {
			out = append(out, pe)
		}
	}
	return out
}

// --- realization ---

// realizePipeline emits the solved modulo schedule as contexts, starting at
// cycle start, and returns the first cycle after the construct. ok=false
// (nil error) falls back to the list layout with no state committed.
func (s *scheduler) realizePipeline(r *cdfg.Region, plan *pipePlan, sol *modsched.Solution, start int) (int, bool, error) {
	II, S := sol.II, sol.Stages
	ctrHome := s.sch.Homes[plan.ctr]

	// The trip/pass-count computation needs ISUB, possibly IADD, and the
	// guard compare IFGE on one PE near the counter's home.
	needIADD := plan.inclusive && S == 1
	var workCand []int
	for pe := range s.comp.PEs {
		if s.comp.PEs[pe].Supports(arch.ISUB) && s.comp.PEs[pe].Supports(arch.IFGE) &&
			(!needIADD || s.comp.PEs[pe].Supports(arch.IADD)) {
			workCand = append(workCand, pe)
		}
	}
	if len(workCand) == 0 {
		if s.opts.Explain != nil {
			s.opts.Explain.Add(start, fmt.Sprintf("loop r%d: no PE for trip-count setup", r.ID), RejectPipelineIneligible)
		}
		return 0, false, nil
	}
	workPE := s.rt.NearestFrom(ctrHome.PE, workCand)

	// From here on state is committed; failures are internal errors.
	s.safeFloor = start
	s.purgeWrittenCopies(r)

	// --- SETUP: K = (bound - ctr0) + inc - (S-1); guard K >= 1 ---
	setupMax := start // last finish among setup emissions

	boundVal, boundReady, err := s.pipeSetupOperand(plan.bound, workPE, start)
	if err != nil {
		return 0, false, err
	}
	ctrVal, ctrReady := s.pipeTempOnPE(ctrHome, workPE, start, &setupMax)
	tv, tFin := s.pipeSetupOp(workPE, arch.ISUB,
		Src{Kind: SrcReg, Val: boundVal}, Src{Kind: SrcReg, Val: ctrVal},
		maxInt(maxInt(boundReady, ctrReady), start), nil)
	setupMax = maxInt(setupMax, tFin)
	kv, kReady := tv, tFin+1
	adj := S - 1
	if plan.inclusive {
		adj--
	}
	if adj != 0 {
		code := arch.ISUB
		c := int32(adj)
		if adj < 0 {
			code = arch.IADD
			c = int32(-adj)
		}
		cv, cReady := s.pipeConstOnPE(c, workPE, start, &setupMax)
		var fin int
		kv, fin = s.pipeSetupOp(workPE, code,
			Src{Kind: SrcReg, Val: tv}, Src{Kind: SrcReg, Val: cv},
			maxInt(kReady, cReady), nil)
		setupMax = maxInt(setupMax, fin)
		kReady = fin + 1
	}

	// Guard: IFGE(K, 1) — pipeline iff at least S iterations remain.
	oneW, oneWReady := s.pipeConstOnPE(1, workPE, start, &setupMax)
	guardOp, guardFin := s.pipeSetupCompare(workPE, arch.IFGE,
		Src{Kind: SrcReg, Val: kv}, Src{Kind: SrcReg, Val: oneW},
		maxInt(kReady, oneWReady))
	setupMax = maxInt(setupMax, guardFin)
	guardSlot := s.newSlot()
	s.sch.CBox = append(s.sch.CBox, &CBoxOp{
		Cycle: guardFin, Kind: CBConsume, StatusPE: guardOp.PE, Logic: CBPass, Write: guardSlot,
	})
	guardSlot.Writes = append(guardSlot.Writes, guardFin)
	s.cboxBusy[guardFin] = true
	s.sch.Stats.CBoxOps++

	// Pass counter k on SubPE, initialized to K; the kernel decrements it
	// and jumps back while the pre-decrement value exceeds 1.
	kInit, kInitReady := s.pipeTempOnPE(kv, sol.SubPE, maxInt(kReady-1, start), &setupMax)
	_ = kInitReady
	kVal := s.newValue(sol.SubPE, 0)
	kVal.Pinned = true
	var kSrc Src
	if kInit.PE == sol.SubPE {
		kSrc = Src{Kind: SrcReg, Val: kInit}
	} else {
		kSrc = Src{Kind: SrcRoute, Val: kInit, FromPE: kInit.PE}
	}
	_, kFin := s.pipeSetupOp(sol.SubPE, arch.MOVE, kSrc, Src{}, maxInt(kInit.Def+1, start), kVal)
	setupMax = maxInt(setupMax, kFin)
	kVal.Def = kFin

	// Control constants, resident on the control PEs.
	oneSub, _ := s.pipeConstOnPE(1, sol.SubPE, start, &setupMax)
	oneCmp, _ := s.pipeConstOnPE(1, sol.CmpPE, start, &setupMax)

	// Invariant operands of the body, resident on each op's solved PE.
	invSrc := make([][]*Value, len(plan.ops))
	for i, m := range plan.ops {
		invSrc[i] = make([]*Value, len(m.args))
		for ai, a := range m.args {
			if a.producer >= 0 {
				continue
			}
			var v *Value
			if a.konst {
				v, _ = s.pipeConstOnPE(a.cval, sol.PE[i], start, &setupMax)
			} else {
				v = s.pipeLocalOnPE(a.local, sol.PE[i], start, &setupMax)
			}
			invSrc[i][ai] = v
		}
	}

	// Guard jump: to the sequential fallback when K < 1. All setup ops
	// must have finished by the jump context — on the fallback path the
	// pipeline's contexts never execute, so no busy tail may cross it.
	jt := maxInt(setupMax, guardFin+1)
	for s.sch.CCU[jt] != nil {
		jt++
	}
	guardJump := &CCUOp{Cycle: jt, Slot: guardSlot, Invert: true}
	guardSlot.Uses = append(guardSlot.Uses, jt)
	s.sch.CCU[jt] = guardJump

	// --- layout ---
	P0 := jt + 1
	K0 := P0 + (S-1)*II
	E0 := K0 + II

	// --- instance values ---
	nOrig := len(plan.ops)
	vals := make([]*Value, len(sol.Ops))
	for i := range sol.Ops {
		if i < nOrig && plan.ops[i].local != "" {
			home := s.sch.Homes[plan.ops[i].local]
			if home.PE != sol.PE[i] {
				return 0, false, fmt.Errorf("sched: pipelined op %d placed on PE %d, home of %q on PE %d",
					i, sol.PE[i], plan.ops[i].local, home.PE)
			}
			vals[i] = home
			continue
		}
		v := s.newValue(sol.PE[i], P0+sol.Time[i]+sol.Ops[i].Dur-1)
		v.Pinned = true
		vals[i] = v
	}

	// Feed resolution: map each producer arg back to the op actually
	// routing the value (possibly the last copy of an inserted chain).
	feeds, err := resolveFeeds(plan, sol)
	if err != nil {
		return 0, false, err
	}

	// --- instance emission ---
	lastFinish := K0 + II - 1
	emit := func(i, flat int, kernel bool) {
		m := sol.Ops[i]
		pe := sol.PE[i]
		var srcs []Src
		code := arch.MOVE
		var imm int32
		array := 0
		if i < nOrig {
			po := plan.ops[i]
			code, imm, array = po.code, po.imm, po.array
			for ai := range po.args {
				if po.args[ai].producer >= 0 {
					srcs = append(srcs, routeSrc(vals, sol, feeds[i][ai], pe))
				} else {
					srcs = append(srcs, Src{Kind: SrcReg, Val: invSrc[i][ai]})
				}
			}
		} else {
			srcs = append(srcs, routeSrc(vals, sol, feeds[i][0], pe))
		}
		op := &Op{PE: pe, Cycle: flat, Dur: m.Dur, Code: code, Dest: vals[i], Imm: imm, Array: array}
		if len(srcs) > 0 {
			op.A = srcs[0]
		}
		if len(srcs) > 1 {
			op.B = srcs[1]
		}
		s.commitSrcs(srcs, flat)
		s.markBusy(pe, flat, m.Dur)
		if kernel {
			// A kernel op whose busy tail crosses the II boundary also
			// occupies the wrapped slots of the next pass.
			for d := 0; d < m.Dur; d++ {
				slot := sol.Time[i]%II + d
				if slot >= II {
					s.markBusy(pe, K0+slot%II, 1)
				}
			}
		}
		s.sch.Ops = append(s.sch.Ops, op)
		if flat+m.Dur-1 > lastFinish {
			lastFinish = flat + m.Dur - 1
		}
	}
	for i := range sol.Ops {
		k, m := sol.Time[i]/II, sol.Time[i]%II
		for p := k; p <= S-2; p++ {
			emit(i, P0+p*II+m, false)
		}
		emit(i, K0+m, true)
		for e := 0; e < k; e++ {
			emit(i, E0+e*II+m, false)
		}
	}

	// --- loop control: k decrement, exit compare, conditional back-jump ---
	m0 := sol.CtrlSlot
	subDur := s.comp.PEs[sol.SubPE].Duration(arch.ISUB)
	cmpDur := s.comp.PEs[sol.CmpPE].Duration(arch.IFGT)
	ksub := &Op{
		PE: sol.SubPE, Cycle: K0 + m0, Dur: subDur, Code: arch.ISUB,
		A: Src{Kind: SrcReg, Val: kVal}, B: Src{Kind: SrcReg, Val: oneSub}, Dest: kVal,
	}
	s.commitSrcs([]Src{ksub.A, ksub.B}, K0+m0)
	s.markBusy(sol.SubPE, K0+m0, subDur)
	s.sch.Ops = append(s.sch.Ops, ksub)
	// The compare reads the pre-decrement k over the routing network (the
	// RF presents the old value while it is being overwritten): the jump
	// back is taken while k > 1, giving exactly K kernel passes.
	kcmp := &Op{
		PE: sol.CmpPE, Cycle: K0 + m0, Dur: cmpDur, Code: arch.IFGT,
		A: Src{Kind: SrcRoute, Val: kVal, FromPE: sol.SubPE},
		B: Src{Kind: SrcReg, Val: oneCmp},
	}
	s.commitSrcs([]Src{kcmp.A, kcmp.B}, K0+m0)
	s.markBusy(sol.CmpPE, K0+m0, cmpDur)
	s.sch.Ops = append(s.sch.Ops, kcmp)
	cmpFin := K0 + m0 + cmpDur - 1
	condSlot := s.newSlot()
	s.sch.CBox = append(s.sch.CBox, &CBoxOp{
		Cycle: cmpFin, Kind: CBConsume, StatusPE: sol.CmpPE, Logic: CBPass, Write: condSlot,
	})
	condSlot.Writes = append(condSlot.Writes, cmpFin)
	s.cboxBusy[cmpFin] = true
	s.sch.Stats.CBoxOps++
	bjc := K0 + II - 1
	if s.sch.CCU[bjc] != nil {
		return 0, false, fmt.Errorf("sched: pipelined back-jump cycle %d already used", bjc)
	}
	s.sch.CCU[bjc] = &CCUOp{Cycle: bjc, Slot: condSlot, Target: K0}
	condSlot.Uses = append(condSlot.Uses, bjc)

	// --- exit jump over the sequential fallback ---
	pipeEnd := E0 + (S-1)*II
	jc := maxInt(pipeEnd-1, lastFinish)
	for s.sch.CCU[jc] != nil {
		jc++
	}
	exitJump := &CCUOp{Cycle: jc, Uncond: true}
	s.sch.CCU[jc] = exitJump

	// --- sequential fallback (also realizes every CDFG node once) ---
	seqStart := jc + 1
	guardJump.Target = seqStart
	s.safeFloor = seqStart
	seqEnd, err := s.loop(r, seqStart)
	if err != nil {
		return 0, false, err
	}
	exitJump.Target = seqEnd
	// Copies and constants born on the fallback path do not exist when the
	// pipeline ran: hide them from later consumers.
	s.purgeCopiesFrom(seqStart)
	s.safeFloor = seqEnd

	s.sch.Pipelined = append(s.sch.Pipelined, PipelinedLoop{
		II: II, MII: sol.MII, ResMII: sol.ResMII, RecMII: sol.RecMII,
		Stages: S, Ops: nOrig, Copies: len(sol.Ops) - nOrig,
		Backtracks: sol.Backtracks, Attempts: len(sol.Attempts),
		Start: start, End: seqEnd,
	})
	s.sch.Stats.PipelinedLoops++
	s.sch.Stats.ModuloBacktracks += sol.Backtracks
	return seqEnd, true, nil
}

// routeSrc builds the operand source for reading op src's value on pe.
func routeSrc(vals []*Value, sol *modsched.Solution, src, pe int) Src {
	if sol.PE[src] == pe {
		return Src{Kind: SrcReg, Val: vals[src]}
	}
	return Src{Kind: SrcRoute, Val: vals[src], FromPE: sol.PE[src]}
}

// resolveFeeds maps, for each original op and producer-arg position, the
// solution op whose value is actually read (the writer itself, or the last
// copy of an inserted routing chain); copies resolve their single in-edge.
func resolveFeeds(plan *pipePlan, sol *modsched.Solution) ([][]int, error) {
	origin := func(i int) int {
		if sol.Ops[i].CopyOf >= 0 {
			return sol.Ops[i].CopyOf
		}
		return i
	}
	in := make([][]modsched.Edge, len(sol.Ops))
	for _, e := range sol.Edges {
		in[e.To] = append(in[e.To], e)
	}
	used := make([][]bool, len(sol.Ops))
	for i := range in {
		used[i] = make([]bool, len(in[i]))
	}
	nOrig := len(plan.ops)
	feeds := make([][]int, len(sol.Ops))
	for i := range sol.Ops {
		if i >= nOrig {
			if len(in[i]) != 1 {
				return nil, fmt.Errorf("sched: pipelined copy %d has %d in-edges", i, len(in[i]))
			}
			feeds[i] = []int{in[i][0].From}
			continue
		}
		feeds[i] = make([]int, len(plan.ops[i].args))
		for ai, a := range plan.ops[i].args {
			feeds[i][ai] = -1
			if a.producer < 0 {
				continue
			}
			for k, e := range in[i] {
				if !used[i][k] && origin(e.From) == a.producer {
					used[i][k] = true
					feeds[i][ai] = e.From
					break
				}
			}
			if feeds[i][ai] < 0 {
				return nil, fmt.Errorf("sched: pipelined op %d: no edge for producer %d", i, a.producer)
			}
		}
	}
	return feeds, nil
}

// --- setup emission helpers ---

// pipeSetupOp places one setup operation on pe at the earliest cycle ≥ minT
// where the PE is free and any routed operand's source port is available.
// dest nil creates a fresh value. Returns the op and its finish cycle.
func (s *scheduler) pipeSetupOp(pe int, code arch.OpCode, a, b Src, minT int, dest *Value) (*Value, int) {
	dur := s.comp.PEs[pe].Duration(code)
	t := minT
	for {
		t = s.earliestFree(pe, t, dur)
		if routedOK(s, a, t) && routedOK(s, b, t) {
			break
		}
		t++
	}
	fin := t + dur - 1
	if dest == nil {
		dest = s.newValue(pe, fin)
	}
	op := &Op{PE: pe, Cycle: t, Dur: dur, Code: code, A: a, B: b, Dest: dest}
	var srcs []Src
	if a.Kind != SrcNone {
		srcs = append(srcs, a)
	}
	if b.Kind != SrcNone {
		srcs = append(srcs, b)
	}
	s.commitSrcs(srcs, t)
	s.markBusy(pe, t, dur)
	s.sch.Ops = append(s.sch.Ops, op)
	return dest, fin
}

// pipeSetupCompare places a compare whose status must land in a free C-Box
// cycle at its finish.
func (s *scheduler) pipeSetupCompare(pe int, code arch.OpCode, a, b Src, minT int) (*Op, int) {
	dur := s.comp.PEs[pe].Duration(code)
	t := minT
	for {
		t = s.earliestFree(pe, t, dur)
		if !s.cboxBusy[t+dur-1] && routedOK(s, a, t) && routedOK(s, b, t) {
			break
		}
		t++
	}
	op := &Op{PE: pe, Cycle: t, Dur: dur, Code: code, A: a, B: b}
	s.commitSrcs([]Src{a, b}, t)
	s.markBusy(pe, t, dur)
	s.sch.Ops = append(s.sch.Ops, op)
	return op, t + dur - 1
}

func routedOK(s *scheduler, src Src, t int) bool {
	return src.Kind != SrcRoute || s.outlAvailable(src.FromPE, t, src.Val)
}

// pipeTempOnPE returns a value holding v's contents readable on pe (same PE
// or one hop away), inserting anonymous MOVE hops when farther. Temporaries
// are not registered for reuse: values like the counter's snapshot go stale
// the moment the loop body runs.
func (s *scheduler) pipeTempOnPE(v *Value, pe, floor int, setupMax *int) (*Value, int) {
	ready := maxInt(v.Def+1, floor)
	if s.rt.Dist(v.PE, pe) <= 1 {
		return v, ready
	}
	path, err := s.rt.Path(v.PE, pe)
	if err != nil {
		return v, ready // unreachable: FullyConnected rules this out
	}
	prev := v
	for _, hop := range path[1 : len(path)-1] {
		prev, ready = s.pipeHop(prev, hop, ready, setupMax, nil)
	}
	return prev, ready
}

// pipeHop emits one MOVE copying prev onto hop; reg non-nil registers the
// copy for reuse (invariant locals and constants).
func (s *scheduler) pipeHop(prev *Value, hop, minT int, setupMax *int, reg *cdfg.Operand) (*Value, int) {
	t := minT
	for {
		t = s.earliestFree(hop, t, 1)
		if s.outlAvailable(prev.PE, t, prev) {
			break
		}
		t++
	}
	dst := s.newValue(hop, t)
	if reg != nil {
		dst.Pinned = true
		s.registerCopy(*reg, hop, dst)
	}
	op := &Op{
		PE: hop, Cycle: t, Dur: 1, Code: arch.MOVE,
		A:    Src{Kind: SrcRoute, Val: prev, FromPE: prev.PE},
		Dest: dst,
	}
	prev.Uses = append(prev.Uses, t)
	s.reserveOutl(prev.PE, t, prev)
	s.markBusy(hop, t, 1)
	s.sch.Ops = append(s.sch.Ops, op)
	s.sch.Stats.CopiesInserted++
	if t > *setupMax {
		*setupMax = t
	}
	return dst, t + 1
}

// pipeConstOnPE returns a pinned constant value resident on pe, reusing
// registered copies, materializing a CONST when the PE supports it, and
// otherwise copying from the nearest materialization point.
func (s *scheduler) pipeConstOnPE(c int32, pe, floor int, setupMax *int) (*Value, int) {
	if v := s.constCp[c][pe]; v != nil {
		return v, maxInt(v.Def+1, floor)
	}
	if s.comp.PEs[pe].Supports(arch.CONST) {
		e := s.earliestFree(pe, floor, 1)
		v := s.materializeConst(c, pe, e)
		if e > *setupMax {
			*setupMax = e
		}
		return v, e + 1
	}
	// Materialize on the nearest CONST-capable PE, then hop over.
	var best *Value
	for _, v := range s.constCp[c] {
		if best == nil || s.rt.Dist(v.PE, pe) < s.rt.Dist(best.PE, pe) {
			best = v
		}
	}
	if best == nil {
		src := s.rt.NearestFrom(pe, s.comp.SupportingPEs(arch.CONST))
		e := s.earliestFree(src, floor, 1)
		best = s.materializeConst(c, src, e)
		if e > *setupMax {
			*setupMax = e
		}
	}
	reg := cdfg.Operand{Kind: cdfg.FromConst, Const: c}
	return s.pipeResidentChain(best, pe, maxInt(best.Def+1, floor), setupMax, &reg)
}

// pipeLocalOnPE returns a pinned, dist-0 copy of an invariant local on pe.
func (s *scheduler) pipeLocalOnPE(name string, pe, floor int, setupMax *int) *Value {
	home := s.homeValue(name, pe)
	if home.PE == pe {
		return home
	}
	if v := s.copies[name][pe]; v != nil {
		return v
	}
	best := home
	for _, v := range s.copies[name] {
		if s.rt.Dist(v.PE, pe) < s.rt.Dist(best.PE, pe) {
			best = v
		}
	}
	reg := cdfg.Operand{Kind: cdfg.FromLocal, Local: name}
	v, _ := s.pipeResidentChain(best, pe, maxInt(best.Def+1, floor), setupMax, &reg)
	return v
}

// pipeResidentChain copies src all the way onto pe (distance 0), registering
// every hop for reuse.
func (s *scheduler) pipeResidentChain(src *Value, pe, ready int, setupMax *int, reg *cdfg.Operand) (*Value, int) {
	if src.PE == pe {
		return src, ready
	}
	path, err := s.rt.Path(src.PE, pe)
	if err != nil {
		return src, ready
	}
	prev := src
	for _, hop := range path[1:] {
		prev, ready = s.pipeHop(prev, hop, ready, setupMax, reg)
	}
	return prev, ready
}

// pipeSetupOperand resolves the loop bound (a constant or an invariant
// local) into a value readable on pe during setup.
func (s *scheduler) pipeSetupOperand(o cdfg.Operand, pe, floor int) (*Value, int, error) {
	var setupMax int
	switch o.Kind {
	case cdfg.FromConst:
		v, ready := s.pipeConstOnPE(o.Const, pe, floor, &setupMax)
		return v, ready, nil
	case cdfg.FromLocal:
		v := s.pipeLocalOnPE(o.Local, pe, floor, &setupMax)
		return v, maxInt(v.Def+1, floor), nil
	}
	return nil, 0, fmt.Errorf("sched: pipelined bound operand %v unsupported", o)
}
