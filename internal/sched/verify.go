package sched

import (
	"fmt"

	"cgra/internal/arch"
	"cgra/internal/cdfg"
)

// Verify checks a schedule's internal consistency against the machine model:
// PE exclusivity, operand readability, interconnect legality, routing-output
// conflicts, C-Box single-access rules, predication gating, CCU sanity and
// complete coverage of the CDFG. The scheduler runs it on every result; it
// exists so scheduler bugs surface as descriptive errors instead of silent
// mis-execution.
func Verify(s *Schedule) error {
	numPE := s.Comp.NumPEs()
	busy := map[[2]int]*Op{}
	for _, op := range s.Ops {
		if op.PE < 0 || op.PE >= numPE {
			return fmt.Errorf("op %v: PE out of range", op)
		}
		pe := s.Comp.PEs[op.PE]
		if !pe.Supports(op.Code) {
			return fmt.Errorf("op %v: PE %d does not implement %v", op, op.PE, op.Code)
		}
		if op.Dur != pe.Duration(op.Code) {
			return fmt.Errorf("op %v: duration %d does not match PE's %d", op, op.Dur, pe.Duration(op.Code))
		}
		if op.Code.IsDMA() && !pe.HasDMA {
			return fmt.Errorf("op %v: DMA on non-DMA PE %d", op, op.PE)
		}
		for c := op.Cycle; c < op.Cycle+op.Dur; c++ {
			key := [2]int{op.PE, c}
			if other := busy[key]; other != nil {
				return fmt.Errorf("PE %d double-booked at cycle %d: %v and %v", op.PE, c, other, op)
			}
			busy[key] = op
		}
		if op.Cycle < 0 || op.Cycle+op.Dur > s.Length {
			return fmt.Errorf("op %v: outside schedule [0,%d)", op, s.Length)
		}
		if err := verifySrc(s, op, op.A); err != nil {
			return err
		}
		if err := verifySrc(s, op, op.B); err != nil {
			return err
		}
		if op.Dest != nil && op.Dest.PE != op.PE {
			return fmt.Errorf("op %v: writes value homed on PE %d", op, op.Dest.PE)
		}
		if op.Code == arch.STORE && op.Dest != nil {
			return fmt.Errorf("op %v: STORE must not write the RF", op)
		}
	}
	// Routing outputs: one value per (PE, cycle).
	type outlKey struct{ pe, cycle int }
	outl := map[outlKey]*Value{}
	for _, op := range s.Ops {
		for _, src := range []Src{op.A, op.B} {
			if src.Kind != SrcRoute {
				continue
			}
			k := outlKey{src.FromPE, op.Cycle}
			if v, ok := outl[k]; ok && v != src.Val {
				return fmt.Errorf("outl conflict on PE %d cycle %d: values %d and %d",
					src.FromPE, op.Cycle, v.ID, src.Val.ID)
			}
			outl[k] = src.Val
		}
	}
	// C-Box: at most one micro-op per cycle; slots written before read.
	cbox := map[int]*CBoxOp{}
	for _, cb := range s.CBox {
		if other := cbox[cb.Cycle]; other != nil {
			return fmt.Errorf("C-Box double-booked at cycle %d: %v and %v", cb.Cycle, other, cb)
		}
		cbox[cb.Cycle] = cb
		if cb.Write == nil {
			return fmt.Errorf("C-Box op without target slot at cycle %d", cb.Cycle)
		}
		if cb.Kind == CBConsume {
			// A compare on StatusPE must finish in this cycle.
			found := false
			for _, op := range s.Ops {
				if op.PE == cb.StatusPE && op.Code.IsCompare() && op.Cycle+op.Dur-1 == cb.Cycle {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("C-Box consume at cycle %d: no compare finishing on PE %d", cb.Cycle, cb.StatusPE)
			}
		}
		for _, slot := range []*Slot{cb.A, cb.B} {
			if slot == nil {
				continue
			}
			if err := slotReadableAt(s, slot, cb.Cycle); err != nil {
				return fmt.Errorf("C-Box op at cycle %d: %v", cb.Cycle, err)
			}
		}
	}
	// Predication: one gated slot per cycle, readable when used.
	predAt := map[int]*Slot{}
	for _, op := range s.Ops {
		if op.PredSlot == nil {
			continue
		}
		if prev, ok := predAt[op.Cycle]; ok && prev != op.PredSlot {
			return fmt.Errorf("two predication slots gated at cycle %d", op.Cycle)
		}
		predAt[op.Cycle] = op.PredSlot
		if err := slotReadableAt(s, op.PredSlot, op.Cycle); err != nil {
			return fmt.Errorf("op %v: %v", op, err)
		}
	}
	// CCU: jumps target valid contexts; conditional jumps read live slots.
	for cycle, j := range s.CCU {
		if j.Cycle != cycle {
			return fmt.Errorf("CCU map key %d != op cycle %d", cycle, j.Cycle)
		}
		if j.Target < 0 || j.Target >= s.Length {
			return fmt.Errorf("CCU op %v: target outside [0,%d)", j, s.Length)
		}
		if !j.Uncond {
			if j.Slot == nil {
				return fmt.Errorf("conditional CCU op %v without slot", j)
			}
			if err := slotReadableAt(s, j.Slot, j.Cycle); err != nil {
				return fmt.Errorf("CCU op %v: %v", j, err)
			}
		}
	}
	// Coverage: every CDFG node realized exactly once.
	if s.Graph != nil {
		seen := map[*cdfg.Node]int{}
		for _, op := range s.Ops {
			if op.Node != nil {
				seen[op.Node]++
			}
		}
		for _, n := range s.Graph.AllNodes() {
			switch seen[n] {
			case 0:
				// Fused pWRITEs share their producer's op.
				if n.Kind == cdfg.KPWrite {
					continue
				}
				return fmt.Errorf("node %s never scheduled", n)
			case 1:
			default:
				return fmt.Errorf("node %s scheduled %d times", n, seen[n])
			}
		}
	}
	return nil
}

// verifySrc checks one operand fetch: the value must be written strictly
// before the reading cycle (pinned home slots and constants are exempt from
// the static order because loops re-execute their writers), and routed reads
// must follow a real interconnect edge.
func verifySrc(s *Schedule, op *Op, src Src) error {
	switch src.Kind {
	case SrcNone:
		return nil
	case SrcReg:
		if src.Val.PE != op.PE {
			return fmt.Errorf("op %v: register operand r%d lives on PE %d", op, src.Val.ID, src.Val.PE)
		}
	case SrcRoute:
		if src.Val.PE != src.FromPE {
			return fmt.Errorf("op %v: routed operand r%d not on source PE %d", op, src.Val.ID, src.FromPE)
		}
		if !s.Comp.PEs[op.PE].CanReadFrom(src.FromPE) {
			return fmt.Errorf("op %v: no interconnect edge %d→%d", op, src.FromPE, op.PE)
		}
	}
	if !src.Val.Pinned && src.Val.Def >= op.Cycle {
		return fmt.Errorf("op %v: reads value r%d before it is written (def %d)", op, src.Val.ID, src.Val.Def)
	}
	return nil
}

// slotReadableAt checks that the slot has a write strictly before the cycle,
// or is rewritten inside a loop that also contains the use (loop-carried
// condition bits are written by an earlier iteration).
func slotReadableAt(s *Schedule, slot *Slot, cycle int) error {
	for _, w := range slot.Writes {
		if w < cycle {
			return nil
		}
	}
	for _, lr := range s.LoopRanges {
		for _, w := range slot.Writes {
			if w >= lr[0] && w <= lr[1] && cycle >= lr[0] && cycle <= lr[1] {
				return nil
			}
		}
	}
	return fmt.Errorf("slot s%d read at cycle %d before any write", slot.ID, cycle)
}
