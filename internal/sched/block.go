package sched

import (
	"fmt"
	"sort"

	"cgra/internal/arch"
	"cgra/internal/cdfg"
)

// blockState carries the per-block list-scheduling context.
type blockState struct {
	start       int
	strictDeps  map[*cdfg.Node][]*cdfg.Node
	prio        map[*cdfg.Node]int
	unscheduled map[*cdfg.Node]bool
	// fusable maps a producer node to the pWRITE that may fold into it.
	fusable map[*cdfg.Node]*cdfg.Node
	maxEnd  int
	// order holds the block's nodes pre-sorted by (priority desc, ID asc).
	// Priorities are fixed once computePriorities runs, so the sort happens
	// once per block; each time step only filters this list.
	order []*cdfg.Node
	// candBuf is the reusable backing array for candidates().
	candBuf []*cdfg.Node
}

// block schedules one straight-line block with the time-stepped list
// scheduler (Algorithm 1) and returns the first cycle after it.
func (s *scheduler) block(blk *cdfg.Block, start int) (int, error) {
	if blk == nil || (len(blk.Nodes) == 0 && blk.Cond == nil) {
		return start, nil
	}
	bs := &blockState{
		start:       start,
		strictDeps:  map[*cdfg.Node][]*cdfg.Node{},
		prio:        map[*cdfg.Node]int{},
		unscheduled: map[*cdfg.Node]bool{},
		fusable:     map[*cdfg.Node]*cdfg.Node{},
		maxEnd:      start,
	}
	// Register conditions and predicates used by this block with the
	// C-Box planner, and serialize each condition's status consumption.
	conds := map[*cdfg.CondExpr]bool{}
	if blk.Cond != nil {
		conds[blk.Cond] = true
	}
	for _, n := range blk.Nodes {
		bs.unscheduled[n] = true
		for p := n.Pred; p != nil; p = p.Parent {
			conds[p.Cond] = true
		}
	}
	for c := range conds {
		s.prepareCond(c)
	}
	for _, n := range blk.Nodes {
		if n.Pred != nil {
			s.preparePred(n.Pred)
		}
	}
	// Strict dependencies: data producers, explicit prereqs, and the
	// C-Box status chains.
	for _, n := range blk.Nodes {
		deps := append([]*cdfg.Node(nil), n.Prereqs...)
		for _, a := range n.Args {
			if a.Kind == cdfg.FromNode {
				deps = append(deps, a.Node)
			}
		}
		bs.strictDeps[n] = deps
	}
	for c := range conds {
		for _, e := range condChain(c) {
			bs.strictDeps[e[1]] = append(bs.strictDeps[e[1]], e[0])
		}
	}
	s.computePriorities(blk, bs)
	bs.order = append(make([]*cdfg.Node, 0, len(blk.Nodes)), blk.Nodes...)
	sort.SliceStable(bs.order, func(i, j int) bool {
		if bs.prio[bs.order[i]] != bs.prio[bs.order[j]] {
			return bs.prio[bs.order[i]] > bs.prio[bs.order[j]]
		}
		return bs.order[i].ID < bs.order[j].ID
	})
	bs.candBuf = make([]*cdfg.Node, 0, len(blk.Nodes))
	if !s.opts.NoFusing {
		for _, n := range blk.Nodes {
			if n.Kind == cdfg.KPWrite && n.AliasOf != nil && n.Pred == nil {
				if _, taken := bs.fusable[n.AliasOf]; !taken {
					bs.fusable[n.AliasOf] = n
				}
			}
		}
	}

	t := start
	remaining := len(blk.Nodes)
	for remaining > 0 {
		// Cooperative cancellation: one check per time step bounds the
		// reaction time to a deadline by a single candidate sweep.
		if err := s.ctx.Err(); err != nil {
			return 0, fmt.Errorf("sched: scheduling cancelled at cycle %d: %w", t, err)
		}
		if t-start > s.opts.MaxCycles {
			var stuck []string
			for n := range bs.unscheduled {
				stuck = append(stuck, fmt.Sprintf("%s [%s]", n, s.stallReason(n, t, bs)))
			}
			sort.Strings(stuck)
			return 0, fmt.Errorf("block %d: exceeded %d cycles (scheduling livelock?); unscheduled: %v",
				blk.ID, s.opts.MaxCycles, stuck)
		}
		cands := s.candidates(bs)
		for _, n := range cands {
			if !bs.unscheduled[n] {
				continue // fused along with its producer this cycle
			}
			if s.readyCycle(bs, n) > t {
				continue
			}
			if !s.weakOK(n, t) {
				continue
			}
			var scheduled bool
			var err error
			if n.Kind == cdfg.KPWrite {
				scheduled, err = s.schedPWrite(n, t)
			} else {
				scheduled, err = s.schedOp(n, t, bs)
			}
			if err != nil {
				return 0, err
			}
			if scheduled {
				delete(bs.unscheduled, n)
				remaining--
				if f := s.nodeFinish[n]; f+1 > bs.maxEnd {
					bs.maxEnd = f + 1
				}
				// A fused pWRITE is scheduled together with its
				// producer.
				if pw := bs.fusable[n]; pw != nil && bs.unscheduled[pw] {
					if _, done := s.nodeIssue[pw]; done {
						delete(bs.unscheduled, pw)
						remaining--
					}
				}
			}
		}
		s.processPending()
		t++
	}
	s.processPending()
	return maxInt(bs.maxEnd, start), nil
}

// computePriorities assigns each node its longest-path weight to any sink
// (§V-F: "the longest path weight is currently used as the priority
// criterion"). Durations use the slowest implementation among supporting
// PEs, a safe critical-path estimate on inhomogeneous arrays.
func (s *scheduler) computePriorities(blk *cdfg.Block, bs *blockState) {
	succs := map[*cdfg.Node][]*cdfg.Node{}
	for n, deps := range bs.strictDeps {
		for _, d := range deps {
			succs[d] = append(succs[d], n)
		}
	}
	// blk.Nodes is topologically ordered (builders append dependencies
	// first), so one reverse sweep suffices.
	for i := len(blk.Nodes) - 1; i >= 0; i-- {
		n := blk.Nodes[i]
		w := s.repDuration(n)
		best := 0
		for _, m := range succs[n] {
			if bs.prio[m] > best {
				best = bs.prio[m]
			}
		}
		bs.prio[n] = w + best
	}
}

// repDuration is a composition-representative latency for priority purposes.
func (s *scheduler) repDuration(n *cdfg.Node) int {
	op := n.Op
	d := 1
	for _, pe := range s.comp.PEs {
		if pe.Supports(op) && pe.Duration(op) > d {
			d = pe.Duration(op)
		}
	}
	return d
}

// candidates returns unscheduled nodes whose strict dependencies are all
// scheduled, ordered by decreasing priority (ties by node ID for
// determinism). The order comes from bs.order, sorted once per block —
// filtering a sorted list preserves its order, so results are identical to
// re-sorting the filtered set at every time step, without the O(n log n)
// per-step cost. The returned slice aliases bs.candBuf and is only valid
// until the next call.
func (s *scheduler) candidates(bs *blockState) []*cdfg.Node {
	out := bs.candBuf[:0]
	for _, n := range bs.order {
		if !bs.unscheduled[n] {
			continue
		}
		ok := true
		for _, d := range bs.strictDeps[n] {
			if _, done := s.nodeIssue[d]; !done {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, n)
		}
	}
	bs.candBuf = out
	return out
}

// readyCycle is the earliest issue cycle permitted by strict dependencies.
func (s *scheduler) readyCycle(bs *blockState, n *cdfg.Node) int {
	r := bs.start
	for _, d := range bs.strictDeps[n] {
		if f, ok := s.nodeFinish[d]; ok && f+1 > r {
			r = f + 1
		}
	}
	return r
}

// weakOK checks write-after-read ordering: every weak predecessor must have
// issued no later than t.
func (s *scheduler) weakOK(n *cdfg.Node, t int) bool {
	for _, d := range n.WeakPrereqs {
		iss, ok := s.nodeIssue[d]
		if !ok || iss > t {
			return false
		}
	}
	return true
}

// consumersIssuedBy checks that every value consumer of the producer whose
// write was fused into local's home slot has issued by the given cycle; a
// later overwrite of the slot would otherwise feed them the wrong value.
// self (the overwriting node) is exempt: it reads the slot in the cycle it
// overwrites it, which the register file permits.
func (s *scheduler) consumersIssuedBy(local string, cycle int, self *cdfg.Node) bool {
	fp := s.fusedProd[local]
	if fp == nil {
		return true
	}
	for _, c := range s.consumers[fp] {
		if c == self {
			continue
		}
		iss, ok := s.nodeIssue[c]
		if !ok || iss > cycle {
			return false
		}
	}
	return true
}

// stallReason explains (for livelock diagnostics) why node n cannot issue
// at cycle t.
func (s *scheduler) stallReason(n *cdfg.Node, t int, bs *blockState) string {
	for _, d := range bs.strictDeps[n] {
		if _, done := s.nodeIssue[d]; !done {
			return fmt.Sprintf("strict dep n%d unscheduled", d.ID)
		}
	}
	if r := s.readyCycle(bs, n); r > t {
		return fmt.Sprintf("not ready before cycle %d", r)
	}
	if !s.weakOK(n, t) {
		return "weak (WAR) predecessor unscheduled"
	}
	if n.Pred != nil {
		if _, ok := s.predSlotReady(n.Pred, t); !ok {
			return fmt.Sprintf("predicate p%d slot not ready", n.Pred.ID)
		}
	}
	if n.Kind == cdfg.KPWrite {
		if home, ok := s.sch.Homes[n.Local]; ok {
			if !s.consumersIssuedBy(n.Local, t, n) {
				return fmt.Sprintf("consumers of fused producer of %q pending", n.Local)
			}
			if src, ok := s.operandAccessible(n.Args[0], home.PE, t); !ok {
				return fmt.Sprintf("operand %v inaccessible on home PE %d", n.Args[0], home.PE)
			} else {
				_ = src
			}
		}
		return "home/resources"
	}
	return "resources"
}

// reject records one scheduling rejection in the opt-in explain log. The
// node-name formatting only runs when a log is attached.
func (s *scheduler) reject(n *cdfg.Node, t int, cause RejectCause) {
	if s.opts.Explain == nil {
		return
	}
	s.opts.Explain.Add(t, n.String(), cause)
}

// schedOp tries to schedule a KOp node at cycle t; false means "try again
// later" (resources or operands unavailable; provisioning may have been
// started).
func (s *scheduler) schedOp(n *cdfg.Node, t int, bs *blockState) (bool, error) {
	op := n.Op
	role := s.cmpRole[n]
	// Predication gating for DMA operations.
	var predSlot *Slot
	if n.IsDMA() && n.Pred != nil {
		slot, ok := s.predSlotReady(n.Pred, t)
		if !ok || !s.predGateOK(t, slot) {
			s.reject(n, t, RejectPredication)
			return false, nil
		}
		predSlot = slot
	}
	pes := s.candidatePEs(n, op)
	if len(pes) == 0 {
		s.reject(n, t, RejectNoSupportingPE)
		return false, fmt.Errorf("no PE supports %v (node %s)", op, n)
	}
	// Pass 1: a PE where all operands are accessible right now.
	sawFree := false
	cboxBlocked, loopBlocked := false, false
	for _, p := range pes {
		dur := s.comp.PEs[p].Duration(op)
		if !s.peFree(p, t, dur) {
			continue
		}
		sawFree = true
		// The status bit of a compare reaches the C-Box in the op's
		// final cycle; the C-Box must be free then and the stored
		// partial condition must already be available (§IV-A2).
		if n.IsCompare() && role != nil {
			finish := t + dur - 1
			if s.cboxBusy[finish] || !s.cmpStoredReady(role, finish) {
				cboxBlocked = true
				continue
			}
		}
		srcs, ok := s.argsAccessible(n, p, t)
		if !ok {
			if s.constBlockedBySafeFloor(n, p, t) {
				loopBlocked = true
			}
			continue
		}
		s.emitNode(n, p, t, dur, srcs, predSlot, bs)
		return true, nil
	}
	switch {
	case !sawFree:
		s.reject(n, t, RejectPEBusy)
	case cboxBlocked:
		s.reject(n, t, RejectCBoxSaturation)
	case loopBlocked:
		s.reject(n, t, RejectLoopIncompatibility)
	default:
		s.reject(n, t, RejectRouting)
	}
	// Pass 2: provision operands toward the most attractive compatible PE
	// and delay the node (§V-F plan-candidate: values are copied, before
	// the current time step when resources allow). Only provision when a
	// compatible PE was actually free — otherwise the stall is transient.
	if sawFree {
		target := pes[0]
		// With two or more operands, distance-1 sources can conflict
		// on the source PE's single routing output indefinitely (both
		// values living on the same neighbour); force the copies onto
		// the target PE itself in that case.
		force := len(n.Args) >= 2
		for _, a := range n.Args {
			s.provisionOperand(a, target, force)
		}
	}
	return false, nil
}

// constBlockedBySafeFloor reports whether an operand of n is a constant
// that could not be materialized on p solely because no free cycle exists
// between the current region's safe floor and t — the signature of a loop
// or branch boundary blocking placement (explain-log classification only).
func (s *scheduler) constBlockedBySafeFloor(n *cdfg.Node, p, t int) bool {
	if s.opts.Explain == nil {
		return false
	}
	for _, a := range n.Args {
		if a.Kind != cdfg.FromConst || !s.comp.PEs[p].Supports(arch.CONST) {
			continue
		}
		reachable := false
		for _, v := range s.sourcesOf(a) {
			if v.Def < t && s.rt.Dist(v.PE, p) <= 1 {
				reachable = true
				break
			}
		}
		if !reachable && s.earliestFree(p, s.safeFloor, 1) >= t {
			return true
		}
	}
	return false
}

// emitNode finalizes the placement of a KOp node.
func (s *scheduler) emitNode(n *cdfg.Node, p, t, dur int, srcs []Src, predSlot *Slot, bs *blockState) {
	finish := t + dur - 1
	op := &Op{
		PE:    p,
		Cycle: t,
		Dur:   dur,
		Code:  n.Op,
		Node:  n,
		Array: n.Array,
		Imm:   n.Const,
	}
	if len(srcs) > 0 {
		op.A = srcs[0]
	}
	if len(srcs) > 1 {
		op.B = srcs[1]
	}
	s.commitSrcs(srcs, t)
	if predSlot != nil {
		op.PredSlot = predSlot
		s.gatePred(t, predSlot)
	}
	// Destination value.
	if n.ProducesValue() {
		if pw := bs.fusable[n]; pw != nil && s.tryFuse(pw, n, p, finish, t) {
			home := s.homeValue(pw.Local, p)
			op.Dest = home
			s.nodeVal[n] = home
			s.nodeIssue[pw] = t
			s.nodeFinish[pw] = finish
			s.nodeVal[pw] = home
			delete(s.copies, pw.Local)
			s.fusedProd[pw.Local] = n
			s.sch.Stats.FusedPWrites++
			if pw.Pred != nil {
				panic("fused a predicated pWRITE") // guarded by construction
			}
		} else {
			v := s.newValue(p, finish)
			op.Dest = v
			s.nodeVal[n] = v
		}
	}
	s.markBusy(p, t, dur)
	s.nodeIssue[n] = t
	s.nodeFinish[n] = finish
	s.sch.Ops = append(s.sch.Ops, op)
	s.sch.Stats.Nodes++
	if finish+1 > bs.maxEnd {
		bs.maxEnd = finish + 1
	}
	if n.IsCompare() {
		// The status bit reaches the C-Box in the op's final cycle.
		if err := s.emitCompare(n, p, finish); err != nil {
			panic(err) // cbox availability was checked above
		}
	}
	s.bumpAttraction(n, p)
}

// tryFuse decides whether pWRITE pw may fold into producer n placed on PE p
// finishing at cycle `finish` (§V-E): the variable's home must be p (or
// still unassigned), all of pw's ordering predecessors must be satisfied at
// the commit cycle, and no consumer-of-overwritten-value hazard may exist.
func (s *scheduler) tryFuse(pw, n *cdfg.Node, p, finish, t int) bool {
	if s.opts.NoFusing || pw.Pred != nil {
		return false
	}
	if home, ok := s.sch.Homes[pw.Local]; ok && home.PE != p {
		return false
	}
	for _, d := range pw.Prereqs {
		if d == n {
			continue
		}
		f, ok := s.nodeFinish[d]
		if !ok || f+1 > finish {
			return false
		}
	}
	for _, d := range pw.WeakPrereqs {
		iss, ok := s.nodeIssue[d]
		if !ok || iss > finish {
			return false
		}
	}
	if !s.consumersIssuedBy(pw.Local, finish, pw) {
		return false
	}
	return true
}

// schedPWrite schedules an unfused pWRITE as a MOVE/CONST on the variable's
// home PE, predicated when control flow requires it.
func (s *scheduler) schedPWrite(n *cdfg.Node, t int) (bool, error) {
	arg := n.Args[0]
	// Home assignment: prefer the PE that can provide the value (§V-D).
	home, ok := s.sch.Homes[n.Local]
	if !ok {
		pe := s.pickHomePE(arg)
		home = s.homeValue(n.Local, pe)
	}
	p := home.PE
	code := arch.MOVE
	if arg.Kind == cdfg.FromConst {
		code = arch.CONST
	}
	if !s.comp.PEs[p].Supports(code) {
		return false, fmt.Errorf("home PE %d of %q lacks %v", p, n.Local, code)
	}
	dur := s.comp.PEs[p].Duration(code)
	if !s.peFree(p, t, dur) {
		s.reject(n, t, RejectPEBusy)
		return false, nil
	}
	if !s.consumersIssuedBy(n.Local, t, n) {
		s.reject(n, t, RejectWARHazard)
		return false, nil
	}
	var predSlot *Slot
	if n.Pred != nil {
		slot, ready := s.predSlotReady(n.Pred, t)
		if !ready || !s.predGateOK(t, slot) {
			s.reject(n, t, RejectPredication)
			return false, nil
		}
		predSlot = slot
	}
	var srcs []Src
	if code == arch.MOVE {
		src, ok := s.operandAccessible(arg, p, t)
		if !ok {
			s.reject(n, t, RejectRouting)
			s.provisionOperand(arg, p, false)
			return false, nil
		}
		srcs = []Src{src}
	}
	finish := t + dur - 1
	op := &Op{
		PE: p, Cycle: t, Dur: dur, Code: code, Node: n,
		Dest: home, PredSlot: predSlot, Imm: arg.Const,
	}
	if len(srcs) > 0 {
		op.A = srcs[0]
		s.commitSrcs(srcs, t)
	}
	if predSlot != nil {
		s.gatePred(t, predSlot)
	}
	s.markBusy(p, t, dur)
	s.nodeIssue[n] = t
	s.nodeFinish[n] = finish
	s.nodeVal[n] = home
	delete(s.copies, n.Local)
	s.fusedProd[n.Local] = nil
	s.sch.Ops = append(s.sch.Ops, op)
	s.sch.Stats.Nodes++
	s.sch.Stats.UnfusedPWrites++
	s.bumpAttraction(n, p)
	return true, nil
}

// pickHomePE chooses a home PE for a local whose first access is a write.
func (s *scheduler) pickHomePE(arg cdfg.Operand) int {
	switch arg.Kind {
	case cdfg.FromNode:
		if v, ok := s.nodeVal[arg.Node]; ok {
			return v.PE
		}
	case cdfg.FromLocal:
		if h, ok := s.sch.Homes[arg.Local]; ok {
			return h.PE
		}
	}
	// Fall back to the best-connected PE.
	best, bestDeg := 0, -1
	for i := range s.comp.PEs {
		if d := s.comp.Degree(i); d > bestDeg {
			best, bestDeg = i, d
		}
	}
	return best
}

// commitSrcs records register/route reads for lifetime analysis and reserves
// routing outputs.
func (s *scheduler) commitSrcs(srcs []Src, t int) {
	for _, src := range srcs {
		switch src.Kind {
		case SrcReg:
			src.Val.Uses = append(src.Val.Uses, t)
		case SrcRoute:
			src.Val.Uses = append(src.Val.Uses, t)
			s.reserveOutl(src.FromPE, t, src.Val)
		}
	}
}

// bumpAttraction raises the attraction of n's value consumers toward every
// PE that can access p's register file (§V-G).
func (s *scheduler) bumpAttraction(n *cdfg.Node, p int) {
	if s.opts.NoAttraction {
		return
	}
	targets := append([]int{p}, s.comp.FanOut(p)...)
	for _, succ := range s.consumers[n] {
		m := s.attraction[succ]
		if m == nil {
			m = map[int]float64{}
			s.attraction[succ] = m
		}
		for _, q := range targets {
			m[q]++
		}
	}
}

// candidatePEs orders the PEs able to execute op by decreasing attraction,
// breaking ties toward better-connected PEs (§V-G).
func (s *scheduler) candidatePEs(n *cdfg.Node, op arch.OpCode) []int {
	pes := s.comp.SupportingPEs(op)
	if s.opts.NoAttraction {
		return pes
	}
	score := func(q int) float64 {
		sc := s.attraction[n][q]
		for _, a := range n.Args {
			for _, v := range s.sourcesOf(a) {
				switch s.rt.Dist(v.PE, q) {
				case 0:
					sc += 2
				case 1:
					sc++
				}
			}
		}
		return sc
	}
	sort.SliceStable(pes, func(i, j int) bool {
		si, sj := score(pes[i]), score(pes[j])
		if si != sj {
			return si > sj
		}
		di, dj := s.comp.Degree(pes[i]), s.comp.Degree(pes[j])
		if di != dj {
			return di > dj
		}
		return pes[i] < pes[j]
	})
	return pes
}

// sourcesOf lists the RF-resident instances of an operand's value.
func (s *scheduler) sourcesOf(a cdfg.Operand) []*Value {
	var out []*Value
	switch a.Kind {
	case cdfg.FromConst:
		for _, v := range s.constCp[a.Const] {
			out = append(out, v)
		}
	case cdfg.FromLocal:
		if h, ok := s.sch.Homes[a.Local]; ok {
			out = append(out, h)
		}
		for _, v := range s.copies[a.Local] {
			out = append(out, v)
		}
	case cdfg.FromNode:
		if v, ok := s.nodeVal[a.Node]; ok {
			out = append(out, v)
		}
		for _, v := range s.nodeCp[a.Node] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// argsAccessible resolves all operands of n for execution on p at t.
func (s *scheduler) argsAccessible(n *cdfg.Node, p, t int) ([]Src, bool) {
	srcs := make([]Src, 0, len(n.Args))
	for _, a := range n.Args {
		src, ok := s.operandAccessible(a, p, t)
		if !ok {
			return nil, false
		}
		srcs = append(srcs, src)
	}
	// Two routed operands from the same neighbour carrying different
	// values would need two outl values in one cycle: reject.
	for i := 0; i < len(srcs); i++ {
		for j := i + 1; j < len(srcs); j++ {
			if srcs[i].Kind == SrcRoute && srcs[j].Kind == SrcRoute &&
				srcs[i].FromPE == srcs[j].FromPE && srcs[i].Val != srcs[j].Val {
				return nil, false
			}
		}
	}
	return srcs, true
}

// operandAccessible finds a way to read operand a on PE p at cycle t without
// inserting new operations (except immediate constant materialization into a
// free earlier cycle of p itself).
func (s *scheduler) operandAccessible(a cdfg.Operand, p, t int) (Src, bool) {
	// Live-in locals are homed at their first requiring PE (§V-D).
	if a.Kind == cdfg.FromLocal {
		if _, ok := s.sch.Homes[a.Local]; !ok {
			h := s.homeValue(a.Local, p)
			return Src{Kind: SrcReg, Val: h}, true
		}
	}
	var routed *Src
	for _, v := range s.sourcesOf(a) {
		if v.Def >= t {
			continue // not yet written
		}
		switch s.rt.Dist(v.PE, p) {
		case 0:
			return Src{Kind: SrcReg, Val: v}, true
		case 1:
			if routed == nil && s.outlAvailable(v.PE, t, v) {
				routed = &Src{Kind: SrcRoute, Val: v, FromPE: v.PE}
			}
		}
	}
	if routed != nil {
		return *routed, true
	}
	// Constants can be materialized into an earlier free cycle of p.
	if a.Kind == cdfg.FromConst && s.comp.PEs[p].Supports(arch.CONST) {
		e := s.earliestFree(p, s.safeFloor, 1)
		if e < t {
			v := s.materializeConst(a.Const, p, e)
			return Src{Kind: SrcReg, Val: v}, true
		}
	}
	return Src{}, false
}

// provisionOperand starts making operand a accessible on PE p: materialize a
// constant or copy the value along a shortest path (§V-F/G). Idempotent:
// in-flight copies registered earlier are found as sources and nothing new
// is scheduled. With force, only a distance-0 instance counts as available
// (used to break routing-output conflicts between operands).
func (s *scheduler) provisionOperand(a cdfg.Operand, p int, force bool) {
	// Already available or in flight?
	maxDist := 1
	if force {
		maxDist = 0
	}
	for _, v := range s.sourcesOf(a) {
		if s.rt.Dist(v.PE, p) <= maxDist {
			return
		}
	}
	if a.Kind == cdfg.FromConst {
		if s.comp.PEs[p].Supports(arch.CONST) {
			e := s.earliestFree(p, s.safeFloor, 1)
			s.materializeConst(a.Const, p, e)
		}
		return
	}
	if a.Kind == cdfg.FromLocal {
		if _, ok := s.sch.Homes[a.Local]; !ok {
			s.homeValue(a.Local, p)
			return
		}
	}
	sources := s.sourcesOf(a)
	if len(sources) == 0 {
		return // producer not scheduled yet; dependency handling retries
	}
	best := sources[0]
	for _, v := range sources {
		if s.rt.Dist(v.PE, p) < s.rt.Dist(best.PE, p) {
			best = v
		}
	}
	path, err := s.rt.Path(best.PE, p)
	if err != nil {
		return
	}
	prev := best
	ready := best.Def + 1
	// A copy serving a versioned local read must not start before the
	// pending writers have committed: home slots are pinned (Def -1), so
	// without this a copy could capture the stale pre-write value.
	if a.Kind == cdfg.FromLocal {
		for _, w := range a.Version {
			f, ok := s.nodeFinish[w]
			if !ok {
				return // writer not scheduled yet; retry later
			}
			if f+1 > ready {
				ready = f + 1
			}
		}
	}
	for _, hop := range path[1:] {
		if !s.comp.PEs[hop].Supports(arch.MOVE) {
			return // cannot route through this PE; give up this path
		}
		e := maxInt(ready, s.safeFloor)
		for {
			e = s.earliestFree(hop, e, 1)
			if s.outlAvailable(prev.PE, e, prev) {
				break
			}
			e++
		}
		dst := s.newValue(hop, e)
		s.registerCopy(a, hop, dst)
		op := &Op{
			PE: hop, Cycle: e, Dur: 1, Code: arch.MOVE,
			A:    Src{Kind: SrcRoute, Val: prev, FromPE: prev.PE},
			Dest: dst,
		}
		prev.Uses = append(prev.Uses, e)
		s.reserveOutl(prev.PE, e, prev)
		s.markBusy(hop, e, 1)
		s.sch.Ops = append(s.sch.Ops, op)
		s.sch.Stats.CopiesInserted++
		prev = dst
		ready = e + 1
	}
}

// materializeConst emits CONST #val on PE p at cycle e and registers the
// copy for reuse.
func (s *scheduler) materializeConst(val int32, p, e int) *Value {
	v := s.newValue(p, e)
	v.IsConst = true
	v.ConstVal = val
	v.Pinned = true
	if s.constCp[val] == nil {
		s.constCp[val] = map[int]*Value{}
	}
	s.constCp[val][p] = v
	s.markBusy(p, e, 1)
	s.sch.Ops = append(s.sch.Ops, &Op{PE: p, Cycle: e, Dur: 1, Code: arch.CONST, Imm: val, Dest: v})
	s.sch.Stats.ConstsMaterialized++
	return v
}

// registerCopy records a routing copy for reuse by later consumers.
func (s *scheduler) registerCopy(a cdfg.Operand, pe int, v *Value) {
	switch a.Kind {
	case cdfg.FromConst:
		v.IsConst = true
		v.ConstVal = a.Const
		v.Pinned = true
		if s.constCp[a.Const] == nil {
			s.constCp[a.Const] = map[int]*Value{}
		}
		if _, exists := s.constCp[a.Const][pe]; !exists {
			s.constCp[a.Const][pe] = v
		}
	case cdfg.FromLocal:
		v.Local = a.Local
		if s.copies[a.Local] == nil {
			s.copies[a.Local] = map[int]*Value{}
		}
		if _, exists := s.copies[a.Local][pe]; !exists {
			s.copies[a.Local][pe] = v
		}
	case cdfg.FromNode:
		if s.nodeCp[a.Node] == nil {
			s.nodeCp[a.Node] = map[int]*Value{}
		}
		if _, exists := s.nodeCp[a.Node][pe]; !exists {
			s.nodeCp[a.Node][pe] = v
		}
	}
}
