package sched

import (
	"fmt"

	"cgra/internal/cdfg"
)

// This file schedules the C-Box: condition expressions are evaluated one
// incoming status bit per cycle (§IV-A2), accumulating partial results in
// condition-memory slots; predicate slots conjoin a parent predicate with a
// (possibly negated) condition (§V-H). Sub-tree joins and parent conjunction
// are stored-stored combinations floated into free C-Box cycles.

// prepareCond registers the evaluation plan for a condition expression:
// each compare leaf gets a cmpRole describing the C-Box consume operation
// issued in its cycle; non-leaf right children become floated recombines.
// Shared sub-expressions (pointer-identical) are prepared once.
func (s *scheduler) prepareCond(c *cdfg.CondExpr) {
	if c == nil || s.condSeen[c] {
		return
	}
	s.condSeen[c] = true
	switch c.Op {
	case cdfg.CondLeaf:
		s.condOut[c] = s.newSlot()
		s.cmpRole[c.Cmp] = &cmpRole{Expr: c, Stored: nil, Logic: CBPass}
	case cdfg.CondAnd, cdfg.CondOr:
		logic := CBAnd
		if c.Op == cdfg.CondOr {
			logic = CBOr
		}
		s.prepareCond(c.X)
		if c.Y.Op == cdfg.CondLeaf && !s.condSeen[c.Y] {
			// Fold the right leaf's consume into the combine: the
			// stored partial result meets the incoming status.
			s.condSeen[c.Y] = true
			s.condOut[c] = s.newSlot()
			s.condOut[c.Y] = s.condOut[c] // alias: leaf value only observable combined
			s.cmpRole[c.Y.Cmp] = &cmpRole{Expr: c, Stored: c.X, Logic: logic}
		} else {
			// General tree: evaluate both sides, then join the two
			// stored conditions.
			s.prepareCond(c.Y)
			s.condOut[c] = s.newSlot()
			s.pending = append(s.pending, &pendingComb{x: c.X, y: c.Y, logic: logic, out: c})
		}
	}
}

// chainEdges returns strict ordering constraints between the compare leaves
// of a condition: the C-Box consumes one status per cycle, in evaluation
// order.
func condChain(c *cdfg.CondExpr) [][2]*cdfg.Node {
	leaves := c.Leaves(nil)
	var edges [][2]*cdfg.Node
	for i := 1; i < len(leaves); i++ {
		edges = append(edges, [2]*cdfg.Node{leaves[i-1], leaves[i]})
	}
	return edges
}

// preparePred ensures the predicate's slot computation is registered. The
// slot is parent AND (cond ^ negate); predicates whose parent is nil and
// that are not negated alias the condition's own slot (no extra C-Box op).
func (s *scheduler) preparePred(p *cdfg.Pred) {
	if p == nil || s.predSeen[p] {
		return
	}
	s.predSeen[p] = true
	s.preparePred(p.Parent)
	s.prepareCond(p.Cond)
	if p.Parent == nil && !p.Negate {
		s.predSlots[p] = s.condOut[p.Cond]
		return
	}
	s.predSlots[p] = s.newSlot()
	s.pending = append(s.pending, &pendingComb{pred: p})
}

// cmpStoredReady reports whether the stored operand needed by a compare's
// C-Box consume is available at cycle t (and exists at all).
func (s *scheduler) cmpStoredReady(role *cmpRole, t int) bool {
	if role.Stored == nil {
		return true
	}
	ready, ok := s.condReady[role.Stored]
	return ok && ready <= t
}

// emitCompare issues the C-Box consume for a compare node scheduled on pe at
// cycle t.
func (s *scheduler) emitCompare(n *cdfg.Node, pe, t int) error {
	role := s.cmpRole[n]
	if role == nil {
		// A compare whose status nobody consumes (dead condition);
		// nothing to do.
		return nil
	}
	if s.cboxBusy[t] {
		return fmt.Errorf("cbox busy at %d", t)
	}
	out := s.condOut[role.Expr]
	op := &CBoxOp{
		Cycle:    t,
		Kind:     CBConsume,
		StatusPE: pe,
		Logic:    role.Logic,
		Write:    out,
	}
	if role.Stored != nil {
		a := s.condOut[role.Stored]
		op.A = a
		a.Uses = append(a.Uses, t)
	}
	out.Writes = append(out.Writes, t)
	s.cboxBusy[t] = true
	s.sch.CBox = append(s.sch.CBox, op)
	s.sch.Stats.CBoxOps++
	s.condReady[role.Expr] = t + 1
	s.processPending()
	return nil
}

// processPending places floated stored-stored combinations (condition tree
// joins and predicate conjunctions) as soon as their inputs are ready, in
// the earliest free C-Box cycle at or after the safe floor.
func (s *scheduler) processPending() {
	for progress := true; progress; {
		progress = false
		kept := s.pending[:0]
		for _, pc := range s.pending {
			if s.placeComb(pc) {
				progress = true
			} else {
				kept = append(kept, pc)
			}
		}
		s.pending = kept
	}
}

// predReadyCycle resolves a predicate's slot readiness, following the alias
// of non-negated root predicates to their condition slot.
func (s *scheduler) predReadyCycle(p *cdfg.Pred) (int, bool) {
	if r, ok := s.predReady[p]; ok {
		return r, true
	}
	if p.Parent == nil && !p.Negate {
		r, ok := s.condReady[p.Cond]
		return r, ok
	}
	return 0, false
}

// placeComb tries to place one pending combination; returns true on success.
func (s *scheduler) placeComb(pc *pendingComb) bool {
	if pc.pred != nil {
		p := pc.pred
		condReady, ok := s.condReady[p.Cond]
		if !ok {
			return false
		}
		earliest := condReady
		var parentSlot *Slot
		if p.Parent != nil {
			pr, ok := s.predReadyCycle(p.Parent)
			if !ok {
				return false
			}
			parentSlot = s.predSlots[p.Parent]
			earliest = maxInt(earliest, pr)
		}
		t := s.freeCBoxCycle(maxInt(earliest, s.safeFloor))
		out := s.predSlots[p]
		condSlot := s.condOut[p.Cond]
		var op *CBoxOp
		if parentSlot == nil {
			// parent nil, negate true: out = !cond
			op = &CBoxOp{Cycle: t, Kind: CBRecombine, Logic: CBPass, A: condSlot, InvA: p.Negate, Write: out}
			condSlot.Uses = append(condSlot.Uses, t)
		} else {
			op = &CBoxOp{Cycle: t, Kind: CBRecombine, Logic: CBAnd, A: parentSlot, B: condSlot, InvB: p.Negate, Write: out}
			parentSlot.Uses = append(parentSlot.Uses, t)
			condSlot.Uses = append(condSlot.Uses, t)
		}
		out.Writes = append(out.Writes, t)
		s.cboxBusy[t] = true
		s.sch.CBox = append(s.sch.CBox, op)
		s.sch.Stats.CBoxOps++
		s.predReady[p] = t + 1
		return true
	}
	rx, okx := s.condReady[pc.x]
	ry, oky := s.condReady[pc.y]
	if !okx || !oky {
		return false
	}
	t := s.freeCBoxCycle(maxInt(maxInt(rx, ry), s.safeFloor))
	a, b, out := s.condOut[pc.x], s.condOut[pc.y], s.condOut[pc.out]
	op := &CBoxOp{Cycle: t, Kind: CBRecombine, Logic: pc.logic, A: a, B: b, Write: out}
	a.Uses = append(a.Uses, t)
	b.Uses = append(b.Uses, t)
	out.Writes = append(out.Writes, t)
	s.cboxBusy[t] = true
	s.sch.CBox = append(s.sch.CBox, op)
	s.sch.Stats.CBoxOps++
	s.condReady[pc.out] = t + 1
	return true
}

func (s *scheduler) freeCBoxCycle(from int) int {
	c := from
	for s.cboxBusy[c] {
		c++
	}
	return c
}

// predSlotReady returns the predicate's slot if it is usable at cycle t.
func (s *scheduler) predSlotReady(p *cdfg.Pred, t int) (*Slot, bool) {
	s.preparePred(p)
	s.processPending()
	ready, ok := s.predReadyCycle(p)
	if !ok || ready > t {
		return nil, false
	}
	return s.predSlots[p], true
}

// predGateOK reports whether a predicated commit can be gated at cycle t:
// the C-Box drives one predication signal (outPE) per cycle, so every
// predicated operation in a cycle must share the same slot.
func (s *scheduler) predGateOK(t int, slot *Slot) bool {
	cur, used := s.predRead[t]
	return !used || cur == slot
}

func (s *scheduler) gatePred(t int, slot *Slot) {
	s.predRead[t] = slot
	slot.Uses = append(slot.Uses, t)
}
