// Package sched implements the paper's scheduler (§V): a resource- and
// routing-aware list scheduler that maps a CDFG with nested loops and
// data-dependent control flow onto an inhomogeneous, irregular CGRA
// composition.
//
// Key mechanisms, following Algorithm 1 of the paper:
//
//   - time-stepped list scheduling with the longest-path weight as priority,
//   - loop handling via contiguous context ranges and conditional CCNT
//     jumps (check-loop-compatibility becomes a structural barrier),
//   - speculation + predication: both arms of dataflow conditionals execute,
//     only predicated writes (pWRITE) commit,
//   - fusing: reads are always fused into consumers; pWRITEs fuse into their
//     producer when it lands on the variable's home PE and no control
//     dependency inhibits it,
//   - an attraction criterion orders candidate PEs; ties break toward
//     better-connected PEs,
//   - data locality and routing constraints are resolved by copying values
//     along Floyd shortest paths, into earlier free time steps when possible,
//   - the C-Box is treated as a resource: one incoming status per cycle, one
//     predication read per cycle, one branch-selection read per cycle.
package sched

import (
	"fmt"

	"cgra/internal/arch"
	"cgra/internal/cdfg"
	"cgra/internal/obs"
)

// SrcKind distinguishes operand fetch paths inside a PE.
type SrcKind int

// Operand sources.
const (
	// SrcNone marks an unused operand port.
	SrcNone SrcKind = iota
	// SrcReg reads the PE's own register file.
	SrcReg
	// SrcRoute reads a neighbouring PE's routing output (outl), which in
	// turn reads that PE's register file.
	SrcRoute
)

// Src describes where one operand of a scheduled operation comes from.
type Src struct {
	Kind SrcKind
	// Val is the value being read (its Addr names the RF entry after
	// allocation). For SrcRoute the value lives on FromPE's RF.
	Val *Value
	// FromPE is the neighbour whose outl is read (SrcRoute only).
	FromPE int
}

func (s Src) String() string {
	switch s.Kind {
	case SrcNone:
		return "-"
	case SrcReg:
		return fmt.Sprintf("r%d", s.Val.ID)
	case SrcRoute:
		return fmt.Sprintf("pe%d:r%d", s.FromPE, s.Val.ID)
	}
	return "?"
}

// Value is one register-file resident value: a node result, a local
// variable's home slot, a copy, or a materialized constant. The allocator
// assigns each value a physical RF address on its PE.
type Value struct {
	ID int
	PE int
	// Def is the cycle at the end of which the value is written; it is
	// readable from Def+1 on. Live-in home slots use Def = -1.
	Def int
	// Uses are the cycles at which the value is read.
	Uses []int
	// Local names the variable for home slots and local copies.
	Local string
	// IsHome marks the authoritative home slot of Local.
	IsHome bool
	// IsConst marks materialized constants (free to replicate, §V-D).
	IsConst  bool
	ConstVal int32
	// Pinned values live for the whole run (home slots, constants).
	Pinned bool
	// Addr is the physical RF entry, set by the allocator (-1 before).
	Addr int
}

// Op is one scheduled PE operation (one context entry of one PE).
type Op struct {
	PE    int
	Cycle int
	// Dur is the latency; the PE is busy for cycles [Cycle, Cycle+Dur-1]
	// and Dest is readable from Cycle+Dur on.
	Dur  int
	Code arch.OpCode
	A, B Src
	// Dest is the value written to the PE's RF (nil for STORE, compares
	// and pure NOPs).
	Dest *Value
	// PredSlot, when non-nil, gates the commit (RF write or DMA access)
	// with the C-Box predication output (outPE).
	PredSlot *Slot
	// InvertPred inverts the predication signal.
	InvertPred bool
	// Imm is the CONST immediate.
	Imm int32
	// Array is the DMA array index.
	Array int
	// Node is the CDFG node this op realizes (nil for copies and constant
	// materializations inserted by the scheduler).
	Node *cdfg.Node
}

func (o *Op) String() string {
	s := fmt.Sprintf("c%-4d pe%-2d %-6v", o.Cycle, o.PE, o.Code)
	if o.Code == arch.CONST {
		s += fmt.Sprintf(" #%d", o.Imm)
	}
	if o.A.Kind != SrcNone {
		s += " " + o.A.String()
	}
	if o.B.Kind != SrcNone {
		s += " " + o.B.String()
	}
	if o.Dest != nil {
		s += fmt.Sprintf(" -> r%d", o.Dest.ID)
		if o.Dest.Local != "" {
			s += "(" + o.Dest.Local + ")"
		}
	}
	if o.PredSlot != nil {
		s += fmt.Sprintf(" @s%d", o.PredSlot.ID)
		if o.InvertPred {
			s += "!"
		}
	}
	return s
}

// Slot is a virtual C-Box condition-memory slot. The allocator maps virtual
// slots to the physical condition memory with the left-edge algorithm.
type Slot struct {
	ID int
	// Writes and Uses record the cycles of accesses, for allocation.
	Writes []int
	Uses   []int
	// Phys is the physical slot index, set by the allocator (-1 before).
	Phys int
}

// CBoxOpKind distinguishes C-Box micro-operations.
type CBoxOpKind int

// C-Box micro-operation kinds.
const (
	// CBConsume takes the status bit arriving from a compare operation
	// this cycle and combines it with at most one stored condition
	// (§IV-A2: one incoming status per cycle).
	CBConsume CBoxOpKind = iota
	// CBRecombine combines two stored conditions (used to join condition
	// sub-trees and to conjoin nested predicates, Fig. 4's second read
	// ports).
	CBRecombine
)

// CBLogic selects the combination function.
type CBLogic int

// C-Box logic functions.
const (
	CBPass CBLogic = iota // result = first operand (status or stored A)
	CBAnd
	CBOr
)

// CBoxOp is one C-Box context entry.
type CBoxOp struct {
	Cycle int
	Kind  CBoxOpKind
	// StatusPE is the PE whose status bit is consumed (CBConsume).
	StatusPE int
	Logic    CBLogic
	// A is the stored operand (nil for a pure pass of the status).
	A    *Slot
	InvA bool
	// B is the second stored operand (CBRecombine with CBAnd/CBOr; for
	// CBPass recombines, A alone is used).
	B    *Slot
	InvB bool
	// Write is the slot receiving the result (readable next cycle).
	Write *Slot
}

func (c *CBoxOp) String() string {
	s := fmt.Sprintf("c%-4d cbox ", c.Cycle)
	if c.Kind == CBConsume {
		s += fmt.Sprintf("status(pe%d)", c.StatusPE)
	} else {
		s += fmt.Sprintf("s%d", c.A.ID)
		if c.InvA {
			s += "!"
		}
	}
	switch c.Logic {
	case CBAnd:
		s += " & "
	case CBOr:
		s += " | "
	case CBPass:
		s += " pass "
	}
	if c.Kind == CBConsume && c.A != nil {
		s += fmt.Sprintf("s%d", c.A.ID)
		if c.InvA {
			s += "!"
		}
	}
	if c.Kind == CBRecombine && c.B != nil {
		s += fmt.Sprintf("s%d", c.B.ID)
		if c.InvB {
			s += "!"
		}
	}
	s += fmt.Sprintf(" -> s%d", c.Write.ID)
	return s
}

// CCUOp is a context-counter manipulation: an (un)conditional jump attached
// to one cycle. In cycles without a CCUOp the CCNT increments.
type CCUOp struct {
	Cycle  int
	Uncond bool
	Target int
	// Slot drives the branch selection (outctrl) for conditional jumps;
	// the jump is taken when the slot value XOR Invert is true.
	Slot   *Slot
	Invert bool
}

func (c *CCUOp) String() string {
	if c.Uncond {
		return fmt.Sprintf("c%-4d ccu jump %d", c.Cycle, c.Target)
	}
	inv := ""
	if c.Invert {
		inv = "!"
	}
	return fmt.Sprintf("c%-4d ccu if %ss%d jump %d", c.Cycle, inv, c.Slot.ID, c.Target)
}

// Schedule is the complete mapping of one kernel onto one composition.
type Schedule struct {
	Comp  *arch.Composition
	Graph *cdfg.Graph
	// Length is the number of contexts used, including the final halt
	// context (the paper's "used contexts", Table I).
	Length int
	// Ops holds every scheduled PE operation, ordered by (Cycle, PE).
	Ops []*Op
	// CBox holds the C-Box program, ordered by cycle (≤ 1 per cycle).
	CBox []*CBoxOp
	// CCU maps cycles to jumps (≤ 1 per cycle).
	CCU map[int]*CCUOp
	// Values lists every RF-resident value.
	Values []*Value
	// Slots lists every virtual C-Box slot.
	Slots []*Slot
	// Homes maps each local to its home slot value.
	Homes map[string]*Value
	// LoopRanges records each loop's [headerStart, backJumpCycle] context
	// range, innermost first, for lifetime extension.
	LoopRanges [][2]int
	// CondRanges records each conditionally executed context range
	// (branched-if arms): values defined inside must not be assumed live
	// afterwards. Recorded for allocation sanity checks.
	CondRanges [][2]int
	// Pipelined records every loop the modulo backend software-pipelined,
	// with its II search diagnostics (empty under the list backend).
	Pipelined []PipelinedLoop
	// Stats carries scheduling statistics.
	Stats Stats
}

// PipelinedLoop records one software-pipelined loop and the modulo
// scheduler's search diagnostics for it.
type PipelinedLoop struct {
	// II is the achieved initiation interval; MII = max(ResMII, RecMII)
	// is the lower bound, so II-MII is the achieved-vs-bound gap.
	II, MII, ResMII, RecMII int
	// Stages is the software-pipeline depth (overlapped iterations).
	Stages int
	// Ops counts the body operations placed (copies excluded); Copies the
	// routing copies the modulo solver inserted.
	Ops, Copies int
	// Backtracks totals ejections across all II attempts; Attempts the
	// number of II values tried.
	Backtracks, Attempts int
	// Start and End delimit the loop's context range [Start, End).
	Start, End int
}

// Stats summarizes a scheduling run.
type Stats struct {
	// CopiesInserted counts MOVE operations inserted for routing.
	CopiesInserted int
	// ConstsMaterialized counts CONST operations inserted.
	ConstsMaterialized int
	// FusedPWrites counts pWRITEs folded into their producers.
	FusedPWrites int
	// UnfusedPWrites counts pWRITEs executed as separate moves.
	UnfusedPWrites int
	// CBoxOps counts C-Box micro operations.
	CBoxOps int
	// Nodes counts CDFG nodes scheduled.
	Nodes int
	// PipelinedLoops counts loops the modulo backend software-pipelined.
	PipelinedLoops int
	// ModuloBacktracks totals modulo-scheduler ejections over all loops.
	ModuloBacktracks int
}

// OpsAt returns the operations issued at the given cycle.
func (s *Schedule) OpsAt(cycle int) []*Op {
	var out []*Op
	for _, op := range s.Ops {
		if op.Cycle == cycle {
			out = append(out, op)
		}
	}
	return out
}

// MaxRFUsage returns, per PE, the peak number of simultaneously live RF
// entries after allocation (the paper's "Max. RF entries" is the maximum
// over PEs). It is valid only after allocation assigned addresses.
func (s *Schedule) MaxRFUsage() []int {
	peak := make([]int, s.Comp.NumPEs())
	for _, v := range s.Values {
		if v.Addr >= peak[v.PE] {
			peak[v.PE] = v.Addr + 1
		}
	}
	return peak
}

// Options tunes the scheduler; the zero value is the paper's configuration.
type Options struct {
	// Backend selects the scheduling strategy by name ("" = "list"). See
	// Backends() for the valid values; RunCtx rejects unknown names.
	Backend string
	// NoAttraction disables the attraction criterion (ablation A1):
	// candidate PEs are tried in index order.
	NoAttraction bool
	// NoFusing disables pWRITE fusing (ablation A2); reads stay fused
	// (the machine has no other way to access operands).
	NoFusing bool
	// MaxCycles aborts pathological schedules (default 100000).
	MaxCycles int
	// Span, when non-nil, receives scheduling sub-phase timings (place,
	// verify) and result-size metrics as children/metrics.
	Span *obs.Span
	// Explain, when non-nil, records every candidate rejection the list
	// scheduler makes, classified by cause.
	Explain *ExplainLog
}
