package sched

import (
	"testing"

	"cgra/internal/arch"
)

// TestListing1TwoCycleEvaluation pins the paper's Listing 1 example
// (§IV-A2): evaluating "if (x || y)" combines two status bits, and since
// the C-Box processes one incoming status per cycle, "the evaluation takes
// two cycles" — the first stores x, the second combines the incoming y.
func TestListing1TwoCycleEvaluation(t *testing.T) {
	s := schedule(t, `
kernel listing1(in x, in y, inout r) {
	if (x != 0 || y != 0) {
		r = 1;
	} else {
		r = 2;
	}
}`, mesh4(t), Options{})
	var consumes []*CBoxOp
	for _, cb := range s.CBox {
		if cb.Kind == CBConsume {
			consumes = append(consumes, cb)
		}
	}
	if len(consumes) != 2 {
		t.Fatalf("status consumptions = %d, want 2 (one per condition term)", len(consumes))
	}
	first, second := consumes[0], consumes[1]
	if second.Cycle <= first.Cycle {
		t.Fatalf("consumptions not serialized: cycles %d, %d", first.Cycle, second.Cycle)
	}
	// First combine is a pure store (pass); the second ORs the incoming
	// status with the stored partial result (the paper's Fig. 4 walk).
	if first.Logic != CBPass || first.A != nil {
		t.Errorf("first consume should store the status: %v", first)
	}
	if second.Logic != CBOr || second.A == nil {
		t.Errorf("second consume should OR with the stored bit: %v", second)
	}
	if second.A != first.Write {
		t.Error("second consume does not read the first consume's slot")
	}
}

// TestNestedPredicateConjunction pins §V-H: "For nested branches and loops
// the stored condition bit is a conjunction of the outer and current
// condition."
func TestNestedPredicateConjunction(t *testing.T) {
	s := schedule(t, `
kernel nested(in x, in y, inout r) {
	r = 0;
	if (x > 0) {
		if (y > 0) {
			r = 1;
		}
	}
}`, mesh4(t), Options{})
	// Expect a recombine op ANDing the outer predicate slot with the
	// inner condition slot.
	found := false
	for _, cb := range s.CBox {
		if cb.Kind == CBRecombine && cb.Logic == CBAnd && cb.A != nil && cb.B != nil {
			found = true
		}
	}
	// The inner condition may instead be folded into the consume (one
	// C-Box op: outer AND incoming status) — equally valid conjunction.
	if !found {
		for _, cb := range s.CBox {
			if cb.Kind == CBConsume && cb.Logic == CBAnd && cb.A != nil {
				found = true
			}
		}
	}
	if !found {
		t.Error("no conjunction of outer and inner condition in the C-Box program")
	}
}

// TestSpeculationBothArmsExecute pins §V-B: both branches compute
// speculatively; only the predicated writes differ.
func TestSpeculationBothArmsExecute(t *testing.T) {
	s := schedule(t, `
kernel spec(in x, inout r) {
	if (x > 0) { r = x * 3; } else { r = x - 7; }
}`, mesh4(t), Options{})
	var haveMul, haveSub bool
	var mulPred, subPred bool
	for _, op := range s.Ops {
		switch op.Code {
		case arch.IMUL:
			haveMul = true
			mulPred = op.PredSlot != nil
		case arch.ISUB:
			haveSub = true
			subPred = op.PredSlot != nil
		}
	}
	if !haveMul || !haveSub {
		t.Fatal("both arms' computations must be scheduled (speculation)")
	}
	if mulPred || subPred {
		t.Error("speculated computations must not be predicated (only commits are)")
	}
	// The two commits must be predicated with different slots (then/else).
	var slots []*Slot
	for _, op := range s.Ops {
		if op.PredSlot != nil && op.Dest != nil && op.Dest.Local == "r" {
			slots = append(slots, op.PredSlot)
		}
	}
	if len(slots) != 2 || slots[0] == slots[1] {
		t.Errorf("expected two distinct predicated commits of r, got %d", len(slots))
	}
}

// TestDMAOnlyOnDMAPEs pins the architectural constraint: LOAD/STORE may
// only issue on PEs with a DMA interface (§IV-A1).
func TestDMAOnlyOnDMAPEs(t *testing.T) {
	s := schedule(t, `
kernel dma(array a, array b, in n) {
	i = 0;
	while (i < n) {
		b[i] = a[i] + 1;
		i = i + 1;
	}
}`, mesh4(t), Options{})
	for _, op := range s.Ops {
		if op.Code.IsDMA() && !s.Comp.PEs[op.PE].HasDMA {
			t.Errorf("DMA op on PE %d without DMA interface", op.PE)
		}
	}
}

// TestLoopCompatibilityNoInterleave pins the check-loop-compatibility
// behaviour (§V-C): inner-loop operations never share a cycle with
// outer-loop operations — loops occupy contiguous context ranges.
func TestLoopCompatibilityNoInterleave(t *testing.T) {
	s := schedule(t, `
kernel nestedloops(in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) {
		s = s + 1;
		j = 0;
		while (j < 2) {
			s = s + 10;
			j = j + 1;
		}
		s = s + 100;
		i = i + 1;
	}
}`, mesh4(t), Options{})
	if len(s.LoopRanges) != 2 {
		t.Fatalf("loop ranges = %d", len(s.LoopRanges))
	}
	inner := s.LoopRanges[0]
	// Ops belonging to the outer loop body (by their node's Loop depth)
	// must not sit inside the inner loop's context range.
	for _, op := range s.Ops {
		if op.Node == nil || op.Node.Loop == nil {
			continue
		}
		if op.Node.Loop.Depth == 1 && op.Cycle >= inner[0] && op.Cycle <= inner[1] {
			t.Errorf("outer-loop node n%d scheduled inside inner loop range %v (cycle %d)",
				op.Node.ID, inner, op.Cycle)
		}
	}
}

// TestUtilizationReport sanity-checks the schedule report.
func TestUtilizationReport(t *testing.T) {
	s := schedule(t, `
kernel u(array a, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) { s = s + a[i]; i = i + 1; }
}`, mesh4(t), Options{})
	u := s.Utilization()
	if len(u.PEBusy) != 4 {
		t.Fatalf("PEBusy entries = %d", len(u.PEBusy))
	}
	total := 0.0
	for _, v := range u.PEBusy {
		if v < 0 || v > 1 {
			t.Errorf("PE busy fraction %f out of range", v)
		}
		total += v
	}
	if total == 0 {
		t.Error("no PE activity")
	}
	if u.CBoxBusy <= 0 || u.CBoxBusy > 1 {
		t.Errorf("CBox busy %f out of range", u.CBoxBusy)
	}
	if u.JumpCycles < 3 {
		t.Errorf("jump cycles = %d, want >= 3 (exit, back, halt)", u.JumpCycles)
	}
}
