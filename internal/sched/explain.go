package sched

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"cgra/internal/obs"
)

// RejectCause classifies why the scheduler could not place a candidate
// node at a (cycle, PE) it considered. The causes make inhomogeneity and
// irregularity bottlenecks visible: a composition whose log is dominated
// by cbox-saturation needs condition-memory ports, one dominated by
// routing needs links, one dominated by loop-incompatibility is fighting
// the contiguous-context loop layout (§V-B).
type RejectCause string

// Rejection causes.
const (
	// RejectNoSupportingPE: no PE of the composition implements the
	// operation (a hard inhomogeneity limit; compilation fails).
	RejectNoSupportingPE RejectCause = "no-supporting-pe"
	// RejectPEBusy: every compatible PE is occupied at the candidate
	// cycle (resource pressure).
	RejectPEBusy RejectCause = "pe-busy"
	// RejectRouting: a compatible PE was free but an operand could not be
	// read there (distance > 1, routing-output conflict, or a copy is
	// still in flight).
	RejectRouting RejectCause = "routing"
	// RejectCBoxSaturation: the C-Box could not accept the compare's
	// status bit in its arrival cycle, or the stored partial condition
	// was not ready (§IV-A2: one incoming status per cycle).
	RejectCBoxSaturation RejectCause = "cbox-saturation"
	// RejectPredication: the node's predicate slot was not computed yet,
	// or the per-cycle predication read port was taken.
	RejectPredication RejectCause = "predication"
	// RejectLoopIncompatibility: the placement was blocked by a loop or
	// branch boundary — the value would have to materialize before the
	// current region's safe floor, i.e. inside contexts that re-execute
	// or execute conditionally.
	RejectLoopIncompatibility RejectCause = "loop-incompatibility"
	// RejectWARHazard: an earlier value in the target home slot still has
	// pending consumers; overwriting now would feed them the wrong value.
	RejectWARHazard RejectCause = "war-hazard"
	// RejectPipelineIneligible: the modulo backend examined a loop and
	// fell back to the list layout (shape, predication, stores, or
	// unsupported operands make it unsafe to pipeline). The Node field
	// names the loop and the reason.
	RejectPipelineIneligible RejectCause = "pipeline-ineligible"
	// RejectIIAttempt: one initiation-interval attempt of the modulo
	// scheduler. Failed attempts carry the failure in the Node field;
	// the accepted II is recorded too, so the full search is replayable
	// from the log (the satellite "rejected II attempts are as debuggable
	// as rejected placements").
	RejectIIAttempt RejectCause = "ii-attempt"
)

// Rejection is one recorded scheduling rejection.
type Rejection struct {
	// Cycle is the time step at which placement was attempted.
	Cycle int
	// Node describes the CDFG node (operation and id).
	Node string
	// Cause classifies the rejection.
	Cause RejectCause
}

// ExplainLog records scheduling rejections for post-mortem analysis. It is
// opt-in via Options.Explain; a nil log costs nothing. The log keeps every
// per-cause count and up to MaxEntries individual rejections.
//
// Safe for concurrent use (one scheduler run is single-threaded, but
// explore-style drivers may schedule several candidates in parallel
// against one shared log).
type ExplainLog struct {
	// MaxEntries caps the retained individual rejections (the counts are
	// always exact). 0 means the default of 10000.
	MaxEntries int

	mu      sync.Mutex
	entries []Rejection
	counts  map[RejectCause]int64
	dropped int64
}

// NewExplainLog creates an empty log with the default entry cap.
func NewExplainLog() *ExplainLog { return &ExplainLog{} }

// Add records one rejection. Safe on a nil receiver (no-op), so scheduler
// code records unconditionally.
func (l *ExplainLog) Add(cycle int, node string, cause RejectCause) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.counts == nil {
		l.counts = map[RejectCause]int64{}
	}
	l.counts[cause]++
	cap := l.MaxEntries
	if cap == 0 {
		cap = 10000
	}
	if len(l.entries) < cap {
		l.entries = append(l.entries, Rejection{Cycle: cycle, Node: node, Cause: cause})
	} else {
		l.dropped++
	}
}

// Entries returns the retained rejections, in record order.
func (l *ExplainLog) Entries() []Rejection {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Rejection(nil), l.entries...)
}

// Counts returns the exact per-cause totals.
func (l *ExplainLog) Counts() map[RejectCause]int64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[RejectCause]int64, len(l.counts))
	for k, v := range l.counts {
		out[k] = v
	}
	return out
}

// Total returns the total number of recorded rejections.
func (l *ExplainLog) Total() int64 {
	var t int64
	for _, v := range l.Counts() {
		t += v
	}
	return t
}

// WriteSummary prints the per-cause totals (descending) and the first
// retained rejections.
func (l *ExplainLog) WriteSummary(w io.Writer, maxEntries int) {
	if l == nil {
		return
	}
	counts := l.Counts()
	type row struct {
		cause RejectCause
		n     int64
	}
	var rows []row
	for c, n := range counts {
		rows = append(rows, row{c, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].cause < rows[j].cause
	})
	fmt.Fprintf(w, "scheduler rejections: %d total\n", l.Total())
	for _, r := range rows {
		fmt.Fprintf(w, "  %-22s %d\n", r.cause, r.n)
	}
	entries := l.Entries()
	if maxEntries > 0 && len(entries) > maxEntries {
		entries = entries[:maxEntries]
	}
	for _, e := range entries {
		fmt.Fprintf(w, "  cycle %-5d %-28s %s\n", e.Cycle, e.Node, e.Cause)
	}
	l.mu.Lock()
	dropped := l.dropped
	l.mu.Unlock()
	if dropped > 0 {
		fmt.Fprintf(w, "  (%d further rejections not retained)\n", dropped)
	}
}

// Export writes the per-cause totals into a registry as
// cgra_sched_rejections_total{cause=...} counters.
func (l *ExplainLog) Export(reg *obs.Registry) {
	if l == nil || reg == nil {
		return
	}
	reg.Help("cgra_sched_rejections_total", "scheduler candidate rejections by cause")
	for cause, n := range l.Counts() {
		reg.Counter("cgra_sched_rejections_total", obs.L("cause", string(cause))).Add(n)
	}
}
