package sched

import (
	"strings"
	"testing"

	"cgra/internal/arch"
)

// emptySchedule builds a minimal valid schedule skeleton on a 2x2 mesh.
func emptySchedule(t *testing.T) *Schedule {
	t.Helper()
	comp, err := arch.HomogeneousMesh(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return &Schedule{
		Comp:   comp,
		Length: 10,
		CCU:    map[int]*CCUOp{},
		Homes:  map[string]*Value{},
	}
}

func val(s *Schedule, pe, def int) *Value {
	v := &Value{ID: len(s.Values), PE: pe, Def: def, Addr: -1}
	s.Values = append(s.Values, v)
	return v
}

func slot(s *Schedule, writes ...int) *Slot {
	sl := &Slot{ID: len(s.Slots), Writes: writes, Phys: -1}
	s.Slots = append(s.Slots, sl)
	return sl
}

func expectVerifyError(t *testing.T, s *Schedule, substr string) {
	t.Helper()
	err := Verify(s)
	if err == nil {
		t.Fatalf("Verify accepted a schedule that should fail (%s)", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("Verify error %q does not mention %q", err, substr)
	}
}

func TestVerifyDetectsDoubleBooking(t *testing.T) {
	s := emptySchedule(t)
	d1, d2 := val(s, 0, 2), val(s, 0, 2)
	s.Ops = append(s.Ops,
		&Op{PE: 0, Cycle: 2, Dur: 1, Code: arch.CONST, Dest: d1},
		&Op{PE: 0, Cycle: 2, Dur: 1, Code: arch.CONST, Dest: d2},
	)
	expectVerifyError(t, s, "double-booked")
}

func TestVerifyDetectsMultiCycleOverlap(t *testing.T) {
	s := emptySchedule(t)
	d1, d2 := val(s, 0, 3), val(s, 0, 3)
	a := val(s, 0, 0)
	a.Pinned = true
	s.Ops = append(s.Ops,
		&Op{PE: 0, Cycle: 2, Dur: 2, Code: arch.IMUL,
			A: Src{Kind: SrcReg, Val: a}, B: Src{Kind: SrcReg, Val: a}, Dest: d1},
		&Op{PE: 0, Cycle: 3, Dur: 1, Code: arch.CONST, Dest: d2},
	)
	expectVerifyError(t, s, "double-booked")
}

func TestVerifyDetectsUnsupportedOp(t *testing.T) {
	s := emptySchedule(t)
	// PE 1 has no DMA on the 2x2 mesh (DMA at 0 and 3).
	d := val(s, 1, 2)
	idx := val(s, 1, 0)
	idx.Pinned = true
	s.Ops = append(s.Ops, &Op{PE: 1, Cycle: 2, Dur: 2, Code: arch.LOAD,
		A: Src{Kind: SrcReg, Val: idx}, Dest: d})
	expectVerifyError(t, s, "does not implement")
}

func TestVerifyDetectsReadBeforeWrite(t *testing.T) {
	s := emptySchedule(t)
	producer := val(s, 0, 5) // written end of cycle 5
	d := val(s, 0, 3)
	s.Ops = append(s.Ops, &Op{PE: 0, Cycle: 3, Dur: 1, Code: arch.MOVE,
		A: Src{Kind: SrcReg, Val: producer}, Dest: d})
	expectVerifyError(t, s, "before it is written")
}

func TestVerifyDetectsIllegalRoute(t *testing.T) {
	s := emptySchedule(t)
	// 2x2 mesh: PE 0 and PE 3 are NOT adjacent.
	remote := val(s, 3, 0)
	remote.Pinned = true
	d := val(s, 0, 2)
	s.Ops = append(s.Ops, &Op{PE: 0, Cycle: 2, Dur: 1, Code: arch.MOVE,
		A: Src{Kind: SrcRoute, Val: remote, FromPE: 3}, Dest: d})
	expectVerifyError(t, s, "no interconnect edge")
}

func TestVerifyDetectsOutlConflict(t *testing.T) {
	s := emptySchedule(t)
	v1, v2 := val(s, 1, 0), val(s, 1, 0)
	v1.Pinned, v2.Pinned = true, true
	d0, d3 := val(s, 0, 3), val(s, 3, 3)
	s.Ops = append(s.Ops,
		&Op{PE: 0, Cycle: 2, Dur: 1, Code: arch.MOVE,
			A: Src{Kind: SrcRoute, Val: v1, FromPE: 1}, Dest: d0},
		&Op{PE: 3, Cycle: 2, Dur: 1, Code: arch.MOVE,
			A: Src{Kind: SrcRoute, Val: v2, FromPE: 1}, Dest: d3},
	)
	expectVerifyError(t, s, "outl conflict")
}

func TestVerifyDetectsCBoxDoubleBooking(t *testing.T) {
	s := emptySchedule(t)
	a := val(s, 0, 0)
	a.Pinned = true
	s.Ops = append(s.Ops, &Op{PE: 0, Cycle: 2, Dur: 1, Code: arch.IFLT,
		A: Src{Kind: SrcReg, Val: a}, B: Src{Kind: SrcReg, Val: a}})
	s1, s2 := slot(s, 2), slot(s, 2)
	s.CBox = append(s.CBox,
		&CBoxOp{Cycle: 2, Kind: CBConsume, StatusPE: 0, Logic: CBPass, Write: s1},
		&CBoxOp{Cycle: 2, Kind: CBRecombine, Logic: CBPass, A: s1, Write: s2},
	)
	expectVerifyError(t, s, "C-Box double-booked")
}

func TestVerifyDetectsConsumeWithoutCompare(t *testing.T) {
	s := emptySchedule(t)
	s.CBox = append(s.CBox, &CBoxOp{Cycle: 4, Kind: CBConsume, StatusPE: 2,
		Logic: CBPass, Write: slot(s, 4)})
	expectVerifyError(t, s, "no compare finishing")
}

func TestVerifyDetectsSlotReadBeforeWrite(t *testing.T) {
	s := emptySchedule(t)
	late := slot(s, 8) // written at cycle 8
	s.CCU[3] = &CCUOp{Cycle: 3, Slot: late, Target: 5}
	expectVerifyError(t, s, "before any write")
}

func TestVerifyDetectsBadJumpTarget(t *testing.T) {
	s := emptySchedule(t)
	s.CCU[3] = &CCUOp{Cycle: 3, Uncond: true, Target: 99}
	expectVerifyError(t, s, "target outside")
}

func TestVerifyDetectsTwoPredicationSlots(t *testing.T) {
	s := emptySchedule(t)
	s1, s2 := slot(s, 1), slot(s, 1)
	d0, d1 := val(s, 0, 3), val(s, 1, 3)
	s.Ops = append(s.Ops,
		&Op{PE: 0, Cycle: 3, Dur: 1, Code: arch.CONST, Dest: d0, PredSlot: s1},
		&Op{PE: 1, Cycle: 3, Dur: 1, Code: arch.CONST, Dest: d1, PredSlot: s2},
	)
	expectVerifyError(t, s, "two predication slots")
}

func TestVerifyDetectsCrossPEWrite(t *testing.T) {
	s := emptySchedule(t)
	d := val(s, 1, 2) // value homed on PE 1
	s.Ops = append(s.Ops, &Op{PE: 0, Cycle: 2, Dur: 1, Code: arch.CONST, Dest: d})
	expectVerifyError(t, s, "homed on PE")
}

func TestVerifyDetectsWrongDuration(t *testing.T) {
	s := emptySchedule(t)
	d := val(s, 0, 2)
	a := val(s, 0, 0)
	a.Pinned = true
	// IMUL has duration 2 on the block-multiplier mesh; claim 1.
	s.Ops = append(s.Ops, &Op{PE: 0, Cycle: 2, Dur: 1, Code: arch.IMUL,
		A: Src{Kind: SrcReg, Val: a}, B: Src{Kind: SrcReg, Val: a}, Dest: d})
	expectVerifyError(t, s, "duration")
}

func TestVerifyAcceptsLoopCarriedSlot(t *testing.T) {
	// A slot written inside a loop and read earlier in the same range is
	// legal (previous iteration wrote it).
	s := emptySchedule(t)
	sl := slot(s, 6)
	s.LoopRanges = [][2]int{{2, 8}}
	s.CCU[4] = &CCUOp{Cycle: 4, Slot: sl, Target: 9}
	a := val(s, 0, 0)
	a.Pinned = true
	s.Ops = append(s.Ops, &Op{PE: 0, Cycle: 6, Dur: 1, Code: arch.IFLT,
		A: Src{Kind: SrcReg, Val: a}, B: Src{Kind: SrcReg, Val: a}})
	s.CBox = append(s.CBox, &CBoxOp{Cycle: 6, Kind: CBConsume, StatusPE: 0,
		Logic: CBPass, Write: sl})
	if err := Verify(s); err != nil {
		t.Fatalf("loop-carried slot rejected: %v", err)
	}
}
