package sched

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"cgra/internal/arch"
	"cgra/internal/cdfg"
)

// Backend is one scheduling strategy. Both backends produce a complete,
// verified Schedule for the whole kernel; they differ in how loop bodies are
// laid out: the list backend runs iterations back-to-back, the modulo
// backend software-pipelines eligible innermost loops at a minimized
// initiation interval and falls back to the list layout elsewhere.
type Backend interface {
	// Name returns the backend's registry name (Options.Backend value).
	Name() string
	// Run schedules the graph onto the composition.
	Run(ctx context.Context, g *cdfg.Graph, comp *arch.Composition, opts Options) (*Schedule, error)
}

// Backend names.
const (
	// BackendList is the paper's list scheduler (the default).
	BackendList = "list"
	// BackendModulo software-pipelines eligible innermost loops with the
	// iterative modulo scheduler (internal/modsched).
	BackendModulo = "modulo"
)

type listBackend struct{}

func (listBackend) Name() string { return BackendList }
func (listBackend) Run(ctx context.Context, g *cdfg.Graph, comp *arch.Composition, opts Options) (*Schedule, error) {
	return runCtx(ctx, g, comp, opts, false)
}

type moduloBackend struct{}

func (moduloBackend) Name() string { return BackendModulo }
func (moduloBackend) Run(ctx context.Context, g *cdfg.Graph, comp *arch.Composition, opts Options) (*Schedule, error) {
	return runCtx(ctx, g, comp, opts, true)
}

var backends = map[string]Backend{
	BackendList:   listBackend{},
	BackendModulo: moduloBackend{},
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	out := make([]string, 0, len(backends))
	for name := range backends {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BackendByName resolves a backend name; the empty string selects the list
// backend. Unknown names fail with the valid choices spelled out, so flag
// parsing can reject them before any compilation work starts.
func BackendByName(name string) (Backend, error) {
	if name == "" {
		name = BackendList
	}
	b, ok := backends[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown backend %q (valid: %s)", name, strings.Join(Backends(), ", "))
	}
	return b, nil
}
