package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// mkTrace builds a finished trace whose duration is forced to d by
// backdating the root span's start (white-box: tests own the clock).
func mkTrace(fr *FlightRecorder, endpoint string, d time.Duration, status int) *Trace {
	tr := NewTrace(NewTraceID(), endpoint, "server."+endpoint)
	tr.Root.start = time.Now().Add(-d)
	fr.Begin(tr)
	fr.End(tr, status)
	return tr
}

func TestFlightRingWrapDropsOldest(t *testing.T) {
	fr := NewFlightRecorder(4, 2)
	var ids []string
	for i := 0; i < 6; i++ {
		tr := mkTrace(fr, "run", time.Duration(i+1)*time.Millisecond, 200)
		ids = append(ids, tr.ID.String())
	}
	if got := fr.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	done := fr.Completed()
	if len(done) != 4 {
		t.Fatalf("ring holds %d, want 4", len(done))
	}
	// Oldest first: traces 2..5 survive, 0 and 1 were dropped by the wrap.
	for i, tr := range done {
		if want := ids[i+2]; tr.ID.String() != want {
			t.Fatalf("ring[%d] = %s, want %s", i, tr.ID.String(), want)
		}
	}
	// Trace 1 was dropped from the ring AND from the slowest reservoir
	// (2 slots, traces 4 and 5 are slower): fully gone.
	if got := fr.Get(ids[1]); got != nil {
		t.Fatalf("dropped trace %s still retrievable", ids[1])
	}
	// Trace 5 is in both ring and reservoir.
	if got := fr.Get(ids[5]); got == nil {
		t.Fatal("newest trace not retrievable")
	}
}

func TestFlightSlowestReservoir(t *testing.T) {
	fr := NewFlightRecorder(64, 3)
	durations := []time.Duration{5, 1, 9, 3, 7, 2} // ms
	var traces []*Trace
	for _, d := range durations {
		traces = append(traces, mkTrace(fr, "run", d*time.Millisecond, 200))
	}
	slow := fr.Slowest("run")
	if len(slow) != 3 {
		t.Fatalf("reservoir holds %d, want 3", len(slow))
	}
	// Slowest first: 9ms, 7ms, 5ms — the 1/2/3ms traces never displaced a
	// slower resident.
	want := []*Trace{traces[2], traces[4], traces[0]}
	for i := range want {
		if slow[i] != want[i] {
			t.Fatalf("slowest[%d] = %s (%.1fms), want %s", i, slow[i].ID, ms(slow[i].Duration()), want[i].ID)
		}
	}
	// A different endpoint has its own reservoir.
	if got := fr.Slowest("compile"); len(got) != 0 {
		t.Fatalf("compile reservoir = %d traces, want 0", len(got))
	}
	// A trace present only in a reservoir (evicted from a tiny ring) is
	// still retrievable by ID.
	fr2 := NewFlightRecorder(1, 2)
	slowTr := mkTrace(fr2, "run", 50*time.Millisecond, 200)
	mkTrace(fr2, "run", time.Millisecond, 200) // wraps the 1-slot ring
	if got := fr2.Get(slowTr.ID.String()); got != slowTr {
		t.Fatal("reservoir-only trace not retrievable")
	}
}

func TestFlightInFlightExport(t *testing.T) {
	fr := NewFlightRecorder(8, 2)
	tr := NewTrace(NewTraceID(), "run", "server.run")
	fr.Begin(tr)
	sp := tr.Root.StartChild("admission")

	inflight := fr.InFlight()
	if len(inflight) != 1 || inflight[0] != tr {
		t.Fatalf("inflight = %v, want the open trace", inflight)
	}
	if got := fr.Get(tr.ID.String()); got != tr {
		t.Fatal("in-flight trace not retrievable by ID")
	}
	// Exporting a live trace must not finish it, and must mark it
	// incomplete with durations-so-far.
	exp := tr.Export()
	if exp.Complete {
		t.Fatal("in-flight export marked complete")
	}
	if exp.Root == nil || len(exp.Root.Children) != 1 || exp.Root.Children[0].Complete {
		t.Fatalf("in-flight export tree wrong: %+v", exp.Root)
	}
	if tr.Done() {
		t.Fatal("export finished the trace")
	}

	sp.Finish()
	fr.End(tr, 200)
	if got := fr.InFlight(); len(got) != 0 {
		t.Fatalf("inflight after End = %d, want 0", len(got))
	}
	exp = tr.Export()
	if !exp.Complete || exp.Status != 200 {
		t.Fatalf("completed export: complete=%v status=%d", exp.Complete, exp.Status)
	}
}

func TestChromeTraceExport(t *testing.T) {
	fr := NewFlightRecorder(8, 2)
	tr := NewTrace(NewTraceID(), "run", "server.run")
	fr.Begin(tr)
	adm := tr.Root.StartChild("admission")
	adm.Event("shed", "overloaded")
	adm.Finish()
	eng := tr.Root.StartChild("engine")
	eng.Set("cycles", 1234)
	eng.Annotate("path", "fast")
	eng.Finish()
	fr.End(tr, 200)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*Trace{tr}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Ph    string         `json:"ph"`
			Dur   *int64         `json:"dur"`
			Tid   int            `json:"tid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	byName := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name]++
		switch ev.Name {
		case "server.run":
			if ev.Ph != "X" || ev.Dur == nil {
				t.Fatalf("root event malformed: %+v", ev)
			}
			if ev.Args["trace_id"] != tr.ID.String() {
				t.Fatalf("root args missing trace_id: %v", ev.Args)
			}
			if ev.Args["complete"] != true {
				t.Fatalf("root args complete = %v", ev.Args["complete"])
			}
		case "engine":
			if ev.Args["path"] != "fast" || ev.Args["cycles"] != float64(1234) {
				t.Fatalf("engine args = %v", ev.Args)
			}
		case "shed":
			if ev.Ph != "i" || ev.Scope != "t" {
				t.Fatalf("instant event malformed: %+v", ev)
			}
		}
	}
	for _, want := range []string{"thread_name", "server.run", "admission", "engine", "shed"} {
		if byName[want] == 0 {
			t.Fatalf("chrome export missing %q event (have %v)", want, byName)
		}
	}
	// An empty export still produces a valid document with an array.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents":[]`)) {
		t.Fatalf("empty export = %s", buf.String())
	}
}

func TestFlightHTTPHandlers(t *testing.T) {
	fr := NewFlightRecorder(8, 2)
	slow := mkTrace(fr, "run", 20*time.Millisecond, 200)
	mkTrace(fr, "run", time.Millisecond, 200)
	mkTrace(fr, "compile", 2*time.Millisecond, 200)

	get := func(url string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		req := httptest.NewRequest("GET", url, nil)
		if url[:13] == "/debug/traces" && len(url) > 13 && url[13] == '/' {
			fr.HandleTrace(w, req)
		} else {
			fr.HandleList(w, req)
		}
		return w
	}

	var list struct {
		Traces []*TraceExport `json:"traces"`
	}
	w := get("/debug/traces")
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil || len(list.Traces) != 3 {
		t.Fatalf("list: err=%v n=%d", err, len(list.Traces))
	}
	w = get("/debug/traces?endpoint=run")
	if json.Unmarshal(w.Body.Bytes(), &list); len(list.Traces) != 2 {
		t.Fatalf("endpoint filter: n=%d, want 2", len(list.Traces))
	}
	w = get("/debug/traces?endpoint=run&slowest=1")
	if json.Unmarshal(w.Body.Bytes(), &list); len(list.Traces) != 2 || list.Traces[0].ID != slow.ID.String() {
		t.Fatalf("slowest: %+v", list.Traces)
	}

	w = get("/debug/traces/" + slow.ID.String())
	var one TraceExport
	if err := json.Unmarshal(w.Body.Bytes(), &one); err != nil || one.ID != slow.ID.String() {
		t.Fatalf("get by id: err=%v id=%s", err, one.ID)
	}
	w = get("/debug/traces/" + NewTraceID().String())
	if w.Code != 404 {
		t.Fatalf("unknown id: HTTP %d, want 404", w.Code)
	}
	var e struct {
		Code string `json:"code"`
	}
	if json.Unmarshal(w.Body.Bytes(), &e); e.Code != "unknown_trace" {
		t.Fatalf("404 body code = %q", e.Code)
	}

	w = get("/debug/traces?format=chrome")
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil || len(doc.TraceEvents) == 0 {
		t.Fatalf("chrome list: err=%v events=%d", err, len(doc.TraceEvents))
	}
}
