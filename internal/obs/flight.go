// The flight recorder: an always-on, bounded, in-memory store of recent
// and notable traces, so "which request was slow and where did the time
// go" can be answered after the fact without any external collector.
//
// Three compartments, all bounded:
//
//   - a ring buffer of the last N completed traces (wrapping drops the
//     oldest),
//   - one reservoir per endpoint holding the K slowest completed traces
//     seen so far (a fast request never evicts a slower one),
//   - the set of currently in-flight traces (removed on completion), so a
//     hung request is inspectable while it hangs.
//
// The recorder serves itself over HTTP as /debug/traces (list) and
// /debug/traces/{id} (one trace), each as structured JSON or — with
// ?format=chrome — as Chrome trace_event JSON loadable in chrome://tracing
// and Perfetto.
package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"path"
	"sort"
	"sync"
	"time"
)

// Flight recorder defaults.
const (
	DefaultFlightRing    = 256
	DefaultFlightSlowest = 8
)

// FlightRecorder holds recent and slowest traces in bounded memory. Safe
// for concurrent use.
type FlightRecorder struct {
	mu       sync.Mutex
	ring     []*Trace // capacity ringSize; filled circularly
	next     int      // ring slot the next completion lands in
	total    uint64   // completions ever recorded
	inflight map[TraceID]*Trace
	slowest  map[string][]*Trace // per endpoint, sorted slowest-first, ≤ slowK
	ringSize int
	slowK    int
}

// NewFlightRecorder builds a recorder keeping the last ringSize completed
// traces (0 = 256) and the slowestPerEndpoint slowest traces per endpoint
// (0 = 8).
func NewFlightRecorder(ringSize, slowestPerEndpoint int) *FlightRecorder {
	if ringSize <= 0 {
		ringSize = DefaultFlightRing
	}
	if slowestPerEndpoint <= 0 {
		slowestPerEndpoint = DefaultFlightSlowest
	}
	return &FlightRecorder{
		ring:     make([]*Trace, 0, ringSize),
		inflight: map[TraceID]*Trace{},
		slowest:  map[string][]*Trace{},
		ringSize: ringSize,
		slowK:    slowestPerEndpoint,
	}
}

// Begin registers an in-flight trace so it is inspectable before it
// completes.
func (fr *FlightRecorder) Begin(t *Trace) {
	if fr == nil || t == nil {
		return
	}
	fr.mu.Lock()
	fr.inflight[t.ID] = t
	fr.mu.Unlock()
}

// End finishes the trace with the given status and commits it to the ring
// and the endpoint's slowest reservoir.
func (fr *FlightRecorder) End(t *Trace, status int) {
	if fr == nil || t == nil {
		return
	}
	t.Finish(status)
	fr.mu.Lock()
	defer fr.mu.Unlock()
	delete(fr.inflight, t.ID)
	if len(fr.ring) < fr.ringSize {
		fr.ring = append(fr.ring, t)
	} else {
		fr.ring[fr.next] = t
	}
	fr.next = (fr.next + 1) % fr.ringSize
	fr.total++
	fr.admitSlowestLocked(t)
}

// admitSlowestLocked inserts t into its endpoint's reservoir, keeping it
// sorted slowest-first and bounded: the fastest resident is evicted, and a
// candidate faster than every resident of a full reservoir is rejected.
func (fr *FlightRecorder) admitSlowestLocked(t *Trace) {
	res := fr.slowest[t.Endpoint]
	d := t.Duration()
	i := sort.Search(len(res), func(i int) bool { return res[i].Duration() < d })
	if i >= fr.slowK {
		return
	}
	res = append(res, nil)
	copy(res[i+1:], res[i:])
	res[i] = t
	if len(res) > fr.slowK {
		res = res[:fr.slowK]
	}
	fr.slowest[t.Endpoint] = res
}

// Total reports how many traces have completed through the recorder
// (including ones the ring has since dropped).
func (fr *FlightRecorder) Total() uint64 {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.total
}

// Get returns the trace with the given hex ID: in-flight traces first,
// then the ring, then the slowest reservoirs. Nil when unknown (possibly
// dropped by ring wrap).
func (fr *FlightRecorder) Get(id string) *Trace {
	tid, err := ParseTraceID(id)
	if err != nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if t := fr.inflight[tid]; t != nil {
		return t
	}
	for _, t := range fr.ring {
		if t.ID == tid {
			return t
		}
	}
	for _, res := range fr.slowest {
		for _, t := range res {
			if t.ID == tid {
				return t
			}
		}
	}
	return nil
}

// Completed returns the ring's traces, oldest first.
func (fr *FlightRecorder) Completed() []*Trace {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]*Trace, 0, len(fr.ring))
	if len(fr.ring) < fr.ringSize {
		return append(out, fr.ring...)
	}
	out = append(out, fr.ring[fr.next:]...)
	return append(out, fr.ring[:fr.next]...)
}

// Slowest returns the endpoint's slowest-trace reservoir, slowest first.
func (fr *FlightRecorder) Slowest(endpoint string) []*Trace {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return append([]*Trace(nil), fr.slowest[endpoint]...)
}

// InFlight returns the currently open traces, oldest first.
func (fr *FlightRecorder) InFlight() []*Trace {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]*Trace, 0, len(fr.inflight))
	for _, t := range fr.inflight {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start().Before(out[j].Start()) })
	return out
}

// --- structured JSON export ----------------------------------------------

// SpanExport is one span of an exported trace. Times are relative to the
// trace start so a tree reads as a timeline.
type SpanExport struct {
	Name       string        `json:"name"`
	StartUS    int64         `json:"start_us"`
	DurationMS float64       `json:"duration_ms"`
	Complete   bool          `json:"complete"`
	Metrics    []SpanMetric  `json:"metrics,omitempty"`
	Attrs      []SpanAttr    `json:"attrs,omitempty"`
	Events     []EventExport `json:"events,omitempty"`
	Children   []*SpanExport `json:"children,omitempty"`
}

// EventExport is one span event of an exported trace.
type EventExport struct {
	Name string `json:"name"`
	AtUS int64  `json:"at_us"`
	Note string `json:"note,omitempty"`
}

// TraceExport is one exported trace. Complete is false for a trace
// exported while still in flight; its durations are "so far".
type TraceExport struct {
	ID         string      `json:"id"`
	Endpoint   string      `json:"endpoint"`
	Status     int         `json:"status,omitempty"`
	Complete   bool        `json:"complete"`
	Start      time.Time   `json:"start"`
	DurationMS float64     `json:"duration_ms"`
	Root       *SpanExport `json:"root"`
}

// Export snapshots the trace (in-flight included) as a self-contained
// JSON-ready tree.
func (t *Trace) Export() *TraceExport {
	if t == nil {
		return nil
	}
	base := t.Start()
	return &TraceExport{
		ID:         t.ID.String(),
		Endpoint:   t.Endpoint,
		Status:     t.Status(),
		Complete:   t.Done(),
		Start:      base,
		DurationMS: ms(t.Duration()),
		Root:       exportSpan(t.Root, base),
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func exportSpan(s *Span, base time.Time) *SpanExport {
	if s == nil {
		return nil
	}
	out := &SpanExport{
		Name:       s.Name,
		StartUS:    s.Start().Sub(base).Microseconds(),
		DurationMS: ms(s.Duration()),
		Complete:   s.Done(),
		Metrics:    s.Metrics(),
		Attrs:      s.Attrs(),
	}
	for _, ev := range s.Events() {
		out.Events = append(out.Events, EventExport{
			Name: ev.Name,
			AtUS: ev.At.Sub(base).Microseconds(),
			Note: ev.Note,
		})
	}
	for _, c := range s.Children() {
		out.Children = append(out.Children, exportSpan(c, base))
	}
	return out
}

// --- Chrome trace_event export -------------------------------------------

// chromeEvent is one entry of the Chrome trace_event JSON array (the
// format chrome://tracing and Perfetto load).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   *int64         `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the traces as a Chrome trace_event document:
// one tid per trace (named "<endpoint> <id>"), spans as complete ("X")
// events, span events as thread-scoped instants ("i"). In-flight spans
// export with their duration so far.
func WriteChromeTrace(w io.Writer, traces []*Trace) error {
	var events []chromeEvent
	for i, t := range traces {
		if t == nil {
			continue
		}
		tid := i + 1
		events = append(events, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  1,
			Tid:  tid,
			Args: map[string]any{"name": t.Endpoint + " " + t.ID.String()},
		})
		rootArgs := map[string]any{"trace_id": t.ID.String(), "complete": t.Done()}
		if st := t.Status(); st != 0 {
			rootArgs["status"] = st
		}
		events = appendChromeSpan(events, t.Root, tid, rootArgs)
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}

func appendChromeSpan(events []chromeEvent, s *Span, tid int, extra map[string]any) []chromeEvent {
	if s == nil {
		return events
	}
	args := map[string]any{}
	for k, v := range extra {
		args[k] = v
	}
	for _, m := range s.Metrics() {
		args[m.Name] = m.Value
	}
	for _, a := range s.Attrs() {
		args[a.Name] = a.Value
	}
	dur := s.Duration().Microseconds()
	ev := chromeEvent{
		Name: s.Name,
		Cat:  "span",
		Ph:   "X",
		TS:   s.Start().UnixMicro(),
		Dur:  &dur,
		Pid:  1,
		Tid:  tid,
	}
	if len(args) > 0 {
		ev.Args = args
	}
	events = append(events, ev)
	for _, se := range s.Events() {
		inst := chromeEvent{
			Name:  se.Name,
			Cat:   "event",
			Ph:    "i",
			TS:    se.At.UnixMicro(),
			Pid:   1,
			Tid:   tid,
			Scope: "t",
		}
		if se.Note != "" {
			inst.Args = map[string]any{"note": se.Note}
		}
		events = append(events, inst)
	}
	for _, c := range s.Children() {
		events = appendChromeSpan(events, c, tid, nil)
	}
	return events
}

// --- HTTP surface ---------------------------------------------------------

// listSelection resolves the query parameters of a list request.
func (fr *FlightRecorder) listSelection(r *http.Request) []*Trace {
	q := r.URL.Query()
	endpoint := q.Get("endpoint")
	slowOnly := q.Get("slowest") == "1" || q.Get("slowest") == "true"
	var traces []*Trace
	if slowOnly {
		if endpoint != "" {
			traces = fr.Slowest(endpoint)
		} else {
			fr.mu.Lock()
			endpoints := make([]string, 0, len(fr.slowest))
			for ep := range fr.slowest {
				endpoints = append(endpoints, ep)
			}
			fr.mu.Unlock()
			sort.Strings(endpoints)
			for _, ep := range endpoints {
				traces = append(traces, fr.Slowest(ep)...)
			}
		}
		return traces
	}
	traces = fr.Completed()
	traces = append(traces, fr.InFlight()...)
	if endpoint == "" {
		return traces
	}
	keep := traces[:0]
	for _, t := range traces {
		if t.Endpoint == endpoint {
			keep = append(keep, t)
		}
	}
	return keep
}

// HandleList serves GET /debug/traces: every ring and in-flight trace,
// filtered by ?endpoint=, restricted to the slowest reservoirs with
// ?slowest=1, as {"traces": [...]} JSON or Chrome trace_event JSON with
// ?format=chrome.
func (fr *FlightRecorder) HandleList(w http.ResponseWriter, r *http.Request) {
	traces := fr.listSelection(r)
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTrace(w, traces)
		return
	}
	out := make([]*TraceExport, 0, len(traces))
	for _, t := range traces {
		out = append(out, t.Export())
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Traces []*TraceExport `json:"traces"`
	}{out})
}

// HandleTrace serves GET /debug/traces/{id}: one trace (in-flight traces
// export with durations so far), 404 when the ID is unknown or already
// dropped by ring wrap.
func (fr *FlightRecorder) HandleTrace(w http.ResponseWriter, r *http.Request) {
	id := path.Base(r.URL.Path)
	t := fr.Get(id)
	if t == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(map[string]string{
			"error": "unknown trace " + id + " (dropped by ring wrap, or never recorded)",
			"code":  "unknown_trace",
		})
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTrace(w, []*Trace{t})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(t.Export())
}
