package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestHistogramQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// 10 samples in (1,2], 10 in (2,4].
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
		h.Observe(3)
	}
	// p50: rank 10 lands exactly on the end of bucket (1,2] → 2.0.
	if got := h.Quantile(0.5); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("p50 = %v, want 2.0", got)
	}
	// p75: rank 15, 5 of 10 into bucket (2,4] → 2 + 0.5*2 = 3.0.
	if got := h.Quantile(0.75); math.Abs(got-3.0) > 1e-9 {
		t.Fatalf("p75 = %v, want 3.0", got)
	}
	// p25: rank 5, 5 of 10 into the first bucket (0,1]... samples are in
	// (1,2], which is bucket index 1: 1 + 0.5*1 = 1.5.
	if got := h.Quantile(0.25); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("p25 = %v, want 1.5", got)
	}
	// Clamping.
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Fatalf("q<0 not clamped: %v", got)
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Fatalf("q>1 not clamped: %v", got)
	}
}

func TestHistogramQuantileFirstAndInfBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 20})
	// All mass in the first bucket: interpolate from 0.
	for i := 0; i < 4; i++ {
		h.Observe(5)
	}
	if got := h.Quantile(0.5); math.Abs(got-5.0) > 1e-9 {
		t.Fatalf("first-bucket p50 = %v, want 5.0", got)
	}
	// Mass beyond the last bound: the +Inf bucket has no upper edge, so
	// the estimate saturates at the largest finite bound.
	h2 := r.Histogram("lat2", []float64{10, 20})
	for i := 0; i < 4; i++ {
		h2.Observe(1000)
	}
	if got := h2.Quantile(0.99); got != 20 {
		t.Fatalf("+Inf p99 = %v, want 20 (largest finite bound)", got)
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cgra_server_request_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // untraced: no exemplar
	h.ObserveTraced(0.05, "aaaa")
	h.ObserveTraced(0.07, "bbbb") // same bucket: last writer wins
	h.ObserveTraced(0.5, "cccc")

	snap := r.Snapshot()
	var mp *MetricPoint
	for i := range snap {
		if snap[i].Name == "cgra_server_request_seconds" {
			mp = &snap[i]
		}
	}
	if mp == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if mp.Quantiles == nil || mp.Quantiles["p50"] <= 0 || mp.Quantiles["p99"] < mp.Quantiles["p50"] {
		t.Fatalf("quantiles = %v", mp.Quantiles)
	}
	want := map[float64]string{0.1: "bbbb", 1: "cccc"}
	for _, b := range mp.Buckets {
		if id, ok := want[b.LE]; ok {
			if b.Exemplar == nil || b.Exemplar.TraceID != id {
				t.Fatalf("bucket le=%v exemplar = %+v, want trace %s", b.LE, b.Exemplar, id)
			}
			if b.Exemplar.At.IsZero() {
				t.Fatalf("bucket le=%v exemplar has zero timestamp", b.LE)
			}
		} else if b.Exemplar != nil {
			t.Fatalf("bucket le=%v has unexpected exemplar %+v", b.LE, b.Exemplar)
		}
	}
	// Exemplars and quantiles are JSON-only: the Prometheus text format
	// must stay 0.0.4-parsable (no exemplar syntax).
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if strings.Contains(sb.String(), "aaaa") || strings.Contains(sb.String(), "trace_id") {
		t.Fatal("exemplars leaked into the Prometheus text exposition")
	}
	// And they survive the JSON round trip.
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"bbbb"`) || !strings.Contains(string(data), `"quantiles"`) {
		t.Fatalf("JSON export missing exemplar/quantiles: %s", data)
	}
}

func TestHistogramUntracedHasNoExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("plain", []float64{1})
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	snap := r.Snapshot()
	for _, mp := range snap {
		if mp.Name != "plain" {
			continue
		}
		for _, b := range mp.Buckets {
			if b.Exemplar != nil {
				t.Fatalf("untraced histogram grew an exemplar: %+v", b.Exemplar)
			}
		}
	}
}
