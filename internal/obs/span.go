package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// SpanMetric is one size/count annotation on a span (e.g. nodes: 172).
type SpanMetric struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// SpanAttr is one string annotation on a span (cache source, engine path).
type SpanAttr struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// SpanEvent is one timestamped point annotation on a span: a retry, a
// breaker trip, a brownout serve, a chaos injection.
type SpanEvent struct {
	Name string    `json:"name"`
	At   time.Time `json:"at"`
	Note string    `json:"note,omitempty"`
}

// Span is one timed phase of a larger operation. Spans form a tree: the
// compile pipeline opens a root span and each phase (unroll, CSE, CDFG
// build, schedule, route, alloc, ctxgen) becomes a child. A span carries
// wall time plus integer metrics describing the phase's output sizes.
//
// Spans are safe for concurrent use, although phases of one compilation
// normally run sequentially. Every method is safe on a nil *Span (no-op /
// zero result), so instrumented code can thread an optional span without
// branching: a nil root simply produces nil children.
type Span struct {
	Name string

	mu       sync.Mutex
	start    time.Time
	dur      time.Duration
	done     bool
	metrics  []SpanMetric
	attrs    []SpanAttr
	events   []SpanEvent
	children []*Span
}

// StartSpan opens a root span.
func StartSpan(name string) *Span {
	return &Span{Name: name, start: time.Now()}
}

// StartChild opens a child span under s (nil on a nil receiver).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := StartSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Finish stops the clock. Finishing twice keeps the first duration.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		s.dur = time.Since(s.start)
		s.done = true
	}
}

// Start returns the span's start time (zero on a nil receiver).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	// start is written once at construction and never mutated; no lock.
	return s.start
}

// Done reports whether the span has finished.
func (s *Span) Done() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// Duration returns the span's wall time (time since start while running).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		return time.Since(s.start)
	}
	return s.dur
}

// Set records (or overwrites) an integer metric on the span.
func (s *Span) Set(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.metrics {
		if s.metrics[i].Name == name {
			s.metrics[i].Value = v
			return
		}
	}
	s.metrics = append(s.metrics, SpanMetric{Name: name, Value: v})
}

// Annotate records (or overwrites) a string attribute on the span.
func (s *Span) Annotate(name, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Name == name {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, SpanAttr{Name: name, Value: value})
}

// Attrs returns a copy of the span's string attributes, in insertion order.
func (s *Span) Attrs() []SpanAttr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SpanAttr(nil), s.attrs...)
}

// Event appends a timestamped point event to the span (note may be empty).
func (s *Span) Event(name, note string) {
	if s == nil {
		return
	}
	ev := SpanEvent{Name: name, At: time.Now(), Note: note}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Events returns a copy of the span's events, in insertion order.
func (s *Span) Events() []SpanEvent {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SpanEvent(nil), s.events...)
}

// Metrics returns a copy of the span's metrics, in insertion order.
func (s *Span) Metrics() []SpanMetric {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SpanMetric(nil), s.metrics...)
}

// Children returns a copy of the child list, in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Timed runs fn inside a child span and returns the child (finished).
// On a nil receiver fn still runs, with a nil span.
func (s *Span) Timed(name string, fn func(*Span)) *Span {
	c := s.StartChild(name)
	defer c.Finish()
	fn(c)
	return c
}

// Walk visits the span and every descendant depth-first. The path is the
// slash-joined chain of names from (and including) the root.
func (s *Span) Walk(fn func(path string, sp *Span)) {
	if s == nil {
		return
	}
	s.walk(s.Name, fn)
}

func (s *Span) walk(path string, fn func(string, *Span)) {
	fn(path, s)
	for _, c := range s.Children() {
		c.walk(path+"/"+c.Name, fn)
	}
}

// WriteText renders the span tree as an indented report:
//
//	compile                       3.1ms
//	  unroll                      0.2ms  stmts=41
//	  cdfg                        0.4ms  nodes=172 blocks=12
func (s *Span) WriteText(w io.Writer) {
	if s == nil {
		return
	}
	s.writeText(w, 0)
}

func (s *Span) writeText(w io.Writer, depth int) {
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "  "
	}
	line := fmt.Sprintf("%s%-*s %10.3fms", indent, 28-2*depth, s.Name,
		float64(s.Duration().Microseconds())/1000)
	for _, m := range s.Metrics() {
		line += fmt.Sprintf("  %s=%d", m.Name, m.Value)
	}
	fmt.Fprintln(w, line)
	for _, c := range s.Children() {
		c.writeText(w, depth+1)
	}
}

// Export writes the span tree into a registry: for every span a
// `<prefix>_phase_seconds{phase="<path>"}` gauge, and for every span
// metric a `<prefix>_phase_metric{phase="<path>",metric="<name>"}` gauge.
// The path omits the root span's name (the root exports as phase "total").
func (s *Span) Export(reg *Registry, prefix string) {
	if s == nil || reg == nil {
		return
	}
	secs := prefix + "_phase_seconds"
	sizes := prefix + "_phase_metric"
	reg.Help(secs, "wall time of one pipeline phase, in seconds")
	s.Walk(func(path string, sp *Span) {
		phase := "total"
		if path != s.Name {
			phase = path[len(s.Name)+1:]
		}
		reg.Gauge(secs, L("phase", phase)).Set(sp.Duration().Seconds())
		for _, m := range sp.Metrics() {
			reg.Gauge(sizes, L("phase", phase), L("metric", m.Name)).SetInt(m.Value)
		}
	})
}
