package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("kind", "a"))
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same series.
	if r.Counter("requests_total", L("kind", "a")) != c {
		t.Error("counter identity not stable across lookups")
	}
	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(0.5)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}
	g.SetMax(1) // below current: no-op
	if got := g.Value(); got != 3 {
		t.Errorf("gauge after SetMax(1) = %v, want 3", got)
	}
	g.SetMax(10)
	if got := g.Value(); got != 10 {
		t.Errorf("gauge after SetMax(10) = %v, want 10", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	cum, sum, count := h.snapshot()
	if count != 5 || sum != 106 {
		t.Errorf("count=%d sum=%v, want 5, 106", count, sum)
	}
	// le=1: 0.5 and 1 (le is inclusive); le=2: +1.5; le=5: +3; +Inf: +100.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative bucket %d = %d, want %d", i, cum[i], w)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("cgra_runs_total", L("comp", `9 "PEs"`)).Add(3)
	r.Help("cgra_runs_total", "number of CGRA runs")
	r.Gauge("cgra_util", L("pe", "0")).Set(0.25)
	r.Histogram("cgra_lat_seconds", []float64{0.1, 1}).Observe(0.05)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP cgra_runs_total number of CGRA runs",
		"# TYPE cgra_runs_total counter",
		`cgra_runs_total{comp="9 \"PEs\""} 3`,
		"# TYPE cgra_util gauge",
		`cgra_util{pe="0"} 0.25`,
		"# TYPE cgra_lat_seconds histogram",
		`cgra_lat_seconds_bucket{le="0.1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `cgra_lat_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("exposition missing +Inf bucket in:\n%s", out)
	}
	if !strings.Contains(out, "cgra_lat_seconds_count 1") {
		t.Errorf("exposition missing histogram count in:\n%s", out)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(7)
	r.Gauge("b", L("pe", "1")).Set(1.5)
	r.Histogram("h", []float64{1}).Observe(2)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []MetricPoint `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(doc.Metrics) != 3 {
		t.Fatalf("got %d metrics, want 3", len(doc.Metrics))
	}
	byName := map[string]MetricPoint{}
	for _, m := range doc.Metrics {
		byName[m.Name] = m
	}
	if v := byName["a_total"].Value; v == nil || *v != 7 {
		t.Errorf("a_total = %v", v)
	}
	if byName["b"].Labels["pe"] != "1" {
		t.Errorf("b labels = %v", byName["b"].Labels)
	}
	h := byName["h"]
	if h.Count == nil || *h.Count != 1 || len(h.Buckets) != 1 {
		t.Errorf("h = %+v", h)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total", LInt("w", i%2)).Inc()
				r.Gauge("g").SetMax(float64(j))
				r.Histogram("h", []float64{100, 500}).Observe(float64(j))
			}
		}(i)
	}
	// Concurrent scrapes must not race with updates.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b strings.Builder
			_ = r.WritePrometheus(&b)
			_ = r.WriteJSON(&b)
		}()
	}
	wg.Wait()
	total := r.Counter("c_total", LInt("w", 0)).Value() + r.Counter("c_total", LInt("w", 1)).Value()
	if total != 8000 {
		t.Errorf("counter total = %d, want 8000", total)
	}
	if h := r.Histogram("h", nil); h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

func TestFormatFloat(t *testing.T) {
	if got := formatFloat(math.Inf(1)); got != "+Inf" {
		t.Errorf("formatFloat(+Inf) = %q", got)
	}
	if got := formatFloat(0.25); got != "0.25" {
		t.Errorf("formatFloat(0.25) = %q", got)
	}
}
