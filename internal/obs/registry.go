// Package obs is the repository's observability layer: a dependency-light
// metrics registry (counters, gauges, fixed-bucket histograms) exportable
// as Prometheus text exposition or JSON, plus hierarchical timed spans for
// compile-phase tracing (span.go).
//
// Everything is safe for concurrent use: counter and gauge updates are
// lock-free atomics, histogram observations take a per-series mutex, and
// series creation takes the registry mutex. A scrape (WritePrometheus,
// WriteJSON, ServeHTTP) therefore never blocks behind a hot update path.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension (e.g. {Key: "pe", Value: "3"}).
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// LInt builds a Label with an integer value.
func LInt(key string, value int) Label { return Label{Key: key, Value: strconv.Itoa(value)} }

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (negative deltas are ignored: counters
// only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add increments the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v when v exceeds the current value
// (high-water-mark semantics).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Exemplar links one bucket of a histogram to a concrete request: the
// trace ID of a sample that landed in it, with the sample's value and
// time. Tail buckets of cgra_server_request_seconds carry exemplars so a
// p99 spike resolves to fetchable traces (/debug/traces/{id}).
type Exemplar struct {
	TraceID string    `json:"trace_id"`
	Value   float64   `json:"value"`
	At      time.Time `json:"at"`
}

// Histogram is a fixed-bucket distribution metric. Buckets are upper
// bounds; an implicit +Inf bucket catches the rest.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64
	buckets []uint64 // len(bounds)+1, last is +Inf
	sum     float64
	count   uint64
	// exemplars holds the most recent exemplar per bucket (allocated on
	// the first traced observation).
	exemplars []Exemplar
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.ObserveTraced(v, "")
}

// ObserveTraced records one sample and, when traceID is non-empty, makes
// it the sample's bucket exemplar (last writer wins).
func (h *Histogram) ObserveTraced(v float64, traceID string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i]++
	h.sum += v
	h.count++
	if traceID != "" {
		if h.exemplars == nil {
			h.exemplars = make([]Exemplar, len(h.buckets))
		}
		h.exemplars[i] = Exemplar{TraceID: traceID, Value: v, At: time.Now()}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts, sum and count.
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.buckets))
	var running uint64
	for i, b := range h.buckets {
		running += b
		cum[i] = running
	}
	return cum, h.sum, h.count
}

// exemplarSnapshot copies the per-bucket exemplars (nil when none were
// ever recorded).
func (h *Histogram) exemplarSnapshot() []Exemplar {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.exemplars == nil {
		return nil
	}
	return append([]Exemplar(nil), h.exemplars...)
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// within the landing bucket, the standard Prometheus histogram_quantile
// estimate. The first bucket interpolates from 0; a quantile landing in
// the +Inf bucket reports the largest finite bound. Returns 0 with no
// observations.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	var cum float64
	for i, b := range h.buckets {
		if b == 0 {
			cum += float64(b)
			continue
		}
		if cum+float64(b) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: no upper edge to interpolate toward.
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (rank - cum) / float64(b)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(upper-lower)
		}
		cum += float64(b)
	}
	return h.bounds[len(h.bounds)-1]
}

// DefTimeBuckets are the default duration buckets, in seconds.
var DefTimeBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one (name, labels) time series.
type series struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64
	series map[string]*series
	order  []string // insertion-ordered series keys
}

// Registry holds metric families. The zero value is not usable; create
// with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Help attaches a help string to a metric family (shown as # HELP).
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		f.help = help
	}
}

func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('\x00')
		b.WriteString(l.Value)
		b.WriteByte('\x00')
	}
	return b.String()
}

func (r *Registry) getSeries(name string, kind metricKind, bounds []float64, labels []Label) *series {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := labelKey(sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, bounds: bounds, series: map[string]*series{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: sorted}
		switch kind {
		case kindCounter:
			s.ctr = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			b := f.bounds
			s.hist = &Histogram{bounds: b, buckets: make([]uint64, len(b)+1)}
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns (creating on first use) the counter with the given name
// and labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.getSeries(name, kindCounter, nil, labels).ctr
}

// Gauge returns (creating on first use) the gauge with the given name and
// labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.getSeries(name, kindGauge, nil, labels).gauge
}

// Histogram returns (creating on first use) the histogram with the given
// name, bucket upper bounds and labels. The bounds of the first call for a
// name win; they must be sorted ascending.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		bounds = DefTimeBuckets
	}
	return r.getSeries(name, kindHistogram, bounds, labels).hist
}

// escapeLabel escapes a label value for the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Key + `="` + escapeLabel(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// snapshotFamilies copies the family/series structure under the registry
// lock so exposition can format without holding it.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.order))
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		sc := make(map[string]*series, len(f.series))
		for k, s := range f.series {
			sc[k] = s
		}
		cp := &family{name: f.name, help: f.help, kind: f.kind, bounds: f.bounds,
			series: sc, order: append([]string(nil), f.order...)}
		out = append(out, cp)
	}
	return out
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, key := range f.order {
			s := f.series[key]
			switch f.kind {
			case kindCounter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(s.labels), s.ctr.Value()); err != nil {
					return err
				}
			case kindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(s.labels), formatFloat(s.gauge.Value())); err != nil {
					return err
				}
			case kindHistogram:
				cum, sum, count := s.hist.snapshot()
				for i, bound := range f.bounds {
					le := L("le", formatFloat(bound))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, formatLabels(s.labels, le), cum[i]); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, formatLabels(s.labels, L("le", "+Inf")), cum[len(cum)-1]); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, formatLabels(s.labels), formatFloat(sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, formatLabels(s.labels), count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// HistogramBucket is one cumulative bucket of a JSON histogram snapshot.
type HistogramBucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
	// Exemplar is the most recent traced sample that landed in this bucket
	// (absent when the histogram is not trace-wired).
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// MetricPoint is one series in a JSON snapshot.
type MetricPoint struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value holds the counter or gauge value (absent for histograms).
	Value *float64 `json:"value,omitempty"`
	// Histogram payload.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
	// Quantiles are estimated p50/p95/p99 values (linear interpolation
	// within buckets), present for histograms with at least one sample.
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// Snapshot returns every series as a MetricPoint, deterministically
// ordered by metric name then insertion order.
func (r *Registry) Snapshot() []MetricPoint {
	var out []MetricPoint
	for _, f := range r.snapshotFamilies() {
		for _, key := range f.order {
			s := f.series[key]
			p := MetricPoint{Name: f.name, Kind: f.kind.String()}
			if len(s.labels) > 0 {
				p.Labels = map[string]string{}
				for _, l := range s.labels {
					p.Labels[l.Key] = l.Value
				}
			}
			switch f.kind {
			case kindCounter:
				v := float64(s.ctr.Value())
				p.Value = &v
			case kindGauge:
				v := s.gauge.Value()
				p.Value = &v
			case kindHistogram:
				cum, sum, count := s.hist.snapshot()
				exemplars := s.hist.exemplarSnapshot()
				// The implicit +Inf bucket is omitted: encoding/json cannot
				// encode Inf, and its cumulative count equals Count.
				for i, bound := range f.bounds {
					b := HistogramBucket{LE: bound, Count: cum[i]}
					if exemplars != nil && exemplars[i].TraceID != "" {
						ex := exemplars[i]
						b.Exemplar = &ex
					}
					p.Buckets = append(p.Buckets, b)
				}
				p.Sum = &sum
				p.Count = &count
				if count > 0 {
					p.Quantiles = map[string]float64{
						"p50": s.hist.Quantile(0.50),
						"p95": s.hist.Quantile(0.95),
						"p99": s.hist.Quantile(0.99),
					}
				}
			}
			out = append(out, p)
		}
	}
	return out
}

// WriteJSON renders the registry as a JSON document {"metrics": [...]}.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []MetricPoint `json:"metrics"`
	}{r.Snapshot()})
}

// WriteFile dumps the registry to a file: JSON when format is "json",
// Prometheus text otherwise.
func (r *Registry) WriteFile(path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if format == "json" {
		err = r.WriteJSON(f)
	} else {
		err = r.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ServeHTTP exposes the registry as a scrape endpoint: Prometheus text by
// default, JSON with ?format=json.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}
