// Request tracing: a 128-bit trace identity plus a span tree, carried
// through context.Context so one request produces a single coherent tree
// across layers — server admission, system dispatch, cache lookups, the
// compile pipeline's phases, and engine execution. Instrumented code asks
// the context for the active span (ContextSpan / StartSpanCtx); outside a
// traced request the active span is nil and every span method is a no-op,
// so tracing costs nothing when unused.
package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit request identity, rendered as 32 lowercase hex
// digits. It is carried across nodes in the X-Trace-Id header, so traces
// of one logical request compose across a fleet.
type TraceID [16]byte

// String renders the ID as 32 hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports the all-zero (absent) ID.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// fallbackSeq desynchronizes fallback IDs if crypto/rand ever fails.
var fallbackSeq atomic.Uint64

// NewTraceID draws a fresh random 128-bit ID.
func NewTraceID() TraceID {
	var id TraceID
	if _, err := crand.Read(id[:]); err != nil {
		// crypto/rand does not fail on supported platforms; keep a
		// deterministic-but-unique fallback anyway.
		binary.BigEndian.PutUint64(id[:8], uint64(time.Now().UnixNano()))
		binary.BigEndian.PutUint64(id[8:], fallbackSeq.Add(1))
	}
	return id
}

// ParseTraceID parses a 32-hex-digit trace ID.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 2*len(id) {
		return id, fmt.Errorf("obs: trace ID %q: want %d hex digits", s, 2*len(id))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("obs: trace ID %q: %v", s, err)
	}
	return id, nil
}

// Trace is one end-to-end request: an identity plus the root of its span
// tree. The root span's clock is the request wall time; everything the
// request touches hangs below it. Safe for concurrent use.
type Trace struct {
	ID TraceID
	// Endpoint names the request class ("run", "compile", ...): the key the
	// flight recorder's slowest-trace reservoirs are bucketed by.
	Endpoint string
	Root     *Span

	mu     sync.Mutex
	status int
	done   bool
}

// NewTrace opens a trace: the root span starts immediately.
func NewTrace(id TraceID, endpoint, rootName string) *Trace {
	return &Trace{ID: id, Endpoint: endpoint, Root: StartSpan(rootName)}
}

// Finish closes the trace with a status code (an HTTP status for server
// traces). Finishing twice keeps the first status.
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	t.Root.Finish()
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.done {
		t.done = true
		t.status = status
	}
}

// Done reports whether the trace has finished.
func (t *Trace) Done() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// Status returns the finish status (0 while in flight).
func (t *Trace) Status() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Start returns the trace's start time.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.Root.Start()
}

// Duration returns the trace's wall time (time since start while in
// flight).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	return t.Root.Duration()
}

type traceCtxKey struct{}
type spanCtxKey struct{}

// WithTrace attaches a trace to the context and makes its root the active
// span.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, traceCtxKey{}, t)
	return context.WithValue(ctx, spanCtxKey{}, t.Root)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// ContextSpan returns the context's active span, or nil outside a traced
// request. The nil span is a valid no-op receiver for every Span method,
// so callers never need to branch.
func ContextSpan(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartSpanCtx opens a child of the context's active span and returns a
// derived context with the child active. Outside a traced request it
// returns (ctx, nil) without allocating; the nil child absorbs every
// operation, Finish included.
func StartSpanCtx(ctx context.Context, name string) (context.Context, *Span) {
	parent := ContextSpan(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.StartChild(name)
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// EventCtx records a point event on the context's active span (no-op
// outside a traced request).
func EventCtx(ctx context.Context, name, note string) {
	ContextSpan(ctx).Event(name, note)
}
