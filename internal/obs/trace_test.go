package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("fresh trace ID is zero")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("String() = %q, want 32 hex digits", s)
	}
	back, err := ParseTraceID(s)
	if err != nil {
		t.Fatalf("ParseTraceID(%q): %v", s, err)
	}
	if back != id {
		t.Fatalf("round trip: %v != %v", back, id)
	}
}

func TestParseTraceIDRejectsBadInput(t *testing.T) {
	for _, bad := range []string{"", "abc", strings.Repeat("a", 31), strings.Repeat("a", 33), strings.Repeat("z", 32)} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
	zero, err := ParseTraceID(strings.Repeat("0", 32))
	if err != nil {
		t.Fatalf("all-zero ID should parse: %v", err)
	}
	if !zero.IsZero() {
		t.Fatal("parsed all-zero ID is not IsZero")
	}
}

func TestNewTraceIDsDistinct(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %s after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != nil {
		t.Fatal("TraceFrom on bare context is non-nil")
	}
	if ContextSpan(ctx) != nil {
		t.Fatal("ContextSpan on bare context is non-nil")
	}
	// Outside a trace, StartSpanCtx must not allocate a span or derive a
	// new context.
	ctx2, sp := StartSpanCtx(ctx, "phase")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpanCtx outside a trace should return (ctx, nil)")
	}
	EventCtx(ctx, "noop", "") // must not panic

	tr := NewTrace(NewTraceID(), "run", "server.run")
	ctx = WithTrace(ctx, tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}
	if ContextSpan(ctx) != tr.Root {
		t.Fatal("root span is not the active span")
	}
	ctx3, child := StartSpanCtx(ctx, "phase")
	if child == nil {
		t.Fatal("StartSpanCtx inside a trace returned nil")
	}
	if ContextSpan(ctx3) != child {
		t.Fatal("child is not active in the derived context")
	}
	if ContextSpan(ctx) != tr.Root {
		t.Fatal("parent context's active span changed")
	}
	EventCtx(ctx3, "tick", "note")
	evs := child.Events()
	if len(evs) != 1 || evs[0].Name != "tick" || evs[0].Note != "note" {
		t.Fatalf("events = %+v, want one tick", evs)
	}
}

func TestTraceFinishIdempotent(t *testing.T) {
	tr := NewTrace(NewTraceID(), "run", "server.run")
	if tr.Done() {
		t.Fatal("fresh trace reports done")
	}
	tr.Finish(200)
	tr.Finish(500)
	if !tr.Done() {
		t.Fatal("finished trace not done")
	}
	if got := tr.Status(); got != 200 {
		t.Fatalf("status = %d, want first-writer 200", got)
	}
	d := tr.Duration()
	if d2 := tr.Duration(); d2 != d {
		t.Fatalf("finished duration moved: %v then %v", d, d2)
	}
}

// TestSpanConcurrentHammer drives every Span mutator and reader from many
// goroutines at once; run under -race it proves the span tree is safe to
// share across the layers a request traverses.
func TestSpanConcurrentHammer(t *testing.T) {
	tr := NewTrace(NewTraceID(), "run", "root")
	root := tr.Root
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c := root.StartChild(fmt.Sprintf("w%d.%d", w, i))
				c.Set("iter", int64(i))
				c.Set("iter", int64(i+1)) // overwrite path
				c.Annotate("worker", fmt.Sprintf("w%d", w))
				c.Event("tick", "")
				g := c.StartChild("inner")
				g.Finish()
				c.Finish()
			}
		}(w)
	}
	// Concurrent readers: walkers and exporters race the writers above.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := 0
				root.Walk(func(string, *Span) { n++ })
				_ = root.Duration()
				_ = tr.Export()
			}
		}()
	}
	wg.Wait()
	tr.Finish(200)
	if got := len(root.Children()); got != workers*iters {
		t.Fatalf("children = %d, want %d", got, workers*iters)
	}
	var leaves int
	root.Walk(func(path string, sp *Span) {
		if strings.HasSuffix(path, "/inner") {
			leaves++
		}
	})
	if leaves != workers*iters {
		t.Fatalf("inner spans = %d, want %d", leaves, workers*iters)
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	if c := s.StartChild("x"); c != nil {
		t.Fatal("nil StartChild returned a span")
	}
	s.Finish()
	s.Set("n", 1)
	s.Annotate("a", "b")
	s.Event("e", "")
	if s.Duration() != 0 || s.Done() || s.Metrics() != nil || s.Attrs() != nil || s.Events() != nil || s.Children() != nil {
		t.Fatal("nil span leaked state")
	}
	ran := false
	s.Timed("t", func(sp *Span) { ran = true })
	if !ran {
		t.Fatal("Timed on nil span skipped fn")
	}
}
