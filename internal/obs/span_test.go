package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := StartSpan("compile")
	a := root.StartChild("unroll")
	a.Set("stmts", 41)
	time.Sleep(time.Millisecond)
	a.Finish()
	b := root.StartChild("sched")
	r := b.StartChild("route")
	r.Finish()
	b.Set("nodes", 172)
	b.Finish()
	root.Finish()

	if d := a.Duration(); d <= 0 {
		t.Errorf("child duration = %v, want > 0", d)
	}
	if root.Duration() < a.Duration() {
		t.Error("root shorter than child")
	}

	var paths []string
	root.Walk(func(path string, sp *Span) { paths = append(paths, path) })
	want := []string{"compile", "compile/unroll", "compile/sched", "compile/sched/route"}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("path[%d] = %q, want %q", i, paths[i], want[i])
		}
	}

	var txt strings.Builder
	root.WriteText(&txt)
	for _, needle := range []string{"compile", "unroll", "stmts=41", "nodes=172", "route"} {
		if !strings.Contains(txt.String(), needle) {
			t.Errorf("text report missing %q:\n%s", needle, txt.String())
		}
	}
}

func TestSpanSetOverwrites(t *testing.T) {
	s := StartSpan("x")
	s.Set("n", 1)
	s.Set("n", 2)
	ms := s.Metrics()
	if len(ms) != 1 || ms[0].Value != 2 {
		t.Errorf("metrics = %v, want single n=2", ms)
	}
}

func TestSpanExport(t *testing.T) {
	root := StartSpan("compile")
	c := root.StartChild("cdfg")
	c.Set("nodes", 7)
	c.Finish()
	root.Finish()

	reg := NewRegistry()
	root.Export(reg, "cgra_compile")

	if v := reg.Gauge("cgra_compile_phase_seconds", L("phase", "total")).Value(); v <= 0 {
		t.Errorf("total phase seconds = %v, want > 0", v)
	}
	if v := reg.Gauge("cgra_compile_phase_seconds", L("phase", "cdfg")).Value(); v < 0 {
		t.Errorf("cdfg phase seconds = %v", v)
	}
	if v := reg.Gauge("cgra_compile_phase_metric", L("phase", "cdfg"), L("metric", "nodes")).Value(); v != 7 {
		t.Errorf("cdfg nodes metric = %v, want 7", v)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `cgra_compile_phase_seconds{phase="cdfg"}`) {
		t.Errorf("prometheus export missing phase series:\n%s", b.String())
	}
}

func TestSpanTimed(t *testing.T) {
	root := StartSpan("r")
	ran := false
	c := root.Timed("work", func(sp *Span) {
		ran = true
		sp.Set("k", 3)
	})
	if !ran {
		t.Fatal("Timed did not run fn")
	}
	if c.Metrics()[0].Value != 3 {
		t.Error("Timed span lost metric")
	}
	if len(root.Children()) != 1 {
		t.Error("Timed did not attach child")
	}
}
