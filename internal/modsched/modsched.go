// Package modsched implements an iterative modulo scheduler (Rau-style) for
// inhomogeneous, irregularly-routed CGRA compositions. The problem is
// abstract — operations with candidate-PE sets, dependence edges with
// iteration distances, a routing-distance oracle — so the package has no
// dependency on the CDFG or architecture layers; internal/sched extracts a
// Problem from an eligible loop body and realizes the Solution as contexts.
//
// The solver searches II = MII, MII+1, … (MII = max(ResMII, RecMII)). Each
// attempt places operations in height-priority order into a modulo
// reservation table over PE issue slots, routing-output ports, and the
// C-Box consume port, with budget-bounded eject-and-retry backtracking.
// When an operation cannot reach a fixed partner within the one-hop routing
// constraint, the solver splits the dependence edge with a MOVE copy op —
// the modulo-time analogue of the list scheduler's routing-copy insertion.
package modsched

import (
	"context"
	"fmt"
	"sort"
)

// Op is one operation of the loop body.
type Op struct {
	// ID indexes the op in Problem.Ops (and, for copies the solver adds,
	// extends that numbering densely).
	ID int
	// Name labels the op in diagnostics.
	Name string
	// Dur is the issue-to-result latency. It must be uniform across Cand
	// (callers filter candidates to the op's minimum duration).
	Dur int
	// Cand lists candidate PEs in preference order. A single-element Cand
	// pins the op (home-fused writes, for instance).
	Cand []int
	// CopyOf is -1 for caller ops; for solver-inserted copies it names the
	// op whose result value this MOVE forwards.
	CopyOf int
	// UsesCBox marks ops that occupy the C-Box consume port at their
	// finish slot (compares feeding predication; unused by plain bodies).
	UsesCBox bool
}

// Edge is a dependence arc From → To with iteration distance Dist: the
// reader's issue must satisfy
//
//	finish(From) + 1 ≤ issue(To) + Dist·II ≤ finish(From) + II
//
// The lower bound is value availability; the upper bound keeps the value's
// lifetime within one II so a single pinned register per op suffices (no
// modulo variable expansion). Additionally the reader's PE must be within
// routing distance 1 of the writer's PE.
type Edge struct {
	From, To int
	Dist     int
}

// Problem describes one loop body to modulo-schedule.
type Problem struct {
	// NumPEs is the composition size; PE indices are 0..NumPEs-1.
	NumPEs int
	// Dist is the directed routing distance oracle: Dist(a, b) is the hop
	// count for b reading a's output (0 = same PE, 1 = direct neighbor).
	Dist func(a, b int) int
	// Ops are the loop-body operations. IDs must equal slice indices.
	Ops []Op
	// Edges are the dependence arcs over Ops.
	Edges []Edge
	// MoveCand lists PEs able to host inserted routing copies.
	MoveCand []int
	// MoveDur is the latency of a routing copy (typically 1).
	MoveDur int
	// SubCand/CmpCand list PEs able to host the loop-control decrement and
	// compare. The pair must be routing-adjacent (the compare reads the
	// decremented counter over the routing network) and shares one kernel
	// slot m0 with m0 ≤ II-SubDur and m0+CmpDur-1 ≤ II-2 so the compare's
	// C-Box consume lands before the conditional back-jump at slot II-1.
	SubCand, CmpCand []int
	SubDur, CmpDur   int
	// MaxII bounds the search (0 = MII + 12).
	MaxII int
	// Budget bounds ejections per II attempt (0 = 16 + 8·len(Ops)).
	Budget int
	// MaxCopies bounds inserted routing copies per II attempt
	// (0 = 8 + 4·len(Ops)).
	MaxCopies int
}

// Attempt records one II attempt for diagnostics.
type Attempt struct {
	II        int
	Placed    int
	Ejections int
	Copies    int
	// Err is empty on the successful attempt.
	Err string
}

// Solution is a feasible modulo schedule.
type Solution struct {
	II, MII, ResMII, RecMII int
	// Stages is ⌈max over ops of (Time+Dur)⌉/II: the software-pipeline
	// depth (number of overlapped iterations).
	Stages int
	// Ops extends Problem.Ops with inserted routing copies.
	Ops []Op
	// Edges is the final edge set after copy insertion.
	Edges []Edge
	// Time and PE give each op's schedule time within the flattened
	// iteration (0 ≤ Time, stage = Time/II, slot = Time%II) and placement.
	Time, PE []int
	// CtrlSlot, SubPE, CmpPE place the loop-control pair: the counter
	// decrement on SubPE and the exit compare on CmpPE, both at kernel
	// slot CtrlSlot.
	CtrlSlot, SubPE, CmpPE int
	// Backtracks totals ejections across all II attempts.
	Backtracks int
	// Attempts lists every II tried, including the successful one.
	Attempts []Attempt
}

// NoScheduleError reports an exhausted II search with its diagnostics.
type NoScheduleError struct {
	MII, ResMII, RecMII int
	Attempts            []Attempt
	Backtracks          int
}

func (e *NoScheduleError) Error() string {
	last := ""
	if n := len(e.Attempts); n > 0 {
		last = ": " + e.Attempts[n-1].Err
	}
	return fmt.Sprintf("modsched: no schedule up to II=%d (MII=%d, res=%d, rec=%d, %d attempts, %d ejections)%s",
		e.MII+len(e.Attempts)-1, e.MII, e.ResMII, e.RecMII, len(e.Attempts), e.Backtracks, last)
}

// fixedCost makes ejecting a pinned op (|Cand| == 1) effectively forbidden
// in min-conflict selection; an all-pinned conflict set triggers routing
// copy insertion instead.
const fixedCost = 1 << 16

// Solve searches for a minimum-II modulo schedule. On failure it returns a
// *NoScheduleError (or the context's error when cancelled; cancellation is
// checked per II attempt and per backtrack budget slice).
func Solve(ctx context.Context, p *Problem) (*Solution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	resMII := p.resMII()
	recMII := p.recMII()
	mii := resMII
	if recMII > mii {
		mii = recMII
	}
	for _, o := range p.Ops {
		if o.Dur > mii {
			mii = o.Dur // a value's lifetime may not exceed II
		}
	}
	if min := p.SubDur + p.CmpDur; min > mii {
		mii = min // control pair: m0 ≥ 0, consume ≤ II-2, back-jump at II-1
	}
	if mii < 2 {
		mii = 2
	}
	maxII := p.MaxII
	if maxII <= 0 {
		maxII = mii + 12
	}
	var attempts []Attempt
	backtracks := 0
	for ii := mii; ii <= maxII; ii++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("modsched: II search cancelled at II=%d: %w", ii, err)
		}
		st := newAttempt(p, ii)
		sol, a := st.run(ctx)
		attempts = append(attempts, a)
		backtracks += a.Ejections
		if a.Err == "cancelled" {
			return nil, fmt.Errorf("modsched: II=%d attempt cancelled: %w", ii, ctx.Err())
		}
		if sol != nil {
			sol.MII, sol.ResMII, sol.RecMII = mii, resMII, recMII
			sol.Backtracks = backtracks
			sol.Attempts = attempts
			return sol, nil
		}
	}
	return nil, &NoScheduleError{MII: mii, ResMII: resMII, RecMII: recMII, Attempts: attempts, Backtracks: backtracks}
}

func (p *Problem) validate() error {
	if p.NumPEs <= 0 || p.Dist == nil {
		return fmt.Errorf("modsched: composition not described")
	}
	if len(p.Ops) == 0 {
		return fmt.Errorf("modsched: empty loop body")
	}
	for i, o := range p.Ops {
		if o.ID != i {
			return fmt.Errorf("modsched: op %d has ID %d", i, o.ID)
		}
		if len(o.Cand) == 0 {
			return fmt.Errorf("modsched: op %s has no candidate PEs", o.Name)
		}
		if o.Dur <= 0 {
			return fmt.Errorf("modsched: op %s has duration %d", o.Name, o.Dur)
		}
	}
	for _, e := range p.Edges {
		if e.From < 0 || e.From >= len(p.Ops) || e.To < 0 || e.To >= len(p.Ops) {
			return fmt.Errorf("modsched: edge %d→%d out of range", e.From, e.To)
		}
		if e.Dist < 0 {
			return fmt.Errorf("modsched: edge %d→%d has negative distance", e.From, e.To)
		}
	}
	if len(p.SubCand) == 0 || len(p.CmpCand) == 0 {
		return fmt.Errorf("modsched: no candidates for the loop-control pair")
	}
	if p.SubDur <= 0 || p.CmpDur <= 0 {
		return fmt.Errorf("modsched: control durations not set")
	}
	if len(p.MoveCand) == 0 || p.MoveDur <= 0 {
		return fmt.Errorf("modsched: routing-copy description missing")
	}
	return nil
}

// resMII is the resource-constrained II bound: total issue slots demanded
// (body + control pair) over the composition, and per candidate-class
// pressure for ops restricted to a PE subset (DMA loads, pinned writes).
func (p *Problem) resMII() int {
	total := p.SubDur + p.CmpDur
	classes := map[string]*[2]int{} // candidate-set key → {demand, |set|}
	for _, o := range p.Ops {
		total += o.Dur
		key := fmt.Sprint(o.Cand)
		c := classes[key]
		if c == nil {
			c = &[2]int{0, len(o.Cand)}
			classes[key] = c
		}
		c[0] += o.Dur
	}
	mii := ceilDiv(total, p.NumPEs)
	for _, c := range classes {
		if m := ceilDiv(c[0], c[1]); m > mii {
			mii = m
		}
	}
	return mii
}

// recMII is the recurrence bound: the smallest II for which the dependence
// constraint system issue(To) ≥ issue(From) + Dur(From) - Dist·II has no
// positive cycle (found by binary search with Bellman-Ford style
// relaxation; a circuit forces II ≥ ⌈Σdur/Σdist⌉).
func (p *Problem) recMII() int {
	sum := 0
	for _, o := range p.Ops {
		sum += o.Dur
	}
	lo, hi := 1, sum
	if hi < 1 {
		hi = 1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if p.recFeasible(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func (p *Problem) recFeasible(ii int) bool {
	n := len(p.Ops)
	t := make([]int, n)
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, e := range p.Edges {
			w := p.Ops[e.From].Dur - e.Dist*ii
			if t[e.From]+w > t[e.To] {
				t[e.To] = t[e.From] + w
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	// One more sweep: still relaxing after n iterations ⇒ positive cycle.
	for _, e := range p.Edges {
		if t[e.From]+p.Ops[e.From].Dur-e.Dist*ii > t[e.To] {
			return false
		}
	}
	return true
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// attempt is the mutable state of one II attempt.
type attempt struct {
	p  *Problem
	ii int

	ops   []Op
	edges []Edge
	in    [][]int // edge indices entering each op
	out   [][]int // edge indices leaving each op

	time       []int // -1 while unplaced
	pe         []int
	wasEjected []bool
	prevTime   []int
	height     []int

	ejections int
	copies    int
	budget    int
	maxCopies int
}

func newAttempt(p *Problem, ii int) *attempt {
	st := &attempt{p: p, ii: ii}
	st.ops = append([]Op(nil), p.Ops...)
	st.edges = append([]Edge(nil), p.Edges...)
	st.budget = p.Budget
	if st.budget <= 0 {
		st.budget = 16 + 8*len(p.Ops)
	}
	st.maxCopies = p.MaxCopies
	if st.maxCopies <= 0 {
		st.maxCopies = 8 + 4*len(p.Ops)
	}
	st.rebuild()
	return st
}

// rebuild refreshes adjacency, placement arrays, and heights after the op
// set changes (attempt start and copy insertion). Existing placements are
// preserved.
func (st *attempt) rebuild() {
	n := len(st.ops)
	st.in = make([][]int, n)
	st.out = make([][]int, n)
	for i, e := range st.edges {
		st.out[e.From] = append(st.out[e.From], i)
		st.in[e.To] = append(st.in[e.To], i)
	}
	grow := func(s []int, v int) []int {
		for len(s) < n {
			s = append(s, v)
		}
		return s
	}
	st.time = grow(st.time, -1)
	st.pe = grow(st.pe, -1)
	st.prevTime = grow(st.prevTime, -1)
	for len(st.wasEjected) < n {
		st.wasEjected = append(st.wasEjected, false)
	}
	// Height priority: h(op) = Dur + max over out-edges of h(To) - Dist·II,
	// by relaxation (converges when II ≥ RecMII; capped defensively).
	st.height = make([]int, n)
	for i := range st.height {
		st.height[i] = st.ops[i].Dur
	}
	for iter := 0; iter < 2*n+4; iter++ {
		changed := false
		for _, e := range st.edges {
			h := st.ops[e.From].Dur + st.height[e.To] - e.Dist*st.ii
			if h > st.height[e.From] {
				st.height[e.From] = h
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func (st *attempt) fin(op int) int { return st.time[op] + st.ops[op].Dur - 1 }

// horizon bounds schedule times; exceeding it means the attempt diverged.
func (st *attempt) horizon() int { return st.ii * (len(st.ops) + 4) }

// run executes the placement loop for this II.
func (st *attempt) run(ctx context.Context) (*Solution, Attempt) {
	a := Attempt{II: st.ii}
	fail := func(msg string) (*Solution, Attempt) {
		a.Err = msg
		a.Placed = st.placedCount()
		a.Ejections = st.ejections
		a.Copies = st.copies
		return nil, a
	}
	iter := 0
	for {
		op := st.nextUnplaced()
		if op < 0 {
			break
		}
		if iter%16 == 0 {
			if ctx.Err() != nil {
				return fail("cancelled")
			}
		}
		iter++
		e := st.earliest(op)
		if e > st.horizon() {
			return fail(fmt.Sprintf("op %s pushed past horizon", st.ops[op].Name))
		}
		if t, pe, ok := st.findFree(op, e); ok {
			st.place(op, t, pe)
			continue
		}
		// Forced placement: min-conflict over the window, pinned conflicts
		// effectively forbidden.
		t, pe, conf, cost := st.findForced(op, e)
		if cost >= fixedCost {
			// Every slot collides with a pinned op. If the collision is a
			// routing-adjacency violation, a copy op can bridge the hop.
			if ei, ok := st.blockedEdge(op); ok {
				if st.copies >= st.maxCopies {
					return fail("routing-copy budget exhausted")
				}
				st.insertCopy(ei)
				continue
			}
			if conf == nil {
				return fail(fmt.Sprintf("op %s has no placement", st.ops[op].Name))
			}
		}
		if conf == nil {
			return fail(fmt.Sprintf("op %s has no placement", st.ops[op].Name))
		}
		for _, q := range conf {
			st.eject(q)
		}
		st.ejections += len(conf)
		if st.ejections > st.budget {
			return fail("backtrack budget exhausted")
		}
		st.place(op, t, pe)
	}
	// Loop-control pair on top of the placed body.
	m0, psub, pcmp, ok := st.placeControl()
	if !ok {
		return fail("no slot for the loop-control pair")
	}
	a.Placed = st.placedCount()
	a.Ejections = st.ejections
	a.Copies = st.copies
	maxEnd := 0
	for i := range st.ops {
		if end := st.time[i] + st.ops[i].Dur; end > maxEnd {
			maxEnd = end
		}
	}
	return &Solution{
		II:       st.ii,
		Stages:   ceilDiv(maxEnd, st.ii),
		Ops:      st.ops,
		Edges:    st.edges,
		Time:     st.time,
		PE:       st.pe,
		CtrlSlot: m0,
		SubPE:    psub,
		CmpPE:    pcmp,
	}, a
}

func (st *attempt) placedCount() int {
	n := 0
	for _, t := range st.time {
		if t >= 0 {
			n++
		}
	}
	return n
}

// nextUnplaced picks the unplaced op with maximum height (ties: lowest ID).
func (st *attempt) nextUnplaced() int {
	best := -1
	for i := range st.ops {
		if st.time[i] >= 0 {
			continue
		}
		if best < 0 || st.height[i] > st.height[best] {
			best = i
		}
	}
	return best
}

// earliest computes the op's lower time bound from placed neighbors, plus
// Rau's progress rule: after an ejection, re-placement starts strictly
// after the previous time so the search cannot cycle.
func (st *attempt) earliest(op int) int {
	e := 0
	for _, ei := range st.in[op] {
		ed := st.edges[ei]
		if st.time[ed.From] < 0 {
			continue
		}
		if lb := st.fin(ed.From) + 1 - ed.Dist*st.ii; lb > e {
			e = lb
		}
	}
	for _, ei := range st.out[op] {
		ed := st.edges[ei]
		if st.time[ed.To] < 0 {
			continue
		}
		// Lifetime upper bound as a lower bound on the writer's time:
		// issue(To) + Dist·II ≤ fin(op) + II.
		if lb := st.time[ed.To] + ed.Dist*st.ii - st.ii - st.ops[op].Dur + 1; lb > e {
			e = lb
		}
	}
	if st.wasEjected[op] && st.prevTime[op] >= e {
		e = st.prevTime[op] + 1
	}
	return e
}

// candOrder returns the op's candidate PEs, adjacency-satisfying ones
// first (fewest total hop count to placed partners), preserving the
// caller's preference order among equals.
func (st *attempt) candOrder(op int) []int {
	type scored struct{ pe, score, idx int }
	var cs []scored
	for idx, pe := range st.ops[op].Cand {
		score := 0
		for _, ei := range st.in[op] {
			ed := st.edges[ei]
			if st.time[ed.From] >= 0 {
				score += st.p.Dist(st.pe[ed.From], pe)
			}
		}
		for _, ei := range st.out[op] {
			ed := st.edges[ei]
			if st.time[ed.To] >= 0 {
				score += st.p.Dist(pe, st.pe[ed.To])
			}
		}
		cs = append(cs, scored{pe, score, idx})
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].score != cs[j].score {
			return cs[i].score < cs[j].score
		}
		return cs[i].idx < cs[j].idx
	})
	out := make([]int, len(cs))
	for i, c := range cs {
		out[i] = c.pe
	}
	return out
}

// findFree scans the II-wide window from e for a conflict-free placement.
func (st *attempt) findFree(op, e int) (int, int, bool) {
	order := st.candOrder(op)
	hz := st.horizon()
	for t := e; t < e+st.ii && t <= hz; t++ {
		for _, pe := range order {
			if len(st.conflicts(op, t, pe)) == 0 {
				return t, pe, true
			}
		}
	}
	return 0, 0, false
}

// findForced scans the same window for the min-cost conflict set.
func (st *attempt) findForced(op, e int) (int, int, []int, int) {
	bestCost := int(^uint(0) >> 1)
	var bestT, bestPE int
	var bestConf []int
	order := st.candOrder(op)
	hz := st.horizon()
	for t := e; t < e+st.ii && t <= hz; t++ {
		for _, pe := range order {
			conf := st.conflicts(op, t, pe)
			cost := 0
			for _, q := range conf {
				if len(st.ops[q].Cand) == 1 {
					cost += fixedCost
				} else {
					cost++
				}
			}
			if cost < bestCost {
				bestCost, bestT, bestPE = cost, t, pe
				bestConf = conf
			}
		}
	}
	return bestT, bestPE, bestConf, bestCost
}

// conflicts lists placed ops that collide with placing op at (t, pe):
// dependence-window violations, modulo issue-slot overlaps on the PE,
// routing-output port collisions, C-Box port collisions, and
// routing-adjacency violations. Each colliding partner is listed, since
// ejecting it could re-place it compatibly.
func (st *attempt) conflicts(op, t, pe int) []int {
	var conf []int
	seen := map[int]bool{}
	add := func(q int) {
		if !seen[q] {
			seen[q] = true
			conf = append(conf, q)
		}
	}
	slots := func(t0, dur int) map[int]bool {
		m := map[int]bool{}
		for d := 0; d < dur; d++ {
			m[(t0+d)%st.ii] = true
		}
		return m
	}
	// Dependence windows against placed partners:
	// fin(W)+1 ≤ issue(R)+Dist·II ≤ fin(W)+II.
	fin := t + st.ops[op].Dur - 1
	for _, ei := range st.in[op] {
		ed := st.edges[ei]
		if st.time[ed.From] < 0 {
			continue
		}
		r := t + ed.Dist*st.ii
		if r < st.fin(ed.From)+1 || r > st.fin(ed.From)+st.ii {
			add(ed.From)
		}
	}
	for _, ei := range st.out[op] {
		ed := st.edges[ei]
		if st.time[ed.To] < 0 {
			continue
		}
		r := st.time[ed.To] + ed.Dist*st.ii
		if r < fin+1 || r > fin+st.ii {
			add(ed.To)
		}
	}
	mine := slots(t, st.ops[op].Dur)
	for q := range st.ops {
		if q == op || st.time[q] < 0 || st.pe[q] != pe {
			continue
		}
		for d := 0; d < st.ops[q].Dur; d++ {
			if mine[(st.time[q]+d)%st.ii] {
				add(q)
				break
			}
		}
	}
	// Routing adjacency against placed partners.
	for _, ei := range st.in[op] {
		ed := st.edges[ei]
		if st.time[ed.From] >= 0 && st.pe[ed.From] != pe && st.p.Dist(st.pe[ed.From], pe) > 1 {
			add(ed.From)
		}
	}
	for _, ei := range st.out[op] {
		ed := st.edges[ei]
		if st.time[ed.To] >= 0 && st.pe[ed.To] != pe && st.p.Dist(pe, st.pe[ed.To]) > 1 {
			add(ed.To)
		}
	}
	// Routing-output port: a PE's output register holds one value per
	// modulo slot; every cross-PE reader of op's value claims (pe,
	// reader-slot), and op's own cross-PE reads claim the writer's port.
	type claim struct{ pe, slot, owner int }
	var claims []claim
	for i, ed := range st.edges {
		_ = i
		wr, rd := ed.From, ed.To
		var wpe, rslot, owner int
		switch {
		case wr == op && st.time[rd] >= 0:
			wpe, rslot, owner = pe, st.time[rd]%st.ii, op
			if st.pe[rd] == pe {
				continue
			}
		case rd == op && st.time[wr] >= 0:
			wpe, rslot, owner = st.pe[wr], t%st.ii, wr
			if wpe == pe {
				continue
			}
		case st.time[wr] >= 0 && st.time[rd] >= 0 && st.pe[wr] != st.pe[rd]:
			wpe, rslot, owner = st.pe[wr], st.time[rd]%st.ii, wr
		default:
			continue
		}
		claims = append(claims, claim{wpe, rslot, owner})
	}
	for i := 0; i < len(claims); i++ {
		for j := i + 1; j < len(claims); j++ {
			a, b := claims[i], claims[j]
			if a.pe == b.pe && a.slot == b.slot && a.owner != b.owner {
				// Blame the placed participant that is not the op being
				// placed.
				if a.owner != op {
					add(a.owner)
				}
				if b.owner != op {
					add(b.owner)
				}
			}
		}
	}
	// C-Box consume port: one per modulo slot.
	if st.ops[op].UsesCBox {
		myslot := (t + st.ops[op].Dur - 1) % st.ii
		for q := range st.ops {
			if q != op && st.time[q] >= 0 && st.ops[q].UsesCBox &&
				(st.time[q]+st.ops[q].Dur-1)%st.ii == myslot {
				add(q)
			}
		}
	}
	sort.Ints(conf)
	return conf
}

// blockedEdge finds a dependence edge of op whose placed partner is
// unreachable (hop distance > 1) from every candidate PE of op — the
// signature of a topology block that a routing copy resolves. Edges whose
// partner is pinned are preferred (ejecting it can never help).
func (st *attempt) blockedEdge(op int) (int, bool) {
	best, bestPinned := -1, false
	consider := func(ei int, partner int) {
		blocked := true
		for _, pe := range st.ops[op].Cand {
			ed := st.edges[ei]
			var d int
			if ed.To == op {
				d = st.p.Dist(st.pe[partner], pe)
			} else {
				d = st.p.Dist(pe, st.pe[partner])
			}
			if d <= 1 {
				blocked = false
				break
			}
		}
		if !blocked {
			return
		}
		pinned := len(st.ops[partner].Cand) == 1
		if best < 0 || (pinned && !bestPinned) {
			best, bestPinned = ei, pinned
		}
	}
	for _, ei := range st.in[op] {
		if st.time[st.edges[ei].From] >= 0 {
			consider(ei, st.edges[ei].From)
		}
	}
	for _, ei := range st.out[op] {
		if st.time[st.edges[ei].To] >= 0 {
			consider(ei, st.edges[ei].To)
		}
	}
	if best >= 0 {
		return best, true
	}
	// Fall back to any edge towards a pinned partner that at least one
	// candidate cannot reach: pressure cases where the only in-reach
	// candidate is saturated by pinned ops.
	check := func(ei int, partner int) {
		ed := st.edges[ei]
		if len(st.ops[partner].Cand) != 1 {
			return
		}
		for _, pe := range st.ops[op].Cand {
			var d int
			if ed.To == op {
				d = st.p.Dist(st.pe[partner], pe)
			} else {
				d = st.p.Dist(pe, st.pe[partner])
			}
			if d > 1 && best < 0 {
				best = ei
			}
		}
	}
	for _, ei := range st.in[op] {
		if st.time[st.edges[ei].From] >= 0 {
			check(ei, st.edges[ei].From)
		}
	}
	for _, ei := range st.out[op] {
		if st.time[st.edges[ei].To] >= 0 {
			check(ei, st.edges[ei].To)
		}
	}
	return best, best >= 0
}

// insertCopy splits edge ei (W→R, distance D) into W→C (distance D) and
// C→R (distance 0) with a fresh MOVE op C that may live on any
// move-capable PE. The consumer-side values and timings re-derive from the
// updated edge set on subsequent placements.
func (st *attempt) insertCopy(ei int) {
	ed := st.edges[ei]
	c := Op{
		ID:     len(st.ops),
		Name:   fmt.Sprintf("copy(%s→%s)", st.ops[ed.From].Name, st.ops[ed.To].Name),
		Dur:    st.p.MoveDur,
		Cand:   st.p.MoveCand,
		CopyOf: ed.From,
	}
	st.ops = append(st.ops, c)
	st.edges[ei] = Edge{From: ed.From, To: c.ID, Dist: ed.Dist}
	st.edges = append(st.edges, Edge{From: c.ID, To: ed.To, Dist: 0})
	st.copies++
	// The reader's prior placement may now be invalid relative to the
	// copy; eject it so both re-place against the new edge. This is a
	// graph repair, not a backtrack: the progress rule stays off so the
	// reader may return to its old time.
	if st.time[ed.To] >= 0 {
		st.eject(ed.To)
		st.wasEjected[ed.To] = false
	}
	st.rebuild()
}

func (st *attempt) place(op, t, pe int) {
	st.time[op] = t
	st.pe[op] = pe
}

func (st *attempt) eject(op int) {
	st.prevTime[op] = st.time[op]
	st.wasEjected[op] = true
	st.time[op] = -1
	st.pe[op] = -1
}

// placeControl finds kernel slot m0 and an adjacent (SubPE, CmpPE) pair for
// the loop counter decrement and exit compare, avoiding body issue slots,
// routing-port reservations, and the C-Box port.
func (st *attempt) placeControl() (m0, psub, pcmp int, ok bool) {
	// Routing-port reservations of the placed body, keyed (pe, slot).
	ports := map[[2]int]bool{}
	for _, ed := range st.edges {
		if st.time[ed.From] < 0 || st.time[ed.To] < 0 || st.pe[ed.From] == st.pe[ed.To] {
			continue
		}
		ports[[2]int{st.pe[ed.From], st.time[ed.To] % st.ii}] = true
	}
	busy := func(pe, slot, dur int) bool {
		for q := range st.ops {
			if st.time[q] < 0 || st.pe[q] != pe {
				continue
			}
			for d := 0; d < st.ops[q].Dur; d++ {
				qs := (st.time[q] + d) % st.ii
				for k := 0; k < dur; k++ {
					if qs == (slot+k)%st.ii {
						return true
					}
				}
			}
		}
		return false
	}
	cboxBusy := func(slot int) bool {
		for q := range st.ops {
			if st.time[q] >= 0 && st.ops[q].UsesCBox && (st.time[q]+st.ops[q].Dur-1)%st.ii == slot {
				return true
			}
		}
		return false
	}
	hiSub := st.ii - st.p.SubDur
	hiCmp := st.ii - 1 - st.p.CmpDur
	for m := 0; m <= hiSub && m <= hiCmp; m++ {
		if cboxBusy(m + st.p.CmpDur - 1) {
			continue
		}
		for _, ps := range st.p.SubCand {
			if busy(ps, m, st.p.SubDur) || ports[[2]int{ps, m}] {
				continue
			}
			for _, pc := range st.p.CmpCand {
				if pc == ps || st.p.Dist(ps, pc) != 1 {
					continue
				}
				if busy(pc, m, st.p.CmpDur) {
					continue
				}
				return m, ps, pc, true
			}
		}
	}
	return 0, 0, 0, false
}
