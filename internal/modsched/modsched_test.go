package modsched

import (
	"context"
	"errors"
	"testing"
	"time"
)

// mesh3x3 is the directed hop-count oracle of the paper's 3×3 mesh
// (4-neighborhood), precomputed by BFS.
func mesh3x3() func(a, b int) int {
	adj := func(p int) []int {
		r, c := p/3, p%3
		var out []int
		if r > 0 {
			out = append(out, p-3)
		}
		if r < 2 {
			out = append(out, p+3)
		}
		if c > 0 {
			out = append(out, p-1)
		}
		if c < 2 {
			out = append(out, p+1)
		}
		return out
	}
	var dist [9][9]int
	for s := 0; s < 9; s++ {
		for t := 0; t < 9; t++ {
			dist[s][t] = -1
		}
		dist[s][s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj(u) {
				if dist[s][v] < 0 {
					dist[s][v] = dist[s][u] + 1
					queue = append(queue, v)
				}
			}
		}
	}
	return func(a, b int) int { return dist[a][b] }
}

func allPEs() []int { return []int{0, 1, 2, 3, 4, 5, 6, 7, 8} }

func base(ops []Op, edges []Edge) *Problem {
	return &Problem{
		NumPEs:   9,
		Dist:     mesh3x3(),
		Ops:      ops,
		Edges:    edges,
		MoveCand: allPEs(),
		MoveDur:  1,
		SubCand:  allPEs(),
		CmpCand:  allPEs(),
		SubDur:   1,
		CmpDur:   1,
	}
}

// verify checks every structural invariant of a solution: windows,
// adjacency, slot/port/C-Box exclusivity, control-pair legality.
func verify(t *testing.T, p *Problem, s *Solution) {
	t.Helper()
	ii := s.II
	for i, o := range s.Ops {
		if s.Time[i] < 0 || s.PE[i] < 0 {
			t.Fatalf("op %s unplaced", o.Name)
		}
		if o.Dur > ii {
			t.Fatalf("op %s: dur %d exceeds II %d", o.Name, o.Dur, ii)
		}
	}
	fin := func(i int) int { return s.Time[i] + s.Ops[i].Dur - 1 }
	for _, e := range s.Edges {
		r := s.Time[e.To] + e.Dist*ii
		if r < fin(e.From)+1 || r > fin(e.From)+ii {
			t.Errorf("edge %s→%s: window violated (issue %d, writer fin %d, dist %d, II %d)",
				s.Ops[e.From].Name, s.Ops[e.To].Name, s.Time[e.To], fin(e.From), e.Dist, ii)
		}
		if s.PE[e.From] != s.PE[e.To] && p.Dist(s.PE[e.From], s.PE[e.To]) > 1 {
			t.Errorf("edge %s→%s: PEs %d→%d not adjacent",
				s.Ops[e.From].Name, s.Ops[e.To].Name, s.PE[e.From], s.PE[e.To])
		}
	}
	busy := map[[2]int]string{}
	claim := func(pe, slot int, who string) {
		k := [2]int{pe, slot}
		if prev, ok := busy[k]; ok {
			t.Errorf("PE %d slot %d: %s and %s overlap", pe, slot, prev, who)
		}
		busy[k] = who
	}
	for i, o := range s.Ops {
		for d := 0; d < o.Dur; d++ {
			claim(s.PE[i], (s.Time[i]+d)%ii, o.Name)
		}
	}
	for d := 0; d < p.SubDur; d++ {
		claim(s.SubPE, (s.CtrlSlot+d)%ii, "ctrl-sub")
	}
	for d := 0; d < p.CmpDur; d++ {
		claim(s.CmpPE, (s.CtrlSlot+d)%ii, "ctrl-cmp")
	}
	if p.Dist(s.SubPE, s.CmpPE) != 1 {
		t.Errorf("control pair PEs %d→%d not adjacent", s.SubPE, s.CmpPE)
	}
	if s.CtrlSlot+p.CmpDur-1 > ii-2 {
		t.Errorf("control consume slot %d too late for back-jump at II-1=%d", s.CtrlSlot+p.CmpDur-1, ii-1)
	}
	ports := map[[2]int]int{}
	for _, e := range s.Edges {
		if s.PE[e.From] == s.PE[e.To] {
			continue
		}
		k := [2]int{s.PE[e.From], s.Time[e.To] % ii}
		if owner, ok := ports[k]; ok && owner != e.From {
			t.Errorf("routing port PE %d slot %d claimed by both %s and %s",
				k[0], k[1], s.Ops[owner].Name, s.Ops[e.From].Name)
		}
		ports[k] = e.From
	}
	if _, ok := ports[[2]int{s.SubPE, s.CtrlSlot}]; ok {
		t.Errorf("control counter port PE %d slot %d also claimed by the body", s.SubPE, s.CtrlSlot)
	}
}

// TestSolveChain schedules a dependence chain with no recurrence: the II
// settles at the structural floor (control pair + durations), not the
// chain length.
func TestSolveChain(t *testing.T) {
	ops := []Op{
		{ID: 0, Name: "a", Dur: 1, Cand: allPEs(), CopyOf: -1},
		{ID: 1, Name: "b", Dur: 2, Cand: allPEs(), CopyOf: -1},
		{ID: 2, Name: "c", Dur: 1, Cand: allPEs(), CopyOf: -1},
	}
	edges := []Edge{{From: 0, To: 1}, {From: 1, To: 2}}
	s, err := Solve(context.Background(), base(ops, edges))
	if err != nil {
		t.Fatal(err)
	}
	verify(t, base(ops, edges), s)
	if s.II != s.MII {
		t.Errorf("II %d, want MII %d", s.II, s.MII)
	}
	if s.RecMII != 1 {
		t.Errorf("RecMII %d, want 1", s.RecMII)
	}
}

// TestSolveRecurrence schedules an accumulator: a self-edge at distance 1
// bounds II by the accumulate latency, and the II honors it.
func TestSolveRecurrence(t *testing.T) {
	ops := []Op{
		{ID: 0, Name: "mul", Dur: 2, Cand: allPEs(), CopyOf: -1},
		{ID: 1, Name: "acc", Dur: 2, Cand: []int{4}, CopyOf: -1},
	}
	edges := []Edge{
		{From: 0, To: 1, Dist: 0},
		{From: 1, To: 1, Dist: 1}, // acc reads its own previous value
	}
	p := base(ops, edges)
	s, err := Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	verify(t, p, s)
	if s.RecMII != 2 {
		t.Errorf("RecMII %d, want 2", s.RecMII)
	}
}

// TestSolveInsertsCopies forces a topology block: a producer pinned to one
// mesh corner feeding a consumer pinned to the opposite corner (hop
// distance 4). Only inserted MOVE copies make the edge routable.
func TestSolveInsertsCopies(t *testing.T) {
	ops := []Op{
		{ID: 0, Name: "src", Dur: 1, Cand: []int{0}, CopyOf: -1},
		{ID: 1, Name: "dst", Dur: 1, Cand: []int{8}, CopyOf: -1},
	}
	edges := []Edge{{From: 0, To: 1}}
	p := base(ops, edges)
	s, err := Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	verify(t, p, s)
	copies := 0
	for _, o := range s.Ops {
		if o.CopyOf >= 0 {
			copies++
		}
	}
	if copies < 3 {
		t.Errorf("inserted %d copies, want ≥ 3 to bridge 4 hops", copies)
	}
}

// TestSolveReportsAttempts asserts the diagnostics contract: every II tried
// appears in Attempts, the last one succeeding with an empty Err.
func TestSolveReportsAttempts(t *testing.T) {
	ops := []Op{{ID: 0, Name: "a", Dur: 1, Cand: allPEs(), CopyOf: -1}}
	p := base(ops, nil)
	s, err := Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Attempts) == 0 {
		t.Fatal("no attempts recorded")
	}
	last := s.Attempts[len(s.Attempts)-1]
	if last.II != s.II || last.Err != "" {
		t.Errorf("last attempt = %+v, want II %d with empty Err", last, s.II)
	}
	for i, a := range s.Attempts {
		if a.II != s.MII+i {
			t.Errorf("attempt %d at II %d, want %d", i, a.II, s.MII+i)
		}
	}
}

// TestSolveValidation rejects malformed problems fast.
func TestSolveValidation(t *testing.T) {
	cases := []*Problem{
		{},
		{NumPEs: 9, Dist: mesh3x3()},
		base([]Op{{ID: 0, Name: "a", Dur: 0, Cand: allPEs()}}, nil),
		base([]Op{{ID: 0, Name: "a", Dur: 1}}, nil),
		base([]Op{{ID: 5, Name: "a", Dur: 1, Cand: allPEs()}}, nil),
		base([]Op{{ID: 0, Name: "a", Dur: 1, Cand: allPEs()}}, []Edge{{From: 0, To: 3}}),
	}
	for i, p := range cases {
		if _, err := Solve(context.Background(), p); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

// TestSolveDeadline aborts a deliberately hard search promptly: a large,
// heavily conflicting body with an enormous ejection budget would churn for
// a long time, but a 50ms deadline must cut the search short via the per-
// slice context checks.
func TestSolveDeadline(t *testing.T) {
	// One writer fans out to far more readers than the machine can carry
	// at the resource-bound II: each cross-PE reader claims one of the
	// writer's II routing-port slots and each co-located reader one of its
	// II issue slots, so low-II attempts churn through ejections (bounded
	// only by the enormous budget) before the search can climb.
	const readers = 400
	ops := []Op{{ID: 0, Name: "w", Dur: 1, Cand: allPEs(), CopyOf: -1}}
	var edges []Edge
	for i := 1; i <= readers; i++ {
		ops = append(ops, Op{ID: i, Name: "r", Dur: 1, Cand: allPEs(), CopyOf: -1})
		edges = append(edges, Edge{From: 0, To: i, Dist: 0})
	}
	p := base(ops, edges)
	p.Budget = 1 << 30
	p.MaxCopies = 1 << 30
	p.MaxII = 100000

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Solve(ctx, p)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("hard search succeeded unexpectedly fast; deadline never engaged")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("search took %v to notice a 50ms deadline", elapsed)
	}
}
