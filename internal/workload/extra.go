package workload

import "cgra/internal/ir"

// This file adds workloads beyond the first seven: bit manipulation, CRC,
// a rank filter and a scan — common embedded kernels with the control-flow
// patterns the scheduler targets.

// BitCount counts set bits of every element with a data-dependent while
// loop (trip count depends on the value).
func BitCount() *Workload {
	k := mustKernel(`
kernel bitcount(array a, array cnt, in n) {
	i = 0;
	while (i < n) {
		v = a[i];
		c = 0;
		while (v != 0) {
			c = c + (v & 1);
			v = v >>> 1;
		}
		cnt[i] = c;
		i = i + 1;
	}
}`)
	return &Workload{
		Name:        "bitcount",
		Kernel:      k,
		DefaultSize: 24,
		Args:        func(size int) map[string]int32 { return map[string]int32{"n": int32(size)} },
		Host: func(size int) *ir.Host {
			h := ir.NewHost()
			h.Arrays["a"] = seqData(size, func(i int) int32 { return int32(i*2654435761 + 12345) })
			h.Arrays["cnt"] = make([]int32, size)
			return h
		},
		Reference: func(size int, args map[string]int32, host *ir.Host) map[string]int32 {
			a, cnt := host.Arrays["a"], host.Arrays["cnt"]
			for i := 0; i < size; i++ {
				v := uint32(a[i])
				c := int32(0)
				for v != 0 {
					c += int32(v & 1)
					v >>= 1
				}
				cnt[i] = c
			}
			return map[string]int32{}
		},
	}
}

// CRC8 computes a bitwise CRC-8 (poly 0x07) over a byte stream: an inner
// 8-iteration loop with a data-dependent conditional XOR every round.
func CRC8() *Workload {
	k := mustKernel(`
kernel crc8(array data, in n, inout crc) {
	crc = 0;
	i = 0;
	while (i < n) {
		crc = crc ^ (data[i] & 255);
		b = 0;
		while (b < 8) {
			if ((crc & 128) != 0) {
				crc = ((crc << 1) ^ 7) & 255;
			} else {
				crc = (crc << 1) & 255;
			}
			b = b + 1;
		}
		i = i + 1;
	}
}`)
	return &Workload{
		Name:        "crc8",
		Kernel:      k,
		DefaultSize: 24,
		Args: func(size int) map[string]int32 {
			return map[string]int32{"n": int32(size), "crc": 0}
		},
		Host: func(size int) *ir.Host {
			h := ir.NewHost()
			h.Arrays["data"] = seqData(size, func(i int) int32 { return int32((i*37 + 11) % 256) })
			return h
		},
		Reference: func(size int, args map[string]int32, host *ir.Host) map[string]int32 {
			data := host.Arrays["data"]
			crc := int32(0)
			for i := 0; i < size; i++ {
				crc ^= data[i] & 255
				for b := 0; b < 8; b++ {
					if crc&128 != 0 {
						crc = ((crc << 1) ^ 7) & 255
					} else {
						crc = (crc << 1) & 255
					}
				}
			}
			return map[string]int32{"crc": crc}
		},
	}
}

// Median3 applies a 3-tap median filter: pure conditional sorting network
// in the loop body (heavy predication).
func Median3() *Workload {
	k := mustKernel(`
kernel median3(array x, array y, in n) {
	i = 1;
	while (i < n - 1) {
		a = x[i - 1];
		b = x[i];
		c = x[i + 1];
		if (a > b) { t = a; a = b; b = t; }
		if (b > c) { t = b; b = c; c = t; }
		if (a > b) { t = a; a = b; b = t; }
		y[i] = b;
		i = i + 1;
	}
}`)
	return &Workload{
		Name:        "median3",
		Kernel:      k,
		DefaultSize: 48,
		Args:        func(size int) map[string]int32 { return map[string]int32{"n": int32(size)} },
		Host: func(size int) *ir.Host {
			h := ir.NewHost()
			h.Arrays["x"] = seqData(size, func(i int) int32 { return int32((i*97 + 13) % 201) })
			h.Arrays["y"] = make([]int32, size)
			return h
		},
		Reference: func(size int, args map[string]int32, host *ir.Host) map[string]int32 {
			x, y := host.Arrays["x"], host.Arrays["y"]
			for i := 1; i < size-1; i++ {
				a, b, c := x[i-1], x[i], x[i+1]
				if a > b {
					a, b = b, a
				}
				if b > c {
					b, c = c, b
				}
				if a > b {
					a, b = b, a
				}
				y[i] = b
			}
			return map[string]int32{}
		},
	}
}

// PrefixSum computes an exclusive scan: a serial dependence chain through
// memory, the opposite extreme from the parallel kernels.
func PrefixSum() *Workload {
	k := mustKernel(`
kernel prefix(array a, array out, in n) {
	acc = 0;
	i = 0;
	while (i < n) {
		out[i] = acc;
		acc = acc + a[i];
		i = i + 1;
	}
}`)
	return &Workload{
		Name:        "prefix",
		Kernel:      k,
		DefaultSize: 48,
		Args:        func(size int) map[string]int32 { return map[string]int32{"n": int32(size)} },
		Host: func(size int) *ir.Host {
			h := ir.NewHost()
			h.Arrays["a"] = seqData(size, func(i int) int32 { return int32(i%17) - 8 })
			h.Arrays["out"] = make([]int32, size)
			return h
		},
		Reference: func(size int, args map[string]int32, host *ir.Host) map[string]int32 {
			a, out := host.Arrays["a"], host.Arrays["out"]
			acc := int32(0)
			for i := 0; i < size; i++ {
				out[i] = acc
				acc += a[i]
			}
			return map[string]int32{}
		},
	}
}
