package workload

import (
	"testing"

	"cgra/internal/arch"
	"cgra/internal/ir"
	"cgra/internal/pipeline"
)

// TestAllKernelsParse guards mustKernel's unreachable-error invariant: every
// static kernel source must parse cleanly (a placeholder "invalid" kernel
// means a source constant regressed).
func TestAllKernelsParse(t *testing.T) {
	for _, w := range All() {
		if w.Kernel == nil || w.Kernel.Name == "invalid" {
			t.Errorf("workload %q: static kernel source failed to parse", w.Name)
		}
	}
}

// TestReferencesMatchInterpreter cross-checks every workload's Go reference
// against the IR interpreter.
func TestReferencesMatchInterpreter(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			size := w.DefaultSize
			args := w.Args(size)
			hostK := w.Host(size)
			hostR := hostK.Clone()

			interp := &ir.Interp{}
			gotOuts, err := interp.Run(w.Kernel, args, hostK)
			if err != nil {
				t.Fatalf("interpret: %v", err)
			}
			wantOuts := w.Reference(size, w.Args(size), hostR)
			for name, want := range wantOuts {
				if gotOuts[name] != want {
					t.Errorf("live-out %s: interpreter %d != reference %d", name, gotOuts[name], want)
				}
			}
			if !hostK.Equal(hostR) {
				t.Error("heap contents differ between interpreter and reference")
			}
		})
	}
}

// TestWorkloadsOnCGRA runs every workload through the full tool flow on a
// 9-PE mesh and the sparse irregular composition B, comparing the simulator
// against the interpreter.
func TestWorkloadsOnCGRA(t *testing.T) {
	mesh9, err := arch.HomogeneousMesh(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := arch.IrregularComposition("B", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range []*arch.Composition{mesh9, b} {
		for _, w := range All() {
			w, comp := w, comp
			t.Run(comp.Name+"/"+w.Name, func(t *testing.T) {
				size := w.DefaultSize
				if w.Name == "matmul" && comp.Name == "8 PEs B" {
					size = 4 // keep the ring composition's runtime down
				}
				c, err := pipeline.Compile(w.Kernel, comp, pipeline.Options{})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				res, err := pipeline.CheckAgainstInterpreter(w.Kernel, c, w.Args(size), w.Host(size))
				if err != nil {
					t.Fatalf("differential check: %v", err)
				}
				t.Logf("%s on %s: %d contexts, %d cycles",
					w.Name, comp.Name, c.UsedContexts(), res.Sim.RunCycles)
			})
		}
	}
}

// TestWorkloadsWithDefaults exercises the optimizing configuration.
func TestWorkloadsWithDefaults(t *testing.T) {
	comp, err := arch.HomogeneousMesh(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			c, err := pipeline.Compile(w.Kernel, comp, pipeline.Defaults())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if _, err := pipeline.CheckAgainstInterpreter(w.Kernel, c, w.Args(w.DefaultSize), w.Host(w.DefaultSize)); err != nil {
				t.Fatalf("differential check: %v", err)
			}
		})
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("fir")
	if err != nil || w.Name != "fir" {
		t.Errorf("ByName(fir): %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}
