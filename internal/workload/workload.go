// Package workload provides a library of kernels beyond the paper's ADPCM
// decoder, each exercising scheduler features (nested loops, data-dependent
// trip counts, conditional stores, inhomogeneity pressure on multipliers)
// with a Go reference implementation for differential testing.
package workload

import (
	"fmt"

	"cgra/internal/ir"
	"cgra/internal/irtext"
)

// Workload bundles a kernel with its inputs and a reference implementation.
type Workload struct {
	Name   string
	Kernel *ir.Kernel
	// Args returns the scalar arguments for a given problem size.
	Args func(size int) map[string]int32
	// Host builds the heap for a given problem size.
	Host func(size int) *ir.Host
	// Reference computes the expected live-outs and heap in place.
	Reference func(size int, args map[string]int32, host *ir.Host) map[string]int32
	// DefaultSize is the size used by examples and benches.
	DefaultSize int
}

// All returns every registered workload, in a stable order.
func All() []*Workload {
	return []*Workload{
		FIR(),
		MatMul(),
		BubbleSort(),
		Sobel1D(),
		DotProduct(),
		Histogram(),
		GCD(),
		BitCount(),
		CRC8(),
		Median3(),
		PrefixSum(),
	}
}

// mustKernel parses one of the static kernel sources below. The sources are
// compile-time constants, so a parse error is unreachable in a correct build;
// TestAllKernelsParse guards that invariant, and the placeholder return keeps
// this path panic-free (downstream compilation rejects it with an error).
func mustKernel(src string) *ir.Kernel {
	k, err := irtext.Parse(src)
	if err != nil {
		return ir.NewKernel("invalid", nil)
	}
	return k
}

// ByName returns the named workload.
func ByName(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown kernel %q", name)
}

func seqData(n int, f func(i int) int32) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

// FIR is a 4-tap finite impulse response filter: a nested dot product per
// output sample.
func FIR() *Workload {
	k := mustKernel(`
kernel fir(array x, array h, array y, in n, in taps) {
	i = 0;
	while (i < n) {
		acc = 0;
		j = 0;
		while (j < taps) {
			acc = acc + x[i + j] * h[j];
			j = j + 1;
		}
		y[i] = acc >> 8;
		i = i + 1;
	}
}`)
	const taps = 4
	return &Workload{
		Name:        "fir",
		Kernel:      k,
		DefaultSize: 64,
		Args: func(size int) map[string]int32 {
			return map[string]int32{"n": int32(size), "taps": taps}
		},
		Host: func(size int) *ir.Host {
			h := ir.NewHost()
			h.Arrays["x"] = seqData(size+taps, func(i int) int32 { return int32((i*37)%256) - 128 })
			h.Arrays["h"] = []int32{64, 128, 128, 64}
			h.Arrays["y"] = make([]int32, size)
			return h
		},
		Reference: func(size int, args map[string]int32, host *ir.Host) map[string]int32 {
			x, hh, y := host.Arrays["x"], host.Arrays["h"], host.Arrays["y"]
			for i := 0; i < size; i++ {
				var acc int32
				for j := 0; j < taps; j++ {
					acc += x[i+j] * hh[j]
				}
				y[i] = acc >> 8
			}
			return map[string]int32{}
		},
	}
}

// MatMul multiplies two size×size matrices: triple loop nesting.
func MatMul() *Workload {
	k := mustKernel(`
kernel matmul(array a, array b, array c, in n) {
	i = 0;
	while (i < n) {
		j = 0;
		while (j < n) {
			acc = 0;
			l = 0;
			while (l < n) {
				acc = acc + a[i * n + l] * b[l * n + j];
				l = l + 1;
			}
			c[i * n + j] = acc;
			j = j + 1;
		}
		i = i + 1;
	}
}`)
	return &Workload{
		Name:        "matmul",
		Kernel:      k,
		DefaultSize: 6,
		Args:        func(size int) map[string]int32 { return map[string]int32{"n": int32(size)} },
		Host: func(size int) *ir.Host {
			h := ir.NewHost()
			h.Arrays["a"] = seqData(size*size, func(i int) int32 { return int32(i%7) - 3 })
			h.Arrays["b"] = seqData(size*size, func(i int) int32 { return int32(i%5) - 2 })
			h.Arrays["c"] = make([]int32, size*size)
			return h
		},
		Reference: func(size int, args map[string]int32, host *ir.Host) map[string]int32 {
			a, b, c := host.Arrays["a"], host.Arrays["b"], host.Arrays["c"]
			n := size
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var acc int32
					for l := 0; l < n; l++ {
						acc += a[i*n+l] * b[l*n+j]
					}
					c[i*n+j] = acc
				}
			}
			return map[string]int32{}
		},
	}
}

// BubbleSort sorts in place: nested loops with a data-dependent conditional
// swap in the inner body.
func BubbleSort() *Workload {
	k := mustKernel(`
kernel bsort(array a, in n) {
	i = 0;
	while (i < n - 1) {
		j = 0;
		while (j < n - 1 - i) {
			x = a[j];
			y = a[j + 1];
			if (x > y) {
				a[j] = y;
				a[j + 1] = x;
			}
			j = j + 1;
		}
		i = i + 1;
	}
}`)
	return &Workload{
		Name:        "bsort",
		Kernel:      k,
		DefaultSize: 24,
		Args:        func(size int) map[string]int32 { return map[string]int32{"n": int32(size)} },
		Host: func(size int) *ir.Host {
			h := ir.NewHost()
			h.Arrays["a"] = seqData(size, func(i int) int32 { return int32((i*131 + 17) % 97) })
			return h
		},
		Reference: func(size int, args map[string]int32, host *ir.Host) map[string]int32 {
			a := host.Arrays["a"]
			for i := 0; i < size-1; i++ {
				for j := 0; j < size-1-i; j++ {
					if a[j] > a[j+1] {
						a[j], a[j+1] = a[j+1], a[j]
					}
				}
			}
			return map[string]int32{}
		},
	}
}

// Sobel1D applies a 1-D edge filter with magnitude clamping: conditional
// code in the loop body.
func Sobel1D() *Workload {
	k := mustKernel(`
kernel sobel(array img, array edge, in n) {
	i = 1;
	while (i < n - 1) {
		g = img[i + 1] - img[i - 1];
		if (g < 0) { g = 0 - g; }
		if (g > 255) { g = 255; }
		edge[i] = g;
		i = i + 1;
	}
}`)
	return &Workload{
		Name:        "sobel",
		Kernel:      k,
		DefaultSize: 96,
		Args:        func(size int) map[string]int32 { return map[string]int32{"n": int32(size)} },
		Host: func(size int) *ir.Host {
			h := ir.NewHost()
			h.Arrays["img"] = seqData(size, func(i int) int32 { return int32((i * i) % 391) })
			h.Arrays["edge"] = make([]int32, size)
			return h
		},
		Reference: func(size int, args map[string]int32, host *ir.Host) map[string]int32 {
			img, edge := host.Arrays["img"], host.Arrays["edge"]
			for i := 1; i < size-1; i++ {
				g := img[i+1] - img[i-1]
				if g < 0 {
					g = -g
				}
				if g > 255 {
					g = 255
				}
				edge[i] = g
			}
			return map[string]int32{}
		},
	}
}

// DotProduct is the quickstart kernel: a single loop with a multiplier on
// the critical path.
func DotProduct() *Workload {
	k := mustKernel(`
kernel dot(array a, array b, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) {
		s = s + a[i] * b[i];
		i = i + 1;
	}
}`)
	return &Workload{
		Name:        "dot",
		Kernel:      k,
		DefaultSize: 64,
		Args: func(size int) map[string]int32 {
			return map[string]int32{"n": int32(size), "s": 0}
		},
		Host: func(size int) *ir.Host {
			h := ir.NewHost()
			h.Arrays["a"] = seqData(size, func(i int) int32 { return int32(i%13) - 6 })
			h.Arrays["b"] = seqData(size, func(i int) int32 { return int32(i%11) - 5 })
			return h
		},
		Reference: func(size int, args map[string]int32, host *ir.Host) map[string]int32 {
			a, b := host.Arrays["a"], host.Arrays["b"]
			var s int32
			for i := 0; i < size; i++ {
				s += a[i] * b[i]
			}
			return map[string]int32{"s": s}
		},
	}
}

// Histogram bins values with a conditional range check: data-dependent
// stores through computed addresses.
func Histogram() *Workload {
	k := mustKernel(`
kernel hist(array data, array bins, in n, in nbins) {
	i = 0;
	while (i < n) {
		v = data[i] >> 4;
		if (v >= 0 && v < nbins) {
			bins[v] = bins[v] + 1;
		}
		i = i + 1;
	}
}`)
	const nbins = 16
	return &Workload{
		Name:        "hist",
		Kernel:      k,
		DefaultSize: 64,
		Args: func(size int) map[string]int32 {
			return map[string]int32{"n": int32(size), "nbins": nbins}
		},
		Host: func(size int) *ir.Host {
			h := ir.NewHost()
			h.Arrays["data"] = seqData(size, func(i int) int32 { return int32((i*73)%300) - 10 })
			h.Arrays["bins"] = make([]int32, nbins)
			return h
		},
		Reference: func(size int, args map[string]int32, host *ir.Host) map[string]int32 {
			data, bins := host.Arrays["data"], host.Arrays["bins"]
			for i := 0; i < size; i++ {
				v := data[i] >> 4
				if v >= 0 && v < nbins {
					bins[v]++
				}
			}
			return map[string]int32{}
		},
	}
}

// GCD runs Euclid by subtraction: a purely data-dependent loop trip count.
func GCD() *Workload {
	k := mustKernel(`
kernel gcd(inout a, inout b) {
	while (b != 0) {
		if (a > b) { a = a - b; } else { b = b - a; }
	}
}`)
	return &Workload{
		Name:        "gcd",
		Kernel:      k,
		DefaultSize: 0,
		Args: func(size int) map[string]int32 {
			return map[string]int32{"a": 1071, "b": 462}
		},
		Host: func(size int) *ir.Host { return ir.NewHost() },
		Reference: func(size int, args map[string]int32, host *ir.Host) map[string]int32 {
			a, b := args["a"], args["b"]
			for b != 0 {
				if a > b {
					a -= b
				} else {
					b -= a
				}
			}
			return map[string]int32{"a": a, "b": b}
		},
	}
}
