package sim

// EventKind classifies observable machine events for tracing.
type EventKind int

// Machine events.
const (
	// EvRFWrite: a register-file write committed (PE, Addr, Value).
	EvRFWrite EventKind = iota
	// EvRFSquash: a predicated commit was squashed (PE, Addr).
	EvRFSquash
	// EvCondWrite: the C-Box wrote a condition slot (Addr, Value 0/1).
	EvCondWrite
	// EvJumpTaken: the CCU took a jump (Value = target).
	EvJumpTaken
	// EvDMALoad: a DMA load completed (PE, Addr, Value).
	EvDMALoad
	// EvDMAStore: a DMA store completed (Value; Addr = heap index).
	EvDMAStore
	// EvHalt: the halt context locked the CCNT.
	EvHalt
	// EvFault: an injected fault corrupted machine state (PE, Value).
	EvFault
	// EvIssue: a PE issued a non-NOP operation (PE, Value = opcode).
	EvIssue
	// EvRouteRead: a PE read a neighbour's routing output (PE = reader,
	// Addr = source PE, Value = routed word).
	EvRouteRead
)

func (k EventKind) String() string {
	switch k {
	case EvRFWrite:
		return "rf-write"
	case EvRFSquash:
		return "rf-squash"
	case EvCondWrite:
		return "cond-write"
	case EvJumpTaken:
		return "jump"
	case EvDMALoad:
		return "dma-load"
	case EvDMAStore:
		return "dma-store"
	case EvHalt:
		return "halt"
	case EvFault:
		return "fault"
	case EvIssue:
		return "issue"
	case EvRouteRead:
		return "route-read"
	}
	return "?"
}

// Event is one observable state change during simulation. The Probe hook on
// Machine receives every event; package trace converts the stream into a
// VCD waveform.
type Event struct {
	Cycle int64
	CCNT  int
	Kind  EventKind
	PE    int
	Addr  int
	Value int32
}

func (m *Machine) emit(ev Event) {
	if m.Probe != nil {
		m.Probe(ev)
	}
}
