package sim

import (
	"math"
	"testing"

	"cgra/internal/arch"
)

// TestEvalALUExhaustive covers every ALU opcode, including the JVM-style
// edge cases the kernels rely on: shift counts masked to the low five bits
// (so 32 behaves like 0 and negative counts wrap), and two's-complement
// wraparound for INT_MIN negation and subtraction overflow.
func TestEvalALUExhaustive(t *testing.T) {
	const min32, max32 = math.MinInt32, math.MaxInt32
	cases := []struct {
		name string
		op   arch.OpCode
		a, b int32
		imm  int32
		want int32
	}{
		{"move", arch.MOVE, 42, -9, 0, 42},
		{"move-ignores-b-imm", arch.MOVE, -7, 99, 123, -7},
		{"const", arch.CONST, 5, 6, -123, -123},
		{"const-min", arch.CONST, 0, 0, min32, min32},

		{"add", arch.IADD, 2, 3, 0, 5},
		{"add-overflow-wraps", arch.IADD, max32, 1, 0, min32},
		{"add-negative", arch.IADD, -5, 2, 0, -3},
		{"sub", arch.ISUB, 7, 10, 0, -3},
		{"sub-underflow-wraps", arch.ISUB, min32, 1, 0, max32},
		{"sub-intmin-from-zero", arch.ISUB, 0, min32, 0, min32},
		{"mul", arch.IMUL, -4, 6, 0, -24},
		{"mul-overflow-wraps", arch.IMUL, 1 << 30, 4, 0, 0},
		{"mul-intmin-by-minus1", arch.IMUL, min32, -1, 0, min32},

		{"and", arch.IAND, 0b1100, 0b1010, 0, 0b1000},
		{"or", arch.IOR, 0b1100, 0b1010, 0, 0b1110},
		{"xor", arch.IXOR, 0b1100, 0b1010, 0, 0b0110},
		{"and-negative", arch.IAND, -1, 0x0F0F, 0, 0x0F0F},

		{"shl", arch.ISHL, 1, 4, 0, 16},
		{"shl-31", arch.ISHL, 1, 31, 0, min32},
		{"shl-32-masks-to-0", arch.ISHL, 123, 32, 0, 123},
		{"shl-33-masks-to-1", arch.ISHL, 1, 33, 0, 2},
		{"shl-neg1-masks-to-31", arch.ISHL, 1, -1, 0, min32},
		{"shr", arch.ISHR, -8, 1, 0, -4},
		{"shr-31-sign-fill", arch.ISHR, min32, 31, 0, -1},
		{"shr-32-masks-to-0", arch.ISHR, -8, 32, 0, -8},
		{"shr-neg31-masks-to-1", arch.ISHR, 8, -31, 0, 4},
		{"ushr", arch.IUSHR, -8, 1, 0, 0x7FFFFFFC},
		{"ushr-31-zero-fill", arch.IUSHR, min32, 31, 0, 1},
		{"ushr-32-masks-to-0", arch.IUSHR, -8, 32, 0, -8},
		{"ushr-neg1-masks-to-31", arch.IUSHR, -1, -1, 0, 1},

		{"neg", arch.INEG, 9, 0, 0, -9},
		{"neg-zero", arch.INEG, 0, 0, 0, 0},
		{"neg-intmin-wraps", arch.INEG, min32, 0, 0, min32},
		{"not", arch.INOT, 0, 0, 0, -1},
		{"not-minus1", arch.INOT, -1, 0, 0, 0},
		{"not-intmin", arch.INOT, min32, 0, 0, max32},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := evalALU(tc.op, tc.a, tc.b, tc.imm)
			if err != nil {
				t.Fatalf("evalALU(%v, %d, %d, %d): %v", tc.op, tc.a, tc.b, tc.imm, err)
			}
			if got != tc.want {
				t.Errorf("evalALU(%v, %d, %d, %d) = %d, want %d", tc.op, tc.a, tc.b, tc.imm, got, tc.want)
			}
		})
	}
}

// TestEvalALUShiftMaskSweep cross-checks the three shift ops against their
// reference semantics for every count in [-64, 64]: the effective count is
// count & 31, regardless of sign.
func TestEvalALUShiftMaskSweep(t *testing.T) {
	vals := []int32{0, 1, -1, 0x12345678, math.MinInt32, math.MaxInt32}
	for _, a := range vals {
		for n := int32(-64); n <= 64; n++ {
			eff := uint32(n) & 31
			if got, _ := evalALU(arch.ISHL, a, n, 0); got != a<<eff {
				t.Fatalf("ISHL %d by %d: %d, want %d", a, n, got, a<<eff)
			}
			if got, _ := evalALU(arch.ISHR, a, n, 0); got != a>>eff {
				t.Fatalf("ISHR %d by %d: %d, want %d", a, n, got, a>>eff)
			}
			if got, _ := evalALU(arch.IUSHR, a, n, 0); got != int32(uint32(a)>>eff) {
				t.Fatalf("IUSHR %d by %d: %d, want %d", a, n, got, int32(uint32(a)>>eff))
			}
		}
	}
}

// TestEvalALUUnknownOp asserts unsupported opcodes (compares, memory ops,
// and out-of-range codes) surface as errors rather than silent zeros.
func TestEvalALUUnknownOp(t *testing.T) {
	for _, op := range []arch.OpCode{arch.IFLT, arch.IFEQ, arch.LOAD, arch.STORE, arch.OpCode(250)} {
		if _, err := evalALU(op, 1, 2, 3); err == nil {
			t.Errorf("evalALU(%v) succeeded, want error", op)
		}
	}
}

// TestEvalCompareExhaustive covers every compare opcode over an ordered
// triple including the extremes, where naive subtract-and-test-sign
// implementations overflow.
func TestEvalCompareExhaustive(t *testing.T) {
	const min32, max32 = math.MinInt32, math.MaxInt32
	type cmp struct {
		op   arch.OpCode
		want func(a, b int32) bool
	}
	cmps := []cmp{
		{arch.IFLT, func(a, b int32) bool { return a < b }},
		{arch.IFLE, func(a, b int32) bool { return a <= b }},
		{arch.IFGT, func(a, b int32) bool { return a > b }},
		{arch.IFGE, func(a, b int32) bool { return a >= b }},
		{arch.IFEQ, func(a, b int32) bool { return a == b }},
		{arch.IFNE, func(a, b int32) bool { return a != b }},
	}
	vals := []int32{min32, -2, -1, 0, 1, 2, max32}
	for _, c := range cmps {
		for _, a := range vals {
			for _, b := range vals {
				got, err := evalCompare(c.op, a, b)
				if err != nil {
					t.Fatalf("evalCompare(%v, %d, %d): %v", c.op, a, b, err)
				}
				if want := c.want(a, b); got != want {
					t.Errorf("evalCompare(%v, %d, %d) = %v, want %v", c.op, a, b, got, want)
				}
			}
		}
	}
}

// TestEvalCompareUnknownOp asserts non-compare opcodes are rejected.
func TestEvalCompareUnknownOp(t *testing.T) {
	for _, op := range []arch.OpCode{arch.IADD, arch.MOVE, arch.LOAD, arch.OpCode(250)} {
		if _, err := evalCompare(op, 1, 2); err == nil {
			t.Errorf("evalCompare(%v) succeeded, want error", op)
		}
	}
}
