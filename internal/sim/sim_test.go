package sim

import (
	"testing"
	"testing/quick"

	"cgra/internal/arch"
	"cgra/internal/cdfg"
	"cgra/internal/ctxgen"
	"cgra/internal/ir"
	"cgra/internal/irtext"
	"cgra/internal/sched"
)

func compile(t *testing.T, src string, comp *arch.Composition) (*ir.Kernel, *ctxgen.Program) {
	t.Helper()
	k := mustParse(t, src)
	g, err := cdfg.Build(k, cdfg.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Run(g, comp, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ctxgen.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	return k, p
}

func mesh(t *testing.T, n int) *arch.Composition {
	t.Helper()
	c, err := arch.HomogeneousMesh(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunStraightLine(t *testing.T) {
	_, p := compile(t, `kernel k(in x, in y, inout r) { r = x * y - 3; }`, mesh(t, 4))
	m := New(p)
	res, err := m.Run(map[string]int32{"x": 6, "y": 7, "r": 0}, ir.NewHost())
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveOuts["r"] != 39 {
		t.Errorf("r = %d, want 39", res.LiveOuts["r"])
	}
	if res.RunCycles <= 0 || res.TotalCycles() <= res.RunCycles {
		t.Error("cycle accounting wrong")
	}
}

func TestRunEnergyAccumulates(t *testing.T) {
	_, p := compile(t, `kernel k(in x, inout r) { r = x * x; }`, mesh(t, 4))
	res, err := New(p).Run(map[string]int32{"x": 5, "r": 0}, ir.NewHost())
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy <= 0 {
		t.Error("no energy recorded")
	}
}

func TestRunMissingLiveIn(t *testing.T) {
	_, p := compile(t, `kernel k(in x, inout r) { r = x; }`, mesh(t, 4))
	if _, err := New(p).Run(map[string]int32{"r": 0}, ir.NewHost()); err == nil {
		t.Error("missing live-in accepted")
	}
}

func TestRunCycleLimit(t *testing.T) {
	// A loop that never terminates must hit the cycle limit.
	_, p := compile(t, `
kernel k(inout r) {
	r = 0;
	i = 0;
	while (i < 1) { r = r + 1; }
}`, mesh(t, 4))
	m := New(p)
	m.MaxCycles = 1000
	if _, err := m.Run(map[string]int32{"r": 0}, ir.NewHost()); err == nil {
		t.Error("non-terminating loop did not hit the cycle limit")
	}
}

func TestRunDMAFaultSurfaces(t *testing.T) {
	_, p := compile(t, `kernel k(array a, inout r) { r = a[5]; }`, mesh(t, 4))
	host := ir.NewHost()
	host.Arrays["a"] = []int32{1, 2}
	if _, err := New(p).Run(map[string]int32{"r": 0}, host); err == nil {
		t.Error("out-of-bounds DMA access did not fault")
	}
}

func TestRunTraceCallback(t *testing.T) {
	_, p := compile(t, `kernel k(in x, inout r) { r = x + 1; }`, mesh(t, 4))
	m := New(p)
	traced := 0
	m.Trace = func(cycle int64, ccnt int) { traced++ }
	if _, err := m.Run(map[string]int32{"x": 1, "r": 0}, ir.NewHost()); err != nil {
		t.Fatal(err)
	}
	if traced == 0 {
		t.Error("trace callback never invoked")
	}
}

func TestRunMatchesInterpreterProperty(t *testing.T) {
	// Property test: for random inputs, the machine and the interpreter
	// agree on a kernel exercising predication, loops and DMA.
	src := `
kernel k(array a, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) {
		v = a[i];
		if (v < 0) { v = 0 - v; }
		if (v > 100) { v = v - 100; } else { v = v + 1; }
		s = s + v;
		i = i + 1;
	}
}`
	k, p := compile(t, src, mesh(t, 9))
	prop := func(vals [8]int16, n uint8) bool {
		size := int(n) % 9
		arr := make([]int32, 8)
		for i := range arr {
			arr[i] = int32(vals[i])
		}
		hostSim := ir.NewHost()
		hostSim.Arrays["a"] = append([]int32(nil), arr...)
		hostRef := hostSim.Clone()

		simRes, err := New(p).Run(map[string]int32{"n": int32(size), "s": 0}, hostSim)
		if err != nil {
			return false
		}
		interp := &ir.Interp{}
		refOut, err := interp.Run(k, map[string]int32{"n": int32(size), "s": 0}, hostRef)
		if err != nil {
			return false
		}
		return simRes.LiveOuts["s"] == refOut["s"]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRunRepeatedInvocations(t *testing.T) {
	// The machine must be reusable: consecutive runs see fresh state.
	_, p := compile(t, `
kernel acc(array a, in n, inout s) {
	i = 0;
	while (i < n) { s = s + a[i]; i = i + 1; }
}`, mesh(t, 4))
	m := New(p)
	for trial := int32(1); trial <= 3; trial++ {
		host := ir.NewHost()
		host.Arrays["a"] = []int32{trial, trial, trial}
		res, err := m.Run(map[string]int32{"n": 3, "s": 10}, host)
		if err != nil {
			t.Fatal(err)
		}
		if want := 10 + 3*trial; res.LiveOuts["s"] != want {
			t.Errorf("trial %d: s = %d, want %d", trial, res.LiveOuts["s"], want)
		}
	}
}

func TestRunZeroTripLoop(t *testing.T) {
	_, p := compile(t, `
kernel k(array a, in n, inout s) {
	s = 7;
	i = 0;
	while (i < n) { s = a[i]; i = i + 1; }
}`, mesh(t, 4))
	host := ir.NewHost()
	host.Arrays["a"] = []int32{42}
	res, err := New(p).Run(map[string]int32{"n": 0, "s": 7}, host)
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveOuts["s"] != 7 {
		t.Errorf("zero-trip loop: s = %d, want 7", res.LiveOuts["s"])
	}
}

func TestRunPredicatedDMANotExecuted(t *testing.T) {
	// A predicated-off load must not fault even on a bad index.
	_, p := compile(t, `
kernel k(array a, in i, in n, inout r) {
	r = 0;
	if (i < n && a[i] > 0) { r = 1; }
}`, mesh(t, 4))
	host := ir.NewHost()
	host.Arrays["a"] = []int32{1}
	res, err := New(p).Run(map[string]int32{"i": 1000, "n": 1, "r": -1}, host)
	if err != nil {
		t.Fatalf("squashed DMA still executed: %v", err)
	}
	if res.LiveOuts["r"] != 0 {
		t.Errorf("r = %d, want 0", res.LiveOuts["r"])
	}
}

func TestTransferCyclesMatchProtocol(t *testing.T) {
	_, p := compile(t, `kernel k(in a, in b, in c, inout r) { r = a + b + c; }`, mesh(t, 4))
	res, err := New(p).Run(map[string]int32{"a": 1, "b": 2, "c": 3, "r": 0}, ir.NewHost())
	if err != nil {
		t.Fatal(err)
	}
	// 4 live-ins (a, b, c, r), 1 live-out (r), 2 cycles each (§IV-A3).
	if res.TransferCycles != 2*(4+1) {
		t.Errorf("transfer cycles = %d, want 10", res.TransferCycles)
	}
}

func mustParse(t testing.TB, src string) *ir.Kernel {
	t.Helper()
	k, err := irtext.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return k
}
