// Predecoding compiles a ctxgen.Program once into a flat, cache-friendly
// microprogram the simulator's fast path executes with zero allocations per
// cycle. The paper's tool flow fixes the context stream at synthesis time
// (§IV: context memories addressed by one global CCNT), so everything
// cycle-invariant — which PE slots are non-NOP, operand multiplexer
// settings, routed-input source PEs, DMA array identities, op durations and
// energies, register-file base offsets — is resolved exactly once per
// artifact instead of once per simulated cycle.
//
// The decoded form is shared and immutable; mutable per-run scratch lives
// in a pooled runState so concurrent runs of the same kernel reuse fixed
// buffers instead of reallocating them.
package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"cgra/internal/arch"
	"cgra/internal/ctxgen"
	"cgra/internal/ir"
	"cgra/internal/sched"
)

// slot kinds: what the fast path does with an issued operation.
const (
	slotALU = iota
	slotCompare
	slotLoad
	slotStore
)

// dslot is one predecoded non-NOP PE context slot. All addresses are
// pre-resolved: RF reads/writes are flat offsets into the run state's
// single register slab, routed reads name the source PE directly, and the
// op's duration and energy are looked up at decode time.
type dslot struct {
	pe   int32
	kind int8
	// Operand A/B: mode (SrcNone/SrcReg/SrcRoute) and flat RF offset. For
	// SrcRoute the offset is the source PE's presented register (resolved
	// at decode), which the lane engine reads directly; the scalar path
	// reads the latched outl via aSrc/bSrc instead.
	aMode, bMode int8
	aOff, bOff   int32
	aSrc, bSrc   int32
	writeEnable  bool
	predicated   bool
	// direct marks a write the lane engine may commit straight into the RF
	// during issue instead of deferring to the end-of-cycle ring. For
	// single-cycle ALU writes the condition is that no later slot of the
	// same context reads wOff and no ring-committed writer ever targets
	// wOff. For multi-cycle ALU writes and resolved loads the commit
	// normally lands dur-1 cycles after issue, so the early commit is
	// additionally proven unobservable: no context reachable within dur-1
	// cycles reads wOff (operand or routing output) or writes it (RF
	// offsets are per-PE, so every condition is checkable at decode time).
	direct bool
	// resolveLoad marks a LOAD from an array no STORE in the program ever
	// targets: the loaded value cannot change between issue and commit, so
	// the lane engine reads the host array at issue and defers only the
	// cheap register write (the RF commit still lands at the scalar cycle).
	resolveLoad bool
	wOff        int32
	op          arch.OpCode
	imm         int32
	array       int32
	dur         int32
	energy      float64
}

// outlSlot is one predecoded routing-output capture: at this slot's
// context, PE pe presents rf[off] on its routing output.
type outlSlot struct {
	pe  int32
	off int32
}

// decHome locates one live-in/live-out in the flat register slab.
type decHome struct {
	name string
	off  int32
}

// Decoded is the predecoded execution engine of one program: per-CCNT
// dense slabs listing only the non-NOP work of each context, plus the
// control tables and host-interface metadata the inner loop consumes.
// A Decoded is immutable after Predecode and safe for concurrent runs;
// per-run scratch state is drawn from an internal sync.Pool.
type Decoded struct {
	numPE  int
	numCtx int
	// rfOff[pe] is PE pe's base offset into the flat register slab of
	// rfTotal words.
	rfOff   []int32
	rfTotal int
	cbSlots int

	// slots[slotIdx[c]:slotIdx[c+1]] are context c's non-NOP PE slots in
	// PE order (the interpreter's issue order, so energy accumulation is
	// bit-identical).
	slots   []dslot
	slotIdx []int32
	// outls[outlIdx[c]:outlIdx[c+1]] are context c's routing-output
	// captures.
	outls   []outlSlot
	outlIdx []int32

	cbox []ctxgen.CBoxCtx
	ccu  []ctxgen.CCUCtx

	// Batched-lane metadata (see runlanes.go): per-context phase-activity
	// flags and the due-cycle ring geometry, resolved once at decode time so
	// the lane engine can skip inactive phases without re-deriving anything
	// per cycle.
	cmeta    []ctxMeta
	ringSize int // power of two ≥ the longest op duration
	ringMask int

	// arrays maps DMA array IDs to host array names.
	arrays   []string
	liveIns  []decHome
	liveOuts []decHome
	transfer int64

	pool sync.Pool
	// ready is a single-slot fast cache in front of pool: sync.Pool may be
	// drained by any GC, which made one-shot short runs (gcd-style) pay a
	// full state allocation per run. The slot survives GC, so after the
	// first run a sequential caller never allocates again.
	ready atomic.Pointer[runState]
	// lanePool recycles the batched-run lane slabs (see runlanes.go).
	lanePool sync.Pool
}

// fpend is one pending end-of-cycle commit on the fast path (the
// interpreter's pendingWrite with the array name replaced by its ID).
type fpend struct {
	cycle   int64
	pe      int32
	wOff    int32
	value   int32
	squash  bool
	isDMA   bool
	dmaLoad bool
	array   int32
	index   int32
}

// runState is the reusable mutable state of one fast-path run: the flat
// register slab, condition memory, routing-output scratch, per-PE status
// slots and the pending-commit buffer. All buffers are sized once and
// reused across runs via the Decoded's pool.
type runState struct {
	rf   []int32
	cond []bool
	outl []int32
	// statusVal/statusArrive are the bounded per-PE status slots: a
	// compare finishing at cycle c sets arrive[pe]=c, and the C-Box
	// consume checks arrival with one lookup instead of a rescan.
	statusVal    []bool
	statusArrive []int64
	pending      []fpend
	// hostArr caches the host.Arrays lookups by array ID for this run.
	hostArr [][]int32
}

// getState draws a reset runState from the ready slot or the pool.
func (d *Decoded) getState() *runState {
	rs := d.ready.Swap(nil)
	if rs == nil {
		rs, _ = d.pool.Get().(*runState)
	}
	if rs == nil {
		rs = &runState{
			rf:           make([]int32, d.rfTotal),
			cond:         make([]bool, d.cbSlots),
			outl:         make([]int32, d.numPE),
			statusVal:    make([]bool, d.numPE),
			statusArrive: make([]int64, d.numPE),
			pending:      make([]fpend, 0, 2*d.numPE+4),
			hostArr:      make([][]int32, len(d.arrays)),
		}
	}
	clear(rs.rf)
	clear(rs.cond)
	for i := range rs.statusArrive {
		rs.statusArrive[i] = -1
	}
	rs.pending = rs.pending[:0]
	return rs
}

func (d *Decoded) putState(rs *runState) {
	for i := range rs.hostArr {
		rs.hostArr[i] = nil // do not pin host heaps beyond the run
	}
	if d.ready.CompareAndSwap(nil, rs) {
		return
	}
	d.pool.Put(rs)
}

// Predecode compiles a program into its fast-path engine. It is
// conservative: any construct the fast path cannot prove executable with
// pre-resolved state (a routed read without a matching routing output, a
// missing live-in/live-out home) returns an error, and callers fall back
// to the fully instrumented interpreter, which reproduces the exact
// runtime diagnostic.
func Predecode(prog *ctxgen.Program) (*Decoded, error) {
	if prog == nil || prog.Sched == nil || prog.Sched.Comp == nil || prog.Sched.Graph == nil {
		return nil, fmt.Errorf("sim: predecode: incomplete program")
	}
	s := prog.Sched
	comp := s.Comp
	g := s.Graph
	d := &Decoded{
		numPE:   comp.NumPEs(),
		numCtx:  prog.NumCtx,
		rfOff:   make([]int32, comp.NumPEs()),
		cbSlots: comp.CBoxSlots,
		slotIdx: make([]int32, prog.NumCtx+1),
		outlIdx: make([]int32, prog.NumCtx+1),
		cbox:    append([]ctxgen.CBoxCtx(nil), prog.CBox...),
		ccu:     append([]ctxgen.CCUCtx(nil), prog.CCU...),
		arrays:  append([]string(nil), g.Arrays...),
	}
	off := int32(0)
	for i, pe := range comp.PEs {
		d.rfOff[i] = off
		off += int32(pe.RegfileSize)
	}
	d.rfTotal = int(off)
	if len(prog.PE) != d.numPE || len(prog.CBox) != d.numCtx || len(prog.CCU) != d.numCtx {
		return nil, fmt.Errorf("sim: predecode: context tables sized %d/%d/%d PEs/CBox/CCU, want %d/%d",
			len(prog.PE), len(prog.CBox), len(prog.CCU), d.numPE, d.numCtx)
	}

	for c := 0; c < d.numCtx; c++ {
		d.slotIdx[c] = int32(len(d.slots))
		d.outlIdx[c] = int32(len(d.outls))
		for pe := 0; pe < d.numPE; pe++ {
			ctx := &prog.PE[pe][c]
			if len(prog.PE[pe]) != d.numCtx {
				return nil, fmt.Errorf("sim: predecode: PE %d stream holds %d contexts, want %d",
					pe, len(prog.PE[pe]), d.numCtx)
			}
			if ctx.OutlEnable {
				if ctx.OutlAddr < 0 || ctx.OutlAddr >= comp.PEs[pe].RegfileSize {
					return nil, fmt.Errorf("sim: predecode: PE %d ctx %d outl addr %d out of RF", pe, c, ctx.OutlAddr)
				}
				d.outls = append(d.outls, outlSlot{pe: int32(pe), off: d.rfOff[pe] + int32(ctx.OutlAddr)})
			}
			if ctx.Op == arch.NOP {
				continue
			}
			sl := dslot{
				pe:          int32(pe),
				op:          ctx.Op,
				imm:         ctx.Imm,
				array:       int32(ctx.Array),
				predicated:  ctx.Predicated,
				writeEnable: ctx.WriteEnable,
				wOff:        d.rfOff[pe] + int32(ctx.WriteAddr),
				dur:         int32(comp.PEs[pe].Duration(ctx.Op)),
				energy:      comp.PEs[pe].Energy(ctx.Op),
			}
			switch {
			case ctx.Op.IsCompare():
				sl.kind = slotCompare
			case ctx.Op == arch.LOAD:
				sl.kind = slotLoad
			case ctx.Op == arch.STORE:
				sl.kind = slotStore
			default:
				sl.kind = slotALU
			}
			if (sl.kind == slotLoad || sl.kind == slotStore) &&
				(ctx.Array < 0 || ctx.Array >= len(d.arrays)) {
				return nil, fmt.Errorf("sim: predecode: PE %d ctx %d names array %d of %d", pe, c, ctx.Array, len(d.arrays))
			}
			if ctx.WriteEnable || sl.kind == slotLoad {
				if ctx.WriteAddr < 0 || ctx.WriteAddr >= comp.PEs[pe].RegfileSize {
					return nil, fmt.Errorf("sim: predecode: PE %d ctx %d write addr %d out of RF", pe, c, ctx.WriteAddr)
				}
			}
			var err error
			sl.aMode, sl.aOff, sl.aSrc, err = d.decodeSrc(prog, pe, c, ctx.AMode, ctx.AAddr, ctx.AInput)
			if err != nil {
				return nil, err
			}
			sl.bMode, sl.bOff, sl.bSrc, err = d.decodeSrc(prog, pe, c, ctx.BMode, ctx.BAddr, ctx.BInput)
			if err != nil {
				return nil, err
			}
			d.slots = append(d.slots, sl)
		}
		cb := &d.cbox[c]
		if cb.OutPEEnable && (cb.OutPEAddr < 0 || cb.OutPEAddr >= d.cbSlots) {
			return nil, fmt.Errorf("sim: predecode: ctx %d outPE slot %d out of C-Box", c, cb.OutPEAddr)
		}
		if cb.OutCtrlEnable && (cb.OutCtrlAddr < 0 || cb.OutCtrlAddr >= d.cbSlots) {
			return nil, fmt.Errorf("sim: predecode: ctx %d outCtrl slot %d out of C-Box", c, cb.OutCtrlAddr)
		}
		if (cb.Consume || cb.Recombine) && (cb.WriteAddr < 0 || cb.WriteAddr >= d.cbSlots) {
			return nil, fmt.Errorf("sim: predecode: ctx %d C-Box write slot %d out of range", c, cb.WriteAddr)
		}
		if cb.Consume && (cb.StatusPE < 0 || cb.StatusPE >= d.numPE) {
			return nil, fmt.Errorf("sim: predecode: ctx %d consumes status of PE %d", c, cb.StatusPE)
		}
		if (cb.HasA && (cb.AAddr < 0 || cb.AAddr >= d.cbSlots)) ||
			(cb.HasB && (cb.BAddr < 0 || cb.BAddr >= d.cbSlots)) {
			return nil, fmt.Errorf("sim: predecode: ctx %d C-Box operand slot out of range", c)
		}
	}
	d.slotIdx[d.numCtx] = int32(len(d.slots))
	d.outlIdx[d.numCtx] = int32(len(d.outls))

	for _, name := range g.LiveIns() {
		home := s.Homes[name]
		if home == nil {
			return nil, fmt.Errorf("sim: predecode: no home for live-in %q", name)
		}
		d.liveIns = append(d.liveIns, decHome{name: name, off: d.homeOff(home.PE, home.Addr)})
	}
	for _, name := range g.LiveOuts() {
		home := s.Homes[name]
		if home == nil {
			return nil, fmt.Errorf("sim: predecode: no home for live-out %q", name)
		}
		d.liveOuts = append(d.liveOuts, decHome{name: name, off: d.homeOff(home.PE, home.Addr)})
	}
	for _, h := range d.liveIns {
		if h.off < 0 {
			return nil, fmt.Errorf("sim: predecode: home of %q out of RF", h.name)
		}
	}
	for _, h := range d.liveOuts {
		if h.off < 0 {
			return nil, fmt.Errorf("sim: predecode: home of %q out of RF", h.name)
		}
	}
	d.transfer = int64(2 * (len(d.liveIns) + len(d.liveOuts)))
	d.finalizeLaneMeta()
	return d, nil
}

// ctxMeta is the lane engine's per-context phase-activity summary: which
// per-lane phases context c actually needs, so a batched step touches only
// live machinery (most contexts use one PE slot and nothing else).
type ctxMeta struct {
	hasPred  bool  // some slot is predicated: latch the C-Box outPE signal
	needCtrl bool  // CCU conditionally jumps: latch the branch-select signal
	needCBox bool  // C-Box consumes or recombines this context
	halt     bool  // CCUJump to itself: lanes reaching this context finish
	next     int32 // next CCNT when the CCU is unconditional
}

// finalizeLaneMeta derives the batched-lane metadata: per-context activity
// flags, the pending-commit ring geometry, load resolvability, and
// per-slot direct-write eligibility (see dslot.direct and
// dslot.resolveLoad).
func (d *Decoded) finalizeLaneMeta() {
	maxDur := int32(1)
	storeTo := make([]bool, len(d.arrays))
	for i := range d.slots {
		sl := &d.slots[i]
		if sl.dur > maxDur {
			maxDur = sl.dur
		}
		if sl.kind == slotStore {
			storeTo[sl.array] = true
		}
	}
	for i := range d.slots {
		sl := &d.slots[i]
		if sl.kind == slotLoad && !storeTo[sl.array] {
			sl.resolveLoad = true
		}
	}
	d.ringSize = 1
	for d.ringSize < int(maxDur) {
		d.ringSize <<= 1
	}
	d.ringMask = d.ringSize - 1

	d.cmeta = make([]ctxMeta, d.numCtx)
	for c := 0; c < d.numCtx; c++ {
		m := &d.cmeta[c]
		cb := &d.cbox[c]
		ccu := &d.ccu[c]
		m.needCBox = cb.Consume || cb.Recombine
		m.needCtrl = ccu.Mode == ctxgen.CCUCondJump
		m.halt = ccu.Mode == ctxgen.CCUJump && ccu.Target == c
		m.next = int32(c + 1)
		if ccu.Mode == ctxgen.CCUJump {
			m.next = int32(ccu.Target)
		}
		for i := d.slotIdx[c]; i < d.slotIdx[c+1]; i++ {
			if d.slots[i].predicated {
				m.hasPred = true
			}
		}
	}
	d.analyzeDirect()
}

// analyzeDirect decides, per RF-writing slot, whether the lane engine may
// commit the value at issue (dslot.direct) instead of through the
// end-of-cycle ring. RF offsets are per-PE disjoint, so all hazards are
// visible statically.
//
// A commit moved from cycle T+dur-1 to T is observable only if something
// touches wOff in the window (T, T+dur-1]: an operand read or routing
// output presents the old value there, or a competing write creates a
// commit-order inversion. The window for a dur-cycle op spans the next
// dur-1 executed contexts, a set reachable from the CCU tables. A write
// elsewhere in the same context is impossible (one slot per PE per
// context), and a later slot of the same context reading wOff via SrcReg
// must see the pre-commit value, which is checked separately.
//
// Competing ring commits to the same offset are ruled out by requiring
// every deferred-commit writer of wOff (multi-cycle ALU or load) to pass
// the same test: then all commits to wOff happen at their issue cycles in
// both engines, and issue order equals scalar commit order.
func (d *Decoded) analyzeDirect() {
	// Per-context offset touch sets for the window test.
	readAt := make([]map[int32]bool, d.numCtx)
	writeAt := make([]map[int32]bool, d.numCtx)
	succ := make([][]int32, d.numCtx)
	for c := 0; c < d.numCtx; c++ {
		r := map[int32]bool{}
		w := map[int32]bool{}
		for i := d.slotIdx[c]; i < d.slotIdx[c+1]; i++ {
			sl := &d.slots[i]
			if sl.aMode != int8(ctxgen.SrcNone) {
				r[sl.aOff] = true // SrcRoute carries its resolved RF offset
			}
			if sl.bMode != int8(ctxgen.SrcNone) {
				r[sl.bOff] = true
			}
			if sl.kind == slotLoad || ((sl.kind == slotALU || sl.kind == slotCompare) && sl.writeEnable) {
				w[sl.wOff] = true
			}
		}
		for _, o := range d.outls[d.outlIdx[c]:d.outlIdx[c+1]] {
			r[o.off] = true // a routing output is an RF read
		}
		readAt[c], writeAt[c] = r, w
		m := &d.cmeta[c]
		switch {
		case m.halt: // terminal: no cycle ever follows
		case m.needCtrl:
			succ[c] = []int32{int32(c + 1), int32(d.ccu[c].Target)}
		default:
			succ[c] = []int32{m.next}
		}
	}

	// windowClear reports whether no context reachable within 1..depth
	// steps of c touches off. Out-of-range successors are ignored: a lane
	// stepping there dies with a CCNT error before any read could happen.
	windowClear := func(c int, off int32, depth int32) bool {
		type node struct {
			c int32
			d int32
		}
		frontier := []node{{int32(c), 0}}
		seen := map[node]bool{}
		for len(frontier) > 0 {
			n := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			if n.d >= depth {
				continue
			}
			for _, s := range succ[n.c] {
				if s < 0 || s >= int32(d.numCtx) {
					continue
				}
				nx := node{s, n.d + 1}
				if seen[nx] {
					continue
				}
				seen[nx] = true
				if readAt[s][off] || writeAt[s][off] {
					return false
				}
				frontier = append(frontier, nx)
			}
		}
		return true
	}

	// eligible: this slot alone could commit at issue.
	eligible := make([]bool, len(d.slots))
	for c := 0; c < d.numCtx; c++ {
		lo, hi := d.slotIdx[c], d.slotIdx[c+1]
		for i := lo; i < hi; i++ {
			sl := &d.slots[i]
			isWrite := (sl.kind == slotALU && sl.writeEnable) ||
				(sl.kind == slotLoad && sl.resolveLoad)
			if !isWrite {
				continue
			}
			readLater := false
			for j := i + 1; j < hi; j++ {
				// Route reads count too: the lane engine reads a routed
				// operand straight from the RF (resolved offset), and it
				// must see the pre-commit value like the latched outl does.
				nx := &d.slots[j]
				if (nx.aMode != int8(ctxgen.SrcNone) && nx.aOff == sl.wOff) ||
					(nx.bMode != int8(ctxgen.SrcNone) && nx.bOff == sl.wOff) {
					readLater = true
					break
				}
			}
			if readLater {
				continue
			}
			if sl.dur > 1 && !windowClear(c, sl.wOff, sl.dur-1) {
				continue
			}
			eligible[i] = true
		}
	}

	// An offset's writers go direct only as a set: if any deferred-commit
	// writer (multi-cycle ALU, or any load) of wOff must stay in the ring,
	// every writer of wOff stays ordered through it.
	ringBound := map[int32]bool{}
	for i := range d.slots {
		sl := &d.slots[i]
		deferredWriter := sl.kind == slotLoad ||
			(sl.kind == slotALU && sl.writeEnable && sl.dur > 1)
		if deferredWriter && !eligible[i] {
			ringBound[sl.wOff] = true
		}
	}
	for i := range d.slots {
		sl := &d.slots[i]
		if eligible[i] && !ringBound[sl.wOff] {
			sl.direct = true
		}
	}
}

// homeOff resolves a (PE, addr) home to its flat slab offset, or -1 when
// out of range.
func (d *Decoded) homeOff(pe, addr int) int32 {
	if pe < 0 || pe >= d.numPE || addr < 0 {
		return -1
	}
	off := d.rfOff[pe] + int32(addr)
	end := int32(d.rfTotal)
	if pe+1 < d.numPE {
		end = d.rfOff[pe+1]
	}
	if off >= end {
		return -1
	}
	return off
}

// decodeSrc resolves one operand multiplexer setting at decode time. A
// routed read is checked against the source PE's routing output of the
// same context, so the fast path never needs an outl-valid bit.
func (d *Decoded) decodeSrc(prog *ctxgen.Program, pe, c int, mode ctxgen.SrcMode, addr, input int) (int8, int32, int32, error) {
	comp := prog.Sched.Comp
	switch mode {
	case ctxgen.SrcReg:
		if addr < 0 || addr >= comp.PEs[pe].RegfileSize {
			return 0, 0, 0, fmt.Errorf("sim: predecode: PE %d ctx %d reads RF[%d] out of range", pe, c, addr)
		}
		return int8(ctxgen.SrcReg), d.rfOff[pe] + int32(addr), 0, nil
	case ctxgen.SrcRoute:
		if input < 0 || input >= len(comp.PEs[pe].Inputs) {
			return 0, 0, 0, fmt.Errorf("sim: predecode: PE %d ctx %d routes from input %d of %d", pe, c, input, len(comp.PEs[pe].Inputs))
		}
		src := comp.PEs[pe].Inputs[input]
		if !prog.PE[src][c].OutlEnable {
			return 0, 0, 0, fmt.Errorf("sim: predecode: PE %d reads idle outl of PE %d at ctx %d", pe, src, c)
		}
		// A routing output presents rf[OutlAddr] of the source PE at this
		// context, so the route is just an RF read under another name: the
		// offset is resolved here and the lane engine reads it directly
		// (the scalar path keeps the latched outl via aSrc/bSrc).
		return int8(ctxgen.SrcRoute), d.rfOff[src] + int32(prog.PE[src][c].OutlAddr), int32(src), nil
	default:
		return int8(ctxgen.SrcNone), 0, 0, nil
	}
}

// NumCtx returns the number of contexts of the decoded program.
func (d *Decoded) NumCtx() int { return d.numCtx }

// Slots returns the total number of predecoded non-NOP PE slots.
func (d *Decoded) Slots() int { return len(d.slots) }

// run executes the decoded program with zero allocations per cycle. It is
// selected by Machine.RunCtx when no instrumentation (Probe/Trace) and no
// fault plan is attached; results are byte-identical to the interpreted
// path.
func (d *Decoded) run(ctx context.Context, limit int64, args map[string]int32, host *ir.Host) (*Result, error) {
	rs := d.getState()
	defer d.putState(rs)

	// Invocation: live-ins into their home slots.
	for _, h := range d.liveIns {
		v, ok := args[h.name]
		if !ok {
			return nil, fmt.Errorf("sim: missing live-in %q", h.name)
		}
		rs.rf[h.off] = v
	}
	// Resolve the host arrays once; a nil entry (absent or empty array)
	// falls back to the host interface on access for the exact fault.
	for i, name := range d.arrays {
		rs.hostArr[i] = host.Arrays[name]
	}

	res := &Result{LiveOuts: make(map[string]int32, len(d.liveOuts))}
	energy := 0.0
	ccnt := 0
	var cycle int64
	for {
		if cycle >= limit {
			return nil, &WatchdogError{Limit: limit, CCNT: ccnt}
		}
		if cycle&(ctxCheckInterval-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: run cancelled at cycle %d: %w", cycle, err)
			}
		}
		if ccnt < 0 || ccnt >= d.numCtx {
			return nil, fmt.Errorf("sim: CCNT %d out of range", ccnt)
		}
		cb := &d.cbox[ccnt]
		ccu := &d.ccu[ccnt]

		// Phase 1: routing outputs present RF values (pre-commit state).
		for _, o := range d.outls[d.outlIdx[ccnt]:d.outlIdx[ccnt+1]] {
			rs.outl[o.pe] = rs.rf[o.off]
		}

		// Phase 2: C-Box combinational outputs.
		outPE := cb.OutPEEnable && rs.cond[cb.OutPEAddr]
		outCtrl := false
		if cb.OutCtrlEnable {
			outCtrl = rs.cond[cb.OutCtrlAddr] != cb.OutCtrlInv
		}

		// Phase 3: issue this context's non-NOP slots.
		for i := d.slotIdx[ccnt]; i < d.slotIdx[ccnt+1]; i++ {
			sl := &d.slots[i]
			var a, b int32
			switch sl.aMode {
			case int8(ctxgen.SrcReg):
				a = rs.rf[sl.aOff]
			case int8(ctxgen.SrcRoute):
				a = rs.outl[sl.aSrc]
			}
			switch sl.bMode {
			case int8(ctxgen.SrcReg):
				b = rs.rf[sl.bOff]
			case int8(ctxgen.SrcRoute):
				b = rs.outl[sl.bSrc]
			}
			finish := cycle + int64(sl.dur) - 1
			squash := sl.predicated && !outPE
			energy += sl.energy

			switch sl.kind {
			case slotCompare:
				val, err := evalCompare(sl.op, a, b)
				if err != nil {
					return nil, err
				}
				rs.statusVal[sl.pe] = val
				rs.statusArrive[sl.pe] = finish
			case slotLoad:
				if !squash {
					rs.pending = append(rs.pending, fpend{
						cycle: finish, pe: sl.pe, wOff: sl.wOff,
						isDMA: true, dmaLoad: true, array: sl.array, index: a,
					})
				}
			case slotStore:
				if !squash {
					rs.pending = append(rs.pending, fpend{
						cycle: finish, pe: sl.pe,
						isDMA: true, array: sl.array, index: a, value: b,
					})
				}
			default:
				val, err := evalALU(sl.op, a, b, sl.imm)
				if err != nil {
					return nil, fmt.Errorf("sim: pe %d ctx %d: %v", sl.pe, ccnt, err)
				}
				if sl.writeEnable {
					rs.pending = append(rs.pending, fpend{
						cycle: finish, pe: sl.pe, wOff: sl.wOff,
						value: val, squash: squash,
					})
				}
			}
		}

		// Phase 4: C-Box consumes a status / recombines.
		condAddr, condVal, condWrite := 0, false, false
		if cb.Consume || cb.Recombine {
			var in bool
			if cb.Consume {
				if rs.statusArrive[cb.StatusPE] != cycle {
					return nil, fmt.Errorf("sim: ctx %d consumes missing status of PE %d", ccnt, cb.StatusPE)
				}
				in = rs.statusVal[cb.StatusPE]
			} else if cb.HasA {
				in = rs.cond[cb.AAddr] != cb.AInv
			}
			out := in
			switch cb.Logic {
			case sched.CBAnd:
				if cb.Consume && cb.HasA {
					out = in && (rs.cond[cb.AAddr] != cb.AInv)
				} else if cb.Recombine && cb.HasB {
					out = in && (rs.cond[cb.BAddr] != cb.BInv)
				}
			case sched.CBOr:
				if cb.Consume && cb.HasA {
					out = in || (rs.cond[cb.AAddr] != cb.AInv)
				} else if cb.Recombine && cb.HasB {
					out = in || (rs.cond[cb.BAddr] != cb.BInv)
				}
			}
			condAddr, condVal, condWrite = cb.WriteAddr, out, true
		}

		// Phase 5: end-of-cycle commits.
		kept := rs.pending[:0]
		for pi := range rs.pending {
			pw := rs.pending[pi]
			if pw.cycle != cycle {
				kept = append(kept, pw)
				continue
			}
			if pw.isDMA {
				arr := rs.hostArr[pw.array]
				if pw.index < 0 || int(pw.index) >= len(arr) {
					// Reproduce the host interface's fault verbatim.
					var err error
					if pw.dmaLoad {
						_, err = host.Load(d.arrays[pw.array], pw.index)
					} else {
						err = host.Store(d.arrays[pw.array], pw.index, pw.value)
					}
					return nil, fmt.Errorf("sim: %v", err)
				}
				if pw.dmaLoad {
					rs.rf[pw.wOff] = arr[pw.index]
				} else {
					arr[pw.index] = pw.value
				}
			} else if !pw.squash {
				rs.rf[pw.wOff] = pw.value
			}
		}
		rs.pending = kept
		if condWrite {
			rs.cond[condAddr] = condVal
		}

		// Phase 6: next CCNT.
		next := ccnt + 1
		switch ccu.Mode {
		case ctxgen.CCUJump:
			if ccu.Target == ccnt {
				cycle++
				res.RunCycles = cycle
				res.Energy = energy
				res.TransferCycles = d.transfer
				for _, h := range d.liveOuts {
					res.LiveOuts[h.name] = rs.rf[h.off]
				}
				return res, nil
			}
			next = ccu.Target
		case ctxgen.CCUCondJump:
			if outCtrl {
				next = ccu.Target
			}
		}
		ccnt = next
		cycle++
	}
}
