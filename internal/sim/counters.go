package sim

import (
	"cgra/internal/obs"
)

// Counters aggregates the simulator's event stream into performance
// counters: per-PE issue counts and ALU utilization, register-file
// occupancy high-water marks, routed-word traffic per link, C-Box write
// pressure, DMA bandwidth, and watchdog headroom. Attach one Counters per
// machine; after each Run call Flush to export into a registry.
//
// The collector chains any Probe/Trace hooks already installed on the
// machine (e.g. a trace.Recorder), so waveform capture and counting can
// run in the same simulation.
type Counters struct {
	numPE int
	limit int64

	cycles    int64
	issues    []int64
	rfHigh    []int
	links     map[[2]int]int64
	cboxSets  int64
	dmaLoads  int64
	dmaStores int64
	squashes  int64
	jumps     int64
	faults    int64
}

// AttachCounters hooks a new collector into the machine, chaining existing
// Probe/Trace consumers.
func AttachCounters(m *Machine) *Counters {
	c := &Counters{
		numPE: m.prog.Sched.Comp.NumPEs(),
		limit: m.MaxCycles,
		links: map[[2]int]int64{},
	}
	if c.limit == 0 {
		c.limit = 500_000_000
	}
	c.issues = make([]int64, c.numPE)
	c.rfHigh = make([]int, c.numPE)
	prevProbe := m.Probe
	m.Probe = func(ev Event) {
		c.observe(ev)
		if prevProbe != nil {
			prevProbe(ev)
		}
	}
	prevTrace := m.Trace
	m.Trace = func(cycle int64, ccnt int) {
		if cycle+1 > c.cycles {
			c.cycles = cycle + 1
		}
		if prevTrace != nil {
			prevTrace(cycle, ccnt)
		}
	}
	return c
}

func (c *Counters) observe(ev Event) {
	switch ev.Kind {
	case EvIssue:
		if ev.PE < c.numPE {
			c.issues[ev.PE]++
		}
	case EvRouteRead:
		c.links[[2]int{ev.Addr, ev.PE}]++
	case EvRFWrite, EvDMALoad:
		if ev.PE < c.numPE && ev.Addr+1 > c.rfHigh[ev.PE] {
			c.rfHigh[ev.PE] = ev.Addr + 1
		}
		if ev.Kind == EvDMALoad {
			c.dmaLoads++
		}
	case EvDMAStore:
		c.dmaStores++
	case EvRFSquash:
		c.squashes++
	case EvCondWrite:
		c.cboxSets++
	case EvJumpTaken:
		c.jumps++
	case EvFault:
		c.faults++
	}
}

// Cycles returns the number of cycles observed so far.
func (c *Counters) Cycles() int64 { return c.cycles }

// Flush exports the collected counters into the registry as cgra_sim_*
// metrics and resets the per-run tallies, so one collector can serve
// several sequential runs of the same machine (counters accumulate across
// flushes; gauges reflect the flushed run).
func (c *Counters) Flush(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Help("cgra_sim_cycles_total", "simulated context cycles")
	reg.Help("cgra_sim_pe_issue_total", "non-NOP operations issued, per PE")
	reg.Help("cgra_sim_pe_utilization", "fraction of cycles the PE issued an operation (last run)")
	reg.Help("cgra_sim_rf_highwater", "peak register-file address written + 1, per PE")
	reg.Help("cgra_sim_link_words_total", "words routed over each src->dst link")
	reg.Help("cgra_sim_cbox_writes_total", "condition-memory writes (C-Box pressure)")
	reg.Help("cgra_sim_dma_total", "DMA transfers by direction")
	reg.Help("cgra_sim_dma_bandwidth_words_per_cycle", "DMA words per cycle (last run)")
	reg.Help("cgra_sim_watchdog_utilization", "fraction of the cycle budget consumed (last run)")
	reg.Help("cgra_sim_watchdog_near_miss_total", "runs that consumed >= 80% of the cycle budget")

	reg.Counter("cgra_sim_cycles_total").Add(c.cycles)
	for pe := 0; pe < c.numPE; pe++ {
		reg.Counter("cgra_sim_pe_issue_total", obs.LInt("pe", pe)).Add(c.issues[pe])
		util := 0.0
		if c.cycles > 0 {
			util = float64(c.issues[pe]) / float64(c.cycles)
		}
		reg.Gauge("cgra_sim_pe_utilization", obs.LInt("pe", pe)).Set(util)
		reg.Gauge("cgra_sim_rf_highwater", obs.LInt("pe", pe)).SetMax(float64(c.rfHigh[pe]))
	}
	for link, n := range c.links {
		reg.Counter("cgra_sim_link_words_total",
			obs.LInt("src", link[0]), obs.LInt("dst", link[1])).Add(n)
	}
	reg.Counter("cgra_sim_cbox_writes_total").Add(c.cboxSets)
	reg.Counter("cgra_sim_dma_total", obs.L("dir", "load")).Add(c.dmaLoads)
	reg.Counter("cgra_sim_dma_total", obs.L("dir", "store")).Add(c.dmaStores)
	bw := 0.0
	if c.cycles > 0 {
		bw = float64(c.dmaLoads+c.dmaStores) / float64(c.cycles)
	}
	reg.Gauge("cgra_sim_dma_bandwidth_words_per_cycle").Set(bw)
	reg.Counter("cgra_sim_rf_squash_total").Add(c.squashes)
	reg.Counter("cgra_sim_jumps_total").Add(c.jumps)
	reg.Counter("cgra_sim_faults_total").Add(c.faults)
	reg.Gauge("cgra_sim_watchdog_budget_cycles").SetInt(c.limit)
	wu := float64(c.cycles) / float64(c.limit)
	reg.Gauge("cgra_sim_watchdog_utilization").Set(wu)
	if wu >= 0.8 {
		reg.Counter("cgra_sim_watchdog_near_miss_total").Add(1)
	}

	c.cycles = 0
	c.issues = make([]int64, c.numPE)
	c.rfHigh = make([]int, c.numPE)
	c.links = map[[2]int]int64{}
	c.cboxSets, c.dmaLoads, c.dmaStores = 0, 0, 0
	c.squashes, c.jumps, c.faults = 0, 0, 0
}
