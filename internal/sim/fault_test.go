package sim

import (
	"errors"
	"testing"

	"cgra/internal/fault"
	"cgra/internal/ir"
)

// runWithFault executes the dot-product kernel with one armed fault and
// reports the outcome: the live-out value (when the run completed) and the
// error (when detection tripped inside the machine).
func runWithFault(t *testing.T, f fault.Fault, seed int64) (int32, int64, error) {
	t.Helper()
	_, p := compile(t, `
kernel dot(array a, array b, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) { s = s + a[i] * b[i]; i = i + 1; }
}`, mesh(t, 4))
	inj, err := fault.NewInjector(fault.Plan{Seed: seed, Faults: []fault.Fault{f}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	m.Inject = inj
	m.MaxCycles = 200_000
	host := ir.NewHost()
	host.Arrays["a"] = []int32{1, 2, 3, 4}
	host.Arrays["b"] = []int32{4, 3, 2, 1}
	res, err := m.Run(map[string]int32{"n": 4, "s": 0}, host)
	if err != nil {
		return 0, inj.Injections(), err
	}
	return res.LiveOuts["s"], inj.Injections(), nil
}

func TestPermanentPEFaultManifests(t *testing.T) {
	const want = 1*4 + 2*3 + 3*2 + 4*1
	manifested := false
	for pe := 0; pe < 4; pe++ {
		s, injected, err := runWithFault(t, fault.Fault{Kind: fault.PermanentPE, PE: pe}, 1)
		if injected > 0 && (err != nil || s != want) {
			manifested = true
		}
		if injected == 0 && err == nil && s != want {
			t.Errorf("pe:%d corrupted the result without injecting", pe)
		}
	}
	if !manifested {
		t.Error("no permanent PE fault ever corrupted the run")
	}
}

func TestFaultDeterminism(t *testing.T) {
	f := fault.Fault{Kind: fault.PermanentPE, PE: 0}
	s1, n1, err1 := runWithFault(t, f, 7)
	s2, n2, err2 := runWithFault(t, f, 7)
	if s1 != s2 || n1 != n2 || (err1 == nil) != (err2 == nil) {
		t.Errorf("same seed diverged: (%d,%d,%v) vs (%d,%d,%v)", s1, n1, err1, s2, n2, err2)
	}
}

func TestTransientBitInjectsOnce(t *testing.T) {
	for pe := 0; pe < 4; pe++ {
		_, injected, _ := runWithFault(t, fault.Fault{Kind: fault.TransientBit, PE: pe}, 3)
		if injected > 1 {
			t.Errorf("transient on pe %d injected %d times, want at most 1", pe, injected)
		}
	}
}

func TestWatchdogErrorType(t *testing.T) {
	_, p := compile(t, `
kernel k(inout r) {
	r = 0;
	i = 0;
	while (i < 1) { r = r + 1; }
}`, mesh(t, 4))
	m := New(p)
	m.MaxCycles = 1000
	_, err := m.Run(map[string]int32{"r": 0}, ir.NewHost())
	var wd *WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("expected WatchdogError, got %v", err)
	}
	if wd.Limit != 1000 {
		t.Errorf("watchdog limit = %d, want 1000", wd.Limit)
	}
}
