// Batched execution lanes: one predecoded microprogram walk amortized
// across N independent requests for the same artifact. Each lane carries
// its own register slab, condition memory, status slots, pending commits
// and context counter, laid out struct-of-arrays so the shared per-slot
// decode (operand multiplexer settings, op identity, duration, energy) is
// paid once per slot per cycle instead of once per lane.
//
// The per-lane cost of a batched cycle is far below the scalar path's:
//
//   - all lane slabs are lane-innermost (rf[off*L+lane], not
//     rf[lane*rfTotal+off]), so the N lanes touched by one slot share one
//     or two cache lines instead of N, and every per-slot index is hoisted
//     out of the lane loop;
//   - routed operands were resolved to RF offsets at predecode, so the
//     routing phase vanishes and a route read is an ordinary RF read
//     (predecode's direct-commit analysis accounts for the changed read
//     point);
//   - per-context metadata (ctxMeta, resolved at predecode) lets a step
//     skip every phase the context doesn't use — most contexts of real
//     schedules have one PE slot and an idle C-Box;
//   - writes whose early commit is provably unobservable (dslot.direct:
//     single-cycle ALU results, and multi-cycle ALU results or resolved
//     loads with a clear latency window) commit straight into the RF at
//     issue; only the rest go through a due-cycle ring of 16-byte entries
//     guarded by a per-lane occupancy bitmask and a global outstanding
//     count, so ring-free stretches skip the commit phase entirely;
//   - loads from arrays no store ever targets (dslot.resolveLoad) read
//     the host value at issue and defer only the register write;
//   - op evaluation is inlined into the slot walk (invalid static ops are
//     rejected once per slot, not once per lane) — no per-lane calls.
//
// Control flow is allowed to diverge: lanes advance their own CCNT. While
// every lane shares a context — the server's same-artifact coalescing
// case, and every batch before its first data-dependent branch — the whole
// batch steps as one group, a single accumulator stands in for every
// lane's identical energy sum, and no lane's CCNT is ever written; the
// first data-dependent branch that splits the group materializes the
// per-lane state and drops the run into per-group stepping, walking
// maximal runs of active lanes sharing a context. Lanes fail and finish
// independently: a finished or faulted lane is compacted out of the
// active set and stops costing anything, so one short gcd lane never
// stalls a long fir lane.
//
// Results are byte-identical to N scalar runs: per-lane energy accumulates
// in slot order (the uniform accumulator performs the same additions in
// the same order from the same zero), commits settle in the scalar order,
// and the watchdog and cancellation checks fire on the same global cycle
// counter a scalar run would have used.
package sim

import (
	"context"
	"fmt"

	"cgra/internal/arch"
	"cgra/internal/ctxgen"
	"cgra/internal/ir"
	"cgra/internal/sched"
)

// BatchRequest is one lane of a batched run: the live-in arguments and the
// host heap that lane's DMA traffic targets. Hosts must be distinct (or
// the caller must accept interleaved DMA) — the server layer clones a
// scratch heap per lane.
type BatchRequest struct {
	Args map[string]int32
	Host *ir.Host
}

// BatchResult is one lane's outcome: exactly one of Res or Err is set.
type BatchResult struct {
	Res *Result
	Err error
}

const laneSrcNone = int8(ctxgen.SrcNone)

// lpend is one deferred lane commit: 16 bytes against the scalar path's
// 40-byte fpend, because the ring bucket already encodes the due cycle
// and squashed writes are simply never enqueued. meta==0 is a plain
// register write; otherwise it carries the DMA array ID and direction.
type lpend struct {
	wOff  int32
	value int32 // ALU/resolved-load result, or the value a store writes
	index int32 // DMA array index
	meta  int32 // 0, or array<<2 | lpLoad? | lpDMA
}

const (
	lpDMA  = int32(1)
	lpLoad = int32(2)
)

// laneState is the reusable mutable state of one batched run. All slabs
// are lane-innermost with stride L == lanes: lane l's view of RF offset o
// is rf[o*L+l], of PE p's status statusVal[p*L+l], of C-Box slot s
// cond[s*L+l]. Only the commit ring is lane-major (pend[l*ringSize+bkt]),
// since a drain walks one lane's bucket.
type laneState struct {
	lanes int // provisioned lane capacity == slab stride

	rf           []int32   // rfTotal × lanes
	cond         []bool    // cbSlots × lanes
	statusVal    []bool    // numPE × lanes
	statusArrive []int64   // numPE × lanes
	hostArr      [][]int32 // arrays × lanes
	pend         [][]lpend // lanes × ringSize due-cycle buckets
	pendMask     []uint64  // per-lane bucket-occupancy bits (ringSize ≤ 64)
	pendAny      int       // outstanding ring entries across all lanes
	energyU      float64   // uniform-mode accumulator (== every lane's sum)
	energy       []float64
	ccnt         []int32
	outPE        []bool
	outCtrl      []bool
	dead         []bool
	active       []int32
	scratch      []int32 // mid-step group compaction buffer
}

// getLaneState draws a laneState with capacity for n lanes from the pool,
// reset exactly like a scalar runState: registers and condition memory
// zeroed, status arrivals cleared, commit buckets emptied. statusVal is
// intentionally not cleared — status reads are gated by the arrival
// cycle, mirroring the scalar path.
func (d *Decoded) getLaneState(n int) *laneState {
	ls, _ := d.lanePool.Get().(*laneState)
	if ls == nil || ls.lanes < n {
		grown := n
		if ls != nil && 2*ls.lanes > grown {
			grown = 2 * ls.lanes
		}
		ls = &laneState{
			lanes:        grown,
			rf:           make([]int32, d.rfTotal*grown),
			cond:         make([]bool, d.cbSlots*grown),
			statusVal:    make([]bool, d.numPE*grown),
			statusArrive: make([]int64, d.numPE*grown),
			hostArr:      make([][]int32, len(d.arrays)*grown),
			pend:         make([][]lpend, grown*d.ringSize),
			pendMask:     make([]uint64, grown),
			energy:       make([]float64, grown),
			ccnt:         make([]int32, grown),
			outPE:        make([]bool, grown),
			outCtrl:      make([]bool, grown),
			dead:         make([]bool, grown),
			active:       make([]int32, 0, grown),
			scratch:      make([]int32, 0, grown),
		}
		for i := range ls.pend {
			ls.pend[i] = make([]lpend, 0, 4)
		}
	}
	// Slabs are lane-innermost, so a partial reset would be strided;
	// clearing the whole slab is a handful of KB and runs once per batch.
	clear(ls.rf)
	clear(ls.cond)
	for i := range ls.statusArrive {
		ls.statusArrive[i] = -1
	}
	for i := 0; i < n*d.ringSize; i++ {
		ls.pend[i] = ls.pend[i][:0]
	}
	ls.pendAny = 0
	ls.energyU = 0
	for i := 0; i < n; i++ {
		ls.pendMask[i] = 0
		ls.energy[i] = 0
		ls.ccnt[i] = 0
		ls.dead[i] = false
	}
	return ls
}

func (d *Decoded) putLaneState(ls *laneState) {
	for i := range ls.hostArr {
		ls.hostArr[i] = nil // do not pin host heaps beyond the run
	}
	ls.active = ls.active[:0]
	d.lanePool.Put(ls)
}

// RunBatch executes the decoded program once per request as data-parallel
// lanes sharing one slot-dispatch walk. It has the same watchdog and
// cancellation semantics as the scalar fast path — limit bounds every
// lane's cycle count (0 means the scalar default of 500M), and ctx is
// checked on the same cycle cadence — and each lane's entry in the result
// slice carries either that lane's Result or that lane's error; one lane's
// fault never poisons its siblings.
func (d *Decoded) RunBatch(ctx context.Context, limit int64, reqs []BatchRequest) []BatchResult {
	out := make([]BatchResult, len(reqs))
	n := len(reqs)
	if n == 0 {
		return out
	}
	if limit <= 0 {
		limit = 500_000_000
	}
	ls := d.getLaneState(n)
	defer d.putLaneState(ls)
	L := ls.lanes

	active := ls.active[:0]
	for l := 0; l < n; l++ {
		failed := false
		for _, h := range d.liveIns {
			v, ok := reqs[l].Args[h.name]
			if !ok {
				out[l].Err = fmt.Errorf("sim: missing live-in %q", h.name)
				failed = true
				break
			}
			ls.rf[int(h.off)*L+l] = v
		}
		if failed {
			continue
		}
		for i, name := range d.arrays {
			ls.hostArr[i*L+l] = reqs[l].Host.Arrays[name]
		}
		active = append(active, int32(l))
	}

	// While uniform, every active lane shares one CCNT (held here, never
	// written per lane) and the batch steps as a single group with no scan.
	// The first data-dependent branch that splits the group drops the run
	// into per-group stepping for good (re-convergence is possible but rare
	// and never worth detecting).
	uniform := true
	cUni := int32(0)
	var cycle int64
	for len(active) > 0 {
		if cycle >= limit {
			for _, l := range active {
				cc := int(ls.ccnt[l])
				if uniform {
					cc = int(cUni)
				}
				out[l].Err = &WatchdogError{Limit: limit, CCNT: cc}
			}
			break
		}
		if cycle&(ctxCheckInterval-1) == 0 {
			if err := ctx.Err(); err != nil {
				for _, l := range active {
					out[l].Err = fmt.Errorf("sim: run cancelled at cycle %d: %w", cycle, err)
				}
				break
			}
		}
		deaths := 0
		if uniform {
			dd, split, next := d.stepLanes(ls, reqs, out, active, int(cUni), cycle, true)
			deaths = dd
			if split {
				uniform = false
			} else {
				cUni = next
			}
		} else {
			// Step maximal runs of consecutive active lanes sharing a
			// CCNT. Grouping is pure amortization — per-lane state keeps
			// lanes independent — so no sorting is needed.
			for gi := 0; gi < len(active); {
				c := ls.ccnt[active[gi]]
				ge := gi + 1
				for ge < len(active) && ls.ccnt[active[ge]] == c {
					ge++
				}
				dd, _, _ := d.stepLanes(ls, reqs, out, active[gi:ge], int(c), cycle, false)
				deaths += dd
				gi = ge
			}
		}
		cycle++
		if deaths > 0 {
			// Compact finished/faulted lanes out of the active set,
			// keeping lane order stable so groups stay maximal.
			kept := active[:0]
			for _, l := range active {
				if !ls.dead[l] {
					kept = append(kept, l)
				}
			}
			active = kept
		}
	}
	return out
}

// stepLanes executes one cycle of context c for every lane in group. Lanes
// that halt, fault, or consume a missing status are marked dead and their
// BatchResult is filled in. It returns how many lanes died this step (so
// the caller compacts only when needed), whether a conditional branch sent
// group members different ways, and the group's shared next context when
// it did not split. In uniform mode per-lane CCNT and energy are not
// maintained — the caller holds the shared CCNT and ls.energyU holds the
// (identical) energy sum — and both are materialized for every lane the
// moment the group splits. Lane deaths mid-step compact the working group
// so the hot loops never test a per-lane dead flag.
func (d *Decoded) stepLanes(ls *laneState, reqs []BatchRequest, out []BatchResult, group []int32, c int, cycle int64, uniform bool) (deaths int, split bool, next int32) {
	if c < 0 || c >= d.numCtx {
		for _, l := range group {
			out[l].Err = fmt.Errorf("sim: CCNT %d out of range", c)
			ls.dead[l] = true
		}
		return len(group), false, 0
	}
	m := &d.cmeta[c]
	cb := &d.cbox[c]
	L := ls.lanes
	ring := d.ringSize
	maskable := ring <= 64
	rf := ls.rf
	died := false
	// compactLive filters dead lanes out of the working group. The scratch
	// buffer is reused; filtering from scratch into itself only shrinks it.
	compactLive := func(g []int32) []int32 {
		dst := ls.scratch[:0]
		for _, l := range g {
			if !ls.dead[l] {
				dst = append(dst, l)
			}
		}
		ls.scratch = dst[:0:cap(dst)]
		died = false
		return dst
	}

	// Phase 1 (routing outputs present RF values) has no lane work: routed
	// operands carry their resolved RF offset, and predecode's direct-commit
	// analysis guarantees the register still holds the pre-commit value when
	// a route reads it here instead of at the scalar path's latch point.

	// Phase 2: latch the C-Box combinational outputs, but only the ones
	// this context consumes (predication for squash, branch-select for the
	// CCU). The latch must happen before phase 4 writes condition memory.
	if m.hasPred {
		if cb.OutPEEnable {
			base := cb.OutPEAddr * L
			for _, l := range group {
				ls.outPE[l] = ls.cond[base+int(l)]
			}
		} else {
			for _, l := range group {
				ls.outPE[l] = false
			}
		}
	}
	if m.needCtrl {
		if cb.OutCtrlEnable {
			base, inv := cb.OutCtrlAddr*L, cb.OutCtrlInv
			for _, l := range group {
				ls.outCtrl[l] = ls.cond[base+int(l)] != inv
			}
		} else {
			for _, l := range group {
				ls.outCtrl[l] = false
			}
		}
	}

	// Phase 3: issue this context's non-NOP slots, lanes innermost so the
	// slot decode is shared and each operand's lane values sit on adjacent
	// cache lines. Energy accumulates per lane in slot order, matching the
	// scalar path bit for bit; while the group is uniform every lane's sum
	// is the same chain of additions, so one accumulator stands in for all.
	for i := d.slotIdx[c]; i < d.slotIdx[c+1]; i++ {
		sl := &d.slots[i]
		aMode, bMode := sl.aMode, sl.bMode
		aReg, bReg := int(sl.aOff)*L, int(sl.bOff)*L
		op := sl.op
		finish := cycle + int64(sl.dur) - 1
		bkt := int(finish) & d.ringMask
		bit := uint64(1) << uint(bkt) // 0 beyond 64 buckets: mask unused then
		if uniform {
			ls.energyU += sl.energy
		} else {
			en := sl.energy
			for _, l := range group {
				ls.energy[l] += en
			}
		}

		switch sl.kind {
		case slotCompare:
			switch op {
			case arch.IFLT, arch.IFLE, arch.IFGT, arch.IFGE, arch.IFEQ, arch.IFNE:
			default:
				// The op is static: every lane dies with the scalar error.
				for _, l := range group {
					out[l].Err = fmt.Errorf("unknown compare %v", op)
					ls.dead[l] = true
				}
				return deaths + len(group), split, 0
			}
			stIdx := int(sl.pe) * L
			for _, l := range group {
				li := int(l)
				var a, b int32
				if aMode != laneSrcNone {
					a = rf[aReg+li]
				}
				if bMode != laneSrcNone {
					b = rf[bReg+li]
				}
				var v bool
				switch op {
				case arch.IFLT:
					v = a < b
				case arch.IFLE:
					v = a <= b
				case arch.IFGT:
					v = a > b
				case arch.IFGE:
					v = a >= b
				case arch.IFEQ:
					v = a == b
				default: // arch.IFNE
					v = a != b
				}
				ls.statusVal[stIdx+li] = v
				ls.statusArrive[stIdx+li] = finish
			}
		case slotLoad:
			pred := sl.predicated
			resolve := sl.resolveLoad
			direct := sl.direct
			arrBase := int(sl.array) * L
			wIdx := int(sl.wOff) * L
			if resolve && direct && !pred {
				// The common fir/dot shape: a coefficient or sample fetch
				// from a read-only array, committed at issue.
				for _, l := range group {
					li := int(l)
					var a int32
					if aMode != laneSrcNone {
						a = rf[aReg+li]
					}
					arr := ls.hostArr[arrBase+li]
					if a < 0 || int(a) >= len(arr) {
						// Reproduce the host interface's fault verbatim.
						_, err := reqs[l].Host.Load(d.arrays[sl.array], a)
						out[l].Err = fmt.Errorf("sim: %v", err)
						ls.dead[l] = true
						deaths++
						died = true
						continue
					}
					rf[wIdx+li] = arr[a]
				}
			} else {
				dmaMeta := sl.array<<2 | lpLoad | lpDMA
				for _, l := range group {
					li := int(l)
					var a int32
					if aMode != laneSrcNone {
						a = rf[aReg+li]
					}
					if pred && !ls.outPE[l] {
						continue
					}
					if resolve {
						arr := ls.hostArr[arrBase+li]
						if a < 0 || int(a) >= len(arr) {
							_, err := reqs[l].Host.Load(d.arrays[sl.array], a)
							out[l].Err = fmt.Errorf("sim: %v", err)
							ls.dead[l] = true
							deaths++
							died = true
							continue
						}
						if direct {
							rf[wIdx+li] = arr[a]
						} else {
							pb := li*ring + bkt
							ls.pend[pb] = append(ls.pend[pb], lpend{wOff: sl.wOff, value: arr[a]})
							ls.pendMask[li] |= bit
							ls.pendAny++
						}
					} else {
						pb := li*ring + bkt
						ls.pend[pb] = append(ls.pend[pb], lpend{wOff: sl.wOff, index: a, meta: dmaMeta})
						ls.pendMask[li] |= bit
						ls.pendAny++
					}
				}
			}
		case slotStore:
			pred := sl.predicated
			dmaMeta := sl.array<<2 | lpDMA
			for _, l := range group {
				li := int(l)
				var a, b int32
				if aMode != laneSrcNone {
					a = rf[aReg+li]
				}
				if bMode != laneSrcNone {
					b = rf[bReg+li]
				}
				if pred && !ls.outPE[l] {
					continue
				}
				pb := li*ring + bkt
				ls.pend[pb] = append(ls.pend[pb], lpend{index: a, value: b, meta: dmaMeta})
				ls.pendMask[li] |= bit
				ls.pendAny++
			}
		default: // slotALU
			switch op {
			case arch.MOVE, arch.CONST, arch.IADD, arch.ISUB, arch.IMUL,
				arch.IAND, arch.IOR, arch.IXOR, arch.ISHL, arch.ISHR,
				arch.IUSHR, arch.INEG, arch.INOT:
			default:
				for _, l := range group {
					out[l].Err = fmt.Errorf("sim: pe %d ctx %d: unknown ALU op %v", sl.pe, c, op)
					ls.dead[l] = true
				}
				return deaths + len(group), split, 0
			}
			if !sl.writeEnable {
				continue // energy accounted; the result is discarded
			}
			pred := sl.predicated
			direct := sl.direct
			wIdx := int(sl.wOff) * L
			imm := sl.imm
			if direct && !pred {
				for _, l := range group {
					li := int(l)
					var a, b int32
					if aMode != laneSrcNone {
						a = rf[aReg+li]
					}
					if bMode != laneSrcNone {
						b = rf[bReg+li]
					}
					var v int32
					switch op {
					case arch.MOVE:
						v = a
					case arch.CONST:
						v = imm
					case arch.IADD:
						v = a + b
					case arch.ISUB:
						v = a - b
					case arch.IMUL:
						v = a * b
					case arch.IAND:
						v = a & b
					case arch.IOR:
						v = a | b
					case arch.IXOR:
						v = a ^ b
					case arch.ISHL:
						v = a << (uint32(b) & 31)
					case arch.ISHR:
						v = a >> (uint32(b) & 31)
					case arch.IUSHR:
						v = int32(uint32(a) >> (uint32(b) & 31))
					case arch.INEG:
						v = -a
					default: // arch.INOT
						v = ^a
					}
					rf[wIdx+li] = v
				}
			} else {
				for _, l := range group {
					li := int(l)
					if pred && !ls.outPE[l] {
						continue
					}
					var a, b int32
					if aMode != laneSrcNone {
						a = rf[aReg+li]
					}
					if bMode != laneSrcNone {
						b = rf[bReg+li]
					}
					var v int32
					switch op {
					case arch.MOVE:
						v = a
					case arch.CONST:
						v = imm
					case arch.IADD:
						v = a + b
					case arch.ISUB:
						v = a - b
					case arch.IMUL:
						v = a * b
					case arch.IAND:
						v = a & b
					case arch.IOR:
						v = a | b
					case arch.IXOR:
						v = a ^ b
					case arch.ISHL:
						v = a << (uint32(b) & 31)
					case arch.ISHR:
						v = a >> (uint32(b) & 31)
					case arch.IUSHR:
						v = int32(uint32(a) >> (uint32(b) & 31))
					case arch.INEG:
						v = -a
					default: // arch.INOT
						v = ^a
					}
					if direct {
						rf[wIdx+li] = v
					} else {
						pb := li*ring + bkt
						ls.pend[pb] = append(ls.pend[pb], lpend{wOff: sl.wOff, value: v})
						ls.pendMask[li] |= bit
						ls.pendAny++
					}
				}
			}
		}
		if died {
			group = compactLive(group)
			if len(group) == 0 {
				return deaths, split, 0
			}
		}
	}

	// Phase 4: C-Box consumes a status / recombines. Condition memory is
	// only read by this phase and the (already latched) phase-2 outputs,
	// so the write lands immediately.
	if m.needCBox {
		stIdx := cb.StatusPE * L
		aIdx, bIdx, wIdx := cb.AAddr*L, cb.BAddr*L, cb.WriteAddr*L
		for _, l := range group {
			li := int(l)
			var in bool
			if cb.Consume {
				if ls.statusArrive[stIdx+li] != cycle {
					out[l].Err = fmt.Errorf("sim: ctx %d consumes missing status of PE %d", c, cb.StatusPE)
					ls.dead[l] = true
					deaths++
					died = true
					continue
				}
				in = ls.statusVal[stIdx+li]
			} else if cb.HasA {
				in = ls.cond[aIdx+li] != cb.AInv
			}
			v := in
			switch cb.Logic {
			case sched.CBAnd:
				if cb.Consume && cb.HasA {
					v = in && (ls.cond[aIdx+li] != cb.AInv)
				} else if cb.Recombine && cb.HasB {
					v = in && (ls.cond[bIdx+li] != cb.BInv)
				}
			case sched.CBOr:
				if cb.Consume && cb.HasA {
					v = in || (ls.cond[aIdx+li] != cb.AInv)
				} else if cb.Recombine && cb.HasB {
					v = in || (ls.cond[bIdx+li] != cb.BInv)
				}
			}
			ls.cond[wIdx+li] = v
		}
		if died {
			group = compactLive(group)
			if len(group) == 0 {
				return deaths, split, 0
			}
		}
	}

	// Phase 5: end-of-cycle commits — drain this cycle's due bucket. The
	// global outstanding count makes ring-free stretches one integer test,
	// and the occupancy bitmask keeps quiet lanes at a single word test
	// (direct writes never enter the ring).
	if ls.pendAny > 0 {
		bkt := int(cycle) & d.ringMask
		bit := uint64(1) << uint(bkt)
		for _, l := range group {
			li := int(l)
			if maskable {
				if ls.pendMask[li]&bit == 0 {
					continue
				}
				ls.pendMask[li] &^= bit
			}
			pb := li*ring + bkt
			bucket := ls.pend[pb]
			if len(bucket) == 0 {
				continue
			}
			ls.pendAny -= len(bucket)
			for pi := range bucket {
				pw := &bucket[pi]
				if pw.meta == 0 {
					rf[int(pw.wOff)*L+li] = pw.value
					continue
				}
				arrID := int(pw.meta >> 2)
				load := pw.meta&lpLoad != 0
				arr := ls.hostArr[arrID*L+li]
				if pw.index < 0 || int(pw.index) >= len(arr) {
					// Reproduce the host interface's fault verbatim.
					var err error
					if load {
						_, err = reqs[l].Host.Load(d.arrays[arrID], pw.index)
					} else {
						err = reqs[l].Host.Store(d.arrays[arrID], pw.index, pw.value)
					}
					out[l].Err = fmt.Errorf("sim: %v", err)
					ls.dead[l] = true
					deaths++
					died = true
					break
				}
				if load {
					rf[int(pw.wOff)*L+li] = arr[pw.index]
				} else {
					arr[pw.index] = pw.value
				}
			}
			ls.pend[pb] = bucket[:0]
		}
		if died {
			group = compactLive(group)
			if len(group) == 0 {
				return deaths, split, 0
			}
		}
	}

	// Phase 6: next CCNT, or halt the whole group at a terminal context.
	if m.halt {
		for _, l := range group {
			li := int(l)
			e := ls.energy[l]
			if uniform {
				e = ls.energyU
			}
			res := &Result{
				RunCycles:      cycle + 1,
				TransferCycles: d.transfer,
				Energy:         e,
				LiveOuts:       make(map[string]int32, len(d.liveOuts)),
			}
			for _, h := range d.liveOuts {
				res.LiveOuts[h.name] = rf[int(h.off)*L+li]
			}
			out[l].Res = res
			ls.dead[l] = true
		}
		return deaths + len(group), split, 0
	}
	if m.needCtrl {
		tgt, seq := int32(d.ccu[c].Target), int32(c+1)
		first := ls.outCtrl[group[0]]
		same := true
		for _, l := range group {
			if ls.outCtrl[l] != first {
				same = false
				break
			}
		}
		if same {
			if first {
				next = tgt
			} else {
				next = seq
			}
			if !uniform {
				for _, l := range group {
					ls.ccnt[l] = next
				}
			}
			return deaths, false, next
		}
		// The group splits: materialize the per-lane CCNT and energy the
		// divergent path keeps from here on.
		if uniform {
			for _, l := range group {
				ls.energy[l] = ls.energyU
			}
		}
		for _, l := range group {
			if ls.outCtrl[l] {
				ls.ccnt[l] = tgt
			} else {
				ls.ccnt[l] = seq
			}
		}
		return deaths, true, 0
	}
	next = m.next
	if !uniform {
		for _, l := range group {
			ls.ccnt[l] = next
		}
	}
	return deaths, false, next
}
