// Package sim is a cycle-accurate behavioural simulator for generated CGRA
// context streams. It mirrors the execution semantics fixed in DESIGN.md §5:
// one global CCNT addressing every context memory, per-PE ALUs with
// register files, neighbour routing through outl, a C-Box consuming one
// status per cycle and driving predication (outPE) and branch selection
// (outctrl), DMA to the host heap, and predicated squashing of commits.
//
// The simulator is the ground truth for the reproduction: every kernel's
// CGRA run is checked against the IR interpreter's results.
package sim

import (
	"context"
	"fmt"

	"cgra/internal/arch"
	"cgra/internal/ctxgen"
	"cgra/internal/fault"
	"cgra/internal/ir"
	"cgra/internal/obs"
	"cgra/internal/sched"
)

// WatchdogError reports that a run exceeded its cycle budget. The recovery
// layer treats it as a detected fault (a corrupted condition can trap a
// schedule in an infinite loop), distinct from structural simulator errors.
type WatchdogError struct {
	// Limit is the exhausted cycle budget.
	Limit int64
	// CCNT is the context counter at expiry.
	CCNT int
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("sim: watchdog: cycle budget %d exhausted (ccnt=%d)", e.Limit, e.CCNT)
}

// Result reports one CGRA run (the paper's "invocation": receive live-ins,
// run, send live-outs, §IV-A3).
type Result struct {
	// RunCycles is the number of context cycles executed.
	RunCycles int64
	// TransferCycles is the invocation overhead: 2 cycles per live-in and
	// per live-out local variable.
	TransferCycles int64
	// LiveOuts holds the final values of live-out locals.
	LiveOuts map[string]int32
	// Energy accumulates the per-op energy of executed operations
	// (arbitrary units from the composition description).
	Energy float64
}

// TotalCycles is the full invocation cost.
func (r *Result) TotalCycles() int64 { return r.RunCycles + r.TransferCycles }

// Machine executes one program.
type Machine struct {
	prog *ctxgen.Program
	// MaxCycles bounds the run (default 500M).
	MaxCycles int64
	// Trace, when non-nil, receives one line per cycle (debugging).
	Trace func(cycle int64, ccnt int)
	// Probe, when non-nil, receives every observable state change (RF
	// writes, squashes, condition writes, jumps, DMA); see Event.
	Probe func(Event)
	// Inject, when non-nil, corrupts machine state per its armed fault
	// plan (see package fault).
	Inject *fault.Injector
	// PhysPE maps this program's logical PE indices to the physical PE
	// identities the injector's faults name. Degraded compositions are
	// renumbered, so the mapping keeps faults pinned to the physical
	// hardware; nil means identity (undegraded composition).
	PhysPE []int
	// Engine, when non-nil, is the predecoded fast-path engine for prog
	// (see Predecode). RunCtx selects it whenever no instrumentation
	// (Trace/Probe) and no fault plan is attached, so observability costs
	// nothing when unused; results are identical either way.
	Engine *Decoded
}

// New creates a machine for a program.
func New(prog *ctxgen.Program) *Machine { return &Machine{prog: prog} }

type pendingWrite struct {
	cycle   int64 // end of this absolute cycle
	pe      int
	addr    int
	value   int32
	squash  bool
	isDMA   bool
	dmaLoad bool
	array   string
	index   int32
}

// Run executes the program with the given live-in arguments against host
// memory and returns the live-outs and cycle counts.
func (m *Machine) Run(args map[string]int32, host *ir.Host) (*Result, error) {
	return m.RunCtx(context.Background(), args, host)
}

// ctxCheckInterval is how many simulated cycles pass between cooperative
// cancellation checks in RunCtx. Checking ctx.Err() costs a few ns, so the
// interval keeps the overhead invisible while still bounding the reaction
// time to a cancellation at well under a millisecond of wall time.
const ctxCheckInterval = 8192

// RunCtx is Run with cooperative cancellation: the machine checks the
// context every few thousand simulated cycles and aborts the run with the
// context's error (wrapped, so errors.Is works) when it is cancelled or
// past its deadline. The host heap may hold partial DMA effects after a
// cancelled run; callers that need clean state must run against a clone.
//
// Inside a traced request the execution becomes an "engine" span,
// annotated with the path taken (predecoded fast engine vs instrumented
// interpreter) and the simulated cycle count. Untraced runs skip the span
// entirely.
func (m *Machine) RunCtx(ctx context.Context, args map[string]int32, host *ir.Host) (*Result, error) {
	sp := obs.ContextSpan(ctx).StartChild("engine")
	if sp == nil {
		return m.runCtx(ctx, args, host)
	}
	if m.fastPath() {
		sp.Annotate("path", "fast")
	} else {
		sp.Annotate("path", "interp")
	}
	res, err := m.runCtx(ctx, args, host)
	if err == nil {
		sp.Set("cycles", res.TotalCycles())
	}
	sp.Finish()
	return res, err
}

// fastPath reports whether the run dispatches to the predecoded engine:
// only when one is attached and no instrumentation or fault plan forces
// the interpreter (mirrors the dispatch check in runCtx).
func (m *Machine) fastPath() bool {
	return m.Engine != nil && m.Trace == nil && m.Probe == nil && m.Inject == nil
}

func (m *Machine) runCtx(ctx context.Context, args map[string]int32, host *ir.Host) (*Result, error) {
	prog := m.prog
	s := prog.Sched
	comp := s.Comp
	g := s.Graph
	limit := m.MaxCycles
	if limit == 0 {
		limit = 500_000_000
	}
	if m.fastPath() {
		return m.Engine.run(ctx, limit, args, host)
	}
	m.Inject.BeginRun()
	// phys maps a logical PE index to the physical identity faults name.
	phys := func(pe int) int {
		if m.PhysPE == nil {
			return pe
		}
		return m.PhysPE[pe]
	}

	// Register files and condition memory.
	rf := make([][]int32, comp.NumPEs())
	for i, pe := range comp.PEs {
		rf[i] = make([]int32, pe.RegfileSize)
	}
	condMem := make([]bool, comp.CBoxSlots)

	// Invocation: transfer live-ins into their home RF slots (2 cycles
	// per variable via the token network, §IV-A3).
	liveIns := g.LiveIns()
	for _, name := range liveIns {
		v, ok := args[name]
		if !ok {
			return nil, fmt.Errorf("sim: missing live-in %q", name)
		}
		home := s.Homes[name]
		if home == nil {
			return nil, fmt.Errorf("sim: no home for live-in %q", name)
		}
		rf[home.PE][home.Addr] = v
	}

	// busyUntil[pe] is the absolute cycle after which the PE accepts a
	// new context (multi-cycle ops stall context decoding per PE; the
	// scheduler guarantees NOPs there, so this only guards consistency).
	res := &Result{LiveOuts: map[string]int32{}}
	var pending []pendingWrite
	// Per-PE status slots: a compare finishing at cycle c leaves its value
	// in statusVal[pe] with statusArrive[pe]=c. A PE has at most one
	// status in flight (multi-cycle ops stall its context decoding), so
	// one slot per PE replaces a pending-status list, and the C-Box
	// consume becomes a single bounded lookup.
	statusVal := make([]bool, comp.NumPEs())
	statusArrive := make([]int64, comp.NumPEs())
	for i := range statusArrive {
		statusArrive[i] = -1
	}

	ccnt := 0
	var cycle int64
	for {
		if cycle >= limit {
			return nil, &WatchdogError{Limit: limit, CCNT: ccnt}
		}
		if cycle%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: run cancelled at cycle %d: %w", cycle, err)
			}
		}
		if ccnt < 0 || ccnt >= prog.NumCtx {
			return nil, fmt.Errorf("sim: CCNT %d out of range", ccnt)
		}
		if m.Trace != nil {
			m.Trace(cycle, ccnt)
		}
		cbox := prog.CBox[ccnt]
		ccu := prog.CCU[ccnt]

		// Phase 1: routing outputs present RF values (state before
		// this cycle's writes).
		outl := make([]int32, comp.NumPEs())
		outlValid := make([]bool, comp.NumPEs())
		for pe := range comp.PEs {
			ctx := prog.PE[pe][ccnt]
			if ctx.OutlEnable {
				outl[pe] = rf[pe][ctx.OutlAddr]
				outlValid[pe] = true
			}
		}

		// Phase 2: C-Box combinational outputs from current memory.
		outPE := false
		if cbox.OutPEEnable {
			outPE = condMem[cbox.OutPEAddr]
		}
		outCtrl := false
		if cbox.OutCtrlEnable {
			outCtrl = condMem[cbox.OutCtrlAddr] != cbox.OutCtrlInv
		}

		// Phase 3: PEs issue operations.
		for pe := range comp.PEs {
			ctx := prog.PE[pe][ccnt]
			if ctx.Op == arch.NOP {
				continue
			}
			m.emit(Event{Cycle: cycle, CCNT: ccnt, Kind: EvIssue, PE: pe, Value: int32(ctx.Op)})
			fetch := func(mode ctxgen.SrcMode, addr, input int) (int32, error) {
				switch mode {
				case ctxgen.SrcReg:
					return rf[pe][addr], nil
				case ctxgen.SrcRoute:
					src := comp.PEs[pe].Inputs[input]
					if !outlValid[src] {
						return 0, fmt.Errorf("sim: PE %d reads idle outl of PE %d at ctx %d", pe, src, ccnt)
					}
					v := outl[src]
					if cv, hit := m.Inject.CorruptRoute(phys(src), phys(pe), cycle, v); hit {
						m.emit(Event{Cycle: cycle, CCNT: ccnt, Kind: EvFault, PE: pe, Value: cv})
						v = cv
					}
					m.emit(Event{Cycle: cycle, CCNT: ccnt, Kind: EvRouteRead, PE: pe, Addr: src, Value: v})
					return v, nil
				default:
					return 0, nil
				}
			}
			a, err := fetch(ctx.AMode, ctx.AAddr, ctx.AInput)
			if err != nil {
				return nil, err
			}
			b, err := fetch(ctx.BMode, ctx.BAddr, ctx.BInput)
			if err != nil {
				return nil, err
			}
			dur := comp.PEs[pe].Duration(ctx.Op)
			finish := cycle + int64(dur) - 1
			squash := ctx.Predicated && !outPE
			res.Energy += comp.PEs[pe].Energy(ctx.Op)

			switch {
			case ctx.Op.IsCompare():
				val, err := evalCompare(ctx.Op, a, b)
				if err != nil {
					return nil, err
				}
				if cv, hit := m.Inject.CorruptStatus(phys(pe), cycle, val); hit {
					m.emit(Event{Cycle: cycle, CCNT: ccnt, Kind: EvFault, PE: pe})
					val = cv
				}
				statusVal[pe] = val
				statusArrive[pe] = finish
			case ctx.Op == arch.LOAD:
				if !squash {
					arr := g.Arrays[ctx.Array]
					pending = append(pending, pendingWrite{
						cycle: finish, pe: pe, addr: ctx.WriteAddr,
						isDMA: true, dmaLoad: true, array: arr, index: a,
					})
				}
			case ctx.Op == arch.STORE:
				if !squash {
					if cv, hit := m.Inject.CorruptALU(phys(pe), cycle, b); hit {
						m.emit(Event{Cycle: cycle, CCNT: ccnt, Kind: EvFault, PE: pe, Value: cv})
						b = cv
					}
					arr := g.Arrays[ctx.Array]
					pending = append(pending, pendingWrite{
						cycle: finish, pe: pe,
						isDMA: true, array: arr, index: a, value: b,
					})
				}
			default:
				val, err := evalALU(ctx.Op, a, b, ctx.Imm)
				if err != nil {
					return nil, fmt.Errorf("sim: pe %d ctx %d: %v", pe, ccnt, err)
				}
				if cv, hit := m.Inject.CorruptALU(phys(pe), cycle, val); hit {
					m.emit(Event{Cycle: cycle, CCNT: ccnt, Kind: EvFault, PE: pe, Value: cv})
					val = cv
				}
				if ctx.WriteEnable {
					pending = append(pending, pendingWrite{
						cycle: finish, pe: pe, addr: ctx.WriteAddr,
						value: val, squash: squash,
					})
				}
			}
		}

		// Phase 4: C-Box consumes a status / recombines, writing at end
		// of cycle.
		var condWrite *struct {
			addr int
			val  bool
		}
		if cbox.Consume || cbox.Recombine {
			var in bool
			if cbox.Consume {
				// The status must arrive exactly this cycle.
				if statusArrive[cbox.StatusPE] != cycle {
					return nil, fmt.Errorf("sim: ctx %d consumes missing status of PE %d", ccnt, cbox.StatusPE)
				}
				in = statusVal[cbox.StatusPE]
			} else if cbox.HasA {
				in = condMem[cbox.AAddr] != cbox.AInv
			}
			out := in
			switch cbox.Logic {
			case sched.CBAnd:
				if cbox.Consume && cbox.HasA {
					out = in && (condMem[cbox.AAddr] != cbox.AInv)
				} else if cbox.Recombine && cbox.HasB {
					out = in && (condMem[cbox.BAddr] != cbox.BInv)
				}
			case sched.CBOr:
				if cbox.Consume && cbox.HasA {
					out = in || (condMem[cbox.AAddr] != cbox.AInv)
				} else if cbox.Recombine && cbox.HasB {
					out = in || (condMem[cbox.BAddr] != cbox.BInv)
				}
			}
			condWrite = &struct {
				addr int
				val  bool
			}{cbox.WriteAddr, out}
		}

		// Phase 5: end-of-cycle commits (RF writes, DMA completions).
		kept := pending[:0]
		for _, pw := range pending {
			if pw.cycle != cycle {
				kept = append(kept, pw)
				continue
			}
			if pw.isDMA {
				if pw.dmaLoad {
					v, err := host.Load(pw.array, pw.index)
					if err != nil {
						return nil, fmt.Errorf("sim: %v", err)
					}
					if cv, hit := m.Inject.CorruptALU(phys(pw.pe), cycle, v); hit {
						m.emit(Event{Cycle: cycle, CCNT: ccnt, Kind: EvFault, PE: pw.pe, Value: cv})
						v = cv
					}
					rf[pw.pe][pw.addr] = v
					m.emit(Event{Cycle: cycle, CCNT: ccnt, Kind: EvDMALoad, PE: pw.pe, Addr: pw.addr, Value: v})
				} else {
					if err := host.Store(pw.array, pw.index, pw.value); err != nil {
						return nil, fmt.Errorf("sim: %v", err)
					}
					m.emit(Event{Cycle: cycle, CCNT: ccnt, Kind: EvDMAStore, PE: pw.pe, Addr: int(pw.index), Value: pw.value})
				}
			} else if !pw.squash {
				if cv, hit := m.Inject.CorruptWrite(phys(pw.pe), cycle, pw.value); hit {
					m.emit(Event{Cycle: cycle, CCNT: ccnt, Kind: EvFault, PE: pw.pe, Addr: pw.addr, Value: cv})
					pw.value = cv
				}
				rf[pw.pe][pw.addr] = pw.value
				m.emit(Event{Cycle: cycle, CCNT: ccnt, Kind: EvRFWrite, PE: pw.pe, Addr: pw.addr, Value: pw.value})
			} else {
				m.emit(Event{Cycle: cycle, CCNT: ccnt, Kind: EvRFSquash, PE: pw.pe, Addr: pw.addr})
			}
		}
		pending = kept
		if condWrite != nil {
			condMem[condWrite.addr] = condWrite.val
			v := int32(0)
			if condWrite.val {
				v = 1
			}
			m.emit(Event{Cycle: cycle, CCNT: ccnt, Kind: EvCondWrite, Addr: condWrite.addr, Value: v})
		}

		// Phase 6: next CCNT.
		next := ccnt + 1
		switch ccu.Mode {
		case ctxgen.CCUJump:
			if ccu.Target == ccnt {
				// Halt context: lock and finish the run.
				m.emit(Event{Cycle: cycle, CCNT: ccnt, Kind: EvHalt})
				cycle++
				res.RunCycles = cycle
				goto done
			}
			next = ccu.Target
			m.emit(Event{Cycle: cycle, CCNT: ccnt, Kind: EvJumpTaken, Value: int32(ccu.Target)})
		case ctxgen.CCUCondJump:
			if outCtrl {
				next = ccu.Target
				m.emit(Event{Cycle: cycle, CCNT: ccnt, Kind: EvJumpTaken, Value: int32(ccu.Target)})
			}
		}
		ccnt = next
		cycle++
	}
done:
	res.TransferCycles = int64(2 * (len(liveIns) + len(g.LiveOuts())))
	for _, name := range g.LiveOuts() {
		home := s.Homes[name]
		if home == nil {
			return nil, fmt.Errorf("sim: no home for live-out %q", name)
		}
		res.LiveOuts[name] = rf[home.PE][home.Addr]
	}
	return res, nil
}

func evalALU(op arch.OpCode, a, b, imm int32) (int32, error) {
	switch op {
	case arch.MOVE:
		return a, nil
	case arch.CONST:
		return imm, nil
	case arch.IADD:
		return a + b, nil
	case arch.ISUB:
		return a - b, nil
	case arch.IMUL:
		return a * b, nil
	case arch.IAND:
		return a & b, nil
	case arch.IOR:
		return a | b, nil
	case arch.IXOR:
		return a ^ b, nil
	case arch.ISHL:
		return a << (uint32(b) & 31), nil
	case arch.ISHR:
		return a >> (uint32(b) & 31), nil
	case arch.IUSHR:
		return int32(uint32(a) >> (uint32(b) & 31)), nil
	case arch.INEG:
		return -a, nil
	case arch.INOT:
		return ^a, nil
	}
	return 0, fmt.Errorf("unknown ALU op %v", op)
}

func evalCompare(op arch.OpCode, a, b int32) (bool, error) {
	switch op {
	case arch.IFLT:
		return a < b, nil
	case arch.IFLE:
		return a <= b, nil
	case arch.IFGT:
		return a > b, nil
	case arch.IFGE:
		return a >= b, nil
	case arch.IFEQ:
		return a == b, nil
	case arch.IFNE:
		return a != b, nil
	}
	return false, fmt.Errorf("unknown compare %v", op)
}
