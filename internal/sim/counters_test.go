package sim

import (
	"strings"
	"testing"

	"cgra/internal/ir"
	"cgra/internal/obs"
)

func TestCountersStraightLine(t *testing.T) {
	_, p := compile(t, `kernel k(in x, in y, inout r) { r = (x + y) * (x - y); }`, mesh(t, 4))
	m := New(p)
	c := AttachCounters(m)
	if _, err := m.Run(map[string]int32{"x": 9, "y": 4, "r": 0}, ir.NewHost()); err != nil {
		t.Fatal(err)
	}
	if c.Cycles() <= 0 {
		t.Fatal("no cycles counted")
	}
	reg := obs.NewRegistry()
	c.Flush(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"cgra_sim_cycles_total ",
		`cgra_sim_pe_issue_total{pe="0"}`,
		`cgra_sim_pe_utilization{pe="0"}`,
		`cgra_sim_rf_highwater{pe="0"}`,
		"cgra_sim_cbox_writes_total ",
		`cgra_sim_dma_total{dir="load"}`,
		"cgra_sim_watchdog_utilization ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
	// The kernel issues at least 3 real ops (add, sub, mul; the write into
	// r fuses into the multiply).
	total := int64(0)
	for _, mp := range reg.Snapshot() {
		if mp.Name == "cgra_sim_pe_issue_total" && mp.Value != nil {
			total += int64(*mp.Value)
		}
	}
	if total < 3 {
		t.Errorf("counted %d issues, want >= 3", total)
	}
}

func TestCountersDMAAndLinks(t *testing.T) {
	src := `
kernel scale(in n, array a) {
	i = 0;
	while (i < n) { a[i] = a[i] * 2; i = i + 1; }
}`
	_, p := compile(t, src, mesh(t, 4))
	m := New(p)
	c := AttachCounters(m)
	host := ir.NewHost()
	host.Arrays["a"] = []int32{1, 2, 3, 4}
	if _, err := m.Run(map[string]int32{"n": 4}, host); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.Flush(reg)
	var loads, stores, links, jumps float64
	for _, mp := range reg.Snapshot() {
		if mp.Value == nil {
			continue
		}
		switch mp.Name {
		case "cgra_sim_dma_total":
			if mp.Labels["dir"] == "load" {
				loads = *mp.Value
			} else {
				stores = *mp.Value
			}
		case "cgra_sim_link_words_total":
			links += *mp.Value
		case "cgra_sim_jumps_total":
			jumps = *mp.Value
		}
	}
	if loads != 4 || stores != 4 {
		t.Errorf("dma loads=%v stores=%v, want 4/4", loads, stores)
	}
	if links == 0 {
		t.Error("no routed-link traffic counted")
	}
	if jumps < 4 {
		t.Errorf("jumps = %v, want >= 4 (loop back-edges)", jumps)
	}
}

// TestCountersChainHooks checks that attaching counters preserves an
// already-installed probe.
func TestCountersChainHooks(t *testing.T) {
	_, p := compile(t, `kernel k(in x, inout r) { r = x + 1; }`, mesh(t, 4))
	m := New(p)
	var seen int
	m.Probe = func(ev Event) { seen++ }
	c := AttachCounters(m)
	if _, err := m.Run(map[string]int32{"x": 1, "r": 0}, ir.NewHost()); err != nil {
		t.Fatal(err)
	}
	if seen == 0 {
		t.Error("chained probe not called")
	}
	if c.Cycles() == 0 {
		t.Error("counters not fed")
	}
}

// TestCountersFlushResets checks per-run tallies reset while registry
// counters accumulate across runs.
func TestCountersFlushResets(t *testing.T) {
	_, p := compile(t, `kernel k(in x, inout r) { r = x + 1; }`, mesh(t, 4))
	m := New(p)
	c := AttachCounters(m)
	reg := obs.NewRegistry()
	if _, err := m.Run(map[string]int32{"x": 1, "r": 0}, ir.NewHost()); err != nil {
		t.Fatal(err)
	}
	c.Flush(reg)
	var first float64
	for _, mp := range reg.Snapshot() {
		if mp.Name == "cgra_sim_cycles_total" && mp.Value != nil {
			first = *mp.Value
		}
	}
	if first <= 0 {
		t.Fatal("no cycles exported")
	}
	if _, err := m.Run(map[string]int32{"x": 2, "r": 0}, ir.NewHost()); err != nil {
		t.Fatal(err)
	}
	c.Flush(reg)
	for _, mp := range reg.Snapshot() {
		if mp.Name == "cgra_sim_cycles_total" && mp.Value != nil && *mp.Value != 2*first {
			t.Errorf("cycles after two runs = %v, want %v", *mp.Value, 2*first)
		}
	}
}
