package exper

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"cgra/internal/adpcm"
	"cgra/internal/arch"
	"cgra/internal/ir"
	"cgra/internal/pipeline"
	"cgra/internal/sim"
	"cgra/internal/workload"
)

// LanesBenchLaneCounts is the lane-count sweep measured per kernel.
var LanesBenchLaneCounts = []int{1, 4, 16, 64}

// LanesPoint is the aggregate throughput of one lane count: simulated
// cycles per wall-clock second summed across all lanes of the batch, and
// its ratio to running the same N invocations as sequential scalar runs.
type LanesPoint struct {
	N            int     `json:"n"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	Speedup      float64 `json:"speedup"`
}

// LanesBenchEntry is one kernel's scalar-vs-batched engine throughput.
type LanesBenchEntry struct {
	Name string `json:"name"`
	// Cycles is the simulated CGRA cycle count of one lane's run.
	Cycles int64 `json:"cycles"`
	// ScalarCyclesPerSec is the predecoded fast path running one
	// invocation at a time (the N-sequential-runs baseline).
	ScalarCyclesPerSec float64 `json:"scalar_cycles_per_sec"`
	// Lanes is the batched sweep over LanesBenchLaneCounts.
	Lanes []LanesPoint `json:"lanes"`
	// Speedup16 is the N=16 point's speedup, the number the CI gate
	// (benchguard -kind lanes) enforces on the gated kernels.
	Speedup16 float64 `json:"speedup_16"`
}

// LanesBenchResult is the document written by `tables -lanes-bench-json`
// (committed as BENCH_lanes.json and gated in CI by cmd/benchguard).
type LanesBenchResult struct {
	Composition string            `json:"composition"`
	Workloads   []LanesBenchEntry `json:"workloads"`
}

// LanesBench measures batched-engine throughput for the benchmark kernel
// set on the "9 PEs" reference composition: one scalar fast-path baseline
// per kernel, then sim.RunBatch at each lane count, reporting aggregate
// simulated cycles per second across the batch.
func LanesBench(s *Setup) (*LanesBenchResult, error) {
	comp, err := arch.ByName("9 PEs")
	if err != nil {
		return nil, err
	}
	out := &LanesBenchResult{Composition: comp.Name}
	type bcase struct {
		name string
		k    *ir.Kernel
		args map[string]int32
		host func() *ir.Host
	}
	var cases []bcase
	for _, name := range []string{"gcd", "fir", "dot", "bitcount"} {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		cases = append(cases, bcase{
			name: name,
			k:    w.Kernel,
			args: w.Args(w.DefaultSize),
			host: func() *ir.Host { return w.Host(w.DefaultSize) },
		})
	}
	cases = append(cases, bcase{
		name: "adpcm",
		k:    adpcm.Kernel(),
		args: adpcm.Args(s.N, adpcm.State{}),
		host: func() *ir.Host { return adpcm.NewHost(s.Codes, s.N) },
	})
	for _, bc := range cases {
		c, err := pipeline.Compile(bc.k, comp, Options())
		if err != nil {
			return nil, fmt.Errorf("lanesbench %s: %v", bc.name, err)
		}
		eng, err := c.Engine()
		if err != nil {
			return nil, fmt.Errorf("lanesbench %s: predecode: %v", bc.name, err)
		}
		e := LanesBenchEntry{Name: bc.name}
		cycles, perSec, _, err := measureSim(c.Machine, bc.args, bc.host)
		if err != nil {
			return nil, fmt.Errorf("lanesbench %s scalar: %v", bc.name, err)
		}
		e.Cycles, e.ScalarCyclesPerSec = cycles, perSec
		for _, n := range LanesBenchLaneCounts {
			agg, err := measureLanes(eng, bc.args, bc.host, n, cycles)
			if err != nil {
				return nil, fmt.Errorf("lanesbench %s N=%d: %v", bc.name, n, err)
			}
			pt := LanesPoint{N: n, CyclesPerSec: agg}
			if e.ScalarCyclesPerSec > 0 {
				pt.Speedup = agg / e.ScalarCyclesPerSec
			}
			if n == 16 {
				e.Speedup16 = pt.Speedup
			}
			e.Lanes = append(e.Lanes, pt)
		}
		out.Workloads = append(out.Workloads, e)
	}
	return out, nil
}

// measureLanes drives warm RunBatch calls of n identical-argument lanes
// (each on a fresh host) until the measurement window elapses and returns
// aggregate simulated cycles per second across the batch.
func measureLanes(eng *sim.Decoded, args map[string]int32, host func() *ir.Host, n int, cycles int64) (float64, error) {
	ctx := context.Background()
	mk := func() []sim.BatchRequest {
		reqs := make([]sim.BatchRequest, n)
		for i := range reqs {
			reqs[i] = sim.BatchRequest{Args: args, Host: host()}
		}
		return reqs
	}
	// Warm-up: lane-slab allocation, code paths hot.
	for _, o := range eng.RunBatch(ctx, 0, mk()) {
		if o.Err != nil {
			return 0, o.Err
		}
	}
	start := time.Now()
	iters := 0
	for time.Since(start) < simBenchMinTime || iters < 5 {
		outs := eng.RunBatch(ctx, 0, mk())
		for _, o := range outs {
			if o.Err != nil {
				return 0, o.Err
			}
		}
		iters++
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, nil
	}
	return float64(cycles) * float64(n) * float64(iters) / elapsed, nil
}

// WriteJSON renders the lanes bench result as an indented JSON document.
func (b *LanesBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadLanesBench parses a document previously written by WriteJSON.
func ReadLanesBench(r io.Reader) (*LanesBenchResult, error) {
	b := &LanesBenchResult{}
	if err := json.NewDecoder(r).Decode(b); err != nil {
		return nil, fmt.Errorf("lanes bench: %v", err)
	}
	return b, nil
}
