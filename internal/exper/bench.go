package exper

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"cgra/internal/adpcm"
	"cgra/internal/arch"
	"cgra/internal/ir"
	"cgra/internal/obs"
	"cgra/internal/pipeline"
	"cgra/internal/workload"
)

// BenchEntry is one workload's measured compile and simulation cost on the
// benchmark composition. Compile time is broken down per pipeline phase
// from the compile span tree.
type BenchEntry struct {
	Name           string             `json:"name"`
	Size           int                `json:"size"`
	CompileSeconds float64            `json:"compile_seconds"`
	PhaseSeconds   map[string]float64 `json:"compile_phase_seconds"`
	SimSeconds     float64            `json:"sim_seconds"`
	Cycles         int64              `json:"cycles"`
	RunCycles      int64              `json:"run_cycles"`
	Contexts       int                `json:"contexts"`
	MaxRF          int                `json:"max_rf"`
}

// BenchResult is the document written by `tables -bench-json`.
type BenchResult struct {
	Composition string       `json:"composition"`
	Workloads   []BenchEntry `json:"workloads"`
}

// Bench compiles and simulates every library workload plus the paper's
// ADPCM decode on the "9 PEs" reference composition, timing compilation
// (per phase, from the span tree) and simulation separately. Every run is
// checked against the reference interpreter, so a bench pass doubles as a
// correctness sweep.
func Bench(s *Setup) (*BenchResult, error) {
	comp, err := arch.ByName("9 PEs")
	if err != nil {
		return nil, err
	}
	out := &BenchResult{Composition: comp.Name}
	for _, w := range workload.All() {
		e, err := benchOne(w.Name, w.DefaultSize, comp,
			w.Kernel, w.Args(w.DefaultSize), w.Host(w.DefaultSize))
		if err != nil {
			return nil, err
		}
		out.Workloads = append(out.Workloads, *e)
	}
	// The ADPCM decoder rides on the shared Setup so the bench input
	// matches the rest of the evaluation.
	e, err := benchOne("adpcm", s.N, comp,
		adpcm.Kernel(), adpcm.Args(s.N, adpcm.State{}), adpcm.NewHost(s.Codes, s.N))
	if err != nil {
		return nil, err
	}
	out.Workloads = append(out.Workloads, *e)
	return out, nil
}

func benchOne(name string, size int, comp *arch.Composition,
	k *ir.Kernel, args map[string]int32, host *ir.Host) (*BenchEntry, error) {
	opts := Options()
	start := time.Now()
	c, err := pipeline.Compile(k, comp, opts)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %v", name, err)
	}
	compileTime := time.Since(start)

	start = time.Now()
	res, err := pipeline.CheckAgainstInterpreter(k, c, args, host)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %v", name, err)
	}
	simTime := time.Since(start)

	phases := map[string]float64{}
	c.Trace.Walk(func(path string, sp *obs.Span) {
		if path == c.Trace.Name {
			return // the root is already CompileSeconds
		}
		phases[path[len(c.Trace.Name)+1:]] = sp.Duration().Seconds()
	})
	return &BenchEntry{
		Name:           name,
		Size:           size,
		CompileSeconds: compileTime.Seconds(),
		PhaseSeconds:   phases,
		SimSeconds:     simTime.Seconds(),
		Cycles:         res.Sim.TotalCycles(),
		RunCycles:      res.Sim.RunCycles,
		Contexts:       c.UsedContexts(),
		MaxRF:          c.MaxRFEntries(),
	}, nil
}

// WriteJSON renders the bench result as an indented JSON document.
func (b *BenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
