package exper

import (
	"encoding/json"
	"fmt"
	"io"

	"cgra/internal/arch"
	"cgra/internal/pipeline"
	"cgra/internal/sched"
	"cgra/internal/workload"
)

// ModuloBenchEntry records one workload's list-vs-modulo comparison under
// the auto backend: both arms verified against the reference interpreter,
// the per-kernel selection, and the pipelining evidence of the modulo arm.
type ModuloBenchEntry struct {
	Name string `json:"name"`
	Size int    `json:"size"`
	// Selected is the backend the auto policy installed.
	Selected string `json:"selected"`
	// ListCycles and ModuloCycles are verified end-to-end run cycles
	// (-1 when an arm failed).
	ListCycles   int64 `json:"list_cycles"`
	ModuloCycles int64 `json:"modulo_cycles"`
	// Reduction is 1 - modulo/list (0 when either arm is unusable).
	Reduction float64 `json:"reduction"`
	// ListIterLatency is the list layout's smallest per-iteration context
	// count over its loops (the latency an II must undercut to win).
	ListIterLatency int `json:"list_iter_latency"`
	// PipelinedLoops counts the loops the modulo arm software-pipelined;
	// II/MII/... describe the first (innermost-hottest) of them.
	PipelinedLoops int `json:"pipelined_loops"`
	II             int `json:"ii,omitempty"`
	MII            int `json:"mii,omitempty"`
	ResMII         int `json:"res_mii,omitempty"`
	RecMII         int `json:"rec_mii,omitempty"`
	Stages         int `json:"stages,omitempty"`
	Backtracks     int `json:"backtracks,omitempty"`
}

// ModuloBenchResult is the document written by `tables -modulo-bench-json`
// (committed as BENCH_modulo.json).
type ModuloBenchResult struct {
	Composition string             `json:"composition"`
	Workloads   []ModuloBenchEntry `json:"workloads"`
}

// ModuloBench runs the auto backend over the workload library on the
// "9 PEs" reference composition and reports, per kernel, which backend won
// and what the modulo scheduler achieved. Both arms of every kernel are
// differentially verified, so a bench pass doubles as a correctness sweep
// of the modulo backend.
func ModuloBench() (*ModuloBenchResult, error) {
	comp, err := arch.ByName("9 PEs")
	if err != nil {
		return nil, err
	}
	out := &ModuloBenchResult{Composition: comp.Name}
	for _, w := range workload.All() {
		args, host := w.Args(w.DefaultSize), w.Host(w.DefaultSize)
		_, rep, err := pipeline.CompileAuto(w.Kernel, comp, Options(), args, host)
		if err != nil {
			return nil, fmt.Errorf("modulo bench %s: %v", w.Name, err)
		}
		e := ModuloBenchEntry{
			Name: w.Name, Size: w.DefaultSize, Selected: rep.Selected,
			ListCycles: rep.ListCycles, ModuloCycles: rep.ModuloCycles,
			PipelinedLoops: len(rep.Pipelined),
		}
		if rep.ListCycles > 0 && rep.ModuloCycles > 0 {
			e.Reduction = 1 - float64(rep.ModuloCycles)/float64(rep.ListCycles)
		}
		if len(rep.Pipelined) > 0 {
			pl := rep.Pipelined[0]
			e.II, e.MII, e.ResMII, e.RecMII = pl.II, pl.MII, pl.ResMII, pl.RecMII
			e.Stages, e.Backtracks = pl.Stages, pl.Backtracks
		}
		if lat, err := listIterLatency(w, comp); err == nil {
			e.ListIterLatency = lat
		}
		out.Workloads = append(out.Workloads, e)
	}
	return out, nil
}

// listIterLatency compiles the list layout and returns its tightest loop's
// per-iteration context count (header through back-jump, inclusive).
func listIterLatency(w *workload.Workload, comp *arch.Composition) (int, error) {
	o := Options()
	o.Backend = sched.BackendList
	c, err := pipeline.Compile(w.Kernel, comp, o)
	if err != nil {
		return 0, err
	}
	best := 0
	for _, lr := range c.Schedule.LoopRanges {
		if n := lr[1] - lr[0] + 1; best == 0 || n < best {
			best = n
		}
	}
	return best, nil
}

// WriteJSON renders the result as an indented JSON document.
func (b *ModuloBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadModuloBench parses a document written by WriteJSON.
func ReadModuloBench(r io.Reader) (*ModuloBenchResult, error) {
	b := &ModuloBenchResult{}
	if err := json.NewDecoder(r).Decode(b); err != nil {
		return nil, fmt.Errorf("modulo bench: %v", err)
	}
	return b, nil
}

// ReadBench parses a document written by BenchResult.WriteJSON (the
// committed BENCH_pipeline.json baseline benchguard gates against).
func ReadBench(r io.Reader) (*BenchResult, error) {
	b := &BenchResult{}
	if err := json.NewDecoder(r).Decode(b); err != nil {
		return nil, fmt.Errorf("pipeline bench: %v", err)
	}
	return b, nil
}
