// Package exper regenerates the paper's evaluation (§VI): every table and
// figure, plus the ablations called out in DESIGN.md. It is the shared
// engine behind cmd/tables and the repository's benchmarks.
//
// Absolute numbers are not expected to match the paper — the substrate here
// is a calibrated simulator, not the authors' FPGA testbed — but the shape
// must: which composition wins, the direction of trends, and the
// utilization ratios. EXPERIMENTS.md records the paper-vs-measured values.
package exper

import (
	"fmt"
	"strings"
	"time"

	"cgra/internal/adpcm"
	"cgra/internal/amidar"
	"cgra/internal/arch"
	"cgra/internal/cdfg"
	"cgra/internal/pipeline"
	"cgra/internal/synth"
	"cgra/internal/workload"
)

// Setup is the shared experimental input: the paper's ADPCM decode of a
// 416-sample vector.
type Setup struct {
	Samples []int32
	Codes   []byte
	N       int
}

// NewSetup builds the deterministic input vector and its encoding.
func NewSetup() (*Setup, error) {
	samples := adpcm.GenerateSamples(adpcm.NumSamples)
	var enc adpcm.State
	codes, err := adpcm.Encode(samples, &enc)
	if err != nil {
		return nil, err
	}
	return &Setup{Samples: samples, Codes: codes, N: adpcm.NumSamples}, nil
}

// Run is one ADPCM decode mapped and simulated on one composition.
type Run struct {
	Comp         *arch.Composition
	UsedContexts int
	MaxRF        int
	Cycles       int64 // total invocation cycles (run + transfers)
	RunCycles    int64
	Energy       float64
	CompileTime  time.Duration
	Copies       int
	FusedPWrites int
	CBoxOps      int
	CBoxSlots    int
}

// runOn compiles and simulates the decoder on one composition, checking the
// output against the reference decoder.
func (s *Setup) runOn(comp *arch.Composition, opts pipeline.Options) (*Run, error) {
	k := adpcm.Kernel()
	start := time.Now()
	c, err := pipeline.Compile(k, comp, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", comp.Name, err)
	}
	elapsed := time.Since(start)
	host := adpcm.NewHost(s.Codes, s.N)
	res, err := pipeline.CheckAgainstInterpreter(k, c, adpcm.Args(s.N, adpcm.State{}), host)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", comp.Name, err)
	}
	return &Run{
		Comp:         comp,
		UsedContexts: c.UsedContexts(),
		MaxRF:        c.MaxRFEntries(),
		Cycles:       res.Sim.TotalCycles(),
		RunCycles:    res.Sim.RunCycles,
		Energy:       res.Sim.Energy,
		CompileTime:  elapsed,
		Copies:       c.Schedule.Stats.CopiesInserted,
		FusedPWrites: c.Schedule.Stats.FusedPWrites,
		CBoxOps:      c.Schedule.Stats.CBoxOps,
		CBoxSlots:    c.Program.Alloc.CBoxUsage,
	}, nil
}

// Options returns the evaluation configuration: the paper maps the decoder
// with a maximum inner-loop unroll factor of 2 (§VI-B).
func Options() pipeline.Options { return pipeline.Defaults() }

// --- Table I ---

// TableIRow is one column of the paper's Table I.
type TableIRow struct {
	Comp          string
	UsedContexts  int
	MaxRF         int
	PaperContexts int
	PaperMaxRF    int
}

var paperTableI = map[int][2]int{
	4: {200, 66}, 6: {191, 69}, 8: {189, 62}, 9: {175, 51}, 12: {173, 44}, 16: {168, 49},
}

// TableI reproduces "Memory utilization of the ADPCM decoder schedules".
func TableI(s *Setup) ([]TableIRow, error) {
	var rows []TableIRow
	for _, n := range []int{4, 6, 8, 9, 12, 16} {
		comp, err := arch.HomogeneousMesh(n, 2)
		if err != nil {
			return nil, err
		}
		r, err := s.runOn(comp, Options())
		if err != nil {
			return nil, err
		}
		paper := paperTableI[n]
		rows = append(rows, TableIRow{
			Comp:          comp.Name,
			UsedContexts:  r.UsedContexts,
			MaxRF:         r.MaxRF,
			PaperContexts: paper[0],
			PaperMaxRF:    paper[1],
		})
	}
	return rows, nil
}

// --- Table II ---

// TableIIRow is one column of the paper's Table II.
type TableIIRow struct {
	Comp        string
	Cycles      int64
	FreqMHz     float64
	LUTLogicPct float64
	LUTMemPct   float64
	DSPPct      float64
	BRAMPct     float64
	PaperCycles int64
	PaperFreq   float64
}

var paperTableII = map[string][2]float64{
	"4 PEs": {152300, 103.6}, "6 PEs": {135300, 99.5}, "8 PEs": {137500, 98.0},
	"9 PEs": {126600, 93.6}, "12 PEs": {135300, 88.1}, "16 PEs": {140100, 86.9},
	"8 PEs A": {147600, 94.8}, "8 PEs B": {157700, 93.6}, "8 PEs C": {133900, 100.4},
	"8 PEs D": {133800, 96.0}, "8 PEs E": {150400, 94.3}, "8 PEs F": {134400, 93.5},
}

// TableII reproduces execution cycles plus synthesis estimates for all
// twelve evaluated compositions with the block (two-cycle) multiplier.
func TableII(s *Setup) ([]TableIIRow, error) {
	comps, err := arch.EvaluatedCompositions(2)
	if err != nil {
		return nil, err
	}
	var rows []TableIIRow
	for _, comp := range comps {
		r, err := s.runOn(comp, Options())
		if err != nil {
			return nil, err
		}
		est := synth.Estimate(comp)
		paper := paperTableII[comp.Name]
		rows = append(rows, TableIIRow{
			Comp:        comp.Name,
			Cycles:      r.Cycles,
			FreqMHz:     est.FreqMHz,
			LUTLogicPct: est.LUTLogicPct,
			LUTMemPct:   est.LUTMemPct,
			DSPPct:      est.DSPPct,
			BRAMPct:     est.BRAMPct,
			PaperCycles: int64(paper[0]),
			PaperFreq:   paper[1],
		})
	}
	return rows, nil
}

// --- Table III ---

// TableIIIRow is one column of the paper's Table III (single-cycle
// multipliers).
type TableIIIRow struct {
	Comp        string
	Cycles      int64
	FreqMHz     float64
	PaperCycles int64
	PaperFreq   float64
}

var paperTableIII = map[int][2]float64{
	4: {147000, 86.9}, 6: {131400, 84.0}, 8: {134900, 81.3},
	9: {125600, 79.7}, 12: {133100, 79.0}, 16: {143100, 76.3},
}

// TableIII reproduces the single-cycle-multiplier variant on the six meshes.
func TableIII(s *Setup) ([]TableIIIRow, error) {
	var rows []TableIIIRow
	for _, n := range []int{4, 6, 8, 9, 12, 16} {
		comp, err := arch.HomogeneousMesh(n, 1)
		if err != nil {
			return nil, err
		}
		r, err := s.runOn(comp, Options())
		if err != nil {
			return nil, err
		}
		est := synth.Estimate(comp)
		paper := paperTableIII[n]
		rows = append(rows, TableIIIRow{
			Comp:        comp.Name,
			Cycles:      r.Cycles,
			FreqMHz:     est.FreqMHz,
			PaperCycles: int64(paper[0]),
			PaperFreq:   paper[1],
		})
	}
	return rows, nil
}

// --- Table IV ---

// TableIVRow is one column of the paper's Table IV: wall-clock decode time.
type TableIVRow struct {
	Comp        string
	SingleMS    float64
	DualMS      float64
	PaperSingle float64
	PaperDual   float64
}

var paperTableIV = map[int][2]float64{
	4: {1.69, 1.48}, 6: {1.56, 1.36}, 8: {1.66, 1.40},
	9: {1.58, 1.35}, 12: {1.68, 1.54}, 16: {1.88, 1.61},
}

// TableIV combines cycles and estimated frequencies into milliseconds.
func TableIV(s *Setup) ([]TableIVRow, error) {
	var rows []TableIVRow
	for _, n := range []int{4, 6, 8, 9, 12, 16} {
		dual, err := arch.HomogeneousMesh(n, 2)
		if err != nil {
			return nil, err
		}
		single, err := arch.HomogeneousMesh(n, 1)
		if err != nil {
			return nil, err
		}
		rd, err := s.runOn(dual, Options())
		if err != nil {
			return nil, err
		}
		rs, err := s.runOn(single, Options())
		if err != nil {
			return nil, err
		}
		paper := paperTableIV[n]
		rows = append(rows, TableIVRow{
			Comp:        dual.Name,
			SingleMS:    synth.Estimate(single).ExecutionTimeMS(rs.Cycles),
			DualMS:      synth.Estimate(dual).ExecutionTimeMS(rd.Cycles),
			PaperSingle: paper[0],
			PaperDual:   paper[1],
		})
	}
	return rows, nil
}

// --- Fig. 12 ---

// Fig12 summarizes the control-flow structure of the decoder kernel: the
// loops, branch points and nesting the paper's figure draws.
func Fig12() (cdfg.Stats, error) {
	g, err := cdfg.Build(adpcm.Kernel(), cdfg.BuildOptions{})
	if err != nil {
		return cdfg.Stats{}, err
	}
	return g.Stats(), nil
}

// --- Speedup (§VI headline) ---

// SpeedupResult compares AMIDAR-only execution with the best CGRA mapping.
type SpeedupResult struct {
	AMIDARCycles int64
	BestComp     string
	BestCycles   int64
	Speedup      float64
	// PerComp lists each composition's speedup.
	PerComp map[string]float64
}

// Speedup reproduces the headline comparison: the paper reports 926 k AMIDAR
// cycles and a 7.3x speedup for the best composition (9 PEs).
func Speedup(s *Setup) (*SpeedupResult, error) {
	base, err := amidar.Execute(adpcm.Kernel(), amidar.DefaultCostModel(),
		adpcm.Args(s.N, adpcm.State{}), adpcm.NewHost(s.Codes, s.N))
	if err != nil {
		return nil, err
	}
	comps, err := arch.EvaluatedCompositions(2)
	if err != nil {
		return nil, err
	}
	out := &SpeedupResult{AMIDARCycles: base.Cycles, PerComp: map[string]float64{}}
	for _, comp := range comps {
		r, err := s.runOn(comp, Options())
		if err != nil {
			return nil, err
		}
		sp := float64(base.Cycles) / float64(r.Cycles)
		out.PerComp[comp.Name] = sp
		if sp > out.Speedup {
			out.Speedup = sp
			out.BestComp = comp.Name
			out.BestCycles = r.Cycles
		}
	}
	return out, nil
}

// --- Scheduling time (§VI-C: at most 3.1 s on an i7-6700) ---

// SchedulingTime measures the slowest scheduling+context generation over
// the evaluated compositions.
func SchedulingTime(s *Setup) (time.Duration, error) {
	comps, err := arch.EvaluatedCompositions(2)
	if err != nil {
		return 0, err
	}
	var worst time.Duration
	for _, comp := range comps {
		r, err := s.runOn(comp, Options())
		if err != nil {
			return 0, err
		}
		if r.CompileTime > worst {
			worst = r.CompileTime
		}
	}
	return worst, nil
}

// --- Multiplier latency on a multiplier-bound kernel ---
// The ADPCM decoder contains no multiplication (EXPERIMENTS.md, Table III
// discussion), so the block-vs-single-cycle multiplier effect on cycle
// counts is demonstrated on the FIR workload instead.

// MulLatencyRow compares the two multiplier implementations on one mesh.
type MulLatencyRow struct {
	Comp         string
	CyclesDual   int64 // 2-cycle block multiplier
	CyclesSingle int64 // 1-cycle multiplier
}

// MulLatency runs the FIR filter on the six meshes with both multiplier
// variants.
func MulLatency() ([]MulLatencyRow, error) {
	w := workload.FIR()
	var rows []MulLatencyRow
	for _, n := range []int{4, 6, 8, 9, 12, 16} {
		row := MulLatencyRow{}
		for _, mul := range []int{2, 1} {
			comp, err := arch.HomogeneousMesh(n, mul)
			if err != nil {
				return nil, err
			}
			row.Comp = comp.Name
			c, err := pipeline.Compile(w.Kernel, comp, pipeline.Options{})
			if err != nil {
				return nil, err
			}
			res, err := pipeline.CheckAgainstInterpreter(w.Kernel, c,
				w.Args(w.DefaultSize), w.Host(w.DefaultSize))
			if err != nil {
				return nil, err
			}
			if mul == 2 {
				row.CyclesDual = res.Sim.TotalCycles()
			} else {
				row.CyclesSingle = res.Sim.TotalCycles()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// --- Energy (the paper's closing claim: irregular and inhomogeneous
// structures "can potentially save area on the chip and most likely
// energy") ---

// EnergyRow reports one composition's energy picture for the ADPCM decode.
type EnergyRow struct {
	Comp string
	// Dynamic is the summed per-operation energy over the whole run
	// (arbitrary units from the composition description).
	Dynamic float64
	// AreaProxy is the estimated LUT+DSP utilization, a static-power
	// proxy.
	AreaProxy float64
	Cycles    int64
}

// Energy runs the decoder on all twelve compositions and reports dynamic
// energy and the static-area proxy.
func Energy(s *Setup) ([]EnergyRow, error) {
	comps, err := arch.EvaluatedCompositions(2)
	if err != nil {
		return nil, err
	}
	var rows []EnergyRow
	for _, comp := range comps {
		r, err := s.runOn(comp, Options())
		if err != nil {
			return nil, err
		}
		est := synth.Estimate(comp)
		rows = append(rows, EnergyRow{
			Comp:      comp.Name,
			Dynamic:   r.Energy,
			AreaProxy: est.LUTLogicPct + est.DSPPct,
			Cycles:    r.Cycles,
		})
	}
	return rows, nil
}

// --- Ablations ---

// AblationRow compares a scheduler/flow variant against the default.
type AblationRow struct {
	Comp            string
	BaseCycles      int64
	VariantCycles   int64
	BaseContexts    int
	VariantContexts int
	BaseCopies      int
	VariantCopies   int
}

// Ablation runs the decoder with a modified configuration on the given
// compositions (nil = the three most interesting: 9 PEs, 8 PEs B, 8 PEs D).
func (s *Setup) Ablation(modify func(*pipeline.Options), comps []*arch.Composition) ([]AblationRow, error) {
	if comps == nil {
		var err error
		comps, err = defaultAblationComps()
		if err != nil {
			return nil, err
		}
	}
	var rows []AblationRow
	for _, comp := range comps {
		base, err := s.runOn(comp, Options())
		if err != nil {
			return nil, err
		}
		varOpts := Options()
		modify(&varOpts)
		variant, err := s.runOn(comp, varOpts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Comp:            comp.Name,
			BaseCycles:      base.Cycles,
			VariantCycles:   variant.Cycles,
			BaseContexts:    base.UsedContexts,
			VariantContexts: variant.UsedContexts,
			BaseCopies:      base.Copies,
			VariantCopies:   variant.Copies,
		})
	}
	return rows, nil
}

func defaultAblationComps() ([]*arch.Composition, error) {
	var out []*arch.Composition
	for _, name := range []string{"9 PEs", "8 PEs B", "8 PEs D"} {
		c, err := arch.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// AblationNoAttraction disables the attraction criterion (A1).
func AblationNoAttraction(o *pipeline.Options) { o.Sched.NoAttraction = true }

// AblationNoFusing disables pWRITE fusing (A2).
func AblationNoFusing(o *pipeline.Options) { o.Sched.NoFusing = true }

// AblationNoUnroll disables partial loop unrolling (A3).
func AblationNoUnroll(o *pipeline.Options) { o.UnrollFactor = 1 }

// AblationNoCSE disables common subexpression elimination (A4).
func AblationNoCSE(o *pipeline.Options) { o.CSE = false }

// AblationBranchAllIfs turns every conditional into branches (A5): the
// opposite of the paper's speculation+predication strategy.
func AblationBranchAllIfs(o *pipeline.Options) { o.Build.BranchAllIfs = true }

// FormatTable renders rows of cells as an aligned text table.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}
