package exper

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"cgra/internal/adpcm"
	"cgra/internal/arch"
	"cgra/internal/ir"
	"cgra/internal/pipeline"
	"cgra/internal/sim"
	"cgra/internal/workload"
)

// SimBenchEntry is one kernel's measured simulator throughput on both
// execution paths: the instrumented interpreter (the pre-predecode
// baseline) and the predecoded fast path.
type SimBenchEntry struct {
	Name string `json:"name"`
	// Cycles is the simulated CGRA cycle count of one run (transfer + run).
	Cycles int64 `json:"cycles"`
	// InterpCyclesPerSec and FastCyclesPerSec are simulated cycles per
	// wall-clock second on each path.
	InterpCyclesPerSec float64 `json:"interp_cycles_per_sec"`
	FastCyclesPerSec   float64 `json:"fast_cycles_per_sec"`
	// Speedup is FastCyclesPerSec / InterpCyclesPerSec.
	Speedup float64 `json:"speedup"`
	// FastAllocsPerCycle is heap allocations per simulated cycle on the
	// fast path (runtime.MemStats.Mallocs delta). The per-run fixed cost
	// (result struct, live-out map, fresh host) is included, so values are
	// small-but-nonzero; the inner loop itself allocates nothing.
	FastAllocsPerCycle float64 `json:"fast_allocs_per_cycle"`
}

// SimBenchResult is the document written by `tables -sim-bench-json`
// (committed as BENCH_sim.json and gated in CI by cmd/benchguard).
type SimBenchResult struct {
	Composition string          `json:"composition"`
	Workloads   []SimBenchEntry `json:"workloads"`
}

// simBenchMinTime is the minimum measurement window per (kernel, path).
const simBenchMinTime = 200 * time.Millisecond

// SimBench measures simulator throughput for the benchmark kernel set
// (gcd, fir, dot, bitcount and the paper's ADPCM decode) on the "9 PEs"
// reference composition: the interpreter path versus the predecoded fast
// path, plus the fast path's allocation rate.
func SimBench(s *Setup) (*SimBenchResult, error) {
	comp, err := arch.ByName("9 PEs")
	if err != nil {
		return nil, err
	}
	out := &SimBenchResult{Composition: comp.Name}
	type bcase struct {
		name string
		k    *ir.Kernel
		args map[string]int32
		host func() *ir.Host
	}
	var cases []bcase
	for _, name := range []string{"gcd", "fir", "dot", "bitcount"} {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		cases = append(cases, bcase{
			name: name,
			k:    w.Kernel,
			args: w.Args(w.DefaultSize),
			host: func() *ir.Host { return w.Host(w.DefaultSize) },
		})
	}
	cases = append(cases, bcase{
		name: "adpcm",
		k:    adpcm.Kernel(),
		args: adpcm.Args(s.N, adpcm.State{}),
		host: func() *ir.Host { return adpcm.NewHost(s.Codes, s.N) },
	})
	for _, bc := range cases {
		c, err := pipeline.Compile(bc.k, comp, Options())
		if err != nil {
			return nil, fmt.Errorf("simbench %s: %v", bc.name, err)
		}
		if _, err := c.Engine(); err != nil {
			return nil, fmt.Errorf("simbench %s: predecode: %v", bc.name, err)
		}
		e := SimBenchEntry{Name: bc.name}
		interp := func() *sim.Machine { return sim.New(c.Program) }
		cycles, perSec, _, err := measureSim(interp, bc.args, bc.host)
		if err != nil {
			return nil, fmt.Errorf("simbench %s interp: %v", bc.name, err)
		}
		e.Cycles, e.InterpCyclesPerSec = cycles, perSec
		_, perSec, allocs, err := measureSim(c.Machine, bc.args, bc.host)
		if err != nil {
			return nil, fmt.Errorf("simbench %s fast: %v", bc.name, err)
		}
		e.FastCyclesPerSec, e.FastAllocsPerCycle = perSec, allocs
		if e.InterpCyclesPerSec > 0 {
			e.Speedup = e.FastCyclesPerSec / e.InterpCyclesPerSec
		}
		out.Workloads = append(out.Workloads, e)
	}
	return out, nil
}

// measureSim drives runs through fresh machines from the factory until the
// measurement window elapses, returning per-run simulated cycles, cycles
// per second, and heap allocations per simulated cycle.
func measureSim(machine func() *sim.Machine, args map[string]int32, host func() *ir.Host) (cycles int64, perSec, allocsPerCycle float64, err error) {
	// Warm-up run: engine decode, pool priming, code paths hot.
	res, err := machine().Run(args, host())
	if err != nil {
		return 0, 0, 0, err
	}
	cycles = res.TotalCycles()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	iters := 0
	for time.Since(start) < simBenchMinTime || iters < 10 {
		if _, err := machine().Run(args, host()); err != nil {
			return 0, 0, 0, err
		}
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	total := float64(cycles) * float64(iters)
	if sec := elapsed.Seconds(); sec > 0 {
		perSec = total / sec
	}
	if total > 0 {
		allocsPerCycle = float64(ms1.Mallocs-ms0.Mallocs) / total
	}
	return cycles, perSec, allocsPerCycle, nil
}

// WriteJSON renders the sim bench result as an indented JSON document.
func (b *SimBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadSimBench parses a document previously written by WriteJSON.
func ReadSimBench(r io.Reader) (*SimBenchResult, error) {
	b := &SimBenchResult{}
	if err := json.NewDecoder(r).Decode(b); err != nil {
		return nil, fmt.Errorf("sim bench: %v", err)
	}
	return b, nil
}
