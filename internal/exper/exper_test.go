package exper

import (
	"strings"
	"testing"

	"cgra/internal/pipeline"
)

func setup(t *testing.T) *Setup {
	t.Helper()
	s, err := NewSetup()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTableI(t *testing.T) {
	rows, err := TableI(setup(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.UsedContexts <= 0 || r.UsedContexts > 256 {
			t.Errorf("%s: used contexts %d out of range", r.Comp, r.UsedContexts)
		}
		if r.MaxRF <= 0 || r.MaxRF > 128 {
			t.Errorf("%s: max RF %d out of range", r.Comp, r.MaxRF)
		}
		if r.PaperContexts == 0 {
			t.Errorf("%s: missing paper reference", r.Comp)
		}
	}
}

func TestTableIIShape(t *testing.T) {
	rows, err := TableII(setup(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	byName := map[string]TableIIRow{}
	for _, r := range rows {
		byName[r.Comp] = r
		if r.Cycles <= 0 {
			t.Errorf("%s: no cycles", r.Comp)
		}
	}
	// Shape checks from the paper's discussion:
	// (1) every CGRA beats the AMIDAR baseline by far (headline claim),
	// verified in TestSpeedup; (2) among the irregular compositions, B is
	// the slowest or ties it ("B performs worst because little
	// interconnect is available"), and D is the fastest or ties it.
	irr := []string{"8 PEs A", "8 PEs B", "8 PEs C", "8 PEs D", "8 PEs E", "8 PEs F"}
	for _, name := range irr {
		if byName[name].Cycles < byName["8 PEs D"].Cycles {
			t.Errorf("%s (%d cycles) beats D (%d): paper has D fastest",
				name, byName[name].Cycles, byName["8 PEs D"].Cycles)
		}
		if byName[name].Cycles > byName["8 PEs B"].Cycles {
			t.Errorf("%s (%d cycles) slower than B (%d): paper has B slowest",
				name, byName[name].Cycles, byName["8 PEs B"].Cycles)
		}
	}
	// (3) F is at most marginally slower than D (paper: "only marginally
	// slower in terms of clock cycles").
	d, f := byName["8 PEs D"].Cycles, byName["8 PEs F"].Cycles
	if float64(f) > float64(d)*1.10 {
		t.Errorf("F (%d) more than 10%% slower than D (%d)", f, d)
	}
}

func TestTableIII(t *testing.T) {
	s := setup(t)
	rows3, err := TableIII(s)
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := TableII(s)
	if err != nil {
		t.Fatal(err)
	}
	freq2 := map[string]float64{}
	cycles2 := map[string]int64{}
	for _, r := range rows2 {
		freq2[r.Comp] = r.FreqMHz
		cycles2[r.Comp] = r.Cycles
	}
	for _, r := range rows3 {
		// Single-cycle multipliers: fewer (or equal) cycles, lower clock.
		if r.Cycles > cycles2[r.Comp] {
			t.Errorf("%s: single-cycle variant needs MORE cycles (%d > %d)",
				r.Comp, r.Cycles, cycles2[r.Comp])
		}
		if r.FreqMHz >= freq2[r.Comp] {
			t.Errorf("%s: single-cycle variant not slower-clocked", r.Comp)
		}
	}
}

func TestTableIV(t *testing.T) {
	rows, err := TableIV(setup(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SingleMS <= 0 || r.DualMS <= 0 {
			t.Errorf("%s: non-positive execution time", r.Comp)
		}
		// Paper Table IV: the block multiplier wins on wall clock
		// (higher frequency outweighs the extra cycles).
		if r.DualMS >= r.SingleMS {
			t.Errorf("%s: dual-cycle (%.2f ms) not faster than single (%.2f ms)",
				r.Comp, r.DualMS, r.SingleMS)
		}
	}
}

func TestFig12Structure(t *testing.T) {
	st, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	// The decoder has an outer while plus nested conditional loops
	// (vpdiff loop and clamping loops) and predicated conditionals.
	if st.Loops < 4 {
		t.Errorf("loops = %d, want >= 4 (outer + vpdiff + clamps)", st.Loops)
	}
	if st.MaxLoopDepth < 2 {
		t.Errorf("max loop depth = %d, want >= 2", st.MaxLoopDepth)
	}
	// The conditionally executed nested loops (index/valpred clamps) are
	// data-dependent while loops; the dataflow conditionals (byte fetch,
	// sign handling, vpdiff bits) predicate into their blocks.
	if st.Predicates == 0 || st.PredicatedOps == 0 {
		t.Error("no predication in the decoder graph")
	}
	if st.DMALoads < 3 { // input byte, index table, step table
		t.Errorf("DMA loads = %d, want >= 3", st.DMALoads)
	}
	if st.DMAStores < 1 { // output sample
		t.Errorf("DMA stores = %d, want >= 1", st.DMAStores)
	}
}

func TestSpeedup(t *testing.T) {
	res, err := Speedup(setup(t))
	if err != nil {
		t.Fatal(err)
	}
	// Calibration pins the baseline near the paper's 926 k cycles.
	if res.AMIDARCycles < 900_000 || res.AMIDARCycles > 950_000 {
		t.Errorf("AMIDAR baseline %d outside the calibrated band", res.AMIDARCycles)
	}
	// The paper reports 7.3x for its best composition; our cleaner memory
	// substrate yields more, but the direction must hold decisively.
	if res.Speedup < 7.3 {
		t.Errorf("best speedup %.1f below the paper's 7.3", res.Speedup)
	}
	for name, sp := range res.PerComp {
		if sp <= 1 {
			t.Errorf("%s: CGRA slower than AMIDAR (%.2fx)", name, sp)
		}
	}
}

func TestAblations(t *testing.T) {
	s := setup(t)
	cases := []struct {
		name   string
		modify func(*pipeline.Options)
	}{
		{"no-attraction", AblationNoAttraction},
		{"no-fusing", AblationNoFusing},
		{"no-unroll", AblationNoUnroll},
		{"no-cse", AblationNoCSE},
		{"branch-all-ifs", AblationBranchAllIfs},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rows, err := s.Ablation(c.modify, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != 3 {
				t.Fatalf("rows = %d", len(rows))
			}
			for _, r := range rows {
				if r.VariantCycles <= 0 {
					t.Errorf("%s: variant did not run", r.Comp)
				}
			}
		})
	}
}

func TestAblationFusingCostsContexts(t *testing.T) {
	// Without fusing every pWRITE needs its own MOVE: the schedule cannot
	// get shorter.
	rows, err := setup(t).Ablation(AblationNoFusing, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.VariantContexts < r.BaseContexts {
			t.Errorf("%s: no-fusing needs FEWER contexts (%d < %d)?",
				r.Comp, r.VariantContexts, r.BaseContexts)
		}
	}
}

func TestSchedulingTimeBound(t *testing.T) {
	d, err := SchedulingTime(setup(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: at most 3.1 s on an i7-6700. Anything near that here would
	// signal a complexity regression.
	if d.Seconds() > 3.1 {
		t.Errorf("scheduling took %v, paper bound is 3.1 s", d)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"a", "bbbb"}, [][]string{{"xx", "y"}, {"1", "22222"}})
	if !strings.Contains(out, "a   bbbb") {
		t.Errorf("bad alignment:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("lines = %d, want 4", len(lines))
	}
}

func TestEnergy(t *testing.T) {
	rows, err := Energy(setup(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]EnergyRow{}
	for _, r := range rows {
		byName[r.Comp] = r
		if r.Dynamic <= 0 {
			t.Errorf("%s: no dynamic energy", r.Comp)
		}
	}
	// The paper's claim: the inhomogeneous F saves area (static power
	// proxy) versus D without a meaningful cycle penalty.
	d, f := byName["8 PEs D"], byName["8 PEs F"]
	if f.AreaProxy >= d.AreaProxy {
		t.Errorf("F area proxy (%.2f) not below D (%.2f)", f.AreaProxy, d.AreaProxy)
	}
	if float64(f.Cycles) > float64(d.Cycles)*1.10 {
		t.Errorf("F cycles (%d) more than 10%% above D (%d)", f.Cycles, d.Cycles)
	}
}

func TestMulLatency(t *testing.T) {
	rows, err := MulLatency()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// FIR is multiplier-bound: the single-cycle variant must save
		// cycles (the paper's Table III direction).
		if r.CyclesSingle >= r.CyclesDual {
			t.Errorf("%s: single-cycle mult (%d) not faster than block (%d)",
				r.Comp, r.CyclesSingle, r.CyclesDual)
		}
	}
}
