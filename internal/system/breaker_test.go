package system

import (
	"testing"
	"time"
)

// TestBreakerAutomaton drives the three-state automaton with synthetic
// clocks: closed → open after the configured failure streak, shed while
// the cool-down runs, half-open with exactly one admitted probe after it,
// re-open on probe failure, closed on probe success.
func TestBreakerAutomaton(t *testing.T) {
	var transitions []breakerState
	b := &breaker{notify: func(to breakerState) { transitions = append(transitions, to) }}
	t0 := time.Unix(0, 0)
	const cooldown = time.Second
	const threshold = 3

	// Below the failure threshold the breaker stays closed.
	for i := 0; i < threshold-1; i++ {
		if !b.allow(t0, cooldown) {
			t.Fatalf("failure %d: breaker not closed", i)
		}
		b.failure(t0, threshold)
	}
	if got := b.current(); got != brClosed {
		t.Fatalf("state after %d failures = %v, want closed", threshold-1, got)
	}
	// The threshold-th failure trips it.
	b.failure(t0, threshold)
	if got := b.current(); got != brOpen {
		t.Fatalf("state after %d failures = %v, want open", threshold, got)
	}
	// Open: everything is shed until the cool-down elapses.
	if b.allow(t0.Add(cooldown/2), cooldown) {
		t.Fatal("open breaker admitted a caller inside the cool-down")
	}
	// Cool-down over: exactly one probe is admitted.
	probeTime := t0.Add(cooldown + time.Millisecond)
	if !b.allow(probeTime, cooldown) {
		t.Fatal("half-open breaker rejected the probe")
	}
	if got := b.current(); got != brHalfOpen {
		t.Fatalf("state during probe = %v, want half_open", got)
	}
	if b.allow(probeTime, cooldown) {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe failure re-opens for another full cool-down.
	b.failure(probeTime, threshold)
	if got := b.current(); got != brOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if b.allow(probeTime.Add(cooldown/2), cooldown) {
		t.Fatal("re-opened breaker admitted a caller inside the new cool-down")
	}
	// Second probe succeeds: the breaker closes and the streak resets.
	retry := probeTime.Add(cooldown + time.Millisecond)
	if !b.allow(retry, cooldown) {
		t.Fatal("second probe rejected")
	}
	b.success()
	if got := b.current(); got != brClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if !b.allow(retry, cooldown) {
		t.Fatal("closed breaker rejected a caller")
	}

	want := []breakerState{brOpen, brHalfOpen, brOpen, brHalfOpen, brClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, transitions[i], want[i])
		}
	}
}

// TestBreakerProbeCancel: a probe slot released via cancelProbe (e.g. the
// synthesis queue was full) must be claimable by the next caller.
func TestBreakerProbeCancel(t *testing.T) {
	b := &breaker{}
	t0 := time.Unix(0, 0)
	const cooldown = time.Second
	b.failure(t0, 1) // threshold 1: open immediately
	later := t0.Add(cooldown + time.Millisecond)
	if !b.allow(later, cooldown) {
		t.Fatal("probe rejected after cool-down")
	}
	b.cancelProbe()
	if !b.allow(later, cooldown) {
		t.Fatal("released probe slot not claimable")
	}
}
