package system

import (
	"context"
	"testing"

	"cgra/internal/arch"
	"cgra/internal/cache"
	"cgra/internal/pipeline"
	"cgra/internal/workload"
)

// TestSystemServesFromCache proves the synthesis path consults the artifact
// cache: a second system sharing the cache directory serves the kernel from
// disk without recompiling, and the realized kernel executes correctly.
func TestSystemServesFromCache(t *testing.T) {
	comp, err := arch.ByName("9 PEs")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName("gcd")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	newSys := func() *System {
		store, err := cache.New(cache.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		s := New(comp, pipeline.Defaults(), 1)
		s.Cache = store
		if err := s.Register(w.Kernel); err != nil {
			t.Fatal(err)
		}
		return s
	}

	s1 := newSys()
	info, err := s1.SynthesizeCtx(context.Background(), "gcd")
	if err != nil {
		t.Fatal(err)
	}
	if info.CacheSource != "" {
		t.Fatalf("first synthesis reported cache source %q, want fresh compile", info.CacheSource)
	}
	if info.Key == "" {
		t.Fatal("no cache key recorded despite attached cache")
	}
	res1, err := s1.Invoke("gcd", w.Args(w.DefaultSize), w.Host(w.DefaultSize))
	if err != nil {
		t.Fatal(err)
	}
	if !res1.OnCGRA {
		t.Fatal("first system did not accelerate")
	}

	// A restarted daemon: fresh system, same cache directory.
	s2 := newSys()
	info2, err := s2.SynthesizeCtx(context.Background(), "gcd")
	if err != nil {
		t.Fatal(err)
	}
	if info2.CacheSource != cache.SourceDisk {
		t.Fatalf("second synthesis came from %q, want %q", info2.CacheSource, cache.SourceDisk)
	}
	if info2.Key != info.Key {
		t.Fatalf("cache key changed across runs: %s vs %s", info2.Key, info.Key)
	}
	if info2.Contexts != info.Contexts || info2.MaxRF != info.MaxRF {
		t.Fatalf("cached mapping footprint (%d ctx, %d rf) != compiled (%d ctx, %d rf)",
			info2.Contexts, info2.MaxRF, info.Contexts, info.MaxRF)
	}
	res2, err := s2.Invoke("gcd", w.Args(w.DefaultSize), w.Host(w.DefaultSize))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.OnCGRA {
		t.Fatal("cache-served kernel did not accelerate")
	}
	for out, want := range res1.LiveOuts {
		if got := res2.LiveOuts[out]; got != want {
			t.Fatalf("live-out %q: cached run %d != compiled run %d", out, got, want)
		}
	}
	// Third synthesis in the same process hits the memory front.
	s3 := New(comp, pipeline.Defaults(), 1)
	s3.Cache = s2.Cache
	if err := s3.Register(w.Kernel); err != nil {
		t.Fatal(err)
	}
	info3, err := s3.SynthesizeCtx(context.Background(), "gcd")
	if err != nil {
		t.Fatal(err)
	}
	if info3.CacheSource != cache.SourceMemory {
		t.Fatalf("third synthesis came from %q, want %q", info3.CacheSource, cache.SourceMemory)
	}
}

// TestSystemCacheCrossCheck runs a cache-served kernel with the reference
// cross-check enabled: the realized artifact must agree with the golden
// interpreter on live-outs and heap effects.
func TestSystemCacheCrossCheck(t *testing.T) {
	comp, err := arch.ByName("9 PEs")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName("fir")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		store, err := cache.New(cache.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		s := New(comp, pipeline.Defaults(), 1)
		s.Cache = store
		s.Policy.CrossCheck = true
		if err := s.Register(w.Kernel); err != nil {
			t.Fatal(err)
		}
		info, err := s.SynthesizeCtx(context.Background(), "fir")
		if err != nil {
			t.Fatal(err)
		}
		wantSrc := ""
		if i == 1 {
			wantSrc = cache.SourceDisk
		}
		if info.CacheSource != wantSrc {
			t.Fatalf("run %d: cache source %q, want %q", i, info.CacheSource, wantSrc)
		}
		res, err := s.Invoke("fir", w.Args(w.DefaultSize), w.Host(w.DefaultSize))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !res.OnCGRA {
			t.Fatalf("run %d: not accelerated", i)
		}
	}
}
