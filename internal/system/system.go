// Package system closes the loop of the paper's Fig. 1: a host processor
// (the AMIDAR cost model) executes kernels under profiling; when a
// sequence's accumulated weight crosses the synthesis threshold, the tool
// flow maps it onto the CGRA — method inlining included — the "bytecode is
// patched", and every subsequent invocation transparently forwards to the
// accelerator ("Each time the AMIDAR processor enters one of these code
// sequences, the processor forwards the execution to the CGRA", §III).
// This is the online-synthesis model of the authors' prior work ([1], [18])
// that the paper's tool set plugs into.
package system

import (
	"fmt"
	"sort"

	"cgra/internal/amidar"
	"cgra/internal/arch"
	"cgra/internal/ir"
	"cgra/internal/opt"
	"cgra/internal/pipeline"
)

// Result reports one invocation through the system.
type Result struct {
	LiveOuts map[string]int32
	Cycles   int64
	// OnCGRA reports whether this invocation ran on the accelerator.
	OnCGRA bool
	// Synthesized reports whether this invocation triggered synthesis.
	Synthesized bool
}

// Stats accumulates system-level counters.
type Stats struct {
	Invocations    int64
	AMIDARRuns     int64
	CGRARuns       int64
	AMIDARCycles   int64
	CGRACycles     int64
	SynthesizedSeq []string
}

// TotalCycles is the cycles actually spent (host + accelerator).
func (s *Stats) TotalCycles() int64 { return s.AMIDARCycles + s.CGRACycles }

// System is one host processor with an attached CGRA.
type System struct {
	Comp *arch.Composition
	Opts pipeline.Options
	// Threshold is the accumulated host-cycle weight that triggers
	// synthesis of a sequence.
	Threshold int64
	// Cost prices host execution (default: the calibrated model).
	Cost amidar.CostModel

	kernels  map[string]*ir.Kernel
	compiled map[string]*pipeline.Compiled
	weights  map[string]int64
	stats    Stats
}

// New builds a system around a composition.
func New(comp *arch.Composition, opts pipeline.Options, threshold int64) *System {
	return &System{
		Comp:      comp,
		Opts:      opts,
		Threshold: threshold,
		Cost:      amidar.DefaultCostModel(),
		kernels:   map[string]*ir.Kernel{},
		compiled:  map[string]*pipeline.Compiled{},
		weights:   map[string]int64{},
	}
}

// Register makes a kernel invocable; registered kernels also serve as the
// call library for each other (resolved by inlining at synthesis time).
func (s *System) Register(k *ir.Kernel) error {
	if _, dup := s.kernels[k.Name]; dup {
		return fmt.Errorf("system: kernel %q already registered", k.Name)
	}
	s.kernels[k.Name] = k
	return nil
}

// Invoke executes one kernel invocation: on the CGRA when the sequence has
// been synthesized, otherwise on the host — synthesizing afterwards when
// the profile weight crosses the threshold.
func (s *System) Invoke(name string, args map[string]int32, host *ir.Host) (*Result, error) {
	k := s.kernels[name]
	if k == nil {
		return nil, fmt.Errorf("system: unknown kernel %q", name)
	}
	s.stats.Invocations++

	if c := s.compiled[name]; c != nil {
		res, err := c.Run(args, host)
		if err != nil {
			return nil, fmt.Errorf("system: CGRA run of %q: %v", name, err)
		}
		s.stats.CGRARuns++
		s.stats.CGRACycles += res.TotalCycles()
		return &Result{LiveOuts: res.LiveOuts, Cycles: res.TotalCycles(), OnCGRA: true}, nil
	}

	// Host execution; the profiler sees its cycle weight (§III: the
	// hardware profiler detects frequently executed sequences).
	base, err := amidar.ExecuteProgram(k, s.kernels, s.Cost, args, host)
	if err != nil {
		return nil, fmt.Errorf("system: AMIDAR run of %q: %v", name, err)
	}
	s.stats.AMIDARRuns++
	s.stats.AMIDARCycles += base.Cycles
	s.weights[name] += base.Cycles
	result := &Result{LiveOuts: base.LiveOuts, Cycles: base.Cycles}

	if s.weights[name] >= s.Threshold {
		if err := s.synthesize(name); err != nil {
			return nil, err
		}
		result.Synthesized = true
	}
	return result, nil
}

// synthesize runs the tool flow for the kernel (inlining its calls against
// the registered library) and patches the dispatch table.
func (s *System) synthesize(name string) error {
	prog := &ir.Program{Kernels: s.kernels, Entry: name}
	flat, err := opt.Inline(prog)
	if err != nil {
		return fmt.Errorf("system: inline %q: %v", name, err)
	}
	c, err := pipeline.Compile(flat, s.Comp, s.Opts)
	if err != nil {
		return fmt.Errorf("system: synthesize %q: %v", name, err)
	}
	s.compiled[name] = c
	s.stats.SynthesizedSeq = append(s.stats.SynthesizedSeq, name)
	return nil
}

// Stats returns the accumulated counters.
func (s *System) Stats() Stats { return s.stats }

// Synthesized reports whether the named kernel runs on the CGRA.
func (s *System) Synthesized(name string) bool { return s.compiled[name] != nil }

// Profile lists the host-cycle weights observed so far, heaviest first.
func (s *System) Profile() []struct {
	Name   string
	Cycles int64
} {
	type row struct {
		Name   string
		Cycles int64
	}
	var rows []row
	for name, w := range s.weights {
		rows = append(rows, row{name, w})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Cycles != rows[j].Cycles {
			return rows[i].Cycles > rows[j].Cycles
		}
		return rows[i].Name < rows[j].Name
	})
	out := make([]struct {
		Name   string
		Cycles int64
	}, len(rows))
	for i, r := range rows {
		out[i] = struct {
			Name   string
			Cycles int64
		}{r.Name, r.Cycles}
	}
	return out
}
