// Package system closes the loop of the paper's Fig. 1: a host processor
// (the AMIDAR cost model) executes kernels under profiling; when a
// sequence's accumulated weight crosses the synthesis threshold, the tool
// flow maps it onto the CGRA — method inlining included — the "bytecode is
// patched", and every subsequent invocation transparently forwards to the
// accelerator ("Each time the AMIDAR processor enters one of these code
// sequences, the processor forwards the execution to the CGRA", §III).
// This is the online-synthesis model of the authors' prior work ([1], [18])
// that the paper's tool set plugs into.
//
// The system is a concurrent, deadline-aware service. Synthesis runs in a
// bounded background worker pool (one in-flight compile per kernel, each
// attempt under a compile deadline); the triggering invocation — and every
// concurrent arrival — keeps executing on the AMIDAR host until the
// accelerator version lands, exactly the paper's model of a host that
// never stalls on the tool flow. The hot dispatch path is lock-free: the
// kernel table, the compiled-kernel map and the synthesis target live in
// an immutable snapshot behind an atomic pointer, so invocations of
// different (and identical) kernels proceed in parallel. A per-kernel
// circuit breaker sheds repeatedly failing kernels to host-only execution
// with a half-open probe after a cool-down, and the recovery loop paces
// its re-execution attempts with exponential backoff plus jitter.
package system

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cgra/internal/amidar"
	"cgra/internal/arch"
	"cgra/internal/cache"
	"cgra/internal/fault"
	"cgra/internal/ir"
	"cgra/internal/obs"
	"cgra/internal/opt"
	"cgra/internal/pipeline"
)

// Result reports one invocation through the system.
type Result struct {
	LiveOuts map[string]int32
	Cycles   int64
	// OnCGRA reports whether this invocation ran on the accelerator.
	OnCGRA bool
	// Synthesized reports whether this invocation crossed the profiling
	// threshold and enqueued background synthesis of the sequence. The
	// compiled version lands asynchronously; Quiesce waits for it.
	Synthesized bool
	// Recovered reports that a fault was detected during this invocation
	// and the reported result comes from a recovery path (a re-execution,
	// a degraded-array re-synthesis, or the host fallback).
	Recovered bool
}

// Stats is a point-in-time snapshot of the system-level counters. The
// authoritative state lives in the system's metrics registry (see
// System.Metrics); Stats remains the convenient struct view.
type Stats struct {
	Invocations    int64
	AMIDARRuns     int64
	CGRARuns       int64
	AMIDARCycles   int64
	CGRACycles     int64
	SynthesizedSeq []string
	// FaultsInjected counts corruption events the armed fault plan applied.
	FaultsInjected int64
	// FaultsDetected counts CGRA runs rejected by the watchdog, the
	// simulator or the live-out/heap cross-check.
	FaultsDetected int64
	// Resyntheses counts successful re-compilations onto a degraded
	// composition.
	Resyntheses int64
	// Fallbacks counts invocations that completed on the AMIDAR host after
	// a detected fault.
	Fallbacks int64
	// SynthSheds counts synthesis requests dropped because the bounded
	// queue was full (admission control).
	SynthSheds int64
	// Retries counts accelerated re-execution attempts of the recovery
	// loop (each paced by exponential backoff + jitter).
	Retries int64
	// DeadlineHits counts synthesis attempts aborted by the compile
	// deadline.
	DeadlineHits int64
}

// TotalCycles is the cycles actually spent (host + accelerator).
func (s *Stats) TotalCycles() int64 { return s.AMIDARCycles + s.CGRACycles }

// ResiliencePolicy tunes fault detection, recovery and the service-level
// admission control. Configure it before the first invocation; the fields
// are read concurrently afterwards.
type ResiliencePolicy struct {
	// MaxRetries caps the CGRA re-execution attempts per invocation after
	// a detected fault; the host fallback runs when they are exhausted.
	MaxRetries int
	// CompileBudget caps the scheduler's cycle horizon per synthesis
	// attempt, so a pathological degraded composition cannot stall the
	// system inside the compiler (0 = the scheduler default).
	CompileBudget int
	// CompileDeadline bounds the wall time of one synthesis attempt; an
	// expired deadline cancels the compile cooperatively (the scheduler
	// checks it every time step) and counts as a synthesis failure
	// (0 = 10s).
	CompileDeadline time.Duration
	// SynthWorkers sizes the background synthesis worker pool (0 = 2).
	SynthWorkers int
	// SynthQueue bounds the synthesis queue; requests beyond it are shed
	// and re-admitted by a later profiled host run (0 = 16).
	SynthQueue int
	// WatchdogCycles is the hard upper bound on the simulator cycle budget
	// per CGRA run (0 = 10M cycles). Kernels with a host profile get a far
	// tighter per-kernel budget (see WatchdogFactor).
	WatchdogCycles int64
	// WatchdogFactor derives the per-kernel cycle budget from the profiled
	// AMIDAR cost: budget = factor × max observed host cycles, clamped to
	// [50k, WatchdogCycles]. The accelerator is profitable only well below
	// host cost, so a run exceeding this is livelocked (0 = 16).
	WatchdogFactor int64
	// RetryBackoff is the base delay between recovery re-executions; it
	// doubles per attempt with jitter, clamped to RetryBackoffMax
	// (0 = 200µs).
	RetryBackoff time.Duration
	// RetryBackoffMax clamps the exponential backoff (0 = 20ms).
	RetryBackoffMax time.Duration
	// BreakerThreshold is the consecutive-failure count (synthesis
	// failures or fault detections) that trips a kernel's circuit breaker
	// to host-only execution (0 = 5).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before a
	// half-open probe is admitted (0 = 250ms).
	BreakerCooldown time.Duration
	// CrossCheck verifies every CGRA run's live-outs and heap effects
	// against the reference interpreter. It is forced on while a fault
	// plan is armed; enabling it without faults turns the system into a
	// self-checking (lock-step) configuration.
	CrossCheck bool
}

// DefaultResiliencePolicy returns the production defaults.
func DefaultResiliencePolicy() ResiliencePolicy {
	return ResiliencePolicy{
		MaxRetries:       3,
		CompileBudget:    100_000,
		CompileDeadline:  10 * time.Second,
		SynthWorkers:     2,
		SynthQueue:       16,
		WatchdogCycles:   10_000_000,
		WatchdogFactor:   16,
		RetryBackoff:     200 * time.Microsecond,
		RetryBackoffMax:  20 * time.Millisecond,
		BreakerThreshold: 5,
		BreakerCooldown:  250 * time.Millisecond,
	}
}

// entry is one compiled kernel as installed in the dispatch snapshot. It
// pins everything an accelerated run needs, so a run started on a stale
// snapshot stays internally consistent even while the array degrades.
type entry struct {
	c *pipeline.Compiled
	// ref is the inlined kernel the entry was built from; the cross-check
	// interprets it as the golden model.
	ref *ir.Kernel
	// key is the content-addressed cache key of the compilation (empty when
	// no cache is attached).
	key string
	// cacheSrc records where the entry came from: cache.SourceMemory,
	// cache.SourceDisk, or "" for a fresh compile.
	cacheSrc string
	// phys maps the entry's logical PE indices to physical PEs (nil =
	// identity, i.e. compiled for the undegraded array).
	phys []int
	// maxCycles is the per-kernel watchdog budget (see WatchdogFactor).
	maxCycles int64
	// br is the kernel's circuit breaker (shared across entries).
	br *breaker
}

// sysState is the immutable dispatch snapshot behind the atomic pointer.
// Readers Load it once and work on a consistent view; writers clone,
// mutate and swap under the system lock.
type sysState struct {
	// gen counts degradations; a synthesis job compiled against an older
	// generation is stale and discarded instead of installed.
	gen      uint64
	kernels  map[string]*ir.Kernel
	compiled map[string]*entry
	// target is the composition synthesis currently aims at: the full
	// array, or the degraded composition once permanent faults were
	// masked.
	target *arch.Composition
	// phys maps the target's logical PE indices to physical PEs (nil =
	// identity).
	phys []int
}

func (st *sysState) clone() *sysState {
	return &sysState{
		gen:      st.gen,
		kernels:  maps.Clone(st.kernels),
		compiled: maps.Clone(st.compiled),
		target:   st.target,
		phys:     st.phys,
	}
}

// System is one host processor with an attached CGRA, serving concurrent
// invocations.
type System struct {
	Comp *arch.Composition
	Opts pipeline.Options
	// Threshold is the accumulated host-cycle weight that triggers
	// synthesis of a sequence.
	Threshold int64
	// Cost prices host execution (default: the calibrated model).
	Cost amidar.CostModel
	// Policy tunes fault detection, recovery and admission control.
	Policy ResiliencePolicy
	// Cache, when non-nil, is consulted before every synthesis and receives
	// every fresh compile's artifact. Configure it before the first
	// invocation.
	Cache *cache.Store
	// CompileHook, when non-nil, runs at the start of every fresh compile
	// (after the cache was consulted and missed). A returned error fails
	// the synthesis attempt like a compiler error; the hook may also stall
	// under ctx to model a slow toolchain. The chaos injector plugs in
	// here. Configure it before the first invocation.
	CompileHook func(ctx context.Context, kernel string) error

	// state is the lock-free dispatch snapshot consulted by every
	// invocation.
	state atomic.Pointer[sysState]
	// inj is the armed fault plan (nil pointer = fault-free hardware).
	inj atomic.Pointer[fault.Injector]

	// mu guards the profiling and recovery bookkeeping below plus every
	// state-snapshot swap. The hot dispatch path (already-synthesized
	// kernel, no fault) never takes it.
	mu      sync.Mutex
	weights map[string]int64
	// hostRuns / hostMaxCycles profile the AMIDAR cost per kernel; the
	// per-kernel watchdog budget derives from them.
	hostRuns      map[string]int64
	hostMaxCycles map[string]int64
	// hostOnly marks kernels the (degraded) array can definitively not
	// map; they execute on the host permanently. Transient failures go
	// through the circuit breaker instead.
	hostOnly map[string]bool
	// pendingSynth implements singleflight: at most one queued or running
	// synthesis job per kernel.
	pendingSynth map[string]bool
	breakers     map[string]*breaker
	// deadPEs / deadLinks accumulate masked hardware, in physical indices.
	deadPEs   map[int]bool
	deadLinks map[[2]int]bool

	// Synthesis worker pool (see synth.go).
	poolOnce sync.Once
	queue    chan synthJob
	stop     chan struct{}
	jobs     sync.WaitGroup
	closed   atomic.Bool

	// reg holds the authoritative counters plus compile-phase metrics of
	// every synthesis run.
	reg *obs.Registry
	ctr sysCounters
	// seqMu guards synthSeq so Stats can snapshot it without taking mu.
	seqMu    sync.Mutex
	synthSeq []string
}

// sysCounters holds the registry handles behind Stats, resolved once at
// construction.
type sysCounters struct {
	invocations    *obs.Counter
	amidarRuns     *obs.Counter
	cgraRuns       *obs.Counter
	amidarCycles   *obs.Counter
	cgraCycles     *obs.Counter
	faultsDetected *obs.Counter
	resyntheses    *obs.Counter
	fallbacks      *obs.Counter
	faultsInjected *obs.Gauge
	queueDepth     *obs.Gauge
	sheds          *obs.Counter
	retries        *obs.Counter
	deadlineHits   *obs.Counter
}

// New builds a system around a composition. The daemon synthesizes ahead of
// any invocation, so there are no representative inputs to time the "auto"
// backend's arms with — auto is normalized to the list backend here (pick
// "modulo" explicitly to pipeline served kernels).
func New(comp *arch.Composition, opts pipeline.Options, threshold int64) *System {
	if opts.Backend == pipeline.BackendAuto {
		opts.Backend = ""
	}
	if opts.Sched.Backend == pipeline.BackendAuto {
		opts.Sched.Backend = ""
	}
	s := &System{
		Comp:          comp,
		Opts:          opts,
		Threshold:     threshold,
		Cost:          amidar.DefaultCostModel(),
		Policy:        DefaultResiliencePolicy(),
		weights:       map[string]int64{},
		hostRuns:      map[string]int64{},
		hostMaxCycles: map[string]int64{},
		hostOnly:      map[string]bool{},
		pendingSynth:  map[string]bool{},
		breakers:      map[string]*breaker{},
		deadPEs:       map[int]bool{},
		deadLinks:     map[[2]int]bool{},
		stop:          make(chan struct{}),
		reg:           obs.NewRegistry(),
	}
	s.state.Store(&sysState{
		kernels:  map[string]*ir.Kernel{},
		compiled: map[string]*entry{},
		target:   comp,
	})
	s.reg.Help("cgra_system_invocations_total", "kernel invocations through the system")
	s.reg.Help("cgra_system_runs_total", "executions by engine (amidar host or cgra)")
	s.reg.Help("cgra_system_cycles_total", "cycles spent by engine (amidar host or cgra)")
	s.reg.Help("cgra_system_faults_detected_total", "CGRA runs rejected by watchdog, simulator or cross-check")
	s.reg.Help("cgra_system_resyntheses_total", "successful re-compilations onto a degraded composition")
	s.reg.Help("cgra_system_fallbacks_total", "invocations completed on the host after a detected fault")
	s.reg.Help("cgra_synth_queue_depth", "synthesis jobs currently queued")
	s.reg.Help("cgra_synth_shed_total", "synthesis requests dropped by the bounded queue")
	s.reg.Help("cgra_synth_jobs_total", "completed synthesis jobs by result (ok, error, deadline, stale)")
	s.reg.Help("cgra_recovery_retries_total", "accelerated re-execution attempts of the recovery loop")
	s.reg.Help("cgra_compile_deadline_hits_total", "synthesis attempts aborted by the compile deadline")
	s.reg.Help("cgra_breaker_state", "per-kernel circuit breaker state (0 closed, 1 open, 2 half-open)")
	s.reg.Help("cgra_breaker_transitions_total", "circuit breaker transitions by kernel and target state")
	s.ctr = sysCounters{
		invocations:    s.reg.Counter("cgra_system_invocations_total"),
		amidarRuns:     s.reg.Counter("cgra_system_runs_total", obs.L("engine", "amidar")),
		cgraRuns:       s.reg.Counter("cgra_system_runs_total", obs.L("engine", "cgra")),
		amidarCycles:   s.reg.Counter("cgra_system_cycles_total", obs.L("engine", "amidar")),
		cgraCycles:     s.reg.Counter("cgra_system_cycles_total", obs.L("engine", "cgra")),
		faultsDetected: s.reg.Counter("cgra_system_faults_detected_total"),
		resyntheses:    s.reg.Counter("cgra_system_resyntheses_total"),
		fallbacks:      s.reg.Counter("cgra_system_fallbacks_total"),
		faultsInjected: s.reg.Gauge("cgra_system_faults_injected"),
		queueDepth:     s.reg.Gauge("cgra_synth_queue_depth"),
		sheds:          s.reg.Counter("cgra_synth_shed_total"),
		retries:        s.reg.Counter("cgra_recovery_retries_total"),
		deadlineHits:   s.reg.Counter("cgra_compile_deadline_hits_total"),
	}
	return s
}

// Metrics returns the system's registry: invocation counters, per-engine
// cycles, fault/recovery counters, queue and breaker gauges, and the
// compile-phase metrics of the most recent synthesis. Safe to scrape
// concurrently with invocations.
func (s *System) Metrics() *obs.Registry { return s.reg }

// InjectFaults arms a deterministic fault plan against the system's CGRA.
// Must be called before the affected invocations; the plan stays armed for
// the system's lifetime.
func (s *System) InjectFaults(plan fault.Plan) error {
	inj, err := fault.NewInjector(plan, s.Comp.NumPEs())
	if err != nil {
		return fmt.Errorf("system: %v", err)
	}
	s.inj.Store(inj)
	return nil
}

// ClearFaults disarms the hardware fault plan: subsequent runs execute on
// fault-free hardware. Already-masked permanent damage stays masked (the
// degraded composition remains the synthesis target); this only stops new
// corruption, for the recovery phase of a chaos soak.
func (s *System) ClearFaults() {
	s.inj.Store(nil)
}

// InvokeHost executes one invocation directly on the AMIDAR host
// interpreter, bypassing the accelerator, the profiler and the synthesis
// machinery entirely. It is the server's brownout path: always available,
// never queued behind a compile, immune to accelerator faults.
func (s *System) InvokeHost(ctx context.Context, name string, args map[string]int32, host *ir.Host) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("system: invocation of %q cancelled: %w", name, err)
	}
	st := s.state.Load()
	k := st.kernels[name]
	if k == nil {
		return nil, fmt.Errorf("system: unknown kernel %q", name)
	}
	sp := obs.ContextSpan(ctx).StartChild("engine")
	sp.Annotate("path", "host")
	base, err := amidar.ExecuteProgram(k, st.kernels, s.Cost, args, host)
	sp.Finish()
	if err != nil {
		return nil, fmt.Errorf("system: AMIDAR run of %q: %v", name, err)
	}
	sp.Set("cycles", base.Cycles)
	s.ctr.invocations.Add(1)
	s.ctr.amidarRuns.Add(1)
	s.ctr.amidarCycles.Add(base.Cycles)
	return &Result{LiveOuts: base.LiveOuts, Cycles: base.Cycles}, nil
}

// OpenBreakers lists the kernels whose circuit breaker is currently not
// closed (open or half-open), sorted — the readiness endpoint's view of
// which kernels are being shed to the host.
func (s *System) OpenBreakers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for name, b := range s.breakers {
		if b.current() != brClosed {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// DegradedComposition returns the composition synthesis currently targets
// when hardware has been masked, or nil while the full array is in use.
func (s *System) DegradedComposition() *arch.Composition {
	st := s.state.Load()
	if st.target == s.Comp {
		return nil
	}
	return st.target
}

// MaskedPEs returns the physical indices of PEs masked by degradation.
func (s *System) MaskedPEs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for pe := range s.deadPEs {
		out = append(out, pe)
	}
	sort.Ints(out)
	return out
}

// Register makes a kernel invocable; registered kernels also serve as the
// call library for each other (resolved by inlining at synthesis time).
func (s *System) Register(k *ir.Kernel) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state.Load()
	if _, dup := st.kernels[k.Name]; dup {
		return fmt.Errorf("system: kernel %q already registered", k.Name)
	}
	ns := st.clone()
	ns.kernels[k.Name] = k
	s.state.Store(ns)
	return nil
}

// Invoke executes one kernel invocation with no caller deadline.
func (s *System) Invoke(name string, args map[string]int32, host *ir.Host) (*Result, error) {
	return s.InvokeCtx(context.Background(), name, args, host)
}

// InvokeCtx executes one kernel invocation: on the CGRA when the sequence
// has been synthesized, otherwise on the host — enqueuing background
// synthesis when the profile weight crosses the threshold. Detected
// accelerator faults are recovered transparently (retries with backoff,
// degraded re-synthesis, host fallback); InvokeCtx returns an error only
// for caller mistakes (unknown kernel, bad arguments), host-side failures,
// or a cancelled context.
//
// InvokeCtx is safe for concurrent use and the hot path (synthesized
// kernel, fault-free hardware) is lock-free; invocations of different
// kernels — and of the same kernel — proceed in parallel. The host heap
// passed in must not be shared between concurrent invocations.
func (s *System) InvokeCtx(ctx context.Context, name string, args map[string]int32, host *ir.Host) (*Result, error) {
	st := s.state.Load()
	k := st.kernels[name]
	if k == nil {
		return nil, fmt.Errorf("system: unknown kernel %q", name)
	}
	ctx, sp := obs.StartSpanCtx(ctx, "system.invoke")
	defer sp.Finish()
	s.ctr.invocations.Add(1)
	defer func() { s.ctr.faultsInjected.SetInt(s.inj.Load().Injections()) }()

	// The dispatch lookup is the serving-path cache decision: an installed
	// compiled entry means the request skips the whole tool flow.
	ent := st.compiled[name]
	lk := sp.StartChild("cache.lookup")
	if ent != nil {
		lk.Annotate("source", "installed")
	} else {
		lk.Annotate("source", "none")
	}
	lk.Finish()

	if ent != nil {
		if !ent.br.allow(time.Now(), s.breakerCooldown()) {
			// Breaker open: shed to the host without profiling (the kernel
			// is already synthesized; re-synthesis is not what it needs).
			sp.Event("breaker_open_shed", "breaker open: serving on host")
			return s.runHost(ctx, name, k, args, host, false)
		}
		res, err := s.runAccelerated(ctx, name, ent, args, host)
		if err == nil {
			ent.br.success()
			return res, nil
		}
		if ctx.Err() != nil {
			// Caller cancellation is not a hardware fault; surface it.
			return nil, err
		}
		s.ctr.faultsDetected.Add(1)
		sp.Event("fault_detected", err.Error())
		ent.br.failure(time.Now(), s.breakerThreshold())
		return s.recoverInvocation(ctx, name, args, host)
	}
	return s.runHost(ctx, name, k, args, host, !s.isHostOnly(name))
}

func (s *System) isHostOnly(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hostOnly[name]
}

func (s *System) breakerCooldown() time.Duration {
	if d := s.Policy.BreakerCooldown; d > 0 {
		return d
	}
	return 250 * time.Millisecond
}

func (s *System) breakerThreshold() int {
	if n := s.Policy.BreakerThreshold; n > 0 {
		return n
	}
	return 5
}

// breakerFor returns (creating on demand) the named kernel's breaker.
func (s *System) breakerFor(name string) *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.breakerForLocked(name)
}

func (s *System) breakerForLocked(name string) *breaker {
	b := s.breakers[name]
	if b == nil {
		stateG := s.reg.Gauge("cgra_breaker_state", obs.L("kernel", name))
		stateG.SetInt(int64(brClosed))
		b = &breaker{notify: func(to breakerState) {
			stateG.SetInt(int64(to))
			s.reg.Counter("cgra_breaker_transitions_total",
				obs.L("kernel", name), obs.L("to", to.String())).Inc()
		}}
		s.breakers[name] = b
	}
	return b
}

// BreakerState reports the named kernel's circuit-breaker state:
// "closed", "open" or "half_open".
func (s *System) BreakerState(name string) string {
	return s.breakerFor(name).current().String()
}

// runHost executes on the AMIDAR host; when profile is true the profiler
// accumulates the kernel's weight and may enqueue background synthesis.
func (s *System) runHost(ctx context.Context, name string, k *ir.Kernel, args map[string]int32, host *ir.Host, profile bool) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("system: invocation of %q cancelled: %w", name, err)
	}
	st := s.state.Load()
	sp := obs.ContextSpan(ctx).StartChild("engine")
	sp.Annotate("path", "host")
	base, err := amidar.ExecuteProgram(k, st.kernels, s.Cost, args, host)
	sp.Finish()
	if err != nil {
		return nil, fmt.Errorf("system: AMIDAR run of %q: %v", name, err)
	}
	sp.Set("cycles", base.Cycles)
	s.ctr.amidarRuns.Add(1)
	s.ctr.amidarCycles.Add(base.Cycles)
	result := &Result{LiveOuts: base.LiveOuts, Cycles: base.Cycles}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.hostRuns[name]++
	if base.Cycles > s.hostMaxCycles[name] {
		s.hostMaxCycles[name] = base.Cycles
	}
	if !profile {
		return result, nil
	}
	s.weights[name] += base.Cycles
	if s.weights[name] < s.Threshold || s.hostOnly[name] || s.pendingSynth[name] {
		return result, nil
	}
	if cur := s.state.Load(); cur.compiled[name] != nil {
		return result, nil
	}
	br := s.breakerForLocked(name)
	if !br.allow(time.Now(), s.breakerCooldown()) {
		return result, nil
	}
	if s.enqueueSynthLocked(name) {
		result.Synthesized = true
		obs.EventCtx(ctx, "synth_enqueued", name)
	} else {
		br.cancelProbe()
	}
	return result, nil
}

// runAccelerated performs one CGRA run with the watchdog and (when armed
// or configured) the reference cross-check. The caller's heap is only
// mutated when the run is accepted, so a rejected run leaves clean state
// for the retry.
func (s *System) runAccelerated(ctx context.Context, name string, ent *entry, args map[string]int32, host *ir.Host) (*Result, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "cgra.run")
	defer sp.Finish()
	inj := s.inj.Load()
	// Machine attaches the memoized predecoded engine; setting Inject to a
	// live fault plan reverts the run to the instrumented interpreter.
	m := ent.c.Machine()
	m.Inject = inj
	m.PhysPE = ent.phys
	m.MaxCycles = ent.maxCycles
	if m.MaxCycles == 0 {
		m.MaxCycles = s.watchdogCap()
	}
	scratch := host.Clone()
	res, err := m.RunCtx(ctx, args, scratch)
	if err != nil {
		return nil, fmt.Errorf("system: CGRA run of %q: %w", name, err)
	}
	if s.Policy.CrossCheck || inj != nil {
		cc := sp.StartChild("crosscheck")
		defer cc.Finish()
		ref := ent.ref
		if ref == nil {
			ref = s.state.Load().kernels[name]
		}
		refHost := host.Clone()
		refOuts, err := (&ir.Interp{}).Run(ref, args, refHost)
		if err != nil {
			return nil, fmt.Errorf("system: cross-check reference of %q: %v", name, err)
		}
		for out, want := range refOuts {
			if got := res.LiveOuts[out]; got != want {
				return nil, fmt.Errorf("system: cross-check of %q: live-out %s = %d, reference %d", name, out, got, want)
			}
		}
		if !scratch.Equal(refHost) {
			return nil, fmt.Errorf("system: cross-check of %q: heap contents diverge from reference", name)
		}
	}
	// Accept: commit the scratch heap into the caller's.
	for arr, data := range scratch.Arrays {
		copy(host.Arrays[arr], data)
	}
	sp.Set("cycles", res.TotalCycles())
	s.ctr.cgraRuns.Add(1)
	s.ctr.cgraCycles.Add(res.TotalCycles())
	return &Result{LiveOuts: res.LiveOuts, Cycles: res.TotalCycles(), OnCGRA: true}, nil
}

func (s *System) watchdogCap() int64 {
	if c := s.Policy.WatchdogCycles; c > 0 {
		return c
	}
	return 10_000_000
}

// cycleBudgetLocked derives the per-kernel watchdog budget from the AMIDAR
// host-cycle profile: WatchdogFactor × the largest observed host run,
// clamped to [50k, WatchdogCycles]. The accelerator is only deployed when
// it beats the host by a wide margin, so a CGRA run burning a multiple of
// the host cost is livelocked and the watchdog converts it into a detected
// fault quickly — instead of burning the global 10M-cycle default.
func (s *System) cycleBudgetLocked(name string) int64 {
	cap := s.watchdogCap()
	est := s.hostMaxCycles[name]
	if est <= 0 {
		return cap
	}
	factor := s.Policy.WatchdogFactor
	if factor <= 0 {
		factor = 16
	}
	budget := factor * est
	const floor = 50_000
	if budget < floor {
		budget = floor
	}
	if budget > cap {
		budget = cap
	}
	return budget
}

// recoverInvocation drives the recovery policy after a detected fault:
// mask newly diagnosed permanent faults and re-synthesize onto the
// degraded composition, re-execute up to the retry cap — each attempt
// paced by exponential backoff with jitter — and finally fall back to host
// execution.
func (s *System) recoverInvocation(ctx context.Context, name string, args map[string]int32, host *ir.Host) (*Result, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "recover")
	defer sp.Finish()
	br := s.breakerFor(name)
	backoff := s.Policy.RetryBackoff
	if backoff <= 0 {
		backoff = 200 * time.Microsecond
	}
	maxBackoff := s.Policy.RetryBackoffMax
	if maxBackoff <= 0 {
		maxBackoff = 20 * time.Millisecond
	}
	for attempt := 0; attempt < s.Policy.MaxRetries; attempt++ {
		if sleepCtx(ctx, jitter(backoff)) != nil {
			break
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
		s.mu.Lock()
		if perm := s.newPermanentFaultsLocked(); len(perm) > 0 {
			sp.Event("degrade", fmt.Sprintf("masking %d permanent fault(s)", len(perm)))
			if !s.degradeLocked(perm) {
				// The surviving array is unusable: permanent host fallback.
				s.dropCompiledLocked(name)
				s.hostOnly[name] = true
				s.mu.Unlock()
				break
			}
			if err := s.resynthesizeLocked(ctx, name); err != nil {
				// The degraded array cannot map the kernel: permanent host
				// fallback — unless the compile merely hit its deadline, in
				// which case a later profiled run may retry synthesis.
				if !errIsDeadline(err) {
					s.hostOnly[name] = true
				}
				s.mu.Unlock()
				break
			}
		}
		ent := s.state.Load().compiled[name]
		s.mu.Unlock()
		if ent == nil {
			break
		}
		if !br.allow(time.Now(), s.breakerCooldown()) {
			break
		}
		s.ctr.retries.Add(1)
		sp.Event("retry", fmt.Sprintf("accelerated re-execution attempt %d", attempt+1))
		res, err := s.runAccelerated(ctx, name, ent, args, host)
		if err == nil {
			br.success()
			res.Recovered = true
			return res, nil
		}
		if ctx.Err() != nil {
			break
		}
		s.ctr.faultsDetected.Add(1)
		sp.Event("fault_detected", err.Error())
		br.failure(time.Now(), s.breakerThreshold())
	}
	s.ctr.fallbacks.Add(1)
	sp.Event("host_fallback", "recovery exhausted: serving on host")
	res, err := s.runHost(ctx, name, s.state.Load().kernels[name], args, host, false)
	if err != nil {
		return nil, err
	}
	res.Recovered = true
	return res, nil
}

// jitter spreads a backoff delay over [d/2, d) so concurrent recoveries
// desynchronize instead of hammering the array in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)))
}

// sleepCtx sleeps for d or until the context is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// newPermanentFaultsLocked lists manifested permanent faults not yet
// masked.
func (s *System) newPermanentFaultsLocked() []fault.Fault {
	var out []fault.Fault
	for _, f := range s.inj.Load().ManifestedPermanent() {
		switch f.Kind {
		case fault.PermanentPE:
			if !s.deadPEs[f.PE] {
				out = append(out, f)
			}
		case fault.BrokenLink:
			if !s.deadLinks[[2]int{f.Src, f.Dst}] {
				out = append(out, f)
			}
		}
	}
	return out
}

// degradeLocked masks the given faults out of the array and recomputes the
// synthesis target (all-pairs routing is rebuilt by the scheduler on the
// new composition). Every compiled kernel targeted the old array, so the
// dispatch entries are dropped and the generation bumped: in-flight
// synthesis jobs against the old target land stale and are discarded.
// Returns false when the surviving array is unusable.
func (s *System) degradeLocked(faults []fault.Fault) bool {
	for _, f := range faults {
		switch f.Kind {
		case fault.PermanentPE:
			s.deadPEs[f.PE] = true
		case fault.BrokenLink:
			s.deadLinks[[2]int{f.Src, f.Dst}] = true
		}
	}
	d, err := arch.Degrade(s.Comp, s.deadPEs, s.deadLinks)
	if err != nil {
		return false
	}
	cur := s.state.Load()
	s.state.Store(&sysState{
		gen:      cur.gen + 1,
		kernels:  cur.kernels,
		compiled: map[string]*entry{},
		target:   d.Comp,
		phys:     d.PhysOf,
	})
	return true
}

func (s *System) dropCompiledLocked(name string) {
	cur := s.state.Load()
	if cur.compiled[name] == nil {
		return
	}
	ns := cur.clone()
	delete(ns.compiled, name)
	s.state.Store(ns)
}

// resynthesizeLocked recompiles one kernel onto the current (degraded)
// target, synchronously — degradation is a stop-the-world event and the
// invocation being recovered needs the result. The compile still honors
// the deadline.
func (s *System) resynthesizeLocked(ctx context.Context, name string) error {
	ent, err := s.compileKernel(s.compileCtx(ctx), name)
	if err != nil {
		return err
	}
	s.installLocked(name, ent)
	s.ctr.resyntheses.Add(1)
	return nil
}

// compileCtx derives the compile-deadline context for one synthesis
// attempt. The returned cancel func is leaked deliberately: the deadline
// firing is the only cancellation path and the timer is short-lived.
func (s *System) compileCtx(parent context.Context) context.Context {
	d := s.Policy.CompileDeadline
	if d <= 0 {
		d = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(parent, d)
	_ = cancel
	return ctx
}

// compileKernel runs the tool flow for the kernel (inlining its calls
// against the registered library) targeting the current snapshot's
// composition. When a cache is attached it is consulted first — a hit
// realizes the stored artifact instead of compiling, and a fresh compile's
// artifact is stored back. It takes no locks and is called from the worker
// pool and — under the system lock — from the recovery path. A compiler
// panic is converted into an error so a worker goroutine never dies.
func (s *System) compileKernel(ctx context.Context, name string) (ent *entry, err error) {
	defer func() {
		if r := recover(); r != nil {
			ent, err = nil, fmt.Errorf("system: internal error synthesizing %q: %v", name, r)
		}
	}()
	st := s.state.Load()
	prog := &ir.Program{Kernels: st.kernels, Entry: name}
	inl := obs.ContextSpan(ctx).StartChild("inline")
	flat, err := opt.Inline(prog)
	inl.Finish()
	if err != nil {
		return nil, fmt.Errorf("system: inline %q: %v", name, err)
	}
	opts := s.Opts
	if s.Policy.CompileBudget > 0 {
		opts.Sched.MaxCycles = s.Policy.CompileBudget
	}
	var key string
	if s.Cache != nil {
		key = pipeline.Key(flat, st.target, opts)
		if art, src, ok := s.Cache.GetCtx(ctx, key); ok {
			if c, rerr := art.Realize(); rerr == nil {
				return &entry{c: c, ref: flat, key: key, cacheSrc: src, phys: st.phys}, nil
			}
			// A stored artifact that no longer realizes (version skew across
			// a binary upgrade) falls through to a fresh compile, which
			// overwrites the entry.
		}
	}
	if hook := s.CompileHook; hook != nil {
		if err := hook(ctx, name); err != nil {
			return nil, fmt.Errorf("system: synthesize %q: %w", name, err)
		}
	}
	// Compile-phase timings and sizes land in the system registry.
	opts.Obs = s.reg
	c, err := pipeline.CompileCtx(ctx, flat, st.target, opts)
	if err != nil {
		return nil, fmt.Errorf("system: synthesize %q: %w", name, err)
	}
	// Predecode the fast-path engine once at synthesis time, off the
	// serving hot path (cache hits were warmed by Realize already).
	_, _ = c.Engine()
	if s.Cache != nil {
		if art, aerr := c.Artifact(); aerr == nil {
			// A cache write failure (disk full, permissions) must not fail
			// the synthesis: the compiled entry is good.
			_ = s.Cache.PutCtx(ctx, key, art)
		}
	}
	return &entry{c: c, ref: flat, key: key, phys: st.phys}, nil
}

// installLocked patches the dispatch snapshot with a freshly compiled
// kernel.
func (s *System) installLocked(name string, ent *entry) {
	ent.maxCycles = s.cycleBudgetLocked(name)
	ent.br = s.breakerForLocked(name)
	cur := s.state.Load()
	ns := cur.clone()
	ns.compiled[name] = ent
	s.state.Store(ns)
	s.seqMu.Lock()
	s.synthSeq = append(s.synthSeq, name)
	s.seqMu.Unlock()
}

// SynthInfo describes one completed (or cache-served) synthesis.
type SynthInfo struct {
	// Kernel is the kernel name.
	Kernel string
	// Key is the content-addressed cache key ("" when no cache is attached).
	Key string
	// CacheSource is where the compiled kernel came from: "memory", "disk",
	// or "" for a fresh compile.
	CacheSource string
	// Contexts and MaxRF are the mapping's resource footprint.
	Contexts int
	MaxRF    int
	// Elapsed is the wall time of the synthesis (or cache realization).
	Elapsed time.Duration
}

// Synthesize forces immediate, synchronous synthesis of a registered
// kernel, bypassing the profiling threshold (used by tools that want the
// accelerated path from the first invocation).
func (s *System) Synthesize(name string) error {
	_, err := s.SynthesizeCtx(context.Background(), name)
	return err
}

// SynthesizeCtx is Synthesize under a caller deadline, reporting where the
// compiled kernel came from (cache tier or fresh compile) and its resource
// footprint. Re-synthesizing an already-compiled kernel is a no-op that
// reports the installed entry.
func (s *System) SynthesizeCtx(ctx context.Context, name string) (*SynthInfo, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "system.synthesize")
	defer sp.Finish()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state.Load().kernels[name] == nil {
		return nil, fmt.Errorf("system: unknown kernel %q", name)
	}
	if ent := s.state.Load().compiled[name]; ent != nil {
		sp.Annotate("source", "installed")
		return synthInfo(name, ent, 0), nil
	}
	start := time.Now()
	ent, err := s.compileKernel(s.compileCtx(ctx), name)
	if err != nil {
		return nil, err
	}
	s.installLocked(name, ent)
	return synthInfo(name, ent, time.Since(start)), nil
}

func synthInfo(name string, ent *entry, elapsed time.Duration) *SynthInfo {
	return &SynthInfo{
		Kernel:      name,
		Key:         ent.key,
		CacheSource: ent.cacheSrc,
		Contexts:    ent.c.UsedContexts(),
		MaxRF:       ent.c.MaxRFEntries(),
		Elapsed:     elapsed,
	}
}

// Kernel returns the registered kernel of that name, or nil.
func (s *System) Kernel(name string) *ir.Kernel {
	return s.state.Load().kernels[name]
}

// CacheKey computes the content-addressed artifact key a compile of the
// named kernel would produce — the same inline + pipeline.Key derivation
// compileKernel runs — without compiling. The cluster router uses it to
// decide which shard owns the kernel before any work happens. An already
// installed kernel answers from its entry.
func (s *System) CacheKey(name string) (string, error) {
	st := s.state.Load()
	if ent := st.compiled[name]; ent != nil && ent.key != "" {
		return ent.key, nil
	}
	if st.kernels[name] == nil {
		return "", fmt.Errorf("system: unknown kernel %q", name)
	}
	flat, err := opt.Inline(&ir.Program{Kernels: st.kernels, Entry: name})
	if err != nil {
		return "", fmt.Errorf("system: inline %q: %v", name, err)
	}
	opts := s.Opts
	if s.Policy.CompileBudget > 0 {
		opts.Sched.MaxCycles = s.Policy.CompileBudget
	}
	return pipeline.Key(flat, st.target, opts), nil
}

// Kernels lists the registered kernel names, sorted.
func (s *System) Kernels() []string {
	st := s.state.Load()
	out := make([]string, 0, len(st.kernels))
	for name := range st.kernels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of the accumulated counters. It reads atomic
// registry counters and never blocks behind a running invocation, so it is
// safe to call from a monitoring goroutine.
func (s *System) Stats() Stats {
	s.seqMu.Lock()
	seq := append([]string(nil), s.synthSeq...)
	s.seqMu.Unlock()
	return Stats{
		Invocations:    s.ctr.invocations.Value(),
		AMIDARRuns:     s.ctr.amidarRuns.Value(),
		CGRARuns:       s.ctr.cgraRuns.Value(),
		AMIDARCycles:   s.ctr.amidarCycles.Value(),
		CGRACycles:     s.ctr.cgraCycles.Value(),
		SynthesizedSeq: seq,
		FaultsInjected: int64(s.ctr.faultsInjected.Value()),
		FaultsDetected: s.ctr.faultsDetected.Value(),
		Resyntheses:    s.ctr.resyntheses.Value(),
		Fallbacks:      s.ctr.fallbacks.Value(),
		SynthSheds:     s.ctr.sheds.Value(),
		Retries:        s.ctr.retries.Value(),
		DeadlineHits:   s.ctr.deadlineHits.Value(),
	}
}

// Synthesized reports whether the named kernel runs on the CGRA.
func (s *System) Synthesized(name string) bool {
	return s.state.Load().compiled[name] != nil
}

// Profile lists the host-cycle weights observed so far, heaviest first.
func (s *System) Profile() []struct {
	Name   string
	Cycles int64
} {
	s.mu.Lock()
	defer s.mu.Unlock()
	type row struct {
		Name   string
		Cycles int64
	}
	var rows []row
	for name, w := range s.weights {
		rows = append(rows, row{name, w})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Cycles != rows[j].Cycles {
			return rows[i].Cycles > rows[j].Cycles
		}
		return rows[i].Name < rows[j].Name
	})
	out := make([]struct {
		Name   string
		Cycles int64
	}, len(rows))
	for i, r := range rows {
		out[i] = struct {
			Name   string
			Cycles int64
		}{r.Name, r.Cycles}
	}
	return out
}

// errIsDeadline reports whether a synthesis error was a deadline or
// cancellation abort rather than a genuine mapping failure.
func errIsDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}
