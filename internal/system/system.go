// Package system closes the loop of the paper's Fig. 1: a host processor
// (the AMIDAR cost model) executes kernels under profiling; when a
// sequence's accumulated weight crosses the synthesis threshold, the tool
// flow maps it onto the CGRA — method inlining included — the "bytecode is
// patched", and every subsequent invocation transparently forwards to the
// accelerator ("Each time the AMIDAR processor enters one of these code
// sequences, the processor forwards the execution to the CGRA", §III).
// This is the online-synthesis model of the authors' prior work ([1], [18])
// that the paper's tool set plugs into.
package system

import (
	"fmt"
	"sort"
	"sync"

	"cgra/internal/amidar"
	"cgra/internal/arch"
	"cgra/internal/fault"
	"cgra/internal/ir"
	"cgra/internal/obs"
	"cgra/internal/opt"
	"cgra/internal/pipeline"
	"cgra/internal/sim"
)

// Result reports one invocation through the system.
type Result struct {
	LiveOuts map[string]int32
	Cycles   int64
	// OnCGRA reports whether this invocation ran on the accelerator.
	OnCGRA bool
	// Synthesized reports whether this invocation triggered synthesis.
	Synthesized bool
	// Recovered reports that a fault was detected during this invocation
	// and the reported result comes from a recovery path (a re-execution,
	// a degraded-array re-synthesis, or the host fallback).
	Recovered bool
}

// Stats is a point-in-time snapshot of the system-level counters. The
// authoritative state lives in the system's metrics registry (see
// System.Metrics); Stats remains the convenient struct view.
type Stats struct {
	Invocations    int64
	AMIDARRuns     int64
	CGRARuns       int64
	AMIDARCycles   int64
	CGRACycles     int64
	SynthesizedSeq []string
	// FaultsInjected counts corruption events the armed fault plan applied.
	FaultsInjected int64
	// FaultsDetected counts CGRA runs rejected by the watchdog, the
	// simulator or the live-out/heap cross-check.
	FaultsDetected int64
	// Resyntheses counts successful re-compilations onto a degraded
	// composition.
	Resyntheses int64
	// Fallbacks counts invocations that completed on the AMIDAR host after
	// a detected fault.
	Fallbacks int64
}

// TotalCycles is the cycles actually spent (host + accelerator).
func (s *Stats) TotalCycles() int64 { return s.AMIDARCycles + s.CGRACycles }

// ResiliencePolicy tunes fault detection and recovery.
type ResiliencePolicy struct {
	// MaxRetries caps the CGRA re-execution attempts per invocation after
	// a detected fault; the host fallback runs when they are exhausted.
	MaxRetries int
	// CompileBudget caps the scheduler's cycle horizon per synthesis
	// attempt, so a pathological degraded composition cannot stall the
	// system inside the compiler (0 = the scheduler default).
	CompileBudget int
	// WatchdogCycles is the simulator cycle budget per CGRA run; a
	// corrupted condition can trap a schedule in an infinite loop, and the
	// watchdog converts that into a detected fault (0 = 10M cycles).
	WatchdogCycles int64
	// CrossCheck verifies every CGRA run's live-outs and heap effects
	// against the reference interpreter. It is forced on while a fault
	// plan is armed; enabling it without faults turns the system into a
	// self-checking (lock-step) configuration.
	CrossCheck bool
}

// DefaultResiliencePolicy returns the production defaults.
func DefaultResiliencePolicy() ResiliencePolicy {
	return ResiliencePolicy{
		MaxRetries:     3,
		CompileBudget:  100_000,
		WatchdogCycles: 10_000_000,
	}
}

// System is one host processor with an attached CGRA.
type System struct {
	Comp *arch.Composition
	Opts pipeline.Options
	// Threshold is the accumulated host-cycle weight that triggers
	// synthesis of a sequence.
	Threshold int64
	// Cost prices host execution (default: the calibrated model).
	Cost amidar.CostModel
	// Policy tunes fault detection and recovery.
	Policy ResiliencePolicy

	// mu serializes invocations and guards every map below. Invocations
	// must serialize anyway: the fault injector and the dispatch table
	// mutate during runs. Metric reads (Stats, Metrics) do NOT take mu —
	// the registry counters are atomic, so scrapes never block behind a
	// running invocation.
	mu sync.Mutex

	kernels  map[string]*ir.Kernel
	compiled map[string]*pipeline.Compiled
	// reference holds the inlined kernel each compiled entry was built
	// from; the cross-check interprets it as the golden model.
	reference map[string]*ir.Kernel
	weights   map[string]int64
	// hostOnly marks kernels the degraded array can no longer map; they
	// execute on the host permanently.
	hostOnly map[string]bool

	// reg holds the authoritative counters plus compile-phase metrics of
	// every synthesis run.
	reg *obs.Registry
	ctr sysCounters
	// seqMu guards synthSeq so Stats can snapshot it without taking mu.
	seqMu    sync.Mutex
	synthSeq []string

	// inj is the armed fault plan (nil = fault-free hardware).
	inj *fault.Injector
	// target is the composition synthesis currently aims at: Comp, or the
	// degraded composition once permanent faults were masked.
	target *arch.Composition
	// phys maps the target's logical PE indices to physical PEs of Comp
	// (nil = identity, i.e. target == Comp).
	phys []int
	// deadPEs / deadLinks accumulate masked hardware, in physical indices.
	deadPEs   map[int]bool
	deadLinks map[[2]int]bool
}

// sysCounters holds the registry handles behind Stats, resolved once at
// construction.
type sysCounters struct {
	invocations    *obs.Counter
	amidarRuns     *obs.Counter
	cgraRuns       *obs.Counter
	amidarCycles   *obs.Counter
	cgraCycles     *obs.Counter
	faultsDetected *obs.Counter
	resyntheses    *obs.Counter
	fallbacks      *obs.Counter
	faultsInjected *obs.Gauge
}

// New builds a system around a composition.
func New(comp *arch.Composition, opts pipeline.Options, threshold int64) *System {
	s := &System{
		Comp:      comp,
		Opts:      opts,
		Threshold: threshold,
		Cost:      amidar.DefaultCostModel(),
		Policy:    DefaultResiliencePolicy(),
		kernels:   map[string]*ir.Kernel{},
		compiled:  map[string]*pipeline.Compiled{},
		reference: map[string]*ir.Kernel{},
		weights:   map[string]int64{},
		hostOnly:  map[string]bool{},
		reg:       obs.NewRegistry(),
		target:    comp,
		deadPEs:   map[int]bool{},
		deadLinks: map[[2]int]bool{},
	}
	s.reg.Help("cgra_system_invocations_total", "kernel invocations through the system")
	s.reg.Help("cgra_system_runs_total", "executions by engine (amidar host or cgra)")
	s.reg.Help("cgra_system_cycles_total", "cycles spent by engine (amidar host or cgra)")
	s.reg.Help("cgra_system_faults_detected_total", "CGRA runs rejected by watchdog, simulator or cross-check")
	s.reg.Help("cgra_system_resyntheses_total", "successful re-compilations onto a degraded composition")
	s.reg.Help("cgra_system_fallbacks_total", "invocations completed on the host after a detected fault")
	s.ctr = sysCounters{
		invocations:    s.reg.Counter("cgra_system_invocations_total"),
		amidarRuns:     s.reg.Counter("cgra_system_runs_total", obs.L("engine", "amidar")),
		cgraRuns:       s.reg.Counter("cgra_system_runs_total", obs.L("engine", "cgra")),
		amidarCycles:   s.reg.Counter("cgra_system_cycles_total", obs.L("engine", "amidar")),
		cgraCycles:     s.reg.Counter("cgra_system_cycles_total", obs.L("engine", "cgra")),
		faultsDetected: s.reg.Counter("cgra_system_faults_detected_total"),
		resyntheses:    s.reg.Counter("cgra_system_resyntheses_total"),
		fallbacks:      s.reg.Counter("cgra_system_fallbacks_total"),
		faultsInjected: s.reg.Gauge("cgra_system_faults_injected"),
	}
	return s
}

// Metrics returns the system's registry: invocation counters, per-engine
// cycles, fault/recovery counters, and the compile-phase metrics of the
// most recent synthesis. Safe to scrape concurrently with invocations.
func (s *System) Metrics() *obs.Registry { return s.reg }

// InjectFaults arms a deterministic fault plan against the system's CGRA.
// Must be called before the affected invocations; the plan stays armed for
// the system's lifetime.
func (s *System) InjectFaults(plan fault.Plan) error {
	inj, err := fault.NewInjector(plan, s.Comp.NumPEs())
	if err != nil {
		return fmt.Errorf("system: %v", err)
	}
	s.mu.Lock()
	s.inj = inj
	s.mu.Unlock()
	return nil
}

// DegradedComposition returns the composition synthesis currently targets
// when hardware has been masked, or nil while the full array is in use.
func (s *System) DegradedComposition() *arch.Composition {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.target == s.Comp {
		return nil
	}
	return s.target
}

// MaskedPEs returns the physical indices of PEs masked by degradation.
func (s *System) MaskedPEs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for pe := range s.deadPEs {
		out = append(out, pe)
	}
	sort.Ints(out)
	return out
}

// Register makes a kernel invocable; registered kernels also serve as the
// call library for each other (resolved by inlining at synthesis time).
func (s *System) Register(k *ir.Kernel) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.kernels[k.Name]; dup {
		return fmt.Errorf("system: kernel %q already registered", k.Name)
	}
	s.kernels[k.Name] = k
	return nil
}

// Invoke executes one kernel invocation: on the CGRA when the sequence has
// been synthesized, otherwise on the host — synthesizing afterwards when
// the profile weight crosses the threshold. Detected accelerator faults
// are recovered transparently (retry, degraded re-synthesis, host
// fallback); Invoke returns an error only for caller mistakes (unknown
// kernel, bad arguments) or host-side failures.
//
// Invoke is safe for concurrent use; invocations serialize on the system
// lock (the fault injector, the profiler and the dispatch table all
// mutate during a run).
func (s *System) Invoke(name string, args map[string]int32, host *ir.Host) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() { s.ctr.faultsInjected.SetInt(s.inj.Injections()) }()
	k := s.kernels[name]
	if k == nil {
		return nil, fmt.Errorf("system: unknown kernel %q", name)
	}
	s.ctr.invocations.Add(1)

	if c := s.compiled[name]; c != nil {
		res, err := s.runAccelerated(name, c, args, host)
		if err == nil {
			return res, nil
		}
		s.ctr.faultsDetected.Add(1)
		return s.recoverInvocation(name, args, host)
	}
	return s.runHost(name, k, args, host, !s.hostOnly[name])
}

// runHost executes on the AMIDAR host; when profile is true the profiler
// accumulates the kernel's weight and may trigger synthesis.
func (s *System) runHost(name string, k *ir.Kernel, args map[string]int32, host *ir.Host, profile bool) (*Result, error) {
	base, err := amidar.ExecuteProgram(k, s.kernels, s.Cost, args, host)
	if err != nil {
		return nil, fmt.Errorf("system: AMIDAR run of %q: %v", name, err)
	}
	s.ctr.amidarRuns.Add(1)
	s.ctr.amidarCycles.Add(base.Cycles)
	result := &Result{LiveOuts: base.LiveOuts, Cycles: base.Cycles}
	if !profile {
		return result, nil
	}
	s.weights[name] += base.Cycles
	if s.weights[name] >= s.Threshold {
		// A kernel the (possibly degraded) array cannot map stays on the
		// host permanently — graceful degradation, not an error.
		if err := s.synthesize(name); err != nil {
			s.hostOnly[name] = true
			s.ctr.fallbacks.Add(1)
			return result, nil
		}
		result.Synthesized = true
	}
	return result, nil
}

// runAccelerated performs one CGRA run with the watchdog and (when armed
// or configured) the reference cross-check. The caller's heap is only
// mutated when the run is accepted, so a rejected run leaves clean state
// for the retry.
func (s *System) runAccelerated(name string, c *pipeline.Compiled, args map[string]int32, host *ir.Host) (*Result, error) {
	m := sim.New(c.Program)
	m.Inject = s.inj
	m.PhysPE = s.phys
	m.MaxCycles = s.Policy.WatchdogCycles
	if m.MaxCycles == 0 {
		m.MaxCycles = 10_000_000
	}
	scratch := host.Clone()
	res, err := m.Run(args, scratch)
	if err != nil {
		return nil, fmt.Errorf("system: CGRA run of %q: %v", name, err)
	}
	if s.Policy.CrossCheck || s.inj != nil {
		ref := s.reference[name]
		if ref == nil {
			ref = s.kernels[name]
		}
		refHost := host.Clone()
		refOuts, err := (&ir.Interp{}).Run(ref, args, refHost)
		if err != nil {
			return nil, fmt.Errorf("system: cross-check reference of %q: %v", name, err)
		}
		for out, want := range refOuts {
			if got := res.LiveOuts[out]; got != want {
				return nil, fmt.Errorf("system: cross-check of %q: live-out %s = %d, reference %d", name, out, got, want)
			}
		}
		if !scratch.Equal(refHost) {
			return nil, fmt.Errorf("system: cross-check of %q: heap contents diverge from reference", name)
		}
	}
	// Accept: commit the scratch heap into the caller's.
	for arr, data := range scratch.Arrays {
		copy(host.Arrays[arr], data)
	}
	s.ctr.cgraRuns.Add(1)
	s.ctr.cgraCycles.Add(res.TotalCycles())
	return &Result{LiveOuts: res.LiveOuts, Cycles: res.TotalCycles(), OnCGRA: true}, nil
}

// recoverInvocation drives the recovery policy after a detected fault:
// mask newly diagnosed permanent faults and re-synthesize onto the
// degraded composition, re-execute up to the retry cap, and finally fall
// back to host execution.
func (s *System) recoverInvocation(name string, args map[string]int32, host *ir.Host) (*Result, error) {
	for attempt := 0; attempt < s.Policy.MaxRetries; attempt++ {
		if perm := s.newPermanentFaults(); len(perm) > 0 {
			if !s.degrade(perm) || s.resynthesize(name) != nil {
				// The surviving array is unusable or cannot map the
				// kernel: permanent host fallback.
				delete(s.compiled, name)
				s.hostOnly[name] = true
				break
			}
		}
		c := s.compiled[name]
		if c == nil {
			break
		}
		res, err := s.runAccelerated(name, c, args, host)
		if err == nil {
			res.Recovered = true
			return res, nil
		}
		s.ctr.faultsDetected.Add(1)
	}
	s.ctr.fallbacks.Add(1)
	res, err := s.runHost(name, s.kernels[name], args, host, false)
	if err != nil {
		return nil, err
	}
	res.Recovered = true
	return res, nil
}

// newPermanentFaults lists manifested permanent faults not yet masked.
func (s *System) newPermanentFaults() []fault.Fault {
	var out []fault.Fault
	for _, f := range s.inj.ManifestedPermanent() {
		switch f.Kind {
		case fault.PermanentPE:
			if !s.deadPEs[f.PE] {
				out = append(out, f)
			}
		case fault.BrokenLink:
			if !s.deadLinks[[2]int{f.Src, f.Dst}] {
				out = append(out, f)
			}
		}
	}
	return out
}

// degrade masks the given faults out of the array and recomputes the
// synthesis target (all-pairs routing is rebuilt by the scheduler on the
// new composition). Returns false when the surviving array is unusable.
func (s *System) degrade(faults []fault.Fault) bool {
	for _, f := range faults {
		switch f.Kind {
		case fault.PermanentPE:
			s.deadPEs[f.PE] = true
		case fault.BrokenLink:
			s.deadLinks[[2]int{f.Src, f.Dst}] = true
		}
	}
	d, err := arch.Degrade(s.Comp, s.deadPEs, s.deadLinks)
	if err != nil {
		return false
	}
	s.target = d.Comp
	s.phys = d.PhysOf
	// Every compiled kernel targeted the old array; drop the dispatch
	// entries so the profiler re-synthesizes them onto the degraded one.
	s.compiled = map[string]*pipeline.Compiled{}
	return true
}

// resynthesize recompiles one kernel onto the current (degraded) target.
func (s *System) resynthesize(name string) error {
	if err := s.synthesize(name); err != nil {
		return err
	}
	s.ctr.resyntheses.Add(1)
	return nil
}

// synthesize runs the tool flow for the kernel (inlining its calls against
// the registered library) and patches the dispatch table. The compile
// budget caps the scheduler's cycle horizon per attempt.
func (s *System) synthesize(name string) error {
	prog := &ir.Program{Kernels: s.kernels, Entry: name}
	flat, err := opt.Inline(prog)
	if err != nil {
		return fmt.Errorf("system: inline %q: %v", name, err)
	}
	opts := s.Opts
	if s.Policy.CompileBudget > 0 {
		opts.Sched.MaxCycles = s.Policy.CompileBudget
	}
	// Compile-phase timings and sizes land in the system registry.
	opts.Obs = s.reg
	c, err := pipeline.Compile(flat, s.target, opts)
	if err != nil {
		return fmt.Errorf("system: synthesize %q: %v", name, err)
	}
	s.compiled[name] = c
	s.reference[name] = flat
	s.seqMu.Lock()
	s.synthSeq = append(s.synthSeq, name)
	s.seqMu.Unlock()
	return nil
}

// Synthesize forces immediate synthesis of a registered kernel, bypassing
// the profiling threshold (used by tools that want the accelerated path
// from the first invocation).
func (s *System) Synthesize(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.kernels[name] == nil {
		return fmt.Errorf("system: unknown kernel %q", name)
	}
	return s.synthesize(name)
}

// Stats returns a snapshot of the accumulated counters. It reads atomic
// registry counters and never blocks behind a running invocation, so it is
// safe to call from a monitoring goroutine.
func (s *System) Stats() Stats {
	s.seqMu.Lock()
	seq := append([]string(nil), s.synthSeq...)
	s.seqMu.Unlock()
	return Stats{
		Invocations:    s.ctr.invocations.Value(),
		AMIDARRuns:     s.ctr.amidarRuns.Value(),
		CGRARuns:       s.ctr.cgraRuns.Value(),
		AMIDARCycles:   s.ctr.amidarCycles.Value(),
		CGRACycles:     s.ctr.cgraCycles.Value(),
		SynthesizedSeq: seq,
		FaultsInjected: int64(s.ctr.faultsInjected.Value()),
		FaultsDetected: s.ctr.faultsDetected.Value(),
		Resyntheses:    s.ctr.resyntheses.Value(),
		Fallbacks:      s.ctr.fallbacks.Value(),
	}
}

// Synthesized reports whether the named kernel runs on the CGRA.
func (s *System) Synthesized(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compiled[name] != nil
}

// Profile lists the host-cycle weights observed so far, heaviest first.
func (s *System) Profile() []struct {
	Name   string
	Cycles int64
} {
	s.mu.Lock()
	defer s.mu.Unlock()
	type row struct {
		Name   string
		Cycles int64
	}
	var rows []row
	for name, w := range s.weights {
		rows = append(rows, row{name, w})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Cycles != rows[j].Cycles {
			return rows[i].Cycles > rows[j].Cycles
		}
		return rows[i].Name < rows[j].Name
	})
	out := make([]struct {
		Name   string
		Cycles int64
	}, len(rows))
	for i, r := range rows {
		out[i] = struct {
			Name   string
			Cycles int64
		}{r.Name, r.Cycles}
	}
	return out
}
