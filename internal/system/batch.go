// Batched invocation: N same-kernel requests dispatched through one
// predecoded engine pass (sim.RunBatch). The server's request coalescer
// feeds this; the system layer contributes the dispatch-snapshot lookup,
// the per-kernel watchdog budget, scratch-heap isolation, and the same
// fault accounting and recovery ladder a scalar invocation gets.
package system

import (
	"context"
	"fmt"
	"time"

	"cgra/internal/ir"
	"cgra/internal/obs"
	"cgra/internal/sim"
)

// BatchRequest is one lane of a coalesced invocation. The host heap must
// not be shared with another concurrent invocation.
type BatchRequest struct {
	Args map[string]int32
	Host *ir.Host
}

// BatchOutcome is one lane's result: exactly one of Res or Err is set.
type BatchOutcome struct {
	Res *Result
	Err error
}

// Batchable reports whether an invocation of name would currently dispatch
// to the batched engine: a compiled entry is installed and no fault plan
// or cross-check forces the instrumented interpreter. The server's
// coalescer consults this before making a request wait out the linger
// window — batching a host-bound kernel buys nothing.
func (s *System) Batchable(name string) bool {
	return s.state.Load().compiled[name] != nil &&
		s.inj.Load() == nil && !s.Policy.CrossCheck
}

// InstalledKey returns the batching identity of the kernel's installed
// artifact: the content-addressed cache key when a cache is attached,
// otherwise the kernel name (still stable per snapshot). Unlike CacheKey —
// which re-inlines the kernel to hash it — this is one atomic load, cheap
// enough for the per-request batching decision. ok is false when nothing
// is installed yet.
func (s *System) InstalledKey(name string) (string, bool) {
	ent := s.state.Load().compiled[name]
	if ent == nil {
		return "", false
	}
	if ent.key == "" {
		return name, true
	}
	return ent.key, true
}

// InvokeBatch executes N invocations of one kernel as data-parallel lanes
// of a single engine pass. Each lane gets its own scratch heap and its own
// outcome; a lane's detected fault is counted, fed to the kernel's circuit
// breaker and retried through the scalar recovery ladder without touching
// its siblings. When the batch cannot run on the engine (no compiled
// entry, armed fault plan, cross-check on, breaker open, program does not
// predecode) every lane falls back to a scalar InvokeCtx, preserving
// exactly the scalar semantics.
func (s *System) InvokeBatch(ctx context.Context, name string, reqs []BatchRequest) []BatchOutcome {
	outs := make([]BatchOutcome, len(reqs))
	if len(reqs) == 0 {
		return outs
	}
	st := s.state.Load()
	if st.kernels[name] == nil {
		err := fmt.Errorf("system: unknown kernel %q", name)
		for i := range outs {
			outs[i].Err = err
		}
		return outs
	}
	solo := func() {
		for i := range reqs {
			res, err := s.InvokeCtx(ctx, name, reqs[i].Args, reqs[i].Host)
			outs[i] = BatchOutcome{Res: res, Err: err}
		}
	}
	ent := st.compiled[name]
	if ent == nil || s.inj.Load() != nil || s.Policy.CrossCheck {
		solo()
		return outs
	}
	eng, err := ent.c.Engine()
	if err != nil {
		solo()
		return outs
	}
	if !ent.br.allow(time.Now(), s.breakerCooldown()) {
		// Breaker open: InvokeCtx sheds each lane to the host.
		solo()
		return outs
	}

	ctx, sp := obs.StartSpanCtx(ctx, "cgra.run_batch")
	defer sp.Finish()
	sp.Set("lanes", int64(len(reqs)))
	s.ctr.invocations.Add(int64(len(reqs)))

	limit := ent.maxCycles
	if limit == 0 {
		limit = s.watchdogCap()
	}
	simReqs := make([]sim.BatchRequest, len(reqs))
	scratch := make([]*ir.Host, len(reqs))
	for i := range reqs {
		scratch[i] = reqs[i].Host.Clone()
		simReqs[i] = sim.BatchRequest{Args: reqs[i].Args, Host: scratch[i]}
	}
	lanes := eng.RunBatch(ctx, limit, simReqs)
	anyOK := false
	for i, ln := range lanes {
		if ln.Err == nil {
			// Accept: commit the lane's scratch heap into the caller's.
			for arr, data := range scratch[i].Arrays {
				copy(reqs[i].Host.Arrays[arr], data)
			}
			s.ctr.cgraRuns.Add(1)
			s.ctr.cgraCycles.Add(ln.Res.TotalCycles())
			outs[i] = BatchOutcome{Res: &Result{
				LiveOuts: ln.Res.LiveOuts,
				Cycles:   ln.Res.TotalCycles(),
				OnCGRA:   true,
			}}
			anyOK = true
			continue
		}
		laneErr := fmt.Errorf("system: CGRA run of %q: %w", name, ln.Err)
		if ctx.Err() != nil {
			// Caller cancellation is not a hardware fault; surface it.
			outs[i].Err = laneErr
			continue
		}
		// A lane fault is handled exactly like a scalar detected fault:
		// count it, feed the breaker, and run that lane alone through the
		// recovery ladder.
		s.ctr.faultsDetected.Add(1)
		sp.Event("lane_fault_detected", laneErr.Error())
		ent.br.failure(time.Now(), s.breakerThreshold())
		res, rerr := s.recoverInvocation(ctx, name, reqs[i].Args, reqs[i].Host)
		outs[i] = BatchOutcome{Res: res, Err: rerr}
	}
	if anyOK {
		ent.br.success()
	}
	return outs
}
