package system

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cgra/internal/fault"
	"cgra/internal/ir"
	"cgra/internal/sched"
)

// TestSoakConcurrentFaulty is the service soak: several goroutines drive a
// mixed-kernel workload through one system while faults are armed, the
// scheduler explain log is attached, and a scraper reads Stats, the
// Prometheus export and the breaker states throughout. Run under -race
// this is the locking-discipline proof for the whole service; the
// functional assertions are that no invocation is lost and every result
// stays correct across host runs, accelerated runs, fault recovery and
// degradation.
func TestSoakConcurrentFaulty(t *testing.T) {
	s := newSystem(t, 10_000)
	defer s.Close()
	s.Opts.Sched.Explain = sched.NewExplainLog()
	s.Policy.BreakerCooldown = 20 * time.Millisecond
	for _, src := range []string{
		dotSrc,
		`kernel scale(array a, in n, in f) { i = 0; while (i < n) { a[i] = a[i] * f; i = i + 1; } }`,
		`kernel tiny(inout r) { r = r + 1; }`,
	} {
		if err := s.Register(mustParse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.InjectFaults(fault.Plan{
		Seed:   7,
		Window: 128,
		Faults: []fault.Fault{
			{Kind: fault.TransientBit, PE: 2},
			{Kind: fault.PermanentPE, PE: 5},
		},
	}); err != nil {
		t.Fatal(err)
	}

	const workers = 6
	const perWorker = 30
	const dotWant = 1*8 + 2*7 + 3*6 + 4*5 + 5*4 + 6*3 + 7*2 + 8*1
	var issued, completed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				issued.Add(1)
				switch (w + i) % 3 {
				case 0:
					res, err := s.Invoke("dot", map[string]int32{"n": 8, "s": 0}, dotHost())
					if err != nil {
						t.Errorf("worker %d dot %d: %v", w, i, err)
						return
					}
					if res.LiveOuts["s"] != dotWant {
						t.Errorf("worker %d dot %d: s = %d, want %d", w, i, res.LiveOuts["s"], dotWant)
					}
				case 1:
					h := ir.NewHost()
					h.Arrays["a"] = []int32{3, -1, 7, 0}
					res, err := s.Invoke("scale", map[string]int32{"n": 4, "f": 5}, h)
					if err != nil {
						t.Errorf("worker %d scale %d: %v", w, i, err)
						return
					}
					for j, want := range []int32{15, -5, 35, 0} {
						if h.Arrays["a"][j] != want {
							t.Errorf("worker %d scale %d: a[%d] = %d, want %d (onCGRA=%v)",
								w, i, j, h.Arrays["a"][j], want, res.OnCGRA)
						}
					}
				default:
					res, err := s.Invoke("tiny", map[string]int32{"r": int32(i)}, ir.NewHost())
					if err != nil {
						t.Errorf("worker %d tiny %d: %v", w, i, err)
						return
					}
					if res.LiveOuts["r"] != int32(i)+1 {
						t.Errorf("worker %d tiny %d: r = %d, want %d", w, i, res.LiveOuts["r"], i+1)
					}
				}
				completed.Add(1)
			}
		}()
	}

	// Concurrent scraper: Stats, Prometheus export and breaker states must
	// never race with invocations, synthesis or recovery.
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.Stats()
			_ = s.BreakerState("dot")
			var sb strings.Builder
			if err := s.Metrics().WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	scraper.Wait()
	s.Quiesce()

	if issued.Load() != completed.Load() {
		t.Errorf("lost invocations: issued %d, completed %d", issued.Load(), completed.Load())
	}
	st := s.Stats()
	if st.Invocations != issued.Load() {
		t.Errorf("system counted %d invocations, issued %d", st.Invocations, issued.Load())
	}
	if st.AMIDARRuns+st.CGRARuns < st.Invocations {
		t.Errorf("runs (%d host + %d cgra) < invocations %d", st.AMIDARRuns, st.CGRARuns, st.Invocations)
	}
	var sb strings.Builder
	if err := s.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cgra_synth_jobs_total", "cgra_breaker_state", "cgra_synth_queue_depth"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The service must keep serving after Close (no new synthesis only).
	s.Close()
	res, err := s.Invoke("dot", map[string]int32{"n": 8, "s": 0}, dotHost())
	if err != nil || res.LiveOuts["s"] != dotWant {
		t.Errorf("post-Close invocation: res=%+v err=%v", res, err)
	}
}

// TestBreakerOpensAndRecovers walks the breaker through the full service
// loop: repeated synthesis failures open it (observable via BreakerState
// and the metrics), invocations are shed to the host while open, and after
// the cool-down a successful half-open probe closes it and the kernel
// finally lands on the CGRA.
func TestBreakerOpensAndRecovers(t *testing.T) {
	s := newSystem(t, 1)
	defer s.Close()
	s.Policy.CompileBudget = 1 // every synthesis attempt fails in the scheduler
	s.Policy.BreakerThreshold = 2
	s.Policy.BreakerCooldown = 50 * time.Millisecond
	if err := s.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	invoke := func(i int) *Result { return invokeDot(t, s, i) }

	// Two failed synthesis attempts trip the breaker.
	for i := 0; i < 2; i++ {
		res := invoke(i)
		if !res.Synthesized {
			t.Fatalf("attempt %d: synthesis not enqueued (breaker %s)", i, s.BreakerState("dot"))
		}
		s.Quiesce()
	}
	if got := s.BreakerState("dot"); got != "open" {
		t.Fatalf("breaker after %d failures = %q, want open", 2, got)
	}
	// Open: invocations are shed to the host, no synthesis admitted.
	res := invoke(2)
	if res.Synthesized || res.OnCGRA {
		t.Fatalf("open breaker admitted work: %+v", res)
	}
	if st := s.Stats(); st.SynthSheds != 0 {
		t.Errorf("breaker shed must not count as queue shed: %+v", st)
	}

	// Cool down, fix the compiler budget, and let the half-open probe in.
	time.Sleep(s.Policy.BreakerCooldown + 20*time.Millisecond)
	s.Policy.CompileBudget = 100_000
	res = invoke(3)
	if !res.Synthesized {
		t.Fatalf("half-open probe not admitted (breaker %s)", s.BreakerState("dot"))
	}
	s.Quiesce()
	if got := s.BreakerState("dot"); got != "closed" {
		t.Fatalf("breaker after successful probe = %q, want closed", got)
	}
	if !s.Synthesized("dot") {
		t.Fatal("kernel not installed after probe synthesis")
	}
	if res := invoke(4); !res.OnCGRA {
		t.Error("closed breaker did not serve from the CGRA")
	}

	var sb strings.Builder
	if err := s.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`cgra_breaker_transitions_total{kernel="dot",to="open"}`,
		`cgra_breaker_transitions_total{kernel="dot",to="half_open"}`,
		`cgra_breaker_transitions_total{kernel="dot",to="closed"}`,
		`cgra_synth_jobs_total{result="error"}`,
		`cgra_synth_jobs_total{result="ok"}`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSynthDeadlineCounted: an impossible compile deadline must abort the
// background job, count a deadline hit and charge the breaker — and a
// later attempt with a sane deadline must still succeed.
func TestSynthDeadlineCounted(t *testing.T) {
	s := newSystem(t, 1)
	defer s.Close()
	s.Policy.CompileDeadline = time.Nanosecond
	if err := s.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	res := invokeDot(t, s, 0)
	if !res.Synthesized {
		t.Fatal("synthesis not enqueued")
	}
	s.Quiesce()
	if s.Synthesized("dot") {
		t.Fatal("kernel installed despite an expired compile deadline")
	}
	st := s.Stats()
	if st.DeadlineHits == 0 {
		t.Errorf("no deadline hit recorded: %+v", st)
	}
	var sb strings.Builder
	if err := s.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `cgra_synth_jobs_total{result="deadline"}`) {
		t.Error("deadline job result not exported")
	}

	s.Policy.CompileDeadline = 10 * time.Second
	invokeDot(t, s, 1)
	s.Quiesce()
	if !s.Synthesized("dot") {
		t.Fatal("kernel not synthesized once the deadline was sane")
	}
}

// TestInvokeCtxCancelled: caller cancellation surfaces as the context
// error — on the host path and on the accelerated path — and is never
// misdiagnosed as a hardware fault.
func TestInvokeCtxCancelled(t *testing.T) {
	s := newSystem(t, 1_000_000)
	defer s.Close()
	if err := s.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.InvokeCtx(ctx, "dot", map[string]int32{"n": 8, "s": 0}, dotHost()); !errors.Is(err, context.Canceled) {
		t.Fatalf("host path: want context.Canceled, got %v", err)
	}
	if err := s.Synthesize("dot"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InvokeCtx(ctx, "dot", map[string]int32{"n": 8, "s": 0}, dotHost()); !errors.Is(err, context.Canceled) {
		t.Fatalf("accelerated path: want context.Canceled, got %v", err)
	}
	if st := s.Stats(); st.FaultsDetected != 0 || st.Fallbacks != 0 {
		t.Errorf("cancellation misdiagnosed as a fault: %+v", st)
	}
}

// slowKernelSrc builds a kernel whose synthesis takes on the order of a
// second (wide straight-line loop body, heavily unrolled) — a blocker that
// keeps the single synthesis worker busy while other requests arrive.
func slowKernelSrc(stmts int) string {
	var b strings.Builder
	b.WriteString("kernel slow(array a, array b, in n, inout s) {\n s = 0; i = 0;\n while (i < n) {\n")
	b.WriteString("  v0 = a[i] + b[i];\n")
	for j := 1; j <= stmts; j++ {
		fmt.Fprintf(&b, "  v%d = (v%d * %d + a[i]) ^ (v%d >> %d);\n", j, j-1, j+3, j-1, j%7+1)
	}
	fmt.Fprintf(&b, "  s = s + v%d;\n  i = i + 1;\n }\n}\n", stmts)
	return b.String()
}

// TestQueueShedding: one worker, a queue of one, and a slow compile in
// flight — the third concurrent synthesis request must be shed (counted,
// never blocking the invocation path) and re-admitted by a later run.
func TestQueueShedding(t *testing.T) {
	s := newSystem(t, 1)
	defer s.Close()
	s.Policy.SynthWorkers = 1
	s.Policy.SynthQueue = 1
	s.Opts.UnrollFactor = 8
	for _, src := range []string{
		slowKernelSrc(100),
		`kernel k2(inout r) { r = r * 3 + 1; }`,
		`kernel k3(inout r) { r = r - 2; }`,
	} {
		if err := s.Register(mustParse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	h := func() *ir.Host {
		hh := ir.NewHost()
		hh.Arrays["a"] = []int32{1, 2, 3, 4}
		hh.Arrays["b"] = []int32{4, 3, 2, 1}
		return hh
	}
	// The slow kernel occupies the worker (or the queue slot) for ~1s.
	if _, err := s.Invoke("slow", map[string]int32{"n": 4, "s": 0}, h()); err != nil {
		t.Fatal(err)
	}
	// Both of these cross the threshold immediately; between them they need
	// two slots but at most one is free, so at least one is shed.
	if _, err := s.Invoke("k2", map[string]int32{"r": 1}, ir.NewHost()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke("k3", map[string]int32{"r": 1}, ir.NewHost()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SynthSheds == 0 {
		t.Errorf("no synthesis request shed: %+v", st)
	}
	s.Quiesce()
	// The shed kernel is re-admitted by its next profiled host run.
	if _, err := s.Invoke("k2", map[string]int32{"r": 1}, ir.NewHost()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke("k3", map[string]int32{"r": 1}, ir.NewHost()); err != nil {
		t.Fatal(err)
	}
	s.Quiesce()
	if !s.Synthesized("k2") || !s.Synthesized("k3") {
		t.Errorf("shed kernels never re-admitted: k2=%v k3=%v",
			s.Synthesized("k2"), s.Synthesized("k3"))
	}
}
