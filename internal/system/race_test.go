package system

import (
	"strings"
	"sync"
	"testing"
)

// TestConcurrentInvocations drives a system from several goroutines while
// another goroutine scrapes Stats and the metrics registry. Run under
// -race this verifies the locking discipline: invocations serialize on the
// system lock, metric reads go through atomics only.
func TestConcurrentInvocations(t *testing.T) {
	s := newSystem(t, 15_000)
	if err := s.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	args := map[string]int32{"n": 8, "s": 0}
	var want int32 = 1*8 + 2*7 + 3*6 + 4*5 + 5*4 + 6*3 + 7*2 + 8*1

	const workers = 4
	const perWorker = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				res, err := s.Invoke("dot", args, dotHost())
				if err != nil {
					errs <- err
					return
				}
				if res.LiveOuts["s"] != want {
					t.Errorf("s = %d, want %d", res.LiveOuts["s"], want)
				}
			}
		}()
	}
	// Concurrent scrapers: Stats snapshots and Prometheus exports must not
	// race with the invocations.
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.Stats()
			var sb strings.Builder
			if err := s.Metrics().WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	scraper.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Invocations != workers*perWorker {
		t.Errorf("invocations = %d, want %d", st.Invocations, workers*perWorker)
	}
	if st.AMIDARRuns+st.CGRARuns < st.Invocations {
		t.Errorf("runs (%d host + %d cgra) < invocations %d", st.AMIDARRuns, st.CGRARuns, st.Invocations)
	}
	// The workers may all have finished before the background compile
	// landed; wait for it, then verify the accelerated path serves.
	s.Quiesce()
	if !s.Synthesized("dot") {
		t.Error("dot never synthesized despite crossing the threshold")
	}
	res, err := s.Invoke("dot", args, dotHost())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OnCGRA {
		t.Error("post-synthesis invocation did not run on the CGRA")
	}
	// The synthesis run must have exported compile-phase metrics.
	var sb strings.Builder
	if err := s.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, wantS := range []string{
		"cgra_system_invocations_total",
		`cgra_system_runs_total{engine="cgra"}`,
		`cgra_compile_phase_seconds{phase="total"}`,
	} {
		if !strings.Contains(sb.String(), wantS) {
			t.Errorf("metrics missing %q", wantS)
		}
	}
}
