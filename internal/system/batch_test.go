package system

import (
	"context"
	"testing"

	"cgra/internal/ir"
)

// synthesizeDot registers dot and drives it through synthesis so the
// compiled entry is installed.
func synthesizeDot(t *testing.T) *System {
	t.Helper()
	s := newSystem(t, 1)
	if err := s.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	args := map[string]int32{"n": 8, "s": 0}
	if _, err := s.Invoke("dot", args, dotHost()); err != nil {
		t.Fatal(err)
	}
	s.Quiesce()
	if !s.Synthesized("dot") {
		t.Fatal("dot not synthesized")
	}
	return s
}

// TestInvokeBatch runs a mixed-argument batch through the engine and
// checks every lane against its scalar invocation.
func TestInvokeBatch(t *testing.T) {
	s := synthesizeDot(t)
	defer s.Close()

	reqs := make([]BatchRequest, 5)
	wants := make([]int32, 5)
	for i := range reqs {
		n := int32(3 + i)
		args := map[string]int32{"n": n, "s": 0}
		host := dotHost()
		reqs[i] = BatchRequest{Args: args, Host: host}
		ref, err := s.InvokeCtx(context.Background(), "dot", map[string]int32{"n": n, "s": 0}, dotHost())
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = ref.LiveOuts["s"]
	}
	outs := s.InvokeBatch(context.Background(), "dot", reqs)
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("lane %d: %v", i, o.Err)
		}
		if !o.Res.OnCGRA {
			t.Errorf("lane %d did not run on the CGRA", i)
		}
		if got := o.Res.LiveOuts["s"]; got != wants[i] {
			t.Errorf("lane %d: s = %d, want %d", i, got, wants[i])
		}
	}
}

// TestInvokeBatchUncompiled falls back to scalar host invocations when no
// compiled entry is installed, with correct per-lane results.
func TestInvokeBatchUncompiled(t *testing.T) {
	s := newSystem(t, 1<<40) // threshold never reached
	defer s.Close()
	if err := s.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	if s.Batchable("dot") {
		t.Fatal("uncompiled kernel reported batchable")
	}
	if _, ok := s.InstalledKey("dot"); ok {
		t.Fatal("uncompiled kernel reported an installed key")
	}
	reqs := []BatchRequest{
		{Args: map[string]int32{"n": 8, "s": 0}, Host: dotHost()},
		{Args: map[string]int32{"n": 4, "s": 0}, Host: dotHost()},
	}
	outs := s.InvokeBatch(context.Background(), "dot", reqs)
	var want0 int32 = 1*8 + 2*7 + 3*6 + 4*5 + 5*4 + 6*3 + 7*2 + 8*1
	var want1 int32 = 1*8 + 2*7 + 3*6 + 4*5
	for i, want := range []int32{want0, want1} {
		if outs[i].Err != nil {
			t.Fatalf("lane %d: %v", i, outs[i].Err)
		}
		if outs[i].Res.OnCGRA {
			t.Errorf("lane %d claims CGRA without a compiled entry", i)
		}
		if got := outs[i].Res.LiveOuts["s"]; got != want {
			t.Errorf("lane %d: s = %d, want %d", i, got, want)
		}
	}
}

// TestInvokeBatchLaneIsolation puts a lane with a broken heap in the
// middle of good lanes: the bad lane reports its own error (after the
// recovery ladder also fails on the host) and the good lanes' results and
// heap commits are untouched.
func TestInvokeBatchLaneIsolation(t *testing.T) {
	s := synthesizeDot(t)
	defer s.Close()

	broken := ir.NewHost()
	broken.Arrays["a"] = []int32{}
	broken.Arrays["b"] = []int32{}
	reqs := []BatchRequest{
		{Args: map[string]int32{"n": 8, "s": 0}, Host: dotHost()},
		{Args: map[string]int32{"n": 8, "s": 0}, Host: broken},
		{Args: map[string]int32{"n": 8, "s": 0}, Host: dotHost()},
	}
	outs := s.InvokeBatch(context.Background(), "dot", reqs)
	if outs[1].Err == nil {
		t.Error("broken lane succeeded")
	}
	var want int32 = 1*8 + 2*7 + 3*6 + 4*5 + 5*4 + 6*3 + 7*2 + 8*1
	for _, i := range []int{0, 2} {
		if outs[i].Err != nil {
			t.Fatalf("good lane %d poisoned: %v", i, outs[i].Err)
		}
		if got := outs[i].Res.LiveOuts["s"]; got != want {
			t.Errorf("good lane %d: s = %d, want %d", i, got, want)
		}
	}
}

// TestInstalledKey: stable, cheap batching identity for installed entries.
func TestInstalledKey(t *testing.T) {
	s := synthesizeDot(t)
	defer s.Close()
	if !s.Batchable("dot") {
		t.Fatal("synthesized kernel not batchable")
	}
	k1, ok := s.InstalledKey("dot")
	if !ok || k1 == "" {
		t.Fatalf("no installed key (ok=%v)", ok)
	}
	k2, _ := s.InstalledKey("dot")
	if k1 != k2 {
		t.Fatalf("installed key unstable: %q vs %q", k1, k2)
	}
	if _, ok := s.InstalledKey("nosuch"); ok {
		t.Fatal("unknown kernel reported a key")
	}
}
