package system

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int32

// Breaker states. The numeric values are exported verbatim through the
// cgra_breaker_state gauge.
const (
	brClosed   breakerState = 0 // normal operation, accelerated path allowed
	brOpen     breakerState = 1 // tripped: kernel executes host-only
	brHalfOpen breakerState = 2 // cool-down elapsed: one probe in flight
)

func (s breakerState) String() string {
	switch s {
	case brClosed:
		return "closed"
	case brOpen:
		return "open"
	case brHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// breaker is one kernel's circuit breaker. Repeated synthesis failures or
// fault detections trip it to open; while open, every invocation of the
// kernel is shed to the AMIDAR host without touching the accelerator or
// the synthesis queue. After the cool-down one probe (an accelerated run
// or a synthesis attempt) is let through: success closes the breaker,
// failure re-opens it for another cool-down.
type breaker struct {
	mu       sync.Mutex
	state    breakerState
	failures int // consecutive failures while closed
	openedAt time.Time
	probing  bool
	// notify reports state transitions (metrics); called with the
	// breaker's lock held, so it must not call back into the breaker.
	notify func(to breakerState)
}

func (b *breaker) set(to breakerState) {
	if b.state == to {
		return
	}
	b.state = to
	if b.notify != nil {
		b.notify(to)
	}
}

// allow reports whether the accelerated path (or a synthesis attempt) may
// proceed now. In the open state it transitions to half-open once the
// cool-down elapsed and admits the caller as the probe; in half-open only
// one probe is admitted at a time.
func (b *breaker) allow(now time.Time, cooldown time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		return true
	case brOpen:
		if now.Sub(b.openedAt) < cooldown {
			return false
		}
		b.set(brHalfOpen)
		b.probing = true
		return true
	case brHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// cancelProbe releases an admitted probe that never ran (e.g. the
// synthesis queue was full), so the next caller can claim it.
func (b *breaker) cancelProbe() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// success records a successful accelerated run or synthesis: the breaker
// closes and the failure streak resets.
func (b *breaker) success() {
	b.mu.Lock()
	b.failures = 0
	b.probing = false
	b.set(brClosed)
	b.mu.Unlock()
}

// failure records one fault detection or synthesis failure. A half-open
// probe failure re-opens immediately; a closed breaker opens once the
// streak reaches threshold.
func (b *breaker) failure(now time.Time, threshold int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.probing = false
	switch b.state {
	case brHalfOpen:
		b.openedAt = now
		b.set(brOpen)
	case brClosed:
		if b.failures >= threshold {
			b.openedAt = now
			b.set(brOpen)
		}
	}
}

// current returns the breaker's state.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
