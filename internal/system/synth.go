// Background synthesis: the bounded worker pool that runs the tool flow
// off the invocation path. A profiled host run that crosses the threshold
// enqueues a job and keeps going; the compiled kernel is patched into the
// dispatch snapshot when the job lands. One job per kernel is in flight at
// a time (singleflight), the queue is bounded (overflow is shed and
// re-admitted by a later profiled run), and every attempt runs under the
// compile deadline.
package system

import (
	"context"
	"time"

	"cgra/internal/obs"
)

// synthJob asks the pool to synthesize one kernel. gen pins the dispatch
// generation the request was made against: if the array degrades while the
// job is queued or compiling, the result targets a dead composition and is
// discarded as stale.
type synthJob struct {
	name string
	gen  uint64
}

// startPool lazily starts the workers on first use, sized by the policy in
// effect at that moment.
func (s *System) startPool() {
	s.poolOnce.Do(func() {
		workers := s.Policy.SynthWorkers
		if workers <= 0 {
			workers = 2
		}
		depth := s.Policy.SynthQueue
		if depth <= 0 {
			depth = 16
		}
		s.queue = make(chan synthJob, depth)
		for i := 0; i < workers; i++ {
			go s.synthWorker()
		}
	})
}

// enqueueSynthLocked admits one synthesis request (caller holds s.mu and
// has already checked the singleflight, host-only and breaker gates).
// Returns false when the queue is full or the system is closed: the
// request is shed, the shed counter bumped, and a later profiled host run
// will re-admit the kernel.
func (s *System) enqueueSynthLocked(name string) bool {
	if s.closed.Load() {
		return false
	}
	s.startPool()
	select {
	case s.queue <- synthJob{name: name, gen: s.state.Load().gen}:
		s.pendingSynth[name] = true
		s.jobs.Add(1)
		s.ctr.queueDepth.Add(1)
		return true
	default:
		s.ctr.sheds.Add(1)
		return false
	}
}

func (s *System) synthWorker() {
	for {
		select {
		case <-s.stop:
			return
		case job := <-s.queue:
			s.ctr.queueDepth.Add(-1)
			s.runSynthJob(job)
			s.jobs.Done()
		}
	}
}

// runSynthJob compiles one kernel under the deadline (no locks held during
// the compile) and lands the outcome.
func (s *System) runSynthJob(job synthJob) {
	ent, err := s.compileKernel(s.compileCtx(context.Background()), job.name)
	s.completeSynthJob(job, ent, err)
}

// completeSynthJob classifies one finished job — ok, deadline, error or
// stale — and updates the dispatch snapshot, the breaker and the metrics
// accordingly.
func (s *System) completeSynthJob(job synthJob, ent *entry, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.pendingSynth, job.name)
	br := s.breakerForLocked(job.name)
	result := "ok"
	switch {
	case s.state.Load().gen != job.gen:
		// The array degraded underneath the compile; the result targets a
		// retired composition. Discard without charging the breaker.
		result = "stale"
		br.cancelProbe()
	case err == nil:
		s.installLocked(job.name, ent)
		br.success()
	case errIsDeadline(err):
		result = "deadline"
		s.ctr.deadlineHits.Add(1)
		br.failure(time.Now(), s.breakerThreshold())
	default:
		result = "error"
		br.failure(time.Now(), s.breakerThreshold())
	}
	s.reg.Counter("cgra_synth_jobs_total", obs.L("result", result)).Add(1)
}

// Quiesce blocks until every queued and in-flight synthesis job has
// landed. Tests and batch tools call it to observe the post-synthesis
// steady state; a serving system never needs to.
func (s *System) Quiesce() { s.jobs.Wait() }

// Close drains the synthesis queue and stops the worker pool. Subsequent
// invocations still execute (host or already-compiled CGRA path) but no
// new synthesis is admitted. Idempotent.
func (s *System) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.jobs.Wait()
	close(s.stop)
}
