package system

import (
	"testing"

	"cgra/internal/arch"
	"cgra/internal/ir"
	"cgra/internal/irtext"
	"cgra/internal/pipeline"
)

func newSystem(t *testing.T, threshold int64) *System {
	t.Helper()
	comp, err := arch.HomogeneousMesh(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	return New(comp, pipeline.Defaults(), threshold)
}

const dotSrc = `
kernel dot(array a, array b, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) { s = s + a[i] * b[i]; i = i + 1; }
}`

func dotHost() *ir.Host {
	h := ir.NewHost()
	h.Arrays["a"] = []int32{1, 2, 3, 4, 5, 6, 7, 8}
	h.Arrays["b"] = []int32{8, 7, 6, 5, 4, 3, 2, 1}
	return h
}

func TestOnlineSynthesisTransition(t *testing.T) {
	s := newSystem(t, 15_000) // a few host runs before synthesis
	if err := s.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	args := map[string]int32{"n": 8, "s": 0}
	var want int32 = 1*8 + 2*7 + 3*6 + 4*5 + 5*4 + 6*3 + 7*2 + 8*1

	sawSynthesis := false
	onCGRA := 0
	for i := 0; i < 10; i++ {
		res, err := s.Invoke("dot", args, dotHost())
		if err != nil {
			t.Fatalf("invocation %d: %v", i, err)
		}
		// Results must be identical across the host->CGRA transition.
		if res.LiveOuts["s"] != want {
			t.Fatalf("invocation %d: s = %d, want %d (onCGRA=%v)", i, res.LiveOuts["s"], want, res.OnCGRA)
		}
		if res.Synthesized {
			sawSynthesis = true
			// Synthesis runs in the background; wait for it to land so the
			// remaining invocations exercise the accelerated path.
			s.Quiesce()
		}
		if res.OnCGRA {
			onCGRA++
		}
	}
	if !sawSynthesis {
		t.Fatal("threshold never triggered synthesis")
	}
	if onCGRA == 0 {
		t.Fatal("no invocation ran on the CGRA after synthesis")
	}
	if !s.Synthesized("dot") {
		t.Fatal("dispatch table not patched")
	}
	st := s.Stats()
	if st.AMIDARRuns == 0 || st.CGRARuns == 0 {
		t.Fatalf("expected a mix of host and CGRA runs: %+v", st)
	}
	if st.AMIDARRuns+st.CGRARuns != st.Invocations {
		t.Fatalf("run accounting inconsistent: %+v", st)
	}
	// The accelerated runs must be far cheaper than the host runs.
	hostPer := st.AMIDARCycles / st.AMIDARRuns
	cgraPer := st.CGRACycles / st.CGRARuns
	if cgraPer >= hostPer {
		t.Errorf("CGRA per-run cycles (%d) not below host (%d)", cgraPer, hostPer)
	}
	if len(st.SynthesizedSeq) != 1 || st.SynthesizedSeq[0] != "dot" {
		t.Errorf("synthesized list = %v", st.SynthesizedSeq)
	}
}

func TestColdKernelStaysOnHost(t *testing.T) {
	s := newSystem(t, 1_000_000)
	if err := s.Register(mustParse(t, `kernel tiny(inout r) { r = r + 1; }`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		res, err := s.Invoke("tiny", map[string]int32{"r": int32(i)}, ir.NewHost())
		if err != nil {
			t.Fatal(err)
		}
		if res.OnCGRA {
			t.Fatal("cold kernel must stay on the host")
		}
	}
	if s.Synthesized("tiny") {
		t.Error("cold kernel synthesized")
	}
}

func TestSystemWithCalls(t *testing.T) {
	s := newSystem(t, 2_000)
	prog, err := irtext.ParseProgram(`
kernel main(array a, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) {
		v = a[i];
		abs(v);
		s = s + v;
		i = i + 1;
	}
}
kernel abs(inout x) { if (x < 0) { x = 0 - x; } }`)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range prog.Kernels {
		if err := s.Register(k); err != nil {
			t.Fatal(err)
		}
	}
	host := func() *ir.Host {
		h := ir.NewHost()
		h.Arrays["a"] = []int32{-1, 2, -3, 4}
		return h
	}
	var results []int32
	for i := 0; i < 4; i++ {
		res, err := s.Invoke("main", map[string]int32{"n": 4, "s": 0}, host())
		if err != nil {
			t.Fatalf("invocation %d: %v", i, err)
		}
		if res.Synthesized {
			s.Quiesce()
		}
		results = append(results, res.LiveOuts["s"])
	}
	for i, r := range results {
		if r != 10 {
			t.Errorf("invocation %d: s = %d, want 10", i, r)
		}
	}
	if !s.Synthesized("main") {
		t.Error("main (with inlined call) never synthesized")
	}
}

func TestProfileOrdering(t *testing.T) {
	s := newSystem(t, 1_000_000_000)
	if err := s.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(mustParse(t, `kernel tiny(inout r) { r = r + 1; }`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Invoke("dot", map[string]int32{"n": 8, "s": 0}, dotHost()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Invoke("tiny", map[string]int32{"r": 0}, ir.NewHost()); err != nil {
		t.Fatal(err)
	}
	prof := s.Profile()
	if len(prof) != 2 || prof[0].Name != "dot" {
		t.Errorf("profile = %+v, want dot heaviest", prof)
	}
}

func TestUnknownKernel(t *testing.T) {
	s := newSystem(t, 1000)
	if _, err := s.Invoke("nope", nil, ir.NewHost()); err == nil {
		t.Error("unknown kernel accepted")
	}
	if err := s.Register(mustParse(t, `kernel k(inout r) { r = 1; }`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(mustParse(t, `kernel k(inout r) { r = 2; }`)); err == nil {
		t.Error("duplicate registration accepted")
	}
}

// TestPerKernelWatchdogBudget: a kernel that reached the CGRA through
// profiling gets a watchdog budget derived from its observed AMIDAR cost —
// far tighter than the global cap — while a force-synthesized kernel with
// no profile keeps the cap.
func TestPerKernelWatchdogBudget(t *testing.T) {
	s := newSystem(t, 15_000)
	defer s.Close()
	if err := s.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		res, err := s.Invoke("dot", map[string]int32{"n": 8, "s": 0}, dotHost())
		if err != nil {
			t.Fatal(err)
		}
		if res.Synthesized {
			s.Quiesce()
		}
	}
	ent := s.state.Load().compiled["dot"]
	if ent == nil {
		t.Fatal("dot not synthesized")
	}
	cap := s.watchdogCap()
	if ent.maxCycles <= 0 || ent.maxCycles >= cap {
		t.Errorf("profiled budget = %d, want derived value below the %d cap", ent.maxCycles, cap)
	}
	s.mu.Lock()
	factor := s.Policy.WatchdogFactor * s.hostMaxCycles["dot"]
	s.mu.Unlock()
	if want := max64(factor, 50_000); ent.maxCycles != want {
		t.Errorf("budget = %d, want WatchdogFactor×hostMax clamped = %d", ent.maxCycles, want)
	}

	// No profile: the forced synthesis path keeps the global cap.
	s2 := newSystem(t, 15_000)
	defer s2.Close()
	if err := s2.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Synthesize("dot"); err != nil {
		t.Fatal(err)
	}
	if got := s2.state.Load().compiled["dot"].maxCycles; got != s2.watchdogCap() {
		t.Errorf("unprofiled budget = %d, want the %d cap", got, s2.watchdogCap())
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func mustParse(t testing.TB, src string) *ir.Kernel {
	t.Helper()
	k, err := irtext.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return k
}
