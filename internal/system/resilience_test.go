package system

import (
	"testing"

	"cgra/internal/fault"
)

// invokeDot drives one dot-product invocation and asserts the live-out.
func invokeDot(t *testing.T, s *System, i int) *Result {
	t.Helper()
	const want = 1*8 + 2*7 + 3*6 + 4*5 + 5*4 + 6*3 + 7*2 + 8*1
	res, err := s.Invoke("dot", map[string]int32{"n": 8, "s": 0}, dotHost())
	if err != nil {
		t.Fatalf("invocation %d: %v", i, err)
	}
	if res.Synthesized {
		// Wait for the background compile so later invocations hit the CGRA.
		s.Quiesce()
	}
	if res.LiveOuts["s"] != want {
		t.Fatalf("invocation %d: s = %d, want %d (onCGRA=%v recovered=%v)",
			i, res.LiveOuts["s"], want, res.OnCGRA, res.Recovered)
	}
	return res
}

// TestPermanentPEFaultRecovery is the tentpole scenario: a permanent PE
// failure strikes mid-workload after the kernel moved to the CGRA. The
// system must detect it, re-schedule onto the degraded composition (or
// fall back to the host), and keep every live-out correct.
func TestPermanentPEFaultRecovery(t *testing.T) {
	// Try each PE of the array: whichever the schedule uses, the workload
	// must survive its death.
	for pe := 0; pe < 9; pe++ {
		s := newSystem(t, 15_000)
		if err := s.Register(mustParse(t, dotSrc)); err != nil {
			t.Fatal(err)
		}
		if err := s.InjectFaults(fault.Plan{
			Seed:   1,
			Faults: []fault.Fault{{Kind: fault.PermanentPE, PE: pe}},
		}); err != nil {
			t.Fatal(err)
		}
		var recovered bool
		for i := 0; i < 12; i++ {
			res := invokeDot(t, s, i)
			if res.Recovered {
				recovered = true
			}
		}
		st := s.Stats()
		if st.FaultsInjected == 0 {
			// The schedule never used this PE; the fault stayed latent and
			// nothing may have been detected.
			if st.FaultsDetected != 0 {
				t.Errorf("pe %d: detected %d faults without any injection", pe, st.FaultsDetected)
			}
			continue
		}
		if st.FaultsDetected == 0 {
			t.Errorf("pe %d: %d corruptions injected but none detected", pe, st.FaultsInjected)
		}
		if !recovered {
			t.Errorf("pe %d: fault detected but no invocation reported recovery", pe)
		}
		// Recovery must have produced a degraded re-synthesis or a host
		// fallback, and the accounting must show it.
		if st.Resyntheses == 0 && st.Fallbacks == 0 {
			t.Errorf("pe %d: neither re-synthesis nor fallback recorded: %+v", pe, st)
		}
		if st.Resyntheses > 0 {
			if s.DegradedComposition() == nil {
				t.Errorf("pe %d: re-synthesized but no degraded composition active", pe)
			}
			if got := s.MaskedPEs(); len(got) != 1 || got[0] != pe {
				t.Errorf("pe %d: masked PEs = %v", pe, got)
			}
		}
	}
}

// TestTransientFaultRecovery: a single-event upset must be survived by a
// plain retry — no degradation, kernel stays on the CGRA.
func TestTransientFaultRecovery(t *testing.T) {
	for pe := 0; pe < 9; pe++ {
		s := newSystem(t, 15_000)
		if err := s.Register(mustParse(t, dotSrc)); err != nil {
			t.Fatal(err)
		}
		if err := s.InjectFaults(fault.Plan{
			Seed:   5,
			Window: 256,
			Faults: []fault.Fault{{Kind: fault.TransientBit, PE: pe}},
		}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			invokeDot(t, s, i)
		}
		st := s.Stats()
		if s.DegradedComposition() != nil {
			t.Errorf("pe %d: transient fault degraded the array", pe)
		}
		if st.FaultsInjected > 0 && st.FaultsDetected > 0 && !s.Synthesized("dot") {
			t.Errorf("pe %d: kernel left the CGRA after a transient", pe)
		}
	}
}

// TestBrokenLinkRecovery: a dead interconnect link must be masked and the
// kernel re-scheduled around it.
func TestBrokenLinkRecovery(t *testing.T) {
	s := newSystem(t, 15_000)
	if err := s.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	// 3x3 mesh: PE 4 is the centre; 1→4 is a heavily used route.
	if err := s.InjectFaults(fault.Plan{
		Seed:   2,
		Faults: []fault.Fault{{Kind: fault.BrokenLink, Src: 1, Dst: 4}},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		invokeDot(t, s, i)
	}
	st := s.Stats()
	if st.FaultsInjected > 0 && st.FaultsDetected == 0 {
		t.Errorf("link corrupted %d values but nothing was detected", st.FaultsInjected)
	}
}

// TestUnmappableDegradationFallsBack: when the degraded array cannot host
// the kernel at all (no DMA PEs survive), the system must permanently fall
// back to AMIDAR and keep serving correct results.
func TestUnmappableDegradationFallsBack(t *testing.T) {
	s := newSystem(t, 15_000)
	if err := s.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	// The 9-PE mesh has DMA on PEs 0, 4 and 8; killing all three leaves
	// the heap unreachable, so no degraded composition can map `dot`.
	if err := s.InjectFaults(fault.Plan{
		Seed: 1,
		Faults: []fault.Fault{
			{Kind: fault.PermanentPE, PE: 0},
			{Kind: fault.PermanentPE, PE: 4},
			{Kind: fault.PermanentPE, PE: 8},
		},
	}); err != nil {
		t.Fatal(err)
	}
	sawFallback := false
	for i := 0; i < 12; i++ {
		res := invokeDot(t, s, i)
		if res.Recovered && !res.OnCGRA {
			sawFallback = true
		}
	}
	st := s.Stats()
	if st.FaultsInjected == 0 {
		t.Skip("schedule used none of the DMA PEs (implausible, but then nothing manifests)")
	}
	if !sawFallback && st.Fallbacks == 0 {
		t.Errorf("no host fallback recorded: %+v", st)
	}
	// Later invocations must keep working (served from the host).
	invokeDot(t, s, 99)
}

// TestFaultFreePathUnchanged: arming no plan leaves the fast path alone —
// no cross-check, no fault counters.
func TestFaultFreePathUnchanged(t *testing.T) {
	s := newSystem(t, 15_000)
	if err := s.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		invokeDot(t, s, i)
	}
	st := s.Stats()
	if st.FaultsInjected != 0 || st.FaultsDetected != 0 || st.Resyntheses != 0 || st.Fallbacks != 0 {
		t.Errorf("fault-free run shows fault activity: %+v", st)
	}
	if !s.Synthesized("dot") {
		t.Error("kernel never synthesized")
	}
}
