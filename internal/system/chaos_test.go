package system

import (
	"context"
	"errors"
	"testing"
	"time"

	"cgra/internal/chaos"
	"cgra/internal/fault"
)

// TestCompileHookErrorFailsSynthesis proves an injected compile fault
// surfaces as a synthesis failure (and charges the breaker machinery like
// a real compiler error), while the next attempt succeeds once the fault
// schedule passes.
func TestCompileHookErrorFailsSynthesis(t *testing.T) {
	s := newSystem(t, 1)
	defer s.Close()
	inj := chaos.New(chaos.Plan{CompileErrEvery: 1}, nil, nil)
	s.CompileHook = inj.CompileHook()
	if err := s.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	if err := s.Synthesize("dot"); err == nil {
		t.Fatal("synthesis should fail while the compile fault is armed")
	}
	inj.Disarm()
	if err := s.Synthesize("dot"); err != nil {
		t.Fatalf("synthesis after disarm: %v", err)
	}
	if !s.Synthesized("dot") {
		t.Fatal("kernel not installed after recovery")
	}
	if inj.Injections() != 1 {
		t.Fatalf("injections = %d, want 1", inj.Injections())
	}
}

// TestCompileHookLagRespectsDeadline proves injected compile latency is
// cut short by the compile deadline instead of stalling the caller.
func TestCompileHookLagRespectsDeadline(t *testing.T) {
	s := newSystem(t, 1)
	defer s.Close()
	s.Policy.CompileDeadline = 10 * time.Millisecond
	inj := chaos.New(chaos.Plan{CompileLagEvery: 1, CompileLag: 5 * time.Second}, nil, nil)
	s.CompileHook = inj.CompileHook()
	if err := s.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := s.Synthesize("dot")
	if err == nil {
		t.Fatal("stalled synthesis should fail at the deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("synthesis stalled %v past its 10ms deadline", d)
	}
}

// TestInvokeHostBypassesAccelerator proves the brownout path serves
// correct results without touching the accelerator or the profiler.
func TestInvokeHostBypassesAccelerator(t *testing.T) {
	s := newSystem(t, 1)
	defer s.Close()
	if err := s.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	res, err := s.InvokeHost(context.Background(), "dot", map[string]int32{"n": 8, "s": 0}, dotHost())
	if err != nil {
		t.Fatal(err)
	}
	var want int32 = 1*8 + 2*7 + 3*6 + 4*5 + 5*4 + 6*3 + 7*2 + 8*1
	if res.OnCGRA || res.LiveOuts["s"] != want {
		t.Fatalf("host run: onCGRA=%t s=%d, want host run with s=%d", res.OnCGRA, res.LiveOuts["s"], want)
	}
	// No profiling: repeated host-path invocations must not enqueue
	// synthesis even at threshold 1.
	for i := 0; i < 5; i++ {
		if _, err := s.InvokeHost(context.Background(), "dot", map[string]int32{"n": 8, "s": 0}, dotHost()); err != nil {
			t.Fatal(err)
		}
	}
	s.Quiesce()
	if s.Synthesized("dot") {
		t.Fatal("InvokeHost triggered background synthesis")
	}
	if _, err := s.InvokeHost(context.Background(), "nope", nil, dotHost()); err == nil {
		t.Fatal("unknown kernel must error")
	}
}

// TestOpenBreakersTripAndRecover walks a breaker through trip and
// recovery: repeated injected compile failures open it (listed by
// OpenBreakers), disarming the chaos lets a half-open probe succeed, and
// the breaker closes again.
func TestOpenBreakersTripAndRecover(t *testing.T) {
	s := newSystem(t, 1)
	defer s.Close()
	s.Policy.BreakerThreshold = 2
	s.Policy.BreakerCooldown = time.Millisecond
	inj := chaos.New(chaos.Plan{CompileErrEvery: 1}, nil, nil)
	s.CompileHook = inj.CompileHook()
	if err := s.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	args := map[string]int32{"n": 8, "s": 0}
	// Profiled host runs enqueue background synthesis; each attempt fails
	// on the injected compile fault and charges the breaker.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.OpenBreakers()) == 0 && time.Now().Before(deadline) {
		if _, err := s.Invoke("dot", args, dotHost()); err != nil {
			t.Fatal(err)
		}
		s.Quiesce()
		time.Sleep(2 * time.Millisecond) // let the cool-down admit the next probe
	}
	open := s.OpenBreakers()
	if len(open) != 1 || open[0] != "dot" {
		t.Fatalf("OpenBreakers = %v, want [dot]", open)
	}
	// Recovery: stop injecting; the next admitted probe synthesis
	// succeeds and closes the breaker.
	inj.Disarm()
	deadline = time.Now().Add(5 * time.Second)
	for len(s.OpenBreakers()) > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		if _, err := s.Invoke("dot", args, dotHost()); err != nil {
			t.Fatal(err)
		}
		s.Quiesce()
	}
	if open := s.OpenBreakers(); len(open) != 0 {
		t.Fatalf("breaker did not re-close after recovery: %v", open)
	}
	if !s.Synthesized("dot") {
		t.Fatal("kernel not installed after recovery")
	}
}

// TestClearFaultsStopsCorruption proves a cleared hardware fault plan
// injects nothing: post-clear accelerated runs complete without a single
// detection.
func TestClearFaultsStopsCorruption(t *testing.T) {
	s := newSystem(t, 1)
	defer s.Close()
	if err := s.Register(mustParse(t, dotSrc)); err != nil {
		t.Fatal(err)
	}
	if err := s.Synthesize("dot"); err != nil {
		t.Fatal(err)
	}
	if err := s.InjectFaults(fault.Plan{Seed: 5, Faults: []fault.Fault{{Kind: fault.TransientBit, PE: 1}}}); err != nil {
		t.Fatal(err)
	}
	s.ClearFaults()
	args := map[string]int32{"n": 8, "s": 0}
	for i := 0; i < 10; i++ {
		res, err := s.Invoke("dot", args, dotHost())
		if err != nil {
			t.Fatal(err)
		}
		if !res.OnCGRA {
			t.Fatalf("run %d fell off the accelerator", i)
		}
	}
	if st := s.Stats(); st.FaultsDetected != 0 || st.FaultsInjected != 0 {
		t.Fatalf("cleared plan still fired: detected=%d injected=%d", st.FaultsDetected, st.FaultsInjected)
	}
}
