// Package kgen generates random, always-terminating kernels for
// differential fuzzing of the tool flow: every generated kernel is run
// through compile→simulate and compared against the reference interpreter.
// The generator exercises the scheduler's full feature surface — nested
// counted loops, data-dependent conditionals (predicated and branched),
// array loads/stores with masked indices, boolean materialization and
// logical short-circuit conditions — while guaranteeing termination and
// in-bounds memory accesses by construction.
package kgen

import (
	"fmt"
	"math/rand"

	"cgra/internal/ir"
)

// Config bounds the generated kernels.
type Config struct {
	// MaxStmts bounds statements per block (default 5).
	MaxStmts int
	// MaxDepth bounds control-flow nesting (default 2).
	MaxDepth int
	// MaxLoopTrip bounds counted-loop trip counts (default 5).
	MaxLoopTrip int
	// ArrayLen is the length of generated arrays; a power of two so
	// indices can be masked in bounds (default 8).
	ArrayLen int
}

func (c *Config) defaults() {
	if c.MaxStmts == 0 {
		c.MaxStmts = 5
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 2
	}
	if c.MaxLoopTrip == 0 {
		c.MaxLoopTrip = 5
	}
	if c.ArrayLen == 0 {
		c.ArrayLen = 8
	}
}

// Generated bundles a random kernel with matching inputs.
type Generated struct {
	Kernel *ir.Kernel
	Args   map[string]int32
	// NewHost builds a fresh host heap with the kernel's arrays.
	NewHost func() *ir.Host
}

// New generates one kernel from the seed.
func New(seed int64, cfg Config) *Generated {
	cfg.defaults()
	rng := rand.New(rand.NewSource(seed))
	g := &gen{rng: rng, cfg: cfg, protected: map[string]bool{}}
	return g.kernel(seed)
}

type gen struct {
	rng     *rand.Rand
	cfg     Config
	scalars []string // definitely-assigned scalar variables in scope
	arrays  []string
	// protected variables (live loop counters) must not be overwritten,
	// or termination would be lost.
	protected map[string]bool
	loopVar   int
	tempVar   int
}

func (g *gen) kernel(seed int64) *Generated {
	// Parameters: two scalar ins, one inout accumulator, 1-2 arrays.
	params := []ir.Param{ir.In("p"), ir.In("q"), ir.InOut("acc")}
	g.scalars = []string{"p", "q", "acc"}
	nArrays := 1 + g.rng.Intn(2)
	for i := 0; i < nArrays; i++ {
		name := fmt.Sprintf("m%d", i)
		params = append(params, ir.Array(name))
		g.arrays = append(g.arrays, name)
	}
	body := g.stmts(g.cfg.MaxDepth)
	// Make sure the accumulator reflects some of the computation.
	body = append(body, ir.Set("acc", ir.Add(ir.V("acc"), g.expr(2))))
	k := &ir.Kernel{Name: fmt.Sprintf("fuzz%d", seed), Params: params, Body: body}

	args := map[string]int32{
		"p":   int32(g.rng.Intn(2001) - 1000),
		"q":   int32(g.rng.Intn(2001) - 1000),
		"acc": int32(g.rng.Intn(100)),
	}
	arrays := g.arrays
	alen := g.cfg.ArrayLen
	// Pre-draw array contents so NewHost is deterministic per kernel.
	contents := map[string][]int32{}
	for _, a := range arrays {
		data := make([]int32, alen)
		for i := range data {
			data[i] = int32(g.rng.Intn(512) - 256)
		}
		contents[a] = data
	}
	return &Generated{
		Kernel: k,
		Args:   args,
		NewHost: func() *ir.Host {
			h := ir.NewHost()
			for name, data := range contents {
				h.Arrays[name] = append([]int32(nil), data...)
			}
			return h
		},
	}
}

func (g *gen) stmts(depth int) []ir.Stmt {
	n := 1 + g.rng.Intn(g.cfg.MaxStmts)
	out := make([]ir.Stmt, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.stmt(depth))
	}
	return out
}

func (g *gen) stmt(depth int) ir.Stmt {
	roll := g.rng.Intn(10)
	switch {
	case roll < 4 || depth == 0: // assignment
		return g.assign()
	case roll < 6: // array store
		return g.store()
	case roll < 8: // conditional
		cond := g.cond(depth - 1)
		// Variables first assigned inside an arm are only conditionally
		// defined: restore the scope after each arm.
		saved := append([]string(nil), g.scalars...)
		then := g.stmts(depth - 1)
		g.scalars = append([]string(nil), saved...)
		els := g.maybeElse(depth - 1)
		g.scalars = saved
		return &ir.If{Cond: cond, Then: then, Else: els}
	default: // bounded counted loop
		return g.loop(depth - 1)
	}
}

func (g *gen) maybeElse(depth int) []ir.Stmt {
	if g.rng.Intn(2) == 0 {
		return nil
	}
	return g.stmts(depth)
}

func (g *gen) assign() ir.Stmt {
	// Mostly new temporaries; occasionally overwrite an existing scalar
	// (exercising pWRITE versioning and WAR/WAW ordering).
	var name string
	if g.rng.Intn(3) == 0 {
		if cand := g.overwritable(); cand != "" {
			name = cand
		}
	}
	if name == "" {
		g.tempVar++
		name = fmt.Sprintf("t%d", g.tempVar)
	}
	s := ir.Set(name, g.expr(2))
	if !contains(g.scalars, name) {
		g.scalars = append(g.scalars, name)
	}
	return s
}

func (g *gen) store() ir.Stmt {
	arr := g.arrays[g.rng.Intn(len(g.arrays))]
	return ir.SetElem(arr, g.index(), g.expr(1))
}

// loop emits i = 0; while (i < K) { body; i = i + 1; } with a fresh loop
// variable, guaranteeing termination. The body may read but never write i
// (fresh temporaries only write temps or pre-existing scalars, and i is
// appended after body generation).
func (g *gen) loop(depth int) ir.Stmt {
	g.loopVar++
	iv := fmt.Sprintf("i%d", g.loopVar)
	trip := 1 + g.rng.Intn(g.cfg.MaxLoopTrip)
	savedScalars := append([]string(nil), g.scalars...)
	g.scalars = append(g.scalars, iv)
	g.protected[iv] = true
	body := g.stmts(depth)
	body = append(body, ir.Set(iv, ir.Add(ir.V(iv), ir.C(1))))
	delete(g.protected, iv)
	g.scalars = savedScalars
	return &ir.For{
		Init: ir.Set(iv, ir.C(0)),
		Cond: ir.Lt(ir.V(iv), ir.C(int32(trip))),
		Post: nil,
		Body: body,
	}
}

// index produces an always-in-bounds array index: expr & (len-1).
func (g *gen) index() ir.Expr {
	return ir.And(g.expr(1), ir.C(int32(g.cfg.ArrayLen-1)))
}

func (g *gen) expr(depth int) ir.Expr {
	if depth == 0 || g.rng.Intn(4) == 0 {
		return g.leaf()
	}
	switch g.rng.Intn(8) {
	case 0:
		return ir.Neg(g.expr(depth - 1))
	case 1:
		return ir.Not(g.expr(depth - 1))
	case 2: // array load, masked index
		arr := g.arrays[g.rng.Intn(len(g.arrays))]
		return ir.At(arr, g.index())
	case 3: // shift with masked amount
		return &ir.Bin{
			Op: []ir.BinOp{ir.OpShl, ir.OpShr, ir.OpShrU}[g.rng.Intn(3)],
			X:  g.expr(depth - 1),
			Y:  ir.And(g.expr(depth-1), ir.C(7)),
		}
	case 4: // comparison as value (bool materialization)
		return &ir.Bin{
			Op: []ir.BinOp{ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe, ir.OpEq, ir.OpNe}[g.rng.Intn(6)],
			X:  g.expr(depth - 1),
			Y:  g.expr(depth - 1),
		}
	default:
		return &ir.Bin{
			Op: []ir.BinOp{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor}[g.rng.Intn(6)],
			X:  g.expr(depth - 1),
			Y:  g.expr(depth - 1),
		}
	}
}

func (g *gen) leaf() ir.Expr {
	if g.rng.Intn(3) == 0 {
		return ir.C(int32(g.rng.Intn(201) - 100))
	}
	return ir.V(g.scalars[g.rng.Intn(len(g.scalars))])
}

// cond produces a boolean condition, possibly a short-circuit combination.
func (g *gen) cond(depth int) ir.Expr {
	cmp := func() ir.Expr {
		return &ir.Bin{
			Op: []ir.BinOp{ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe, ir.OpEq, ir.OpNe}[g.rng.Intn(6)],
			X:  g.expr(1),
			Y:  g.expr(1),
		}
	}
	switch g.rng.Intn(4) {
	case 0:
		return ir.LAnd(cmp(), cmp())
	case 1:
		return ir.LOr(cmp(), cmp())
	case 2:
		return ir.LNot(cmp())
	default:
		return cmp()
	}
}

// overwritable picks an in-scope scalar that may be reassigned, or "".
func (g *gen) overwritable() string {
	var cands []string
	for _, s := range g.scalars {
		if !g.protected[s] {
			cands = append(cands, s)
		}
	}
	if len(cands) == 0 {
		return ""
	}
	return cands[g.rng.Intn(len(cands))]
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
