package kgen

import (
	"fmt"
	"testing"

	"cgra/internal/arch"
	"cgra/internal/ir"
	"cgra/internal/pipeline"
)

func TestDebugSeed35(t *testing.T) {
	gk := New(35, Config{})
	var dump func(stmts []ir.Stmt, ind string)
	dump = func(stmts []ir.Stmt, ind string) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ir.Assign:
				fmt.Printf("%s%s = %s\n", ind, s.Name, s.Value)
			case *ir.Store:
				fmt.Printf("%s%s[%s] = %s\n", ind, s.Array, s.Index, s.Value)
			case *ir.If:
				fmt.Printf("%sif %s {\n", ind, s.Cond)
				dump(s.Then, ind+"  ")
				fmt.Printf("%s} else {\n", ind)
				dump(s.Else, ind+"  ")
				fmt.Printf("%s}\n", ind)
			case *ir.For:
				fmt.Printf("%sfor %s=%s; %s {\n", ind, s.Init.Name, s.Init.Value, s.Cond)
				dump(s.Body, ind+"  ")
				fmt.Printf("%s}\n", ind)
			}
		}
	}
	dump(gk.Kernel.Body, "")
	fmt.Println("args:", gk.Args)
	fmt.Println("m0:", gk.NewHost().Arrays["m0"])
	comp, _ := arch.IrregularComposition("F", 1)
	c, err := pipeline.Compile(gk.Kernel, comp, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = pipeline.CheckAgainstInterpreter(gk.Kernel, c, gk.Args, gk.NewHost())
	fmt.Println("check:", err)
}
