package kgen

import (
	"fmt"
	"math/rand"

	"cgra/internal/ir"
)

// NewProgram generates a random program: an entry kernel that calls one or
// two generated helper kernels (scalar in/inout and array parameters), for
// differential fuzzing of the method-inlining path.
func NewProgram(seed int64, cfg Config) (*ir.Program, *Generated) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	g := &gen{rng: rng, cfg: cfg, protected: map[string]bool{}}

	// Helpers first: each takes (in hp, inout hacc, array hm).
	nHelpers := 1 + rng.Intn(2)
	var helpers []*ir.Kernel
	for h := 0; h < nHelpers; h++ {
		hg := &gen{rng: rng, cfg: cfg, protected: map[string]bool{}}
		hg.scalars = []string{"hp", "hacc"}
		hg.arrays = []string{"hm"}
		body := hg.stmts(1)
		body = append(body, ir.Set("hacc", ir.Add(ir.V("hacc"), hg.expr(1))))
		helpers = append(helpers, &ir.Kernel{
			Name: fmt.Sprintf("helper%d", h),
			Params: []ir.Param{
				ir.In("hp"), ir.InOut("hacc"), ir.Array("hm"),
			},
			Body: body,
		})
	}

	// Entry kernel, same shape as New(), plus call sites.
	gk := g.kernel(seed)
	entry := gk.Kernel
	// Call-site arguments may only read parameters, which are defined at
	// every program point (temporaries might not be yet).
	safeArg := func() ir.Expr {
		switch rng.Intn(3) {
		case 0:
			return ir.V("p")
		case 1:
			return ir.Add(ir.V("q"), ir.C(int32(rng.Intn(50))))
		default:
			return ir.C(int32(rng.Intn(100) - 50))
		}
	}
	var withCalls []ir.Stmt
	for i, s := range entry.Body {
		withCalls = append(withCalls, s)
		if i%2 == 0 && len(helpers) > 0 {
			h := helpers[rng.Intn(len(helpers))]
			withCalls = append(withCalls, &ir.Call{
				Callee: h.Name,
				Args: []ir.Expr{
					safeArg(),         // in hp
					ir.V("acc"),       // inout hacc
					ir.V(g.arrays[0]), // array hm
				},
			})
		}
	}
	entry.Body = withCalls

	prog := ir.NewProgram(entry, helpers...)
	return prog, gk
}
