package kgen

import (
	"strings"
	"testing"

	"cgra/internal/pipeline"
)

// TestFuzzStress is a wider sweep (enabled with -run TestFuzzStress).
func TestFuzzStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress fuzzing skipped in -short mode")
	}
	comps := fuzzComps(t)
	for seed := int64(1000); seed < 1400; seed++ {
		gk := New(seed, Config{MaxDepth: 3, MaxStmts: 6})
		comp := comps[seed%int64(len(comps))]
		opts := pipeline.Options{}
		if seed%2 == 0 {
			opts = pipeline.Defaults()
		}
		c, err := pipeline.Compile(gk.Kernel, comp, opts)
		if err != nil {
			// Deep kernels can legitimately exceed the 256-entry
			// context memories; only silent miscompiles are bugs.
			if strings.Contains(err.Error(), "memory holds") ||
				strings.Contains(err.Error(), "RF entries") ||
				strings.Contains(err.Error(), "C-Box slots") {
				continue
			}
			t.Fatalf("seed %d on %s: compile: %v", seed, comp.Name, err)
		}
		if _, err := pipeline.CheckAgainstInterpreter(gk.Kernel, c, gk.Args, gk.NewHost()); err != nil {
			t.Fatalf("seed %d on %s: %v", seed, comp.Name, err)
		}
	}
}
