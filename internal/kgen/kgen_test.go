package kgen

import (
	"testing"

	"cgra/internal/arch"
	"cgra/internal/ir"
	"cgra/internal/pipeline"
)

func TestGeneratedKernelsValidate(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		gk := New(seed, Config{})
		if err := ir.Validate(gk.Kernel); err != nil {
			t.Errorf("seed %d: invalid kernel: %v", seed, err)
		}
	}
}

func TestGeneratedKernelsTerminate(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		gk := New(seed, Config{})
		interp := &ir.Interp{MaxSteps: 5_000_000}
		if _, err := interp.Run(gk.Kernel, gk.Args, gk.NewHost()); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := New(42, Config{})
	b := New(42, Config{})
	ia, ib := &ir.Interp{}, &ir.Interp{}
	oa, err := ia.Run(a.Kernel, a.Args, a.NewHost())
	if err != nil {
		t.Fatal(err)
	}
	ob, err := ib.Run(b.Kernel, b.Args, b.NewHost())
	if err != nil {
		t.Fatal(err)
	}
	if oa["acc"] != ob["acc"] {
		t.Errorf("same seed, different results: %d vs %d", oa["acc"], ob["acc"])
	}
}

// TestFuzzFlowAgainstInterpreter is the central differential fuzz loop:
// random kernels through the whole flow (predication, branching, loops,
// DMA, routing copies) on three very different compositions, checked
// against the interpreter bit-for-bit.
func TestFuzzFlowAgainstInterpreter(t *testing.T) {
	seeds := int64(60)
	if testing.Short() {
		seeds = 10
	}
	comps := fuzzComps(t)
	for seed := int64(0); seed < seeds; seed++ {
		gk := New(seed, Config{})
		comp := comps[seed%int64(len(comps))]
		c, err := pipeline.Compile(gk.Kernel, comp, pipeline.Options{})
		if err != nil {
			t.Fatalf("seed %d on %s: compile: %v", seed, comp.Name, err)
		}
		if _, err := pipeline.CheckAgainstInterpreter(gk.Kernel, c, gk.Args, gk.NewHost()); err != nil {
			t.Fatalf("seed %d on %s: %v", seed, comp.Name, err)
		}
	}
}

// TestFuzzFlowOptimized repeats the fuzz loop with the optimizing flow
// (unrolling + CSE + folding), which stresses predicate nesting hardest.
func TestFuzzFlowOptimized(t *testing.T) {
	seeds := int64(40)
	if testing.Short() {
		seeds = 8
	}
	comps := fuzzComps(t)
	for seed := int64(100); seed < 100+seeds; seed++ {
		gk := New(seed, Config{})
		comp := comps[seed%int64(len(comps))]
		c, err := pipeline.Compile(gk.Kernel, comp, pipeline.Defaults())
		if err != nil {
			t.Fatalf("seed %d on %s: compile: %v", seed, comp.Name, err)
		}
		if _, err := pipeline.CheckAgainstInterpreter(gk.Kernel, c, gk.Args, gk.NewHost()); err != nil {
			t.Fatalf("seed %d on %s: %v", seed, comp.Name, err)
		}
	}
}

func fuzzComps(t *testing.T) []*arch.Composition {
	t.Helper()
	mesh4, err := arch.HomogeneousMesh(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ringB, err := arch.IrregularComposition("B", 2)
	if err != nil {
		t.Fatal(err)
	}
	inhomF, err := arch.IrregularComposition("F", 1)
	if err != nil {
		t.Fatal(err)
	}
	return []*arch.Composition{mesh4, ringB, inhomF}
}

// TestFuzzProgramsWithCalls fuzzes the method-inlining path: random
// programs (entry + helpers with calls) compiled through CompileProgram and
// checked against the program-level interpreter.
func TestFuzzProgramsWithCalls(t *testing.T) {
	seeds := int64(30)
	if testing.Short() {
		seeds = 6
	}
	comps := fuzzComps(t)
	for seed := int64(500); seed < 500+seeds; seed++ {
		prog, gk := NewProgram(seed, Config{})
		if err := ir.ValidateProgram(prog); err != nil {
			t.Fatalf("seed %d: invalid program: %v", seed, err)
		}
		comp := comps[seed%int64(len(comps))]
		c, err := pipeline.CompileProgram(prog, comp, pipeline.Options{})
		if err != nil {
			t.Fatalf("seed %d on %s: compile: %v", seed, comp.Name, err)
		}
		hostSim := gk.NewHost()
		hostRef := gk.NewHost()
		res, err := c.Run(gk.Args, hostSim)
		if err != nil {
			t.Fatalf("seed %d on %s: sim: %v", seed, comp.Name, err)
		}
		interp := &ir.Interp{Library: prog.Kernels}
		ref, err := interp.Run(prog.EntryKernel(), gk.Args, hostRef)
		if err != nil {
			t.Fatalf("seed %d: interp: %v", seed, err)
		}
		if res.LiveOuts["acc"] != ref["acc"] {
			t.Fatalf("seed %d on %s: acc CGRA %d != reference %d",
				seed, comp.Name, res.LiveOuts["acc"], ref["acc"])
		}
		if !hostSim.Equal(hostRef) {
			t.Fatalf("seed %d on %s: heaps differ", seed, comp.Name)
		}
	}
}

// TestFuzzBranchAllIfs stresses the branched-region code path (CCU jumps
// over conditional arms) that the default predication strategy mostly
// avoids.
func TestFuzzBranchAllIfs(t *testing.T) {
	seeds := int64(30)
	if testing.Short() {
		seeds = 6
	}
	comps := fuzzComps(t)
	opts := pipeline.Options{}
	opts.Build.BranchAllIfs = true
	for seed := int64(700); seed < 700+seeds; seed++ {
		gk := New(seed, Config{})
		comp := comps[seed%int64(len(comps))]
		c, err := pipeline.Compile(gk.Kernel, comp, opts)
		if err != nil {
			t.Fatalf("seed %d on %s: compile: %v", seed, comp.Name, err)
		}
		if _, err := pipeline.CheckAgainstInterpreter(gk.Kernel, c, gk.Args, gk.NewHost()); err != nil {
			t.Fatalf("seed %d on %s: %v", seed, comp.Name, err)
		}
	}
}
