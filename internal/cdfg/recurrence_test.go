package cdfg_test

import (
	"testing"

	"cgra/internal/arch"
	"cgra/internal/cdfg"
	"cgra/internal/sched"
	"cgra/internal/workload"
)

// latN returns a latency function assigning every node the same latency.
func latN(n int) func(*cdfg.Node) int { return func(*cdfg.Node) int { return n } }

// compLatency maps a node to its minimum duration over the composition's
// supporting PEs (the latency a modulo scheduler would plan with).
func compLatency(comp *arch.Composition) func(*cdfg.Node) int {
	return func(n *cdfg.Node) int {
		op := n.Op
		if n.Kind == cdfg.KPWrite {
			op = arch.MOVE
		}
		best := 1
		found := false
		for _, pe := range comp.SupportingPEs(op) {
			d := comp.PEs[pe].Duration(op)
			if !found || d < best {
				best, found = d, true
			}
		}
		return best
	}
}

func TestRecMIISelfLoop(t *testing.T) {
	// pwrite x ← x (a pure copy of the previous iteration's value): one
	// node with a distance-1 edge to itself.
	w := &cdfg.Node{ID: 0, Kind: cdfg.KPWrite, Op: arch.MOVE, Local: "x",
		Args: []cdfg.Operand{{Kind: cdfg.FromLocal, Local: "x"}}}
	b := &cdfg.Block{Nodes: []*cdfg.Node{w}}
	cs := cdfg.Recurrences(b, latN(3))
	if len(cs) != 1 {
		t.Fatalf("circuits = %d, want 1", len(cs))
	}
	if cs[0].Delay != 3 || cs[0].Dist != 1 {
		t.Fatalf("circuit delay/dist = %d/%d, want 3/1", cs[0].Delay, cs[0].Dist)
	}
	if got := cdfg.RecMII(b, latN(3)); got != 3 {
		t.Fatalf("RecMII = %d, want 3", got)
	}
}

func TestRecMIITwoNodeCycle(t *testing.T) {
	// acc = acc * k: IMUL reads acc from the previous iteration, pwrite
	// commits it. Delay = lat(IMUL) + lat(pwrite) = 2 + 1, distance 1.
	mul := &cdfg.Node{ID: 0, Kind: cdfg.KOp, Op: arch.IMUL,
		Args: []cdfg.Operand{{Kind: cdfg.FromLocal, Local: "acc"}, {Kind: cdfg.FromConst, Const: 3}}}
	w := &cdfg.Node{ID: 1, Kind: cdfg.KPWrite, Op: arch.MOVE, Local: "acc",
		Args: []cdfg.Operand{{Kind: cdfg.FromNode, Node: mul}}}
	b := &cdfg.Block{Nodes: []*cdfg.Node{mul, w}}
	lat := func(n *cdfg.Node) int {
		if n.Op == arch.IMUL {
			return 2
		}
		return 1
	}
	if got := cdfg.RecMII(b, lat); got != 3 {
		t.Fatalf("RecMII = %d, want 3", got)
	}
}

func TestRecMIINestedCycles(t *testing.T) {
	// Two circuits through the same pwrite: w→n1→n2→w (delay 3) nested
	// around w→n2→w (delay 2), both at distance 1. RecMII is the max.
	n1 := &cdfg.Node{ID: 0, Kind: cdfg.KOp, Op: arch.IADD,
		Args: []cdfg.Operand{{Kind: cdfg.FromLocal, Local: "x"}, {Kind: cdfg.FromConst, Const: 1}}}
	n2 := &cdfg.Node{ID: 1, Kind: cdfg.KOp, Op: arch.IADD,
		Args: []cdfg.Operand{
			{Kind: cdfg.FromNode, Node: n1},
			{Kind: cdfg.FromLocal, Local: "x"},
		}}
	w := &cdfg.Node{ID: 2, Kind: cdfg.KPWrite, Op: arch.MOVE, Local: "x",
		Args: []cdfg.Operand{{Kind: cdfg.FromNode, Node: n2}}}
	b := &cdfg.Block{Nodes: []*cdfg.Node{n1, n2, w}}
	cs := cdfg.Recurrences(b, latN(1))
	if len(cs) != 2 {
		t.Fatalf("circuits = %d, want 2", len(cs))
	}
	if got := cdfg.RecMII(b, latN(1)); got != 3 {
		t.Fatalf("RecMII = %d, want 3", got)
	}
}

func TestRecMIINoRecurrence(t *testing.T) {
	// Straight-line dataflow with no loop-carried local: RecMII is 1.
	n1 := &cdfg.Node{ID: 0, Kind: cdfg.KOp, Op: arch.IADD,
		Args: []cdfg.Operand{{Kind: cdfg.FromConst, Const: 1}, {Kind: cdfg.FromConst, Const: 2}}}
	n2 := &cdfg.Node{ID: 1, Kind: cdfg.KOp, Op: arch.IMUL,
		Args: []cdfg.Operand{{Kind: cdfg.FromNode, Node: n1}, {Kind: cdfg.FromConst, Const: 3}}}
	b := &cdfg.Block{Nodes: []*cdfg.Node{n1, n2}}
	if cs := cdfg.Recurrences(b, latN(1)); len(cs) != 0 {
		t.Fatalf("circuits = %d, want 0", len(cs))
	}
	if got := cdfg.RecMII(b, latN(1)); got != 1 {
		t.Fatalf("RecMII = %d, want 1", got)
	}
}

// loopsInRangeOrder lists RLoop regions in the order the list scheduler
// appends their LoopRanges entries (a loop's range is recorded after its
// body has been emitted, so inner loops come first).
func loopsInRangeOrder(r *cdfg.Region) []*cdfg.Region {
	var out []*cdfg.Region
	var walk func(q *cdfg.Region)
	walk = func(q *cdfg.Region) {
		if q == nil {
			return
		}
		switch q.Kind {
		case cdfg.RSeq:
			for _, c := range q.Children {
				walk(c)
			}
		case cdfg.RLoop:
			walk(q.Body)
			out = append(out, q)
		case cdfg.RIf:
			walk(q.Then)
			walk(q.Else)
		}
	}
	walk(r)
	return out
}

// TestRecMIIBoundedByListSchedule is the property test: the reported RecMII
// of a loop body never exceeds the list scheduler's iteration latency for
// that loop (the length of its back-jump range). A violation would mean the
// "lower bound" claims more than a known-valid schedule achieves.
func TestRecMIIBoundedByListSchedule(t *testing.T) {
	comp, err := arch.ByName("9 PEs")
	if err != nil {
		t.Fatal(err)
	}
	lat := compLatency(comp)
	for _, w := range workload.All() {
		t.Run(w.Name, func(t *testing.T) {
			g, err := cdfg.Build(w.Kernel, cdfg.BuildOptions{})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			s, err := sched.Run(g, comp, sched.Options{})
			if err != nil {
				t.Fatalf("sched: %v", err)
			}
			loops := loopsInRangeOrder(g.Root)
			if len(loops) != len(s.LoopRanges) {
				t.Fatalf("loops %d vs ranges %d", len(loops), len(s.LoopRanges))
			}
			for i, lr := range loops {
				if lr.Body == nil || lr.Body.Kind != cdfg.RBlock {
					continue
				}
				iterLat := s.LoopRanges[i][1] - s.LoopRanges[i][0] + 1
				if mii := cdfg.RecMII(lr.Body.Block, lat); mii > iterLat {
					t.Errorf("loop %d: RecMII %d exceeds list iteration latency %d", i, mii, iterLat)
				}
			}
		})
	}
}
