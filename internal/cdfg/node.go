// Package cdfg builds the control and data flow graph (CDFG) the scheduler
// consumes (paper §V-A). A kernel becomes a tree of regions: straight-line
// blocks, loops (with a header block computing the loop condition), and
// branched conditionals. Dataflow-only conditionals are flattened into their
// enclosing block using speculation + predication: both arms' computations
// are speculated, and only the predicated writes (pWRITE) of the taken path
// commit (§V-B — the scheduler uses no phi nodes).
//
// Reads are always fused (§V-E): a node's operand can reference a local
// variable's home register-file slot directly; the scheduler resolves the
// routing at the consumer. Writes are explicit pWRITE nodes that the
// scheduler may fuse into the producing operation when it lands on the
// variable's home PE.
package cdfg

import (
	"fmt"
	"strings"

	"cgra/internal/arch"
)

// Kind distinguishes graph node classes.
type Kind int

// Node kinds.
const (
	// KOp is a machine operation (arithmetic, logic, compare, CONST,
	// LOAD, STORE, MOVE) executed on some PE's ALU.
	KOp Kind = iota
	// KPWrite is a predicated write of a value into a local variable's
	// home RF slot. The scheduler may fuse it into the producing node.
	KPWrite
)

func (k Kind) String() string {
	switch k {
	case KOp:
		return "op"
	case KPWrite:
		return "pwrite"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// OperandKind distinguishes the three operand sources.
type OperandKind int

// Operand kinds.
const (
	// FromNode reads the result value of another graph node.
	FromNode OperandKind = iota
	// FromLocal reads a local variable's home RF slot (a fused read).
	FromLocal
	// FromConst is an immediate; the scheduler materializes it with a
	// CONST operation and reuses the copy (constants and pseudo-constants
	// may be replicated freely, §V-D).
	FromConst
)

// Operand is one input of a node. Reads of locals are fused into the
// consumer: the scheduler, not the graph, decides where the value is
// fetched from (§V-E).
type Operand struct {
	Kind  OperandKind
	Node  *Node  // FromNode
	Local string // FromLocal
	Const int32  // FromConst
	// Version lists the pWRITE nodes that must have committed before this
	// FromLocal operand is read (read-after-write ordering). Multiple
	// entries occur after predicated if/else arms that both wrote the
	// local: the reader waits for every potential writer.
	Version []*Node
}

func (o Operand) String() string {
	switch o.Kind {
	case FromNode:
		return fmt.Sprintf("n%d", o.Node.ID)
	case FromLocal:
		return "%" + o.Local
	case FromConst:
		return fmt.Sprintf("#%d", o.Const)
	}
	return "?"
}

// Node is one CDFG operation.
type Node struct {
	ID   int
	Kind Kind
	// Op is the machine operation (KOp nodes). For KPWrite it is MOVE,
	// the opcode an unfused pWRITE executes as.
	Op arch.OpCode
	// Args are the data inputs, fused reads included.
	Args []Operand
	// Const is the immediate of a CONST op.
	Const int32
	// Array is the array parameter index of LOAD/STORE ops.
	Array int
	// Local is the target variable of a KPWrite.
	Local string
	// Pred is the path predicate under which this node's effect commits
	// (nil = unconditional). Only pWRITEs and DMA operations are
	// squashed; all other predicated nodes execute speculatively.
	Pred *Pred
	// Prereqs are strict ordering predecessors: each must have finished
	// (result available) before this node may issue. Used for
	// read-after-write on home slots and DMA ordering.
	Prereqs []*Node
	// WeakPrereqs are issue-order predecessors: each must have issued no
	// later than this node issues (same cycle allowed). Used for
	// write-after-read: the old value is still readable in the cycle its
	// home slot is overwritten.
	WeakPrereqs []*Node
	// Loop is the innermost loop region containing the node's block
	// (nil at top level). Set by the builder.
	Loop *Region
	// AliasOf, on an unpredicated KPWrite, names the node whose result
	// value the write commits. The committed slot value always equals
	// that node's value, so the scheduler may satisfy reads from either
	// location. Predicated writes have no alias (the slot may keep its
	// old value).
	AliasOf *Node
}

// IsCompare reports whether the node produces a status bit for the C-Box.
func (n *Node) IsCompare() bool { return n.Kind == KOp && n.Op.IsCompare() }

// IsDMA reports whether the node is a memory access.
func (n *Node) IsDMA() bool { return n.Kind == KOp && n.Op.IsDMA() }

// ProducesValue reports whether the node yields an RF value consumable by
// other nodes. Compares produce only a status; STOREs produce nothing.
func (n *Node) ProducesValue() bool {
	if n.Kind == KPWrite {
		return true
	}
	return !n.IsCompare() && n.Op != arch.STORE && n.Op != arch.NOP
}

func (n *Node) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n%d: ", n.ID)
	switch n.Kind {
	case KPWrite:
		fmt.Fprintf(&b, "pwrite %%%s", n.Local)
	default:
		fmt.Fprintf(&b, "%v", n.Op)
		if n.Op == arch.CONST {
			fmt.Fprintf(&b, " #%d", n.Const)
		}
		if n.IsDMA() {
			fmt.Fprintf(&b, " arr%d", n.Array)
		}
	}
	for _, a := range n.Args {
		fmt.Fprintf(&b, " %s", a)
	}
	if n.Pred != nil {
		fmt.Fprintf(&b, " @p%d", n.Pred.ID)
	}
	return b.String()
}

// Pred is a path predicate: the conjunction of an optional parent predicate
// with one branch condition (possibly negated). The C-Box realizes each
// predicate as one condition-memory slot (§V-H: "for nested branches and
// loops the stored condition bit is a conjunction of the outer and current
// condition").
type Pred struct {
	ID     int
	Parent *Pred
	Cond   *CondExpr
	Negate bool // true for the else-path
}

// Depth returns the nesting depth of the predicate (1 for a top-level if).
func (p *Pred) Depth() int {
	d := 0
	for q := p; q != nil; q = q.Parent {
		d++
	}
	return d
}

func (p *Pred) String() string {
	s := fmt.Sprintf("p%d", p.ID)
	if p.Negate {
		s += "!"
	}
	if p.Parent != nil {
		s = p.Parent.String() + "&" + s
	}
	return s
}

// CondOp connects condition sub-expressions.
type CondOp int

// Condition connectives.
const (
	CondLeaf CondOp = iota
	CondAnd
	CondOr
)

// CondExpr is a boolean expression over compare nodes. The C-Box evaluates
// it one status bit per cycle (§IV-A2); the scheduler linearizes the tree
// into C-Box micro-operations. Negations are folded into the compare opcode
// at build time (De Morgan), so leaves are never negated.
type CondExpr struct {
	Op   CondOp
	Cmp  *Node // CondLeaf: a compare node
	X, Y *CondExpr
}

// Leaves appends all compare nodes of the expression to dst, left to right.
func (c *CondExpr) Leaves(dst []*Node) []*Node {
	if c == nil {
		return dst
	}
	if c.Op == CondLeaf {
		return append(dst, c.Cmp)
	}
	dst = c.X.Leaves(dst)
	return c.Y.Leaves(dst)
}

// NumLeaves returns the number of compare leaves; evaluating the expression
// occupies the C-Box for that many cycles.
func (c *CondExpr) NumLeaves() int { return len(c.Leaves(nil)) }

func (c *CondExpr) String() string {
	if c == nil {
		return "true"
	}
	switch c.Op {
	case CondLeaf:
		return fmt.Sprintf("s(n%d)", c.Cmp.ID)
	case CondAnd:
		return fmt.Sprintf("(%s & %s)", c.X, c.Y)
	case CondOr:
		return fmt.Sprintf("(%s | %s)", c.X, c.Y)
	}
	return "?"
}

// Block is a straight-line DFG: a set of nodes whose only control flow is
// predication. Node order is program order (used for deterministic
// scheduling and for ordering-edge construction).
type Block struct {
	ID    int
	Nodes []*Node
	// Cond is the block's condition value when the block is a loop header
	// or the condition block of a branched if; nil otherwise.
	Cond *CondExpr
}

func (b *Block) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "block b%d:\n", b.ID)
	for _, n := range b.Nodes {
		fmt.Fprintf(&sb, "  %s\n", n)
	}
	if b.Cond != nil {
		fmt.Fprintf(&sb, "  cond: %s\n", b.Cond)
	}
	return sb.String()
}
