package cdfg

import (
	"fmt"
	"strings"
)

// RegionKind distinguishes the region-tree node types.
type RegionKind int

// Region kinds.
const (
	// RBlock is a leaf: one straight-line block.
	RBlock RegionKind = iota
	// RSeq executes its children in order.
	RSeq
	// RLoop executes Header, then either exits (condition false) or runs
	// Body and jumps back to Header. Realized with a conditional CCNT
	// jump selected by the C-Box (§IV-A2).
	RLoop
	// RIf evaluates CondBlock, then branches over Then or Else with CCNT
	// jumps. The builder only emits RIf for conditionals that contain
	// loops; all other conditionals are predicated into their parent
	// block.
	RIf
)

func (k RegionKind) String() string {
	switch k {
	case RBlock:
		return "block"
	case RSeq:
		return "seq"
	case RLoop:
		return "loop"
	case RIf:
		return "if"
	}
	return fmt.Sprintf("RegionKind(%d)", int(k))
}

// Region is one node of the region tree.
type Region struct {
	ID   int
	Kind RegionKind
	// Block is the leaf payload (RBlock).
	Block *Block
	// Children are the sequence elements (RSeq).
	Children []*Region
	// Header evaluates the loop condition (RLoop). Its Cond field is the
	// continue-condition: true runs Body, false exits.
	Header *Block
	// Body is the loop body (RLoop).
	Body *Region
	// CondBlock evaluates the branch condition (RIf).
	CondBlock *Block
	// Then and Else are the branch arms (RIf); Else may be nil.
	Then, Else *Region
	// Parent is the enclosing region (nil at root).
	Parent *Region
	// Depth is the loop nesting depth (number of enclosing RLoops,
	// counting the region itself when it is an RLoop).
	Depth int
}

// EnclosingLoop returns the innermost RLoop containing r (or r itself if it
// is a loop), or nil.
func (r *Region) EnclosingLoop() *Region {
	for q := r; q != nil; q = q.Parent {
		if q.Kind == RLoop {
			return q
		}
	}
	return nil
}

// Walk visits r and all descendants in pre-order.
func (r *Region) Walk(f func(*Region)) {
	if r == nil {
		return
	}
	f(r)
	for _, c := range r.Children {
		c.Walk(f)
	}
	r.Body.Walk(f)
	r.Then.Walk(f)
	r.Else.Walk(f)
}

// Blocks returns every block in the subtree, in execution order (header and
// condition blocks before their bodies/arms).
func (r *Region) Blocks() []*Block {
	var out []*Block
	r.Walk(func(q *Region) {
		switch q.Kind {
		case RBlock:
			out = append(out, q.Block)
		case RLoop:
			out = append(out, q.Header)
		case RIf:
			out = append(out, q.CondBlock)
		}
	})
	return out
}

// Local describes one scalar variable of the graph: a kernel parameter, a
// user variable, or a synthesized temporary.
type Local struct {
	Name string
	// LiveIn locals receive their value from the host before the run.
	LiveIn bool
	// LiveOut locals are sent back to the host after the run.
	LiveOut bool
}

// Stats summarizes the control structure of a graph; the Fig. 12 view of a
// kernel (loops, branch points, nesting).
type Stats struct {
	Blocks        int
	Nodes         int
	PWrites       int
	DMALoads      int
	DMAStores     int
	Compares      int
	Loops         int
	MaxLoopDepth  int
	BranchedIfs   int
	Predicates    int
	PredicatedOps int
}

// Graph is the compiled CDFG of one kernel.
type Graph struct {
	KernelName string
	Root       *Region
	// Locals maps every scalar variable to its descriptor.
	Locals map[string]*Local
	// Arrays lists the array parameters; a node's Array field indexes it.
	Arrays []string
	// Preds lists all predicates, indexed by Pred.ID.
	Preds []*Pred

	nextNode   int
	nextBlock  int
	nextRegion int
}

// ArrayID returns the index of the named array parameter, or -1.
func (g *Graph) ArrayID(name string) int {
	for i, a := range g.Arrays {
		if a == name {
			return i
		}
	}
	return -1
}

// LiveIns returns the names of live-in locals in deterministic order.
func (g *Graph) LiveIns() []string { return g.liveList(func(l *Local) bool { return l.LiveIn }) }

// LiveOuts returns the names of live-out locals in deterministic order.
func (g *Graph) LiveOuts() []string { return g.liveList(func(l *Local) bool { return l.LiveOut }) }

func (g *Graph) liveList(keep func(*Local) bool) []string {
	var names []string
	for _, l := range g.Locals {
		if keep(l) {
			names = append(names, l.Name)
		}
	}
	sortStrings(names)
	return names
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// AllNodes returns every node in the graph, in block execution order.
func (g *Graph) AllNodes() []*Node {
	var out []*Node
	for _, b := range g.Root.Blocks() {
		out = append(out, b.Nodes...)
	}
	return out
}

// Stats computes the structural summary of the graph.
func (g *Graph) Stats() Stats {
	var st Stats
	st.Predicates = len(g.Preds)
	g.Root.Walk(func(r *Region) {
		switch r.Kind {
		case RLoop:
			st.Loops++
			if r.Depth > st.MaxLoopDepth {
				st.MaxLoopDepth = r.Depth
			}
		case RIf:
			st.BranchedIfs++
		}
	})
	for _, b := range g.Root.Blocks() {
		st.Blocks++
		for _, n := range b.Nodes {
			st.Nodes++
			if n.Pred != nil {
				st.PredicatedOps++
			}
			switch {
			case n.Kind == KPWrite:
				st.PWrites++
			case n.Op.IsDMA():
				if n.Op.String() == "LOAD" {
					st.DMALoads++
				} else {
					st.DMAStores++
				}
			case n.IsCompare():
				st.Compares++
			}
		}
	}
	return st
}

// String renders the region tree with its blocks, for debugging and tests.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cdfg %s\n", g.KernelName)
	var dump func(r *Region, indent string)
	dump = func(r *Region, indent string) {
		if r == nil {
			return
		}
		switch r.Kind {
		case RBlock:
			fmt.Fprintf(&b, "%s%s", indent, indentLines(r.Block.String(), indent))
		case RSeq:
			fmt.Fprintf(&b, "%sseq {\n", indent)
			for _, c := range r.Children {
				dump(c, indent+"  ")
			}
			fmt.Fprintf(&b, "%s}\n", indent)
		case RLoop:
			fmt.Fprintf(&b, "%sloop (depth %d) header:\n", indent, r.Depth)
			fmt.Fprintf(&b, "%s  %s", indent, indentLines(r.Header.String(), indent+"  "))
			fmt.Fprintf(&b, "%sbody {\n", indent)
			dump(r.Body, indent+"  ")
			fmt.Fprintf(&b, "%s}\n", indent)
		case RIf:
			fmt.Fprintf(&b, "%sif cond:\n", indent)
			fmt.Fprintf(&b, "%s  %s", indent, indentLines(r.CondBlock.String(), indent+"  "))
			fmt.Fprintf(&b, "%sthen {\n", indent)
			dump(r.Then, indent+"  ")
			fmt.Fprintf(&b, "%s}\n", indent)
			if r.Else != nil {
				fmt.Fprintf(&b, "%selse {\n", indent)
				dump(r.Else, indent+"  ")
				fmt.Fprintf(&b, "%s}\n", indent)
			}
		}
	}
	dump(g.Root, "")
	return b.String()
}

func indentLines(s, indent string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return strings.Join(lines, "\n"+indent) + "\n"
}
