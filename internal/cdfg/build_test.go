package cdfg

import (
	"strings"
	"testing"

	"cgra/internal/arch"
	"cgra/internal/ir"
	"cgra/internal/irtext"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	k := mustParse(t, src)
	g, err := Build(k, BuildOptions{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func TestBuildStraightLine(t *testing.T) {
	g := build(t, `kernel k(in x, in y, inout r) { r = x * y + 3; }`)
	if g.Root.Kind != RBlock {
		t.Fatalf("root kind = %v, want RBlock", g.Root.Kind)
	}
	nodes := g.AllNodes()
	// IMUL, IADD, pwrite r
	if len(nodes) != 3 {
		t.Fatalf("got %d nodes, want 3:\n%s", len(nodes), g)
	}
	pw := nodes[2]
	if pw.Kind != KPWrite || pw.Local != "r" {
		t.Fatalf("last node is %s, want pwrite r", pw)
	}
	if pw.AliasOf == nil || pw.AliasOf.Op != arch.IADD {
		t.Error("unpredicated pwrite should alias its producer")
	}
	if !g.Locals["r"].LiveOut || !g.Locals["r"].LiveIn {
		t.Error("inout param should be live-in and live-out")
	}
	if g.Locals["x"].LiveOut {
		t.Error("in param must not be live-out")
	}
}

func TestBuildPredicatedIf(t *testing.T) {
	g := build(t, `
kernel k(in x, inout r) {
	if (x < 0) {
		r = 0 - x;
	} else {
		r = x;
	}
}`)
	// Everything predicates into a single block.
	if g.Root.Kind != RBlock {
		t.Fatalf("root kind = %v, want RBlock (predicated if)\n%s", g.Root.Kind, g)
	}
	st := g.Stats()
	if st.Loops != 0 || st.BranchedIfs != 0 {
		t.Errorf("loops=%d branchedIfs=%d, want 0/0", st.Loops, st.BranchedIfs)
	}
	if st.Compares != 1 {
		t.Errorf("compares = %d, want 1", st.Compares)
	}
	// Two predicates (then and else).
	if len(g.Preds) != 2 {
		t.Fatalf("predicates = %d, want 2", len(g.Preds))
	}
	if !g.Preds[1].Negate {
		t.Error("else predicate must be negated")
	}
	// Both pwrites of r are predicated with no alias.
	var pwrites []*Node
	for _, n := range g.AllNodes() {
		if n.Kind == KPWrite && n.Local == "r" {
			pwrites = append(pwrites, n)
		}
	}
	if len(pwrites) != 2 {
		t.Fatalf("pwrites of r = %d, want 2", len(pwrites))
	}
	for _, pw := range pwrites {
		if pw.Pred == nil {
			t.Error("pwrite in if-arm must be predicated")
		}
		if pw.AliasOf != nil {
			t.Error("predicated pwrite must not alias")
		}
	}
}

func TestBuildReadAfterPredicatedWrite(t *testing.T) {
	g := build(t, `
kernel k(in x, inout r) {
	v = x;
	if (x < 0) { v = 0 - x; }
	r = v + 1;
}`)
	// The IADD reading v must wait for both the base write and the
	// predicated write.
	var add *Node
	for _, n := range g.AllNodes() {
		if n.Kind == KOp && n.Op == arch.IADD {
			add = n
		}
	}
	if add == nil {
		t.Fatal("no IADD found")
	}
	writers := 0
	for _, p := range add.Prereqs {
		if p.Kind == KPWrite && p.Local == "v" {
			writers++
		}
	}
	if writers != 2 {
		t.Errorf("IADD waits for %d writers of v, want 2\n%s", writers, g)
	}
}

func TestBuildLoopRegion(t *testing.T) {
	g := build(t, `
kernel sum(array a, in n, inout s) {
	s = 0;
	for (i = 0; i < n; i = i + 1) {
		s = s + a[i];
	}
}`)
	seq, ok := g.Root, true
	if seq.Kind != RSeq {
		t.Fatalf("root kind = %v, want RSeq\n%s", seq.Kind, g)
	}
	var loop *Region
	for _, c := range seq.Children {
		if c.Kind == RLoop {
			loop = c
			ok = true
		}
	}
	if !ok || loop == nil {
		t.Fatalf("no loop region found\n%s", g)
	}
	if loop.Header == nil || loop.Header.Cond == nil {
		t.Fatal("loop header must carry the condition")
	}
	if loop.Header.Cond.NumLeaves() != 1 {
		t.Errorf("loop condition leaves = %d, want 1", loop.Header.Cond.NumLeaves())
	}
	if loop.Depth != 1 {
		t.Errorf("loop depth = %d, want 1", loop.Depth)
	}
	// Nodes in the body belong to the loop.
	for _, blk := range loop.Body.Blocks() {
		for _, n := range blk.Nodes {
			if n.Loop != loop {
				t.Errorf("body node %s not annotated with loop", n)
			}
		}
	}
	st := g.Stats()
	if st.Loops != 1 || st.MaxLoopDepth != 1 {
		t.Errorf("loops=%d depth=%d, want 1/1", st.Loops, st.MaxLoopDepth)
	}
	if st.DMALoads != 1 {
		t.Errorf("DMA loads = %d, want 1", st.DMALoads)
	}
}

func TestBuildNestedLoopDepth(t *testing.T) {
	g := build(t, `
kernel k(in n, inout s) {
	s = 0;
	for (i = 0; i < n; i = i + 1) {
		for (j = 0; j < n; j = j + 1) {
			s = s + 1;
		}
	}
}`)
	st := g.Stats()
	if st.Loops != 2 {
		t.Errorf("loops = %d, want 2", st.Loops)
	}
	if st.MaxLoopDepth != 2 {
		t.Errorf("max depth = %d, want 2", st.MaxLoopDepth)
	}
}

func TestBuildBranchedIf(t *testing.T) {
	// A conditional containing a loop must become an RIf region.
	g := build(t, `
kernel k(in n, in c, inout s) {
	s = 0;
	if (c > 0) {
		for (i = 0; i < n; i = i + 1) { s = s + i; }
	} else {
		s = 0 - 1;
	}
}`)
	found := false
	g.Root.Walk(func(r *Region) {
		if r.Kind == RIf {
			found = true
			if r.CondBlock == nil || r.CondBlock.Cond == nil {
				t.Error("RIf without condition block")
			}
			if r.Then == nil || r.Else == nil {
				t.Error("RIf arms missing")
			}
		}
	})
	if !found {
		t.Fatalf("no RIf region\n%s", g)
	}
	if g.Stats().BranchedIfs != 1 {
		t.Errorf("branched ifs = %d, want 1", g.Stats().BranchedIfs)
	}
}

func TestBuildBranchAllIfsOption(t *testing.T) {
	k := mustParse(t, `kernel k(in x, inout r) { if (x > 0) { r = 1; } else { r = 2; } }`)
	g, err := Build(k, BuildOptions{BranchAllIfs: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	g.Root.Walk(func(r *Region) {
		if r.Kind == RIf {
			found = true
		}
	})
	if !found {
		t.Error("BranchAllIfs did not produce an RIf")
	}
}

func TestBuildGuardedShortCircuitLoad(t *testing.T) {
	// The load on the right of && must carry a guard predicate.
	g := build(t, `
kernel k(array a, in i, in n, inout r) {
	r = 0;
	if (i < n && a[i] > 0) { r = 1; }
}`)
	var load *Node
	for _, n := range g.AllNodes() {
		if n.Kind == KOp && n.Op == arch.LOAD {
			load = n
		}
	}
	if load == nil {
		t.Fatal("no LOAD")
	}
	if load.Pred == nil {
		t.Error("guarded load must be predicated (short-circuit safety)")
	}
}

func TestBuildConditionAndLeaves(t *testing.T) {
	g := build(t, `
kernel k(in x, in y, inout r) {
	r = 0;
	while (x > 0 && y > 0) {
		x = x - 1;
		y = y - 1;
		r = r + 1;
	}
}`)
	var loop *Region
	g.Root.Walk(func(q *Region) {
		if q.Kind == RLoop {
			loop = q
		}
	})
	if loop == nil {
		t.Fatal("no loop")
	}
	c := loop.Header.Cond
	if c.Op != CondAnd {
		t.Fatalf("condition op = %v, want CondAnd (%s)", c.Op, c)
	}
	if c.NumLeaves() != 2 {
		t.Errorf("leaves = %d, want 2", c.NumLeaves())
	}
}

func TestBuildNegationDeMorgan(t *testing.T) {
	// !(x < 3 && y < 4)  ==>  x >= 3 || y >= 4 (negation at the leaves).
	g := build(t, `
kernel k(in x, in y, inout r) {
	r = 0;
	if (!(x < 3 && y < 4)) { r = 1; }
}`)
	if len(g.Preds) == 0 {
		t.Fatal("no predicates")
	}
	cond := g.Preds[len(g.Preds)-1].Cond
	// Find the if-predicate's condition: must be an Or of two compares
	// with flipped opcodes.
	var ifPred *Pred
	for _, p := range g.Preds {
		if p.Cond != nil && p.Cond.Op == CondOr {
			ifPred = p
		}
	}
	if ifPred == nil {
		t.Fatalf("no Or condition found (De Morgan should flip And), cond=%s\n%s", cond, g)
	}
	for _, leaf := range ifPred.Cond.Leaves(nil) {
		if leaf.Op != arch.IFGE {
			t.Errorf("leaf op = %v, want IFGE (negated IFLT)", leaf.Op)
		}
	}
}

func TestBuildBoolMaterialization(t *testing.T) {
	g := build(t, `kernel k(in x, in y, inout r) { r = x < y; }`)
	// Expect: pwrite $t 0; compare; pwrite $t 1 @pred; pwrite r.
	st := g.Stats()
	if st.Compares != 1 {
		t.Errorf("compares = %d, want 1", st.Compares)
	}
	var predicated *Node
	for _, n := range g.AllNodes() {
		if n.Kind == KPWrite && n.Pred != nil {
			predicated = n
		}
	}
	if predicated == nil {
		t.Fatalf("no predicated pwrite for bool materialization\n%s", g)
	}
	if predicated.Args[0].Kind != FromConst || predicated.Args[0].Const != 1 {
		t.Error("predicated write should commit constant 1")
	}
}

func TestBuildDeadPWriteRemoval(t *testing.T) {
	g := build(t, `kernel k(in x, inout r) { dead = x + 1; r = x; }`)
	for _, n := range g.AllNodes() {
		if n.Kind == KPWrite && n.Local == "dead" {
			t.Errorf("dead pwrite survived: %s", n)
		}
	}
}

func TestBuildWARWeakEdge(t *testing.T) {
	g := build(t, `kernel k(inout x, inout y) { y = x + 1; x = 7; }`)
	var pwX *Node
	var add *Node
	for _, n := range g.AllNodes() {
		if n.Kind == KPWrite && n.Local == "x" {
			pwX = n
		}
		if n.Kind == KOp && n.Op == arch.IADD {
			add = n
		}
	}
	if pwX == nil || add == nil {
		t.Fatalf("missing nodes\n%s", g)
	}
	found := false
	for _, w := range pwX.WeakPrereqs {
		if w == add {
			found = true
		}
	}
	if !found {
		t.Error("write of x must weakly order after the read of x (WAR)")
	}
}

func TestBuildWAWEdge(t *testing.T) {
	g := build(t, `kernel k(inout x) { x = 1; x = 2; }`)
	var pws []*Node
	for _, n := range g.AllNodes() {
		if n.Kind == KPWrite && n.Local == "x" {
			pws = append(pws, n)
		}
	}
	if len(pws) != 2 {
		t.Fatalf("pwrites = %d, want 2", len(pws))
	}
	found := false
	for _, p := range pws[1].Prereqs {
		if p == pws[0] {
			found = true
		}
	}
	if !found {
		t.Error("second write must strictly order after the first (WAW)")
	}
}

func TestBuildDMAOrdering(t *testing.T) {
	g := build(t, `
kernel k(array a, inout r) {
	a[0] = 1;
	r = a[0];
	a[1] = r;
}`)
	var store1, load, store2 *Node
	for _, n := range g.AllNodes() {
		if n.Kind != KOp {
			continue
		}
		switch {
		case n.Op == arch.STORE && store1 == nil:
			store1 = n
		case n.Op == arch.LOAD:
			load = n
		case n.Op == arch.STORE:
			store2 = n
		}
	}
	if store1 == nil || load == nil || store2 == nil {
		t.Fatalf("missing DMA nodes\n%s", g)
	}
	has := func(n, want *Node) bool {
		for _, p := range n.Prereqs {
			if p == want {
				return true
			}
		}
		return false
	}
	if !has(load, store1) {
		t.Error("load must order after preceding store")
	}
	if !has(store2, load) {
		t.Error("store must order after preceding load")
	}
}

func TestBuildStatsADPCMShape(t *testing.T) {
	// A miniature of the paper's Fig. 12 shape: outer loop, conditional
	// nested loop, conditionals in the body.
	g := build(t, `
kernel mini(array a, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) {
		v = a[i];
		if (v < 0) { v = 0 - v; }
		if (v > 100) {
			j = 0;
			while (j < 3) {
				v = v >> 1;
				j = j + 1;
			}
		}
		s = s + v;
		i = i + 1;
	}
}`)
	st := g.Stats()
	if st.Loops != 2 {
		t.Errorf("loops = %d, want 2", st.Loops)
	}
	if st.MaxLoopDepth != 2 {
		t.Errorf("depth = %d, want 2", st.MaxLoopDepth)
	}
	if st.BranchedIfs != 1 {
		t.Errorf("branched ifs = %d, want 1 (the one containing the loop)", st.BranchedIfs)
	}
	if st.Predicates == 0 || st.PredicatedOps == 0 {
		t.Error("expected predicated operations for the inline if")
	}
}

func TestBuildLiveInOutLists(t *testing.T) {
	g := build(t, `kernel k(in a, inout b, array m, in c) { b = a + c; m[0] = b; }`)
	ins := g.LiveIns()
	if strings.Join(ins, ",") != "a,b,c" {
		t.Errorf("live-ins = %v", ins)
	}
	outs := g.LiveOuts()
	if strings.Join(outs, ",") != "b" {
		t.Errorf("live-outs = %v", outs)
	}
	if g.ArrayID("m") != 0 || g.ArrayID("zz") != -1 {
		t.Error("ArrayID wrong")
	}
}

func TestBuildEmptyKernel(t *testing.T) {
	k := ir.NewKernel("empty", []ir.Param{ir.In("x")})
	g, err := Build(k, BuildOptions{})
	if err != nil {
		t.Fatalf("empty kernel: %v", err)
	}
	if len(g.AllNodes()) != 0 {
		t.Errorf("empty kernel has %d nodes", len(g.AllNodes()))
	}
}

func TestBuildStringSmoke(t *testing.T) {
	g := build(t, `
kernel k(in n, inout s) {
	s = 0;
	for (i = 0; i < n; i = i + 1) {
		if (i > 2) { s = s + i; }
	}
}`)
	out := g.String()
	for _, want := range []string{"cdfg k", "loop", "pwrite %s", "cond:"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestBuildValidateFails(t *testing.T) {
	k := ir.NewKernel("bad", []ir.Param{ir.InOut("r")}, ir.Set("r", ir.V("nope")))
	if _, err := Build(k, BuildOptions{}); err == nil {
		t.Error("expected validation error")
	}
}

func mustParse(t testing.TB, src string) *ir.Kernel {
	t.Helper()
	k, err := irtext.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return k
}
