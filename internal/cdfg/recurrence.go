// Recurrence-circuit enumeration for modulo scheduling. The recurrence-
// constrained minimum initiation interval (RecMII) of a loop body is the
// maximum over all elementary dependence circuits of ⌈delay/distance⌉:
// a loop-carried dependence chain whose total latency is `delay` and whose
// accumulated iteration distance is `distance` forces successive iterations
// at least delay/distance cycles apart (Rau's iterative modulo scheduling).
package cdfg

// RecEdge is one dependence arc of a loop body used for recurrence
// analysis. Dist is the iteration distance: 0 for a same-iteration
// dependence, 1 for a value carried into the next iteration through a
// local's home slot.
type RecEdge struct {
	From, To *Node
	Dist     int
}

// LoopDeps builds the dependence arcs of a single-block loop body:
//
//   - FromNode operands (same-iteration value flow, distance 0),
//   - FromLocal operands with a Version list (read waits for those pWRITEs
//     to commit, distance 0),
//   - FromLocal operands with an empty Version list naming a local the
//     block itself writes (the read sees the previous iteration's value:
//     distance 1 from every pWRITE of that local),
//   - Prereqs (strict finish-before-issue ordering, distance 0).
//
// WeakPrereqs (write-after-read) permit same-cycle issue and never bound
// the II from below, so they are omitted.
func LoopDeps(b *Block) []RecEdge {
	writers := map[string][]*Node{}
	for _, n := range b.Nodes {
		if n.Kind == KPWrite {
			writers[n.Local] = append(writers[n.Local], n)
		}
	}
	var edges []RecEdge
	for _, n := range b.Nodes {
		for _, a := range n.Args {
			switch a.Kind {
			case FromNode:
				edges = append(edges, RecEdge{From: a.Node, To: n, Dist: 0})
			case FromLocal:
				if len(a.Version) > 0 {
					for _, w := range a.Version {
						edges = append(edges, RecEdge{From: w, To: n, Dist: 0})
					}
				} else {
					for _, w := range writers[a.Local] {
						edges = append(edges, RecEdge{From: w, To: n, Dist: 1})
					}
				}
			}
		}
		for _, p := range n.Prereqs {
			edges = append(edges, RecEdge{From: p, To: n, Dist: 0})
		}
	}
	return edges
}

// Circuit is one elementary dependence circuit of a loop body.
type Circuit struct {
	// Nodes lists the circuit's nodes in dependence order (the edge from
	// the last node back to the first closes the circuit).
	Nodes []*Node
	// Delay is the sum of node latencies around the circuit.
	Delay int
	// Dist is the accumulated iteration distance (≥ 1: a same-iteration
	// dependence cycle would be unschedulable and cannot be built).
	Dist int
}

// MinII returns the initiation-interval lower bound ⌈Delay/Dist⌉ this
// circuit imposes.
func (c Circuit) MinII() int {
	if c.Dist <= 0 {
		return c.Delay
	}
	return (c.Delay + c.Dist - 1) / c.Dist
}

// maxCircuits caps enumeration; loop bodies small enough to pipeline stay
// far below it, and RecMII degrades gracefully (underestimates) past it.
const maxCircuits = 10000

// Recurrences enumerates the elementary dependence circuits of a
// single-block loop body. latency maps each node to its issue-to-result
// latency on the target composition (callers typically use the minimum
// duration over supporting PEs). Enumeration is capped at maxCircuits.
func Recurrences(b *Block, latency func(*Node) int) []Circuit {
	edges := LoopDeps(b)
	// Dense index per node, in block order (deterministic).
	idx := map[*Node]int{}
	for i, n := range b.Nodes {
		idx[n] = i
	}
	type arc struct{ to, dist int }
	adj := make([][]arc, len(b.Nodes))
	for _, e := range edges {
		f, okF := idx[e.From]
		t, okT := idx[e.To]
		if !okF || !okT {
			continue // dependence on a node outside the block: not loop-carried here
		}
		adj[f] = append(adj[f], arc{t, e.Dist})
	}

	var out []Circuit
	onPath := make([]bool, len(b.Nodes))
	var path []int
	var dists []int

	// Elementary circuits: root a DFS at each node s, restricted to nodes
	// with index ≥ s, and record circuits that close back at s. Rooting at
	// the minimum-index node of each circuit makes every elementary
	// circuit appear exactly once.
	var dfs func(s, u int)
	dfs = func(s, u int) {
		if len(out) >= maxCircuits {
			return
		}
		onPath[u] = true
		path = append(path, u)
		for _, a := range adj[u] {
			if a.to < s || len(out) >= maxCircuits {
				continue
			}
			if a.to == s {
				c := Circuit{Dist: a.dist}
				for i, v := range path {
					c.Nodes = append(c.Nodes, b.Nodes[v])
					c.Delay += latency(b.Nodes[v])
					if i > 0 {
						c.Dist += dists[i-1]
					}
				}
				// dists[i-1] is the distance of the edge into path[i];
				// a.dist closes the circuit.
				out = append(out, c)
				continue
			}
			if !onPath[a.to] {
				dists = append(dists, a.dist)
				dfs(s, a.to)
				dists = dists[:len(dists)-1]
			}
		}
		path = path[:len(path)-1]
		onPath[u] = false
	}
	for s := range b.Nodes {
		dfs(s, s)
	}
	return out
}

// RecMII returns the recurrence-constrained minimum initiation interval of
// a single-block loop body: the maximum MinII over its dependence circuits,
// and 1 when the body has no recurrence at all.
func RecMII(b *Block, latency func(*Node) int) int {
	mii := 1
	for _, c := range Recurrences(b, latency) {
		if m := c.MinII(); m > mii {
			mii = m
		}
	}
	return mii
}
