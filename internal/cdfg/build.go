package cdfg

import (
	"fmt"

	"cgra/internal/arch"
	"cgra/internal/ir"
)

// BuildOptions tunes graph construction.
type BuildOptions struct {
	// BranchAllIfs turns every conditional into a branched RIf region
	// instead of predicating dataflow-only conditionals. Used for
	// ablation studies; the paper's scheduler predicates whenever it can
	// (speculation increases parallelism, §V-B).
	BranchAllIfs bool
}

// Build compiles a kernel into its CDFG. The kernel is validated and For
// loops are lowered first.
func Build(k *ir.Kernel, opts BuildOptions) (*Graph, error) {
	if err := ir.Validate(k); err != nil {
		return nil, fmt.Errorf("cdfg: %v", err)
	}
	k = k.LowerFor()
	g := &Graph{
		KernelName: k.Name,
		Locals:     map[string]*Local{},
	}
	for _, p := range k.Params {
		switch p.Kind {
		case ir.ScalarIn:
			g.Locals[p.Name] = &Local{Name: p.Name, LiveIn: true}
		case ir.ScalarInOut:
			g.Locals[p.Name] = &Local{Name: p.Name, LiveIn: true, LiveOut: true}
		case ir.ArrayRef:
			g.Arrays = append(g.Arrays, p.Name)
		}
	}
	b := &builder{g: g, opts: opts, kernel: k}
	root, err := b.seq(k.Body)
	if err != nil {
		return nil, err
	}
	g.Root = root
	annotate(root, nil, 0)
	g.removeDeadPWrites()
	return g, nil
}

// annotate sets Parent, Depth and each node's innermost loop.
func annotate(r *Region, parent *Region, depth int) {
	if r == nil {
		return
	}
	r.Parent = parent
	r.Depth = depth
	loop := r.EnclosingLoop()
	mark := func(blk *Block) {
		for _, n := range blk.Nodes {
			n.Loop = loop
		}
	}
	switch r.Kind {
	case RBlock:
		mark(r.Block)
	case RSeq:
		for _, c := range r.Children {
			annotate(c, r, depth)
		}
	case RLoop:
		// The loop's own header belongs to the loop.
		r.Depth = depth + 1
		for _, n := range r.Header.Nodes {
			n.Loop = r
		}
		annotate(r.Body, r, depth+1)
	case RIf:
		mark(r.CondBlock)
		annotate(r.Then, r, depth)
		annotate(r.Else, r, depth)
	}
}

// removeDeadPWrites drops pWRITEs to locals that are never read and are not
// live-out. (The value computation itself is kept; only the commit
// vanishes.) References to removed nodes are scrubbed from the ordering
// edges and version lists of the surviving nodes — a dangling dependency on
// a node that will never be scheduled would deadlock the scheduler.
func (g *Graph) removeDeadPWrites() {
	read := map[string]bool{}
	for _, n := range g.AllNodes() {
		for _, a := range n.Args {
			if a.Kind == FromLocal {
				read[a.Local] = true
			}
		}
	}
	removed := map[*Node]bool{}
	for _, blk := range g.Root.Blocks() {
		kept := blk.Nodes[:0]
		for _, n := range blk.Nodes {
			if n.Kind == KPWrite && !read[n.Local] && (g.Locals[n.Local] == nil || !g.Locals[n.Local].LiveOut) {
				removed[n] = true
				continue
			}
			kept = append(kept, n)
		}
		blk.Nodes = kept
	}
	if len(removed) == 0 {
		return
	}
	strip := func(list []*Node) []*Node {
		kept := list[:0]
		for _, n := range list {
			if !removed[n] {
				kept = append(kept, n)
			}
		}
		return kept
	}
	for _, n := range g.AllNodes() {
		n.Prereqs = strip(n.Prereqs)
		n.WeakPrereqs = strip(n.WeakPrereqs)
		for i := range n.Args {
			if n.Args[i].Kind == FromLocal {
				n.Args[i].Version = strip(n.Args[i].Version)
			}
		}
	}
}

type builder struct {
	g      *Graph
	opts   BuildOptions
	kernel *ir.Kernel

	blk  *Block
	pred *Pred
	// defs maps a local to the pending pWRITEs a subsequent reader in
	// this block must wait for.
	defs map[string][]*Node
	// readers maps a local to the consumers that have read it since the
	// last pWRITE (write-after-read ordering).
	readers map[string][]*Node
	// lastStore and loadsSince order DMA accesses per array.
	lastStore  map[int]*Node
	loadsSince map[int][]*Node

	tempSeq int
}

func (b *builder) openBlock() {
	b.blk = &Block{ID: b.g.nextBlock}
	b.g.nextBlock++
	b.pred = nil
	b.defs = map[string][]*Node{}
	b.readers = map[string][]*Node{}
	b.lastStore = map[int]*Node{}
	b.loadsSince = map[int][]*Node{}
}

// closeBlock wraps the current block into an RBlock region; empty blocks
// yield nil.
func (b *builder) closeBlock() *Region {
	blk := b.blk
	b.blk = nil
	if blk == nil || len(blk.Nodes) == 0 {
		return nil
	}
	r := &Region{ID: b.g.nextRegion, Kind: RBlock, Block: blk}
	b.g.nextRegion++
	return r
}

// closeBlockRaw returns the current (possibly empty) block itself, for loop
// headers and branch condition blocks.
func (b *builder) closeBlockRaw() *Block {
	blk := b.blk
	b.blk = nil
	return blk
}

func (b *builder) newRegion(kind RegionKind) *Region {
	r := &Region{ID: b.g.nextRegion, Kind: kind}
	b.g.nextRegion++
	return r
}

func (b *builder) newNode(kind Kind, op arch.OpCode, args ...Operand) *Node {
	n := &Node{ID: b.g.nextNode, Kind: kind, Op: op, Args: args, Pred: b.pred}
	b.g.nextNode++
	for _, a := range args {
		if a.Kind == FromLocal {
			// Read-after-write: wait for the pending writers.
			n.Prereqs = append(n.Prereqs, a.Version...)
			// Register for write-after-read ordering.
			b.readers[a.Local] = append(b.readers[a.Local], n)
		}
	}
	b.blk.Nodes = append(b.blk.Nodes, n)
	return n
}

func (b *builder) newPred(parent *Pred, cond *CondExpr, negate bool) *Pred {
	p := &Pred{ID: len(b.g.Preds), Parent: parent, Cond: cond, Negate: negate}
	b.g.Preds = append(b.g.Preds, p)
	return p
}

func (b *builder) localOperand(name string) Operand {
	if _, ok := b.g.Locals[name]; !ok {
		b.g.Locals[name] = &Local{Name: name}
	}
	return Operand{
		Kind:    FromLocal,
		Local:   name,
		Version: append([]*Node(nil), b.defs[name]...),
	}
}

func (b *builder) tempName() string {
	b.tempSeq++
	return fmt.Sprintf("$t%d", b.tempSeq)
}

// seq compiles a statement list into a region.
func (b *builder) seq(stmts []ir.Stmt) (*Region, error) {
	var children []*Region
	b.openBlock()
	flush := func() {
		if r := b.closeBlock(); r != nil {
			children = append(children, r)
		}
		b.openBlock()
	}
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.Assign:
			if _, err := b.assign(s.Name, s.Value); err != nil {
				return nil, err
			}
		case *ir.Store:
			if err := b.store(s); err != nil {
				return nil, err
			}
		case *ir.If:
			if b.opts.BranchAllIfs || containsLoop(s.Then) || containsLoop(s.Else) {
				flush()
				r, err := b.branchedIf(s)
				if err != nil {
					return nil, err
				}
				children = append(children, r)
				b.openBlock()
			} else if err := b.inlineIf(s); err != nil {
				return nil, err
			}
		case *ir.While:
			flush()
			r, err := b.loop(s)
			if err != nil {
				return nil, err
			}
			children = append(children, r)
			b.openBlock()
		default:
			return nil, fmt.Errorf("cdfg: unsupported statement %T", s)
		}
	}
	if r := b.closeBlock(); r != nil {
		children = append(children, r)
	}
	switch len(children) {
	case 0:
		// An empty region: represent as an empty block.
		b.openBlock()
		blk := b.closeBlockRaw()
		r := b.newRegion(RBlock)
		r.Block = blk
		return r, nil
	case 1:
		return children[0], nil
	default:
		r := b.newRegion(RSeq)
		r.Children = children
		return r, nil
	}
}

func containsLoop(stmts []ir.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.While, *ir.For:
			return true
		case *ir.If:
			if containsLoop(s.Then) || containsLoop(s.Else) {
				return true
			}
		}
	}
	return false
}

// assign compiles name = value into a pWRITE and returns the pWRITE node.
func (b *builder) assign(name string, value ir.Expr) (*Node, error) {
	if b.kernel.IsArray(name) {
		return nil, fmt.Errorf("cdfg: cannot assign to array %q", name)
	}
	val, err := b.expr(value)
	if err != nil {
		return nil, err
	}
	return b.pwrite(name, val), nil
}

// pwrite emits a predicated write of val into the named local under the
// current path predicate.
func (b *builder) pwrite(name string, val Operand) *Node {
	if _, ok := b.g.Locals[name]; !ok {
		b.g.Locals[name] = &Local{Name: name}
	}
	n := b.newNode(KPWrite, arch.MOVE, val)
	n.Local = name
	// Write-after-write: all pending writers commit first.
	n.Prereqs = append(n.Prereqs, b.defs[name]...)
	// Write-after-read: earlier readers may still share the commit cycle.
	// A self-assignment (x = x) registers the write as a reader of its
	// own target; that edge must not become a self-dependency.
	for _, r := range b.readers[name] {
		if r != n {
			n.WeakPrereqs = append(n.WeakPrereqs, r)
		}
	}
	b.readers[name] = nil
	b.defs[name] = []*Node{n}
	if n.Pred == nil && val.Kind == FromNode {
		n.AliasOf = val.Node
	}
	return n
}

func (b *builder) store(s *ir.Store) error {
	arr := b.g.ArrayID(s.Array)
	if arr < 0 {
		return fmt.Errorf("cdfg: store to unknown array %q", s.Array)
	}
	idx, err := b.expr(s.Index)
	if err != nil {
		return err
	}
	val, err := b.expr(s.Value)
	if err != nil {
		return err
	}
	n := b.newNode(KOp, arch.STORE, idx, val)
	n.Array = arr
	n.Prereqs = appendNode(n.Prereqs, b.lastStore[arr])
	n.Prereqs = append(n.Prereqs, b.loadsSince[arr]...)
	b.lastStore[arr] = n
	b.loadsSince[arr] = nil
	return nil
}

// expr compiles an expression to an operand.
func (b *builder) expr(e ir.Expr) (Operand, error) {
	switch e := e.(type) {
	case *ir.Const:
		return Operand{Kind: FromConst, Const: e.Value}, nil
	case *ir.VarRef:
		return b.localOperand(e.Name), nil
	case *ir.Load:
		arr := b.g.ArrayID(e.Array)
		if arr < 0 {
			return Operand{}, fmt.Errorf("cdfg: load from unknown array %q", e.Array)
		}
		idx, err := b.expr(e.Index)
		if err != nil {
			return Operand{}, err
		}
		n := b.newNode(KOp, arch.LOAD, idx)
		n.Array = arr
		n.Prereqs = appendNode(n.Prereqs, b.lastStore[arr])
		b.loadsSince[arr] = append(b.loadsSince[arr], n)
		return Operand{Kind: FromNode, Node: n}, nil
	case *ir.Un:
		switch e.Op {
		case ir.OpNeg:
			x, err := b.expr(e.X)
			if err != nil {
				return Operand{}, err
			}
			return Operand{Kind: FromNode, Node: b.newNode(KOp, arch.INEG, x)}, nil
		case ir.OpNot:
			x, err := b.expr(e.X)
			if err != nil {
				return Operand{}, err
			}
			return Operand{Kind: FromNode, Node: b.newNode(KOp, arch.INOT, x)}, nil
		case ir.OpLNot:
			return b.materializeBool(e)
		default:
			return Operand{}, fmt.Errorf("cdfg: unknown unary op %v", e.Op)
		}
	case *ir.Bin:
		if e.Op.IsCompare() || e.Op.IsLogical() {
			return b.materializeBool(e)
		}
		op, ok := binToArch[e.Op]
		if !ok {
			return Operand{}, fmt.Errorf("cdfg: unsupported binary op %v", e.Op)
		}
		x, err := b.expr(e.X)
		if err != nil {
			return Operand{}, err
		}
		y, err := b.expr(e.Y)
		if err != nil {
			return Operand{}, err
		}
		return Operand{Kind: FromNode, Node: b.newNode(KOp, op, x, y)}, nil
	default:
		return Operand{}, fmt.Errorf("cdfg: unknown expression type %T", e)
	}
}

var binToArch = map[ir.BinOp]arch.OpCode{
	ir.OpAdd: arch.IADD, ir.OpSub: arch.ISUB, ir.OpMul: arch.IMUL,
	ir.OpAnd: arch.IAND, ir.OpOr: arch.IOR, ir.OpXor: arch.IXOR,
	ir.OpShl: arch.ISHL, ir.OpShr: arch.ISHR, ir.OpShrU: arch.IUSHR,
}

var cmpToArch = map[ir.BinOp]arch.OpCode{
	ir.OpLt: arch.IFLT, ir.OpLe: arch.IFLE, ir.OpGt: arch.IFGT,
	ir.OpGe: arch.IFGE, ir.OpEq: arch.IFEQ, ir.OpNe: arch.IFNE,
}

var cmpNegate = map[ir.BinOp]ir.BinOp{
	ir.OpLt: ir.OpGe, ir.OpGe: ir.OpLt,
	ir.OpLe: ir.OpGt, ir.OpGt: ir.OpLe,
	ir.OpEq: ir.OpNe, ir.OpNe: ir.OpEq,
}

// materializeBool lowers a boolean expression in value context: the result
// slot is seeded with 0 and a predicated write commits 1 when the condition
// holds. The machine has no compare-to-register operation — compare results
// are status bits routed to the C-Box (§IV-A1) — so booleans-as-values go
// through a predicate exactly like a tiny if/else.
func (b *builder) materializeBool(e ir.Expr) (Operand, error) {
	name := b.tempName()
	zero := b.pwrite(name, Operand{Kind: FromConst, Const: 0})
	cond, err := b.cond(e, false)
	if err != nil {
		return Operand{}, err
	}
	p := b.newPred(b.pred, cond, false)
	saved := b.pred
	b.pred = p
	one := b.pwrite(name, Operand{Kind: FromConst, Const: 1})
	b.pred = saved
	_ = zero
	return Operand{
		Kind:    FromLocal,
		Local:   name,
		Version: append([]*Node(nil), one),
	}, nil
}

// cond compiles a branch/loop condition into a CondExpr over compare nodes.
// neg requests the negated condition; negation is pushed to the leaves with
// De Morgan so the C-Box never needs a distinct NOT pass. Memory loads on
// the right-hand side of && and || are guarded with a predicate so
// short-circuit semantics cannot fault (DMA is always predicated, §V-D).
func (b *builder) cond(e ir.Expr, neg bool) (*CondExpr, error) {
	switch e := e.(type) {
	case *ir.Bin:
		switch {
		case e.Op.IsCompare():
			op := e.Op
			if neg {
				op = cmpNegate[op]
			}
			x, err := b.expr(e.X)
			if err != nil {
				return nil, err
			}
			y, err := b.expr(e.Y)
			if err != nil {
				return nil, err
			}
			n := b.newNode(KOp, cmpToArch[op], x, y)
			return &CondExpr{Op: CondLeaf, Cmp: n}, nil
		case e.Op.IsLogical():
			// a && b  -> And(a, b), b guarded under a
			// a || b  -> Or(a, b),  b guarded under !a
			// Negations swap the connective (De Morgan).
			isAnd := e.Op == ir.OpLAnd
			cx, err := b.cond(e.X, neg)
			if err != nil {
				return nil, err
			}
			// Guard predicate for evaluating the right-hand side:
			// for &&, b only evaluates when a is true; for ||, when
			// a is false. cx already includes any outer negation, so
			// recover the guard polarity relative to cx.
			guardNeg := !isAnd // || evaluates b when a false
			if neg {
				// cx is the negation of a; the guard polarity
				// must still track the original a.
				guardNeg = !guardNeg
			}
			guard := b.newPred(b.pred, cx, guardNeg)
			saved := b.pred
			b.pred = guard
			cy, err := b.cond(e.Y, neg)
			b.pred = saved
			if err != nil {
				return nil, err
			}
			op := CondAnd
			if isAnd != !neg { // And stays And unless negated
				op = CondOr
			}
			return &CondExpr{Op: op, X: cx, Y: cy}, nil
		default:
			// Truthiness of an arithmetic expression: expr != 0.
			return b.truthiness(e, neg)
		}
	case *ir.Un:
		if e.Op == ir.OpLNot {
			return b.cond(e.X, !neg)
		}
		return b.truthiness(e, neg)
	default:
		return b.truthiness(e, neg)
	}
}

func (b *builder) truthiness(e ir.Expr, neg bool) (*CondExpr, error) {
	x, err := b.expr(e)
	if err != nil {
		return nil, err
	}
	op := arch.IFNE
	if neg {
		op = arch.IFEQ
	}
	n := b.newNode(KOp, op, x, Operand{Kind: FromConst, Const: 0})
	return &CondExpr{Op: CondLeaf, Cmp: n}, nil
}

// inlineIf predicates a dataflow-only conditional into the current block.
func (b *builder) inlineIf(s *ir.If) error {
	cond, err := b.cond(s.Cond, false)
	if err != nil {
		return err
	}
	savedPred := b.pred
	baseDefs := copyDefs(b.defs)

	pThen := b.newPred(savedPred, cond, false)
	b.pred = pThen
	if err := b.inlineStmts(s.Then); err != nil {
		return err
	}
	thenDefs := b.defs
	b.defs = copyDefs(baseDefs)

	var elseDefs map[string][]*Node
	if len(s.Else) > 0 {
		pElse := b.newPred(savedPred, cond, true)
		b.pred = pElse
		if err := b.inlineStmts(s.Else); err != nil {
			return err
		}
		elseDefs = b.defs
		b.defs = copyDefs(baseDefs)
	}
	b.pred = savedPred

	// Join: subsequent readers must wait for every writer of either arm.
	merged := copyDefs(baseDefs)
	mergeDefs(merged, thenDefs, baseDefs)
	mergeDefs(merged, elseDefs, baseDefs)
	b.defs = merged
	return nil
}

// inlineStmts compiles statements that are guaranteed loop-free into the
// current block under the current predicate.
func (b *builder) inlineStmts(stmts []ir.Stmt) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.Assign:
			if _, err := b.assign(s.Name, s.Value); err != nil {
				return err
			}
		case *ir.Store:
			if err := b.store(s); err != nil {
				return err
			}
		case *ir.If:
			if err := b.inlineIf(s); err != nil {
				return err
			}
		default:
			return fmt.Errorf("cdfg: statement %T cannot be predicated (internal error)", s)
		}
	}
	return nil
}

// branchedIf builds an RIf region for conditionals containing loops.
func (b *builder) branchedIf(s *ir.If) (*Region, error) {
	b.openBlock()
	cond, err := b.cond(s.Cond, false)
	if err != nil {
		return nil, err
	}
	b.blk.Cond = cond
	condBlock := b.closeBlockRaw()

	thenR, err := b.seq(s.Then)
	if err != nil {
		return nil, err
	}
	var elseR *Region
	if len(s.Else) > 0 {
		elseR, err = b.seq(s.Else)
		if err != nil {
			return nil, err
		}
	}
	r := b.newRegion(RIf)
	r.CondBlock = condBlock
	r.Then = thenR
	r.Else = elseR
	return r, nil
}

// loop builds an RLoop region for a while loop.
func (b *builder) loop(s *ir.While) (*Region, error) {
	b.openBlock()
	cond, err := b.cond(s.Cond, false)
	if err != nil {
		return nil, err
	}
	b.blk.Cond = cond
	header := b.closeBlockRaw()

	body, err := b.seq(s.Body)
	if err != nil {
		return nil, err
	}
	r := b.newRegion(RLoop)
	r.Header = header
	r.Body = body
	return r, nil
}

func copyDefs(m map[string][]*Node) map[string][]*Node {
	c := make(map[string][]*Node, len(m))
	for k, v := range m {
		c[k] = append([]*Node(nil), v...)
	}
	return c
}

// mergeDefs adds the writers that arm introduced over base into dst.
func mergeDefs(dst, arm, base map[string][]*Node) {
	if arm == nil {
		return
	}
	for name, writers := range arm {
		baseSet := map[*Node]bool{}
		for _, w := range base[name] {
			baseSet[w] = true
		}
		for _, w := range writers {
			if !baseSet[w] {
				dst[name] = append(dst[name], w)
			}
		}
	}
}

func appendNode(dst []*Node, n *Node) []*Node {
	if n == nil {
		return dst
	}
	return append(dst, n)
}
