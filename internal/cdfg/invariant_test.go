package cdfg

import (
	"testing"

	"cgra/internal/kgen"
)

// TestGraphInvariantsOnRandomKernels checks structural invariants of the
// CDFG builder over the fuzzer's kernel distribution:
//
//  1. block node lists are topologically ordered w.r.t. data and ordering
//     edges (the scheduler's priority sweep relies on this),
//  2. FromNode operands reference nodes of the same block,
//  3. predicates of a block's nodes only reference condition leaves of the
//     same block,
//  4. every loop region has a header condition; loop depths are
//     consistent with nesting.
func TestGraphInvariantsOnRandomKernels(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		gk := kgen.New(seed, kgen.Config{MaxDepth: 3})
		g, err := Build(gk.Kernel, BuildOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkInvariants(t, seed, g)
		// Branch-all variant too.
		g2, err := Build(gk.Kernel, BuildOptions{BranchAllIfs: true})
		if err != nil {
			t.Fatalf("seed %d (branched): %v", seed, err)
		}
		checkInvariants(t, seed, g2)
	}
}

func checkInvariants(t *testing.T, seed int64, g *Graph) {
	t.Helper()
	for _, blk := range g.Root.Blocks() {
		pos := map[*Node]int{}
		for i, n := range blk.Nodes {
			pos[n] = i
		}
		for i, n := range blk.Nodes {
			for _, a := range n.Args {
				if a.Kind != FromNode {
					continue
				}
				j, same := pos[a.Node]
				if !same {
					t.Fatalf("seed %d: node n%d consumes n%d from another block",
						seed, n.ID, a.Node.ID)
				}
				if j >= i {
					t.Fatalf("seed %d: node n%d consumes later node n%d", seed, n.ID, a.Node.ID)
				}
			}
			for _, d := range n.Prereqs {
				if j, same := pos[d]; same && j >= i {
					t.Fatalf("seed %d: prereq n%d not before n%d", seed, d.ID, n.ID)
				}
			}
			for _, d := range n.WeakPrereqs {
				if j, same := pos[d]; same && j > i {
					t.Fatalf("seed %d: weak prereq n%d after n%d", seed, d.ID, n.ID)
				}
				if d == n {
					t.Fatalf("seed %d: self weak dependency on n%d", seed, n.ID)
				}
			}
			if n.Pred != nil {
				for _, leaf := range collectLeaves(n.Pred) {
					if _, same := pos[leaf]; !same {
						t.Fatalf("seed %d: predicate of n%d references compare n%d outside the block",
							seed, n.ID, leaf.ID)
					}
				}
			}
		}
	}
	g.Root.Walk(func(r *Region) {
		if r.Kind == RLoop {
			if r.Header == nil || r.Header.Cond == nil {
				t.Fatalf("seed %d: loop region %d without header condition", seed, r.ID)
			}
			if r.Body != nil && r.Body.Depth != r.Depth {
				t.Fatalf("seed %d: loop %d body depth %d != loop depth %d",
					seed, r.ID, r.Body.Depth, r.Depth)
			}
			if r.Parent != nil {
				outer := r.Parent.EnclosingLoop()
				if outer != nil && r.Depth != outer.Depth+1 {
					t.Fatalf("seed %d: loop %d depth %d under loop of depth %d",
						seed, r.ID, r.Depth, outer.Depth)
				}
			}
		}
	})
}

func collectLeaves(p *Pred) []*Node {
	var out []*Node
	for q := p; q != nil; q = q.Parent {
		out = q.Cond.Leaves(out)
	}
	return out
}
