package alloc

import (
	"testing"
	"testing/quick"

	"cgra/internal/arch"
	"cgra/internal/cdfg"
	"cgra/internal/ir"
	"cgra/internal/irtext"
	"cgra/internal/sched"
)

func scheduleKernel(t *testing.T, src string, comp *arch.Composition) *sched.Schedule {
	t.Helper()
	k := mustParse(t, src)
	g, err := cdfg.Build(k, cdfg.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Run(g, comp, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mesh(t *testing.T, n int) *arch.Composition {
	t.Helper()
	c, err := arch.HomogeneousMesh(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAllocateAssignsEverything(t *testing.T) {
	s := scheduleKernel(t, `
kernel k(array a, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) {
		v = a[i];
		if (v > 0) { s = s + v; }
		i = i + 1;
	}
}`, mesh(t, 4))
	res, err := Allocate(s)
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	for _, v := range s.Values {
		if v.Addr < 0 {
			t.Errorf("value r%d unassigned", v.ID)
		}
		if v.Addr >= s.Comp.PEs[v.PE].RegfileSize {
			t.Errorf("value r%d address %d exceeds RF size", v.ID, v.Addr)
		}
	}
	for _, sl := range s.Slots {
		if len(sl.Writes) > 0 && sl.Phys < 0 {
			t.Errorf("slot s%d unassigned", sl.ID)
		}
	}
	if res.MaxRF() == 0 {
		t.Error("MaxRF = 0")
	}
	if res.CBoxUsage == 0 {
		t.Error("no C-Box slots used despite conditions")
	}
}

// TestAllocateNoOverlap verifies the left-edge invariant: two values sharing
// a register on the same PE must have disjoint (extended) lifetimes.
func TestAllocateNoOverlap(t *testing.T) {
	s := scheduleKernel(t, `
kernel k(array a, in n, inout s, inout m) {
	s = 0;
	m = 0;
	i = 0;
	while (i < n) {
		v = a[i];
		w = v * 3 + 1;
		x = w - v;
		if (x > m) { m = x; }
		s = s + w;
		i = i + 1;
	}
}`, mesh(t, 6))
	if _, err := Allocate(s); err != nil {
		t.Fatal(err)
	}
	lifetime := func(v *sched.Value) (int, int) {
		if v.Pinned {
			return -1, s.Length
		}
		return v.Def, extendUses(v.Def, v.Uses, s.LoopRanges)
	}
	byReg := map[[2]int][]*sched.Value{}
	for _, v := range s.Values {
		key := [2]int{v.PE, v.Addr}
		byReg[key] = append(byReg[key], v)
	}
	for key, vals := range byReg {
		for i := 0; i < len(vals); i++ {
			for j := i + 1; j < len(vals); j++ {
				s1, e1 := lifetime(vals[i])
				s2, e2 := lifetime(vals[j])
				// Overlap if neither ends at/before the other's start.
				if !(e1 <= s2 || e2 <= s1) {
					t.Errorf("PE %d reg %d: values r%d [%d,%d] and r%d [%d,%d] overlap",
						key[0], key[1], vals[i].ID, s1, e1, vals[j].ID, s2, e2)
				}
			}
		}
	}
}

func TestAllocateRejectsTinyRF(t *testing.T) {
	comp, err := arch.Mesh(arch.MeshOptions{Rows: 2, Cols: 2, RFSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	k := mustParse(t, `
kernel k(in a, in b, in c, in d, inout r) {
	r = (a + b) * (c + d) + (a - b) * (c - d) + a * d;
}`)
	g, err := cdfg.Build(k, cdfg.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Run(g, comp, sched.Options{})
	if err != nil {
		t.Fatal(err) // scheduling itself does not track RF pressure
	}
	if _, err := Allocate(s); err == nil {
		t.Error("allocation into a 2-entry RF should fail")
	}
}

func TestExtendUses(t *testing.T) {
	loops := [][2]int{{10, 20}, {5, 30}} // inner, outer
	cases := []struct {
		def  int
		uses []int
		want int
	}{
		{0, []int{3}, 3},          // no loop involvement
		{0, []int{12}, 30},        // reaches into inner -> extends to inner end, then outer
		{11, []int{12}, 12},       // defined and used inside: no extension
		{6, []int{12}, 20},        // defined in outer, used in inner: extend to inner end
		{0, nil, 0},               // dead value
		{25, []int{26, 28}, 28},   // inside outer only, def also inside
		{0, []int{3, 12, 25}, 30}, // multiple uses, worst case wins
	}
	for _, c := range cases {
		if got := extendUses(c.def, c.uses, loops); got != c.want {
			t.Errorf("extendUses(%d, %v) = %d, want %d", c.def, c.uses, got, c.want)
		}
	}
}

func TestLeftEdgeProperty(t *testing.T) {
	// Property: left-edge never assigns overlapping intervals to one
	// register and uses at most as many registers as the max overlap
	// depth (it is optimal for interval graphs).
	prop := func(seed []uint8) bool {
		if len(seed) == 0 {
			return true
		}
		if len(seed) > 40 {
			seed = seed[:40]
		}
		type iv struct{ s, e, reg int }
		ivs := make([]iv, len(seed))
		intervals := make([]interval, len(seed))
		for i, b := range seed {
			start := int(b % 50)
			end := start + int(b/8)%20
			ivs[i] = iv{s: start, e: end}
			idx := i
			intervals[i] = interval{start: start, end: end,
				assign: func(r int) { ivs[idx].reg = r }}
		}
		used := leftEdge(intervals)
		// No overlap within a register.
		byReg := map[int][]iv{}
		for _, v := range ivs {
			byReg[v.reg] = append(byReg[v.reg], v)
		}
		for _, group := range byReg {
			for i := 0; i < len(group); i++ {
				for j := i + 1; j < len(group); j++ {
					a, b := group[i], group[j]
					if !(a.e <= b.s || b.e <= a.s) {
						return false
					}
				}
			}
		}
		return used >= 1 && used <= len(ivs)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocateAllWorkloadCompositions(t *testing.T) {
	// Table I inputs must allocate on every evaluated composition.
	src := `
kernel k(array a, in n, inout s) {
	s = 0;
	i = 0;
	while (i < n) {
		v = a[i];
		if (v > 8) {
			j = 0;
			while (j < 2) { v = v >> 1; j = j + 1; }
		}
		s = s + v;
		i = i + 1;
	}
}`
	all, err := arch.EvaluatedCompositions(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range all {
		s := scheduleKernel(t, src, comp)
		res, err := Allocate(s)
		if err != nil {
			t.Errorf("%s: %v", comp.Name, err)
			continue
		}
		if res.CBoxUsage > comp.CBoxSlots {
			t.Errorf("%s: C-Box overflow", comp.Name)
		}
	}
}

func mustParse(t testing.TB, src string) *ir.Kernel {
	t.Helper()
	k, err := irtext.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return k
}
