// Package alloc assigns physical register-file entries and C-Box
// condition-memory slots to a schedule using the left-edge algorithm
// (paper §V-I). Lifetimes honour loops: a value defined before a loop and
// read inside it stays live until the end of that loop, because every
// iteration re-reads it; the same rule applies to condition bits.
package alloc

import (
	"fmt"
	"sort"

	"cgra/internal/sched"
)

// Result summarizes an allocation.
type Result struct {
	// RFUsage is the number of RF entries used per PE; the paper's
	// "Max. RF entries" (Table I) is the maximum over PEs.
	RFUsage []int
	// CBoxUsage is the number of physical condition-memory slots used.
	CBoxUsage int
}

// MaxRF returns the largest per-PE RF usage.
func (r *Result) MaxRF() int {
	m := 0
	for _, u := range r.RFUsage {
		if u > m {
			m = u
		}
	}
	return m
}

type interval struct {
	start, end int
	assign     func(addr int)
}

// Allocate assigns addresses in place (Value.Addr, Slot.Phys) and verifies
// the composition's RF and condition-memory capacities.
func Allocate(s *sched.Schedule) (*Result, error) {
	res := &Result{RFUsage: make([]int, s.Comp.NumPEs())}

	// Register files, one left-edge pass per PE.
	perPE := make([][]interval, s.Comp.NumPEs())
	for _, v := range s.Values {
		v := v
		var iv interval
		if v.Pinned {
			// Home slots and constants live for the whole run.
			iv = interval{start: -1, end: s.Length}
		} else {
			end := extendUses(v.Def, v.Uses, s.LoopRanges)
			iv = interval{start: v.Def, end: end}
		}
		iv.assign = func(addr int) { v.Addr = addr }
		perPE[v.PE] = append(perPE[v.PE], iv)
	}
	for pe, ivs := range perPE {
		used := leftEdge(ivs)
		res.RFUsage[pe] = used
		if used > s.Comp.PEs[pe].RegfileSize {
			return nil, fmt.Errorf("alloc: PE %d needs %d RF entries, has %d",
				pe, used, s.Comp.PEs[pe].RegfileSize)
		}
	}

	// C-Box condition memory.
	var slotIvs []interval
	for _, sl := range s.Slots {
		sl := sl
		if len(sl.Writes) == 0 {
			// A planned but never computed slot (dead condition):
			// no physical space needed.
			sl.Phys = 0
			continue
		}
		start := sl.Writes[0]
		for _, w := range sl.Writes {
			if w < start {
				start = w
			}
		}
		end := extendUses(start, append(append([]int(nil), sl.Uses...), sl.Writes...), s.LoopRanges)
		slotIvs = append(slotIvs, interval{
			start: start, end: end,
			assign: func(addr int) { sl.Phys = addr },
		})
	}
	res.CBoxUsage = leftEdge(slotIvs)
	if res.CBoxUsage > s.Comp.CBoxSlots {
		return nil, fmt.Errorf("alloc: schedule needs %d C-Box slots, composition has %d",
			res.CBoxUsage, s.Comp.CBoxSlots)
	}
	return res, nil
}

// extendUses computes the lifetime end of a value defined at def with the
// given use cycles, extending uses inside loops the definition precedes to
// the loop end (iterating to a fixed point for nested loops).
func extendUses(def int, uses []int, loops [][2]int) int {
	end := def
	for _, u := range uses {
		if u > end {
			end = u
		}
	}
	for changed := true; changed; {
		changed = false
		for _, lr := range loops {
			// A lifetime reaching into a loop the definition
			// precedes must survive the whole loop.
			if def < lr[0] && end >= lr[0] && end < lr[1] {
				end = lr[1]
				changed = true
			}
		}
	}
	return end
}

// leftEdge performs the classic left-edge interval assignment and returns
// the number of registers used. An entry whose last read is at cycle t may
// be overwritten by a value defined at t: reads see the register state from
// before the end-of-cycle write.
func leftEdge(ivs []interval) int {
	sort.SliceStable(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].end < ivs[j].end
	})
	var regEnd []int // last occupied cycle per register
	for _, iv := range ivs {
		placed := false
		for r := range regEnd {
			if regEnd[r] <= iv.start {
				regEnd[r] = iv.end
				iv.assign(r)
				placed = true
				break
			}
		}
		if !placed {
			regEnd = append(regEnd, iv.end)
			iv.assign(len(regEnd) - 1)
		}
	}
	return len(regEnd)
}
