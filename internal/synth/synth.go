// Package synth estimates FPGA synthesis results for CGRA compositions on
// the paper's target device, a Xilinx Virtex-7 XC7VX690T.
//
// Substitution note (see DESIGN.md §2): the paper obtains frequency and
// utilization from Vivado synthesis of the generated Verilog. Running
// Vivado is out of scope here, so this package provides an analytic model
// calibrated against the paper's Table II: LUT utilization grows linearly
// with the PE count, LUT-RAM with the register files, DSP blocks with the
// number of multiplier-capable PEs (3 DSP48 slices per block multiplier),
// one BRAM-equivalent context memory per PE plus one for C-Box/CCU, and a
// clock frequency that degrades with array size, input multiplexer fan-in
// and register-file depth. The model reproduces the paper's numbers within
// a few percent and — more importantly — their *shape*: linear utilization
// growth, frequency droop with PE count, the 75 % DSP saving of the
// inhomogeneous composition F, and the slowdown of wide register files.
package synth

import (
	"math"

	"cgra/internal/arch"
)

// Virtex-7 XC7VX690T resource totals.
const (
	DeviceLUTs   = 433200
	DeviceLUTRAM = 174200
	DeviceDSPs   = 3600
	DeviceBRAMs  = 1470
)

// Report is the estimated synthesis result for one composition.
type Report struct {
	Composition string
	// FreqMHz is the estimated maximum clock frequency.
	FreqMHz float64
	// LUTLogicPct, LUTMemPct, DSPPct, BRAMPct are device utilizations in
	// percent, matching the rows of Table II.
	LUTLogicPct float64
	LUTMemPct   float64
	DSPPct      float64
	BRAMPct     float64
	// DSPs and BRAMs are the absolute block counts behind the
	// percentages.
	DSPs  int
	BRAMs int
}

// ExecutionTimeMS converts a cycle count to milliseconds at the estimated
// frequency (Table IV).
func (r *Report) ExecutionTimeMS(cycles int64) float64 {
	return float64(cycles) / (r.FreqMHz * 1000.0)
}

// perPE LUT model: a PE frame (RF addressing, operand muxes, result paths)
// plus per-operation ALU slices. Values are fractions of the device in
// percent, fitted to Table II's 0.217 %-per-PE slope.
func peLUTPct(pe *arch.PE) float64 {
	cost := 0.150 // frame
	for op := range pe.Ops {
		switch {
		case op == arch.IMUL:
			cost += 0.0134 // wrapper around the DSP cascade
		case op == arch.ISHL || op == arch.ISHR || op == arch.IUSHR:
			cost += 0.008 // barrel shifter stage
		case op.IsDMA():
			cost += 0.006
		case op == arch.IADD || op == arch.ISUB:
			cost += 0.005
		case op.IsCompare():
			cost += 0.002
		case op == arch.NOP:
			// free
		default:
			cost += 0.002
		}
	}
	return cost
}

// Estimate models synthesis of the composition.
func Estimate(c *arch.Composition) *Report {
	r := &Report{Composition: c.Name}

	// LUT logic: per-PE cost plus the C-Box/CCU/top-level frame.
	lut := 0.145
	for _, pe := range c.PEs {
		lut += peLUTPct(pe)
	}
	r.LUTLogicPct = round2(lut)

	// LUT RAM: register files in distributed RAM, linear in depth.
	mem := 0.20
	for _, pe := range c.PEs {
		mem += 0.1008 * float64(pe.RegfileSize) / 128.0
	}
	r.LUTMemPct = round2(mem)

	// DSP blocks: 3 DSP48 slices per multiplier-capable PE.
	mulPEs := len(c.SupportingPEs(arch.IMUL))
	r.DSPs = 3 * mulPEs
	r.DSPPct = round2(float64(r.DSPs) / DeviceDSPs * 100)

	// Block RAM: one context memory per PE plus one shared for the
	// C-Box and CCU (the paper notes the efficient use of BRAMs for the
	// context memories).
	r.BRAMs = c.NumPEs() + 1
	r.BRAMPct = round2(float64(r.BRAMs) / DeviceBRAMs * 100)

	// Frequency: droop with PE count (longer nets), input multiplexer
	// fan-in (wider muxes on the operand path) and RF depth (the paper
	// measured +7.2 % when shrinking the RF from 128 to 32 entries).
	maxIn := 0
	for _, pe := range c.PEs {
		if len(pe.Inputs) > maxIn {
			maxIn = len(pe.Inputs)
		}
	}
	rf := float64(c.MaxRegfileSize())
	if rf < 32 {
		rf = 32
	}
	f := 114.0 -
		1.1*float64(c.NumPEs()) -
		1.0*float64(maxIn) -
		2.5*math.Log2(rf/32.0)
	// The single-cycle multiplier variant closes timing noticeably worse
	// (Table III vs Table II: roughly -15 %).
	if mulDuration(c) == 1 {
		f *= 0.85
	}
	r.FreqMHz = round1(f)
	return r
}

func mulDuration(c *arch.Composition) int {
	for _, pe := range c.PEs {
		if info, ok := pe.Ops[arch.IMUL]; ok {
			return info.Duration
		}
	}
	return 0
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
func round1(v float64) float64 { return math.Round(v*10) / 10 }
