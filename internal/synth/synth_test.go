package synth

import (
	"math"
	"testing"

	"cgra/internal/arch"
)

// paperTableII holds the published synthesis results for the homogeneous
// meshes (Table II): frequency, LUT logic %, LUT mem %, DSP %, BRAM %.
var paperTableII = map[int][5]float64{
	4:  {103.6, 1.01, 0.61, 0.33, 0.34},
	6:  {99.5, 1.49, 0.81, 0.50, 0.48},
	8:  {98.0, 1.89, 1.01, 0.67, 0.61},
	9:  {93.6, 2.22, 1.11, 0.75, 0.68},
	12: {88.1, 2.80, 1.41, 1.00, 0.88},
	16: {86.9, 3.61, 1.82, 1.33, 1.16},
}

func within(got, want, tolFrac float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/want <= tolFrac
}

func TestEstimateMatchesTableII(t *testing.T) {
	for n, want := range paperTableII {
		c, err := arch.HomogeneousMesh(n, 2)
		if err != nil {
			t.Fatal(err)
		}
		r := Estimate(c)
		if !within(r.FreqMHz, want[0], 0.06) {
			t.Errorf("%d PEs: freq %.1f, paper %.1f (>6%% off)", n, r.FreqMHz, want[0])
		}
		if !within(r.LUTLogicPct, want[1], 0.10) {
			t.Errorf("%d PEs: LUT logic %.2f, paper %.2f", n, r.LUTLogicPct, want[1])
		}
		if !within(r.LUTMemPct, want[2], 0.10) {
			t.Errorf("%d PEs: LUT mem %.2f, paper %.2f", n, r.LUTMemPct, want[2])
		}
		if !within(r.DSPPct, want[3], 0.02) {
			t.Errorf("%d PEs: DSP %.2f, paper %.2f", n, r.DSPPct, want[3])
		}
		if !within(r.BRAMPct, want[4], 0.02) {
			t.Errorf("%d PEs: BRAM %.2f, paper %.2f", n, r.BRAMPct, want[4])
		}
	}
}

func TestUtilizationLinearInPEs(t *testing.T) {
	// The paper: "utilization increases with the number of PEs
	// approximately in a linear fashion."
	var prev float64
	for _, n := range []int{4, 6, 8, 9, 12, 16} {
		c, err := arch.HomogeneousMesh(n, 2)
		if err != nil {
			t.Fatal(err)
		}
		r := Estimate(c)
		if r.LUTLogicPct <= prev {
			t.Errorf("LUT logic not increasing at %d PEs", n)
		}
		prev = r.LUTLogicPct
	}
}

func TestFrequencyDecreasesWithPEs(t *testing.T) {
	var prev = math.Inf(1)
	for _, n := range []int{4, 6, 8, 9, 12, 16} {
		c, err := arch.HomogeneousMesh(n, 2)
		if err != nil {
			t.Fatal(err)
		}
		r := Estimate(c)
		if r.FreqMHz >= prev {
			t.Errorf("frequency not decreasing at %d PEs (%.1f >= %.1f)", n, r.FreqMHz, prev)
		}
		prev = r.FreqMHz
	}
}

func TestInhomogeneousFSavesDSPs(t *testing.T) {
	d, err := arch.IrregularComposition("D", 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := arch.IrregularComposition("F", 2)
	if err != nil {
		t.Fatal(err)
	}
	rd, rf := Estimate(d), Estimate(f)
	// Paper: "the utilization of DSPs decreases by 75 %" (0.67 → 0.17).
	ratio := rf.DSPPct / rd.DSPPct
	if math.Abs(ratio-0.25) > 0.01 {
		t.Errorf("F/D DSP ratio = %.2f, want 0.25", ratio)
	}
	if rf.LUTLogicPct >= rd.LUTLogicPct {
		t.Error("F should also use slightly fewer LUTs (fewer multiplier wrappers)")
	}
}

func TestSingleCycleMultiplierSlower(t *testing.T) {
	// Table III vs Table II: single-cycle multipliers close timing worse.
	paperIII := map[int]float64{4: 86.9, 6: 84.0, 8: 81.3, 9: 79.7, 12: 79.0, 16: 76.3}
	for n, want := range paperIII {
		c2, err := arch.HomogeneousMesh(n, 2)
		if err != nil {
			t.Fatal(err)
		}
		c1, err := arch.HomogeneousMesh(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		r2, r1 := Estimate(c2), Estimate(c1)
		if r1.FreqMHz >= r2.FreqMHz {
			t.Errorf("%d PEs: single-cycle (%.1f) not slower than block (%.1f)", n, r1.FreqMHz, r2.FreqMHz)
		}
		if !within(r1.FreqMHz, want, 0.06) {
			t.Errorf("%d PEs single-cycle: freq %.1f, paper %.1f", n, r1.FreqMHz, want)
		}
	}
}

func TestSmallRFIsFaster(t *testing.T) {
	// Paper §VI-B: a 4-PE composition with 32 RF entries clocks 7.2 %
	// higher (111.1 vs 103.6 MHz).
	big, err := arch.Mesh(arch.MeshOptions{Rows: 2, Cols: 2})
	if err != nil {
		t.Fatal(err)
	}
	small, err := arch.Mesh(arch.MeshOptions{Rows: 2, Cols: 2, RFSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	rb, rs := Estimate(big), Estimate(small)
	if rs.FreqMHz <= rb.FreqMHz {
		t.Errorf("RF32 (%.1f) not faster than RF128 (%.1f)", rs.FreqMHz, rb.FreqMHz)
	}
	gain := rs.FreqMHz / rb.FreqMHz
	if gain < 1.02 || gain > 1.12 {
		t.Errorf("RF32 speedup %.3f outside the plausible band around the paper's 1.072", gain)
	}
}

func TestExecutionTimeMS(t *testing.T) {
	c, err := arch.HomogeneousMesh(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := Estimate(c)
	ms := r.ExecutionTimeMS(152_300) // Table II's 4-PE cycle count
	// Paper Table IV: 1.48 ms for the dual-cycle 4-PE point.
	if !within(ms, 1.48, 0.06) {
		t.Errorf("execution time %.2f ms, paper 1.48 ms", ms)
	}
}

func TestIrregularFrequenciesPlausible(t *testing.T) {
	// Paper Table II, compositions A-F: 94.8, 93.6, 100.4, 96.0, 94.3,
	// 93.5 MHz. Our deterministic model cannot reproduce place-and-route
	// noise, but every estimate must stay in the published band.
	all, err := arch.IrregularCompositions(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range all {
		r := Estimate(c)
		if r.FreqMHz < 85 || r.FreqMHz > 106 {
			t.Errorf("%s: freq %.1f outside the plausible 85-106 MHz band", c.Name, r.FreqMHz)
		}
	}
}
