package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"strings"
	"sync"
	"testing"
	"time"

	"cgra/internal/adpcm"
	"cgra/internal/arch"
	"cgra/internal/cache"
	"cgra/internal/chaos"
	"cgra/internal/irtext"
	"cgra/internal/obs"
	"cgra/internal/pipeline"
	"cgra/internal/workload"
)

func testConfig(t *testing.T, cacheDir string) Config {
	t.Helper()
	comp, err := arch.ByName("9 PEs")
	if err != nil {
		t.Fatal(err)
	}
	return Config{Comp: comp, Opts: pipeline.Defaults(), CacheDir: cacheDir}
}

func newTestServer(t *testing.T, cacheDir string) (*Server, *Client, func()) {
	t.Helper()
	s, err := New(testConfig(t, cacheDir))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	cleanup := func() {
		ts.Close()
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}
	return s, NewClient(ts.URL), cleanup
}

func compileWorkload(t *testing.T, c *Client, name string) *CompileResponse {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Compile(context.Background(), irtext.Print(w.Kernel), 0)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return resp
}

func runWorkload(t *testing.T, c *Client, name string) *RunResponse {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	host := w.Host(w.DefaultSize)
	resp, err := c.Run(context.Background(), w.Kernel.Name, w.Args(w.DefaultSize), host.Arrays)
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	// Check live-outs and heap effects against the workload reference.
	refHost := w.Host(w.DefaultSize)
	want := w.Reference(w.DefaultSize, w.Args(w.DefaultSize), refHost)
	for out, wv := range want {
		if got := resp.LiveOuts[out]; got != wv {
			t.Fatalf("%s live-out %q: got %d, want %d", name, out, got, wv)
		}
	}
	for arr, wv := range refHost.Arrays {
		got := resp.Arrays[arr]
		if len(got) != len(wv) {
			t.Fatalf("%s array %q: got %d elements, want %d", name, arr, len(got), len(wv))
		}
		for i := range wv {
			if got[i] != wv[i] {
				t.Fatalf("%s array %q[%d]: got %d, want %d", name, arr, i, got[i], wv[i])
			}
		}
	}
	return resp
}

func TestCompileAndRunOverHTTP(t *testing.T) {
	_, c, cleanup := newTestServer(t, t.TempDir())
	defer cleanup()

	resp := compileWorkload(t, c, "gcd")
	if resp.Cached || resp.Source != "compile" {
		t.Fatalf("first compile: cached=%t source=%q, want fresh compile", resp.Cached, resp.Source)
	}
	if resp.Key == "" || resp.Contexts <= 0 {
		t.Fatalf("implausible compile response: %+v", resp)
	}
	run := runWorkload(t, c, "gcd")
	if !run.OnCGRA {
		t.Fatal("run did not execute on the CGRA")
	}

	// Second compile of identical source: served without recompiling.
	resp2 := compileWorkload(t, c, "gcd")
	if !resp2.Cached || resp2.Source != "installed" {
		t.Fatalf("second compile: cached=%t source=%q, want installed", resp2.Cached, resp2.Source)
	}
	if resp2.Key != resp.Key {
		t.Fatal("cache key changed between identical compiles")
	}

	names, err := c.Kernels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "gcd" {
		t.Fatalf("kernels = %v, want [gcd]", names)
	}
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("healthz: %v", err)
	}
}

func TestCompileConflictOnDifferentSource(t *testing.T) {
	_, c, cleanup := newTestServer(t, "")
	defer cleanup()
	compileWorkload(t, c, "gcd")
	_, err := c.Compile(context.Background(), "kernel gcd(in a, inout b) { b = a + 1; }", 0)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusConflict {
		t.Fatalf("conflicting re-registration: got %v, want 409", err)
	}
}

func TestRunUnknownKernel(t *testing.T) {
	_, c, cleanup := newTestServer(t, "")
	defer cleanup()
	_, err := c.Run(context.Background(), "nope", nil, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusNotFound {
		t.Fatalf("unknown kernel: got %v, want 404", err)
	}
}

// TestRestartServesFromDiskCache proves a restarted daemon serves its
// kernels from the on-disk cache without recompiling.
func TestRestartServesFromDiskCache(t *testing.T) {
	dir := t.TempDir()
	_, c1, cleanup1 := newTestServer(t, dir)
	first := compileWorkload(t, c1, "fir")
	if first.Source != "compile" {
		t.Fatalf("cold compile source %q", first.Source)
	}
	cleanup1()

	s2, c2, cleanup2 := newTestServer(t, dir)
	defer cleanup2()
	second := compileWorkload(t, c2, "fir")
	if !second.Cached || second.Source != cache.SourceDisk {
		t.Fatalf("restarted compile: cached=%t source=%q, want disk", second.Cached, second.Source)
	}
	if second.Key != first.Key {
		t.Fatal("cache key not stable across restart")
	}
	if run := runWorkload(t, c2, "fir"); !run.OnCGRA {
		t.Fatal("cache-served kernel did not accelerate")
	}
	if hits := s2.Metrics().Counter("cgra_cache_hits_total", obs.L("tier", "disk")).Value(); hits == 0 {
		t.Fatal("disk hit not counted in cgra_cache_hits_total")
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	comp, err := arch.ByName("9 PEs")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Comp: comp, Opts: pipeline.Defaults(), MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	c := NewClient(ts.URL)

	// Occupy the single admission slot, then any request is shed with 429.
	s.sem <- struct{}{}
	_, err = c.Kernels(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server: got %v, want 429", err)
	}
	if s.shed.Value() == 0 {
		t.Fatal("shed request not counted")
	}
	<-s.sem
	if _, err := c.Kernels(context.Background()); err != nil {
		t.Fatalf("after slot freed: %v", err)
	}
}

func TestCompileDeadlineReturns504(t *testing.T) {
	// An aggressive unroll factor makes the adpcm compile take ~100 ms, so
	// a 1 ms deadline reliably expires inside the scheduler.
	cfg := testConfig(t, "")
	cfg.Opts = pipeline.Options{UnrollFactor: 64, CSE: true, ConstFold: true}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	c := NewClient(ts.URL)
	_, err = c.Compile(context.Background(), adpcm.KernelSource, time.Millisecond)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline compile: got %v, want 504", err)
	}
}

// TestDrainUnderLoad sends concurrent run requests, initiates shutdown
// while they are in flight, and requires every request to complete cleanly:
// either a 2xx result or an orderly 503 "draining" JSON response — never a
// connection reset.
func TestDrainUnderLoad(t *testing.T) {
	s, err := New(testConfig(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	c := NewClient("http://" + ln.Addr().String())
	// Single-shot client: this test asserts the raw drain responses; the
	// retry loop would paper over the 503s (and chase the closed listener).
	c.MaxAttempts = 1
	compileWorkload(t, c, "fir")

	w, err := workload.ByName("fir")
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wrote sync.WaitGroup
	wrote.Add(n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			// Signal once the request bytes are on the wire, so shutdown
			// races with genuinely in-flight requests.
			trace := &httptrace.ClientTrace{WroteRequest: func(httptrace.WroteRequestInfo) { wrote.Done() }}
			ctx := httptrace.WithClientTrace(context.Background(), trace)
			host := w.Host(w.DefaultSize)
			_, err := c.Run(ctx, "fir", w.Args(w.DefaultSize), host.Arrays)
			errs <- err
		}()
	}
	wrote.Wait()
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i := 0; i < n; i++ {
		err := <-errs
		if err == nil {
			continue
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Code == http.StatusServiceUnavailable {
			continue // orderly drain rejection
		}
		t.Fatalf("in-flight request failed uncleanly during drain: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after clean shutdown", err)
	}
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("daemon still serving after shutdown")
	}
}

// TestConcurrentMixedKernels soaks the handler with concurrent compiles and
// reference-checked runs of a mixed kernel set (run under -race in CI).
func TestConcurrentMixedKernels(t *testing.T) {
	_, c, cleanup := newTestServer(t, t.TempDir())
	defer cleanup()
	kernels := []string{"gcd", "fir", "dot", "bitcount"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				name := kernels[(g+i)%len(kernels)]
				w, err := workload.ByName(name)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Compile(context.Background(), irtext.Print(w.Kernel), 0); err != nil {
					t.Errorf("compile %s: %v", name, err)
					return
				}
				host := w.Host(w.DefaultSize)
				resp, err := c.Run(context.Background(), w.Kernel.Name, w.Args(w.DefaultSize), host.Arrays)
				if err != nil {
					t.Errorf("run %s: %v", name, err)
					return
				}
				want := w.Reference(w.DefaultSize, w.Args(w.DefaultSize), w.Host(w.DefaultSize))
				for out, wv := range want {
					if got := resp.LiveOuts[out]; got != wv {
						t.Errorf("%s live-out %q: got %d, want %d", name, out, got, wv)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestMetricsEndpoint(t *testing.T) {
	_, c, cleanup := newTestServer(t, t.TempDir())
	defer cleanup()
	compileWorkload(t, c, "gcd")
	resp, err := http.Get(c.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	for _, want := range []string{"cgra_server_requests_total", "cgra_cache_misses_total", "cgra_system_invocations_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestLivenessVsReadiness pins the split: /healthz is liveness and stays
// 200 while draining (an orchestrator must not kill a draining daemon),
// /readyz is readiness and flips to 503 with the reason spelled out.
func TestLivenessVsReadiness(t *testing.T) {
	s, c, cleanup := newTestServer(t, "")
	defer cleanup()
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("liveness: %v", err)
	}
	rr, err := c.Ready(context.Background())
	if err != nil {
		t.Fatalf("readiness: %v", err)
	}
	if !rr.Ready || rr.Draining || rr.Brownout || rr.CacheDiskDegraded || len(rr.OpenBreakers) != 0 {
		t.Fatalf("fresh daemon not ready: %+v", rr)
	}
	s.draining.Store(true)
	defer s.draining.Store(false)
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("draining daemon failed liveness: %v", err)
	}
	rr, err = c.Ready(context.Background())
	if err == nil || rr == nil {
		t.Fatalf("draining readiness: err=%v rr=%v, want 503 with report", err, rr)
	}
	if rr.Ready || !rr.Draining {
		t.Fatalf("draining readiness report: %+v", rr)
	}
}

// TestErrorBodiesCarryCodes pins the machine-readable error envelope.
func TestErrorBodiesCarryCodes(t *testing.T) {
	_, c, cleanup := newTestServer(t, "")
	defer cleanup()
	_, err := c.Run(context.Background(), "nope", nil, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.ErrCode != codeUnknownKernel {
		t.Fatalf("unknown kernel: got %v (code %q), want code %q", err, apiErr.ErrCode, codeUnknownKernel)
	}
	_, err = c.Compile(context.Background(), "this is not ir", 0)
	if !errors.As(err, &apiErr) || apiErr.ErrCode != codeBadRequest {
		t.Fatalf("bad source: got %v, want code %q", err, codeBadRequest)
	}
}

// TestDeadlineAwareShedding proves a request that announces an unmeetable
// deadline is rejected immediately — with Retry-After hints — instead of
// being admitted to fail slowly.
func TestDeadlineAwareShedding(t *testing.T) {
	s, c, cleanup := newTestServer(t, "")
	defer cleanup()
	// Teach admission that "kernels" takes ~1s.
	s.est.observe("kernels", time.Second)

	req, err := http.NewRequest(http.MethodGet, c.Base+"/v1/kernels", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(deadlineHeader, "5")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("unmeetable deadline: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get(retryAfterMSHeader) == "" {
		t.Fatal("shed response missing Retry-After hints")
	}
	var e struct {
		Code         string `json:"code"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != codeDeadlineUnmeetable || e.RetryAfterMS <= 0 {
		t.Fatalf("shed body: %+v", e)
	}
	if s.deadlineShed.Value() != 1 {
		t.Fatal("deadline shed not counted")
	}
	// No deadline announced: same endpoint is served.
	if _, err := c.Kernels(context.Background()); err != nil {
		t.Fatalf("deadline-free request shed: %v", err)
	}
	// Client integration: a context deadline is announced automatically,
	// and the retry loop gives up rather than sleeping past it.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = c.Kernels(ctx)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.ErrCode != codeDeadlineUnmeetable {
		t.Fatalf("client with tight deadline: got %v, want %q", err, codeDeadlineUnmeetable)
	}
}

// TestBrownoutServesRunDegraded proves /v1/run overflow under sustained
// shedding is served by the host interpreter — correct, marked degraded —
// while other endpoints still shed, and readiness reports the brownout.
func TestBrownoutServesRunDegraded(t *testing.T) {
	cfg := testConfig(t, "")
	cfg.MaxInFlight = 1
	cfg.BrownoutThreshold = 1
	cfg.BrownoutHold = time.Minute
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	c := NewClient(ts.URL)
	compileWorkload(t, c, "fir")

	w, err := workload.ByName("fir")
	if err != nil {
		t.Fatal(err)
	}
	// Saturate admission, then overflow a run: the first shed arms
	// brownout (threshold 1) and the request is served degraded.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	host := w.Host(w.DefaultSize)
	resp, err := c.Run(context.Background(), "fir", w.Args(w.DefaultSize), host.Arrays)
	if err != nil {
		t.Fatalf("brownout run: %v", err)
	}
	if !resp.Degraded || resp.OnCGRA {
		t.Fatalf("brownout run: degraded=%t on_cgra=%t, want degraded host run", resp.Degraded, resp.OnCGRA)
	}
	refHost := w.Host(w.DefaultSize)
	want := w.Reference(w.DefaultSize, w.Args(w.DefaultSize), refHost)
	for out, wv := range want {
		if got := resp.LiveOuts[out]; got != wv {
			t.Fatalf("brownout live-out %q: got %d, want %d", out, got, wv)
		}
	}
	if s.brownoutServes.Value() != 1 {
		t.Fatal("brownout serve not counted")
	}
	// Non-run overflow still sheds.
	single := NewClient(ts.URL)
	single.MaxAttempts = 1
	_, err = single.Kernels(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusTooManyRequests {
		t.Fatalf("non-run overflow during brownout: got %v, want 429", err)
	}
	// Readiness reports the brownout so load balancers route around it.
	rr, _ := c.Ready(context.Background())
	if rr == nil || rr.Ready || !rr.Brownout {
		t.Fatalf("brownout readiness report: %+v", rr)
	}
}

// TestCacheDiskFailureBrownsOut proves a cache disk stuck at ENOSPC fails
// the store over to degraded mode without failing compiles, arms brownout
// for run overflow, and surfaces on /readyz.
func TestCacheDiskFailureBrownsOut(t *testing.T) {
	inj := chaos.New(chaos.Plan{ENOSPCEvery: 1}, nil, nil)
	cfg := testConfig(t, t.TempDir())
	cfg.CacheFS = inj
	cfg.CacheScrubInterval = -1
	cfg.MaxInFlight = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	c := NewClient(ts.URL)

	// The compile succeeds even though its cache install hits ENOSPC...
	compileWorkload(t, c, "gcd")
	// ...and the store is now memory-only degraded, which arms brownout.
	if !s.Cache().Degraded() {
		t.Fatal("store not degraded after ENOSPC install")
	}
	if !s.BrownoutActive() {
		t.Fatal("degraded cache disk did not arm brownout")
	}
	s.sem <- struct{}{}
	w, err := workload.ByName("gcd")
	if err != nil {
		t.Fatal(err)
	}
	host := w.Host(w.DefaultSize)
	resp, err := c.Run(context.Background(), "gcd", w.Args(w.DefaultSize), host.Arrays)
	<-s.sem
	if err != nil {
		t.Fatalf("overflow run with degraded cache: %v", err)
	}
	if !resp.Degraded {
		t.Fatal("overflow run not served by the brownout path")
	}
	rr, _ := c.Ready(context.Background())
	if rr == nil || !rr.CacheDiskDegraded {
		t.Fatalf("readiness does not report the degraded cache disk: %+v", rr)
	}
}
