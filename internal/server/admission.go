// Deadline-aware admission and brownout: the server's overload plane.
//
// Admission used to be a bare semaphore: requests beyond MaxInFlight were
// shed with 429 regardless of whether they could ever have been served in
// time. This file upgrades it in two ways:
//
//   - Deadline-aware shedding. The server keeps an EWMA of per-endpoint
//     service time. A request that announces its deadline (X-Deadline-Ms
//     header, set automatically by Client) is rejected immediately — before
//     it consumes an admission slot — when the expected latency at the
//     current queue depth already exceeds that deadline. The 429 carries a
//     Retry-After hint so a well-behaved client backs off by the right
//     amount instead of guessing.
//
//   - Brownout. Under sustained overload (a burst of sheds inside a short
//     window) or with the cache disk failed over to memory-only degraded
//     mode, /v1/run overflow is served by the host interpreter — no
//     accelerator, no admission slot, results marked "degraded": true —
//     rather than shed. Availability degrades gracefully instead of
//     cliff-dropping to 429s.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cgra/internal/ir"
)

// Machine-readable error codes carried in the JSON error body ("code") so
// clients and operators can branch on failure kind without parsing prose.
const (
	codeBadRequest         = "bad_request"
	codeBadMethod          = "method_not_allowed"
	codeConflict           = "conflict"
	codeUnknownKernel      = "unknown_kernel"
	codeDeadline           = "deadline_exceeded"
	codeCompileFailed      = "compile_failed"
	codeRunFailed          = "run_failed"
	codeDraining           = "draining"
	codeOverloaded         = "overloaded"
	codeDeadlineUnmeetable = "deadline_unmeetable"
)

// deadlineHeader is how a request announces its end-to-end deadline to
// admission control, which must decide before reading the body.
const deadlineHeader = "X-Deadline-Ms"

// retryAfterMSHeader carries the precise (millisecond) retry hint next to
// the standard integer-second Retry-After header.
const retryAfterMSHeader = "X-Retry-After-Ms"

// traceIDHeader carries the 32-hex-digit trace ID: inbound it lets a
// caller (or an upstream hop) name the trace; outbound the server echoes
// the ID it recorded under, so every response is joinable against
// /debug/traces/{id}.
const traceIDHeader = "X-Trace-Id"

// ewmaAlpha weights the newest service-time sample; 0.3 tracks load shifts
// within a few requests without letting one cold compile dominate.
const ewmaAlpha = 0.3

// svcEstimator keeps an exponentially weighted moving average of service
// time per endpoint.
type svcEstimator struct {
	mu   sync.Mutex
	ewma map[string]time.Duration
}

func newSvcEstimator() *svcEstimator {
	return &svcEstimator{ewma: map[string]time.Duration{}}
}

func (e *svcEstimator) observe(endpoint string, d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur, ok := e.ewma[endpoint]
	if !ok {
		e.ewma[endpoint] = d
		return
	}
	e.ewma[endpoint] = cur + time.Duration(ewmaAlpha*float64(d-cur))
}

func (e *svcEstimator) estimate(endpoint string) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ewma[endpoint]
}

// expectedLatency scales the endpoint's EWMA by the admission queue depth:
// a full server is expected to take (1 + inflight/max) service times.
// Zero means "no data yet" — such requests are always admitted.
func (s *Server) expectedLatency(endpoint string) time.Duration {
	est := s.est.estimate(endpoint)
	if est <= 0 {
		return 0
	}
	load := float64(len(s.sem)) / float64(cap(s.sem))
	return est + time.Duration(load*float64(est))
}

// retryHint is the Retry-After for an overload shed: one expected service
// time, clamped to something a client can act on.
func (s *Server) retryHint(endpoint string) time.Duration {
	est := s.est.estimate(endpoint)
	switch {
	case est <= 0:
		return 50 * time.Millisecond
	case est < 10*time.Millisecond:
		return 10 * time.Millisecond
	case est > 5*time.Second:
		return 5 * time.Second
	}
	return est
}

// clientDeadline reads the announced request deadline; 0 = none announced.
func clientDeadline(r *http.Request) time.Duration {
	v := r.Header.Get(deadlineHeader)
	if v == "" {
		return 0
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// brownout tracks shed bursts: threshold sheds inside window arm brownout
// mode for hold.
type brownout struct {
	mu        sync.Mutex
	window    time.Duration
	threshold int
	hold      time.Duration
	sheds     []time.Time
	until     time.Time
}

func (b *brownout) noteShed(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	keep := b.sheds[:0]
	for _, t := range b.sheds {
		if now.Sub(t) <= b.window {
			keep = append(keep, t)
		}
	}
	b.sheds = append(keep, now)
	if len(b.sheds) >= b.threshold {
		b.until = now.Add(b.hold)
	}
}

func (b *brownout) overloaded(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return now.Before(b.until)
}

// BrownoutActive reports whether /v1/run overflow is currently served by
// the host-interpreter fallback: armed by a shed burst (sustained
// overload) or by the cache disk being failed over to degraded mode.
func (s *Server) BrownoutActive() bool {
	active := s.bo.overloaded(time.Now()) || s.store.Degraded()
	if active {
		s.brownoutG.Set(1)
	} else {
		s.brownoutG.Set(0)
	}
	return active
}

// handleRunDegraded is the brownout overflow path for /v1/run: the kernel
// runs on the host interpreter — no accelerator, no profiling, no
// admission slot — and the response is marked degraded so callers know the
// cycle count is absent and the result did not exercise the CGRA.
func (s *Server) handleRunDegraded(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return writeError(w, r, http.StatusMethodNotAllowed, codeBadMethod, "POST required")
	}
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return writeError(w, r, http.StatusBadRequest, codeBadRequest, "bad request body: "+err.Error())
	}
	if s.sys.Kernel(req.Kernel) == nil {
		return writeError(w, r, http.StatusNotFound, codeUnknownKernel, fmt.Sprintf("unknown kernel %q", req.Kernel))
	}
	ctx, cancel := s.requestCtx(r, req.DeadlineMS)
	defer cancel()
	host := ir.NewHost()
	for name, data := range req.Arrays {
		host.Arrays[name] = append([]int32(nil), data...)
	}
	res, err := s.sys.InvokeHost(ctx, req.Kernel, req.Args, host)
	if err != nil {
		if errIsDeadline(err) {
			return writeError(w, r, http.StatusGatewayTimeout, codeDeadline, err.Error())
		}
		return writeError(w, r, http.StatusUnprocessableEntity, codeRunFailed, err.Error())
	}
	return writeJSON(w, http.StatusOK, RunResponse{
		LiveOuts: res.LiveOuts,
		Arrays:   host.Arrays,
		Cycles:   res.Cycles,
		OnCGRA:   res.OnCGRA,
		Degraded: true,
		TraceID:  traceIDOf(r),
	})
}

// writeShed writes a shed/backpressure error (429/503) with retry hints:
// the standard integer-second Retry-After, a precise X-Retry-After-Ms, and
// retry_after_ms in the JSON body.
func writeShed(w http.ResponseWriter, r *http.Request, status int, code, msg string, retryAfter time.Duration) int {
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		w.Header().Set(retryAfterMSHeader, strconv.FormatInt(retryAfter.Milliseconds(), 10))
	}
	return writeJSON(w, status, errorResponse{
		Error:        msg,
		Code:         code,
		RetryAfterMS: retryAfter.Milliseconds(),
		TraceID:      traceIDOf(r),
	})
}
