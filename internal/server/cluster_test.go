package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"cgra/internal/cache"
	"cgra/internal/cluster"
	"cgra/internal/irtext"
	"cgra/internal/obs"
	"cgra/internal/workload"
)

// clusterNode is one in-process cgrad replica listening on a real port.
type clusterNode struct {
	srv *Server
	url string
}

// newClusterNodes boots n clustered replicas that all know each other.
// Ports are bound before any server starts so every node's peer list is
// complete from the first probe.
func newClusterNodes(t *testing.T, n int) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		cfg := testConfig(t, t.TempDir())
		cfg.Advertise = urls[i]
		cfg.Peers = urls
		cfg.ProbeInterval = 20 * time.Millisecond
		cfg.ProbeTimeout = 500 * time.Millisecond
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve(lns[i])
		nodes[i] = &clusterNode{srv: s, url: urls[i]}
	}
	// Wait until every node answers /healthz: Serve runs in a goroutine,
	// and a node must be fully up before a test may Abort it.
	for _, nd := range nodes {
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(nd.url + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never became healthy", nd.url)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = nd.srv.Shutdown(ctx) // aborted nodes shut down idempotently
			cancel()
		}
	})
	return nodes
}

// kernelKey computes a workload's content-addressed artifact key with a
// throwaway (non-serving) system, so tests can find a key's owner before
// anything is compiled.
func kernelKey(t *testing.T, name string) (key, source string) {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(testConfig(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	if err := s.System().Register(w.Kernel); err != nil {
		t.Fatal(err)
	}
	key, err = s.System().CacheKey(w.Kernel.Name)
	if err != nil {
		t.Fatal(err)
	}
	return key, irtext.Print(w.Kernel)
}

// splitByOwner returns (owner, nonOwner) of key among two nodes.
func splitByOwner(t *testing.T, nodes []*clusterNode, key string) (*clusterNode, *clusterNode) {
	t.Helper()
	owner := cluster.RendezvousOwner(key, []string{nodes[0].url, nodes[1].url})
	if nodes[0].url == owner {
		return nodes[0], nodes[1]
	}
	return nodes[1], nodes[0]
}

// rawCompile POSTs a compile with a caller-chosen trace ID.
func rawCompile(t *testing.T, url, source, traceID string) (*CompileResponse, int) {
	t.Helper()
	body, err := json.Marshal(CompileRequest{Source: source})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/compile", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set("X-Trace-Id", traceID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out CompileResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode compile response: %v (%s)", err, data)
	}
	return &out, resp.StatusCode
}

// TestClusterCompileRoutesToOwner is the satellite-2 end-to-end: a compile
// sent to the NON-owner node is forwarded to the owner, fetched back as an
// artifact, and served with Source="peer" — and every hop of that dance
// runs under the client's trace ID, visible in the owner's flight
// recorder.
func TestClusterCompileRoutesToOwner(t *testing.T) {
	nodes := newClusterNodes(t, 2)
	key, source := kernelKey(t, "gcd")
	owner, nonOwner := splitByOwner(t, nodes, key)

	tid := obs.NewTraceID().String()
	resp, status := rawCompile(t, nonOwner.url, source, tid)
	if status != http.StatusOK {
		t.Fatalf("compile on non-owner: HTTP %d", status)
	}
	if resp.Source != "peer" {
		t.Fatalf("Source = %q, want \"peer\" (owner compiles, non-owner imports)", resp.Source)
	}
	if resp.Key != key {
		t.Fatalf("key mismatch: response %s, precomputed %s", resp.Key, key)
	}
	if resp.TraceID != tid {
		t.Fatalf("response trace %s, want caller's %s", resp.TraceID, tid)
	}
	// The forwarded hop ran on the owner under the SAME trace ID: the
	// cross-node request tree is stitchable from either node's recorder.
	if owner.srv.Flight().Get(tid) == nil {
		t.Fatal("owner's flight recorder has no trace for the forwarded compile")
	}
	// The non-owner's import came over the peer fetch path.
	hits := nonOwner.srv.Metrics().Counter("cgra_peer_fetch_total", obs.L("outcome", "hit")).Value()
	if hits == 0 {
		t.Fatal("cgra_peer_fetch_total{outcome=\"hit\"} = 0 on the non-owner")
	}
	// The owner now serves the artifact over the p2p endpoint, framed and
	// verifiable.
	areq, err := http.Get(owner.url + "/v1/artifact/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer areq.Body.Close()
	if areq.StatusCode != http.StatusOK {
		t.Fatalf("owner artifact GET: HTTP %d", areq.StatusCode)
	}
	data, err := io.ReadAll(areq.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Verify(data); err != nil {
		t.Fatalf("served artifact fails verification: %v", err)
	}
}

// TestClusterWarmOwnerSkipsForward: when the owner already holds the
// artifact, a non-owner compile warms by fetch alone — no forward hop.
func TestClusterWarmOwnerSkipsForward(t *testing.T) {
	nodes := newClusterNodes(t, 2)
	key, source := kernelKey(t, "dot")
	owner, nonOwner := splitByOwner(t, nodes, key)

	if resp, status := rawCompile(t, owner.url, source, ""); status != http.StatusOK {
		t.Fatalf("owner compile: HTTP %d", status)
	} else if resp.Source != "compile" {
		t.Fatalf("owner compile Source = %q, want \"compile\"", resp.Source)
	}
	resp, status := rawCompile(t, nonOwner.url, source, "")
	if status != http.StatusOK {
		t.Fatalf("non-owner compile: HTTP %d", status)
	}
	if resp.Source != "peer" {
		t.Fatalf("Source = %q, want \"peer\"", resp.Source)
	}
	forwards := nonOwner.srv.Metrics().Counter("cgra_cluster_forward_total", obs.L("outcome", "ok")).Value()
	if forwards != 0 {
		t.Fatalf("forwarded %d compiles though the owner was already warm", forwards)
	}
}

// TestClusterOwnerDeathFallsBackLocal: the owner dying is a latency
// event, not an outage — the survivor re-owns its keys (counted by the
// re-ownership metric) and compiles locally when no peer can help.
func TestClusterOwnerDeathFallsBackLocal(t *testing.T) {
	nodes := newClusterNodes(t, 2)
	key, source := kernelKey(t, "fir")
	owner, survivor := splitByOwner(t, nodes, key)

	// Route one compile through the survivor while the owner is alive, so
	// the survivor has an ownership observation to re-own later.
	if resp, status := rawCompile(t, survivor.url, source, ""); status != http.StatusOK {
		t.Fatalf("pre-kill compile: HTTP %d", status)
	} else if resp.Source != "peer" {
		t.Fatalf("pre-kill Source = %q, want \"peer\"", resp.Source)
	}

	owner.srv.Abort() // SIGKILL stand-in: connections die mid-flight
	m := survivor.srv.Cluster()
	deadline := time.Now().Add(10 * time.Second)
	for m.State(owner.url) != cluster.StateDead {
		if time.Now().After(deadline) {
			t.Fatal("survivor never marked the dead owner dead")
		}
		m.ProbeNow()
	}
	if got := m.Owner(key); got != survivor.url {
		t.Fatalf("key not re-owned by the survivor: %s", got)
	}
	if n := survivor.srv.Metrics().Counter("cgra_route_owner_changes_total").Value(); n == 0 {
		t.Fatal("cgra_route_owner_changes_total did not move on the ring change")
	}

	// A kernel nobody compiled yet: with the peer dead the survivor owns
	// it and compiles locally — the failure is never user-visible.
	_, source2 := kernelKey(t, "bitcount")
	resp, status := rawCompile(t, survivor.url, source2, "")
	if status != http.StatusOK {
		t.Fatalf("compile with dead owner: HTTP %d (must never be user-visible)", status)
	}
	if resp.Source != "compile" {
		t.Fatalf("Source = %q, want \"compile\"", resp.Source)
	}
}

// TestArtifactEndpointValidation: malformed keys are rejected before they
// touch the store; absent keys are an authoritative 404.
func TestArtifactEndpointValidation(t *testing.T) {
	_, c, cleanup := newTestServer(t, t.TempDir())
	defer cleanup()
	base := c.Base

	for _, bad := range []string{"short", "../../etc/passwd", strings.Repeat("Z", 64)} {
		resp, err := http.Get(base + "/v1/artifact/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("key %q: HTTP %d, want 400/404", bad, resp.StatusCode)
		}
	}
	absent := fmt.Sprintf("%064d", 0)
	resp, err := http.Get(base + "/v1/artifact/" + absent)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent key: HTTP %d, want 404", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Code != codeArtifactNotFound {
		t.Fatalf("absent key error code = %q (%v), want %q", e.Code, err, codeArtifactNotFound)
	}
}

// TestPeerzReportsMembership: /v1/peerz exposes the probed view, self
// included.
func TestPeerzReportsMembership(t *testing.T) {
	nodes := newClusterNodes(t, 2)
	resp, err := http.Get(nodes[0].url + "/v1/peerz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr PeersResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Self != nodes[0].url {
		t.Fatalf("self = %q, want %q", pr.Self, nodes[0].url)
	}
	if len(pr.Peers) != 2 {
		t.Fatalf("peers = %d entries, want 2 (self + sibling)", len(pr.Peers))
	}
}
