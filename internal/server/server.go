// Package server is the HTTP face of the online-synthesis system: a
// compile-and-execute daemon ("cgrad") that accepts kernels in the textual
// IR over a JSON API, synthesizes them onto its CGRA composition through
// the persistent content-addressed artifact cache, and executes them on
// the cycle-accurate simulator.
//
// The daemon is deadline-aware and overload-safe: every request carries an
// optional deadline that becomes a context.Context, admission control
// bounds the in-flight requests with a semaphore and sheds — immediately,
// with 429 + Retry-After — any request whose announced deadline cannot be
// met at the current queue depth (see admission.go). Under sustained
// overload or a failed cache disk, /v1/run overflow is served by the host
// interpreter ("brownout") instead of shed. Shutdown drains in-flight
// requests before quiescing the synthesis pool. All traffic is counted in
// the system's metrics registry and exported on /metrics.
//
// Endpoints:
//
//	POST /v1/compile  {"source": "<ir text>", "deadline_ms": n}
//	POST /v1/run      {"kernel": "name", "args": {...}, "arrays": {...}, "deadline_ms": n}
//	GET  /v1/kernels
//	GET  /metrics     (Prometheus text; ?format=json for JSON)
//	GET  /healthz     (liveness: 200 while the process serves)
//	GET  /readyz      (readiness: 503 while draining or browned out; body
//	                   reports drain state, cache-disk health, open breakers)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cgra/internal/arch"
	"cgra/internal/cache"
	"cgra/internal/chaos"
	"cgra/internal/cluster"
	"cgra/internal/ir"
	"cgra/internal/irtext"
	"cgra/internal/obs"
	"cgra/internal/pipeline"
	"cgra/internal/system"
)

// Config assembles a Server.
type Config struct {
	// Comp is the CGRA composition the daemon compiles for.
	Comp *arch.Composition
	// Opts are the pipeline options for every compile.
	Opts pipeline.Options
	// CacheDir is the persistent artifact cache directory ("" = memory-only
	// cache).
	CacheDir string
	// CacheMem bounds the in-memory cache front (0 = default).
	CacheMem int
	// CacheFS is the filesystem the cache persists through (nil = the real
	// OS). Tests and the chaos soak pass a fault-injecting chaos.Injector.
	CacheFS chaos.FS
	// CacheDiskCap bounds the disk tier in bytes (0 = cache default,
	// negative = unbounded).
	CacheDiskCap int64
	// CacheScrubInterval paces the cache's background scrubber (0 = cache
	// default, negative = startup pass only).
	CacheScrubInterval time.Duration
	// MaxInFlight bounds concurrently served requests; excess requests are
	// shed with 429 (0 = 32).
	MaxInFlight int
	// DefaultDeadline applies to requests that carry none (0 = 30s).
	DefaultDeadline time.Duration
	// BatchWindow enables same-artifact coalescing on /v1/run: requests
	// for one installed artifact arriving within this linger window run as
	// data-parallel lanes of a single engine pass (0 = batching off).
	BatchWindow time.Duration
	// BatchMaxLanes bounds one batch; a batch that fills flushes without
	// waiting out the window (0 = 16).
	BatchMaxLanes int
	// BrownoutWindow and BrownoutThreshold arm brownout mode when that many
	// requests are shed inside the window (0 = 1s / 4); BrownoutHold keeps
	// it armed after the last trigger (0 = 2s).
	BrownoutWindow    time.Duration
	BrownoutThreshold int
	BrownoutHold      time.Duration
	// TraceRing bounds the flight recorder's ring of recent completed
	// traces (0 = 256); TraceSlowest bounds its per-endpoint reservoir of
	// slowest traces (0 = 8).
	TraceRing    int
	TraceSlowest int
	// Advertise is this node's base URL as peers reach it (e.g.
	// "http://10.0.0.3:8080"). Together with a non-empty Peers list it
	// turns the daemon into a cluster member: compiles route to their
	// consistent-hash owner shard and artifacts replicate peer-to-peer.
	Advertise string
	// Peers is the static seed list of peer base URLs (entries equal to
	// Advertise are ignored, so every node can receive the same list).
	Peers []string
	// ProbeInterval paces peer health probes (0 = cluster default);
	// ProbeTimeout bounds one probe (0 = cluster default).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
}

// Server serves the compile-and-execute API over one system.System.
type Server struct {
	sys      *system.System
	store    *cache.Store
	reg      *obs.Registry
	mux      *http.ServeMux
	sem      chan struct{}
	deadline time.Duration

	// digests pins each registered kernel name to the digest of the source
	// it was registered with, so a re-registration under the same name with
	// different code is rejected (409) instead of silently serving stale
	// compiled state.
	mu      sync.Mutex
	digests map[string]string

	draining atomic.Bool
	httpSrv  *http.Server

	est     *svcEstimator
	bo      *brownout
	flight  *obs.FlightRecorder
	cluster *clusterState
	batcher *runBatcher

	inflight       *obs.Gauge
	shed           *obs.Counter
	deadlineShed   *obs.Counter
	brownoutG      *obs.Gauge
	brownoutServes *obs.Counter
	latency        *obs.Histogram
}

// requestLatencyBuckets spans sub-millisecond cache hits to multi-second
// cold compiles.
var requestLatencyBuckets = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}

// New builds a server (and its system + artifact cache) from a config.
func New(cfg Config) (*Server, error) {
	if cfg.Comp == nil {
		return nil, fmt.Errorf("server: no composition")
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 32
	}
	deadline := cfg.DefaultDeadline
	if deadline <= 0 {
		deadline = 30 * time.Second
	}
	// Threshold 1: a served daemon compiles on request (or first profiled
	// run), it does not wait for a hot-loop profile.
	sys := system.New(cfg.Comp, cfg.Opts, 1)
	reg := sys.Metrics()
	store, err := cache.New(cache.Options{
		Dir:           cfg.CacheDir,
		MemEntries:    cfg.CacheMem,
		Registry:      reg,
		FS:            cfg.CacheFS,
		DiskCapBytes:  cfg.CacheDiskCap,
		ScrubInterval: cfg.CacheScrubInterval,
	})
	if err != nil {
		return nil, err
	}
	sys.Cache = store
	boWindow := cfg.BrownoutWindow
	if boWindow <= 0 {
		boWindow = time.Second
	}
	boThreshold := cfg.BrownoutThreshold
	if boThreshold <= 0 {
		boThreshold = 4
	}
	boHold := cfg.BrownoutHold
	if boHold <= 0 {
		boHold = 2 * time.Second
	}
	reg.Help("cgra_server_requests_total", "API requests by endpoint and status code")
	reg.Help("cgra_server_request_seconds", "API request latency")
	reg.Help("cgra_server_inflight", "API requests currently being served")
	reg.Help("cgra_server_shed_total", "API requests shed by admission control (429)")
	reg.Help("cgra_server_deadline_shed_total", "API requests shed because their announced deadline cannot be met at current load")
	reg.Help("cgra_server_brownout", "1 while brownout (host-interpreter overflow) mode is active")
	reg.Help("cgra_server_brownout_serves_total", "run requests served by the host interpreter during brownout")
	s := &Server{
		sys:            sys,
		store:          store,
		reg:            reg,
		sem:            make(chan struct{}, maxInFlight),
		deadline:       deadline,
		digests:        map[string]string{},
		est:            newSvcEstimator(),
		bo:             &brownout{window: boWindow, threshold: boThreshold, hold: boHold},
		flight:         obs.NewFlightRecorder(cfg.TraceRing, cfg.TraceSlowest),
		inflight:       reg.Gauge("cgra_server_inflight"),
		shed:           reg.Counter("cgra_server_shed_total"),
		deadlineShed:   reg.Counter("cgra_server_deadline_shed_total"),
		brownoutG:      reg.Gauge("cgra_server_brownout"),
		brownoutServes: reg.Counter("cgra_server_brownout_serves_total"),
		latency:        reg.Histogram("cgra_server_request_seconds", requestLatencyBuckets),
	}
	if cfg.BatchWindow > 0 {
		s.batcher = newRunBatcher(sys, reg, cfg.BatchWindow, cfg.BatchMaxLanes, deadline)
	}
	if cfg.Advertise != "" && len(cfg.Peers) > 0 {
		s.cluster = newClusterState(cfg, reg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", s.instrument("compile", s.handleCompile))
	mux.HandleFunc("/v1/run", s.instrument("run", s.handleRun))
	mux.HandleFunc("/v1/kernels", s.instrument("kernels", s.handleKernels))
	mux.HandleFunc("/v1/artifact/", s.instrument("artifact", s.handleArtifact))
	mux.HandleFunc("/v1/peerz", s.handlePeers)
	mux.Handle("/metrics", reg)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	// The flight recorder's debug surface bypasses admission control: it
	// must answer while the daemon is overloaded — that is its whole point.
	mux.HandleFunc("/debug/traces", s.flight.HandleList)
	mux.HandleFunc("/debug/traces/", s.flight.HandleTrace)
	s.mux = mux
	return s, nil
}

// System exposes the underlying system (tests and embedders).
func (s *Server) System() *system.System { return s.sys }

// Cache exposes the artifact cache.
func (s *Server) Cache() *cache.Store { return s.store }

// Metrics exposes the shared registry.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Flight returns the server's flight recorder (completed and in-flight
// request traces).
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// Handler returns the daemon's HTTP handler (for tests via httptest and for
// embedding behind an existing server).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown. It blocks; the returned
// error is nil after a clean Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	s.httpSrv = srv
	err := srv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the daemon: new requests are rejected (readyz reports
// draining, admission returns 503), in-flight requests run to completion
// within ctx, then the synthesis pool is quiesced and closed and the
// cache's background scrubber is stopped.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	if s.cluster != nil {
		s.cluster.m.Close()
	}
	s.sys.Quiesce()
	s.sys.Close()
	s.store.Close()
	return err
}

// Abort kills the server without draining: every open connection is
// closed mid-flight and nothing is quiesced gracefully. This is the churn
// harness's stand-in for SIGKILL — from a client's point of view the node
// just vanished.
func (s *Server) Abort() {
	if s.httpSrv != nil {
		_ = s.httpSrv.Close()
	}
	if s.cluster != nil {
		s.cluster.m.Close()
	}
	s.sys.Close()
	s.store.Close()
}

// requestTraceID adopts the caller's X-Trace-Id (so traces of one logical
// request compose across retries and across nodes) or mints a fresh one.
func requestTraceID(r *http.Request) obs.TraceID {
	if v := r.Header.Get(traceIDHeader); v != "" {
		if id, err := obs.ParseTraceID(v); err == nil && !id.IsZero() {
			return id
		}
	}
	return obs.NewTraceID()
}

// instrument wraps a handler with per-request tracing, admission control
// (deadline-aware shedding, brownout overflow), deadline propagation and
// traffic metrics. Every request gets a trace — adopted from X-Trace-Id or
// freshly minted — whose root span is the request wall time; the trace is
// registered with the flight recorder before the handler runs (so hung
// requests are inspectable in flight) and committed when it completes,
// with the final status as a tail-bucket exemplar on the latency
// histogram.
func (s *Server) instrument(endpoint string, h func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tr := obs.NewTrace(requestTraceID(r), endpoint, "server."+endpoint)
		r = r.WithContext(obs.WithTrace(r.Context(), tr))
		w.Header().Set(traceIDHeader, tr.ID.String())
		s.flight.Begin(tr)
		// admission covers everything between arrival and the handler
		// getting the request: shed checks plus the semaphore acquisition.
		adm := tr.Root.StartChild("admission")
		code := http.StatusOK
		admitted := false
		defer func() {
			s.latency.ObserveTraced(time.Since(start).Seconds(), tr.ID.String())
			if admitted {
				// Only admitted requests feed the service-time EWMA: sheds
				// complete in microseconds and would talk the estimate down.
				s.est.observe(endpoint, time.Since(start))
			}
			s.reg.Counter("cgra_server_requests_total",
				obs.L("endpoint", endpoint), obs.L("code", strconv.Itoa(code))).Inc()
			s.flight.End(tr, code)
		}()
		if s.draining.Load() {
			adm.Event("shed", "draining")
			adm.Finish()
			code = writeShed(w, r, http.StatusServiceUnavailable, codeDraining,
				"draining", time.Second)
			return
		}
		// Deadline-aware shedding: reject before taking a slot when the
		// announced deadline cannot be met at the current queue depth.
		if dl := clientDeadline(r); dl > 0 {
			if est := s.expectedLatency(endpoint); est > dl {
				s.shed.Inc()
				s.deadlineShed.Inc()
				s.bo.noteShed(time.Now())
				adm.Event("shed", "deadline_unmeetable")
				adm.Finish()
				code = writeShed(w, r, http.StatusTooManyRequests, codeDeadlineUnmeetable,
					fmt.Sprintf("deadline %v unmeetable: expected latency %v at current load", dl, est), est)
				return
			}
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.shed.Inc()
			s.bo.noteShed(time.Now())
			if endpoint == "run" && s.BrownoutActive() {
				// Brownout: serve the overflow on the host interpreter
				// instead of shedding it.
				s.brownoutServes.Inc()
				adm.Event("brownout_serve", "overflow served by host interpreter")
				adm.Finish()
				code = s.handleRunDegraded(w, r)
				return
			}
			adm.Event("shed", "overloaded")
			adm.Finish()
			code = writeShed(w, r, http.StatusTooManyRequests, codeOverloaded,
				"overloaded", s.retryHint(endpoint))
			return
		}
		admitted = true
		adm.Finish()
		s.inflight.Add(1)
		defer func() { s.inflight.Add(-1); <-s.sem }()
		code = h(w, r)
	}
}

// requestCtx derives the per-request context from the deadline field (or
// the server default).
func (s *Server) requestCtx(r *http.Request, deadlineMS int64) (context.Context, context.CancelFunc) {
	d := s.deadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return writeError(w, r, http.StatusMethodNotAllowed, codeBadMethod, "POST required")
	}
	dec := obs.ContextSpan(r.Context()).StartChild("decode")
	var req CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		dec.Finish()
		return writeError(w, r, http.StatusBadRequest, codeBadRequest, "bad request body: "+err.Error())
	}
	k, err := irtext.Parse(req.Source)
	dec.Finish()
	if err != nil {
		return writeError(w, r, http.StatusBadRequest, codeBadRequest, err.Error())
	}
	ctx, cancel := s.requestCtx(r, req.DeadlineMS)
	defer cancel()

	// Register under the digest lock: the same source re-registers as a
	// no-op, different source under a taken name conflicts.
	s.mu.Lock()
	digest := k.Digest()
	if prev, ok := s.digests[k.Name]; ok {
		if prev != digest {
			s.mu.Unlock()
			return writeError(w, r, http.StatusConflict, codeConflict,
				fmt.Sprintf("kernel %q already registered with different source", k.Name))
		}
	} else {
		if err := s.sys.Register(k); err != nil {
			s.mu.Unlock()
			return writeError(w, r, http.StatusConflict, codeConflict, err.Error())
		}
		s.digests[k.Name] = digest
	}
	s.mu.Unlock()

	installed := s.sys.Synthesized(k.Name)
	start := time.Now()
	// Clustered nodes try the fleet first: fetch the artifact from its
	// consistent-hash owner (forwarding the compile there when nobody
	// holds it yet), so one compile warms every replica. A forwarded
	// request never re-routes — the sender already decided we own it.
	fromPeer := false
	if s.cluster != nil && !installed && r.Header.Get(forwardedHeader) == "" {
		fromPeer = s.clusterWarm(ctx, k.Name, req.Source)
	}
	info, err := s.sys.SynthesizeCtx(ctx, k.Name)
	if err != nil {
		if errIsDeadline(err) {
			return writeError(w, r, http.StatusGatewayTimeout, codeDeadline, err.Error())
		}
		return writeError(w, r, http.StatusUnprocessableEntity, codeCompileFailed, err.Error())
	}
	src := info.CacheSource
	switch {
	case installed:
		src = "installed"
	case fromPeer:
		src = "peer"
	case src == "":
		src = "compile"
	}
	rsp := obs.ContextSpan(r.Context()).StartChild("respond")
	defer rsp.Finish()
	return writeJSON(w, http.StatusOK, CompileResponse{
		Kernel:    info.Kernel,
		Key:       info.Key,
		Contexts:  info.Contexts,
		MaxRF:     info.MaxRF,
		Cached:    src != "compile",
		Source:    src,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		TraceID:   traceIDOf(r),
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return writeError(w, r, http.StatusMethodNotAllowed, codeBadMethod, "POST required")
	}
	dec := obs.ContextSpan(r.Context()).StartChild("decode")
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		dec.Finish()
		return writeError(w, r, http.StatusBadRequest, codeBadRequest, "bad request body: "+err.Error())
	}
	if s.sys.Kernel(req.Kernel) == nil {
		dec.Finish()
		return writeError(w, r, http.StatusNotFound, codeUnknownKernel, fmt.Sprintf("unknown kernel %q", req.Kernel))
	}
	ctx, cancel := s.requestCtx(r, req.DeadlineMS)
	defer cancel()
	host := ir.NewHost()
	for name, data := range req.Arrays {
		host.Arrays[name] = append([]int32(nil), data...)
	}
	dec.Set("arrays", int64(len(req.Arrays)))
	dec.Finish()
	if s.batcher != nil && !req.NoBatch {
		if code, handled := s.serveBatched(w, r, &req, host); handled {
			return code
		}
	}
	res, err := s.sys.InvokeCtx(ctx, req.Kernel, req.Args, host)
	if err != nil {
		if errIsDeadline(err) {
			return writeError(w, r, http.StatusGatewayTimeout, codeDeadline, err.Error())
		}
		return writeError(w, r, http.StatusUnprocessableEntity, codeRunFailed, err.Error())
	}
	// The response carries every host array back: on small kernels the
	// JSON encode rivals the execution itself, so it gets its own span.
	rsp := obs.ContextSpan(r.Context()).StartChild("respond")
	defer rsp.Finish()
	return writeJSON(w, http.StatusOK, RunResponse{
		LiveOuts: res.LiveOuts,
		Arrays:   host.Arrays,
		Cycles:   res.Cycles,
		OnCGRA:   res.OnCGRA,
		TraceID:  traceIDOf(r),
	})
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return writeError(w, r, http.StatusMethodNotAllowed, codeBadMethod, "GET required")
	}
	names := s.sys.Kernels()
	if names == nil {
		names = []string{}
	}
	return writeJSON(w, http.StatusOK, KernelsResponse{Kernels: names})
}

// handleHealth is liveness: 200 as long as the process can serve HTTP at
// all, draining included. Orchestrators must not kill a draining daemon —
// that is what readiness is for.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleReady is readiness: whether this daemon should receive new
// traffic, with the reasons spelled out for operators. Draining or
// browned-out daemons report 503 so load balancers route around them;
// degraded cache disk and open breakers are advisory (the daemon still
// serves) but visible.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	resp := ReadyResponse{
		Draining:          s.draining.Load(),
		Brownout:          s.BrownoutActive(),
		CacheDiskDegraded: s.store.Degraded(),
		OpenBreakers:      s.sys.OpenBreakers(),
	}
	if resp.OpenBreakers == nil {
		resp.OpenBreakers = []string{}
	}
	// Peer health is advisory: a node whose peers are all dead still
	// serves (it compiles everything locally), but operators and load
	// balancers can see the fleet shrinking.
	if s.cluster != nil {
		resp.Peers = s.cluster.m.Snapshot()
	}
	resp.Ready = !resp.Draining && !resp.Brownout
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
	return code
}

// traceIDOf returns the request's trace ID as hex ("" outside a traced
// request, e.g. direct handler tests).
func traceIDOf(r *http.Request) string {
	if t := obs.TraceFrom(r.Context()); t != nil {
		return t.ID.String()
	}
	return ""
}

// writeError writes the machine-readable error envelope, stamped with the
// request's trace ID so a logged failure joins against its trace.
func writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) int {
	return writeJSON(w, status, errorResponse{Error: msg, Code: code, TraceID: traceIDOf(r)})
}

func errIsDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// CompileRequest is the body of POST /v1/compile.
type CompileRequest struct {
	// Source is the kernel in textual IR.
	Source string `json:"source"`
	// DeadlineMS bounds the request (compile included), in milliseconds.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// CompileResponse reports one compile.
type CompileResponse struct {
	Kernel   string `json:"kernel"`
	Key      string `json:"key"`
	Contexts int    `json:"contexts"`
	MaxRF    int    `json:"max_rf"`
	// Cached reports the compile was served without running the tool flow.
	Cached bool `json:"cached"`
	// Source is where the compiled kernel came from: "memory" or "disk"
	// (cache tiers), "installed" (already synthesized in this daemon), or
	// "compile" for a fresh run of the tool flow.
	Source    string  `json:"source"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// TraceID identifies this request's trace in /debug/traces/{id}.
	TraceID string `json:"trace_id,omitempty"`
}

// RunRequest is the body of POST /v1/run.
type RunRequest struct {
	Kernel     string             `json:"kernel"`
	Args       map[string]int32   `json:"args,omitempty"`
	Arrays     map[string][]int32 `json:"arrays,omitempty"`
	DeadlineMS int64              `json:"deadline_ms,omitempty"`
	// NoBatch opts this request out of same-artifact coalescing (used by
	// benchmark solo phases and latency-critical callers).
	NoBatch bool `json:"no_batch,omitempty"`
}

// RunResponse reports one execution.
type RunResponse struct {
	LiveOuts map[string]int32 `json:"live_outs"`
	// Arrays returns the heap state after the run (DMA write-back included).
	Arrays map[string][]int32 `json:"arrays,omitempty"`
	Cycles int64              `json:"cycles"`
	OnCGRA bool               `json:"on_cgra"`
	// Degraded marks a brownout result: served by the host interpreter
	// under overload instead of being shed. Correct, but no accelerator
	// cycle count.
	Degraded bool `json:"degraded,omitempty"`
	// Batched marks a coalesced result: this request ran as one lane of a
	// shared engine pass; BatchLanes is how many lanes that pass carried.
	Batched    bool `json:"batched,omitempty"`
	BatchLanes int  `json:"batch_lanes,omitempty"`
	// TraceID identifies this request's trace in /debug/traces/{id}.
	TraceID string `json:"trace_id,omitempty"`
}

// KernelsResponse lists the registered kernels.
type KernelsResponse struct {
	Kernels []string `json:"kernels"`
}

// ReadyResponse is the body of GET /readyz.
type ReadyResponse struct {
	Ready             bool     `json:"ready"`
	Draining          bool     `json:"draining"`
	Brownout          bool     `json:"brownout"`
	CacheDiskDegraded bool     `json:"cache_disk_degraded"`
	OpenBreakers      []string `json:"open_breakers"`
	// Peers reports the probed cluster membership (clustered nodes only).
	Peers []cluster.PeerStatus `json:"peers,omitempty"`
}

// errorResponse is the JSON error envelope. Code is a stable
// machine-readable token (see the code* constants); Error is the
// human-readable reason; RetryAfterMS is set on shed responses.
type errorResponse struct {
	Error        string `json:"error"`
	Code         string `json:"code,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	// TraceID identifies the failed request's trace in /debug/traces/{id},
	// so an error logged by a client joins against the server-side record.
	TraceID string `json:"trace_id,omitempty"`
}
