package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestParseRetryAfterForms covers every Retry-After shape a client can
// meet: the precise millisecond header, RFC 9110 delta-seconds, an
// HTTP-date (proxies and load balancers emit these), and garbage.
func TestParseRetryAfterForms(t *testing.T) {
	mk := func(kv ...string) http.Header {
		h := http.Header{}
		for i := 0; i+1 < len(kv); i += 2 {
			h.Set(kv[i], kv[i+1])
		}
		return h
	}

	if d := parseRetryAfter(mk("Retry-After", "2")); d != 2*time.Second {
		t.Fatalf("delta-seconds: %v, want 2s", d)
	}
	if d := parseRetryAfter(mk(retryAfterMSHeader, "1500", "Retry-After", "10")); d != 1500*time.Millisecond {
		t.Fatalf("ms header should win: %v, want 1.5s", d)
	}

	// HTTP-date in the future: the hint is the remaining wait. The format
	// has one-second resolution, so accept anything in (2s, 5s].
	future := time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(mk("Retry-After", future)); d <= 2*time.Second || d > 5*time.Second {
		t.Fatalf("future HTTP-date: %v, want (2s, 5s]", d)
	}
	// A date in the past means "retry now".
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(mk("Retry-After", past)); d != 0 {
		t.Fatalf("past HTTP-date: %v, want 0", d)
	}
	if d := parseRetryAfter(mk("Retry-After", "soon-ish")); d != 0 {
		t.Fatalf("garbage: %v, want 0", d)
	}
	if d := parseRetryAfter(mk()); d != 0 {
		t.Fatalf("absent: %v, want 0", d)
	}
}

// TestClientRetryHonorsHTTPDateRetryAfter: a 503 carrying an HTTP-date
// Retry-After delays the retry like a delta-seconds hint would.
func TestClientRetryHonorsHTTPDateRetryAfter(t *testing.T) {
	date := time.Now().Add(1500 * time.Millisecond).UTC().Format(http.TimeFormat)
	f := &flaky{steps: []func(http.ResponseWriter){func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", date)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"overloaded"}`)
	}}}
	c := newFlakyClient(t, f)
	c.Backoff = time.Millisecond // the server's date must dominate the wait
	if _, err := c.Kernels(context.Background()); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if f.callCount() != 2 {
		t.Fatalf("calls = %d, want 2", f.callCount())
	}
	// The formatted date has second resolution: at least ~0.5s must remain.
	if gap := f.gap(0); gap < 300*time.Millisecond {
		t.Fatalf("retried after %v, before the HTTP-date Retry-After", gap)
	}
}

// TestClientFailsOverToSecondEndpoint: a multi-endpoint client pinned to
// a dead node rotates to the live one inside a single logical call, and
// stays pinned there for subsequent calls.
func TestClientFailsOverToSecondEndpoint(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	good := &flaky{}
	ts := httptest.NewServer(good.handler())
	defer ts.Close()

	c := NewMultiClient(0, deadURL, ts.URL)
	c.Backoff = time.Millisecond
	if c.base() != deadURL {
		t.Fatalf("initial pin = %s, want the dead endpoint", c.base())
	}
	if _, err := c.Kernels(context.Background()); err != nil {
		t.Fatalf("failover call: %v", err)
	}
	if c.base() != ts.URL {
		t.Fatalf("pin after failover = %s, want %s", c.base(), ts.URL)
	}
	// The next call goes straight to the live endpoint.
	if _, err := c.Kernels(context.Background()); err != nil {
		t.Fatal(err)
	}
	if good.callCount() != 2 {
		t.Fatalf("live endpoint saw %d calls, want 2", good.callCount())
	}
}

// TestClientFailsOverOnShed: a 503 shed rotates the pin too — an
// overloaded node is not asked twice while a sibling is idle.
func TestClientFailsOverOnShed(t *testing.T) {
	busy := &flaky{steps: []func(http.ResponseWriter){
		shedStep(http.StatusServiceUnavailable, time.Millisecond),
	}}
	busyTS := httptest.NewServer(busy.handler())
	defer busyTS.Close()
	idle := &flaky{}
	idleTS := httptest.NewServer(idle.handler())
	defer idleTS.Close()

	c := NewMultiClient(0, busyTS.URL, idleTS.URL)
	c.Backoff = time.Millisecond
	if _, err := c.Kernels(context.Background()); err != nil {
		t.Fatalf("shed failover: %v", err)
	}
	if busy.callCount() != 1 || idle.callCount() != 1 {
		t.Fatalf("calls busy=%d idle=%d, want 1/1", busy.callCount(), idle.callCount())
	}
}

// TestMultiClientStartSpread: different start values pin different
// endpoints, so a fleet of clients load-spreads without a balancer.
func TestMultiClientStartSpread(t *testing.T) {
	a, b := "http://a", "http://b"
	if got := NewMultiClient(0, a, b).base(); got != a {
		t.Fatalf("start 0 pinned %s", got)
	}
	if got := NewMultiClient(1, a, b).base(); got != b {
		t.Fatalf("start 1 pinned %s", got)
	}
	if got := NewMultiClient(5, a, b).base(); got != b {
		t.Fatalf("start 5 pinned %s", got)
	}
}
