package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cgra/internal/obs"
	"cgra/internal/workload"
)

// spanNames flattens an exported span tree into the set of span names.
func spanNames(sp *obs.SpanExport, out map[string]*obs.SpanExport) {
	if sp == nil {
		return
	}
	out[sp.Name] = sp
	for _, c := range sp.Children {
		spanNames(c, out)
	}
}

// TestRunTraceEndToEnd proves one /v1/run produces a single coherent
// trace: admission, cache and engine spans under the server root, with
// the instrumented phases accounting for (almost) all of the request's
// wall time.
func TestRunTraceEndToEnd(t *testing.T) {
	s, c, cleanup := newTestServer(t, t.TempDir())
	defer cleanup()
	compileWorkload(t, c, "dot")
	resp := runWorkload(t, c, "dot")
	if resp.TraceID == "" {
		t.Fatal("run response has no trace_id")
	}

	tr := s.Flight().Get(resp.TraceID)
	if tr == nil {
		t.Fatalf("trace %s not in the flight recorder", resp.TraceID)
	}
	exp := tr.Export()
	if !exp.Complete || exp.Status != http.StatusOK || exp.Endpoint != "run" {
		t.Fatalf("trace meta: %+v", exp)
	}
	spans := map[string]*obs.SpanExport{}
	spanNames(exp.Root, spans)
	for _, want := range []string{"server.run", "admission", "decode", "system.invoke", "cache.lookup", "engine"} {
		if spans[want] == nil {
			names := make([]string, 0, len(spans))
			for n := range spans {
				names = append(names, n)
			}
			t.Fatalf("trace missing span %q (have %v)", want, names)
		}
	}
	// The dispatch lookup saw the installed compiled entry, and the
	// engine took the predecoded fast path.
	attr := func(sp *obs.SpanExport, name string) string {
		for _, a := range sp.Attrs {
			if a.Name == name {
				return a.Value
			}
		}
		return ""
	}
	if got := attr(spans["cache.lookup"], "source"); got != "installed" {
		t.Fatalf("cache.lookup source = %q, want installed", got)
	}
	if got := attr(spans["engine"], "path"); got != "fast" {
		t.Fatalf("engine path = %q, want fast", got)
	}
	// Instrumented phases must cover the request: the top-level children
	// of the root sum to at least 90% of the root's wall time. Requests
	// here finish in tens of microseconds, where scheduler noise can eat
	// a big relative slice, so several runs get a shot at the bar.
	coverage := func(exp *obs.TraceExport) float64 {
		var covered float64
		for _, c := range exp.Root.Children {
			covered += c.DurationMS
		}
		return covered / exp.Root.DurationMS
	}
	best := coverage(exp)
	for i := 0; i < 20 && best < 0.9; i++ {
		r := runWorkload(t, c, "dot")
		if tr := s.Flight().Get(r.TraceID); tr != nil {
			if got := coverage(tr.Export()); got > best {
				best = got
			}
		}
	}
	if best < 0.9 {
		t.Fatalf("best span coverage %.1f%% of wall time (<90%%)", best*100)
	}
}

// TestCompileTraceHasPipelinePhases proves a fresh /v1/compile trace
// contains the tool-flow phase spans re-parented under the request.
func TestCompileTraceHasPipelinePhases(t *testing.T) {
	s, c, cleanup := newTestServer(t, t.TempDir())
	defer cleanup()
	resp := compileWorkload(t, c, "fir")
	if resp.TraceID == "" {
		t.Fatal("compile response has no trace_id")
	}
	tr := s.Flight().Get(resp.TraceID)
	if tr == nil {
		t.Fatalf("trace %s not recorded", resp.TraceID)
	}
	spans := map[string]*obs.SpanExport{}
	spanNames(tr.Export().Root, spans)
	for _, want := range []string{"server.compile", "admission", "system.synthesize", "cache.get", "compile", "sched", "ctxgen", "cache.put"} {
		if spans[want] == nil {
			names := make([]string, 0, len(spans))
			for n := range spans {
				names = append(names, n)
			}
			t.Fatalf("compile trace missing span %q (have %v)", want, names)
		}
	}
	// A warm recompile's trace shows the cache hit instead of a compile.
	warm := compileWorkload(t, c, "fir")
	wtr := s.Flight().Get(warm.TraceID)
	if wtr == nil {
		t.Fatalf("warm trace %s not recorded", warm.TraceID)
	}
	wspans := map[string]*obs.SpanExport{}
	spanNames(wtr.Export().Root, wspans)
	if wspans["sched"] != nil {
		t.Fatal("warm compile trace ran the scheduler")
	}
}

// TestTraceIDPropagatesThroughRetryStorm drives a client call through a
// scripted flaky front (two 503 sheds, then proxy to the real daemon) and
// proves every attempt carried the same X-Trace-Id, the error bodies
// carried it, and the final response's trace is recorded server-side
// under exactly that ID.
func TestTraceIDPropagatesThroughRetryStorm(t *testing.T) {
	s, direct, cleanup := newTestServer(t, t.TempDir())
	defer cleanup()
	compileWorkload(t, direct, "dot")

	backend := httptest.NewServer(s.Handler())
	defer backend.Close()

	var mu sync.Mutex
	var seen []string
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get("X-Trace-Id"))
		n := len(seen)
		mu.Unlock()
		if n <= 2 {
			writeShed(w, r, http.StatusServiceUnavailable, codeOverloaded, "synthetic overload", 0)
			return
		}
		// Proxy the surviving attempt to the real daemon, headers intact.
		req, err := http.NewRequest(r.Method, backend.URL+r.URL.Path, r.Body)
		if err != nil {
			t.Error(err)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		if _, err := io.Copy(w, resp.Body); err != nil {
			t.Error(err)
		}
	}))
	defer front.Close()

	c := NewClient(front.URL)
	c.Backoff = time.Millisecond // retry almost immediately
	w, err := workload.ByName("dot")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Run(context.Background(), w.Kernel.Name, w.Args(w.DefaultSize), w.Host(w.DefaultSize).Arrays)
	if err != nil {
		t.Fatalf("retry storm did not recover: %v", err)
	}

	mu.Lock()
	attempts := append([]string(nil), seen...)
	mu.Unlock()
	if len(attempts) != 3 {
		t.Fatalf("%d attempts, want 3", len(attempts))
	}
	for i, id := range attempts {
		if id == "" {
			t.Fatalf("attempt %d carried no X-Trace-Id", i)
		}
		if id != attempts[0] {
			t.Fatalf("attempt %d changed trace ID: %s vs %s", i, id, attempts[0])
		}
	}
	if resp.TraceID != attempts[0] {
		t.Fatalf("response trace_id %s != propagated %s", resp.TraceID, attempts[0])
	}
	if tr := s.Flight().Get(resp.TraceID); tr == nil {
		t.Fatal("propagated trace not recorded server-side")
	}
}

// TestErrorBodyCarriesTraceID proves machine-readable error envelopes and
// client error strings expose the trace ID.
func TestErrorBodyCarriesTraceID(t *testing.T) {
	s, c, cleanup := newTestServer(t, "")
	defer cleanup()
	_, err := c.Run(context.Background(), "no-such-kernel", nil, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("got %v, want APIError", err)
	}
	if apiErr.TraceID == "" {
		t.Fatalf("APIError has no trace ID: %+v", apiErr)
	}
	if !strings.Contains(apiErr.Error(), apiErr.TraceID) {
		t.Fatalf("error string %q does not mention the trace", apiErr.Error())
	}
	// The failed request's trace is itself recorded, with the 404 status.
	tr := s.Flight().Get(apiErr.TraceID)
	if tr == nil {
		t.Fatal("failed request's trace not recorded")
	}
	if tr.Status() != http.StatusNotFound {
		t.Fatalf("trace status = %d, want 404", tr.Status())
	}
}

// TestDebugTracesEndpoint proves the server exposes the flight recorder
// over HTTP, admission-free, in both formats.
func TestDebugTracesEndpoint(t *testing.T) {
	s, c, cleanup := newTestServer(t, t.TempDir())
	defer cleanup()
	_ = s
	compileWorkload(t, c, "dot")
	resp := runWorkload(t, c, "dot")

	var list struct {
		Traces []*obs.TraceExport `json:"traces"`
	}
	httpGetJSON(t, c.Base+"/debug/traces?endpoint=run", &list)
	if len(list.Traces) == 0 {
		t.Fatal("no run traces listed")
	}
	var one obs.TraceExport
	httpGetJSON(t, c.Base+"/debug/traces/"+resp.TraceID, &one)
	if one.ID != resp.TraceID {
		t.Fatalf("trace id = %s, want %s", one.ID, resp.TraceID)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	httpGetJSON(t, c.Base+"/debug/traces?format=chrome", &chrome)
	found := false
	for _, ev := range chrome.TraceEvents {
		if ev.Name == "server.run" && ev.Ph == "X" {
			found = true
		}
	}
	if !found {
		t.Fatal("chrome export has no server.run complete event")
	}
}

// TestLatencyExemplarsLinkTraces proves the request histogram's tail
// buckets carry trace-ID exemplars pointing at recorded traces.
func TestLatencyExemplarsLinkTraces(t *testing.T) {
	s, c, cleanup := newTestServer(t, t.TempDir())
	defer cleanup()
	compileWorkload(t, c, "dot")
	runWorkload(t, c, "dot")

	var found *obs.Exemplar
	for _, mp := range s.Metrics().Snapshot() {
		if mp.Name != "cgra_server_request_seconds" {
			continue
		}
		for i := range mp.Buckets {
			if mp.Buckets[i].Exemplar != nil {
				found = mp.Buckets[i].Exemplar
			}
		}
	}
	if found == nil {
		t.Fatal("request histogram has no exemplars")
	}
	if tr := s.Flight().Get(found.TraceID); tr == nil {
		t.Fatalf("exemplar trace %s not in the flight recorder", found.TraceID)
	}
}

func httpGetJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
