// Same-artifact request coalescing for /v1/run: requests that target the
// same installed artifact inside a small linger window are collected into
// one batch and executed as data-parallel lanes of a single engine pass
// (system.InvokeBatch), singleflight-style — whichever goroutine closes
// the batch (the lane that fills it, the linger timer, or a
// deadline-pressed joiner) executes it, and every waiter receives its own
// lane's result.
//
// Batching is strictly opportunistic and never trades correctness or the
// latency contract for throughput:
//
//   - only kernels that would dispatch to the predecoded engine batch
//     (system.Batchable); cold or host-bound kernels run solo,
//   - a request whose announced deadline cannot absorb the linger window
//     runs solo; one that can start but not wait flushes the open batch
//     immediately (flush reason "deadline"),
//   - brownout/degraded requests never reach the batcher (they are served
//     by the host interpreter before /v1/run's handler runs), and a
//     request can opt out per-call with "no_batch": true,
//   - an open batch flushes even while the server drains: the linger timer
//     keeps running during http.Server.Shutdown and the system is closed
//     only after in-flight handlers (the waiters) return.
package server

import (
	"context"
	"net/http"
	"sync"
	"time"

	"cgra/internal/ir"
	"cgra/internal/obs"
	"cgra/internal/system"
)

// Batch flush reasons (the label values of cgra_run_batch_flush_total).
const (
	flushFull     = "full"
	flushLinger   = "linger"
	flushDeadline = "deadline"
)

// batchSizeBuckets spans solo-sized flushes to the largest lane counts.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// batchLane is one request waiting inside a batch. done is closed by the
// flusher after out/lanes/reason are filled in.
type batchLane struct {
	args     map[string]int32
	host     *ir.Host
	deadline time.Duration
	done     chan struct{}
	out      system.BatchOutcome
	lanes    int
	reason   string
}

// runBatch is one open (or flushing) batch for a single artifact key.
type runBatch struct {
	kernel string
	key    string
	lanes  []*batchLane
	timer  *time.Timer
	closed bool
}

// runBatcher coalesces /v1/run requests per artifact key.
type runBatcher struct {
	sys      *system.System
	window   time.Duration
	maxLanes int
	fallback time.Duration // batch execution deadline floor

	mu   sync.Mutex
	open map[string]*runBatch

	batched     *obs.Counter
	sizeHist    *obs.Histogram
	flushes     map[string]*obs.Counter
	soloLateral map[string]*obs.Counter
}

func newRunBatcher(sys *system.System, reg *obs.Registry, window time.Duration, maxLanes int, fallback time.Duration) *runBatcher {
	if maxLanes <= 0 {
		maxLanes = 16
	}
	reg.Help("cgra_run_batched_total", "run requests served through a coalesced batch")
	reg.Help("cgra_run_batch_size", "lanes per flushed run batch")
	reg.Help("cgra_run_batch_flush_total", "batch flushes by reason (full|linger|deadline)")
	reg.Help("cgra_run_batch_solo_total", "batch-eligible run requests that ran solo, by reason")
	return &runBatcher{
		sys:      sys,
		window:   window,
		maxLanes: maxLanes,
		fallback: fallback,
		open:     map[string]*runBatch{},
		batched:  reg.Counter("cgra_run_batched_total"),
		sizeHist: reg.Histogram("cgra_run_batch_size", batchSizeBuckets),
		flushes: map[string]*obs.Counter{
			flushFull:     reg.Counter("cgra_run_batch_flush_total", obs.L("reason", flushFull)),
			flushLinger:   reg.Counter("cgra_run_batch_flush_total", obs.L("reason", flushLinger)),
			flushDeadline: reg.Counter("cgra_run_batch_flush_total", obs.L("reason", flushDeadline)),
		},
		soloLateral: map[string]*obs.Counter{
			"deadline": reg.Counter("cgra_run_batch_solo_total", obs.L("reason", "deadline")),
			"cold":     reg.Counter("cgra_run_batch_solo_total", obs.L("reason", "cold")),
		},
	}
}

// submit joins (or opens) the batch for key. It returns the caller's lane,
// plus the batch to flush when the caller must do so itself: because its
// lane filled the batch (reason full) or because its deadline cannot wait
// out the linger (reason deadline, rush=true).
func (b *runBatcher) submit(kernel, key string, ln *batchLane, rush bool) (bt *runBatch, flushReason string) {
	b.mu.Lock()
	bt = b.open[key]
	if bt == nil || bt.closed || len(bt.lanes) >= b.maxLanes {
		bt = &runBatch{kernel: kernel, key: key}
		b.open[key] = bt
		bt.timer = time.AfterFunc(b.window, func() { b.flush(bt, flushLinger) })
	}
	bt.lanes = append(bt.lanes, ln)
	full := len(bt.lanes) >= b.maxLanes
	b.mu.Unlock()
	switch {
	case full:
		return bt, flushFull
	case rush:
		return bt, flushDeadline
	}
	return bt, ""
}

// flush closes the batch and executes it in the calling goroutine. Exactly
// one caller wins; late flush attempts (e.g. the linger timer racing a
// full-batch flush) are no-ops.
func (b *runBatcher) flush(bt *runBatch, reason string) {
	b.mu.Lock()
	if bt.closed {
		b.mu.Unlock()
		return
	}
	bt.closed = true
	if b.open[bt.key] == bt {
		delete(b.open, bt.key)
	}
	lanes := bt.lanes
	b.mu.Unlock()
	bt.timer.Stop()

	b.flushes[reason].Inc()
	b.sizeHist.Observe(float64(len(lanes)))
	b.batched.Add(int64(len(lanes)))

	// The batch runs under its own context: one waiter's cancellation must
	// not kill its siblings' lanes. The timeout is the widest lane
	// deadline (every lane's own deadline is enforced again by its waiting
	// handler).
	budget := b.fallback
	for _, ln := range lanes {
		if ln.deadline > budget {
			budget = ln.deadline
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()

	reqs := make([]system.BatchRequest, len(lanes))
	for i, ln := range lanes {
		reqs[i] = system.BatchRequest{Args: ln.args, Host: ln.host}
	}
	outs := b.sys.InvokeBatch(ctx, bt.kernel, reqs)
	for i, ln := range lanes {
		ln.out = outs[i]
		ln.lanes = len(lanes)
		ln.reason = reason
		close(ln.done)
	}
}

// serveBatched routes one decoded /v1/run request through the coalescer.
// handled=false means the request is not batchable right now (cold kernel,
// deadline too tight) and the caller should run the scalar path; the host
// is not touched in that case.
func (s *Server) serveBatched(w http.ResponseWriter, r *http.Request, req *RunRequest, host *ir.Host) (code int, handled bool) {
	b := s.batcher
	key, ok := s.sys.InstalledKey(req.Kernel)
	if !ok || !s.sys.Batchable(req.Kernel) {
		b.soloLateral["cold"].Inc()
		return 0, false
	}
	// The effective deadline decides whether the request can afford to
	// linger: explicit per-request deadline, else the announced header,
	// else the server default (always wide enough).
	eff := s.deadline
	if req.DeadlineMS > 0 {
		eff = time.Duration(req.DeadlineMS) * time.Millisecond
	} else if dl := clientDeadline(r); dl > 0 {
		eff = dl
	}
	if eff < 2*b.window {
		// Too tight to absorb any linger at all: run solo.
		b.soloLateral["deadline"].Inc()
		return 0, false
	}
	// Tight-but-workable deadlines join and flush immediately, taking any
	// already-lingering lanes with them.
	rush := eff < 8*b.window

	sp := obs.ContextSpan(r.Context()).StartChild("batch")
	ln := &batchLane{
		args:     req.Args,
		host:     host,
		deadline: eff,
		done:     make(chan struct{}),
	}
	bt, reason := b.submit(req.Kernel, key, ln, rush)
	if reason != "" {
		b.flush(bt, reason)
	}
	select {
	case <-ln.done:
	case <-r.Context().Done():
		sp.Annotate("flush", "abandoned")
		sp.Finish()
		return writeError(w, r, http.StatusGatewayTimeout, codeDeadline,
			"request cancelled while coalesced"), true
	}
	sp.Set("lanes", int64(ln.lanes))
	sp.Annotate("flush", ln.reason)
	sp.Finish()

	if ln.out.Err != nil {
		if errIsDeadline(ln.out.Err) {
			return writeError(w, r, http.StatusGatewayTimeout, codeDeadline, ln.out.Err.Error()), true
		}
		return writeError(w, r, http.StatusUnprocessableEntity, codeRunFailed, ln.out.Err.Error()), true
	}
	rsp := obs.ContextSpan(r.Context()).StartChild("respond")
	defer rsp.Finish()
	return writeJSON(w, http.StatusOK, RunResponse{
		LiveOuts:   ln.out.Res.LiveOuts,
		Arrays:     host.Arrays,
		Cycles:     ln.out.Res.Cycles,
		OnCGRA:     ln.out.Res.OnCGRA,
		Batched:    true,
		BatchLanes: ln.lanes,
		TraceID:    traceIDOf(r),
	}), true
}
