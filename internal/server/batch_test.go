package server

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cgra/internal/obs"
	"cgra/internal/workload"
)

// newBatchServer builds a server with request coalescing enabled and dot
// compiled/installed, so /v1/run requests are batch-eligible immediately.
func newBatchServer(t *testing.T, window time.Duration, maxLanes int) (*Server, *Client, func()) {
	t.Helper()
	cfg := testConfig(t, t.TempDir())
	cfg.BatchWindow = window
	cfg.BatchMaxLanes = maxLanes
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	cleanup := func() {
		ts.Close()
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}
	c := NewClient(ts.URL)
	compileWorkload(t, c, "dot")
	return s, c, cleanup
}

// dotReq builds a RunRequest for dot at the given size.
func dotReq(t *testing.T, size int) (RunRequest, int32) {
	t.Helper()
	w, err := workload.ByName("dot")
	if err != nil {
		t.Fatal(err)
	}
	host := w.Host(size)
	args := w.Args(size)
	want := w.Reference(size, w.Args(size), w.Host(size))
	return RunRequest{Kernel: w.Kernel.Name, Args: args, Arrays: host.Arrays}, want["s"]
}

// TestRunBatchLingerFlush coalesces concurrent same-artifact requests
// inside the linger window: every lane gets its own correct result, and at
// least one flush is driven by the linger timer.
func TestRunBatchLingerFlush(t *testing.T) {
	s, c, cleanup := newBatchServer(t, 60*time.Millisecond, 16)
	defer cleanup()

	const n = 4
	resps := make([]*RunResponse, n)
	wants := make([]int32, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		req, want := dotReq(t, 8+4*i)
		wants[i] = want
		wg.Add(1)
		go func(i int, req RunRequest) {
			defer wg.Done()
			resps[i], errs[i] = c.RunReq(context.Background(), req)
		}(i, req)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		if got := resps[i].LiveOuts["s"]; got != wants[i] {
			t.Errorf("lane %d: s = %d, want %d", i, got, wants[i])
		}
		if !resps[i].Batched {
			t.Errorf("lane %d not batched", i)
		}
	}
	reg := s.Metrics()
	if got := reg.Counter("cgra_run_batched_total").Value(); got < n {
		t.Errorf("cgra_run_batched_total = %d, want >= %d", got, n)
	}
	if got := reg.Counter("cgra_run_batch_flush_total", obs.L("reason", flushLinger)).Value(); got < 1 {
		t.Errorf("no linger flush recorded")
	}
}

// TestRunBatchFullFlush: a long linger window must not delay a batch that
// fills up — the filling lane flushes immediately with reason "full".
func TestRunBatchFullFlush(t *testing.T) {
	// Long enough that a linger flush would trip the elapsed check, short
	// enough that the default 30s deadline stays >= 8x window (no rush).
	const window = time.Second
	s, c, cleanup := newBatchServer(t, window, 2)
	defer cleanup()

	start := time.Now()
	const n = 4
	resps := make([]*RunResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		req, _ := dotReq(t, 8)
		wg.Add(1)
		go func(i int, req RunRequest) {
			defer wg.Done()
			resps[i], errs[i] = c.RunReq(context.Background(), req)
		}(i, req)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > window {
		t.Fatalf("batch waited out the linger window (%v): full flush not triggered", elapsed)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		if !resps[i].Batched || resps[i].BatchLanes != 2 {
			t.Errorf("lane %d: batched=%t lanes=%d, want batched with 2 lanes",
				i, resps[i].Batched, resps[i].BatchLanes)
		}
	}
	reg := s.Metrics()
	if got := reg.Counter("cgra_run_batch_flush_total", obs.L("reason", flushFull)).Value(); got != 2 {
		t.Errorf("full flushes = %d, want 2", got)
	}
}

// TestRunBatchDeadlineSolo: a request whose deadline cannot absorb the
// linger window bypasses the batcher entirely.
func TestRunBatchDeadlineSolo(t *testing.T) {
	s, c, cleanup := newBatchServer(t, 200*time.Millisecond, 16)
	defer cleanup()

	req, want := dotReq(t, 8)
	req.DeadlineMS = 100 // < 2x window: too tight to linger
	resp, err := c.RunReq(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Batched {
		t.Error("deadline-pressed request was batched")
	}
	if got := resp.LiveOuts["s"]; got != want {
		t.Errorf("s = %d, want %d", got, want)
	}
	reg := s.Metrics()
	if got := reg.Counter("cgra_run_batch_solo_total", obs.L("reason", "deadline")).Value(); got != 1 {
		t.Errorf("solo(deadline) = %d, want 1", got)
	}
	if got := reg.Counter("cgra_run_batched_total").Value(); got != 0 {
		t.Errorf("cgra_run_batched_total = %d, want 0", got)
	}
}

// TestRunBatchDeadlineRush: a deadline that can start a batch but not wait
// out the linger joins and flushes immediately (reason "deadline").
func TestRunBatchDeadlineRush(t *testing.T) {
	s, c, cleanup := newBatchServer(t, 200*time.Millisecond, 16)
	defer cleanup()

	req, want := dotReq(t, 8)
	req.DeadlineMS = 900 // in [2x, 8x) window: join, then rush the flush
	start := time.Now()
	resp, err := c.RunReq(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("rushed request still lingered: %v", elapsed)
	}
	if !resp.Batched || resp.BatchLanes != 1 {
		t.Errorf("batched=%t lanes=%d, want batched solo lane", resp.Batched, resp.BatchLanes)
	}
	if got := resp.LiveOuts["s"]; got != want {
		t.Errorf("s = %d, want %d", got, want)
	}
	reg := s.Metrics()
	if got := reg.Counter("cgra_run_batch_flush_total", obs.L("reason", flushDeadline)).Value(); got != 1 {
		t.Errorf("deadline flushes = %d, want 1", got)
	}
}

// TestRunBatchNoBatchOptOut: "no_batch": true skips coalescing even when
// the kernel is batch-eligible.
func TestRunBatchNoBatchOptOut(t *testing.T) {
	s, c, cleanup := newBatchServer(t, 50*time.Millisecond, 16)
	defer cleanup()

	req, want := dotReq(t, 8)
	req.NoBatch = true
	resp, err := c.RunReq(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Batched {
		t.Error("no_batch request was batched")
	}
	if got := resp.LiveOuts["s"]; got != want {
		t.Errorf("s = %d, want %d", got, want)
	}
	if got := s.Metrics().Counter("cgra_run_batched_total").Value(); got != 0 {
		t.Errorf("cgra_run_batched_total = %d, want 0", got)
	}
}

// TestRunBatchLaneErrorIsolation: a lane whose heap cannot sustain the run
// fails alone; sibling lanes in the same batch are unaffected.
func TestRunBatchLaneErrorIsolation(t *testing.T) {
	_, c, cleanup := newBatchServer(t, 60*time.Millisecond, 16)
	defer cleanup()

	const n = 3
	resps := make([]*RunResponse, n)
	errs := make([]error, n)
	wants := make([]int32, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		req, want := dotReq(t, 8)
		wants[i] = want
		if i == 1 {
			// Middle lane: heap too small for n=8 — faults on the engine
			// and again on the host recovery ladder.
			req.Arrays = map[string][]int32{"a": {}, "b": {}}
		}
		wg.Add(1)
		go func(i int, req RunRequest) {
			defer wg.Done()
			resps[i], errs[i] = c.RunReq(context.Background(), req)
		}(i, req)
	}
	wg.Wait()

	if errs[1] == nil {
		t.Error("broken lane succeeded")
	} else {
		var apiErr *APIError
		if !errors.As(errs[1], &apiErr) {
			t.Errorf("broken lane error is not an APIError: %v", errs[1])
		}
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("good lane %d poisoned: %v", i, errs[i])
		}
		if got := resps[i].LiveOuts["s"]; got != wants[i] {
			t.Errorf("good lane %d: s = %d, want %d", i, got, wants[i])
		}
	}
}

// TestRunBatchDrainDuringWindow: a request lingering in an open batch when
// Shutdown begins must still complete — the linger timer keeps running
// during the drain and the flush executes before the system is torn down.
func TestRunBatchDrainDuringWindow(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	cfg.BatchWindow = 300 * time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	compileWorkload(t, c, "dot")

	req, want := dotReq(t, 8)
	type result struct {
		resp *RunResponse
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := c.RunReq(context.Background(), req)
		done <- result{resp, err}
	}()
	// Let the request join the open batch, then start draining while it
	// is still waiting out the linger window.
	time.Sleep(75 * time.Millisecond)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("request lost during drain: %v", res.err)
	}
	if !res.resp.Batched {
		t.Error("drained request not batched")
	}
	if got := res.resp.LiveOuts["s"]; got != want {
		t.Errorf("s = %d, want %d", got, want)
	}
}
