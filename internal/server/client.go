package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"cgra/internal/obs"
)

// Retry defaults; zero-valued Client fields fall back to these.
const (
	defaultMaxAttempts = 4
	defaultBackoff     = 25 * time.Millisecond
	defaultBackoffMax  = time.Second
	defaultRetryBudget = 64
)

// Client talks to a cgrad daemon — or a cluster of them. It retries
// transient failures — 429, 502/503, and transport errors — with
// exponential backoff and jitter, honoring the server's Retry-After hints
// (delta-seconds, HTTP-date, or the precise X-Retry-After-Ms), bounded by
// a per-client retry budget, and never past the caller's context
// deadline. With multiple endpoints (Bases) the client is sticky to one
// daemon until it fails, then fails over to the next — a crashed node
// costs each client one failed attempt, not an outage. The zero retry
// configuration is production-safe; set MaxAttempts to 1 for single-shot
// semantics.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// Bases, when non-empty, is the cluster endpoint set and takes
	// precedence over Base. The client pins to one endpoint and rotates to
	// the next on transport errors and retryable statuses.
	Bases []string
	// HTTP is the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds tries per call: 0 = 4, 1 = no retries.
	MaxAttempts int
	// Backoff is the delay before the first retry (0 = 25ms); it doubles
	// per retry up to BackoffMax (0 = 1s) and is jittered into [d/2, d).
	Backoff    time.Duration
	BackoffMax time.Duration
	// RetryBudget caps retries (not first attempts) across this client's
	// lifetime, so a dying daemon cannot trap a whole fleet of callers in
	// retry loops: 0 = 64, negative = unlimited.
	RetryBudget int64

	retriesUsed atomic.Int64
	// cursor indexes the pinned endpoint in Bases (advanced on failure;
	// reads wrap modulo len(Bases)).
	cursor atomic.Int64
}

// NewClient returns a client for the daemon at base.
func NewClient(base string) *Client { return &Client{Base: base} }

// NewMultiClient returns a failover client over a set of cluster
// endpoints. Start spreads initial stickiness: clients constructed with
// different start values pin to different endpoints, so a fleet of
// callers load-spreads without a balancer.
func NewMultiClient(start int, bases ...string) *Client {
	c := &Client{Bases: bases}
	if len(bases) > 0 {
		c.cursor.Store(int64(start % len(bases)))
	}
	return c
}

// endpoints is the effective endpoint list.
func (c *Client) endpoints() []string {
	if len(c.Bases) > 0 {
		return c.Bases
	}
	return []string{c.Base}
}

// base returns the currently pinned endpoint (single-shot helpers like
// Health and Ready probe this one).
func (c *Client) base() string {
	eps := c.endpoints()
	return eps[int(c.cursor.Load())%len(eps)]
}

// failover advances the endpoint cursor past the endpoint at idx.
// CompareAndSwap keeps concurrent callers from leapfrogging healthy
// endpoints: only the first failure observation moves the pin.
func (c *Client) failover(idx int64) {
	if len(c.Bases) > 1 {
		c.cursor.CompareAndSwap(idx, idx+1)
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// RetriesUsed reports how much of the retry budget this client has spent.
func (c *Client) RetriesUsed() int64 { return c.retriesUsed.Load() }

// Compile submits kernel source; deadline 0 uses the server default.
func (c *Client) Compile(ctx context.Context, source string, deadline time.Duration) (*CompileResponse, error) {
	req := CompileRequest{Source: source, DeadlineMS: deadline.Milliseconds()}
	var resp CompileResponse
	if err := c.post(ctx, "/v1/compile", req.DeadlineMS, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Run invokes a compiled (or at least registered) kernel.
func (c *Client) Run(ctx context.Context, kernel string, args map[string]int32, arrays map[string][]int32) (*RunResponse, error) {
	return c.RunReq(ctx, RunRequest{Kernel: kernel, Args: args, Arrays: arrays})
}

// RunReq invokes a kernel with full control over the request body (per-run
// deadline, batching opt-out). The loadgen's solo phases use NoBatch to
// measure uncoalesced latency against a batching daemon.
func (c *Client) RunReq(ctx context.Context, req RunRequest) (*RunResponse, error) {
	var resp RunResponse
	if err := c.post(ctx, "/v1/run", req.DeadlineMS, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Kernels lists the daemon's registered kernels.
func (c *Client) Kernels(ctx context.Context) ([]string, error) {
	var resp KernelsResponse
	if err := c.get(ctx, "/v1/kernels", &resp); err != nil {
		return nil, err
	}
	return resp.Kernels, nil
}

// Health reports nil when the daemon process is alive (liveness; a
// draining daemon is still alive). Use Ready for routability.
func (c *Client) Health(ctx context.Context) error {
	return c.get(ctx, "/healthz", &struct {
		Status string `json:"status"`
	}{})
}

// Ready fetches the daemon's readiness report. Single-shot (a status
// probe must not retry itself ready); when the daemon answers 503 the
// report is still returned alongside the *APIError so callers can see why.
func (c *Client) Ready(ctx context.Context) (*ReadyResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base()+"/readyz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var rr ReadyResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return &rr, &APIError{Code: resp.StatusCode, ErrCode: "not_ready", Message: "daemon not ready"}
	}
	return &rr, nil
}

// APIError is a non-2xx response from the daemon.
type APIError struct {
	// Code is the HTTP status.
	Code int
	// ErrCode is the machine-readable error token from the JSON body
	// ("overloaded", "draining", "deadline_unmeetable", ...).
	ErrCode string
	Message string
	// RetryAfter is the server's backoff hint, when it sent one.
	RetryAfter time.Duration
	// TraceID names the failed request's server-side trace; paste it into
	// /debug/traces/{id} to see where the time (or the failure) went.
	TraceID string
}

func (e *APIError) Error() string {
	if e.TraceID != "" {
		return fmt.Sprintf("cgrad: HTTP %d: %s (trace %s)", e.Code, e.Message, e.TraceID)
	}
	return fmt.Sprintf("cgrad: HTTP %d: %s", e.Code, e.Message)
}

func (c *Client) post(ctx context.Context, path string, deadlineMS int64, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, deadlineMS, payload, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, 0, nil, out)
}

// do runs one request through the retry loop. The request is rebuilt from
// payload on every attempt (a consumed body cannot be replayed), and each
// attempt re-announces the remaining deadline so the server's admission
// control sheds honestly.
func (c *Client) do(ctx context.Context, method, path string, deadlineMS int64, payload []byte, out any) error {
	maxAttempts := c.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = defaultMaxAttempts
	}
	// One trace identity per logical call, shared by every retry attempt:
	// if the caller is itself inside a traced request, propagate its ID so
	// the hops compose; otherwise mint a fresh one so even a cold client
	// call is findable in the daemon's flight recorder.
	traceID := callTraceID(ctx)
	var lastErr error
	for attempt := 0; ; attempt++ {
		idx := c.cursor.Load()
		eps := c.endpoints()
		base := eps[int(idx)%len(eps)]
		var retryAfter time.Duration
		done, err := c.attempt(ctx, base, method, path, deadlineMS, traceID, payload, out, &retryAfter)
		if done {
			return err
		}
		lastErr = err
		// Transient failure: rotate off this endpoint before the retry so
		// a dead or overloaded node is not asked twice.
		c.failover(idx)
		if attempt+1 >= maxAttempts || !c.spendRetry() {
			return lastErr
		}
		delay := c.backoffDelay(attempt)
		if retryAfter > delay {
			delay = retryAfter
		}
		// Deadline-aware give-up: if the planned sleep outlives the
		// caller's deadline, retrying is theater — return the last error
		// while there is still time to act on it.
		if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) <= delay {
			return lastErr
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return lastErr
		case <-t.C:
		}
	}
}

// attempt runs a single HTTP exchange. done=true means the result is
// final (success or non-retryable failure); done=false means err is
// transient and the retry loop decides what happens next.
func (c *Client) attempt(ctx context.Context, base, method, path string, deadlineMS int64, traceID string, payload []byte, out any, retryAfter *time.Duration) (done bool, err error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, body)
	if err != nil {
		return true, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if traceID != "" {
		req.Header.Set(traceIDHeader, traceID)
	}
	if ms := announcedDeadlineMS(ctx, deadlineMS); ms > 0 {
		req.Header.Set(deadlineHeader, strconv.FormatInt(ms, 10))
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// Transport errors retry unless the caller's own context ended
		// (per-attempt transport timeouts keep retrying; the caller's
		// deadline does not).
		return ctx.Err() != nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return ctx.Err() != nil, err
	}
	if resp.StatusCode/100 == 2 {
		if out == nil {
			return true, nil
		}
		return true, json.Unmarshal(data, out)
	}
	apiErr := &APIError{Code: resp.StatusCode, Message: string(data), TraceID: resp.Header.Get(traceIDHeader)}
	var e errorResponse
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		apiErr.Message = e.Error
		apiErr.ErrCode = e.Code
		apiErr.RetryAfter = time.Duration(e.RetryAfterMS) * time.Millisecond
		if e.TraceID != "" {
			apiErr.TraceID = e.TraceID
		}
	}
	if d := parseRetryAfter(resp.Header); d > apiErr.RetryAfter {
		apiErr.RetryAfter = d
	}
	*retryAfter = apiErr.RetryAfter
	return !retryableStatus(resp.StatusCode), apiErr
}

// retryableStatus: overload and transient upstream failure. Everything
// else (4xx misuse, 422 compile/run failures, 504 deadline) is final.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// spendRetry takes one unit of the client-lifetime retry budget.
func (c *Client) spendRetry() bool {
	if c.RetryBudget < 0 {
		return true
	}
	budget := c.RetryBudget
	if budget == 0 {
		budget = defaultRetryBudget
	}
	return c.retriesUsed.Add(1) <= budget
}

// backoffDelay is the exponential schedule with jitter: base*2^attempt
// capped at max, then jittered into [d/2, d) so synchronized clients
// don't re-stampede the daemon on the same tick.
func (c *Client) backoffDelay(attempt int) time.Duration {
	d := c.Backoff
	if d <= 0 {
		d = defaultBackoff
	}
	max := c.BackoffMax
	if max <= 0 {
		max = defaultBackoffMax
	}
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)))
}

// callTraceID picks the X-Trace-Id for one logical client call: the
// enclosing traced request's ID when the caller is instrumented, else a
// freshly minted one. Shared across retries, so the server records every
// attempt of one call under the same identity.
func callTraceID(ctx context.Context) string {
	if t := obs.TraceFrom(ctx); t != nil {
		return t.ID.String()
	}
	return obs.NewTraceID().String()
}

// announcedDeadlineMS picks what to tell admission control: the explicit
// request deadline if one was set, else the remaining context deadline.
func announcedDeadlineMS(ctx context.Context, deadlineMS int64) int64 {
	if deadlineMS > 0 {
		return deadlineMS
	}
	if deadline, ok := ctx.Deadline(); ok {
		if ms := time.Until(deadline).Milliseconds(); ms > 0 {
			return ms
		}
		return 1
	}
	return 0
}

// parseRetryAfter reads the precise millisecond hint, falling back to the
// standard Retry-After header in either of its RFC 9110 forms:
// delta-seconds or an HTTP-date (common from proxies and load balancers,
// which cgrad increasingly sits behind). A date in the past means "retry
// now" and reports zero.
func parseRetryAfter(h http.Header) time.Duration {
	if v := h.Get(retryAfterMSHeader); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	if v := h.Get("Retry-After"); v != "" {
		if secs, err := strconv.ParseInt(v, 10, 64); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
		if t, err := http.ParseTime(v); err == nil {
			if d := time.Until(t); d > 0 {
				return d
			}
		}
	}
	return 0
}
