package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client talks to a cgrad daemon.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

// NewClient returns a client for the daemon at base.
func NewClient(base string) *Client { return &Client{Base: base} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Compile submits kernel source; deadline 0 uses the server default.
func (c *Client) Compile(ctx context.Context, source string, deadline time.Duration) (*CompileResponse, error) {
	req := CompileRequest{Source: source, DeadlineMS: deadline.Milliseconds()}
	var resp CompileResponse
	if err := c.post(ctx, "/v1/compile", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Run invokes a compiled (or at least registered) kernel.
func (c *Client) Run(ctx context.Context, kernel string, args map[string]int32, arrays map[string][]int32) (*RunResponse, error) {
	req := RunRequest{Kernel: kernel, Args: args, Arrays: arrays}
	var resp RunResponse
	if err := c.post(ctx, "/v1/run", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Kernels lists the daemon's registered kernels.
func (c *Client) Kernels(ctx context.Context) ([]string, error) {
	var resp KernelsResponse
	if err := c.get(ctx, "/v1/kernels", &resp); err != nil {
		return nil, err
	}
	return resp.Kernels, nil
}

// Health reports nil when the daemon is serving (not draining).
func (c *Client) Health(ctx context.Context) error {
	return c.get(ctx, "/healthz", &struct {
		Status string `json:"status"`
	}{})
}

// APIError is a non-2xx response from the daemon.
type APIError struct {
	Code    int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("cgrad: HTTP %d: %s", e.Code, e.Message)
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e errorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return &APIError{Code: resp.StatusCode, Message: e.Error}
		}
		return &APIError{Code: resp.StatusCode, Message: string(data)}
	}
	return json.Unmarshal(data, out)
}
