package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// flaky is a scripted in-process server: response i comes from steps[i],
// requests past the script succeed. It records the arrival time of every
// request so tests can assert backoff behavior.
type flaky struct {
	mu    sync.Mutex
	steps []func(w http.ResponseWriter)
	calls []time.Time
}

func (f *flaky) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		i := len(f.calls)
		f.calls = append(f.calls, time.Now())
		var step func(http.ResponseWriter)
		if i < len(f.steps) {
			step = f.steps[i]
		}
		f.mu.Unlock()
		if step != nil {
			step(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"kernels":["ok"]}`)
	}
}

func (f *flaky) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

// gap returns the arrival-time distance between request i and i+1.
func (f *flaky) gap(i int) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[i+1].Sub(f.calls[i])
}

func shedStep(status int, retryAfter time.Duration) func(http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		writeShed(w, httptest.NewRequest(http.MethodGet, "/", nil), status, codeOverloaded, "overloaded", retryAfter)
	}
}

// errStep writes a plain error envelope (no trace context).
func errStep(status int, code, msg string) func(http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		writeError(w, httptest.NewRequest(http.MethodGet, "/", nil), status, code, msg)
	}
}

func newFlakyClient(t *testing.T, f *flaky) *Client {
	t.Helper()
	ts := httptest.NewServer(f.handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL)
}

// TestClientRetryHonorsRetryAfter proves a 429 with a Retry-After hint is
// retried no earlier than the hint asks, then succeeds.
func TestClientRetryHonorsRetryAfter(t *testing.T) {
	f := &flaky{steps: []func(http.ResponseWriter){shedStep(http.StatusTooManyRequests, 40*time.Millisecond)}}
	c := newFlakyClient(t, f)
	c.Backoff = time.Millisecond // so the server's hint dominates the wait
	names, err := c.Kernels(context.Background())
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if len(names) != 1 || names[0] != "ok" {
		t.Fatalf("kernels = %v", names)
	}
	if n := f.callCount(); n != 2 {
		t.Fatalf("%d requests, want 2 (original + one retry)", n)
	}
	if gap := f.gap(0); gap < 40*time.Millisecond {
		t.Fatalf("retried after %v, before the 40ms Retry-After", gap)
	}
	if c.RetriesUsed() != 1 {
		t.Fatalf("RetriesUsed = %d, want 1", c.RetriesUsed())
	}
}

// TestClientRetries503 proves 503 (draining, transient upstream) retries.
func TestClientRetries503(t *testing.T) {
	f := &flaky{steps: []func(http.ResponseWriter){shedStep(http.StatusServiceUnavailable, time.Millisecond)}}
	c := newFlakyClient(t, f)
	c.Backoff = time.Millisecond
	if _, err := c.Kernels(context.Background()); err != nil {
		t.Fatalf("retry did not recover from 503: %v", err)
	}
	if n := f.callCount(); n != 2 {
		t.Fatalf("%d requests, want 2", n)
	}
}

// TestClientRetryBudgetExhaustion proves the client-lifetime retry budget
// stops the retry loop even when attempts remain.
func TestClientRetryBudgetExhaustion(t *testing.T) {
	f := &flaky{}
	for i := 0; i < 32; i++ {
		f.steps = append(f.steps, shedStep(http.StatusTooManyRequests, time.Millisecond))
	}
	c := newFlakyClient(t, f)
	c.Backoff = time.Millisecond
	c.MaxAttempts = 10
	c.RetryBudget = 2
	_, err := c.Kernels(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusTooManyRequests {
		t.Fatalf("exhausted budget: got %v, want the last 429", err)
	}
	if n := f.callCount(); n != 3 {
		t.Fatalf("%d requests, want 3 (original + 2 budgeted retries)", n)
	}
	// The budget is client-lifetime: the next call gets no retries at all.
	if _, err := c.Kernels(context.Background()); err == nil {
		t.Fatal("post-budget call should not have retried into the success tail")
	}
	if n := f.callCount(); n != 4 {
		t.Fatalf("%d requests after post-budget call, want 4", n)
	}
}

// TestClientBackoffJitterBounds proves retry delays land in the jitter
// window [d/2, d) of the exponential schedule instead of synchronizing.
func TestClientBackoffJitterBounds(t *testing.T) {
	const base = 80 * time.Millisecond
	f := &flaky{steps: []func(http.ResponseWriter){
		// No Retry-After hint: the client falls back to its own schedule.
		errStep(http.StatusTooManyRequests, codeOverloaded, "overloaded"),
		errStep(http.StatusTooManyRequests, codeOverloaded, "overloaded"),
	}}
	c := newFlakyClient(t, f)
	c.Backoff = base
	c.BackoffMax = base // flat schedule: both waits drawn from [base/2, base)
	if _, err := c.Kernels(context.Background()); err != nil {
		t.Fatalf("retries did not recover: %v", err)
	}
	for i := 0; i < 2; i++ {
		gap := f.gap(i)
		if gap < base/2 {
			t.Fatalf("retry %d fired after %v, before the %v jitter floor", i, gap, base/2)
		}
		if gap > base+150*time.Millisecond {
			t.Fatalf("retry %d fired after %v, way past the %v jitter ceiling", i, gap, base)
		}
	}
}

// TestClientDeadlineBeatsRetryAfter proves the client gives up immediately
// when the server's Retry-After would sleep past the caller's deadline.
func TestClientDeadlineBeatsRetryAfter(t *testing.T) {
	f := &flaky{steps: []func(http.ResponseWriter){shedStep(http.StatusTooManyRequests, 5*time.Second)}}
	c := newFlakyClient(t, f)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Kernels(ctx)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusTooManyRequests {
		t.Fatalf("got %v, want the 429 back (not a deadline error)", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("client slept %v toward a 5s Retry-After under a 200ms deadline", elapsed)
	}
	if n := f.callCount(); n != 1 {
		t.Fatalf("%d requests, want 1 (no retry fits the deadline)", n)
	}
}

// TestClientRetriesTransportTimeout proves a per-attempt transport timeout
// is retried (the caller's context is still alive) and recovers.
func TestClientRetriesTransportTimeout(t *testing.T) {
	f := &flaky{steps: []func(http.ResponseWriter){
		func(w http.ResponseWriter) { time.Sleep(300 * time.Millisecond); io.WriteString(w, `{}`) },
	}}
	c := newFlakyClient(t, f)
	c.HTTP = &http.Client{Timeout: 50 * time.Millisecond}
	c.Backoff = time.Millisecond
	if _, err := c.Kernels(context.Background()); err != nil {
		t.Fatalf("transport-timeout retry did not recover: %v", err)
	}
	if n := f.callCount(); n < 2 {
		t.Fatalf("%d requests, want at least 2", n)
	}
}

// TestClientDoesNotRetryFinalErrors proves 4xx misuse is returned
// immediately: only overload and transient upstream statuses retry.
func TestClientDoesNotRetryFinalErrors(t *testing.T) {
	f := &flaky{steps: []func(http.ResponseWriter){
		errStep(http.StatusNotFound, codeUnknownKernel, "unknown kernel"),
	}}
	c := newFlakyClient(t, f)
	_, err := c.Kernels(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusNotFound || apiErr.ErrCode != codeUnknownKernel {
		t.Fatalf("got %v, want immediate 404 with code %q", err, codeUnknownKernel)
	}
	if n := f.callCount(); n != 1 {
		t.Fatalf("%d requests, want 1 (404 is final)", n)
	}
}
