// Cluster integration: the daemon-side half of internal/cluster.
//
// A clustered daemon routes each kernel's compile to the consistent-hash
// owner of its content-addressed artifact key. A node that is not the
// owner never compiles first: it fetches the artifact from the owner
// (hedged past a slow peer), and when nobody holds it yet it forwards the
// compile to the owner — so a hot kernel is compiled exactly once
// fleet-wide, by its owner, and every other replica warms its cache over
// GET /v1/artifact/{key}. Every failure on that path (owner dead, fetch
// timeout, corrupt response, forward shed) degrades to a local compile —
// routing is an optimization, never a correctness dependency, and no
// cluster failure is user-visible.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"cgra/internal/cluster"
	"cgra/internal/obs"
)

// forwardedHeader marks a compile forwarded from a peer. The receiving
// node compiles locally — it is the owner in the sender's view — and
// never re-forwards, so disagreeing membership views cannot form a
// forwarding loop.
const forwardedHeader = "X-CGRA-Forwarded"

// codeArtifactNotFound is the machine-readable code of a 404 on
// GET /v1/artifact/{key}.
const codeArtifactNotFound = "artifact_not_found"

// clusterState is the server's routing plane: membership + fetcher plus
// per-key ownership memory for the re-ownership metric.
type clusterState struct {
	m *cluster.Membership
	f *cluster.Fetcher

	mu        sync.Mutex
	lastOwner map[string]string

	ownerChanges  *obs.Counter
	localFallback *obs.Counter
	forwards      func(outcome string) *obs.Counter
}

// newClusterState wires membership, fetcher and metrics into the server's
// registry and starts probing.
func newClusterState(cfg Config, reg *obs.Registry) *clusterState {
	reg.Help("cgra_route_owner_changes_total", "kernel keys whose consistent-hash owner changed (churn re-ownership)")
	reg.Help("cgra_cluster_local_fallback_total", "compiles served by local synthesis after the peer path failed")
	reg.Help("cgra_cluster_forward_total", "compiles forwarded to their owner shard, by outcome")
	cs := &clusterState{
		lastOwner:     map[string]string{},
		ownerChanges:  reg.Counter("cgra_route_owner_changes_total"),
		localFallback: reg.Counter("cgra_cluster_local_fallback_total"),
	}
	cs.forwards = func(outcome string) *obs.Counter {
		return reg.Counter("cgra_cluster_forward_total", obs.L("outcome", outcome))
	}
	cs.m = cluster.New(cluster.Config{
		Self:          cfg.Advertise,
		Peers:         cfg.Peers,
		ProbeInterval: cfg.ProbeInterval,
		ProbeTimeout:  cfg.ProbeTimeout,
		Registry:      reg,
		// Any ring change re-owns keys immediately, whether or not a
		// compile happens to route them afterwards — the metric tracks
		// routing churn, not traffic.
		OnChange: cs.refreshOwners,
	})
	cs.f = cluster.NewFetcher(cs.m, cluster.FetchConfig{})
	cs.m.Start()
	return cs
}

// refreshOwners recomputes the owner of every key this node has routed
// and counts the ones that moved. Runs on every peer state transition.
func (cs *clusterState) refreshOwners() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for key, prev := range cs.lastOwner {
		if cur := cs.m.Owner(key); cur != prev {
			cs.ownerChanges.Inc()
			cs.lastOwner[key] = cur
		}
	}
}

// noteOwner records key's current owner and counts re-ownership: the
// first observation is free, every subsequent change is churn.
func (cs *clusterState) noteOwner(key, owner string) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if prev, ok := cs.lastOwner[key]; ok && prev != owner {
		cs.ownerChanges.Inc()
	}
	cs.lastOwner[key] = owner
}

// Cluster exposes the node's membership (nil when not clustered) for the
// churn harness and tests.
func (s *Server) Cluster() *cluster.Membership {
	if s.cluster == nil {
		return nil
	}
	return s.cluster.m
}

// clusterWarm tries to satisfy a compile from the fleet before any local
// synthesis: route to the key's owner, fetch its artifact, and — when
// nobody holds it yet — forward the compile to the owner and fetch again.
// Returns true when the artifact was imported into the local cache (the
// following SynthesizeCtx realizes it without compiling). Returns false
// for "compile locally": this node owns the key, already holds the
// artifact, or the peer path failed.
func (s *Server) clusterWarm(ctx context.Context, name, source string) bool {
	cs := s.cluster
	sp := obs.ContextSpan(ctx).StartChild("cluster.route")
	defer sp.Finish()
	key, err := s.sys.CacheKey(name)
	if err != nil {
		sp.Annotate("decision", "no_key")
		return false
	}
	sp.Annotate("key", key[:16])
	// Observe ownership before any short-circuit: the re-ownership metric
	// tracks routing-table churn, which exists whether or not bytes move.
	owner := cs.m.Owner(key)
	cs.noteOwner(key, owner)
	sp.Annotate("owner", owner)
	if s.store.Contains(key) {
		sp.Annotate("decision", "local_cache")
		return false
	}
	// Even this key's owner fetches before compiling: a node restarted with
	// a cold disk re-warms its own shard from the replicas that imported its
	// artifacts before it died — peers are warm exactly when self is not.
	selfOwned := owner == cs.m.Self()
	if res, err := cs.f.Fetch(ctx, key); err == nil {
		if s.store.ImportCtx(ctx, key, res.Data) == nil {
			sp.Annotate("decision", "peer_fetch")
			sp.Annotate("peer", res.Peer)
			return true
		}
	} else if errors.Is(err, cluster.ErrNotFound) && !selfOwned {
		// Nobody holds the artifact: the owner compiles it — its in-process
		// singleflight collapses concurrent forwards from the whole fleet
		// into one tool-flow run — and we fetch the result.
		if ferr := s.forwardCompile(ctx, owner, source); ferr == nil {
			cs.forwards("ok").Inc()
			if res, err := cs.f.Fetch(ctx, key); err == nil {
				if s.store.ImportCtx(ctx, key, res.Data) == nil {
					sp.Annotate("decision", "forward_fetch")
					sp.Annotate("peer", res.Peer)
					return true
				}
			}
		} else {
			cs.forwards("error").Inc()
			sp.Event("forward_failed", ferr.Error())
		}
	}
	if selfOwned {
		// A miss across the fleet on a self-owned key is the normal cold
		// path, not a failure: this node is the one that should compile it.
		sp.Annotate("decision", "local_owner")
		return false
	}
	cs.localFallback.Inc()
	sp.Annotate("decision", "local_fallback")
	return false
}

// forwardCompile POSTs the compile to its owner shard, carrying the
// request's trace ID (so /debug/traces shows one cross-node tree) and the
// remaining deadline, marked forwarded so the owner cannot bounce it
// further. Single attempt: the fallback for any failure is a local
// compile, which is faster than a retry dance against a struggling peer.
func (s *Server) forwardCompile(ctx context.Context, owner, source string) error {
	sp := obs.ContextSpan(ctx).StartChild("cluster.forward")
	defer sp.Finish()
	sp.Annotate("peer", owner)
	var deadlineMS int64
	if dl, ok := ctx.Deadline(); ok {
		deadlineMS = time.Until(dl).Milliseconds()
		if deadlineMS <= 0 {
			return context.DeadlineExceeded
		}
	}
	body, err := json.Marshal(CompileRequest{Source: source, DeadlineMS: deadlineMS})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/compile", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, "1")
	if t := obs.TraceFrom(ctx); t != nil {
		req.Header.Set(traceIDHeader, t.ID.String())
	}
	if deadlineMS > 0 {
		req.Header.Set(deadlineHeader, strconv.FormatInt(deadlineMS, 10))
	}
	resp, err := s.clusterHTTP().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("forward to %s: HTTP %d: %s", owner, resp.StatusCode, bytes.TrimSpace(data))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// clusterHTTP is the transport for forwarded compiles. No client-level
// timeout: the request context carries the deadline.
func (s *Server) clusterHTTP() *http.Client { return http.DefaultClient }

// handleArtifact serves GET /v1/artifact/{key}: the framed,
// checksum-carrying cache entry, exactly as a scrub would verify it. 404
// means "compile it yourself (or ask someone else)" — a clustered peer
// treats it as a miss, never an error.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return writeError(w, r, http.StatusMethodNotAllowed, codeBadMethod, "GET required")
	}
	key := strings.TrimPrefix(r.URL.Path, "/v1/artifact/")
	if !validArtifactKey(key) {
		return writeError(w, r, http.StatusBadRequest, codeBadRequest, "malformed artifact key")
	}
	data, ok := s.store.Export(key)
	if !ok {
		return writeError(w, r, http.StatusNotFound, codeArtifactNotFound,
			fmt.Sprintf("artifact %s not cached on this node", key[:16]))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
	return http.StatusOK
}

// validArtifactKey: pipeline.Key is 64 lowercase hex digits; anything
// else (path tricks included) is rejected before it reaches the store.
func validArtifactKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// PeersResponse is the body of GET /v1/peerz.
type PeersResponse struct {
	Self  string               `json:"self"`
	Peers []cluster.PeerStatus `json:"peers"`
}

// handlePeers reports the membership view. Like /healthz it bypasses
// admission: an operator diagnosing an overloaded cluster needs it most
// exactly then. Non-clustered nodes answer with an empty set.
func (s *Server) handlePeers(w http.ResponseWriter, r *http.Request) {
	resp := PeersResponse{Peers: []cluster.PeerStatus{}}
	if s.cluster != nil {
		resp.Self = s.cluster.m.Self()
		resp.Peers = s.cluster.m.Snapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}
