package cluster

import (
	"crypto/sha256"
	"encoding/binary"
)

// RendezvousOwner picks the owner of key among members by highest random
// weight (rendezvous hashing): each member scores sha256(key, member) and
// the maximum wins. Unlike a mod-N ring, removing one member re-owns only
// that member's keys — everything else stays put, which is exactly the
// churn behavior a warm artifact cache wants.
//
// Members must be non-empty; ties (cryptographically negligible) break by
// lexicographic member order for determinism.
func RendezvousOwner(key string, members []string) string {
	var (
		best      string
		bestScore uint64
		have      bool
	)
	for _, m := range members {
		s := rendezvousScore(key, m)
		if !have || s > bestScore || (s == bestScore && m < best) {
			best, bestScore, have = m, s, true
		}
	}
	return best
}

func rendezvousScore(key, member string) uint64 {
	h := sha256.New()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(member))
	sum := h.Sum(nil)
	return binary.BigEndian.Uint64(sum[:8])
}
