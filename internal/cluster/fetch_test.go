package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// frame wraps payload in the cache entry framing (magic + version +
// checksum) so a fake peer serves bytes cache.Verify accepts.
func frame(payload []byte) []byte {
	out := []byte("CGRART01")
	out = binary.LittleEndian.AppendUint32(out, 1)
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...)
}

// artifactPeer is a fake peer serving /v1/artifact/{key} from a map, with
// an optional per-request delay and a request counter.
type artifactPeer struct {
	ts    *httptest.Server
	mu    sync.Mutex
	data  map[string][]byte
	delay time.Duration
	hits  atomic.Int32
	gate  chan struct{} // when non-nil, requests block until it closes
}

func newArtifactPeer(t *testing.T) *artifactPeer {
	t.Helper()
	p := &artifactPeer{data: map[string][]byte{}}
	p.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p.hits.Add(1)
		if p.gate != nil {
			<-p.gate
		}
		if p.delay > 0 {
			time.Sleep(p.delay)
		}
		key := strings.TrimPrefix(r.URL.Path, "/v1/artifact/")
		p.mu.Lock()
		data, ok := p.data[key]
		p.mu.Unlock()
		if !ok {
			http.Error(w, "not here", http.StatusNotFound)
			return
		}
		w.Write(data)
	}))
	t.Cleanup(p.ts.Close)
	return p
}

func (p *artifactPeer) put(key string, data []byte) {
	p.mu.Lock()
	p.data[key] = data
	p.mu.Unlock()
}

// fetchFixture: a membership over two fake peers plus a key owned by
// peers[0], so tests control which candidate is tried first.
func fetchFixture(t *testing.T, cfg FetchConfig) (*Fetcher, *artifactPeer, *artifactPeer, string) {
	t.Helper()
	a, b := newArtifactPeer(t), newArtifactPeer(t)
	m := New(Config{Self: "http://self", Peers: []string{a.ts.URL, b.ts.URL}})
	t.Cleanup(m.Close)
	f := NewFetcher(m, cfg)
	for i := 0; i < 4096; i++ {
		key := testKey(byte(i), byte(i>>8))
		if m.Owner(key) == a.ts.URL {
			return f, a, b, key
		}
	}
	t.Fatal("no key owned by peer a in 4096 tries")
	return nil, nil, nil, ""
}

// testKey builds a syntactically valid 64-hex artifact key.
func testKey(b1, b2 byte) string {
	const hex = "0123456789abcdef"
	k := make([]byte, 64)
	for i := range k {
		k[i] = hex[int(b1)%16]
	}
	k[0] = hex[int(b2)%16]
	k[1] = hex[int(b2>>4)%16]
	return string(k)
}

func TestFetchOwnerHit(t *testing.T) {
	f, a, b, key := fetchFixture(t, FetchConfig{})
	payload := []byte("compiled artifact payload")
	a.put(key, frame(payload))
	res, err := f.Fetch(context.Background(), key)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if res.Peer != a.ts.URL {
		t.Fatalf("served by %s, want owner %s", res.Peer, a.ts.URL)
	}
	if res.Hedged {
		t.Fatal("fast owner hit reported as hedged")
	}
	if string(res.Data[44:]) != string(payload) {
		t.Fatal("payload mismatch")
	}
	if b.hits.Load() != 0 {
		t.Fatalf("non-owner contacted %d times on a fast owner hit", b.hits.Load())
	}
}

// TestFetchMissFallsThrough: the owner 404s, the fallback peer holds the
// artifact — churn-safe warming (the old owner often still has it).
func TestFetchMissFallsThrough(t *testing.T) {
	f, _, b, key := fetchFixture(t, FetchConfig{})
	payload := []byte("moved artifact")
	b.put(key, frame(payload))
	res, err := f.Fetch(context.Background(), key)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if res.Peer != b.ts.URL {
		t.Fatalf("served by %s, want fallback %s", res.Peer, b.ts.URL)
	}
}

func TestFetchAllMiss(t *testing.T) {
	f, _, _, key := fetchFixture(t, FetchConfig{})
	if _, err := f.Fetch(context.Background(), key); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

// TestFetchCorruptRejected: a peer serving a torn/corrupt frame must not
// poison the caller — the fetch verifies and moves on.
func TestFetchCorruptRejected(t *testing.T) {
	f, a, b, key := fetchFixture(t, FetchConfig{})
	good := frame([]byte("the real bytes"))
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0x01
	a.put(key, bad)
	b.put(key, good)
	res, err := f.Fetch(context.Background(), key)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if res.Peer != b.ts.URL {
		t.Fatalf("served by %s, want clean peer %s", res.Peer, b.ts.URL)
	}
}

// TestFetchHedgesPastSlowOwner: a slow owner costs one hedge delay, not a
// timeout — the fallback peer wins and the result is marked hedged.
func TestFetchHedgesPastSlowOwner(t *testing.T) {
	f, a, b, key := fetchFixture(t, FetchConfig{HedgeMin: 5 * time.Millisecond, HedgeMax: 50 * time.Millisecond})
	data := frame([]byte("hot artifact"))
	a.delay = 2 * time.Second
	a.put(key, data)
	b.put(key, data)
	start := time.Now()
	res, err := f.Fetch(context.Background(), key)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if res.Peer != b.ts.URL || !res.Hedged {
		t.Fatalf("res = {peer %s, hedged %v}, want hedge win by %s", res.Peer, res.Hedged, b.ts.URL)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged fetch took %v — waited out the slow owner", elapsed)
	}
}

// TestFetchSingleflight: concurrent fetches of one key coalesce into a
// single network request.
func TestFetchSingleflight(t *testing.T) {
	f, a, _, key := fetchFixture(t, FetchConfig{HedgeMin: time.Second, HedgeMax: 2 * time.Second})
	a.gate = make(chan struct{})
	a.put(key, frame([]byte("fetched once")))

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = f.Fetch(context.Background(), key)
		}(i)
	}
	// Let the callers pile onto the in-flight call before releasing it.
	deadline := time.Now().Add(5 * time.Second)
	for a.hits.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no request reached the peer")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(a.gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
	}
	if got := a.hits.Load(); got != 1 {
		t.Fatalf("peer saw %d requests for one key, want 1 (singleflight)", got)
	}
}
