package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"cgra/internal/cache"
	"cgra/internal/obs"
)

// TraceIDHeader carries the request trace across peer hops, so a compile
// that fans out over the fleet shows up as one tree in /debug/traces. It
// must match the server's inbound trace header.
const TraceIDHeader = "X-Trace-Id"

// ErrNotFound: every candidate peer answered, none holds the artifact.
// The caller compiles locally (it is probably the owner).
var ErrNotFound = errors.New("cluster: artifact not found on any peer")

// ErrNoPeers: no live peer to fetch from (single-node cluster, or
// everyone else is dead).
var ErrNoPeers = errors.New("cluster: no live peers")

// maxFetchBytes bounds one peer artifact response; a peer that streams
// garbage must not balloon this node's memory.
const maxFetchBytes = 64 << 20

// FetchConfig tunes a Fetcher.
type FetchConfig struct {
	// HTTP is the fetch transport (nil = a dedicated client; per-attempt
	// deadlines come from the caller's context and the hedge schedule).
	HTTP *http.Client
	// HedgeMin/HedgeMax clamp the per-peer hedge delay derived from the
	// peer's EWMA fetch latency (0 = 25ms / 1s).
	HedgeMin time.Duration
	HedgeMax time.Duration
	// MaxPeers bounds how many peers one Fetch will try (0 = 3).
	MaxPeers int
}

// FetchResult is one successful peer artifact fetch.
type FetchResult struct {
	// Data is the framed artifact entry (magic + version + checksum +
	// payload), already checksum-verified.
	Data []byte
	// Peer served it.
	Peer string
	// Hedged reports the winning attempt was a hedge, not the primary.
	Hedged bool
}

// Fetcher pulls compiled artifacts from peers: owner-first candidate
// order, hedged requests with a per-peer EWMA-derived delay so a slow
// owner costs milliseconds rather than a timeout, per-key singleflight so
// a hot kernel is fetched over the network once no matter how many local
// requests miss on it, and checksum verification before anything is
// returned.
type Fetcher struct {
	m        *Membership
	http     *http.Client
	hedgeMin time.Duration
	hedgeMax time.Duration
	maxPeers int

	mu       sync.Mutex
	inflight map[string]*fetchCall

	fetchHit  *obs.Counter
	fetchMiss *obs.Counter
	fetchErr  *obs.Counter
	hedged    *obs.Counter
	hedgeWins *obs.Counter
}

// fetchCall is one in-flight singleflight fetch.
type fetchCall struct {
	done chan struct{}
	res  *FetchResult
	err  error
}

// NewFetcher builds a fetcher over a membership. Metrics land in the
// membership's registry.
func NewFetcher(m *Membership, cfg FetchConfig) *Fetcher {
	client := cfg.HTTP
	if client == nil {
		client = &http.Client{}
	}
	hedgeMin := cfg.HedgeMin
	if hedgeMin <= 0 {
		hedgeMin = 25 * time.Millisecond
	}
	hedgeMax := cfg.HedgeMax
	if hedgeMax <= hedgeMin {
		hedgeMax = time.Second
	}
	maxPeers := cfg.MaxPeers
	if maxPeers <= 0 {
		maxPeers = 3
	}
	reg := m.reg
	reg.Help("cgra_peer_fetch_total", "peer artifact fetches by outcome (hit, miss, error)")
	reg.Help("cgra_peer_fetch_hedged_total", "peer fetches where a hedge request was launched")
	reg.Help("cgra_peer_fetch_hedge_wins_total", "peer fetches won by a hedge request")
	return &Fetcher{
		m:        m,
		http:     client,
		hedgeMin: hedgeMin,
		hedgeMax: hedgeMax,
		maxPeers: maxPeers,
		inflight: map[string]*fetchCall{},

		fetchHit:  reg.Counter("cgra_peer_fetch_total", obs.L("outcome", "hit")),
		fetchMiss: reg.Counter("cgra_peer_fetch_total", obs.L("outcome", "miss")),
		fetchErr:  reg.Counter("cgra_peer_fetch_total", obs.L("outcome", "error")),
		hedged:    reg.Counter("cgra_peer_fetch_hedged_total"),
		hedgeWins: reg.Counter("cgra_peer_fetch_hedge_wins_total"),
	}
}

// Fetch retrieves the framed artifact for key from the fleet: the owner
// first, hedging to the next candidate when the owner is slow, falling
// through the remaining live peers on miss or error. Concurrent fetches
// of the same key coalesce into one network operation.
func (f *Fetcher) Fetch(ctx context.Context, key string) (*FetchResult, error) {
	sp := obs.ContextSpan(ctx).StartChild("cluster.fetch")
	defer sp.Finish()

	f.mu.Lock()
	if c, ok := f.inflight[key]; ok {
		f.mu.Unlock()
		sp.Annotate("coalesced", "true")
		select {
		case <-c.done:
			return c.res, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := &fetchCall{done: make(chan struct{})}
	f.inflight[key] = c
	f.mu.Unlock()

	c.res, c.err = f.fetch(ctx, key, sp)
	f.mu.Lock()
	delete(f.inflight, key)
	f.mu.Unlock()
	close(c.done)
	return c.res, c.err
}

// attemptResult is one peer attempt's outcome.
type attemptResult struct {
	idx      int
	peer     string
	data     []byte
	err      error
	notFound bool
	elapsed  time.Duration
}

func (f *Fetcher) fetch(ctx context.Context, key string, sp *obs.Span) (*FetchResult, error) {
	candidates := f.m.FetchCandidates(key)
	if len(candidates) > f.maxPeers {
		candidates = candidates[:f.maxPeers]
	}
	if len(candidates) == 0 {
		f.fetchErr.Inc()
		sp.Annotate("outcome", "no_peers")
		return nil, ErrNoPeers
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan attemptResult, len(candidates))
	launch := func(i int) {
		peer := candidates[i]
		go func() {
			start := time.Now()
			data, notFound, err := f.attempt(ctx, peer, key)
			results <- attemptResult{idx: i, peer: peer, data: data, err: err, notFound: notFound, elapsed: time.Since(start)}
		}()
	}

	launched := 1
	launch(0)
	hedgedAny := false
	sawNotFound := false
	var lastErr error
	hedge := time.NewTimer(f.hedgeDelay(candidates[0]))
	defer hedge.Stop()

	for pending := 1; pending > 0; {
		select {
		case <-ctx.Done():
			f.fetchErr.Inc()
			sp.Annotate("outcome", "canceled")
			return nil, ctx.Err()
		case <-hedge.C:
			// The current front-runner is slow: hedge to the next
			// candidate instead of waiting out a full timeout.
			if launched < len(candidates) {
				f.hedged.Inc()
				hedgedAny = true
				launch(launched)
				launched++
				pending++
				hedge.Reset(f.hedgeDelay(candidates[launched-1]))
			}
		case r := <-results:
			if r.err == nil && !r.notFound {
				f.noteLatency(r.peer, r.elapsed)
				f.fetchHit.Inc()
				if r.idx > 0 && hedgedAny {
					f.hedgeWins.Inc()
				}
				sp.Annotate("outcome", "hit")
				sp.Annotate("peer", r.peer)
				if hedgedAny {
					sp.Annotate("hedged", "true")
				}
				return &FetchResult{Data: r.data, Peer: r.peer, Hedged: hedgedAny && r.idx > 0}, nil
			}
			pending--
			if r.notFound {
				f.noteLatency(r.peer, r.elapsed)
				sawNotFound = true
			} else {
				lastErr = r.err
			}
			// A definite answer (miss or error) frees a slot: try the next
			// candidate immediately rather than waiting for the hedge
			// timer.
			if launched < len(candidates) {
				launch(launched)
				launched++
				pending++
			}
		}
	}
	if sawNotFound {
		f.fetchMiss.Inc()
		sp.Annotate("outcome", "miss")
		return nil, ErrNotFound
	}
	f.fetchErr.Inc()
	sp.Annotate("outcome", "error")
	if lastErr == nil {
		lastErr = ErrNoPeers
	}
	return nil, fmt.Errorf("cluster: fetch %s: %w", key, lastErr)
}

// attempt is one peer artifact GET. notFound=true means the peer answered
// authoritatively that it does not hold the key.
func (f *Fetcher) attempt(ctx context.Context, peer, key string) (data []byte, notFound bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/artifact/"+key, nil)
	if err != nil {
		return nil, false, err
	}
	if t := obs.TraceFrom(ctx); t != nil {
		req.Header.Set(TraceIDHeader, t.ID.String())
	}
	resp, err := f.http.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, true, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("cluster: %s: HTTP %d", peer, resp.StatusCode)
	}
	data, err = io.ReadAll(io.LimitReader(resp.Body, maxFetchBytes+1))
	if err != nil {
		return nil, false, err
	}
	if len(data) > maxFetchBytes {
		return nil, false, fmt.Errorf("cluster: %s: artifact exceeds %d bytes", peer, maxFetchBytes)
	}
	// Verify the frame before anyone trusts the bytes: a corrupt response
	// (bit rot in transit, a peer serving a torn read) is an error, and the
	// fetch moves on to the next candidate.
	if err := cache.Verify(data); err != nil {
		return nil, false, fmt.Errorf("cluster: %s: %v", peer, err)
	}
	return data, false, nil
}

// noteLatency feeds the peer's EWMA used to size hedge delays.
func (f *Fetcher) noteLatency(peer string, d time.Duration) {
	p, ok := f.m.byURL[peer]
	if !ok {
		return
	}
	for {
		old := p.ewmaNanos.Load()
		next := int64(d)
		if old > 0 {
			next = old + (int64(d)-old)*3/10
		}
		if p.ewmaNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// hedgeDelay is how long to give a peer before hedging past it: twice its
// EWMA fetch latency, clamped to [HedgeMin, HedgeMax]; peers with no
// latency history get 4× HedgeMin.
func (f *Fetcher) hedgeDelay(peer string) time.Duration {
	var ewma time.Duration
	if p, ok := f.m.byURL[peer]; ok {
		ewma = time.Duration(p.ewmaNanos.Load())
	}
	d := 2 * ewma
	if ewma <= 0 {
		d = 4 * f.hedgeMin
	}
	if d < f.hedgeMin {
		d = f.hedgeMin
	}
	if d > f.hedgeMax {
		d = f.hedgeMax
	}
	return d
}
