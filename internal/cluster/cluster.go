// Package cluster turns N cgrad daemons into one resilient service: a
// static-seed peer membership list kept fresh by lightweight HTTP health
// probes, consistent-hash (rendezvous) routing of content-addressed
// artifact keys to their owner shard, and checksum-verified peer-to-peer
// artifact fetch with hedging, so one node's compile warms every replica's
// cache and a node crash degrades latency instead of correctness.
//
// The membership model is deliberately simple — a fixed seed list, no
// gossip, no dynamic join — because the failure modes it must survive are
// not: probes drive each peer through an alive/suspect/dead state machine
// with hysteresis on both edges (consecutive failures to demote,
// consecutive successes to revive), so a flapping peer neither bounces
// key ownership on every blip nor keeps attracting traffic while it is
// down.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cgra/internal/obs"
)

// State is a peer's probed health.
type State int32

const (
	// StateAlive: the peer answers probes and is routable.
	StateAlive State = iota
	// StateSuspect: recent probes failed; the peer is still in the routing
	// ring (it may only be slow) but fetches hedge away from it quickly.
	StateSuspect
	// StateDead: enough consecutive probes failed that the peer is out of
	// the ring; its keys are re-owned by the survivors.
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Config assembles a Membership.
type Config struct {
	// Self is this node's advertised base URL (e.g. "http://10.0.0.3:8080").
	// Self is always a live member of its own ring.
	Self string
	// Peers is the static seed list of peer base URLs. Entries equal to
	// Self are ignored, so the same -peers flag can be passed to every
	// node.
	Peers []string
	// ProbeInterval paces the per-peer health probes (0 = 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (0 = 1s).
	ProbeTimeout time.Duration
	// SuspectAfter consecutive probe failures demote alive → suspect
	// (0 = 1).
	SuspectAfter int
	// DeadAfter consecutive probe failures demote → dead (0 = 3).
	DeadAfter int
	// ReviveAfter consecutive probe successes promote suspect/dead → alive
	// (0 = 2). This is the hysteresis that keeps a flapping peer from
	// bouncing ownership.
	ReviveAfter int
	// HTTP is the probe transport (nil = a dedicated client with
	// ProbeTimeout).
	HTTP *http.Client
	// Registry receives the peer metrics (nil = private registry).
	Registry *obs.Registry
	// OnChange, when set, is called (from a probe goroutine) after any
	// peer state transition — the ring just changed shape, so routing
	// state derived from it should be refreshed.
	OnChange func()
}

// PeerStatus is one peer's externally visible state.
type PeerStatus struct {
	URL   string `json:"url"`
	State string `json:"state"`
	// Self marks this node's own entry.
	Self bool `json:"self,omitempty"`
	// Fails is the current consecutive probe-failure count.
	Fails int `json:"fails,omitempty"`
}

// peer is one probed remote node.
type peer struct {
	url   string
	state atomic.Int32

	// Hysteresis counters: only the probe goroutine mutates them, but
	// Snapshot reads them concurrently, so they are atomic.
	fails atomic.Int32
	oks   atomic.Int32

	// ewmaNanos is the exponentially weighted fetch latency used to size
	// hedge timeouts (0 = no data yet). Written by the Fetcher.
	ewmaNanos atomic.Int64

	stateG    *obs.Gauge
	probeOK   *obs.Counter
	probeFail *obs.Counter
}

func (p *peer) setState(s State) {
	p.state.Store(int32(s))
	p.stateG.SetInt(int64(s))
}

func (p *peer) getState() State { return State(p.state.Load()) }

// Membership is the probed peer set of one node.
type Membership struct {
	self    string
	peers   []*peer
	byURL   map[string]*peer
	http    *http.Client
	probing bool

	interval     time.Duration
	timeout      time.Duration
	suspectAfter int
	deadAfter    int
	reviveAfter  int

	reg *obs.Registry

	onChange    func()
	transitions *obs.Counter

	stop      chan struct{}
	done      sync.WaitGroup
	closeOnce sync.Once
}

// New builds a membership over the seed list. Call Start to begin probing
// and Close to stop.
func New(cfg Config) *Membership {
	if cfg.Self == "" {
		panic("cluster: Config.Self required")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	interval := cfg.ProbeInterval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	timeout := cfg.ProbeTimeout
	if timeout <= 0 {
		timeout = time.Second
	}
	suspectAfter := cfg.SuspectAfter
	if suspectAfter <= 0 {
		suspectAfter = 1
	}
	deadAfter := cfg.DeadAfter
	if deadAfter <= suspectAfter {
		deadAfter = suspectAfter + 2
	}
	reviveAfter := cfg.ReviveAfter
	if reviveAfter <= 0 {
		reviveAfter = 2
	}
	client := cfg.HTTP
	if client == nil {
		client = &http.Client{Timeout: timeout}
	}
	reg.Help("cgra_peer_state", "probed peer state (0 alive, 1 suspect, 2 dead)")
	reg.Help("cgra_peer_probe_total", "peer health probes by outcome")
	reg.Help("cgra_peer_transitions_total", "peer state transitions")
	m := &Membership{
		self:         cfg.Self,
		byURL:        map[string]*peer{},
		http:         client,
		interval:     interval,
		timeout:      timeout,
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		reviveAfter:  reviveAfter,
		reg:          reg,
		onChange:     cfg.OnChange,
		transitions:  reg.Counter("cgra_peer_transitions_total"),
		stop:         make(chan struct{}),
	}
	seen := map[string]bool{cfg.Self: true}
	for _, url := range cfg.Peers {
		if url == "" || seen[url] {
			continue
		}
		seen[url] = true
		p := &peer{
			url:       url,
			stateG:    reg.Gauge("cgra_peer_state", obs.L("peer", url)),
			probeOK:   reg.Counter("cgra_peer_probe_total", obs.L("peer", url), obs.L("outcome", "ok")),
			probeFail: reg.Counter("cgra_peer_probe_total", obs.L("peer", url), obs.L("outcome", "fail")),
		}
		// Optimistic start: a peer is assumed alive until probes say
		// otherwise, so a cold-started fleet routes immediately.
		p.setState(StateAlive)
		m.peers = append(m.peers, p)
		m.byURL[url] = p
	}
	return m
}

// Registry exposes the metrics registry the membership reports into.
func (m *Membership) Registry() *obs.Registry { return m.reg }

// Self returns this node's advertised URL.
func (m *Membership) Self() string { return m.self }

// Start launches one probe goroutine per peer. Idempotent-unsafe: call
// once.
func (m *Membership) Start() {
	m.probing = true
	for _, p := range m.peers {
		m.done.Add(1)
		go m.probeLoop(p)
	}
}

// Close stops probing and waits for the probe goroutines to exit.
func (m *Membership) Close() {
	m.closeOnce.Do(func() {
		close(m.stop)
		m.done.Wait()
	})
}

// probeLoop drives one peer's state machine.
func (m *Membership) probeLoop(p *peer) {
	defer m.done.Done()
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.probeOnce(p)
		}
	}
}

// probeOnce runs one health probe and advances the hysteresis counters.
func (m *Membership) probeOnce(p *peer) {
	ok := m.probe(p.url)
	prev := p.getState()
	if ok {
		p.probeOK.Inc()
		p.fails.Store(0)
		oks := p.oks.Add(1)
		// Reviving a demoted peer needs ReviveAfter consecutive successes;
		// an alive peer just stays alive.
		if prev != StateAlive && oks >= int32(m.reviveAfter) {
			p.setState(StateAlive)
			m.transitions.Inc()
			m.notifyChange()
		}
		return
	}
	p.probeFail.Inc()
	p.oks.Store(0)
	fails := p.fails.Add(1)
	next := prev
	switch {
	case fails >= int32(m.deadAfter):
		next = StateDead
	case fails >= int32(m.suspectAfter):
		next = StateSuspect
	}
	// Demotion is monotone within one failure run: suspect never goes back
	// to alive without the revive hysteresis above.
	if next > prev {
		p.setState(next)
		m.transitions.Inc()
		m.notifyChange()
	}
}

// notifyChange fans a state transition out to the OnChange hook.
func (m *Membership) notifyChange() {
	if m.onChange != nil {
		m.onChange()
	}
}

// probe is one liveness check: /healthz answers 200 while the peer
// process serves at all (a draining peer is still alive — its cache can
// still be fetched from).
func (m *Membership) probe(url string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), m.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := m.http.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// ProbeNow runs one synchronous probe round over every peer (tests and
// the churn harness use it to advance the state machine deterministically
// without waiting out the ticker).
func (m *Membership) ProbeNow() {
	for _, p := range m.peers {
		m.probeOnce(p)
	}
}

// State reports a peer's current state (self is always alive; unknown
// URLs are dead).
func (m *Membership) State(url string) State {
	if url == m.self {
		return StateAlive
	}
	if p, ok := m.byURL[url]; ok {
		return p.getState()
	}
	return StateDead
}

// Ring returns the current routing members: self plus every peer not
// probed dead, sorted for determinism. Suspect peers stay in the ring —
// they may only be slow, and evicting them on the first blip would bounce
// ownership (and with it cache warmth) on every hiccup.
func (m *Membership) Ring() []string {
	out := []string{m.self}
	for _, p := range m.peers {
		if p.getState() != StateDead {
			out = append(out, p.url)
		}
	}
	sort.Strings(out)
	return out
}

// Alive returns the peers (excluding self) currently probed alive.
func (m *Membership) Alive() []string {
	var out []string
	for _, p := range m.peers {
		if p.getState() == StateAlive {
			out = append(out, p.url)
		}
	}
	return out
}

// FetchCandidates orders the peers to try for an artifact fetch: the
// owner first (when it is not self and not dead), then every other
// non-dead peer as fallback — after churn the previous owner often still
// holds the warm artifact. Self is never a candidate.
func (m *Membership) FetchCandidates(key string) []string {
	owner := m.Owner(key)
	var out []string
	if owner != m.self && m.State(owner) != StateDead {
		out = append(out, owner)
	}
	for _, p := range m.peers {
		if p.url == owner || p.getState() == StateDead {
			continue
		}
		out = append(out, p.url)
	}
	return out
}

// Owner returns the rendezvous-hash owner of key over the current ring.
// With an empty ring (everything else dead) the owner is self.
func (m *Membership) Owner(key string) string {
	return RendezvousOwner(key, m.Ring())
}

// Snapshot reports every member's state, self included, sorted by URL.
func (m *Membership) Snapshot() []PeerStatus {
	out := []PeerStatus{{URL: m.self, State: StateAlive.String(), Self: true}}
	for _, p := range m.peers {
		out = append(out, PeerStatus{URL: p.url, State: p.getState().String(), Fails: int(p.fails.Load())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
