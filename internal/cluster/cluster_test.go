package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// healthPeer is a toggleable /healthz endpoint.
type healthPeer struct {
	ts *httptest.Server
	up atomic.Bool
}

func newHealthPeer(t *testing.T) *healthPeer {
	t.Helper()
	p := &healthPeer{}
	p.up.Store(true)
	p.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" || !p.up.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{"status":"ok"}`)
	}))
	t.Cleanup(p.ts.Close)
	return p
}

// TestMembershipHysteresis drives one peer through the full state
// machine: alive → suspect → dead on consecutive failures, and back to
// alive only after the revive threshold of consecutive successes.
func TestMembershipHysteresis(t *testing.T) {
	peer := newHealthPeer(t)
	m := New(Config{
		Self:         "http://self",
		Peers:        []string{peer.ts.URL},
		SuspectAfter: 2,
		DeadAfter:    4,
		ReviveAfter:  2,
		ProbeTimeout: time.Second,
	})
	defer m.Close()

	if got := m.State(peer.ts.URL); got != StateAlive {
		t.Fatalf("initial state = %v, want alive", got)
	}
	peer.up.Store(false)
	m.ProbeNow()
	if got := m.State(peer.ts.URL); got != StateAlive {
		t.Fatalf("after 1 failure = %v, want alive (hysteresis)", got)
	}
	m.ProbeNow()
	if got := m.State(peer.ts.URL); got != StateSuspect {
		t.Fatalf("after 2 failures = %v, want suspect", got)
	}
	// Suspect peers stay in the routing ring.
	if ring := m.Ring(); len(ring) != 2 {
		t.Fatalf("suspect peer fell out of the ring: %v", ring)
	}
	m.ProbeNow()
	m.ProbeNow()
	if got := m.State(peer.ts.URL); got != StateDead {
		t.Fatalf("after 4 failures = %v, want dead", got)
	}
	if ring := m.Ring(); len(ring) != 1 || ring[0] != "http://self" {
		t.Fatalf("dead peer still in the ring: %v", ring)
	}

	// One success must not revive a dead peer (hysteresis both ways).
	peer.up.Store(true)
	m.ProbeNow()
	if got := m.State(peer.ts.URL); got != StateDead {
		t.Fatalf("after 1 success = %v, want still dead", got)
	}
	m.ProbeNow()
	if got := m.State(peer.ts.URL); got != StateAlive {
		t.Fatalf("after 2 successes = %v, want alive", got)
	}
	// A single blip after revival must not demote again below suspect
	// threshold.
	peer.up.Store(false)
	m.ProbeNow()
	if got := m.State(peer.ts.URL); got != StateAlive {
		t.Fatalf("one blip demoted a revived peer: %v", got)
	}
}

// TestMembershipBackgroundProbing proves Start's probe loop demotes a
// dead peer without manual probes.
func TestMembershipBackgroundProbing(t *testing.T) {
	peer := newHealthPeer(t)
	peer.up.Store(false)
	m := New(Config{
		Self:          "http://self",
		Peers:         []string{peer.ts.URL},
		ProbeInterval: 5 * time.Millisecond,
		SuspectAfter:  1,
		DeadAfter:     2,
	})
	m.Start()
	defer m.Close()
	deadline := time.Now().Add(5 * time.Second)
	for m.State(peer.ts.URL) != StateDead {
		if time.Now().After(deadline) {
			t.Fatal("peer never probed dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMembershipSelfExcluded: the seed list may contain the node's own
// URL (every node gets the same -peers flag); it must not probe itself.
func TestMembershipSelfExcluded(t *testing.T) {
	m := New(Config{Self: "http://a", Peers: []string{"http://a", "http://b", "http://b"}})
	defer m.Close()
	if len(m.peers) != 1 || m.peers[0].url != "http://b" {
		t.Fatalf("peer set = %v, want just http://b", m.Snapshot())
	}
	if got := m.State("http://a"); got != StateAlive {
		t.Fatalf("self state = %v, want alive", got)
	}
}

// TestRendezvousDeterministic: every member computes the same owner.
func TestRendezvousDeterministic(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c"}
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("key-%d", i)
		owner := RendezvousOwner(key, members)
		// Permuted member order must not change the owner.
		perm := []string{members[2], members[0], members[1]}
		if got := RendezvousOwner(key, perm); got != owner {
			t.Fatalf("key %q: owner depends on member order (%s vs %s)", key, owner, got)
		}
	}
}

// TestRendezvousMinimalReownership: removing one member re-owns only that
// member's keys — everyone else's keys stay put. This is the property
// that keeps caches warm through churn.
func TestRendezvousMinimalReownership(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c"}
	const n = 256
	owners := make(map[string]string, n)
	spread := map[string]int{}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners[key] = RendezvousOwner(key, members)
		spread[owners[key]]++
	}
	// Sanity: all three members own something.
	for _, m := range members {
		if spread[m] == 0 {
			t.Fatalf("member %s owns no keys of %d", m, n)
		}
	}
	// Kill b: only b's keys may change owner.
	survivors := []string{members[0], members[2]}
	for key, prev := range owners {
		next := RendezvousOwner(key, survivors)
		if prev != "http://b" && next != prev {
			t.Fatalf("key %q moved %s → %s though its owner survived", key, prev, next)
		}
		if prev == "http://b" && next == "http://b" {
			t.Fatalf("key %q still owned by dead member", key)
		}
	}
}

// TestFetchCandidatesOwnerFirst: candidates lead with the key's owner and
// never include self or dead peers.
func TestFetchCandidatesOwnerFirst(t *testing.T) {
	m := New(Config{Self: "http://a", Peers: []string{"http://b", "http://c"}})
	defer m.Close()
	// Find a key owned by a remote peer.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("key-%d", i)
		if owner := m.Owner(key); owner != "http://a" {
			break
		}
	}
	owner := m.Owner(key)
	cands := m.FetchCandidates(key)
	if len(cands) != 2 || cands[0] != owner {
		t.Fatalf("candidates = %v, want owner %s first", cands, owner)
	}
	for _, c := range cands {
		if c == "http://a" {
			t.Fatal("self in fetch candidates")
		}
	}
	// Dead owner: remaining peer only.
	m.byURL[owner].setState(StateDead)
	cands = m.FetchCandidates(key)
	if len(cands) != 1 || cands[0] == owner || cands[0] == "http://a" {
		t.Fatalf("candidates with dead owner = %v", cands)
	}
}
