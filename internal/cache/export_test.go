package cache

import (
	"os"
	"sync"
	"testing"
	"time"
)

// TestExportImportRoundTrip: what one node exports, another imports — and
// the importing node serves it from both tiers, including across a
// restart.
func TestExportImportRoundTrip(t *testing.T) {
	key, art := compileArtifact(t, "gcd")

	src, err := New(Options{Dir: t.TempDir(), ScrubInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.Put(key, art); err != nil {
		t.Fatal(err)
	}
	data, ok := src.Export(key)
	if !ok {
		t.Fatal("Export miss on a key just Put")
	}
	if err := Verify(data); err != nil {
		t.Fatalf("exported frame fails verification: %v", err)
	}

	dstDir := t.TempDir()
	dst, err := New(Options{Dir: dstDir, ScrubInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if dst.Contains(key) {
		t.Fatal("fresh store claims to contain the key")
	}
	if err := dst.Import(key, data); err != nil {
		t.Fatalf("Import: %v", err)
	}
	got, source, ok := dst.Get(key)
	if !ok || source != SourceMemory {
		t.Fatalf("post-import Get: ok=%t src=%q, want memory hit", ok, source)
	}
	if got.Kernel != art.Kernel || got.NumCtx != art.NumCtx {
		t.Fatal("imported artifact differs from the original")
	}
	dst.Close()

	// The import must have landed on disk too: a restarted store serves it
	// cold.
	reopened, err := New(Options{Dir: dstDir, ScrubInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if _, source, ok := reopened.Get(key); !ok || source != SourceDisk {
		t.Fatalf("reopened Get: ok=%t src=%q, want disk hit", ok, source)
	}
}

// TestExportMemoryOnly: a store without a disk tier re-frames the memory
// entry on the fly.
func TestExportMemoryOnly(t *testing.T) {
	key, art := compileArtifact(t, "gcd")
	s, err := New(Options{MemEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(key, art); err != nil {
		t.Fatal(err)
	}
	data, ok := s.Export(key)
	if !ok {
		t.Fatal("memory-only Export miss")
	}
	if err := Verify(data); err != nil {
		t.Fatalf("re-framed entry fails verification: %v", err)
	}
	if _, ok := s.Export("0000000000000000000000000000000000000000000000000000000000000000"); ok {
		t.Fatal("Export hit on an absent key")
	}
}

// TestImportRejectsEveryCorruptionMode runs the full corruption matrix a
// peer response can arrive in. Every mode must be rejected without
// poisoning the store, and a clean import afterwards must still land.
func TestImportRejectsEveryCorruptionMode(t *testing.T) {
	key, art := compileArtifact(t, "gcd")
	pristine, err := New(Options{Dir: t.TempDir(), ScrubInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pristine.Close()
	if err := pristine.Put(key, art); err != nil {
		t.Fatal(err)
	}
	good, ok := pristine.Export(key)
	if !ok {
		t.Fatal("Export miss")
	}

	corruptions := []struct {
		name    string
		corrupt func([]byte) []byte
	}{
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-7] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"bad version", func(b []byte) []byte { b[9] = 0x7F; return b }},
		{"flipped payload bit", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"flipped checksum bit", func(b []byte) []byte { b[20] ^= 0x01; return b }},
		{"valid frame, garbage payload", func(b []byte) []byte { return encodeEntry([]byte("not a gob artifact")) }},
		{"empty response", func(b []byte) []byte { return nil }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(Options{Dir: t.TempDir(), ScrubInterval: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			bad := tc.corrupt(append([]byte(nil), good...))
			if err := s.Import(key, bad); err == nil {
				t.Fatalf("%s: corrupt import accepted", tc.name)
			}
			if s.Contains(key) {
				t.Fatalf("%s: rejected import left the key in the store", tc.name)
			}
			if _, _, ok := s.Get(key); ok {
				t.Fatalf("%s: rejected import is servable", tc.name)
			}
			// The store is not poisoned: a clean import still works.
			if err := s.Import(key, good); err != nil {
				t.Fatalf("%s: clean import after rejection: %v", tc.name, err)
			}
			if a, _, ok := s.Get(key); !ok || a.Kernel != art.Kernel {
				t.Fatalf("%s: clean import not servable", tc.name)
			}
		})
	}
}

// TestExportQuarantinesCorruptDisk: rot under an Export is detected,
// quarantined, and answered with ok=false so the peer looks elsewhere.
func TestExportQuarantinesCorruptDisk(t *testing.T) {
	key, art := compileArtifact(t, "gcd")
	dir := t.TempDir()
	s, err := New(Options{Dir: dir, ScrubInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, art); err != nil {
		t.Fatal(err)
	}
	path := s.Path(key)
	s.Close()

	// Reopen (memory front now empty) and rot the disk entry.
	if err := os.WriteFile(path, []byte("bit rot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Options{Dir: dir, ScrubInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Export(key); ok {
		t.Fatal("Export served a corrupt disk entry")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not quarantined off the serving path")
	}
	if _, _, ok := s2.Get(key); ok {
		t.Fatal("corrupt entry still servable after quarantine")
	}
}

// TestScrubRaceWithTraffic hammers Get/Put/Export/Import from concurrent
// goroutines while ScrubNow runs in a loop. The assertion is the race
// detector's: `go test -race` must stay silent, and nothing deadlocks.
func TestScrubRaceWithTraffic(t *testing.T) {
	key, art := compileArtifact(t, "gcd")
	s, err := New(Options{Dir: t.TempDir(), MemEntries: 4, ScrubInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(key, art); err != nil {
		t.Fatal(err)
	}
	frame, ok := s.Export(key)
	if !ok {
		t.Fatal("Export miss")
	}

	keys := []string{key, key[:63] + "0", key[:63] + "1", key[:63] + "2"}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	worker := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					fn(i)
				}
			}
		}()
	}
	worker(func(i int) { s.Put(keys[i%len(keys)], art) })
	worker(func(i int) { s.Get(keys[(i+1)%len(keys)]) })
	worker(func(i int) { s.Export(keys[(i+2)%len(keys)]) })
	worker(func(i int) { s.Import(keys[(i+3)%len(keys)], frame) })

	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		s.ScrubNow()
	}
	close(stop)
	wg.Wait()

	// The store still works after the storm.
	if _, _, ok := s.Get(key); !ok {
		// The hammer may have evicted it from memory and the scrubber may
		// race disk state; reinstall and verify health.
		if err := s.Put(key, art); err != nil {
			t.Fatalf("store unhealthy after scrub storm: %v", err)
		}
		if _, _, ok := s.Get(key); !ok {
			t.Fatal("store lost a fresh Put after scrub storm")
		}
	}
}
