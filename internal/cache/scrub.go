// The scrubber: the disk tier's self-healing loop. A pass re-reads every
// on-disk entry, verifies its frame (magic, version, SHA-256 checksum),
// quarantines anything rotten before a request trips over it, reconciles
// the disk index with what is actually on disk, and — when the store has
// failed over to memory-only degraded mode — probes the disk with a small
// write so a recovered disk (space freed, transient errors gone) is put
// back into service without a restart.
//
// One pass runs at startup and then every Options.ScrubInterval in a
// background goroutine (stopped by Store.Close); ScrubNow runs a pass
// synchronously for tests and the chaos soak's recovery check.
package cache

import (
	"fmt"
	"strings"
	"time"
)

// ScrubReport summarizes one scrubber pass.
type ScrubReport struct {
	// Checked counts entries whose checksum verified clean.
	Checked int
	// Quarantined counts corrupt entries moved aside this pass.
	Quarantined int
	// IOErrors counts entries that could not be read (left in place; a
	// later pass or Get retries them).
	IOErrors int
	// Healed reports that this pass exited memory-only degraded mode.
	Healed bool
}

// Clean reports a pass that found the disk tier fully healthy.
func (r ScrubReport) Clean() bool { return r.Quarantined == 0 && r.IOErrors == 0 }

func (r ScrubReport) String() string {
	return fmt.Sprintf("scrub: %d clean, %d quarantined, %d io-errors", r.Checked, r.Quarantined, r.IOErrors)
}

// ScrubNow runs one synchronous scrubber pass over the disk tier. Safe to
// call concurrently with Get/Put; memory-only stores report an empty
// (clean) pass.
func (s *Store) ScrubNow() ScrubReport {
	var rep ScrubReport
	if s.dir == "" {
		return rep
	}
	s.scrubRuns.Inc()

	// Walk the directory rather than the index: the scrubber is also the
	// reconciliation path for entries that appeared (another process,
	// recovered disk) or vanished (operator rm) behind the index's back.
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		rep.IOErrors++
		s.scrubErrors.Inc()
		return rep
	}
	onDisk := map[string]bool{}
	for _, e := range ents {
		name := e.Name()
		key, ok := strings.CutSuffix(name, ".art")
		if !ok || strings.Contains(name, ".tmp-") {
			continue
		}
		onDisk[key] = true
		data, err := s.fs.ReadFile(s.Path(key))
		if err != nil {
			rep.IOErrors++
			s.scrubErrors.Inc()
			continue
		}
		if err := verifyEntry(data); err != nil {
			s.quarantineKey(key)
			rep.Quarantined++
			s.scrubQuarantined.Inc()
			continue
		}
		rep.Checked++
		s.scrubChecked.Inc()
		s.mu.Lock()
		if el, known := s.disk[key]; known {
			// Refresh the size without disturbing recency.
			de := el.Value.(*diskEntry)
			s.diskBytes += int64(len(data)) - de.size
			de.size = int64(len(data))
		} else {
			s.touchDiskLocked(key, int64(len(data)))
		}
		s.mu.Unlock()
	}

	// Drop index entries whose files vanished.
	s.mu.Lock()
	for key := range s.disk {
		if !onDisk[key] {
			s.dropDiskLocked(key)
		}
	}
	s.enforceDiskCapLocked()
	s.publishDiskGaugesLocked()
	s.mu.Unlock()

	if s.degraded.Load() && s.probeDisk() {
		s.setDegraded(false)
		rep.Healed = true
	}
	return rep
}

// probeDisk checks whether the disk accepts a full durable commit again: a
// small probe entry is written through the same path as a real commit,
// then removed.
func (s *Store) probeDisk() bool {
	const probeKey = "scrub-probe"
	if err := s.commitDisk(probeKey, []byte("cgra-cache-probe")); err != nil {
		return false
	}
	_ = s.fs.Remove(s.Path(probeKey))
	return true
}

// scrubLoop is the background scrubber: one startup pass, then one per
// interval until Close.
func (s *Store) scrubLoop(interval time.Duration) {
	defer close(s.scrubDone)
	s.ScrubNow()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.ScrubNow()
		}
	}
}
