// Package cache is a persistent, content-addressed store for compiled CGRA
// artifacts. The key is the stable digest of (canonical kernel IR,
// composition structure, pipeline options) computed by pipeline.Key; the
// value is a serialized pipeline.Artifact — the packed context-memory
// images, C-Box/branch tables and allocation metadata of one compile.
//
// The store is two-tiered. An in-memory LRU front holds decoded artifacts
// for hot kernels; behind it an optional on-disk layer persists every entry
// across process restarts, so a restarted daemon serves its kernels without
// recompiling.
//
// The disk layer is crash-safe and self-healing:
//
//   - Entries are committed atomically and durably: the temp file is
//     fsynced before the rename, and the directory after it, so a crash at
//     any point leaves either the old state or the complete new entry —
//     never a torn one that only the checksum would catch later.
//   - Every entry carries a versioned header and a SHA-256 payload
//     checksum; a corrupt or truncated entry is quarantined on read —
//     renamed aside and reported as a miss, so the caller recompiles
//     instead of crashing.
//   - A scrubber (startup pass + periodic background rescan, see scrub.go)
//     re-verifies every on-disk checksum, quarantines bit-rot before a
//     request trips over it, reconciles the disk index, and probes a
//     degraded disk back into service.
//   - Disk usage is capped: least-recently-used entries are evicted once
//     the configured byte budget is exceeded, and an ENOSPC write first
//     evicts and retries, then fails the store over into memory-only
//     degraded mode rather than erroring every request.
//
// All methods are safe for concurrent use. All disk IO goes through a
// chaos.FS, so the chaos injector can exercise every failure path above
// deterministically.
package cache

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cgra/internal/chaos"
	"cgra/internal/obs"
	"cgra/internal/pipeline"
)

// FormatVersion is the on-disk entry format version.
const FormatVersion = 1

// entryMagic opens every on-disk entry.
var entryMagic = []byte("CGRART01")

// headerSize is magic(8) + version(4) + checksum(32).
const headerSize = 8 + 4 + sha256.Size

// Hit sources reported by Get.
const (
	SourceMemory = "memory"
	SourceDisk   = "disk"
)

// DefaultDiskCap bounds the disk tier when Options.DiskCapBytes is 0.
const DefaultDiskCap = 1 << 30 // 1 GiB

// defaultScrubInterval paces the background scrubber when
// Options.ScrubInterval is 0.
const defaultScrubInterval = time.Minute

// writeErrTrip is the consecutive-disk-write-failure count that fails the
// store over into memory-only degraded mode (ENOSPC surviving the
// evict-and-retry trips immediately).
const writeErrTrip = 3

// Options configures a Store.
type Options struct {
	// Dir is the on-disk layer's directory ("" = memory-only). Created if
	// missing.
	Dir string
	// MemEntries bounds the in-memory LRU front (0 = 128 entries).
	MemEntries int
	// Registry receives the cache metrics (nil = private registry).
	Registry *obs.Registry
	// FS is the filesystem the disk layer runs on (nil = the real OS).
	// The chaos injector plugs in here.
	FS chaos.FS
	// DiskCapBytes bounds the disk tier; least-recently-used entries are
	// evicted past it (0 = DefaultDiskCap, negative = unbounded).
	DiskCapBytes int64
	// ScrubInterval paces the background scrubber's periodic rescan
	// (0 = one minute, negative = no scrubber goroutine; ScrubNow remains
	// available). Ignored for memory-only stores.
	ScrubInterval time.Duration
}

// Store is a two-tier content-addressed artifact cache.
type Store struct {
	fs       chaos.FS
	dir      string
	cap      int
	capBytes int64

	mu  sync.Mutex
	mem map[string]*list.Element
	lru *list.List // front = most recent

	// Disk index: every installed entry's size, LRU-ordered (front = most
	// recently used). Maintained by Put/Get and reconciled by the scrubber.
	disk      map[string]*list.Element
	diskLRU   *list.List
	diskBytes int64
	// consecWriteErrs counts back-to-back disk write failures; reaching
	// writeErrTrip degrades the store to memory-only.
	consecWriteErrs int
	tmpSeq          atomic.Int64

	// degraded is the memory-only failure mode: disk writes are skipped
	// until the scrubber's probe write succeeds again.
	degraded atomic.Bool

	stop      chan struct{}
	scrubDone chan struct{}
	closeOnce sync.Once

	hitsMem     *obs.Counter
	hitsDisk    *obs.Counter
	misses      *obs.Counter
	evictions   *obs.Counter
	quarantined *obs.Counter
	puts        *obs.Counter
	hitAge      *obs.Histogram

	diskBytesG    *obs.Gauge
	diskEntriesG  *obs.Gauge
	diskEvictions *obs.Counter
	diskWriteErrs *obs.Counter
	degradedG     *obs.Gauge

	scrubRuns        *obs.Counter
	scrubChecked     *obs.Counter
	scrubQuarantined *obs.Counter
	scrubErrors      *obs.Counter
	scrubHeals       *obs.Counter

	exports         *obs.Counter
	importsOK       *obs.Counter
	importsRejected *obs.Counter
}

type memEntry struct {
	key   string
	art   *pipeline.Artifact
	added time.Time
}

type diskEntry struct {
	key  string
	size int64
}

// hitAgeBuckets spans milliseconds to hours: artifact reuse ranges from
// "compiled moments ago" to "persisted across restarts days ago".
var hitAgeBuckets = []float64{0.001, 0.01, 0.1, 1, 10, 60, 600, 3600, 86400}

// New opens (creating directories as needed) a store. Stores with a disk
// layer start a scrubber goroutine (unless disabled); call Close to stop
// it.
func New(o Options) (*Store, error) {
	reg := o.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	capEntries := o.MemEntries
	if capEntries <= 0 {
		capEntries = 128
	}
	capBytes := o.DiskCapBytes
	if capBytes == 0 {
		capBytes = DefaultDiskCap
	}
	fsys := o.FS
	if fsys == nil {
		fsys = chaos.OS
	}
	if o.Dir != "" {
		if err := fsys.MkdirAll(o.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %v", err)
		}
	}
	reg.Help("cgra_cache_hits_total", "artifact cache hits by tier (memory, disk)")
	reg.Help("cgra_cache_misses_total", "artifact cache misses")
	reg.Help("cgra_cache_evictions_total", "artifacts evicted from the in-memory LRU front")
	reg.Help("cgra_cache_quarantined_total", "corrupt on-disk entries quarantined")
	reg.Help("cgra_cache_puts_total", "artifacts stored")
	reg.Help("cgra_cache_hit_age_seconds", "age of the served artifact at hit time")
	reg.Help("cgra_cache_disk_bytes", "bytes held by the on-disk tier")
	reg.Help("cgra_cache_disk_entries", "entries held by the on-disk tier")
	reg.Help("cgra_cache_disk_evictions_total", "disk entries evicted by the byte cap or ENOSPC recovery")
	reg.Help("cgra_cache_disk_write_errors_total", "failed disk commit attempts")
	reg.Help("cgra_cache_disk_degraded", "1 while the disk tier is failed over to memory-only mode")
	reg.Help("cgra_cache_scrub_runs_total", "scrubber passes over the disk tier")
	reg.Help("cgra_cache_scrub_checked_total", "disk entries checksum-verified by the scrubber")
	reg.Help("cgra_cache_scrub_quarantined_total", "corrupt disk entries the scrubber quarantined")
	reg.Help("cgra_cache_scrub_errors_total", "disk entries the scrubber could not read")
	reg.Help("cgra_cache_scrub_heals_total", "degraded-mode exits after a successful probe write")
	reg.Help("cgra_cache_exports_total", "artifact entries exported to peers")
	reg.Help("cgra_cache_imports_total", "artifact entries imported from peers, by outcome")
	s := &Store{
		fs:       fsys,
		dir:      o.Dir,
		cap:      capEntries,
		capBytes: capBytes,
		mem:      map[string]*list.Element{},
		lru:      list.New(),
		disk:     map[string]*list.Element{},
		diskLRU:  list.New(),
		stop:     make(chan struct{}),

		hitsMem:     reg.Counter("cgra_cache_hits_total", obs.L("tier", "memory")),
		hitsDisk:    reg.Counter("cgra_cache_hits_total", obs.L("tier", "disk")),
		misses:      reg.Counter("cgra_cache_misses_total"),
		evictions:   reg.Counter("cgra_cache_evictions_total"),
		quarantined: reg.Counter("cgra_cache_quarantined_total"),
		puts:        reg.Counter("cgra_cache_puts_total"),
		hitAge:      reg.Histogram("cgra_cache_hit_age_seconds", hitAgeBuckets),

		diskBytesG:    reg.Gauge("cgra_cache_disk_bytes"),
		diskEntriesG:  reg.Gauge("cgra_cache_disk_entries"),
		diskEvictions: reg.Counter("cgra_cache_disk_evictions_total"),
		diskWriteErrs: reg.Counter("cgra_cache_disk_write_errors_total"),
		degradedG:     reg.Gauge("cgra_cache_disk_degraded"),

		scrubRuns:        reg.Counter("cgra_cache_scrub_runs_total"),
		scrubChecked:     reg.Counter("cgra_cache_scrub_checked_total"),
		scrubQuarantined: reg.Counter("cgra_cache_scrub_quarantined_total"),
		scrubErrors:      reg.Counter("cgra_cache_scrub_errors_total"),
		scrubHeals:       reg.Counter("cgra_cache_scrub_heals_total"),

		exports:         reg.Counter("cgra_cache_exports_total"),
		importsOK:       reg.Counter("cgra_cache_imports_total", obs.L("outcome", "ok")),
		importsRejected: reg.Counter("cgra_cache_imports_total", obs.L("outcome", "rejected")),
	}
	if s.dir != "" {
		s.loadDiskIndex()
		interval := o.ScrubInterval
		if interval == 0 {
			interval = defaultScrubInterval
		}
		if interval > 0 {
			s.scrubDone = make(chan struct{})
			go s.scrubLoop(interval)
		}
	}
	return s, nil
}

// Close stops the background scrubber. Idempotent; the store remains
// usable for Get/Put afterwards.
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		close(s.stop)
		if s.scrubDone != nil {
			<-s.scrubDone
		}
	})
}

// Path returns the on-disk location of a key ("" for memory-only stores).
func (s *Store) Path(key string) string {
	if s.dir == "" {
		return ""
	}
	return filepath.Join(s.dir, key+".art")
}

// Len returns the number of entries in the memory front.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Degraded reports whether the disk tier has failed over to memory-only
// mode (writes skipped until a scrubber probe heals it). Always false for
// memory-only stores, which have no disk to degrade.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// DiskBytes returns the bytes currently indexed in the disk tier.
func (s *Store) DiskBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.diskBytes
}

// DiskEntries returns the number of entries indexed in the disk tier.
func (s *Store) DiskEntries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.disk)
}

// loadDiskIndex scans the cache directory once at startup: stale temp
// files from a crashed commit are removed, and every installed entry is
// indexed (size + recency from mtime) without reading its payload — the
// scrubber verifies contents.
func (s *Store) loadDiskIndex() {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	type found struct {
		key   string
		size  int64
		mtime time.Time
	}
	var idx []found
	for _, e := range ents {
		name := e.Name()
		if strings.Contains(name, ".tmp-") {
			// Leftover from a commit interrupted before the rename: the
			// entry was never installed, the bytes are garbage.
			_ = s.fs.Remove(filepath.Join(s.dir, name))
			continue
		}
		key, ok := strings.CutSuffix(name, ".art")
		if !ok {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		idx = append(idx, found{key, fi.Size(), fi.ModTime()})
	}
	// Oldest first, so the most recently written entries end up at the
	// front of the LRU.
	for i := range idx {
		for j := i + 1; j < len(idx); j++ {
			if idx[j].mtime.Before(idx[i].mtime) {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	s.mu.Lock()
	for _, f := range idx {
		s.disk[f.key] = s.diskLRU.PushFront(&diskEntry{key: f.key, size: f.size})
		s.diskBytes += f.size
	}
	s.enforceDiskCapLocked()
	s.publishDiskGaugesLocked()
	s.mu.Unlock()
}

// Get returns the cached artifact for key and the tier that served it
// (SourceMemory or SourceDisk). A disk hit is promoted into the memory
// front. A corrupt disk entry is quarantined and reported as a miss.
func (s *Store) Get(key string) (*pipeline.Artifact, string, bool) {
	s.mu.Lock()
	if el, ok := s.mem[key]; ok {
		s.lru.MoveToFront(el)
		ent := el.Value.(*memEntry)
		// Copy the pointer under the lock: insertMem may swap ent.art for a
		// re-Put/Import of the same key concurrently.
		art := ent.art
		age := time.Since(ent.added)
		s.mu.Unlock()
		s.hitsMem.Inc()
		s.hitAge.Observe(age.Seconds())
		return art, SourceMemory, true
	}
	s.mu.Unlock()

	if s.dir == "" {
		s.misses.Inc()
		return nil, "", false
	}
	path := s.Path(key)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		// An IO error is not corruption: leave the entry for the scrubber
		// and recompile.
		s.misses.Inc()
		return nil, "", false
	}
	art, err := decodeEntry(data)
	if err != nil {
		s.quarantineKey(key)
		s.misses.Inc()
		return nil, "", false
	}
	var age time.Duration
	if fi, err := s.fs.Stat(path); err == nil {
		age = time.Since(fi.ModTime())
	}
	s.mu.Lock()
	s.touchDiskLocked(key, int64(len(data)))
	s.mu.Unlock()
	s.insertMem(key, art, time.Now().Add(-age))
	s.hitsDisk.Inc()
	s.hitAge.Observe(age.Seconds())
	return art, SourceDisk, true
}

// Put stores an artifact under key in both tiers. The disk commit is
// atomic and durable (write + fsync + rename + directory fsync); an
// ENOSPC commit evicts least-recently-used disk entries and retries, and
// persistent write failure degrades the store to memory-only mode instead
// of failing every caller. The memory tier always receives the artifact,
// so a returned error never means the compile was lost.
func (s *Store) Put(key string, art *pipeline.Artifact) error {
	var payload bytes.Buffer
	if err := pipeline.EncodeArtifact(&payload, art); err != nil {
		return fmt.Errorf("cache: encode %s: %v", key, err)
	}
	s.insertMem(key, art, time.Now())
	s.puts.Inc()
	return s.installFramed(key, encodeEntry(payload.Bytes()))
}

// installFramed commits one framed entry to the disk tier with the full
// failure ladder (ENOSPC evict-and-retry, degraded-mode trip). The memory
// tier must already hold the artifact — a returned error never means the
// entry was lost.
func (s *Store) installFramed(key string, data []byte) error {
	if s.dir == "" || s.degraded.Load() {
		return nil
	}
	err := s.commitDisk(key, data)
	if errors.Is(err, syscall.ENOSPC) {
		// Evict-and-retry: free several times the entry's footprint so a
		// burst of compiles does not thrash one eviction per write.
		s.evictDiskBytes(int64(len(data)) * 4)
		err = s.commitDisk(key, data)
	}
	s.mu.Lock()
	if err != nil {
		s.consecWriteErrs++
		trip := s.consecWriteErrs >= writeErrTrip || errors.Is(err, syscall.ENOSPC)
		s.mu.Unlock()
		s.diskWriteErrs.Inc()
		if trip {
			s.setDegraded(true)
		}
		return fmt.Errorf("cache: install %s: %w", key, err)
	}
	s.consecWriteErrs = 0
	s.touchDiskLocked(key, int64(len(data)))
	s.enforceDiskCapLocked()
	s.publishDiskGaugesLocked()
	s.mu.Unlock()
	return nil
}

// GetCtx is Get inside the request's trace: the lookup becomes a
// "cache.get" span annotated with the tier that served it ("memory",
// "disk", or "miss"). Outside a traced request it is exactly Get.
func (s *Store) GetCtx(ctx context.Context, key string) (*pipeline.Artifact, string, bool) {
	sp := obs.ContextSpan(ctx).StartChild("cache.get")
	defer sp.Finish()
	art, src, ok := s.Get(key)
	if ok {
		sp.Annotate("source", src)
	} else {
		sp.Annotate("source", "miss")
	}
	return art, src, ok
}

// PutCtx is Put inside the request's trace: the store becomes a
// "cache.put" span, with a "cache_degraded" event when the write failed
// and the artifact survives in memory only.
func (s *Store) PutCtx(ctx context.Context, key string, art *pipeline.Artifact) error {
	sp := obs.ContextSpan(ctx).StartChild("cache.put")
	defer sp.Finish()
	err := s.Put(key, art)
	if err != nil {
		sp.Event("cache_degraded", err.Error())
	}
	return err
}

// commitDisk installs one framed entry crash-safely: the temp file is
// written and fsynced, renamed into place, and the directory fsynced so
// the rename itself is durable. Any failure removes the temp file.
func (s *Store) commitDisk(key string, data []byte) error {
	path := s.Path(key)
	tmp := fmt.Sprintf("%s.tmp-%d", path, s.tmpSeq.Add(1))
	if err := s.fs.WriteFile(tmp, data, 0o644); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.Sync(tmp); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	// The entry is installed; a failed directory sync only delays
	// durability of the rename, it does not invalidate the entry.
	_ = s.fs.Sync(s.dir)
	return nil
}

// setDegraded fails the disk tier over to memory-only mode (or back).
func (s *Store) setDegraded(on bool) {
	if s.degraded.Swap(on) == on {
		return
	}
	if on {
		s.degradedG.SetInt(1)
	} else {
		s.degradedG.SetInt(0)
		s.scrubHeals.Inc()
	}
}

// touchDiskLocked records (or refreshes) a disk-index entry.
func (s *Store) touchDiskLocked(key string, size int64) {
	if el, ok := s.disk[key]; ok {
		de := el.Value.(*diskEntry)
		s.diskBytes += size - de.size
		de.size = size
		s.diskLRU.MoveToFront(el)
		return
	}
	s.disk[key] = s.diskLRU.PushFront(&diskEntry{key: key, size: size})
	s.diskBytes += size
}

// dropDiskLocked removes a key from the disk index (file already gone or
// going).
func (s *Store) dropDiskLocked(key string) {
	if el, ok := s.disk[key]; ok {
		s.diskBytes -= el.Value.(*diskEntry).size
		s.diskLRU.Remove(el)
		delete(s.disk, key)
	}
}

// enforceDiskCapLocked evicts least-recently-used disk entries until the
// byte cap is respected.
func (s *Store) enforceDiskCapLocked() {
	if s.capBytes < 0 {
		return
	}
	for s.diskBytes > s.capBytes && s.diskLRU.Len() > 0 {
		tail := s.diskLRU.Back()
		key := tail.Value.(*diskEntry).key
		s.dropDiskLocked(key)
		_ = s.fs.Remove(s.Path(key))
		s.diskEvictions.Inc()
	}
}

// evictDiskBytes frees at least n bytes (at least one entry) from the LRU
// tail — the ENOSPC recovery path.
func (s *Store) evictDiskBytes(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	freed := int64(0)
	for (freed < n || freed == 0) && s.diskLRU.Len() > 0 {
		tail := s.diskLRU.Back()
		de := tail.Value.(*diskEntry)
		freed += de.size
		s.dropDiskLocked(de.key)
		_ = s.fs.Remove(s.Path(de.key))
		s.diskEvictions.Inc()
	}
	s.publishDiskGaugesLocked()
}

func (s *Store) publishDiskGaugesLocked() {
	s.diskBytesG.SetInt(s.diskBytes)
	s.diskEntriesG.SetInt(int64(len(s.disk)))
}

// insertMem adds (or refreshes) a memory-front entry, evicting from the LRU
// tail past capacity.
func (s *Store) insertMem(key string, art *pipeline.Artifact, added time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.mem[key]; ok {
		el.Value.(*memEntry).art = art
		s.lru.MoveToFront(el)
		return
	}
	s.mem[key] = s.lru.PushFront(&memEntry{key: key, art: art, added: added})
	for s.lru.Len() > s.cap {
		tail := s.lru.Back()
		s.lru.Remove(tail)
		delete(s.mem, tail.Value.(*memEntry).key)
		s.evictions.Inc()
	}
}

// quarantineKey moves a corrupt entry aside so the next Put can reinstall
// a good one and the bad bytes stay available for diagnosis.
func (s *Store) quarantineKey(key string) {
	s.quarantined.Inc()
	path := s.Path(key)
	s.mu.Lock()
	s.dropDiskLocked(key)
	s.publishDiskGaugesLocked()
	s.mu.Unlock()
	// Best effort: a failed rename (e.g. the file vanished) still counts
	// as a miss and the caller recompiles.
	_ = s.fs.Rename(path, path+".quarantined")
}

// Contains reports whether key is present in either tier, without
// promoting it, reading the disk, or touching the hit/miss counters — the
// cluster router's cheap "do I already have this" check.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.mem[key]; ok {
		return true
	}
	_, ok := s.disk[key]
	return ok
}

// Export returns the framed entry (magic + version + checksum + payload)
// for key, ready to serve to a peer. A disk copy is returned verbatim; a
// memory-only entry is re-framed on the fly. A corrupt disk entry is
// quarantined (the memory front, if any, still answers) and ok=false
// makes the peer look elsewhere.
func (s *Store) Export(key string) (data []byte, ok bool) {
	// Disk first: the bytes are already framed, and serving them verbatim
	// means the peer receives exactly what a scrub would verify.
	if s.dir != "" {
		if raw, err := s.fs.ReadFile(s.Path(key)); err == nil {
			if verr := verifyEntry(raw); verr == nil {
				s.exports.Inc()
				return raw, true
			}
			s.quarantineKey(key)
		}
	}
	s.mu.Lock()
	el, ok := s.mem[key]
	var art *pipeline.Artifact
	if ok {
		art = el.Value.(*memEntry).art
	}
	s.mu.Unlock()
	if art == nil {
		return nil, false
	}
	var payload bytes.Buffer
	if err := pipeline.EncodeArtifact(&payload, art); err != nil {
		return nil, false
	}
	s.exports.Inc()
	return encodeEntry(payload.Bytes()), true
}

// Import installs a framed entry received from a peer into both tiers.
// The frame is checksum-verified and the payload fully decoded before
// anything is stored, so a corrupt or malicious response can never poison
// the cache; the disk commit reuses Put's failure ladder (ENOSPC
// evict-and-retry, degraded-mode trip).
func (s *Store) Import(key string, data []byte) error {
	art, err := decodeEntry(data)
	if err != nil {
		s.importsRejected.Inc()
		return fmt.Errorf("cache: import %s: %w", key, err)
	}
	s.insertMem(key, art, time.Now())
	s.importsOK.Inc()
	return s.installFramed(key, data)
}

// ImportCtx is Import inside the request's trace: a "cache.import" span
// annotated with the entry size.
func (s *Store) ImportCtx(ctx context.Context, key string, data []byte) error {
	sp := obs.ContextSpan(ctx).StartChild("cache.import")
	defer sp.Finish()
	sp.Set("bytes", int64(len(data)))
	err := s.Import(key, data)
	if err != nil {
		sp.Event("import_rejected", err.Error())
	}
	return err
}

// Verify checks a framed entry (magic, version, checksum) without
// decoding it — what a peer fetch runs before trusting bytes off the
// wire.
func Verify(data []byte) error { return verifyEntry(data) }

// encodeEntry frames a gob payload with the magic, version and checksum.
func encodeEntry(payload []byte) []byte {
	out := make([]byte, 0, headerSize+len(payload))
	out = append(out, entryMagic...)
	out = binary.LittleEndian.AppendUint32(out, FormatVersion)
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...)
}

// decodeEntry verifies the frame and decodes the artifact.
func decodeEntry(data []byte) (*pipeline.Artifact, error) {
	if err := verifyEntry(data); err != nil {
		return nil, err
	}
	return pipeline.DecodeArtifact(bytes.NewReader(data[headerSize:]))
}

// verifyEntry checks the frame (magic, version, checksum) without decoding
// the payload — the scrubber's fast integrity check.
func verifyEntry(data []byte) error {
	if len(data) < headerSize {
		return fmt.Errorf("cache: entry truncated (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:8], entryMagic) {
		return fmt.Errorf("cache: bad entry magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != FormatVersion {
		return fmt.Errorf("cache: entry format version %d, want %d", v, FormatVersion)
	}
	payload := data[headerSize:]
	want := data[12:headerSize]
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], want) {
		return fmt.Errorf("cache: checksum mismatch")
	}
	return nil
}
