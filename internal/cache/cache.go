// Package cache is a persistent, content-addressed store for compiled CGRA
// artifacts. The key is the stable digest of (canonical kernel IR,
// composition structure, pipeline options) computed by pipeline.Key; the
// value is a serialized pipeline.Artifact — the packed context-memory
// images, C-Box/branch tables and allocation metadata of one compile.
//
// The store is two-tiered. An in-memory LRU front holds decoded artifacts
// for hot kernels; behind it an optional on-disk layer persists every entry
// across process restarts, so a restarted daemon serves its kernels without
// recompiling. Disk entries are written atomically (temp file + rename into
// place), carry a versioned header and a SHA-256 payload checksum, and a
// corrupt or truncated entry is quarantined on read — renamed aside and
// reported as a miss, so the caller recompiles instead of crashing.
//
// All methods are safe for concurrent use.
package cache

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cgra/internal/obs"
	"cgra/internal/pipeline"
)

// FormatVersion is the on-disk entry format version.
const FormatVersion = 1

// entryMagic opens every on-disk entry.
var entryMagic = []byte("CGRART01")

// headerSize is magic(8) + version(4) + checksum(32).
const headerSize = 8 + 4 + sha256.Size

// Hit sources reported by Get.
const (
	SourceMemory = "memory"
	SourceDisk   = "disk"
)

// Options configures a Store.
type Options struct {
	// Dir is the on-disk layer's directory ("" = memory-only). Created if
	// missing.
	Dir string
	// MemEntries bounds the in-memory LRU front (0 = 128 entries).
	MemEntries int
	// Registry receives the cache metrics (nil = private registry).
	Registry *obs.Registry
}

// Store is a two-tier content-addressed artifact cache.
type Store struct {
	dir string
	cap int

	mu  sync.Mutex
	mem map[string]*list.Element
	lru *list.List // front = most recent

	hitsMem     *obs.Counter
	hitsDisk    *obs.Counter
	misses      *obs.Counter
	evictions   *obs.Counter
	quarantined *obs.Counter
	puts        *obs.Counter
	hitAge      *obs.Histogram
}

type memEntry struct {
	key   string
	art   *pipeline.Artifact
	added time.Time
}

// hitAgeBuckets spans milliseconds to hours: artifact reuse ranges from
// "compiled moments ago" to "persisted across restarts days ago".
var hitAgeBuckets = []float64{0.001, 0.01, 0.1, 1, 10, 60, 600, 3600, 86400}

// New opens (creating directories as needed) a store.
func New(o Options) (*Store, error) {
	reg := o.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	capEntries := o.MemEntries
	if capEntries <= 0 {
		capEntries = 128
	}
	if o.Dir != "" {
		if err := os.MkdirAll(o.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %v", err)
		}
	}
	reg.Help("cgra_cache_hits_total", "artifact cache hits by tier (memory, disk)")
	reg.Help("cgra_cache_misses_total", "artifact cache misses")
	reg.Help("cgra_cache_evictions_total", "artifacts evicted from the in-memory LRU front")
	reg.Help("cgra_cache_quarantined_total", "corrupt on-disk entries quarantined on read")
	reg.Help("cgra_cache_puts_total", "artifacts stored")
	reg.Help("cgra_cache_hit_age_seconds", "age of the served artifact at hit time")
	return &Store{
		dir:         o.Dir,
		cap:         capEntries,
		mem:         map[string]*list.Element{},
		lru:         list.New(),
		hitsMem:     reg.Counter("cgra_cache_hits_total", obs.L("tier", "memory")),
		hitsDisk:    reg.Counter("cgra_cache_hits_total", obs.L("tier", "disk")),
		misses:      reg.Counter("cgra_cache_misses_total"),
		evictions:   reg.Counter("cgra_cache_evictions_total"),
		quarantined: reg.Counter("cgra_cache_quarantined_total"),
		puts:        reg.Counter("cgra_cache_puts_total"),
		hitAge:      reg.Histogram("cgra_cache_hit_age_seconds", hitAgeBuckets),
	}, nil
}

// Path returns the on-disk location of a key ("" for memory-only stores).
func (s *Store) Path(key string) string {
	if s.dir == "" {
		return ""
	}
	return filepath.Join(s.dir, key+".art")
}

// Len returns the number of entries in the memory front.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Get returns the cached artifact for key and the tier that served it
// (SourceMemory or SourceDisk). A disk hit is promoted into the memory
// front. A corrupt disk entry is quarantined and reported as a miss.
func (s *Store) Get(key string) (*pipeline.Artifact, string, bool) {
	s.mu.Lock()
	if el, ok := s.mem[key]; ok {
		s.lru.MoveToFront(el)
		ent := el.Value.(*memEntry)
		age := time.Since(ent.added)
		s.mu.Unlock()
		s.hitsMem.Inc()
		s.hitAge.Observe(age.Seconds())
		return ent.art, SourceMemory, true
	}
	s.mu.Unlock()

	if s.dir == "" {
		s.misses.Inc()
		return nil, "", false
	}
	path := s.Path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Inc()
		return nil, "", false
	}
	art, err := decodeEntry(data)
	if err != nil {
		s.quarantine(path, err)
		s.misses.Inc()
		return nil, "", false
	}
	var age time.Duration
	if fi, err := os.Stat(path); err == nil {
		age = time.Since(fi.ModTime())
	}
	s.insertMem(key, art, time.Now().Add(-age))
	s.hitsDisk.Inc()
	s.hitAge.Observe(age.Seconds())
	return art, SourceDisk, true
}

// Put stores an artifact under key in both tiers. The disk write is
// atomic: a rename either installs the complete, checksummed entry or
// nothing.
func (s *Store) Put(key string, art *pipeline.Artifact) error {
	var payload bytes.Buffer
	if err := pipeline.EncodeArtifact(&payload, art); err != nil {
		return fmt.Errorf("cache: encode %s: %v", key, err)
	}
	s.insertMem(key, art, time.Now())
	s.puts.Inc()
	if s.dir == "" {
		return nil
	}
	data := encodeEntry(payload.Bytes())
	tmp, err := os.CreateTemp(s.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: %v", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: write %s: %v", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: close %s: %v", key, err)
	}
	if err := os.Rename(tmp.Name(), s.Path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: install %s: %v", key, err)
	}
	return nil
}

// insertMem adds (or refreshes) a memory-front entry, evicting from the LRU
// tail past capacity.
func (s *Store) insertMem(key string, art *pipeline.Artifact, added time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.mem[key]; ok {
		el.Value.(*memEntry).art = art
		s.lru.MoveToFront(el)
		return
	}
	s.mem[key] = s.lru.PushFront(&memEntry{key: key, art: art, added: added})
	for s.lru.Len() > s.cap {
		tail := s.lru.Back()
		s.lru.Remove(tail)
		delete(s.mem, tail.Value.(*memEntry).key)
		s.evictions.Inc()
	}
}

// quarantine moves a corrupt entry aside so the next Put can reinstall a
// good one and the bad bytes stay available for diagnosis.
func (s *Store) quarantine(path string, cause error) {
	s.quarantined.Inc()
	// Best effort: a failed rename (e.g. the file vanished) still counts
	// as a miss and the caller recompiles.
	_ = os.Rename(path, path+".quarantined")
	_ = cause
}

// encodeEntry frames a gob payload with the magic, version and checksum.
func encodeEntry(payload []byte) []byte {
	out := make([]byte, 0, headerSize+len(payload))
	out = append(out, entryMagic...)
	out = binary.LittleEndian.AppendUint32(out, FormatVersion)
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...)
}

// decodeEntry verifies the frame and decodes the artifact.
func decodeEntry(data []byte) (*pipeline.Artifact, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("cache: entry truncated (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:8], entryMagic) {
		return nil, fmt.Errorf("cache: bad entry magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != FormatVersion {
		return nil, fmt.Errorf("cache: entry format version %d, want %d", v, FormatVersion)
	}
	payload := data[headerSize:]
	want := data[12:headerSize]
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("cache: checksum mismatch")
	}
	return pipeline.DecodeArtifact(bytes.NewReader(payload))
}
