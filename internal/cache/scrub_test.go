package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cgra/internal/chaos"
	"cgra/internal/obs"
)

// newDiskStore builds a store over dir with the background scrubber off,
// so tests drive ScrubNow deterministically.
func newDiskStore(t *testing.T, dir string, o Options) *Store {
	t.Helper()
	o.Dir = dir
	o.ScrubInterval = -1
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestScrubRepairsEachCorruptionMode proves one scrubber pass quarantines
// every injected corruption mode — torn commit, post-write bit-rot, manual
// truncation, stomped magic — and that the store serves again after a
// recompile (Put).
func TestScrubRepairsEachCorruptionMode(t *testing.T) {
	key, art := compileArtifact(t, "gcd")
	modes := map[string]func(t *testing.T, dir string) *Store{
		"torn_commit": func(t *testing.T, dir string) *Store {
			inj := chaos.New(chaos.Plan{Seed: 11, TornWriteEvery: 1}, nil, nil)
			s := newDiskStore(t, dir, Options{FS: inj})
			if err := s.Put(key, art); err != nil {
				t.Fatal(err)
			}
			inj.Disarm()
			return s
		},
		"bit_rot": func(t *testing.T, dir string) *Store {
			inj := chaos.New(chaos.Plan{Seed: 11, BitRotEvery: 1}, nil, nil)
			s := newDiskStore(t, dir, Options{FS: inj})
			if err := s.Put(key, art); err != nil {
				t.Fatal(err)
			}
			inj.Disarm()
			return s
		},
		"truncated": func(t *testing.T, dir string) *Store {
			s := newDiskStore(t, dir, Options{})
			if err := s.Put(key, art); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(s.Path(key))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(s.Path(key), data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
			return s
		},
		"bad_magic": func(t *testing.T, dir string) *Store {
			s := newDiskStore(t, dir, Options{})
			if err := s.Put(key, art); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(s.Path(key))
			if err != nil {
				t.Fatal(err)
			}
			data[0] ^= 0xFF
			if err := os.WriteFile(s.Path(key), data, 0o644); err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
	for name, corrupt := range modes {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := corrupt(t, dir)
			rep := s.ScrubNow()
			if rep.Quarantined != 1 {
				t.Fatalf("scrub quarantined %d entries, want 1 (%s)", rep.Quarantined, rep)
			}
			if _, err := os.Stat(s.Path(key) + ".quarantined"); err != nil {
				t.Fatalf("corrupt entry not moved aside: %v", err)
			}
			// The bad entry must be gone from the index and the disk.
			if s.DiskEntries() != 0 {
				t.Fatalf("disk index still holds %d entries", s.DiskEntries())
			}
			// A recompile (Put) reinstalls; the next pass is clean and a
			// fresh store serves the entry from disk.
			if err := s.Put(key, art); err != nil {
				t.Fatal(err)
			}
			if rep := s.ScrubNow(); !rep.Clean() || rep.Checked != 1 {
				t.Fatalf("post-repair pass not clean: %s", rep)
			}
			s2 := newDiskStore(t, dir, Options{})
			if _, src, ok := s2.Get(key); !ok || src != SourceDisk {
				t.Fatalf("repaired entry not served from disk (ok=%t src=%q)", ok, src)
			}
		})
	}
}

// TestScrubReconcilesIndex proves a scrub pass indexes entries that
// appeared behind the store's back and drops entries whose files vanished.
func TestScrubReconcilesIndex(t *testing.T) {
	dir := t.TempDir()
	key, art := compileArtifact(t, "gcd")
	seed := newDiskStore(t, dir, Options{})
	if err := seed.Put(key, art); err != nil {
		t.Fatal(err)
	}
	// A second store over the same dir, then mutate the dir directly.
	s := newDiskStore(t, dir, Options{})
	if s.DiskEntries() != 1 {
		t.Fatalf("startup index holds %d entries, want 1", s.DiskEntries())
	}
	if err := os.Remove(s.Path(key)); err != nil {
		t.Fatal(err)
	}
	if rep := s.ScrubNow(); rep.Checked != 0 {
		t.Fatalf("scrub checked %d entries after rm, want 0", rep.Checked)
	}
	if s.DiskEntries() != 0 {
		t.Fatalf("index still holds %d entries after file vanished", s.DiskEntries())
	}
	// Reinstall behind the store's back (what another writer would do).
	if err := seed.Put(key, art); err != nil {
		t.Fatal(err)
	}
	if rep := s.ScrubNow(); rep.Checked != 1 {
		t.Fatalf("scrub checked %d entries after reinstall, want 1", rep.Checked)
	}
	if s.DiskEntries() != 1 {
		t.Fatalf("index holds %d entries after reconcile, want 1", s.DiskEntries())
	}
}

// TestDiskCapEvictsLRU proves the disk tier stays under its byte cap by
// evicting least-recently-used entries, and that recency is refreshed by
// Get.
func TestDiskCapEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	_, art := compileArtifact(t, "gcd")
	probe := newDiskStore(t, t.TempDir(), Options{})
	if err := probe.Put("size-probe", art); err != nil {
		t.Fatal(err)
	}
	entrySize := probe.DiskBytes()
	if entrySize <= 0 {
		t.Fatal("size probe failed")
	}
	// Cap the tier at 3 entries; keep the memory front tiny so disk reads
	// actually happen.
	s := newDiskStore(t, dir, Options{MemEntries: 1, DiskCapBytes: 3 * entrySize})
	keys := []string{"k1", "k2", "k3"}
	for _, k := range keys {
		if err := s.Put(k, art); err != nil {
			t.Fatal(err)
		}
	}
	if s.DiskEntries() != 3 {
		t.Fatalf("disk holds %d entries, want 3", s.DiskEntries())
	}
	// Refresh k1 so k2 is the LRU entry, then overflow the cap.
	if _, _, ok := s.Get("k1"); !ok {
		t.Fatal("k1 not servable")
	}
	if err := s.Put("k4", art); err != nil {
		t.Fatal(err)
	}
	if s.DiskBytes() > 3*entrySize {
		t.Fatalf("disk tier over cap: %d > %d", s.DiskBytes(), 3*entrySize)
	}
	if _, err := os.Stat(s.Path("k2")); !os.IsNotExist(err) {
		t.Fatal("k2 (LRU) not evicted")
	}
	for _, k := range []string{"k1", "k3", "k4"} {
		if _, err := os.Stat(s.Path(k)); err != nil {
			t.Fatalf("%s evicted out of LRU order: %v", k, err)
		}
	}
}

// TestENOSPCDegradesAndScrubHeals walks the full failure arc: a disk that
// rejects every write with ENOSPC fails the store over to memory-only
// degraded mode (after evict-and-retry), serving continues from memory,
// and once the disk recovers a scrub pass probes it back into service.
func TestENOSPCDegradesAndScrubHeals(t *testing.T) {
	dir := t.TempDir()
	key, art := compileArtifact(t, "gcd")
	reg := obs.NewRegistry()
	inj := chaos.New(chaos.Plan{ENOSPCEvery: 1}, nil, reg)
	s := newDiskStore(t, dir, Options{FS: inj, Registry: reg})

	if err := s.Put(key, art); err == nil {
		t.Fatal("Put on a full disk should report the install failure")
	}
	if !s.Degraded() {
		t.Fatal("store not degraded after persistent ENOSPC")
	}
	if reg.Gauge("cgra_cache_disk_degraded").Value() != 1 {
		t.Fatal("cgra_cache_disk_degraded gauge not raised")
	}
	// Memory tier still serves: the compile was not lost.
	if _, src, ok := s.Get(key); !ok || src != SourceMemory {
		t.Fatalf("memory tier lost the artifact (ok=%t src=%q)", ok, src)
	}
	// Degraded mode skips disk writes entirely (no error, no file).
	if err := s.Put(key+"2", art); err != nil {
		t.Fatalf("degraded Put must be memory-only and silent: %v", err)
	}
	if _, err := os.Stat(s.Path(key + "2")); !os.IsNotExist(err) {
		t.Fatal("degraded store still wrote to disk")
	}

	// Disk recovers; the next scrub pass heals the store.
	inj.Disarm()
	rep := s.ScrubNow()
	if !rep.Healed || s.Degraded() {
		t.Fatalf("scrub did not heal the store (healed=%t degraded=%t)", rep.Healed, s.Degraded())
	}
	if reg.Gauge("cgra_cache_disk_degraded").Value() != 0 {
		t.Fatal("cgra_cache_disk_degraded gauge not cleared")
	}
	if reg.Counter("cgra_cache_scrub_heals_total").Value() != 1 {
		t.Fatal("heal not counted in cgra_cache_scrub_heals_total")
	}
	// Writes reach the disk again.
	if err := s.Put(key, art); err != nil {
		t.Fatalf("post-heal Put: %v", err)
	}
	if _, err := os.Stat(s.Path(key)); err != nil {
		t.Fatalf("post-heal entry not on disk: %v", err)
	}
}

// TestStartupRemovesStaleTempFiles proves leftovers of a commit that
// crashed before its rename are cleaned at startup.
func TestStartupRemovesStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, strings.Repeat("a", 8)+".art.tmp-3")
	if err := os.WriteFile(stale, []byte("half a commit"), 0o644); err != nil {
		t.Fatal(err)
	}
	newDiskStore(t, dir, Options{})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived startup")
	}
}

// syncRecorder wraps an FS and records the operation order of one commit,
// so the test can assert the crash-safe protocol: temp write, temp fsync,
// rename, directory fsync — in that order.
type syncRecorder struct {
	chaos.FS
	ops []string
}

func (r *syncRecorder) WriteFile(path string, data []byte, perm uint32) error {
	r.ops = append(r.ops, "write:"+filepath.Base(path))
	return r.FS.WriteFile(path, data, perm)
}

func (r *syncRecorder) Sync(path string) error {
	r.ops = append(r.ops, "sync:"+filepath.Base(path))
	return r.FS.Sync(path)
}

func (r *syncRecorder) Rename(oldPath, newPath string) error {
	r.ops = append(r.ops, "rename:"+filepath.Base(newPath))
	return r.FS.Rename(oldPath, newPath)
}

// TestCommitIsFsyncedBeforeRename pins the durability order of the disk
// commit: the temp file must be fsynced before the rename installs it, and
// the parent directory after — the fix for the crash window where a rename
// could persist while its data had not.
func TestCommitIsFsyncedBeforeRename(t *testing.T) {
	dir := t.TempDir()
	key, art := compileArtifact(t, "gcd")
	rec := &syncRecorder{FS: chaos.OS}
	s := newDiskStore(t, dir, Options{FS: rec})
	if err := s.Put(key, art); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, op := range rec.ops {
		if strings.Contains(op, ".tmp-") {
			op = op[:strings.Index(op, ".tmp-")] + ".tmp"
		}
		got = append(got, op)
	}
	want := []string{
		"write:" + key + ".art.tmp",
		"sync:" + key + ".art.tmp",
		"rename:" + key + ".art",
		"sync:" + filepath.Base(dir),
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("commit protocol order:\n got %v\nwant %v", got, want)
	}
}
