package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cgra/internal/arch"
	"cgra/internal/pipeline"
	"cgra/internal/workload"
)

// compileArtifact builds one real artifact to exercise the store with.
func compileArtifact(t *testing.T, workloadName string) (string, *pipeline.Artifact) {
	t.Helper()
	comp, err := arch.ByName("9 PEs")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName(workloadName)
	if err != nil {
		t.Fatal(err)
	}
	c, err := pipeline.Compile(w.Kernel, comp, pipeline.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Artifact()
	if err != nil {
		t.Fatal(err)
	}
	return pipeline.Key(w.Kernel, comp, pipeline.Defaults()), a
}

func TestMemoryHitAndMiss(t *testing.T) {
	s, err := New(Options{MemEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	key, art := compileArtifact(t, "gcd")
	if _, _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(key, art); err != nil {
		t.Fatal(err)
	}
	got, src, ok := s.Get(key)
	if !ok || src != SourceMemory {
		t.Fatalf("want memory hit, got ok=%t src=%q", ok, src)
	}
	if got.Kernel != art.Kernel || got.NumCtx != art.NumCtx {
		t.Fatal("memory tier returned a different artifact")
	}
}

// TestLRUEvictionOrder proves the memory front evicts strictly
// least-recently-used entries, and that a Get refreshes recency.
func TestLRUEvictionOrder(t *testing.T) {
	s, err := New(Options{MemEntries: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, art := compileArtifact(t, "gcd")
	put := func(k string) {
		if err := s.Put(k, art); err != nil {
			t.Fatal(err)
		}
	}
	inMem := func(k string) bool {
		_, src, ok := s.Get(k)
		return ok && src == SourceMemory
	}
	put("a")
	put("b")
	put("c")
	// Refresh "a" so "b" is now the LRU entry.
	if !inMem("a") {
		t.Fatal("a should be resident")
	}
	put("d") // evicts b
	if inMem("b") {
		t.Fatal("b survived eviction; LRU order violated")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !inMem(k) {
			t.Fatalf("%s evicted out of LRU order", k)
		}
	}
	put("e") // the inMem probes refreshed a, c, d; "a" is oldest now
	if inMem("a") {
		t.Fatal("a survived; Get must refresh recency")
	}
	if s.Len() != 3 {
		t.Fatalf("memory front holds %d entries, cap is 3", s.Len())
	}
}

func TestDiskPersistenceAcrossStores(t *testing.T) {
	dir := t.TempDir()
	key, art := compileArtifact(t, "gcd")
	s1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(key, art); err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same directory (a restarted daemon) must
	// serve the artifact from disk, then from memory.
	s2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, src, ok := s2.Get(key)
	if !ok || src != SourceDisk {
		t.Fatalf("want disk hit, got ok=%t src=%q", ok, src)
	}
	if _, err := got.Realize(); err != nil {
		t.Fatalf("disk-served artifact does not realize: %v", err)
	}
	if _, src, _ := s2.Get(key); src != SourceMemory {
		t.Fatalf("disk hit was not promoted to memory (src=%q)", src)
	}
}

// TestCorruptEntryQuarantined proves a damaged on-disk entry is moved
// aside and reported as a miss — the caller recompiles, nothing crashes —
// and that a subsequent Put reinstalls a healthy entry.
func TestCorruptEntryQuarantined(t *testing.T) {
	key, art := compileArtifact(t, "gcd")
	corruptions := map[string]func([]byte) []byte{
		"truncated header": func(b []byte) []byte { return b[:10] },
		"truncated body":   func(b []byte) []byte { return b[:len(b)-7] },
		"bad magic":        func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"bad version":      func(b []byte) []byte { b[9] = 0x7F; return b },
		"flipped payload":  func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"flipped checksum": func(b []byte) []byte { b[20] ^= 0x01; return b },
	}
	for name, corrupt := range corruptions {
		t.Run(strings.ReplaceAll(name, " ", "_"), func(t *testing.T) {
			dir := t.TempDir()
			s, err := New(Options{Dir: dir, MemEntries: 2})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put(key, art); err != nil {
				t.Fatal(err)
			}
			path := s.Path(key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			// Fresh store: no memory front to mask the damage.
			s2, err := New(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, ok := s2.Get(key); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if _, err := os.Stat(path + ".quarantined"); err != nil {
				t.Fatalf("corrupt entry not quarantined: %v", err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt entry still in place")
			}
			// Recovery: a recompile reinstalls and the entry serves again.
			if err := s2.Put(key, art); err != nil {
				t.Fatal(err)
			}
			s3, err := New(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if _, src, ok := s3.Get(key); !ok || src != SourceDisk {
				t.Fatalf("reinstalled entry not served (ok=%t src=%q)", ok, src)
			}
		})
	}
}

// TestConcurrentGetPut hammers the store from many goroutines (run under
// -race by CI) across both tiers.
func TestConcurrentGetPut(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir, MemEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, art := compileArtifact(t, "gcd")
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064d", i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := keys[(g+i)%len(keys)]
				if i%3 == 0 {
					if err := s.Put(k, art); err != nil {
						t.Error(err)
						return
					}
				} else if a, _, ok := s.Get(k); ok && a.Kernel != art.Kernel {
					t.Error("concurrent Get returned foreign artifact")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Every key was Put at least once; all must now be servable.
	for _, k := range keys {
		if _, _, ok := s.Get(k); !ok {
			t.Fatalf("key %s lost after concurrent traffic", k)
		}
	}
	if n, err := filepath.Glob(filepath.Join(dir, "*.tmp-*")); err == nil && len(n) > 0 {
		t.Fatalf("temp files leaked: %v", n)
	}
}

func TestMemoryOnlyStore(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	key, art := compileArtifact(t, "gcd")
	if err := s.Put(key, art); err != nil {
		t.Fatal(err)
	}
	if p := s.Path(key); p != "" {
		t.Fatalf("memory-only store reports a disk path %q", p)
	}
	if _, src, ok := s.Get(key); !ok || src != SourceMemory {
		t.Fatalf("want memory hit, got ok=%t src=%q", ok, src)
	}
}
