package ir

import (
	"testing"
	"testing/quick"
)

func simpleGCD() *Kernel {
	// gcd via repeated subtraction (no division in the ISA).
	return NewKernel("gcd",
		[]Param{InOut("a"), InOut("b")},
		Loop(Ne(V("b"), C(0)),
			IfElse(Gt(V("a"), V("b")),
				[]Stmt{Set("a", Sub(V("a"), V("b")))},
				[]Stmt{Set("b", Sub(V("b"), V("a")))},
			),
		),
	)
}

func TestInterpArith(t *testing.T) {
	k := NewKernel("arith",
		[]Param{In("x"), In("y"), InOut("r")},
		Set("r", Add(Mul(V("x"), V("y")), Shl(V("x"), C(2)))),
	)
	if err := Validate(k); err != nil {
		t.Fatalf("validate: %v", err)
	}
	in := &Interp{}
	out, err := in.Run(k, map[string]int32{"x": 3, "y": 4, "r": 0}, NewHost())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got, want := out["r"], int32(3*4+3<<2); got != want {
		t.Errorf("r = %d, want %d", got, want)
	}
}

func TestInterpGCD(t *testing.T) {
	k := simpleGCD()
	if err := Validate(k); err != nil {
		t.Fatalf("validate: %v", err)
	}
	cases := []struct{ a, b, want int32 }{
		{12, 18, 6}, {7, 13, 1}, {100, 75, 25}, {5, 5, 5}, {9, 0, 9},
	}
	for _, c := range cases {
		in := &Interp{}
		out, err := in.Run(k, map[string]int32{"a": c.a, "b": c.b}, NewHost())
		if err != nil {
			t.Fatalf("run gcd(%d,%d): %v", c.a, c.b, err)
		}
		got := out["a"]
		if out["b"] != 0 {
			got = out["b"]
		}
		if got+out["b"] != c.want && got != c.want {
			t.Errorf("gcd(%d,%d) = a:%d b:%d, want %d", c.a, c.b, out["a"], out["b"], c.want)
		}
	}
}

func TestInterpArraySumNested(t *testing.T) {
	// sum over a 2D row-major array with nested counted loops.
	k := NewKernel("sum2d",
		[]Param{Array("m"), In("rows"), In("cols"), InOut("s")},
		Set("s", C(0)),
		Count("i", C(0), V("rows"), 1,
			Count("j", C(0), V("cols"), 1,
				Set("s", Add(V("s"), At("m", Add(Mul(V("i"), V("cols")), V("j"))))),
			),
		),
	)
	if err := Validate(k); err != nil {
		t.Fatalf("validate: %v", err)
	}
	host := NewHost()
	host.Arrays["m"] = []int32{1, 2, 3, 4, 5, 6}
	in := &Interp{}
	out, err := in.Run(k, map[string]int32{"rows": 2, "cols": 3, "s": 0}, host)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out["s"] != 21 {
		t.Errorf("s = %d, want 21", out["s"])
	}
}

func TestInterpConditionalStore(t *testing.T) {
	// clamp each element into [lo, hi].
	k := NewKernel("clamp",
		[]Param{Array("a"), In("n"), In("lo"), In("hi")},
		Count("i", C(0), V("n"), 1,
			Set("v", At("a", V("i"))),
			IfThen(Lt(V("v"), V("lo")), Set("v", V("lo"))),
			IfThen(Gt(V("v"), V("hi")), Set("v", V("hi"))),
			SetElem("a", V("i"), V("v")),
		),
	)
	if err := Validate(k); err != nil {
		t.Fatalf("validate: %v", err)
	}
	host := NewHost()
	host.Arrays["a"] = []int32{-5, 0, 3, 99, 7}
	in := &Interp{}
	if _, err := in.Run(k, map[string]int32{"n": 5, "lo": 0, "hi": 10}, host); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []int32{0, 0, 3, 10, 7}
	for i, w := range want {
		if host.Arrays["a"][i] != w {
			t.Errorf("a[%d] = %d, want %d", i, host.Arrays["a"][i], w)
		}
	}
}

func TestInterpShortCircuit(t *testing.T) {
	// (i < n && a[i] > 0) must not fault when i >= n.
	k := NewKernel("sc",
		[]Param{Array("a"), In("i"), In("n"), InOut("r")},
		IfElse(LAnd(Lt(V("i"), V("n")), Gt(At("a", V("i")), C(0))),
			[]Stmt{Set("r", C(1))},
			[]Stmt{Set("r", C(0))},
		),
	)
	host := NewHost()
	host.Arrays["a"] = []int32{5}
	in := &Interp{}
	out, err := in.Run(k, map[string]int32{"i": 7, "n": 1, "r": -1}, host)
	if err != nil {
		t.Fatalf("short-circuit evaluation faulted: %v", err)
	}
	if out["r"] != 0 {
		t.Errorf("r = %d, want 0", out["r"])
	}
}

func TestInterpStepLimit(t *testing.T) {
	k := NewKernel("inf",
		[]Param{InOut("x")},
		Loop(Eq(C(1), C(1)), Set("x", Add(V("x"), C(1)))),
	)
	in := &Interp{MaxSteps: 1000}
	if _, err := in.Run(k, map[string]int32{"x": 0}, NewHost()); err != ErrStepLimit {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestInterpOutOfBounds(t *testing.T) {
	k := NewKernel("oob",
		[]Param{Array("a"), InOut("r")},
		Set("r", At("a", C(10))),
	)
	host := NewHost()
	host.Arrays["a"] = []int32{1, 2}
	in := &Interp{}
	if _, err := in.Run(k, map[string]int32{"r": 0}, host); err == nil {
		t.Error("expected out-of-bounds error")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		k    *Kernel
	}{
		{"read-before-assign", NewKernel("k", []Param{InOut("r")}, Set("r", V("z")))},
		{"array-as-scalar", NewKernel("k", []Param{Array("a"), InOut("r")}, Set("r", V("a")))},
		{"scalar-as-array", NewKernel("k", []Param{In("x"), InOut("r")}, Set("r", At("x", C(0))))},
		{"store-to-scalar", NewKernel("k", []Param{In("x")}, SetElem("x", C(0), C(1)))},
		{"assign-to-array", NewKernel("k", []Param{Array("a")}, Set("a", C(1)))},
		{"dup-param", NewKernel("k", []Param{In("x"), In("x")})},
		{"one-arm-def", NewKernel("k", []Param{In("c"), InOut("r")},
			IfThen(Ne(V("c"), C(0)), Set("t", C(1))),
			Set("r", V("t")))},
		{"loop-body-def", NewKernel("k", []Param{In("c"), InOut("r")},
			Loop(Ne(V("c"), C(0)), Set("t", C(1))),
			Set("r", V("t")))},
	}
	for _, c := range cases {
		if err := Validate(c.k); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestValidateBothArmsDefine(t *testing.T) {
	k := NewKernel("k", []Param{In("c"), InOut("r")},
		IfElse(Ne(V("c"), C(0)),
			[]Stmt{Set("t", C(1))},
			[]Stmt{Set("t", C(2))},
		),
		Set("r", V("t")),
	)
	if err := Validate(k); err != nil {
		t.Errorf("both-arm definition should validate: %v", err)
	}
}

func TestLowerFor(t *testing.T) {
	k := NewKernel("k",
		[]Param{InOut("s"), In("n")},
		Count("i", C(0), V("n"), 1, Set("s", Add(V("s"), V("i")))),
	)
	low := k.LowerFor()
	if len(low.Body) != 2 {
		t.Fatalf("lowered body has %d stmts, want 2 (init + while)", len(low.Body))
	}
	if _, ok := low.Body[0].(*Assign); !ok {
		t.Errorf("first lowered stmt is %T, want *Assign", low.Body[0])
	}
	w, ok := low.Body[1].(*While)
	if !ok {
		t.Fatalf("second lowered stmt is %T, want *While", low.Body[1])
	}
	if len(w.Body) != 2 {
		t.Errorf("while body has %d stmts, want 2 (assign + post)", len(w.Body))
	}
	// Semantics must be preserved.
	for _, n := range []int32{0, 1, 5, 17} {
		i1 := &Interp{}
		o1, err := i1.Run(k, map[string]int32{"s": 0, "n": n}, NewHost())
		if err != nil {
			t.Fatalf("run original: %v", err)
		}
		i2 := &Interp{}
		o2, err := i2.Run(low, map[string]int32{"s": 0, "n": n}, NewHost())
		if err != nil {
			t.Fatalf("run lowered: %v", err)
		}
		if o1["s"] != o2["s"] {
			t.Errorf("n=%d: original %d != lowered %d", n, o1["s"], o2["s"])
		}
	}
}

func TestEvalBinMatchesGo(t *testing.T) {
	// Property: EvalBin agrees with native Go int32 semantics.
	f := func(x, y int32) bool {
		type tc struct {
			op   BinOp
			want int32
		}
		cases := []tc{
			{OpAdd, x + y}, {OpSub, x - y}, {OpMul, x * y},
			{OpAnd, x & y}, {OpOr, x | y}, {OpXor, x ^ y},
			{OpShl, x << (uint32(y) & 31)},
			{OpShr, x >> (uint32(y) & 31)},
			{OpShrU, int32(uint32(x) >> (uint32(y) & 31))},
		}
		for _, c := range cases {
			got, err := EvalBin(c.op, x, y, nil)
			if err != nil || got != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalBinCompareTotalOrder(t *testing.T) {
	// Property: exactly one of <, ==, > holds; <= == (< or ==); != == !(==).
	f := func(x, y int32) bool {
		get := func(op BinOp) int32 {
			v, err := EvalBin(op, x, y, nil)
			if err != nil {
				panic(err)
			}
			return v
		}
		lt, eq, gt := get(OpLt), get(OpEq), get(OpGt)
		le, ge, ne := get(OpLe), get(OpGe), get(OpNe)
		if lt+eq+gt != 1 {
			return false
		}
		if le != (lt | eq) {
			return false
		}
		if ge != (gt | eq) {
			return false
		}
		if ne != 1-eq {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpStatsCounts(t *testing.T) {
	k := NewKernel("stats",
		[]Param{Array("a"), InOut("s")},
		Set("s", Add(Mul(At("a", C(0)), C(2)), C(1))),
	)
	host := NewHost()
	host.Arrays["a"] = []int32{7}
	st := &OpStats{}
	in := &Interp{Stats: st}
	if _, err := in.Run(k, map[string]int32{"s": 0}, host); err != nil {
		t.Fatalf("run: %v", err)
	}
	if st.Mul != 1 {
		t.Errorf("Mul = %d, want 1", st.Mul)
	}
	if st.Arith != 1 {
		t.Errorf("Arith = %d, want 1", st.Arith)
	}
	if st.Loads != 1 {
		t.Errorf("Loads = %d, want 1", st.Loads)
	}
	if st.LocalWr != 1 {
		t.Errorf("LocalWr = %d, want 1", st.LocalWr)
	}
	if st.Total() == 0 {
		t.Error("Total = 0")
	}
}

func TestHostCloneAndEqual(t *testing.T) {
	h := NewHost()
	h.Arrays["a"] = []int32{1, 2, 3}
	h.Arrays["b"] = []int32{4}
	c := h.Clone()
	if !h.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Arrays["a"][0] = 99
	if h.Equal(c) {
		t.Fatal("mutated clone still equal")
	}
	if h.Arrays["a"][0] != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestStringers(t *testing.T) {
	e := Add(Mul(V("x"), C(3)), At("a", V("i")))
	if got := e.String(); got != "((x * 3) + a[i])" {
		t.Errorf("String() = %q", got)
	}
	if OpLAnd.String() != "&&" || OpShrU.String() != ">>>" {
		t.Error("operator names wrong")
	}
	if OpNeg.String() != "-" || OpLNot.String() != "!" {
		t.Error("unary operator names wrong")
	}
	if ScalarIn.String() != "in" || ArrayRef.String() != "array" {
		t.Error("param kind names wrong")
	}
}
