package ir

// This file provides a terse construction API for kernels. Examples and the
// workload library use it to express algorithms close to their pseudo-code.

// C builds an integer constant expression.
func C(v int32) *Const { return &Const{Value: v} }

// V builds a variable reference.
func V(name string) *VarRef { return &VarRef{Name: name} }

// At builds an array load Array[index].
func At(array string, index Expr) *Load { return &Load{Array: array, Index: index} }

// Add builds x + y.
func Add(x, y Expr) *Bin { return &Bin{Op: OpAdd, X: x, Y: y} }

// Sub builds x - y.
func Sub(x, y Expr) *Bin { return &Bin{Op: OpSub, X: x, Y: y} }

// Mul builds x * y.
func Mul(x, y Expr) *Bin { return &Bin{Op: OpMul, X: x, Y: y} }

// And builds bitwise x & y.
func And(x, y Expr) *Bin { return &Bin{Op: OpAnd, X: x, Y: y} }

// Or builds bitwise x | y.
func Or(x, y Expr) *Bin { return &Bin{Op: OpOr, X: x, Y: y} }

// Xor builds x ^ y.
func Xor(x, y Expr) *Bin { return &Bin{Op: OpXor, X: x, Y: y} }

// Shl builds x << y.
func Shl(x, y Expr) *Bin { return &Bin{Op: OpShl, X: x, Y: y} }

// Shr builds the arithmetic shift x >> y.
func Shr(x, y Expr) *Bin { return &Bin{Op: OpShr, X: x, Y: y} }

// ShrU builds the logical shift x >>> y.
func ShrU(x, y Expr) *Bin { return &Bin{Op: OpShrU, X: x, Y: y} }

// Lt builds x < y.
func Lt(x, y Expr) *Bin { return &Bin{Op: OpLt, X: x, Y: y} }

// Le builds x <= y.
func Le(x, y Expr) *Bin { return &Bin{Op: OpLe, X: x, Y: y} }

// Gt builds x > y.
func Gt(x, y Expr) *Bin { return &Bin{Op: OpGt, X: x, Y: y} }

// Ge builds x >= y.
func Ge(x, y Expr) *Bin { return &Bin{Op: OpGe, X: x, Y: y} }

// Eq builds x == y.
func Eq(x, y Expr) *Bin { return &Bin{Op: OpEq, X: x, Y: y} }

// Ne builds x != y.
func Ne(x, y Expr) *Bin { return &Bin{Op: OpNe, X: x, Y: y} }

// LAnd builds the short-circuit conjunction x && y.
func LAnd(x, y Expr) *Bin { return &Bin{Op: OpLAnd, X: x, Y: y} }

// LOr builds the short-circuit disjunction x || y.
func LOr(x, y Expr) *Bin { return &Bin{Op: OpLOr, X: x, Y: y} }

// Neg builds -x.
func Neg(x Expr) *Un { return &Un{Op: OpNeg, X: x} }

// Not builds the bitwise complement ~x.
func Not(x Expr) *Un { return &Un{Op: OpNot, X: x} }

// LNot builds the logical negation !x.
func LNot(x Expr) *Un { return &Un{Op: OpLNot, X: x} }

// Set builds the assignment name = value.
func Set(name string, value Expr) *Assign { return &Assign{Name: name, Value: value} }

// SetElem builds the array store array[index] = value.
func SetElem(array string, index, value Expr) *Store {
	return &Store{Array: array, Index: index, Value: value}
}

// IfThen builds a one-armed conditional.
func IfThen(cond Expr, then ...Stmt) *If { return &If{Cond: cond, Then: then} }

// IfElse builds a two-armed conditional.
func IfElse(cond Expr, then, els []Stmt) *If { return &If{Cond: cond, Then: then, Else: els} }

// Loop builds a while loop.
func Loop(cond Expr, body ...Stmt) *While { return &While{Cond: cond, Body: body} }

// Count builds the counted loop: name = from; while (name < to) { body; name = name + step }.
func Count(name string, from, to Expr, step int32, body ...Stmt) *For {
	return &For{
		Init: Set(name, from),
		Cond: Lt(V(name), to),
		Post: Set(name, Add(V(name), C(step))),
		Body: body,
	}
}

// In declares a scalar input parameter.
func In(name string) Param { return Param{Name: name, Kind: ScalarIn} }

// InOut declares a scalar input parameter written back after the run.
func InOut(name string) Param { return Param{Name: name, Kind: ScalarInOut} }

// Array declares an array (heap handle) parameter.
func Array(name string) Param { return Param{Name: name, Kind: ArrayRef} }

// NewKernel assembles a kernel from parameters and body statements.
func NewKernel(name string, params []Param, body ...Stmt) *Kernel {
	return &Kernel{Name: name, Params: params, Body: body}
}
