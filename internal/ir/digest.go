package ir

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// Digest returns a stable content hash of the kernel: the hex-encoded
// SHA-256 of a canonical serialization of its name, parameter list and
// statement tree. Structurally identical kernels always hash identically —
// across processes, runs and architectures — so the digest is usable as a
// cache key for compiled artifacts and for deduplication in exploration.
//
// The canonical form is tag-prefixed and fully parenthesized, so distinct
// trees cannot collide by concatenation (e.g. `a=1; b=2` vs `a=12`).
func (k *Kernel) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "kernel %q %d\n", k.Name, len(k.Params))
	for _, p := range k.Params {
		fmt.Fprintf(h, "param %q %d\n", p.Name, int(p.Kind))
	}
	digestStmts(h, k.Body)
	return hex.EncodeToString(h.Sum(nil))
}

func digestStmts(w io.Writer, stmts []Stmt) {
	fmt.Fprintf(w, "block %d\n", len(stmts))
	for _, s := range stmts {
		switch s := s.(type) {
		case *Assign:
			fmt.Fprintf(w, "assign %q\n", s.Name)
			digestExpr(w, s.Value)
		case *Store:
			fmt.Fprintf(w, "store %q\n", s.Array)
			digestExpr(w, s.Index)
			digestExpr(w, s.Value)
		case *If:
			io.WriteString(w, "if\n")
			digestExpr(w, s.Cond)
			digestStmts(w, s.Then)
			digestStmts(w, s.Else)
		case *While:
			io.WriteString(w, "while\n")
			digestExpr(w, s.Cond)
			digestStmts(w, s.Body)
		case *For:
			io.WriteString(w, "for\n")
			if s.Init != nil {
				fmt.Fprintf(w, "init %q\n", s.Init.Name)
				digestExpr(w, s.Init.Value)
			}
			digestExpr(w, s.Cond)
			if s.Post != nil {
				fmt.Fprintf(w, "post %q\n", s.Post.Name)
				digestExpr(w, s.Post.Value)
			}
			digestStmts(w, s.Body)
		default:
			fmt.Fprintf(w, "stmt %T\n", s)
		}
	}
}

func digestExpr(w io.Writer, e Expr) {
	switch e := e.(type) {
	case *Const:
		fmt.Fprintf(w, "const %d\n", e.Value)
	case *VarRef:
		fmt.Fprintf(w, "var %q\n", e.Name)
	case *Load:
		fmt.Fprintf(w, "load %q\n", e.Array)
		digestExpr(w, e.Index)
	case *Bin:
		fmt.Fprintf(w, "bin %d\n", int(e.Op))
		digestExpr(w, e.X)
		digestExpr(w, e.Y)
	case *Un:
		fmt.Fprintf(w, "un %d\n", int(e.Op))
		digestExpr(w, e.X)
	case nil:
		io.WriteString(w, "nil\n")
	default:
		fmt.Fprintf(w, "expr %T\n", e)
	}
}
