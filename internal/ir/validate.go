package ir

import "fmt"

// Validate checks a kernel for structural well-formedness: every variable is
// assigned (or declared as a scalar parameter) before it is read, array
// accesses name array parameters, array names are never used as scalars, and
// shift amounts are plain expressions. It returns the first violation found.
func Validate(k *Kernel) error {
	v := &validator{kernel: k, defined: map[string]bool{}}
	seen := map[string]bool{}
	for _, p := range k.Params {
		if p.Name == "" {
			return fmt.Errorf("kernel %s: parameter with empty name", k.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("kernel %s: duplicate parameter %q", k.Name, p.Name)
		}
		seen[p.Name] = true
		if p.Kind != ArrayRef {
			v.defined[p.Name] = true
		}
	}
	return v.stmts(k.Body)
}

type validator struct {
	kernel *Kernel
	// defined tracks scalars guaranteed to be assigned on every path that
	// reaches the current statement.
	defined map[string]bool
	// program resolves calls; nil for single-kernel validation, where
	// calls are rejected (they must be inlined first).
	program *Program
}

func (v *validator) stmts(stmts []Stmt) error {
	for _, s := range stmts {
		if err := v.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (v *validator) stmt(s Stmt) error {
	switch s := s.(type) {
	case *Assign:
		if v.kernel.IsArray(s.Name) {
			return fmt.Errorf("cannot assign scalar to array parameter %q", s.Name)
		}
		if err := v.expr(s.Value); err != nil {
			return err
		}
		v.defined[s.Name] = true
		return nil
	case *Store:
		if !v.kernel.IsArray(s.Array) {
			return fmt.Errorf("store to %q: not an array parameter", s.Array)
		}
		if err := v.expr(s.Index); err != nil {
			return err
		}
		return v.expr(s.Value)
	case *If:
		if err := v.expr(s.Cond); err != nil {
			return err
		}
		// Variables assigned in only one arm are not definitely assigned
		// afterwards; track the intersection.
		base := v.snapshot()
		if err := v.stmts(s.Then); err != nil {
			return err
		}
		afterThen := v.snapshot()
		v.defined = base
		if err := v.stmts(s.Else); err != nil {
			return err
		}
		for name := range v.defined {
			if !afterThen[name] {
				delete(v.defined, name)
			}
		}
		for name := range afterThen {
			if base[name] {
				v.defined[name] = true
			}
		}
		return nil
	case *While:
		if err := v.expr(s.Cond); err != nil {
			return err
		}
		// The body may execute zero times: validate it against the current
		// definitions but discard additions afterwards.
		base := v.snapshot()
		if err := v.stmts(s.Body); err != nil {
			return err
		}
		// The condition must also be valid against body-end definitions;
		// it was validated against the superset-free entry set already,
		// which is the stricter check, so nothing more to do.
		v.defined = base
		return nil
	case *For:
		if s.Init != nil {
			if err := v.stmt(s.Init); err != nil {
				return err
			}
		}
		if err := v.expr(s.Cond); err != nil {
			return err
		}
		base := v.snapshot()
		if err := v.stmts(s.Body); err != nil {
			return err
		}
		if s.Post != nil {
			if err := v.stmt(s.Post); err != nil {
				return err
			}
		}
		v.defined = base
		return nil
	case *Call:
		if v.program == nil {
			return fmt.Errorf("call to %q outside a program context (inline first)", s.Callee)
		}
		callee := v.program.Kernels[s.Callee]
		return checkCall(v.kernel, callee, s, func(p Param, arg Expr) error {
			switch p.Kind {
			case ScalarIn:
				return v.expr(arg)
			case ScalarInOut:
				// Copied in and written back: must be readable now,
				// stays defined afterwards.
				if err := v.expr(arg); err != nil {
					return err
				}
				v.defined[arg.(*VarRef).Name] = true
			}
			return nil
		})
	case nil:
		return fmt.Errorf("nil statement")
	default:
		return fmt.Errorf("unknown statement type %T", s)
	}
}

func (v *validator) snapshot() map[string]bool {
	m := make(map[string]bool, len(v.defined))
	for k, val := range v.defined {
		m[k] = val
	}
	return m
}

func (v *validator) expr(e Expr) error {
	switch e := e.(type) {
	case *Const:
		return nil
	case *VarRef:
		if v.kernel.IsArray(e.Name) {
			return fmt.Errorf("array parameter %q used as scalar", e.Name)
		}
		if !v.defined[e.Name] {
			return fmt.Errorf("variable %q may be read before assignment", e.Name)
		}
		return nil
	case *Load:
		if !v.kernel.IsArray(e.Array) {
			return fmt.Errorf("load from %q: not an array parameter", e.Array)
		}
		return v.expr(e.Index)
	case *Bin:
		if err := v.expr(e.X); err != nil {
			return err
		}
		return v.expr(e.Y)
	case *Un:
		return v.expr(e.X)
	case nil:
		return fmt.Errorf("nil expression")
	default:
		return fmt.Errorf("unknown expression type %T", e)
	}
}
