// Package ir defines the kernel intermediate representation consumed by the
// CGRA tool flow.
//
// The paper builds its control/data-flow graph (CDFG) from Java bytecode
// sequences that the AMIDAR hardware profiler flags as hot. This repository
// substitutes a small, typed kernel IR: a kernel is a parameterized function
// over 32-bit integers and integer arrays, with assignments, array loads and
// stores, if/else, and while/for loops (including data-dependent bounds and
// arbitrary nesting). Any front end that can produce this IR exercises the
// same scheduler code paths as the paper's bytecode front end.
//
// The IR is deliberately word-oriented: every scalar is an int32, matching
// the 32-bit integer data path of the generated CGRAs (the paper's current
// implementation supports integer and control-flow operations only).
package ir

import "fmt"

// BinOp enumerates binary operators. Arithmetic and logic operators map 1:1
// onto CGRA ALU operations; comparison operators become status-producing
// operations whose result is routed to the C-Box. Division is intentionally
// absent: the paper's PEs exclude it.
type BinOp int

// Binary operators.
const (
	OpAdd  BinOp = iota // +
	OpSub               // -
	OpMul               // *
	OpAnd               // & (bitwise)
	OpOr                // | (bitwise)
	OpXor               // ^
	OpShl               // <<
	OpShr               // >> (arithmetic)
	OpShrU              // >>> (logical)
	OpLt                // <
	OpLe                // <=
	OpGt                // >
	OpGe                // >=
	OpEq                // ==
	OpNe                // !=
	OpLAnd              // && (short-circuit in conditions, 0/1 as value)
	OpLOr               // || (short-circuit in conditions, 0/1 as value)
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpAnd: "&", OpOr: "|", OpXor: "^",
	OpShl: "<<", OpShr: ">>", OpShrU: ">>>", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpEq: "==", OpNe: "!=", OpLAnd: "&&", OpLOr: "||",
}

func (op BinOp) String() string {
	if s, ok := binOpNames[op]; ok {
		return s
	}
	return fmt.Sprintf("BinOp(%d)", int(op))
}

// IsCompare reports whether op yields a boolean (0/1) comparison result.
func (op BinOp) IsCompare() bool {
	switch op {
	case OpLt, OpLe, OpGt, OpGe, OpEq, OpNe:
		return true
	}
	return false
}

// IsLogical reports whether op is a short-circuit logical connective.
func (op BinOp) IsLogical() bool { return op == OpLAnd || op == OpLOr }

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNeg  UnOp = iota // arithmetic negation
	OpNot              // bitwise complement
	OpLNot             // logical negation (0/1)
)

func (op UnOp) String() string {
	switch op {
	case OpNeg:
		return "-"
	case OpNot:
		return "~"
	case OpLNot:
		return "!"
	}
	return fmt.Sprintf("UnOp(%d)", int(op))
}

// Expr is an expression tree node.
type Expr interface {
	exprNode()
	String() string
}

// Const is an integer literal.
type Const struct{ Value int32 }

// VarRef reads a scalar local or scalar parameter.
type VarRef struct{ Name string }

// Load reads one element of an array parameter: Array[Index].
type Load struct {
	Array string
	Index Expr
}

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	X, Y Expr
}

// Un applies a unary operator.
type Un struct {
	Op UnOp
	X  Expr
}

func (*Const) exprNode()  {}
func (*VarRef) exprNode() {}
func (*Load) exprNode()   {}
func (*Bin) exprNode()    {}
func (*Un) exprNode()     {}

func (e *Const) String() string  { return fmt.Sprintf("%d", e.Value) }
func (e *VarRef) String() string { return e.Name }
func (e *Load) String() string   { return fmt.Sprintf("%s[%s]", e.Array, e.Index) }
func (e *Bin) String() string    { return fmt.Sprintf("(%s %s %s)", e.X, e.Op, e.Y) }
func (e *Un) String() string     { return fmt.Sprintf("%s%s", e.Op, e.X) }

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
}

// Assign sets a scalar local (declaring it on first assignment).
type Assign struct {
	Name  string
	Value Expr
}

// Store writes one element of an array parameter: Array[Index] = Value.
type Store struct {
	Array string
	Index Expr
	Value Expr
}

// If is a two-armed conditional. Else may be empty.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// While is a pre-tested loop.
type While struct {
	Cond Expr
	Body []Stmt
}

// For is sugar for Init; while(Cond) { Body; Post }.
type For struct {
	Init *Assign
	Cond Expr
	Post *Assign
	Body []Stmt
}

func (*Assign) stmtNode() {}
func (*Store) stmtNode()  {}
func (*If) stmtNode()     {}
func (*While) stmtNode()  {}
func (*For) stmtNode()    {}

// ParamKind distinguishes kernel parameter classes.
type ParamKind int

// Parameter kinds.
const (
	// ScalarIn is a scalar passed in by value (a live-in local variable).
	ScalarIn ParamKind = iota
	// ScalarInOut is a scalar passed in and written back after the run
	// (a live-in, live-out local variable).
	ScalarInOut
	// ArrayRef is a handle to a host heap array accessed via DMA.
	ArrayRef
)

func (k ParamKind) String() string {
	switch k {
	case ScalarIn:
		return "in"
	case ScalarInOut:
		return "inout"
	case ArrayRef:
		return "array"
	}
	return fmt.Sprintf("ParamKind(%d)", int(k))
}

// Param declares a kernel parameter.
type Param struct {
	Name string
	Kind ParamKind
}

// Kernel is a compilable unit: the code sequence that the profiler decided to
// synthesize onto the CGRA.
type Kernel struct {
	Name   string
	Params []Param
	Body   []Stmt
}

// Param returns the declaration of the named parameter, or nil.
func (k *Kernel) Param(name string) *Param {
	for i := range k.Params {
		if k.Params[i].Name == name {
			return &k.Params[i]
		}
	}
	return nil
}

// IsArray reports whether name is an array parameter of k.
func (k *Kernel) IsArray(name string) bool {
	p := k.Param(name)
	return p != nil && p.Kind == ArrayRef
}

// LowerFor replaces every For statement in the body with its
// Init/While/Post desugaring, returning a structurally equivalent kernel.
// The scheduler pipeline runs this first so later passes only see While.
func (k *Kernel) LowerFor() *Kernel {
	return &Kernel{Name: k.Name, Params: k.Params, Body: lowerForStmts(k.Body)}
}

func lowerForStmts(stmts []Stmt) []Stmt {
	out := make([]Stmt, 0, len(stmts))
	for _, s := range stmts {
		switch s := s.(type) {
		case *For:
			if s.Init != nil {
				out = append(out, s.Init)
			}
			body := lowerForStmts(s.Body)
			if s.Post != nil {
				body = append(body, s.Post)
			}
			out = append(out, &While{Cond: s.Cond, Body: body})
		case *If:
			out = append(out, &If{Cond: s.Cond, Then: lowerForStmts(s.Then), Else: lowerForStmts(s.Else)})
		case *While:
			out = append(out, &While{Cond: s.Cond, Body: lowerForStmts(s.Body)})
		default:
			out = append(out, s)
		}
	}
	return out
}
