package ir

import (
	"testing"
)

// sampleKernel builds a kernel exercising every statement and expression
// node so the canonical serialization covers the full AST.
func sampleKernel() *Kernel {
	return &Kernel{
		Name: "sample",
		Params: []Param{
			{Name: "a", Kind: ArrayRef},
			{Name: "n", Kind: ScalarIn},
			{Name: "s", Kind: ScalarInOut},
		},
		Body: []Stmt{
			&Assign{Name: "i", Value: &Const{Value: 0}},
			&While{
				Cond: &Bin{Op: OpLt, X: &VarRef{Name: "i"}, Y: &VarRef{Name: "n"}},
				Body: []Stmt{
					&If{
						Cond: &Bin{Op: OpGt, X: &Load{Array: "a", Index: &VarRef{Name: "i"}}, Y: &Const{Value: 3}},
						Then: []Stmt{&Assign{Name: "s", Value: &Bin{Op: OpAdd, X: &VarRef{Name: "s"}, Y: &Un{Op: OpNeg, X: &Const{Value: 1}}}}},
						Else: []Stmt{&Store{Array: "a", Index: &VarRef{Name: "i"}, Value: &Const{Value: 7}}},
					},
					&Assign{Name: "i", Value: &Bin{Op: OpAdd, X: &VarRef{Name: "i"}, Y: &Const{Value: 1}}},
				},
			},
		},
	}
}

func TestKernelDigestStable(t *testing.T) {
	want := sampleKernel().Digest()
	if len(want) != 64 {
		t.Fatalf("digest %q is not a sha256 hex string", want)
	}
	// Re-building the identical tree from scratch must reproduce the
	// digest; repeated hashing of the same kernel must, too.
	for i := 0; i < 50; i++ {
		if got := sampleKernel().Digest(); got != want {
			t.Fatalf("digest unstable: run %d got %s, want %s", i, got, want)
		}
	}
}

func TestKernelDigestDiscriminates(t *testing.T) {
	base := sampleKernel()
	mutants := map[string]*Kernel{
		"renamed kernel":  sampleKernel(),
		"renamed param":   sampleKernel(),
		"changed const":   sampleKernel(),
		"changed op":      sampleKernel(),
		"dropped stmt":    sampleKernel(),
		"swapped regions": sampleKernel(),
	}
	mutants["renamed kernel"].Name = "other"
	mutants["renamed param"].Params[1].Name = "m"
	mutants["changed const"].Body[0].(*Assign).Value = &Const{Value: 1}
	mutants["changed op"].Body[1].(*While).Cond.(*Bin).Op = OpLe
	mutants["dropped stmt"].Body = mutants["dropped stmt"].Body[:1]
	swap := mutants["swapped regions"].Body[1].(*While).Body[0].(*If)
	swap.Then, swap.Else = swap.Else, swap.Then

	seen := map[string]string{base.Digest(): "base"}
	for what, m := range mutants {
		d := m.Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("%s collides with %s", what, prev)
		}
		seen[d] = what
	}
}

// TestKernelDigestBoundaries proves the tagged form cannot be confused by
// content shifting between adjacent fields.
func TestKernelDigestBoundaries(t *testing.T) {
	a := &Kernel{Name: "k", Body: []Stmt{
		&Assign{Name: "ab", Value: &Const{Value: 1}},
	}}
	b := &Kernel{Name: "k", Body: []Stmt{
		&Assign{Name: "a", Value: &VarRef{Name: "b1"}},
	}}
	if a.Digest() == b.Digest() {
		t.Fatal("boundary collision between distinct kernels")
	}
}
