package ir

import (
	"errors"
	"fmt"
)

// Host models the heap of the host processor. Array parameters of a kernel
// are handles into this heap; the CGRA (and the interpreter standing in for
// it) accesses them via DMA.
type Host struct {
	Arrays map[string][]int32
}

// NewHost creates an empty host heap.
func NewHost() *Host { return &Host{Arrays: map[string][]int32{}} }

// Clone deep-copies the heap so that reference and CGRA runs can be compared.
func (h *Host) Clone() *Host {
	c := NewHost()
	for name, a := range h.Arrays {
		c.Arrays[name] = append([]int32(nil), a...)
	}
	return c
}

// Load reads array[index], reporting out-of-bounds accesses as errors just
// as the host memory interface would fault.
func (h *Host) Load(array string, index int32) (int32, error) {
	a, ok := h.Arrays[array]
	if !ok {
		return 0, fmt.Errorf("host: unknown array %q", array)
	}
	if index < 0 || int(index) >= len(a) {
		return 0, fmt.Errorf("host: %s[%d] out of bounds (len %d)", array, index, len(a))
	}
	return a[index], nil
}

// Store writes array[index] = value.
func (h *Host) Store(array string, index, value int32) error {
	a, ok := h.Arrays[array]
	if !ok {
		return fmt.Errorf("host: unknown array %q", array)
	}
	if index < 0 || int(index) >= len(a) {
		return fmt.Errorf("host: %s[%d] out of bounds (len %d)", array, index, len(a))
	}
	a[index] = value
	return nil
}

// Equal reports whether two heaps hold identical contents.
func (h *Host) Equal(o *Host) bool {
	if len(h.Arrays) != len(o.Arrays) {
		return false
	}
	for name, a := range h.Arrays {
		b, ok := o.Arrays[name]
		if !ok || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// OpStats counts dynamic operations during an interpreted run. The AMIDAR
// baseline cost model consumes these counts.
type OpStats struct {
	Arith    int64 // add/sub/logic/shift/neg/not
	Mul      int64
	Compare  int64
	Loads    int64 // array element loads
	Stores   int64 // array element stores
	LocalRd  int64 // scalar variable reads
	LocalWr  int64 // scalar variable writes
	Branches int64 // conditional branch decisions (if/while tests)
	Consts   int64
	Calls    int64 // kernel invocations (method calls)
}

// Total returns the total dynamic operation count.
func (s *OpStats) Total() int64 {
	return s.Arith + s.Mul + s.Compare + s.Loads + s.Stores + s.LocalRd + s.LocalWr + s.Branches + s.Consts + s.Calls
}

// ErrStepLimit is returned when a run exceeds the interpreter step budget,
// which usually indicates a non-terminating kernel.
var ErrStepLimit = errors.New("ir: interpreter step limit exceeded")

// Interp executes kernels directly. It is the semantic reference: the CGRA
// simulator must produce identical scalar results and heap contents.
type Interp struct {
	// MaxSteps bounds the number of executed statements (0 = default 500M).
	MaxSteps int64
	// Stats, when non-nil, accumulates dynamic operation counts.
	Stats *OpStats
	// Library resolves kernel calls; nil rejects calls.
	Library map[string]*Kernel

	steps int64
}

// Run executes k with the given scalar arguments against host memory.
// It returns the final values of all scalar parameters declared InOut.
func (in *Interp) Run(k *Kernel, args map[string]int32, host *Host) (map[string]int32, error) {
	limit := in.MaxSteps
	if limit == 0 {
		limit = 500_000_000
	}
	in.steps = 0
	env := map[string]int32{}
	for _, p := range k.Params {
		switch p.Kind {
		case ScalarIn, ScalarInOut:
			v, ok := args[p.Name]
			if !ok {
				return nil, fmt.Errorf("ir: missing argument %q", p.Name)
			}
			env[p.Name] = v
		case ArrayRef:
			if _, ok := host.Arrays[p.Name]; !ok {
				return nil, fmt.Errorf("ir: missing host array %q", p.Name)
			}
		}
	}
	if err := in.stmts(k, env, host, k.Body, limit); err != nil {
		return nil, err
	}
	out := map[string]int32{}
	for _, p := range k.Params {
		if p.Kind == ScalarInOut {
			out[p.Name] = env[p.Name]
		}
	}
	return out, nil
}

func (in *Interp) stmts(k *Kernel, env map[string]int32, host *Host, stmts []Stmt, limit int64) error {
	for _, s := range stmts {
		if err := in.stmt(k, env, host, s, limit); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) stmt(k *Kernel, env map[string]int32, host *Host, s Stmt, limit int64) error {
	in.steps++
	if in.steps > limit {
		return ErrStepLimit
	}
	switch s := s.(type) {
	case *Assign:
		v, err := in.eval(k, env, host, s.Value)
		if err != nil {
			return err
		}
		env[s.Name] = v
		if in.Stats != nil {
			in.Stats.LocalWr++
		}
		return nil
	case *Store:
		idx, err := in.eval(k, env, host, s.Index)
		if err != nil {
			return err
		}
		val, err := in.eval(k, env, host, s.Value)
		if err != nil {
			return err
		}
		if in.Stats != nil {
			in.Stats.Stores++
		}
		return host.Store(s.Array, idx, val)
	case *If:
		c, err := in.eval(k, env, host, s.Cond)
		if err != nil {
			return err
		}
		if in.Stats != nil {
			in.Stats.Branches++
		}
		if c != 0 {
			return in.stmts(k, env, host, s.Then, limit)
		}
		return in.stmts(k, env, host, s.Else, limit)
	case *While:
		for {
			c, err := in.eval(k, env, host, s.Cond)
			if err != nil {
				return err
			}
			if in.Stats != nil {
				in.Stats.Branches++
			}
			if c == 0 {
				return nil
			}
			if err := in.stmts(k, env, host, s.Body, limit); err != nil {
				return err
			}
			in.steps++
			if in.steps > limit {
				return ErrStepLimit
			}
		}
	case *For:
		if s.Init != nil {
			if err := in.stmt(k, env, host, s.Init, limit); err != nil {
				return err
			}
		}
		for {
			c, err := in.eval(k, env, host, s.Cond)
			if err != nil {
				return err
			}
			if in.Stats != nil {
				in.Stats.Branches++
			}
			if c == 0 {
				return nil
			}
			if err := in.stmts(k, env, host, s.Body, limit); err != nil {
				return err
			}
			if s.Post != nil {
				if err := in.stmt(k, env, host, s.Post, limit); err != nil {
					return err
				}
			}
			in.steps++
			if in.steps > limit {
				return ErrStepLimit
			}
		}
	case *Call:
		return in.call(k, env, host, s, limit)
	default:
		return fmt.Errorf("ir: unknown statement type %T", s)
	}
}

// call executes a kernel invocation: scalars copy in (and inout copies
// back), array parameters alias the caller's heap arrays.
func (in *Interp) call(k *Kernel, env map[string]int32, host *Host, c *Call, limit int64) error {
	callee := in.Library[c.Callee]
	if callee == nil {
		return fmt.Errorf("ir: call to unknown kernel %q", c.Callee)
	}
	if err := checkCall(k, callee, c, nil); err != nil {
		return fmt.Errorf("ir: %v", err)
	}
	if in.Stats != nil {
		in.Stats.Calls++
	}
	calleeEnv := map[string]int32{}
	calleeHost := NewHost()
	for i, p := range callee.Params {
		arg := c.Args[i]
		switch p.Kind {
		case ScalarIn, ScalarInOut:
			v, err := in.eval(k, env, host, arg)
			if err != nil {
				return err
			}
			calleeEnv[p.Name] = v
		case ArrayRef:
			name := arg.(*VarRef).Name
			a, ok := host.Arrays[name]
			if !ok {
				return fmt.Errorf("ir: call to %q: caller array %q missing from host", c.Callee, name)
			}
			calleeHost.Arrays[p.Name] = a // alias: same backing slice
		}
	}
	if err := in.stmts(callee, calleeEnv, calleeHost, callee.Body, limit); err != nil {
		return err
	}
	for i, p := range callee.Params {
		if p.Kind == ScalarInOut {
			env[c.Args[i].(*VarRef).Name] = calleeEnv[p.Name]
		}
	}
	return nil
}

func (in *Interp) eval(k *Kernel, env map[string]int32, host *Host, e Expr) (int32, error) {
	switch e := e.(type) {
	case *Const:
		if in.Stats != nil {
			in.Stats.Consts++
		}
		return e.Value, nil
	case *VarRef:
		v, ok := env[e.Name]
		if !ok {
			return 0, fmt.Errorf("ir: read of unassigned variable %q", e.Name)
		}
		if in.Stats != nil {
			in.Stats.LocalRd++
		}
		return v, nil
	case *Load:
		idx, err := in.eval(k, env, host, e.Index)
		if err != nil {
			return 0, err
		}
		if in.Stats != nil {
			in.Stats.Loads++
		}
		return host.Load(e.Array, idx)
	case *Un:
		x, err := in.eval(k, env, host, e.X)
		if err != nil {
			return 0, err
		}
		if in.Stats != nil {
			in.Stats.Arith++
		}
		switch e.Op {
		case OpNeg:
			return -x, nil
		case OpNot:
			return ^x, nil
		case OpLNot:
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("ir: unknown unary op %v", e.Op)
	case *Bin:
		// Short-circuit logical connectives.
		if e.Op.IsLogical() {
			x, err := in.eval(k, env, host, e.X)
			if err != nil {
				return 0, err
			}
			if in.Stats != nil {
				in.Stats.Compare++
			}
			if e.Op == OpLAnd && x == 0 {
				return 0, nil
			}
			if e.Op == OpLOr && x != 0 {
				return 1, nil
			}
			y, err := in.eval(k, env, host, e.Y)
			if err != nil {
				return 0, err
			}
			if y != 0 {
				return 1, nil
			}
			return 0, nil
		}
		x, err := in.eval(k, env, host, e.X)
		if err != nil {
			return 0, err
		}
		y, err := in.eval(k, env, host, e.Y)
		if err != nil {
			return 0, err
		}
		return EvalBin(e.Op, x, y, in.Stats)
	default:
		return 0, fmt.Errorf("ir: unknown expression type %T", e)
	}
}

// EvalBin applies a non-logical binary operator with Java-like 32-bit
// semantics (shift amounts masked to 5 bits, wrap-around arithmetic).
// Both the interpreter and the CGRA simulator ALU use this single
// definition, so the two execution paths cannot diverge.
func EvalBin(op BinOp, x, y int32, stats *OpStats) (int32, error) {
	if stats != nil {
		switch {
		case op == OpMul:
			stats.Mul++
		case op.IsCompare():
			stats.Compare++
		default:
			stats.Arith++
		}
	}
	b2i := func(b bool) int32 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return x + y, nil
	case OpSub:
		return x - y, nil
	case OpMul:
		return x * y, nil
	case OpAnd:
		return x & y, nil
	case OpOr:
		return x | y, nil
	case OpXor:
		return x ^ y, nil
	case OpShl:
		return x << (uint32(y) & 31), nil
	case OpShr:
		return x >> (uint32(y) & 31), nil
	case OpShrU:
		return int32(uint32(x) >> (uint32(y) & 31)), nil
	case OpLt:
		return b2i(x < y), nil
	case OpLe:
		return b2i(x <= y), nil
	case OpGt:
		return b2i(x > y), nil
	case OpGe:
		return b2i(x >= y), nil
	case OpEq:
		return b2i(x == y), nil
	case OpNe:
		return b2i(x != y), nil
	}
	return 0, fmt.Errorf("ir: unknown binary op %v", op)
}
