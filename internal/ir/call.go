package ir

import "fmt"

// Call invokes another kernel as a statement (the paper's bytecode front
// end sees Java method calls; Fig. 1 lists "method inlining" as an optional
// synthesis step). Arguments bind positionally to the callee's parameters:
//
//   - ScalarIn    ← any expression (passed by value),
//   - ScalarInOut ← a variable reference (copied in, result copied back),
//   - ArrayRef    ← an array parameter name of the caller (aliased).
//
// The CGRA flow cannot map calls directly — opt.Inline replaces them with
// the callee's body before CDFG construction.
type Call struct {
	Callee string
	Args   []Expr
}

func (*Call) stmtNode() {}

// Program is a set of kernels that may call each other; Entry names the
// kernel handed to the tool flow.
type Program struct {
	Kernels map[string]*Kernel
	Entry   string
}

// NewProgram assembles a program from kernels (the first is the entry).
func NewProgram(entry *Kernel, others ...*Kernel) *Program {
	p := &Program{Kernels: map[string]*Kernel{entry.Name: entry}, Entry: entry.Name}
	for _, k := range others {
		p.Kernels[k.Name] = k
	}
	return p
}

// EntryKernel returns the entry kernel.
func (p *Program) EntryKernel() *Kernel { return p.Kernels[p.Entry] }

// checkCall validates one call site against the callee signature; bind is
// invoked for each (param, argument) pair after structural checks.
func checkCall(caller, callee *Kernel, c *Call, bind func(p Param, arg Expr) error) error {
	if callee == nil {
		return fmt.Errorf("call to unknown kernel %q", c.Callee)
	}
	if len(c.Args) != len(callee.Params) {
		return fmt.Errorf("call to %q: %d arguments for %d parameters",
			c.Callee, len(c.Args), len(callee.Params))
	}
	for i, p := range callee.Params {
		arg := c.Args[i]
		switch p.Kind {
		case ScalarInOut:
			v, ok := arg.(*VarRef)
			if !ok {
				return fmt.Errorf("call to %q: inout parameter %q needs a variable argument", c.Callee, p.Name)
			}
			if caller.IsArray(v.Name) {
				return fmt.Errorf("call to %q: inout parameter %q bound to array %q", c.Callee, p.Name, v.Name)
			}
		case ArrayRef:
			v, ok := arg.(*VarRef)
			if !ok || !caller.IsArray(v.Name) {
				return fmt.Errorf("call to %q: array parameter %q needs an array argument", c.Callee, p.Name)
			}
		}
		if bind != nil {
			if err := bind(p, arg); err != nil {
				return err
			}
		}
	}
	return nil
}

// ValidateProgram validates every kernel of a program, resolving calls
// against the program's kernel set and rejecting recursion (which cannot be
// inlined).
func ValidateProgram(p *Program) error {
	if p.Kernels[p.Entry] == nil {
		return fmt.Errorf("program: unknown entry kernel %q", p.Entry)
	}
	for _, k := range p.Kernels {
		v := &validator{kernel: k, defined: map[string]bool{}, program: p}
		seen := map[string]bool{}
		for _, prm := range k.Params {
			if seen[prm.Name] {
				return fmt.Errorf("kernel %s: duplicate parameter %q", k.Name, prm.Name)
			}
			seen[prm.Name] = true
			if prm.Kind != ArrayRef {
				v.defined[prm.Name] = true
			}
		}
		if err := v.stmts(k.Body); err != nil {
			return fmt.Errorf("kernel %s: %v", k.Name, err)
		}
	}
	return checkNoRecursion(p)
}

func checkNoRecursion(p *Program) error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(name string) error
	visit = func(name string) error {
		switch color[name] {
		case grey:
			return fmt.Errorf("program: recursive call chain through %q (cannot inline)", name)
		case black:
			return nil
		}
		color[name] = grey
		k := p.Kernels[name]
		if k != nil {
			for _, callee := range calledKernels(k.Body) {
				if err := visit(callee); err != nil {
					return err
				}
			}
		}
		color[name] = black
		return nil
	}
	for name := range p.Kernels {
		if err := visit(name); err != nil {
			return err
		}
	}
	return nil
}

func calledKernels(stmts []Stmt) []string {
	var out []string
	var walk func([]Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *Call:
				out = append(out, s.Callee)
			case *If:
				walk(s.Then)
				walk(s.Else)
			case *While:
				walk(s.Body)
			case *For:
				walk(s.Body)
			}
		}
	}
	walk(stmts)
	return out
}
