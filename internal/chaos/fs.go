// The FS surface the artifact cache performs all disk IO through. The
// real implementation (OS) adds the durability calls the cache's
// crash-safe commit protocol needs (fsync of files and directories); the
// Injector wraps any FS with scheduled faults.
package chaos

import (
	"io/fs"
	"os"
)

// FileInfo and DirEntry alias the standard library types so FS
// implementations and callers share vocabulary.
type (
	FileInfo = fs.FileInfo
	DirEntry = fs.DirEntry
)

// FS is the filesystem the artifact cache runs on. Writes are plain
// whole-file writes with no durability of their own; callers build atomic,
// durable commits from WriteFile + Sync + Rename + Sync(dir).
type FS interface {
	MkdirAll(path string, perm uint32) error
	ReadFile(path string) ([]byte, error)
	// WriteFile creates (or truncates) path with data. It does not sync.
	WriteFile(path string, data []byte, perm uint32) error
	Rename(oldPath, newPath string) error
	Remove(path string) error
	Stat(path string) (FileInfo, error)
	ReadDir(path string) ([]DirEntry, error)
	// Sync fsyncs the file or directory at path, forcing it (and, for a
	// directory, its entry table) to stable storage.
	Sync(path string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm uint32) error { return os.MkdirAll(path, os.FileMode(perm)) }

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) WriteFile(path string, data []byte, perm uint32) error {
	return os.WriteFile(path, data, os.FileMode(perm))
}

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) Stat(path string) (FileInfo, error) { return os.Stat(path) }

func (osFS) ReadDir(path string) ([]DirEntry, error) { return os.ReadDir(path) }

func (osFS) Sync(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
