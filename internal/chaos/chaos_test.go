package chaos

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"cgra/internal/obs"
)

// writeN performs n writes of data through the injector into dir,
// returning the per-file results.
func writeN(t *testing.T, in *Injector, dir string, n int, data []byte) []error {
	t.Helper()
	errs := make([]error, n)
	for i := range errs {
		errs[i] = in.WriteFile(filepath.Join(dir, "f"+string(rune('a'+i))), data, 0o644)
	}
	return errs
}

func TestEveryNthScheduleIsDeterministic(t *testing.T) {
	data := []byte("0123456789abcdef")
	plan := Plan{Seed: 7, TornWriteEvery: 3, BitRotEvery: 4, ENOSPCEvery: 5}
	sizes := func() []int64 {
		dir := t.TempDir()
		in := New(plan, nil, nil)
		writeN(t, in, dir, 12, data)
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var out []int64
		for _, e := range ents {
			fi, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, fi.Size())
		}
		return out
	}
	a, b := sizes(), sizes()
	if len(a) != len(b) {
		t.Fatalf("runs created %d vs %d files", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different torn-write lengths: %v vs %v", a, b)
		}
	}
}

func TestReadErrorInjection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	if err := os.WriteFile(path, []byte("ok"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := New(Plan{ReadErrEvery: 2}, nil, nil)
	if _, err := in.ReadFile(path); err != nil {
		t.Fatalf("read 1 should pass: %v", err)
	}
	if _, err := in.ReadFile(path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("read 2 should fail with EIO, got %v", err)
	}
	if _, err := in.ReadFile(path); err != nil {
		t.Fatalf("read 3 should pass: %v", err)
	}
	if in.Injections() != 1 {
		t.Fatalf("injections = %d, want 1", in.Injections())
	}
}

func TestWriteFaultKinds(t *testing.T) {
	data := []byte("0123456789")
	t.Run("enospc", func(t *testing.T) {
		in := New(Plan{ENOSPCEvery: 1}, nil, nil)
		err := in.WriteFile(filepath.Join(t.TempDir(), "f"), data, 0o644)
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("want ENOSPC, got %v", err)
		}
	})
	t.Run("write_err", func(t *testing.T) {
		in := New(Plan{WriteErrEvery: 1}, nil, nil)
		err := in.WriteFile(filepath.Join(t.TempDir(), "f"), data, 0o644)
		if !errors.Is(err, syscall.EIO) {
			t.Fatalf("want EIO, got %v", err)
		}
	})
	t.Run("torn_write", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "f")
		in := New(Plan{Seed: 3, TornWriteEvery: 1}, nil, nil)
		if err := in.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("torn write must report success: %v", err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) >= len(data) {
			t.Fatalf("torn write left %d bytes, want a strict prefix of %d", len(got), len(data))
		}
	})
	t.Run("bit_rot", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "f")
		in := New(Plan{Seed: 3, BitRotEvery: 1}, nil, nil)
		if err := in.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("bit rot must report success: %v", err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(data) {
			t.Fatalf("bit rot changed length: %d vs %d", len(got), len(data))
		}
		diff := 0
		for i := range got {
			if got[i] != data[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("bit rot corrupted %d bytes, want exactly 1", diff)
		}
	})
}

func TestDisarmStopsInjection(t *testing.T) {
	dir := t.TempDir()
	in := New(Plan{WriteErrEvery: 1, ReadErrEvery: 1}, nil, nil)
	in.Disarm()
	path := filepath.Join(dir, "f")
	if err := in.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatalf("disarmed write failed: %v", err)
	}
	if _, err := in.ReadFile(path); err != nil {
		t.Fatalf("disarmed read failed: %v", err)
	}
	if in.Injections() != 0 {
		t.Fatalf("disarmed injector applied %d faults", in.Injections())
	}
	if in.Armed() {
		t.Fatal("Armed() true after Disarm")
	}
}

func TestCompileHook(t *testing.T) {
	reg := obs.NewRegistry()
	in := New(Plan{CompileErrEvery: 2, CompileLagEvery: 3, CompileLag: 10 * time.Millisecond}, nil, reg)
	hook := in.CompileHook()
	ctx := context.Background()
	if err := hook(ctx, "k"); err != nil {
		t.Fatalf("compile 1: %v", err)
	}
	if err := hook(ctx, "k"); err == nil {
		t.Fatal("compile 2 should fail")
	}
	start := time.Now()
	if err := hook(ctx, "k"); err != nil { // compile 3: lag fires
		t.Fatalf("compile 3: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("compile 3 returned after %v, want >= 10ms lag", d)
	}
	if got := reg.Counter("cgra_chaos_injections_total", obs.L("kind", KindCompileErr)).Value(); got != 1 {
		t.Fatalf("compile_err counter = %d, want 1", got)
	}
	// A cancelled context cuts the lag short and surfaces the cancellation.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	for i := 0; i < 3; i++ { // advance to the next lag slot (compile 6)
		_ = hook(cctx, "k")
	}
	if err := hook(cctx, "k"); err == nil {
		// compile 6+ under a dead context: either the lag slot returns
		// ctx.Err or the err slot fires; both are non-nil on schedule.
		t.Log("hook returned nil under cancelled ctx (no fault due this op)")
	}
}

func TestOSSyncFileAndDir(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := OS.Sync(path); err != nil {
		t.Fatalf("file sync: %v", err)
	}
	if err := OS.Sync(dir); err != nil {
		t.Fatalf("dir sync: %v", err)
	}
}
